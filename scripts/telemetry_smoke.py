#!/usr/bin/env python3
"""Drive the telemetry surface of a running bistd.

Usage: telemetry_smoke.py BASE_URL GRID_JSON

Submits the grid (wrapped in the fleet Spec envelope), waits for the
campaign to finish, then asserts the whole observability surface at once:

  - /campaigns/{id}/telemetry is well-formed JSON, frozen at the full
    cell count, with a yield inside [0, 1e6] ppm and the 60 s window;
  - /metrics.prom parses as Prometheus text format 0.0.4 and carries the
    fleet families the dashboards key on;
  - /healthz answers 200 with a machine-readable ok/degraded verdict.

Exits non-zero with a one-line reason on the first violated contract.
stdlib only — the smoke must not drag dependencies into CI.
"""
import json
import sys
import time
import urllib.error
import urllib.request

REQUIRED_PROM_FAMILIES = (
    "bist_par_queue_depth",
    "bist_campaign_cell_seconds_bucket",
    "bist_fleet_yield_ppm",
)


def die(msg):
    print("telemetry-smoke: " + msg, file=sys.stderr)
    sys.exit(1)


def get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers, resp.read()


def main():
    if len(sys.argv) != 3:
        die("usage: telemetry_smoke.py BASE_URL GRID_JSON")
    base, grid_path = sys.argv[1].rstrip("/"), sys.argv[2]

    with open(grid_path, "rb") as f:
        grid = json.load(f)
    spec = json.dumps({"Name": "telemetry-smoke", "Grid": grid}).encode()
    req = urllib.request.Request(
        base + "/campaigns", data=spec,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            st = json.load(resp)
    except urllib.error.HTTPError as e:
        die("submit: %s: %s" % (e, e.read().decode(errors="replace")))
    cid = st.get("ID")
    if not cid:
        die("submit returned no campaign ID: %r" % st)

    deadline = time.monotonic() + 120
    while True:
        _, _, body = get(base + "/campaigns/" + cid)
        state = json.loads(body).get("State")
        if state == "done":
            break
        if state in ("failed", "interrupted"):
            die("campaign ended %s: %s" % (state, body.decode(errors="replace")))
        if time.monotonic() > deadline:
            die("campaign still %r after 120s" % state)
        time.sleep(0.05)

    # Frozen per-campaign SLO report.
    _, _, body = get(base + "/campaigns/" + cid + "/telemetry")
    rep = json.loads(body)
    if rep.get("id") != cid or rep.get("state") != "done":
        die("telemetry identity = (%r, %r), want (%r, done)"
            % (rep.get("id"), rep.get("state"), cid))
    cells = rep.get("cell_seconds", {}).get("count", 0)
    if cells <= 0:
        die("telemetry cell_seconds.count = %r, want > 0" % cells)
    ppm = rep.get("yield_ppm", -1)
    if not 0 <= ppm <= 1_000_000:
        die("telemetry yield_ppm = %r, want within [0, 1e6]" % ppm)
    if rep.get("window_seconds") != 60:
        die("telemetry window_seconds = %r, want 60" % rep.get("window_seconds"))

    # Prometheus exposition: right content type, every line well-formed,
    # the dashboard families present.
    _, headers, body = get(base + "/metrics.prom")
    ctype = headers.get("Content-Type", "")
    if "version=0.0.4" not in ctype:
        die("/metrics.prom Content-Type = %r, want version=0.0.4" % ctype)
    families = set()
    for ln in body.decode().splitlines():
        if not ln:
            die("/metrics.prom contains a blank line")
        if ln.startswith("# HELP ") or ln.startswith("# TYPE "):
            continue
        if ln.startswith("#"):
            die("/metrics.prom unknown comment: %r" % ln)
        name_part, _, value = ln.rpartition(" ")
        families.add(name_part.partition("{")[0])
        float(value)  # every sample value must parse
    for fam in REQUIRED_PROM_FAMILIES:
        if fam not in families:
            die("/metrics.prom missing family %s" % fam)

    # Health verdict: serving states answer 200 with a parseable state.
    code, _, body = get(base + "/healthz")
    health = json.loads(body)
    if code != 200 or health.get("state") not in ("ok", "degraded"):
        die("/healthz = %d %s, want 200 ok|degraded" % (code, body.decode()))

    print("telemetry surface OK: campaign %s, %d cells, yield %d ppm, "
          "%d prom families" % (cid, cells, ppm, len(families)))


if __name__ == "__main__":
    main()
