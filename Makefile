# Tier-1 verification and benchmark harness.

GO ?= go

.PHONY: all build test vet race check bench bench-hot

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the par-pool paths (cost instants, sweeps, yield units)
# under the race detector.
race:
	$(GO) test -race ./...

# check is the CI gate: vet + race.
check: vet race

# bench regenerates every paper artifact and kernel benchmark with
# allocation stats. Compare against BENCH_baseline.json (recorded with
# -benchtime=3x on the seed revision).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# bench-hot is the fast subset covering the LMS hot path and the paper's
# headline artifacts, with the baseline's -benchtime for comparability.
bench-hot:
	$(GO) test -run='^$$' -benchtime=3x -benchmem \
		-bench='BenchmarkFig5$$|BenchmarkFig6$$|BenchmarkTable1$$|BenchmarkCostEvaluation$$|BenchmarkReconstructorAt61Taps$$|BenchmarkKaiserWindow$$|BenchmarkYield$$' .
