# Tier-1 verification and benchmark harness.

GO ?= go

.PHONY: all build test vet race check bench bench-hot bench-block bench-fused bench-fft obs-bench trace-smoke campaign-smoke campaign-smoke-update bistd-smoke telemetry-smoke cover fuzz-smoke golden-update

# Committed coverage floor (percent of statements): `make cover` fails when
# total coverage drops below this.
COVER_FLOOR ?= 85.0

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the par-pool paths (cost instants, sweeps, yield units)
# under the race detector.
race:
	$(GO) test -race ./...

# check is the CI gate: vet + race.
check: vet race

# bench regenerates every paper artifact and kernel benchmark with
# allocation stats. Compare against BENCH_baseline.json (recorded with
# -benchtime=3x on the seed revision).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# bench-hot is the fast subset covering the LMS hot path and the paper's
# headline artifacts, with the baseline's -benchtime for comparability.
# Alongside ns/op it records the per-run counter deltas of the end-to-end
# mask BIST (cost evals, plan-cache traffic, dispatched tasks) into
# BENCH_hot_metrics.json, so the trajectory carries work counts, not just
# wall clock. The counter subset is deterministic in a fresh process;
# histogram sums are wall-clock and vary like ns/op does.
bench-hot:
	$(GO) test -run='^$$' -benchtime=3x -benchmem \
		-bench='BenchmarkFig5$$|BenchmarkFig6$$|BenchmarkTable1$$|BenchmarkCostEvaluation$$|BenchmarkReconstructorAt61Taps$$|BenchmarkKaiserWindow$$|BenchmarkYield$$' .
	$(GO) run ./cmd/bistlab mask -scale 0.3 -metrics \
		| awk '/^---- metrics ----$$/{found=1;next} found' > BENCH_hot_metrics.json
	@echo "counter deltas written to BENCH_hot_metrics.json"
	$(GO) test -run='^$$' -benchtime=6x -benchmem \
		-bench='BenchmarkMaskBISTTraceOff$$|BenchmarkMaskBISTTraceOn$$' . \
		| awk 'BEGIN { print "{"; \
			print "  \"note\": \"trace recording overhead on the end-to-end mask BIST at scale 0.35: Off is the ambient state (every span site is one inlined atomic load), On records the full span tree and counter streams. Written by make bench-hot; allocs/op is exact, ns/op is noisy on a shared host — overhead_pct inside the noise_band_pct window means no overhead was resolved (an On row faster than Off is sampling noise, not a speedup).\","; \
			print "  \"noise_band_pct\": 15,"; \
			print "  \"benchmarks\": {" } \
		/^BenchmarkMaskBISTTrace/ { sub(/-[0-9]+$$/, "", $$1); if (seen++) printf ",\n"; \
			ns[$$1] = $$3; \
			printf "    \"%s\": {\"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}", $$1, $$3, $$5, $$7 } \
		END { print "\n  },"; \
			off = ns["BenchmarkMaskBISTTraceOff"]; on = ns["BenchmarkMaskBISTTraceOn"]; \
			pct = (off > 0) ? (on - off) * 100.0 / off : 0; \
			printf "  \"overhead_pct\": %.1f\n}\n", pct; \
			if (pct < -15) { \
				print "FAIL: TraceOn measured " pct "% FASTER than TraceOff — beyond the 15% noise band, the measurement is broken; rerun bench-hot on a quiet host" > "/dev/stderr"; \
				exit 1 } \
			if (pct > 50) \
				print "WARNING: trace overhead " pct "% above the expected 50% ceiling — rerun bench-hot on a quiet host" > "/dev/stderr" }' > BENCH_trace.json
	@python3 -m json.tool BENCH_trace.json > /dev/null
	@echo "trace overhead written to BENCH_trace.json"

# bench-block records the blocked batch kernel and streaming-capture
# revision of the LMS hot path into BENCH_block.json: the per-instant At
# vs AtBlock kernels, the fused measure-stage grid path, the blocked cost
# evaluation and the end-to-end mask BIST. Interpretation note: when this
# revision was recorded the estimate stage's arithmetic was still pinned
# bit-for-bit by the committed goldens, which set the end-to-end floor.
# That freeze has since been lifted by the one-time golden re-pin that
# shipped with the fused cost kernel (estimate-stage leaves now carry
# explicit tolerance rules; see DESIGN.md "Golden pinning policy" and
# BENCH_fused.json for the post-re-pin numbers).
bench-block:
	$(GO) test -run='^$$' -benchtime=100000x -benchmem \
		-bench='BenchmarkReconstructorAt61Taps$$|BenchmarkAtBlock61Taps$$|BenchmarkEnvelopeGrid$$' . \
		| awk '/^Benchmark/ { sub(/-[0-9]+$$/, "", $$1); \
			printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %d, \"allocs_per_op\": %d},\n", $$1, $$3, $$5, $$7 }' > .bench_block_rows.tmp
	$(GO) test -run='^$$' -benchtime=20x -benchmem \
		-bench='BenchmarkCostEvaluation$$' . \
		| awk '/^Benchmark/ { sub(/-[0-9]+$$/, "", $$1); \
			printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %d, \"allocs_per_op\": %d},\n", $$1, $$3, $$5, $$7 }' >> .bench_block_rows.tmp
	$(GO) test -run='^$$' -benchtime=5x -benchmem \
		-bench='BenchmarkMaskBISTTraceOff$$' . \
		| awk '/^Benchmark/ { sub(/-[0-9]+$$/, "", $$1); \
			printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %d, \"allocs_per_op\": %d}\n", $$1, $$3, $$5, $$7 }' >> .bench_block_rows.tmp
	@{ printf '{\n  "note": "Blocked batch kernel + streaming capture revision. AtBlock is bit-identical to At; when this revision was recorded the goldens still pinned the LMS cost floats bit-for-bit, so the estimate stage kept the frozen per-instant operation sequence and its wall-clock floor, while the grid, capture and measure paths carried the end-to-end win. That freeze was later lifted by the one-time re-pin that shipped with the fused cost kernel (estimate-stage goldens now carry explicit tolerance rules; see DESIGN.md Golden pinning policy and BENCH_fused.json for the post-re-pin numbers). The kernel rows are 0 allocs/op in steady state; the end-to-end row carries one-time per-unit allocations (block/grid prep tables, int16 capture memory, pipeline channel) that replace per-eval work. ns/op swings ~15%% run to run on a shared host; allocs/op is exact.",\n  "benchmarks": {\n'; \
	cat .bench_block_rows.tmp; printf '  }\n}\n'; } > BENCH_block.json
	@rm -f .bench_block_rows.tmp
	@python3 -m json.tool BENCH_block.json > /dev/null
	@echo "blocked-kernel benchmarks written to BENCH_block.json"

# bench-fused records the reassociated fused cost kernel revision into
# BENCH_fused.json: the fused single-candidate cost evaluation, the
# multi-candidate batch fold (CostBatch, per-candidate cost), the
# amortized campaign grid (per-cell cost) and the end-to-end mask BIST.
# The "before" block carries the blocked-kernel predecessor's numbers
# (from BENCH_block.json, same -benchtime) and "speedup" the resulting
# ratios. This revision required the one-time golden re-pin that moved
# the estimate-stage leaves from byte-exact pinning to explicit tolerance
# rules (cost rel 1e-9, delay abs 1 fs; see DESIGN.md "Golden pinning
# policy"); the serial kernel stays bit-exact and is kept as the fuzzed
# differential oracle. ns/op swings ~15%% run to run on a shared host;
# allocs/op is exact.
bench-fused:
	$(GO) test -run='^$$' -benchtime=20x -benchmem \
		-bench='BenchmarkCostEvaluation$$|BenchmarkCostBatch$$' . \
		| awk '/^Benchmark/' > .bench_fused_rows.tmp
	$(GO) test -run='^$$' -benchtime=5x -benchmem \
		-bench='BenchmarkCampaignGrid$$|BenchmarkMaskBISTTraceOff$$' . \
		| awk '/^Benchmark/' >> .bench_fused_rows.tmp
	@awk 'BEGIN { \
			print "{"; \
			print "  \"note\": \"Reassociated fused cost kernel revision: CostFused folds reconstruction and squared-error accumulation into one pass per candidate (Chebyshev cosine recurrences + monomial window coefficients), CostBatch amortizes prep across candidates, the LMS memoizes revisited candidates, and campaign runs pool captures and memoize clean stimulus waveforms. Numerical contract: |fused-serial|/serial <= 1e-9 on the cost (fuzzed differential oracle FuzzCostFusedVsSerial); the serial At/AtBlock path is untouched and stays bit-exact. before rows are the blocked-kernel predecessor from BENCH_block.json at the same -benchtime. ns/op swings ~15% run to run on a shared host; allocs/op is exact.\","; \
			print "  \"before\": {"; \
			print "    \"BenchmarkCostEvaluation\": {\"ns_per_op\": 1051632, \"bytes_per_op\": 31154, \"allocs_per_op\": 2},"; \
			print "    \"BenchmarkMaskBISTTraceOff\": {\"ns_per_op\": 222142591, \"bytes_per_op\": 14547329, \"allocs_per_op\": 3639}"; \
			print "  },"; \
			print "  \"benchmarks\": {" } \
		/^Benchmark/ { sub(/-[0-9]+$$/, "", $$1); if (seen++) printf ",\n"; \
			ns[$$1] = $$3; \
			printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %d, \"allocs_per_op\": %d}", $$1, $$3, $$5, $$7 } \
		END { print "\n  },"; \
			ce = ns["BenchmarkCostEvaluation"]; mb = ns["BenchmarkMaskBISTTraceOff"]; \
			printf "  \"speedup\": {\"cost_eval_vs_block\": %.2f, \"mask_bist_vs_block\": %.2f, \"mask_bist_vs_seed_386ms\": %.2f}\n}\n", \
				(ce > 0) ? 1051632 / ce : 0, (mb > 0) ? 222142591 / mb : 0, (mb > 0) ? 386000000 / mb : 0 }' \
		.bench_fused_rows.tmp > BENCH_fused.json
	@rm -f .bench_fused_rows.tmp
	@python3 -m json.tool BENCH_fused.json > /dev/null
	@echo "fused-kernel benchmarks written to BENCH_fused.json"

# bench-fft covers the plan-based transform engine and the Welch estimator
# built on it. Compare against BENCH_plans.json (before/after for the plan
# migration); BenchmarkFFTPlan* must report 0 allocs/op in steady state.
bench-fft:
	$(GO) test -run='^$$' -benchmem \
		-bench='BenchmarkFFTPlan1024$$|BenchmarkFFTPlan4096$$|BenchmarkFFTPlanOdd1000$$|BenchmarkWelch64k$$|BenchmarkWelchPSD$$|BenchmarkFFT4096$$' .

# obs-bench verifies the observability layer: concurrent counter/gauge/
# histogram correctness under the race detector, then the overhead
# benchmarks. The BenchmarkObsDisabled* rows are the contract with the LMS
# hot loop — they must report 0 allocs/op and ~1 ns/op or less for the
# counter (one atomic load).
obs-bench:
	$(GO) test -race ./internal/obs
	$(GO) test -run='^$$' -bench='BenchmarkObs' -benchmem ./internal/obs

# trace-smoke exercises the hierarchical trace pipeline end to end: a
# reduced Fig. 6 run through the real CLI with both exporters on, the
# Chrome JSON checked for well-formedness, and the normalized span tree
# compared byte-for-byte against the committed golden. The structural
# tests then re-check the same surface in-process (worker-count
# invariance, Perfetto event layout, embedded provenance).
trace-smoke:
	$(GO) run ./cmd/bistlab fig6 -scale 0.25 \
		-trace trace_smoke.trace.json -trace-normalized trace_smoke.norm.json > /dev/null
	python3 -m json.tool trace_smoke.trace.json > /dev/null
	cmp trace_smoke.norm.json cmd/bistlab/testdata/golden/fig6_trace_normalized.json
	$(GO) test ./cmd/bistlab -run 'TestFig6NormalizedTraceGolden|TestMaskChromeTraceStructure|TestTraceToStdout|TestManifestFlag'
	@rm -f trace_smoke.trace.json trace_smoke.norm.json
	@echo "trace smoke OK"

# campaign-smoke drives a tiny stimulus-coverage campaign end to end
# through the real CLI (the flags-only `-campaign` shorthand) and compares
# the detection matrix byte-for-byte against the committed golden; the
# campaign test suite then re-checks the determinism contract in-process
# (worker-count and row-order invariance, known-escape pinning).
campaign-smoke:
	$(GO) run ./cmd/bistlab -campaign cmd/bistlab/testdata/campaign_smoke_grid.json -json \
		| cmp - cmd/bistlab/testdata/golden/campaign_smoke.json
	$(GO) test ./internal/campaign ./cmd/bistlab -run 'Campaign|Coverage'
	@echo "campaign smoke OK"

# bistd-smoke boots the fleet daemon on an ephemeral port, runs the
# committed smoke campaign through its HTTP surface with bistd's own
# client mode, and compares the served detection matrix byte-for-byte
# against the campaign golden: the service path must reproduce exactly
# what the in-process CLI produces. The daemon is then stopped with
# SIGTERM to exercise the graceful drain.
bistd-smoke:
	@set -e; \
	$(GO) build -o .bistd_smoke.bin ./cmd/bistd; \
	rm -rf .bistd_smoke.addr .bistd_smoke_ckpt; \
	./.bistd_smoke.bin -addr 127.0.0.1:0 -addr-file .bistd_smoke.addr -checkpoint-dir .bistd_smoke_ckpt & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf .bistd_smoke.bin .bistd_smoke.addr .bistd_smoke_ckpt' EXIT; \
	for i in $$(seq 1 100); do [ -s .bistd_smoke.addr ] && break; sleep 0.1; done; \
	[ -s .bistd_smoke.addr ] || { echo "bistd-smoke: daemon did not come up"; exit 1; }; \
	addr=$$(cat .bistd_smoke.addr); \
	./.bistd_smoke.bin -submit cmd/bistlab/testdata/campaign_smoke_grid.json \
		-server "http://$$addr" -quiet \
		| cmp - cmd/bistlab/testdata/golden/campaign_smoke.json; \
	kill -TERM $$pid; wait $$pid; \
	echo "bistd smoke OK"

# telemetry-smoke boots the daemon with the watchdog and the canonical
# JSON event log, runs the committed smoke campaign over HTTP, and
# asserts the whole telemetry surface end to end: the per-campaign SLO
# report, the Prometheus exposition (parsed line by line, required fleet
# families present), and the /healthz verdict. After the SIGTERM drain it
# re-checks that every event-log line the daemon wrote is valid JSON —
# the canonical-handler contract a log collector depends on.
telemetry-smoke:
	@set -e; \
	$(GO) build -o .telemetry_smoke.bin ./cmd/bistd; \
	rm -rf .telemetry_smoke.addr .telemetry_smoke_ckpt .telemetry_smoke.log; \
	./.telemetry_smoke.bin -addr 127.0.0.1:0 -addr-file .telemetry_smoke.addr \
		-checkpoint-dir .telemetry_smoke_ckpt -log-json -watchdog-interval 50ms \
		2> .telemetry_smoke.log & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf .telemetry_smoke.bin .telemetry_smoke.addr .telemetry_smoke_ckpt .telemetry_smoke.log' EXIT; \
	for i in $$(seq 1 100); do [ -s .telemetry_smoke.addr ] && break; sleep 0.1; done; \
	[ -s .telemetry_smoke.addr ] || { echo "telemetry-smoke: daemon did not come up"; cat .telemetry_smoke.log; exit 1; }; \
	addr=$$(cat .telemetry_smoke.addr); \
	python3 scripts/telemetry_smoke.py "http://$$addr" cmd/bistlab/testdata/campaign_smoke_grid.json; \
	kill -TERM $$pid; wait $$pid || true; \
	python3 -c 'import json,sys; [json.loads(l) for l in open(".telemetry_smoke.log") if l.strip()]' \
		|| { echo "telemetry-smoke: event log is not line-delimited JSON"; cat .telemetry_smoke.log; exit 1; }; \
	echo "telemetry smoke OK"

# campaign-smoke-update regenerates the CLI campaign golden after an
# intended matrix change. Inspect the diff before committing.
campaign-smoke-update:
	$(GO) run ./cmd/bistlab -campaign cmd/bistlab/testdata/campaign_smoke_grid.json -json \
		> cmd/bistlab/testdata/golden/campaign_smoke.json
	@echo "campaign smoke golden regenerated"

# cover measures total statement coverage and fails below COVER_FLOOR.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{sub(/%/, "", $$3); print $$3}'); \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { \
		if (t + 0 < f + 0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# fuzz-smoke runs each native fuzz target briefly beyond its seed corpus.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFFTRoundtrip -fuzztime=10s ./internal/dsp
	$(GO) test -run='^$$' -fuzz=FuzzBluesteinVsRadix2 -fuzztime=10s ./internal/dsp
	$(GO) test -run='^$$' -fuzz=FuzzPlanVsDirect -fuzztime=10s ./internal/dsp
	$(GO) test -run='^$$' -fuzz=FuzzFIRLinearity -fuzztime=10s ./internal/dsp
	$(GO) test -run='^$$' -fuzz=FuzzReconstructRetune -fuzztime=10s ./internal/pnbs
	$(GO) test -run='^$$' -fuzz=FuzzAtBlockVsAt -fuzztime=10s ./internal/pnbs
	$(GO) test -run='^$$' -fuzz=FuzzCostFusedVsSerial -fuzztime=10s ./internal/skew
	$(GO) test -run='^$$' -fuzz=FuzzStimulusSpecRoundTrip -fuzztime=10s ./internal/campaign

# golden-update regenerates the committed golden vectors after an intended
# numeric change. Inspect the diff before committing.
golden-update:
	$(GO) test ./internal/experiments -run Golden -update
