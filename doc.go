// Package repro is a complete, stdlib-only Go reproduction of
// "A flexible BIST strategy for SDR transmitters" (Dogaru, Vinci dos
// Santos, Rebernak — DATE 2014): an RF built-in self-test for
// software-defined-radio transmitters based on second-order periodically
// nonuniform bandpass sampling (Kohlenberg) with blind LMS time-skew
// identification.
//
// The root package carries the repository-level benchmark suite
// (bench_test.go) and integration tests; the implementation lives under
// internal/ — see DESIGN.md for the system inventory, EXPERIMENTS.md for
// the paper-vs-measured results, and README.md for a guided tour.
package repro
