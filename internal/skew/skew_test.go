package skew

import (
	"math"
	"testing"

	"repro/internal/pnbs"
)

// paper configuration: fc = 1 GHz, B = 90 MHz, B1 = 45 MHz, D = 180 ps.
func paperBands() (bandB, bandB1 pnbs.Band) {
	bandB = pnbs.Band{FLow: 955e6, B: 90e6}
	return bandB, HalfRateBand(bandB)
}

// threeTone is a deterministic in-band test waveform (no modem dependency).
func threeTone(t float64) float64 {
	return math.Cos(2*math.Pi*0.992e9*t+0.3) +
		0.6*math.Cos(2*math.Pi*1.0e9*t+1.7) +
		0.4*math.Cos(2*math.Pi*1.007e9*t+2.9)
}

// idealSet samples threeTone ideally into a SampleSet.
func idealSet(band pnbs.Band, t0, d float64, n int) SampleSet {
	tt := band.T()
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = threeTone(t0 + float64(i)*tt)
		ch1[i] = threeTone(t0 + float64(i)*tt + d)
	}
	return SampleSet{Band: band, T0: t0, Ch0: ch0, Ch1: ch1}
}

func paperEvaluator(t *testing.T, d float64) *CostEvaluator {
	t.Helper()
	bandB, bandB1 := paperBands()
	setB := idealSet(bandB, 0, d, 220)
	setB1 := idealSet(bandB1, -300e-9, d, 130)
	lo, hi, err := EvalWindow(setB, setB1, pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: N = 300 random times in [470, 1700] ns; stay inside the
	// window computed for these captures.
	if lo > 470e-9 || hi < 1700e-9 {
		t.Fatalf("eval window [%g, %g] does not cover the paper's interval", lo, hi)
	}
	times := RandomTimes(470e-9, 1700e-9, 150, 1)
	ce, err := NewCostEvaluator(setB, setB1, times, pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ce
}

func TestHalfRateBandCentred(t *testing.T) {
	bandB, bandB1 := paperBands()
	if bandB1.B != 45e6 {
		t.Errorf("B1 = %g", bandB1.B)
	}
	if math.Abs(bandB1.Fc()-bandB.Fc()) > 1 {
		t.Errorf("centres differ: %g vs %g", bandB1.Fc(), bandB.Fc())
	}
	if math.Abs(bandB1.FLow-977.5e6) > 1 {
		t.Errorf("fl1 = %g", bandB1.FLow)
	}
}

func TestMUpperMatchesPaper(t *testing.T) {
	bandB, bandB1 := paperBands()
	// k+ = 23 at B = 90 MHz -> 1/(23*90e6) = 483 ps; k1+ = 45 at 45 MHz ->
	// 494 ps; m = 483 ps as printed in Section V.
	m := MUpper(bandB, bandB1)
	if math.Abs(m-483.09e-12) > 0.5e-12 {
		t.Errorf("m = %g s, want ~483 ps", m)
	}
}

func TestCheckUniqueness(t *testing.T) {
	bandB, bandB1 := paperBands()
	if err := CheckUniqueness(bandB, bandB1); err != nil {
		t.Errorf("paper configuration rejected: %v", err)
	}
	if err := CheckUniqueness(bandB, bandB); err == nil {
		t.Error("B1 >= B must fail")
	}
	// Construct a violation of (9b): k+ B = k1+ B1. Take bandB with k+ = 23
	// at B = 90 MHz (k+B = 2070 MHz) and bandB1 with B1 = 2070/46 = 45 MHz
	// and k1+ = 46 -> need k1 = 45 -> 44 < 2 fl1/B1 <= 45, fl1 ~ 1005 MHz.
	bad := pnbs.Band{FLow: 1005e6, B: 45e6}
	if bad.KPlus() != 46 {
		t.Fatalf("constructed k1+ = %d", bad.KPlus())
	}
	if err := CheckUniqueness(bandB, bad); err == nil {
		t.Error("Eq. (9b) violation not detected")
	}
}

func TestCostMinimumAtTrueDelay(t *testing.T) {
	d := 180e-12
	ce := paperEvaluator(t, d)
	c0, err := ce.Cost(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []float64{-60e-12, -20e-12, 20e-12, 60e-12} {
		c, err := ce.Cost(d + off)
		if err != nil {
			t.Fatal(err)
		}
		if c <= c0 {
			t.Errorf("cost(%g) = %g not above cost(D) = %g", d+off, c, c0)
		}
	}
	// Single minimum across ]0, m[: scan and verify the argmin lands at D.
	ds, costs := CostCurve(ce, 20e-12, 460e-12, 45)
	best := 0
	for i, c := range costs {
		if !math.IsNaN(c) && c < costs[best] {
			best = i
		}
	}
	if math.Abs(ds[best]-d) > 12e-12 {
		t.Errorf("cost curve argmin %g, want ~%g", ds[best], d)
	}
}

func TestLMSConvergesFromPaperStarts(t *testing.T) {
	d := 180e-12
	ce := paperEvaluator(t, d)
	for _, d0 := range []float64{50e-12, 100e-12, 350e-12, 400e-12} {
		res, err := Estimate(ce, d0, LMSConfig{})
		if err != nil {
			t.Fatalf("d0 = %g: %v", d0, err)
		}
		if math.Abs(res.DHat-d) > 0.5e-12 {
			t.Errorf("d0 = %g: DHat = %g ps, want 180 ps (err %.3g ps)",
				d0, res.DHat*1e12, math.Abs(res.DHat-d)*1e12)
		}
		// Paper: convergence in < 20 iterations every time.
		if res.Iterations >= 25 {
			t.Errorf("d0 = %g: %d iterations", d0, res.Iterations)
		}
		if len(res.CostHistory) == 0 || len(res.DHistory) != len(res.CostHistory) {
			t.Error("history bookkeeping")
		}
		if res.CostEvals <= 0 {
			t.Error("cost evaluation counter")
		}
	}
}

func TestLMSValidationAndBounds(t *testing.T) {
	cost := func(d float64) (float64, error) { return (d - 5) * (d - 5), nil }
	if _, err := EstimateLMS(cost, 1, LMSConfig{DMin: 2, DMax: 1}); err == nil {
		t.Error("inverted bounds must fail")
	}
	// Clamping: start outside [0, 10].
	res, err := EstimateLMS(cost, -3, LMSConfig{Mu0: 0.5, DMin: 0, DMax: 10, MaxIter: 200, TolStep: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DHat-5) > 1e-6 {
		t.Errorf("quadratic minimum missed: %g", res.DHat)
	}
	if !res.Converged {
		t.Error("should converge on a clean quadratic")
	}
}

func TestLMSTolCostTermination(t *testing.T) {
	cost := func(d float64) (float64, error) { return d * d, nil }
	res, err := EstimateLMS(cost, 1, LMSConfig{Mu0: 0.25, DMin: -2, DMax: 2, TolCost: 0.5, MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("TolCost should terminate the loop")
	}
}

func TestCostEvaluatorValidation(t *testing.T) {
	bandB, bandB1 := paperBands()
	good := idealSet(bandB, 0, 180e-12, 220)
	good1 := idealSet(bandB1, -300e-9, 180e-12, 130)
	if _, err := NewCostEvaluator(good, good1, nil, pnbs.Options{}); err == nil {
		t.Error("empty times must fail")
	}
	bad := good
	bad.Ch1 = bad.Ch1[:10]
	if _, err := NewCostEvaluator(bad, good1, []float64{1e-6}, pnbs.Options{}); err == nil {
		t.Error("ragged channels must fail")
	}
	if _, err := NewCostEvaluator(good, good, []float64{1e-6}, pnbs.Options{}); err == nil {
		t.Error("same-rate sets must fail uniqueness")
	}
}

func TestRandomTimesDeterministic(t *testing.T) {
	a := RandomTimes(0, 1, 16, 3)
	b := RandomTimes(0, 1, 16, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatal("out of range")
		}
	}
}

func TestAliasedFrequency(t *testing.T) {
	fa, inv := AliasedFrequency(1026e6, 90e6)
	if math.Abs(fa-36e6) > 1e-3 || inv {
		t.Errorf("1026 MHz @ 90 MS/s -> %g, inverted %v", fa, inv)
	}
	fa, inv = AliasedFrequency(1034e6, 90e6)
	// 1034 mod 90 = 44 -> below 45: not inverted.
	if math.Abs(fa-44e6) > 1e-3 || inv {
		t.Errorf("1034 MHz -> %g, %v", fa, inv)
	}
	fa, inv = AliasedFrequency(1036e6, 90e6)
	// 1036 mod 90 = 46 -> inverted to 44.
	if math.Abs(fa-44e6) > 1e-3 || !inv {
		t.Errorf("1036 MHz -> %g, %v", fa, inv)
	}
}

func TestSineTestFrequency(t *testing.T) {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	f0, err := SineTestFrequency(band, 90e6, 36e6)
	if err != nil {
		t.Fatal(err)
	}
	if f0 < band.FLow || f0 > band.FHigh() {
		t.Errorf("tone %g outside band", f0)
	}
	fa, _ := AliasedFrequency(f0, 90e6)
	if math.Abs(fa-36e6) > 1e-3 {
		t.Errorf("alias %g, want 36 MHz", fa)
	}
	if _, err := SineTestFrequency(band, 90e6, 50e6); err == nil {
		t.Error("target above B/2 must fail")
	}
}

func TestEstimateSineIdealChannels(t *testing.T) {
	d := 180e-12
	b := 90e6
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	for _, target := range []float64{0.4 * b, 0.46 * b} {
		f0, err := SineTestFrequency(band, b, target)
		if err != nil {
			t.Fatal(err)
		}
		n := 512
		tt := 1 / b
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = math.Cos(2 * math.Pi * f0 * float64(i) * tt)
			ch1[i] = math.Cos(2 * math.Pi * f0 * (float64(i)*tt + d))
		}
		got, err := EstimateSine(SineEstimateConfig{F0: f0, B: b, DMax: 483e-12}, ch0, ch1)
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		if math.Abs(got-d) > 0.05e-12 {
			t.Errorf("target %g: D = %g ps, want 180 ps", target, got*1e12)
		}
	}
}

func TestEstimateSineValidation(t *testing.T) {
	good := make([]float64, 64)
	cfg := SineEstimateConfig{F0: 1e9, B: 90e6, DMax: 480e-12}
	if _, err := EstimateSine(SineEstimateConfig{B: 90e6, DMax: 1e-12}, good, good); err == nil {
		t.Error("F0=0 must fail")
	}
	if _, err := EstimateSine(cfg, good[:4], good[:4]); err == nil {
		t.Error("too short must fail")
	}
	if _, err := EstimateSine(SineEstimateConfig{F0: 1e9, B: 90e6, DMax: 2e-9}, good, good); err == nil {
		t.Error("DMax above 1/F0 must fail")
	}
	// Tone aliasing to DC cannot be fitted.
	if _, err := EstimateSine(SineEstimateConfig{F0: 900e6, B: 90e6, DMax: 480e-12}, good, good); err == nil {
		t.Error("DC alias must fail")
	}
}
