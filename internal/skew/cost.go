// Package skew implements the paper's time-skew estimation layer: the
// dual-rate self-referential cost function of Eqs. (7)-(8) with the
// uniqueness conditions of Eq. (9), the normalized variable-step LMS
// identification of Algorithm 1, and the known-sinusoid baseline adapted
// from Jamal et al. (TCAS-I 2004, the paper's reference [14]).
package skew

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pnbs"
)

// Hot-loop instruments, hoisted to package level so an increment is one
// atomic add and the registry map is never touched per evaluation. The
// evals counter is the paper's "computational effort" axis measured live:
// after one BIST run it equals LMSResult.CostEvals exactly.
var (
	mCostEvals  = obs.C("skew.cost.evals")
	mCostErrors = obs.C("skew.cost.errors")
	mPoolGets   = obs.C("skew.cost.pool.gets")
	mPoolNews   = obs.C("skew.cost.pool.news")
	mRetunes    = obs.C("skew.cost.retunes")
	// mMemoHits counts descent evaluations served from the LMS candidate
	// memo: logical evaluations that did no kernel work, so pool gets +
	// news + memo hits = cost evals exactly.
	mMemoHits = obs.C("skew.lms.memo.hits")
)

// SampleSet is one nonuniform capture expressed for reconstruction:
// Ch0[n] = f(T0 + n/Band.B), Ch1[n] = f(T0 + n/Band.B + D) with the same
// physical (unknown) D for every set.
type SampleSet struct {
	// Band is the bandpass support assumed for reconstruction at this rate.
	Band pnbs.Band
	// T0 is the nominal instant of Ch0's first sample.
	T0 float64
	// Ch0 and Ch1 are the captured channel values.
	Ch0, Ch1 []float64
}

// HalfRateBand returns the band to assume when reconstructing from the
// half-rate capture: same centre, half the width. The paper's configuration
// (fc = 1 GHz, B = 90 MHz -> B1 = 45 MHz) keeps the narrowband test signal
// inside both supports.
func HalfRateBand(b pnbs.Band) pnbs.Band {
	return pnbs.Band{FLow: b.Fc() - b.B/4, B: b.B / 2}
}

// MUpper returns m, the first delay at which the dual-rate cost function is
// undefined: m = min{ 1/(k+ B), 1/(k1+ B1) } (Section IV-A). The LMS search
// is restricted to ]0, m[.
func MUpper(bandB, bandB1 pnbs.Band) float64 {
	mB := 1 / (float64(bandB.KPlus()) * bandB.B)
	mB1 := 1 / (float64(bandB1.KPlus()) * bandB1.B)
	return math.Min(mB, mB1)
}

// CheckUniqueness verifies the paper's Eq. (9) conditions under which the
// cost function has a single minimum in ]0, m[ at D-hat = D:
// k+ B != k1 B1 and k+ B != k1+ B1.
func CheckUniqueness(bandB, bandB1 pnbs.Band) error {
	if bandB1.B >= bandB.B {
		return fmt.Errorf("skew: need T < T1, i.e. B1 = %g < B = %g", bandB1.B, bandB.B)
	}
	kpB := float64(bandB.KPlus()) * bandB.B
	k1B1 := float64(bandB1.K()) * bandB1.B
	k1pB1 := float64(bandB1.KPlus()) * bandB1.B
	const tol = 1e-6
	if math.Abs(kpB-k1B1) < tol*kpB {
		return fmt.Errorf("skew: Eq. (9a) violated: k+ B = k1 B1 = %g", kpB)
	}
	if math.Abs(kpB-k1pB1) < tol*kpB {
		return fmt.Errorf("skew: Eq. (9b) violated: k+ B = k1+ B1 = %g", kpB)
	}
	return nil
}

// CostEvaluator computes the Eq. (7) objective: the mean squared
// disagreement between the rate-B and rate-B1 reconstructions of the same
// waveform, both evaluated with the SAME candidate delay D-hat. At
// D-hat = D both reconstructions converge to f(t) and the cost collapses to
// the noise floor; anywhere else they err differently and the cost rises.
// No knowledge of the transmitted waveform is needed.
type CostEvaluator struct {
	setB  SampleSet
	setB1 SampleSet
	times []float64
	opt   pnbs.Options
	// workers recycles reconstructor pairs (plus per-chunk partial storage)
	// across Cost calls: a candidate delay is swapped in with Retune
	// instead of rebuilding kernels and phasor tables, so the LMS hot loop
	// runs allocation-free. A pool rather than a single pair keeps Cost
	// safe to call from concurrent goroutines (parallel sweep points,
	// parallel LMS traces, CostBatch candidates) without serialising them.
	workers sync.Pool // *costWorker
	// protoB/protoB1 are the template reconstructor pair every fresh pool
	// worker is cloned from. Clones share the delay-independent prepared
	// tables (pnbs.Reconstructor.Clone), so the fused-path contraction is
	// built once per capture and amortized across all candidates and all
	// concurrent workers.
	protoMu         sync.Mutex
	protoB, protoB1 *pnbs.Reconstructor
}

// costChunk is the fixed instant-chunk size of the fused cost fold. It is a
// constant — never derived from the worker count — so the per-chunk partial
// sums and their chunk-order fold are bit-identical at any pool size.
const costChunk = 16

// costWorker is one reusable evaluation context: a retunable reconstructor
// pair plus the per-chunk partials of the fused residual fold.
type costWorker struct {
	rB, rB1  *pnbs.Reconstructor
	partials []float64
}

// worker returns a pooled evaluation context retuned to dHat, cloning a
// fresh one from the template pair only when the pool is empty.
func (c *CostEvaluator) worker(dHat float64) (*costWorker, error) {
	if v := c.workers.Get(); v != nil {
		w := v.(*costWorker)
		mPoolGets.Inc()
		mRetunes.Add(2)
		if err := w.rB.Retune(dHat); err != nil {
			c.workers.Put(w)
			return nil, err
		}
		if err := w.rB1.Retune(dHat); err != nil {
			c.workers.Put(w)
			return nil, err
		}
		return w, nil
	}
	mPoolNews.Inc()
	pB, pB1, err := c.proto(dHat)
	if err != nil {
		return nil, err
	}
	rB, err := pB.Clone(dHat)
	if err != nil {
		return nil, err
	}
	rB1, err := pB1.Clone(dHat)
	if err != nil {
		return nil, err
	}
	return &costWorker{rB: rB, rB1: rB1}, nil
}

// proto returns the template reconstructor pair, building it on first use.
func (c *CostEvaluator) proto(dHat float64) (*pnbs.Reconstructor, *pnbs.Reconstructor, error) {
	c.protoMu.Lock()
	defer c.protoMu.Unlock()
	if c.protoB == nil {
		rB, err := pnbs.NewReconstructor(c.setB.Band, dHat, c.setB.T0, c.setB.Ch0, c.setB.Ch1, c.opt)
		if err != nil {
			return nil, nil, err
		}
		rB1, err := pnbs.NewReconstructor(c.setB1.Band, dHat, c.setB1.T0, c.setB1.Ch0, c.setB1.Ch1, c.opt)
		if err != nil {
			return nil, nil, err
		}
		c.protoB, c.protoB1 = rB, rB1
	}
	return c.protoB, c.protoB1, nil
}

// NewCostEvaluator validates the two captures and the evaluation instants.
// The instants must lie inside the valid reconstruction range of both sets;
// use EvalWindow/RandomTimes to generate them.
func NewCostEvaluator(setB, setB1 SampleSet, times []float64, opt pnbs.Options) (*CostEvaluator, error) {
	if err := CheckUniqueness(setB.Band, setB1.Band); err != nil {
		return nil, err
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("skew: no evaluation instants")
	}
	if len(setB.Ch0) != len(setB.Ch1) || len(setB1.Ch0) != len(setB1.Ch1) {
		return nil, fmt.Errorf("skew: channel length mismatch")
	}
	return &CostEvaluator{setB: setB, setB1: setB1, times: times, opt: opt}, nil
}

// Times returns the evaluation instants.
func (c *CostEvaluator) Times() []float64 { return c.times }

// M returns the upper limit of the searchable delay interval.
func (c *CostEvaluator) M() float64 { return MUpper(c.setB.Band, c.setB1.Band) }

// Cost evaluates the Eq. (7) objective at the candidate delay dHat through
// the fused reassociated kernel (pnbs.CostFused): both reconstructors share
// delay-independent contracted tables (built once per capture, surviving
// Retune and shared across pooled workers via Clone), fixed-size instant
// chunks fan out over the par pool, and the per-chunk residual partials are
// folded serially in chunk order. The chunk boundaries never depend on the
// worker count, so the result is bit-identical at any pool size; against
// the per-instant serial oracle (costSerial) the fused value agrees to
// <= 1e-9 relative — reassociated, not bit-identical (the documented
// estimate-stage tolerance contract). Cost is safe for concurrent use.
func (c *CostEvaluator) Cost(dHat float64) (float64, error) {
	mCostEvals.Inc()
	w, err := c.worker(dHat)
	if err != nil {
		mCostErrors.Inc()
		return 0, err
	}
	defer c.workers.Put(w)
	n := len(c.times)
	partials := w.chunkStorage(n)
	w.rB.PrepareFused(c.times)
	w.rB1.PrepareFused(c.times)
	par.ForChunks(n, costChunk, func(lo, hi int) {
		partials[lo/costChunk] = pnbs.CostFused(w.rB, w.rB1, c.times, lo, hi)
	})
	return foldChunks(partials, n), nil
}

// chunkStorage returns the worker's per-chunk partial buffer sized for n
// instants.
func (w *costWorker) chunkStorage(n int) []float64 {
	nc := (n + costChunk - 1) / costChunk
	if cap(w.partials) < nc {
		w.partials = make([]float64, nc)
	}
	return w.partials[:nc]
}

// foldChunks folds the per-chunk partials serially in chunk order — the one
// fixed association the worker-count-invariance contract pins.
func foldChunks(partials []float64, n int) float64 {
	acc := 0.0
	for _, p := range partials {
		acc += p
	}
	return acc / float64(n)
}

// CostBatch evaluates the objective at every candidate delay, amortizing
// the delay-independent table setup across the batch: candidates fan out
// over the par pool, each on a pooled worker whose reconstructor pair
// shares the one contracted-table build (Clone semantics), and each
// candidate's chunks run inline in chunk order. The per-candidate partials
// and fold are the exact computation Cost performs, so
// CostBatch(ds)[i] == Cost(ds[i]) bit for bit (the equivalence test pins
// it). A candidate at a forbidden delay fails the whole batch with that
// candidate's error (lowest index wins, deterministically).
func (c *CostEvaluator) CostBatch(dHats []float64) ([]float64, error) {
	out := make([]float64, len(dHats))
	if len(dHats) == 0 {
		return out, nil
	}
	mCostEvals.Add(int64(len(dHats)))
	err := par.ForErr(len(dHats), func(i int) error {
		w, err := c.worker(dHats[i])
		if err != nil {
			mCostErrors.Inc()
			return err
		}
		defer c.workers.Put(w)
		n := len(c.times)
		partials := w.chunkStorage(n)
		w.rB.PrepareFused(c.times)
		w.rB1.PrepareFused(c.times)
		for lo := 0; lo < n; lo += costChunk {
			hi := lo + costChunk
			if hi > n {
				hi = n
			}
			partials[lo/costChunk] = pnbs.CostFused(w.rB, w.rB1, c.times, lo, hi)
		}
		out[i] = foldChunks(partials, n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// costSerial is the single-threaded, rebuild-everything, per-instant At
// reference implementation of Cost (the seed code path), kept as the
// oracle for the differential tests: the fused reassociated path must agree
// with it to <= 1e-9 relative (the estimate-stage tolerance contract), and
// must itself be bit-identical at any worker count.
func (c *CostEvaluator) costSerial(dHat float64) (float64, error) {
	rB, err := pnbs.NewReconstructor(c.setB.Band, dHat, c.setB.T0, c.setB.Ch0, c.setB.Ch1, c.opt)
	if err != nil {
		return 0, err
	}
	rB1, err := pnbs.NewReconstructor(c.setB1.Band, dHat, c.setB1.T0, c.setB1.Ch0, c.setB1.Ch1, c.opt)
	if err != nil {
		return 0, err
	}
	acc := 0.0
	for _, tv := range c.times {
		d := rB.At(tv) - rB1.At(tv)
		acc += d * d
	}
	return acc / float64(len(c.times)), nil
}

// EvalWindow returns the time interval over which both captures support
// full-filter reconstruction (intersection of the two valid ranges).
func EvalWindow(setB, setB1 SampleSet, opt pnbs.Options) (lo, hi float64, err error) {
	rB, err := pnbs.NewReconstructor(setB.Band, setB.Band.OptimalD(), setB.T0, setB.Ch0, setB.Ch1, opt)
	if err != nil {
		return 0, 0, err
	}
	rB1, err := pnbs.NewReconstructor(setB1.Band, setB1.Band.OptimalD(), setB1.T0, setB1.Ch0, setB1.Ch1, opt)
	if err != nil {
		return 0, 0, err
	}
	lo0, hi0 := rB.ValidRange()
	lo1, hi1 := rB1.ValidRange()
	lo = math.Max(lo0, lo1)
	hi = math.Min(hi0, hi1)
	if lo >= hi {
		return 0, 0, fmt.Errorf("skew: captures share no valid reconstruction window")
	}
	return lo, hi, nil
}

// RandomTimes draws n uniform random instants from [lo, hi] with a seeded
// generator (the paper uses N = 300 random values in [470 ns, 1700 ns]).
func RandomTimes(lo, hi float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*rng.Float64()
	}
	return out
}
