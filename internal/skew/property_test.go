package skew

import (
	"math/rand"
	"testing"

	"repro/internal/par"
	"repro/internal/pnbs"
)

// Metamorphic properties of the dual-rate cost: Eq. (7) is a MEAN over the
// evaluation instants, so the objective cannot depend on the order the
// instants are listed in (beyond FP summation noise), and — per the par
// determinism contract — cannot depend on the pool width at all.

// permutedEvaluator builds two evaluators over the same captures whose
// instants are permutations of each other.
func permutedEvaluator(t *testing.T, seed int64) (*CostEvaluator, *CostEvaluator) {
	t.Helper()
	bandB, bandB1 := paperBands()
	d := 180e-12
	setB := idealSet(bandB, 0, d, 220)
	setB1 := idealSet(bandB1, -300e-9, d, 130)
	times := RandomTimes(470e-9, 1700e-9, 120, 1)
	perm := rand.New(rand.NewSource(seed)).Perm(len(times))
	shuffled := make([]float64, len(times))
	for i, j := range perm {
		shuffled[i] = times[j]
	}
	ce, err := NewCostEvaluator(setB, setB1, times, pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewCostEvaluator(setB, setB1, shuffled, pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ce, cp
}

func TestCostInstantPermutationInvariance(t *testing.T) {
	ce, cp := permutedEvaluator(t, 23)
	for _, dHat := range []float64{90e-12, 180e-12, 310e-12} {
		a, err := ce.Cost(dHat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cp.Cost(dHat)
		if err != nil {
			t.Fatal(err)
		}
		if rd := relDiff(a, b); rd > 1e-12 {
			t.Errorf("dHat %g: cost %g (ordered) vs %g (permuted), rel %g", dHat, a, b, rd)
		}
	}
}

func TestCostWorkerCountInvarianceExact(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	dHats := []float64{60e-12, 180e-12, 350e-12}
	// Reference at one worker, then the same evaluator across pool widths:
	// the fold is index-ordered, so equality is exact, not approximate.
	ref := make([]float64, len(dHats))
	prev := par.SetWorkers(1)
	for i, dHat := range dHats {
		v, err := ce.Cost(dHat)
		if err != nil {
			par.SetWorkers(prev)
			t.Fatal(err)
		}
		ref[i] = v
	}
	par.SetWorkers(prev)
	for _, w := range []int{2, 3, 5, 16} {
		prev := par.SetWorkers(w)
		for i, dHat := range dHats {
			v, err := ce.Cost(dHat)
			if err != nil {
				par.SetWorkers(prev)
				t.Fatal(err)
			}
			if v != ref[i] {
				par.SetWorkers(prev)
				t.Fatalf("workers=%d dHat=%g: cost %g != one-worker %g", w, dHat, v, ref[i])
			}
		}
		par.SetWorkers(prev)
	}
}
