package skew

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/pnbs"
)

func TestGoldenSectionOnQuadratic(t *testing.T) {
	cost := func(d float64) (float64, error) { return (d - 3.7) * (d - 3.7), nil }
	res, err := GoldenSection(cost, 0, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DHat-3.7) > 1e-8 {
		t.Errorf("minimum at %g", res.DHat)
	}
	if res.CostEvals <= 0 || res.Cost > 1e-15 {
		t.Errorf("bookkeeping: %d evals, cost %g", res.CostEvals, res.Cost)
	}
	if _, err := GoldenSection(cost, 5, 5, 1e-9); err == nil {
		t.Error("empty bracket must fail")
	}
}

func TestGoldenSectionMatchesLMSOnPaperCost(t *testing.T) {
	d := 180e-12
	ce := paperEvaluator(t, d)
	m := ce.M()
	gold, err := GoldenSection(ce.Cost, m/1000, m*0.999, 0.05e-12)
	if err != nil {
		t.Fatal(err)
	}
	lms, err := Estimate(ce, 100e-12, LMSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Both must land on the same minimum (within the search tolerances).
	if math.Abs(gold.DHat-lms.DHat) > 1e-12 {
		t.Errorf("golden %g vs LMS %g", gold.DHat, lms.DHat)
	}
	if math.Abs(gold.DHat-d) > 1e-12 {
		t.Errorf("golden section missed the delay: %g", gold.DHat)
	}
	// Ablation claim: for a single run from a reasonable start, both need
	// tens of cost evaluations; neither should be pathological.
	if gold.CostEvals > 120 || lms.CostEvals > 200 {
		t.Errorf("excessive evals: golden %d, LMS %d", gold.CostEvals, lms.CostEvals)
	}
}

func TestParabolicRefineImprovesEstimate(t *testing.T) {
	// Smooth quartic-ish bowl with a known vertex.
	cost := func(d float64) (float64, error) {
		x := d - 2.5
		return x*x + 0.1*x*x*x*x, nil
	}
	got, err := ParabolicRefine(cost, 2.45, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 5e-3 {
		t.Errorf("refined to %g", got)
	}
	if _, err := ParabolicRefine(cost, 1, 0); err == nil {
		t.Error("h=0 must fail")
	}
	// Concave region: refinement must not move.
	conc := func(d float64) (float64, error) { return -d * d, nil }
	if got, _ := ParabolicRefine(conc, 1, 0.1); got != 1 {
		t.Errorf("concave case moved to %g", got)
	}
	// Shift clamping: an extreme asymmetry cannot jump more than h.
	steep := func(d float64) (float64, error) {
		if d < 1 {
			return 100, nil
		}
		return d, nil
	}
	got, _ = ParabolicRefine(steep, 1.05, 0.1)
	if math.Abs(got-1.05) > 0.1+1e-12 {
		t.Errorf("shift not clamped: %g", got)
	}
}

// Regression for the (DHat, Cost) mismatch: DHat used to be the bracket
// midpoint while Cost was the best interior probe's value — a pair no
// single point satisfied. DHat must now be an actually evaluated point
// whose recorded cost matches a re-evaluation exactly.
func TestGoldenSectionResultSelfConsistent(t *testing.T) {
	evaluated := make(map[float64]float64)
	cost := func(d float64) (float64, error) {
		v := (d-3.7)*(d-3.7) + 0.25
		evaluated[d] = v
		return v, nil
	}
	res, err := GoldenSection(cost, 0, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := evaluated[res.DHat]
	if !ok {
		t.Fatalf("DHat %g was never evaluated", res.DHat)
	}
	if v != res.Cost {
		t.Errorf("Cost %g != cost(DHat) %g", res.Cost, v)
	}
	// The best probe sits inside the final bracket, so it stays within the
	// requested tolerance of the true minimum.
	if math.Abs(res.DHat-3.7) > 1e-6 {
		t.Errorf("DHat %g outside tolerance of the minimum", res.DHat)
	}
}

// Regression for the nPts == 1 divide-by-zero: the grid denominator
// float64(nPts-1) used to produce a NaN delay (and thus a NaN cost) for a
// single-point sweep.
func TestCostCurveSinglePoint(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	m := ce.M()
	ds, costs := CostCurve(ce, m/1000, m*0.999, 1)
	if len(ds) != 1 || len(costs) != 1 {
		t.Fatalf("lengths %d, %d", len(ds), len(costs))
	}
	mid := m/1000 + (m*0.999-m/1000)/2
	if math.IsNaN(ds[0]) || ds[0] != mid {
		t.Errorf("single point delay %g, want midpoint %g", ds[0], mid)
	}
	if math.IsNaN(costs[0]) || costs[0] < 0 {
		t.Errorf("single point cost %g", costs[0])
	}
	// Degenerate request: no points, no panic, no NaNs.
	ds, costs = CostCurve(ce, m/1000, m*0.999, 0)
	if len(ds) != 0 || len(costs) != 0 {
		t.Errorf("nPts=0 returned %d/%d points", len(ds), len(costs))
	}
}

// Regression for the unclamped parabolic vertex: refining at the edge of
// the feasible interval must neither probe nor return an infeasible delay
// (outside ]0, m[ the PNBS kernel is singular; here the cost errors to
// emulate that).
func TestParabolicRefineBounded(t *testing.T) {
	lo, hi := 1.0, 2.0
	mkCost := func(vertex float64) CostFunc {
		return func(d float64) (float64, error) {
			if d < lo || d > hi {
				return 0, fmt.Errorf("infeasible delay %g", d)
			}
			return (d - vertex) * (d - vertex), nil
		}
	}
	// Centre at the lower edge: the d-h probe would be infeasible without
	// the inward clamp.
	got, err := ParabolicRefineBounded(mkCost(1.5), lo, 0.1, lo, hi)
	if err != nil {
		t.Fatalf("edge refine: %v", err)
	}
	if got < lo || got > hi {
		t.Errorf("refined delay %g outside [%g, %g]", got, lo, hi)
	}
	// Steeply asymmetric cost pushing the vertex below lo: the result must
	// be clamped to the interval, not extrapolated past it.
	desc := func(d float64) (float64, error) {
		if d < lo || d > hi {
			return 0, fmt.Errorf("infeasible delay %g", d)
		}
		return d * d, nil // minimum far below lo
	}
	got, err = ParabolicRefineBounded(desc, lo+0.1, 0.1, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if got < lo || got > hi {
		t.Errorf("vertex not clamped: %g", got)
	}
	// Interval narrower than 2h: the stencil must shrink to fit.
	got, err = ParabolicRefineBounded(mkCost(1.05), 1.0, 0.5, 1.0, 1.1)
	if err != nil {
		t.Fatalf("narrow interval: %v", err)
	}
	if got < 1.0 || got > 1.1 {
		t.Errorf("narrow-interval result %g outside bounds", got)
	}
	// Invalid bounds rejected.
	if _, err := ParabolicRefineBounded(mkCost(1.5), 1.5, 0.1, 2, 1); err == nil {
		t.Error("inverted bounds must fail")
	}
	// Unbounded wrapper unchanged: same vertex as before on a smooth bowl.
	gotU, err := ParabolicRefine(mkCost(1.5), 1.45, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotU-1.5) > 1e-9 {
		t.Errorf("unbounded refine moved to %g", gotU)
	}
}

func TestMultiCostValidationAndAveraging(t *testing.T) {
	d := 180e-12
	ce1 := paperEvaluator(t, d)
	ce2 := paperEvaluator(t, d)
	if _, err := NewMultiCost(nil); err == nil {
		t.Error("empty evaluator list must fail")
	}
	mc, err := NewMultiCost([]*CostEvaluator{ce1, ce2})
	if err != nil {
		t.Fatal(err)
	}
	if mc.K() != 2 || mc.M() != ce1.M() {
		t.Error("accessors")
	}
	// The average of two identical costs equals the single cost.
	v1, _ := ce1.Cost(150e-12)
	vm, err := mc.Cost(150e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vm-v1) > 1e-15 {
		t.Errorf("averaged cost %g vs %g", vm, v1)
	}
	res, err := EstimateMulti(mc, 100e-12, LMSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DHat-d) > 0.5e-12 {
		t.Errorf("multi estimate %.3f ps off", (res.DHat-d)*1e12)
	}
	// Mismatched geometry rejected.
	other := idealSet(pnbs.Band{FLow: 805e6, B: 72e6}, 0, d, 220)
	otherB1 := idealSet(HalfRateBand(pnbs.Band{FLow: 805e6, B: 72e6}), -300e-9, d, 130)
	ce3, err := NewCostEvaluator(other, otherB1, ce1.Times(), pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiCost([]*CostEvaluator{ce1, ce3}); err == nil {
		t.Error("mismatched geometry must fail")
	}
}
