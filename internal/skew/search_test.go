package skew

import (
	"math"
	"testing"

	"repro/internal/pnbs"
)

func TestGoldenSectionOnQuadratic(t *testing.T) {
	cost := func(d float64) (float64, error) { return (d - 3.7) * (d - 3.7), nil }
	res, err := GoldenSection(cost, 0, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DHat-3.7) > 1e-8 {
		t.Errorf("minimum at %g", res.DHat)
	}
	if res.CostEvals <= 0 || res.Cost > 1e-15 {
		t.Errorf("bookkeeping: %d evals, cost %g", res.CostEvals, res.Cost)
	}
	if _, err := GoldenSection(cost, 5, 5, 1e-9); err == nil {
		t.Error("empty bracket must fail")
	}
}

func TestGoldenSectionMatchesLMSOnPaperCost(t *testing.T) {
	d := 180e-12
	ce := paperEvaluator(t, d)
	m := ce.M()
	gold, err := GoldenSection(ce.Cost, m/1000, m*0.999, 0.05e-12)
	if err != nil {
		t.Fatal(err)
	}
	lms, err := Estimate(ce, 100e-12, LMSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Both must land on the same minimum (within the search tolerances).
	if math.Abs(gold.DHat-lms.DHat) > 1e-12 {
		t.Errorf("golden %g vs LMS %g", gold.DHat, lms.DHat)
	}
	if math.Abs(gold.DHat-d) > 1e-12 {
		t.Errorf("golden section missed the delay: %g", gold.DHat)
	}
	// Ablation claim: for a single run from a reasonable start, both need
	// tens of cost evaluations; neither should be pathological.
	if gold.CostEvals > 120 || lms.CostEvals > 200 {
		t.Errorf("excessive evals: golden %d, LMS %d", gold.CostEvals, lms.CostEvals)
	}
}

func TestParabolicRefineImprovesEstimate(t *testing.T) {
	// Smooth quartic-ish bowl with a known vertex.
	cost := func(d float64) (float64, error) {
		x := d - 2.5
		return x*x + 0.1*x*x*x*x, nil
	}
	got, err := ParabolicRefine(cost, 2.45, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 5e-3 {
		t.Errorf("refined to %g", got)
	}
	if _, err := ParabolicRefine(cost, 1, 0); err == nil {
		t.Error("h=0 must fail")
	}
	// Concave region: refinement must not move.
	conc := func(d float64) (float64, error) { return -d * d, nil }
	if got, _ := ParabolicRefine(conc, 1, 0.1); got != 1 {
		t.Errorf("concave case moved to %g", got)
	}
	// Shift clamping: an extreme asymmetry cannot jump more than h.
	steep := func(d float64) (float64, error) {
		if d < 1 {
			return 100, nil
		}
		return d, nil
	}
	got, _ = ParabolicRefine(steep, 1.05, 0.1)
	if math.Abs(got-1.05) > 0.1+1e-12 {
		t.Errorf("shift not clamped: %g", got)
	}
}

func TestMultiCostValidationAndAveraging(t *testing.T) {
	d := 180e-12
	ce1 := paperEvaluator(t, d)
	ce2 := paperEvaluator(t, d)
	if _, err := NewMultiCost(nil); err == nil {
		t.Error("empty evaluator list must fail")
	}
	mc, err := NewMultiCost([]*CostEvaluator{ce1, ce2})
	if err != nil {
		t.Fatal(err)
	}
	if mc.K() != 2 || mc.M() != ce1.M() {
		t.Error("accessors")
	}
	// The average of two identical costs equals the single cost.
	v1, _ := ce1.Cost(150e-12)
	vm, err := mc.Cost(150e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vm-v1) > 1e-15 {
		t.Errorf("averaged cost %g vs %g", vm, v1)
	}
	res, err := EstimateMulti(mc, 100e-12, LMSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DHat-d) > 0.5e-12 {
		t.Errorf("multi estimate %.3f ps off", (res.DHat-d)*1e12)
	}
	// Mismatched geometry rejected.
	other := idealSet(pnbs.Band{FLow: 805e6, B: 72e6}, 0, d, 220)
	otherB1 := idealSet(HalfRateBand(pnbs.Band{FLow: 805e6, B: 72e6}), -300e-9, d, 130)
	ce3, err := NewCostEvaluator(other, otherB1, ce1.Times(), pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiCost([]*CostEvaluator{ce1, ce3}); err == nil {
		t.Error("mismatched geometry must fail")
	}
}
