package skew

import (
	"fmt"
	"math"

	"repro/internal/obs/trace"
	"repro/internal/par"
)

// LMSConfig parameterises Algorithm 1.
type LMSConfig struct {
	// Mu0 is the initial step size in seconds (paper: 1e-12). 0 defaults to
	// 1 ps.
	Mu0 float64
	// MaxIter bounds the outer iterations. 0 defaults to 50.
	MaxIter int
	// TolStep terminates when the adapted step shrinks below this value
	// (delay resolution achieved). 0 defaults to 0.01 ps.
	TolStep float64
	// TolCost optionally terminates when the cost falls below it (0 = off).
	TolCost float64
	// DMin and DMax bound the search; the caller normally passes
	// ]margin, m - margin[ per Section IV-A.
	DMin, DMax float64
}

// Validate rejects configurations that the zero-value defaulting would
// otherwise let through silently: a negative iteration cap, non-finite or
// negative step sizes and tolerances, and non-finite bounds. Zero values
// remain "use the default"; Validate only rejects values that cannot mean
// anything. EstimateLMS (and everything layered on it) calls this, so a
// typo like Mu0: -1e-12 fails fast with a config error instead of
// descending in the wrong direction.
func (c LMSConfig) Validate() error {
	notFinite := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	switch {
	case c.MaxIter < 0:
		return fmt.Errorf("skew: LMSConfig.MaxIter %d is negative", c.MaxIter)
	case notFinite(c.Mu0) || c.Mu0 < 0:
		return fmt.Errorf("skew: LMSConfig.Mu0 %g must be finite and >= 0", c.Mu0)
	case notFinite(c.TolStep) || c.TolStep < 0:
		return fmt.Errorf("skew: LMSConfig.TolStep %g must be finite and >= 0", c.TolStep)
	case notFinite(c.TolCost) || c.TolCost < 0:
		return fmt.Errorf("skew: LMSConfig.TolCost %g must be finite and >= 0", c.TolCost)
	case notFinite(c.DMin) || notFinite(c.DMax):
		return fmt.Errorf("skew: LMSConfig bounds [%g, %g] must be finite", c.DMin, c.DMax)
	}
	return nil
}

func (c LMSConfig) withDefaults() LMSConfig {
	if c.Mu0 == 0 {
		c.Mu0 = 1e-12
	}
	if c.MaxIter == 0 {
		c.MaxIter = 50
	}
	if c.TolStep == 0 {
		c.TolStep = 1e-14
	}
	return c
}

// LMSResult reports the estimation outcome.
type LMSResult struct {
	// DHat is the final delay estimate.
	DHat float64
	// Iterations is the number of outer iterations executed.
	Iterations int
	// Converged indicates termination by step/cost tolerance rather than
	// the iteration cap.
	Converged bool
	// CostHistory and DHistory trace the optimisation (Fig. 6 data).
	CostHistory []float64
	DHistory    []float64
	// CostEvals counts objective evaluations (the paper's noted drawback:
	// "relatively high computational effort").
	CostEvals int
}

// CostFunc evaluates the objective at a candidate delay. It must be a
// pure function of dHat: the descent memoizes repeated candidates, so a
// cost that varied between calls at the same delay would desynchronize
// from the recorded histories.
type CostFunc func(dHat float64) (float64, error)

// EstimateLMS runs the paper's Algorithm 1: a normalized LMS descent on the
// dual-rate cost with a numerically estimated gradient
// grad_i = (eps_i - eps_{i-1}) / (D_i - D_{i-1}) and variable step size —
// halved (and the move retried) whenever the cost would increase, doubled
// after every accepted move. Normalisation reduces the scalar update to a
// signed step of magnitude mu, which makes mu directly interpretable in
// seconds.
func EstimateLMS(cost CostFunc, d0 float64, cfg LMSConfig) (LMSResult, error) {
	return EstimateLMSCtx(trace.Root, cost, d0, cfg)
}

// Trace span names for the LMS descent (interned once). The per-iteration
// spans and the D-hat/cost counter tracks are the Fig. 6 telemetry: a
// Perfetto capture of one estimation shows each outer iteration as a child
// span annotated with its evaluation count, and the convergence trajectory
// as two counter tracks streamed from the same append sites that feed
// DHistory/CostHistory.
var (
	tnLMS      = trace.Intern("skew.lms")
	tnLMSIter  = trace.Intern("skew.lms.iter")
	tnCostEval = trace.Intern("skew.cost.eval")
)

// EstimateLMSCtx is EstimateLMS under a trace parent: the whole descent
// runs inside a "skew.lms" span, each outer iteration in a "skew.lms.iter"
// child, and every objective evaluation in a "skew.cost.eval" child. The
// counter-track names embed the starting estimate ("skew.lms.dhat[d0=...ps]")
// so concurrent estimations — the Fig. 6 sweep runs its starts in parallel —
// land on separate, deterministically named tracks. With tracing disabled
// the extra cost is a handful of atomic loads across the whole descent.
func EstimateLMSCtx(tc trace.Ctx, cost CostFunc, d0 float64, cfg LMSConfig) (LMSResult, error) {
	if err := cfg.Validate(); err != nil {
		return LMSResult{}, err
	}
	c := cfg.withDefaults()
	if c.DMax <= c.DMin {
		return LMSResult{}, fmt.Errorf("skew: LMS bounds [%g, %g] invalid", c.DMin, c.DMax)
	}
	sp := trace.Start(tc, tnLMS)
	defer sp.End()
	var dhatTrack, costTrack string
	if sp.Active() {
		sp.SetFloat("d0", d0)
		sp.SetFloat("mu0", c.Mu0)
		label := fmt.Sprintf("[d0=%gps]", d0*1e12)
		dhatTrack = "skew.lms.dhat" + label
		costTrack = "skew.lms.cost" + label
	}
	clamp := func(d float64) float64 {
		if d < c.DMin {
			return c.DMin
		}
		if d > c.DMax {
			return c.DMax
		}
		return d
	}
	d0 = clamp(d0)
	res := LMSResult{}
	evals := 0
	// The descent revisits candidates: a clamped boundary step re-probes
	// the current point, and the direction-reversal retry walks back over
	// ground the failed direction covered — 20-30% of evaluations in the
	// paper scenario are repeats. The objective is a pure function of d
	// (the CostFunc contract), so repeated candidates are served from a
	// memo. Bookkeeping is untouched: CostEvals, the histories and the
	// per-evaluation trace spans count memo hits exactly like real
	// evaluations, which keeps every pinned artifact byte-identical.
	memo := map[float64]float64{}
	eval := func(d float64) (float64, error) {
		evals++
		es := trace.Start(sp.Ctx(), tnCostEval)
		v, ok := memo[d]
		var err error
		if ok {
			// The skew.cost.evals counter tracks logical objective
			// evaluations — the paper's evaluation-count drawback metric —
			// and is pinned equal to LMSResult.CostEvals, so a memo hit
			// records the evaluation it stands in for.
			mCostEvals.Inc()
			mMemoHits.Inc()
		} else {
			v, err = cost(d)
			if err == nil {
				memo[d] = v
			}
		}
		es.End()
		return v, err
	}
	// record appends one accepted point to the Fig. 6 history and, while
	// tracing, streams it onto the run's counter tracks (D-hat in ps).
	record := func(d, eps float64) {
		res.DHistory = append(res.DHistory, d)
		res.CostHistory = append(res.CostHistory, eps)
		if sp.Active() {
			trace.Counter(sp.Ctx(), dhatTrack, d*1e12)
			trace.Counter(sp.Ctx(), costTrack, eps)
		}
	}
	epsPrev, err := eval(d0)
	if err != nil {
		return res, fmt.Errorf("skew: LMS initial cost: %w", err)
	}
	// Bootstrap the finite difference with a one-step probe.
	mu := c.Mu0
	d := clamp(d0 + mu)
	if d == d0 {
		d = clamp(d0 - mu)
	}
	eps, err := eval(d)
	if err != nil {
		return res, fmt.Errorf("skew: LMS probe cost: %w", err)
	}
	record(d0, epsPrev)
	record(d, eps)
	dPrev := d0
	for iter := 0; iter < c.MaxIter; iter++ {
		res.Iterations = iter + 1
		it := trace.Start(sp.Ctx(), tnLMSIter)
		it.SetInt("iter", int64(iter))
		evalsEntry := evals
		endIter := func() {
			it.SetInt("evals", int64(evals-evalsEntry))
			it.End()
		}
		if c.TolCost > 0 && eps < c.TolCost {
			res.Converged = true
			endIter()
			break
		}
		grad := 0.0
		if d != dPrev {
			grad = (eps - epsPrev) / (d - dPrev)
		}
		dir := -1.0
		if grad <= 0 {
			dir = 1.0 // descend along -grad; flat: probe forward
		}
		// Step 3-5: shrink mu until the move decreases the cost. The secant
		// gradient can point the wrong way right after a step across the
		// minimum, so when one direction fails entirely the search retries
		// the opposite direction before declaring convergence.
		accepted := false
		muEntry := mu
		for attempt := 0; attempt < 2 && !accepted; attempt++ {
			mu = muEntry
			for mu >= c.TolStep {
				dNext := clamp(d + dir*mu)
				epsNext, err := eval(dNext)
				if err != nil {
					endIter()
					return res, fmt.Errorf("skew: LMS cost at %g: %w", dNext, err)
				}
				if epsNext < eps {
					dPrev, epsPrev = d, eps
					d, eps = dNext, epsNext
					record(d, eps)
					accepted = true
					break
				}
				mu /= 2
			}
			dir = -dir
		}
		endIter()
		if !accepted {
			res.Converged = true
			break
		}
		mu *= 2 // Step 6
	}
	res.DHat = d
	res.CostEvals = evals
	if sp.Active() {
		sp.SetFloat("dhat", d)
		sp.SetInt("cost_evals", int64(evals))
	}
	return res, nil
}

// Estimate runs Algorithm 1 against a CostEvaluator with sensible bounds:
// the search interval is ]margin, m - margin[ with margin = m/1000.
func Estimate(ce *CostEvaluator, d0 float64, cfg LMSConfig) (LMSResult, error) {
	return EstimateCtx(trace.Root, ce, d0, cfg)
}

// EstimateCtx is Estimate under a trace parent (see EstimateLMSCtx).
func EstimateCtx(tc trace.Ctx, ce *CostEvaluator, d0 float64, cfg LMSConfig) (LMSResult, error) {
	m := ce.M()
	if cfg.DMin == 0 && cfg.DMax == 0 {
		cfg.DMin = m / 1000
		cfg.DMax = m * 0.999
	}
	return EstimateLMSCtx(tc, ce.Cost, d0, cfg)
}

// CostCurve samples the cost function over nPts delays spanning [dLo, dHi]
// (Fig. 5 data). The sweep points are independent and fan out over the par
// pool. Errors at individual points (e.g. kernel instability) are recorded
// as NaN. nPts <= 0 returns empty slices; nPts == 1 samples the interval
// midpoint (the float64(nPts-1) grid denominator would otherwise divide by
// zero and return a NaN delay).
func CostCurve(ce *CostEvaluator, dLo, dHi float64, nPts int) (ds, costs []float64) {
	return CostCurveCtx(trace.Root, ce, dLo, dHi, nPts)
}

var tnCostCurve = trace.Intern("skew.costcurve")

// CostCurveCtx is CostCurve under a trace parent: the sweep runs inside a
// "skew.costcurve" span and the fan-out goes through par.ForCtx, so a
// capture shows the per-point evaluations on worker rows.
func CostCurveCtx(tc trace.Ctx, ce *CostEvaluator, dLo, dHi float64, nPts int) (ds, costs []float64) {
	sp := trace.Start(tc, tnCostCurve)
	sp.SetInt("points", int64(nPts))
	defer sp.End()
	if nPts < 2 {
		if nPts < 1 {
			return []float64{}, []float64{}
		}
		mid := dLo + (dHi-dLo)/2
		v, err := ce.Cost(mid)
		if err != nil {
			v = math.NaN()
		}
		return []float64{mid}, []float64{v}
	}
	ds = make([]float64, nPts)
	costs = make([]float64, nPts)
	par.ForCtx(sp.Ctx(), nPts, func(i int) {
		d := dLo + (dHi-dLo)*float64(i)/float64(nPts-1)
		ds[i] = d
		v, err := ce.Cost(d)
		if err != nil {
			costs[i] = math.NaN()
			return
		}
		costs[i] = v
	})
	return ds, costs
}
