package skew

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// LMSConfig parameterises Algorithm 1.
type LMSConfig struct {
	// Mu0 is the initial step size in seconds (paper: 1e-12). 0 defaults to
	// 1 ps.
	Mu0 float64
	// MaxIter bounds the outer iterations. 0 defaults to 50.
	MaxIter int
	// TolStep terminates when the adapted step shrinks below this value
	// (delay resolution achieved). 0 defaults to 0.01 ps.
	TolStep float64
	// TolCost optionally terminates when the cost falls below it (0 = off).
	TolCost float64
	// DMin and DMax bound the search; the caller normally passes
	// ]margin, m - margin[ per Section IV-A.
	DMin, DMax float64
}

func (c LMSConfig) withDefaults() LMSConfig {
	if c.Mu0 == 0 {
		c.Mu0 = 1e-12
	}
	if c.MaxIter == 0 {
		c.MaxIter = 50
	}
	if c.TolStep == 0 {
		c.TolStep = 1e-14
	}
	return c
}

// LMSResult reports the estimation outcome.
type LMSResult struct {
	// DHat is the final delay estimate.
	DHat float64
	// Iterations is the number of outer iterations executed.
	Iterations int
	// Converged indicates termination by step/cost tolerance rather than
	// the iteration cap.
	Converged bool
	// CostHistory and DHistory trace the optimisation (Fig. 6 data).
	CostHistory []float64
	DHistory    []float64
	// CostEvals counts objective evaluations (the paper's noted drawback:
	// "relatively high computational effort").
	CostEvals int
}

// CostFunc evaluates the objective at a candidate delay.
type CostFunc func(dHat float64) (float64, error)

// EstimateLMS runs the paper's Algorithm 1: a normalized LMS descent on the
// dual-rate cost with a numerically estimated gradient
// grad_i = (eps_i - eps_{i-1}) / (D_i - D_{i-1}) and variable step size —
// halved (and the move retried) whenever the cost would increase, doubled
// after every accepted move. Normalisation reduces the scalar update to a
// signed step of magnitude mu, which makes mu directly interpretable in
// seconds.
func EstimateLMS(cost CostFunc, d0 float64, cfg LMSConfig) (LMSResult, error) {
	c := cfg.withDefaults()
	if c.DMax <= c.DMin {
		return LMSResult{}, fmt.Errorf("skew: LMS bounds [%g, %g] invalid", c.DMin, c.DMax)
	}
	clamp := func(d float64) float64 {
		if d < c.DMin {
			return c.DMin
		}
		if d > c.DMax {
			return c.DMax
		}
		return d
	}
	d0 = clamp(d0)
	res := LMSResult{}
	evals := 0
	eval := func(d float64) (float64, error) {
		evals++
		return cost(d)
	}
	epsPrev, err := eval(d0)
	if err != nil {
		return res, fmt.Errorf("skew: LMS initial cost: %w", err)
	}
	// Bootstrap the finite difference with a one-step probe.
	mu := c.Mu0
	d := clamp(d0 + mu)
	if d == d0 {
		d = clamp(d0 - mu)
	}
	eps, err := eval(d)
	if err != nil {
		return res, fmt.Errorf("skew: LMS probe cost: %w", err)
	}
	res.DHistory = append(res.DHistory, d0, d)
	res.CostHistory = append(res.CostHistory, epsPrev, eps)
	dPrev := d0
	for iter := 0; iter < c.MaxIter; iter++ {
		res.Iterations = iter + 1
		if c.TolCost > 0 && eps < c.TolCost {
			res.Converged = true
			break
		}
		grad := 0.0
		if d != dPrev {
			grad = (eps - epsPrev) / (d - dPrev)
		}
		dir := -1.0
		if grad <= 0 {
			dir = 1.0 // descend along -grad; flat: probe forward
		}
		// Step 3-5: shrink mu until the move decreases the cost. The secant
		// gradient can point the wrong way right after a step across the
		// minimum, so when one direction fails entirely the search retries
		// the opposite direction before declaring convergence.
		accepted := false
		muEntry := mu
		for attempt := 0; attempt < 2 && !accepted; attempt++ {
			mu = muEntry
			for mu >= c.TolStep {
				dNext := clamp(d + dir*mu)
				epsNext, err := eval(dNext)
				if err != nil {
					return res, fmt.Errorf("skew: LMS cost at %g: %w", dNext, err)
				}
				if epsNext < eps {
					dPrev, epsPrev = d, eps
					d, eps = dNext, epsNext
					res.DHistory = append(res.DHistory, d)
					res.CostHistory = append(res.CostHistory, eps)
					accepted = true
					break
				}
				mu /= 2
			}
			dir = -dir
		}
		if !accepted {
			res.Converged = true
			break
		}
		mu *= 2 // Step 6
	}
	res.DHat = d
	res.CostEvals = evals
	return res, nil
}

// Estimate runs Algorithm 1 against a CostEvaluator with sensible bounds:
// the search interval is ]margin, m - margin[ with margin = m/1000.
func Estimate(ce *CostEvaluator, d0 float64, cfg LMSConfig) (LMSResult, error) {
	m := ce.M()
	if cfg.DMin == 0 && cfg.DMax == 0 {
		cfg.DMin = m / 1000
		cfg.DMax = m * 0.999
	}
	return EstimateLMS(ce.Cost, d0, cfg)
}

// CostCurve samples the cost function over nPts delays spanning [dLo, dHi]
// (Fig. 5 data). The sweep points are independent and fan out over the par
// pool. Errors at individual points (e.g. kernel instability) are recorded
// as NaN. nPts <= 0 returns empty slices; nPts == 1 samples the interval
// midpoint (the float64(nPts-1) grid denominator would otherwise divide by
// zero and return a NaN delay).
func CostCurve(ce *CostEvaluator, dLo, dHi float64, nPts int) (ds, costs []float64) {
	if nPts < 2 {
		if nPts < 1 {
			return []float64{}, []float64{}
		}
		mid := dLo + (dHi-dLo)/2
		v, err := ce.Cost(mid)
		if err != nil {
			v = math.NaN()
		}
		return []float64{mid}, []float64{v}
	}
	ds = make([]float64, nPts)
	costs = make([]float64, nPts)
	par.For(nPts, func(i int) {
		d := dLo + (dHi-dLo)*float64(i)/float64(nPts-1)
		ds[i] = d
		v, err := ce.Cost(d)
		if err != nil {
			costs[i] = math.NaN()
			return
		}
		costs[i] = v
	})
	return ds, costs
}
