package skew

import (
	"fmt"
	"math"
)

// This file provides alternative minimisers for the dual-rate cost. The
// paper's Section IV-A theorem guarantees the cost has a single minimum in
// ]0, m[ under the Eq. (9) conditions, which makes bracketing methods
// applicable; they serve as ablation baselines quantifying Algorithm 1's
// "relatively high computational effort" remark.

// GoldenResult reports a golden-section search outcome.
type GoldenResult struct {
	DHat      float64
	CostEvals int
	// Cost is the objective value at DHat.
	Cost float64
}

// GoldenSection minimises the cost over [lo, hi] to the absolute delay
// tolerance tol using golden-section search. Unlike Algorithm 1 it needs
// no starting estimate or step-size parameter, but it relies on strict
// unimodality over the bracket.
func GoldenSection(cost CostFunc, lo, hi, tol float64) (GoldenResult, error) {
	if hi <= lo {
		return GoldenResult{}, fmt.Errorf("skew: golden section bracket [%g, %g] invalid", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-14
	}
	const phi = 0.6180339887498949 // (sqrt(5)-1)/2
	evals := 0
	eval := func(d float64) (float64, error) {
		evals++
		return cost(d)
	}
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, err := eval(x1)
	if err != nil {
		return GoldenResult{}, err
	}
	f2, err := eval(x2)
	if err != nil {
		return GoldenResult{}, err
	}
	for b-a > tol {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			if f1, err = eval(x1); err != nil {
				return GoldenResult{}, err
			}
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			if f2, err = eval(x2); err != nil {
				return GoldenResult{}, err
			}
		}
	}
	d := (a + b) / 2
	fd := math.Min(f1, f2)
	return GoldenResult{DHat: d, CostEvals: evals, Cost: fd}, nil
}

// ParabolicRefine performs one parabolic (three-point quadratic) refinement
// of a delay estimate: it evaluates the cost at d-h, d, d+h and returns the
// vertex of the fitted parabola. Used to squeeze the final fraction of a
// picosecond out of either search.
func ParabolicRefine(cost CostFunc, d, h float64) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("skew: parabolic refine needs h > 0")
	}
	fm, err := cost(d - h)
	if err != nil {
		return 0, err
	}
	f0, err := cost(d)
	if err != nil {
		return 0, err
	}
	fp, err := cost(d + h)
	if err != nil {
		return 0, err
	}
	den := fm - 2*f0 + fp
	if den <= 0 {
		// Not convex at this scale; keep the input.
		return d, nil
	}
	shift := 0.5 * h * (fm - fp) / den
	if math.Abs(shift) > h {
		shift = math.Copysign(h, shift)
	}
	return d + shift, nil
}
