package skew

import (
	"fmt"
	"math"
)

// This file provides alternative minimisers for the dual-rate cost. The
// paper's Section IV-A theorem guarantees the cost has a single minimum in
// ]0, m[ under the Eq. (9) conditions, which makes bracketing methods
// applicable; they serve as ablation baselines quantifying Algorithm 1's
// "relatively high computational effort" remark.

// GoldenResult reports a golden-section search outcome.
type GoldenResult struct {
	// DHat is the best delay the search evaluated.
	DHat      float64
	CostEvals int
	// Cost is the objective value at DHat (the same evaluation, not a
	// re-computation).
	Cost float64
}

// GoldenSection minimises the cost over [lo, hi] to the absolute delay
// tolerance tol using golden-section search. Unlike Algorithm 1 it needs
// no starting estimate or step-size parameter, but it relies on strict
// unimodality over the bracket.
//
// DHat is the best probe point actually evaluated — not the bracket
// midpoint — so the returned (DHat, Cost) pair is self-consistent:
// Cost == cost(DHat) exactly. (A previous version returned the midpoint
// alongside the interior probe's value, a pair no single point satisfied.)
// The best probe lies inside the final bracket, hence within tol of the
// midpoint.
func GoldenSection(cost CostFunc, lo, hi, tol float64) (GoldenResult, error) {
	if hi <= lo {
		return GoldenResult{}, fmt.Errorf("skew: golden section bracket [%g, %g] invalid", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-14
	}
	const phi = 0.6180339887498949 // (sqrt(5)-1)/2
	evals := 0
	eval := func(d float64) (float64, error) {
		evals++
		return cost(d)
	}
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, err := eval(x1)
	if err != nil {
		return GoldenResult{}, err
	}
	f2, err := eval(x2)
	if err != nil {
		return GoldenResult{}, err
	}
	for b-a > tol {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			if f1, err = eval(x1); err != nil {
				return GoldenResult{}, err
			}
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			if f2, err = eval(x2); err != nil {
				return GoldenResult{}, err
			}
		}
	}
	d, fd := x1, f1
	if f2 < f1 {
		d, fd = x2, f2
	}
	return GoldenResult{DHat: d, CostEvals: evals, Cost: fd}, nil
}

// ParabolicRefine performs one parabolic (three-point quadratic) refinement
// of a delay estimate: it evaluates the cost at d-h, d, d+h and returns the
// vertex of the fitted parabola. Used to squeeze the final fraction of a
// picosecond out of either search. The result is unbounded; when the
// estimate sits near the edge of the feasible delay interval use
// ParabolicRefineBounded, which keeps both the probes and the vertex
// inside [dMin, dMax] — an unconstrained refine at a bracket edge can step
// outside ]0, m[ and hand the PNBS kernel a singular delay.
func ParabolicRefine(cost CostFunc, d, h float64) (float64, error) {
	return ParabolicRefineBounded(cost, d, h, math.Inf(-1), math.Inf(1))
}

// ParabolicRefineBounded is ParabolicRefine constrained to the feasible
// interval [dMin, dMax]: the centre point is clamped inward so all three
// probes d-h, d, d+h stay feasible (shrinking h when the interval is
// narrower than 2h), and the fitted vertex is clamped before it is
// returned.
func ParabolicRefineBounded(cost CostFunc, d, h, dMin, dMax float64) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("skew: parabolic refine needs h > 0")
	}
	if dMax < dMin {
		return 0, fmt.Errorf("skew: parabolic refine bounds [%g, %g] invalid", dMin, dMax)
	}
	clamp := func(v float64) float64 {
		if v < dMin {
			return dMin
		}
		if v > dMax {
			return dMax
		}
		return v
	}
	if dMax-dMin < 2*h {
		// Interval too narrow for the requested probe spacing: shrink the
		// stencil to fit instead of probing infeasible delays.
		h = (dMax - dMin) / 2
		if h <= 0 {
			return clamp(d), nil
		}
	}
	d = clamp(d)
	if d-h < dMin {
		d = dMin + h
	} else if d+h > dMax {
		d = dMax - h
	}
	fm, err := cost(d - h)
	if err != nil {
		return 0, err
	}
	f0, err := cost(d)
	if err != nil {
		return 0, err
	}
	fp, err := cost(d + h)
	if err != nil {
		return 0, err
	}
	den := fm - 2*f0 + fp
	if den <= 0 {
		// Not convex at this scale; keep the (clamped) input.
		return d, nil
	}
	shift := 0.5 * h * (fm - fp) / den
	if math.Abs(shift) > h {
		shift = math.Copysign(h, shift)
	}
	return clamp(d + shift), nil
}
