package skew

import (
	"testing"

	"repro/internal/par"
)

// TestCostFusedBitIdenticalAcrossWorkers pins the worker-count-invariance
// half of the fused path's contract: Cost chunks the instants into
// FIXED-size blocks (never derived from the pool width) and folds the
// per-chunk partials serially in chunk order, so the value at workers 2 and
// 8 must equal the single-worker value bit for bit.
func TestCostFusedBitIdenticalAcrossWorkers(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	dHats := []float64{50e-12, 120e-12, 180e-12, 240e-12, 400e-12}
	for _, dHat := range dHats {
		prev := par.SetWorkers(1)
		ref, err := ce.Cost(dHat)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			prev := par.SetWorkers(w)
			got, err := ce.Cost(dHat)
			par.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("workers=%d dHat=%g: fused Cost %.17g != single-worker %.17g",
					w, dHat, got, ref)
			}
		}
	}
}

// TestCostFusedMatchesSerialOracle is the tolerance half of the contract:
// the reassociated fused value must agree with the rebuild-everything
// per-instant serial oracle to 1e-9 relative (the documented estimate-stage
// golden tolerance; in practice the agreement is ~1e-12).
func TestCostFusedMatchesSerialOracle(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	for _, dHat := range []float64{50e-12, 120e-12, 180e-12, 240e-12, 400e-12} {
		got, err := ce.Cost(dHat)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ce.costSerial(dHat)
		if err != nil {
			t.Fatal(err)
		}
		if rd := relDiff(got, ref); rd > 1e-9 {
			t.Fatalf("dHat=%g: fused %.17g vs serial oracle %.17g (rel %g)", dHat, got, ref, rd)
		}
	}
}

// TestCostFusedPrepSurvivesRetune drives one pooled worker through many
// candidate delays: the first evaluation builds the contracted tables,
// every later one must reuse them through Retune (the tables are delay
// independent). Bit-equality with a FRESH evaluator's first evaluation at
// the same delay proves the reuse is exact — the retuned tables are the
// very floats a from-scratch build produces — and the serial oracle bounds
// the absolute accuracy at each stop.
func TestCostFusedPrepSurvivesRetune(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	for _, dHat := range []float64{100e-12, 180e-12, 260e-12, 180e-12, 100e-12} {
		got, err := ce.Cost(dHat) // pooled: same worker, Retune between calls
		if err != nil {
			t.Fatal(err)
		}
		fresh := paperEvaluator(t, 180e-12)
		want, err := fresh.Cost(dHat) // fresh evaluator: tables built from scratch
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dHat=%g: retuned worker %.17g != fresh build %.17g", dHat, got, want)
		}
		ref, err := ce.costSerial(dHat)
		if err != nil {
			t.Fatal(err)
		}
		if rd := relDiff(got, ref); rd > 1e-9 {
			t.Fatalf("dHat=%g: retuned %.17g vs serial oracle %.17g (rel %g)", dHat, got, ref, rd)
		}
	}
}

// TestCostBatchMatchesLoopOfCost pins the batching contract: CostBatch
// shares table setup across candidates but performs the exact per-candidate
// computation Cost does (same fixed chunks, same chunk-order fold), so the
// batch must equal a loop of Cost calls bit for bit — at any worker count.
func TestCostBatchMatchesLoopOfCost(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	dHats := []float64{60e-12, 110e-12, 180e-12, 230e-12, 310e-12, 390e-12}
	want := make([]float64, len(dHats))
	for i, d := range dHats {
		v, err := ce.Cost(d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	for _, w := range []int{1, 2, 8} {
		prev := par.SetWorkers(w)
		got, err := ce.CostBatch(dHats)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d candidate %d (dHat=%g): batch %.17g != Cost %.17g",
					w, i, dHats[i], got[i], want[i])
			}
		}
	}
}

// TestCostBatchPropagatesForbiddenDelay: a candidate on a forbidden delay
// (Eq. 3) fails the whole batch deterministically.
func TestCostBatchPropagatesForbiddenDelay(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	if _, err := ce.CostBatch([]float64{180e-12, 0}); err == nil {
		t.Fatal("batch with a zero-delay candidate did not fail")
	}
	// Empty batch is a no-op.
	out, err := ce.CostBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}
