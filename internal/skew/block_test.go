package skew

import (
	"testing"

	"repro/internal/par"
)

// TestCostBlockedBitIdenticalAcrossWorkers pins the acceptance contract of
// the blocked dispatch: Cost at workers 1, 2 and 8 must equal the
// per-instant serial oracle (fresh reconstructors, one At call per instant,
// index-order fold) bit for bit. AtBlock is bit-identical to At and the
// per-instant values are pure functions of (instant, capture, dHat), so the
// contiguous range split cannot change a single bit of the fold.
func TestCostBlockedBitIdenticalAcrossWorkers(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	dHats := []float64{50e-12, 120e-12, 180e-12, 240e-12, 400e-12}
	for _, dHat := range dHats {
		ref, err := ce.costSerial(dHat)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 8} {
			prev := par.SetWorkers(w)
			got, err := ce.Cost(dHat)
			par.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("workers=%d dHat=%g: blocked Cost %.17g != per-instant serial oracle %.17g",
					w, dHat, got, ref)
			}
		}
	}
}

// TestCostBlockedPrepSurvivesRetune drives one pooled worker through many
// candidate delays: the first evaluation builds the per-block tables, every
// later one must reuse them through Retune (the tables are delay
// independent). Bit-equality with the rebuild-everything per-instant oracle
// at each delay proves the reuse is exact, not approximate.
func TestCostBlockedPrepSurvivesRetune(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	for _, dHat := range []float64{100e-12, 180e-12, 260e-12, 180e-12, 100e-12} {
		got, err := ce.Cost(dHat) // pooled: same worker, Retune between calls
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ce.costSerial(dHat) // fresh build, per-instant At
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("dHat=%g: retuned worker %.17g != fresh per-instant build %.17g", dHat, got, ref)
		}
	}
}
