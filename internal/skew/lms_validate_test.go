package skew

import (
	"math"
	"strings"
	"testing"
)

func TestLMSConfigValidate(t *testing.T) {
	valid := LMSConfig{Mu0: 1e-12, MaxIter: 50, TolStep: 1e-14, DMin: 1e-12, DMax: 1e-9}
	cases := []struct {
		name    string
		mutate  func(*LMSConfig)
		wantErr string
	}{
		{"valid", func(c *LMSConfig) {}, ""},
		{"zero values default", func(c *LMSConfig) { *c = LMSConfig{DMin: 1e-12, DMax: 1e-9} }, ""},
		{"negative MaxIter", func(c *LMSConfig) { c.MaxIter = -1 }, "MaxIter"},
		{"negative Mu0", func(c *LMSConfig) { c.Mu0 = -1e-12 }, "Mu0"},
		{"NaN Mu0", func(c *LMSConfig) { c.Mu0 = math.NaN() }, "Mu0"},
		{"Inf Mu0", func(c *LMSConfig) { c.Mu0 = math.Inf(1) }, "Mu0"},
		{"negative TolStep", func(c *LMSConfig) { c.TolStep = -1 }, "TolStep"},
		{"NaN TolStep", func(c *LMSConfig) { c.TolStep = math.NaN() }, "TolStep"},
		{"negative TolCost", func(c *LMSConfig) { c.TolCost = -1 }, "TolCost"},
		{"NaN TolCost", func(c *LMSConfig) { c.TolCost = math.NaN() }, "TolCost"},
		{"NaN DMin", func(c *LMSConfig) { c.DMin = math.NaN() }, "bounds"},
		{"Inf DMax", func(c *LMSConfig) { c.DMax = math.Inf(1) }, "bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// EstimateLMS must reject an invalid config before evaluating the cost
// function — the silent behaviors this replaces (negative MaxIter skipping
// the loop, NaN Mu0 poisoning the probe) never touched the objective
// either, but returned a plausible-looking result.
func TestEstimateLMSRejectsInvalidConfig(t *testing.T) {
	evals := 0
	cost := func(d float64) (float64, error) { evals++; return d * d, nil }
	_, err := EstimateLMS(cost, 1e-10, LMSConfig{MaxIter: -3, DMin: 1e-12, DMax: 1e-9})
	if err == nil || !strings.Contains(err.Error(), "MaxIter") {
		t.Fatalf("EstimateLMS with negative MaxIter: err = %v", err)
	}
	_, err = EstimateLMS(cost, 1e-10, LMSConfig{Mu0: math.NaN(), DMin: 1e-12, DMax: 1e-9})
	if err == nil || !strings.Contains(err.Error(), "Mu0") {
		t.Fatalf("EstimateLMS with NaN Mu0: err = %v", err)
	}
	if evals != 0 {
		t.Errorf("invalid configs evaluated the cost %d times", evals)
	}
}
