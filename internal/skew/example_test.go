package skew_test

import (
	"fmt"
	"math"

	"repro/internal/pnbs"
	"repro/internal/skew"
)

// Blind delay identification: the LMS needs only two captures of the SAME
// unknown waveform at rates B and B/2 — no known test signal.
func ExampleEstimateLMS() {
	bandB := pnbs.Band{FLow: 955e6, B: 90e6}
	bandB1 := skew.HalfRateBand(bandB)
	dTrue := 180e-12

	// An arbitrary in-band waveform the estimator knows nothing about.
	f := func(t float64) float64 {
		return math.Cos(2*math.Pi*0.99e9*t) + 0.5*math.Cos(2*math.Pi*1.01e9*t+1)
	}
	capture := func(band pnbs.Band, t0 float64, n int) skew.SampleSet {
		tt := band.T()
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = f(t0 + float64(i)*tt)
			ch1[i] = f(t0 + float64(i)*tt + dTrue)
		}
		return skew.SampleSet{Band: band, T0: t0, Ch0: ch0, Ch1: ch1}
	}
	setB := capture(bandB, 0, 250)
	setB1 := capture(bandB1, -400e-9, 160)

	lo, hi, err := skew.EvalWindow(setB, setB1, pnbs.Options{})
	if err != nil {
		panic(err)
	}
	times := skew.RandomTimes(lo+50e-9, hi-50e-9, 200, 1)
	ce, err := skew.NewCostEvaluator(setB, setB1, times, pnbs.Options{})
	if err != nil {
		panic(err)
	}
	res, err := skew.Estimate(ce, 50e-12, skew.LMSConfig{Mu0: 1e-12})
	if err != nil {
		panic(err)
	}
	fmt.Printf("error below 0.5 ps: %v, converged in under 20 iterations: %v\n",
		math.Abs(res.DHat-dTrue) < 0.5e-12, res.Iterations < 20)
	// Output: error below 0.5 ps: true, converged in under 20 iterations: true
}

// The Section IV-A conditions that guarantee a single cost minimum.
func ExampleCheckUniqueness() {
	bandB := pnbs.Band{FLow: 955e6, B: 90e6}
	bandB1 := skew.HalfRateBand(bandB)
	fmt.Println("paper configuration feasible:", skew.CheckUniqueness(bandB, bandB1) == nil)
	fmt.Printf("search interval m = %.0f ps\n", skew.MUpper(bandB, bandB1)*1e12)
	// Output:
	// paper configuration feasible: true
	// search interval m = 483 ps
}
