package skew

import (
	"math"
	"sync"
	"testing"

	"repro/internal/par"
	"repro/internal/pnbs"
)

// relDiff returns |a-b| / max(|a|, |b|, tiny).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 1e-300 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestCostParallelMatchesSerialReference is the differential guarantee of
// the acceptance criteria: the pooled + Retune + parallel fused Cost path
// must agree with the seed's rebuild-everything serial path to 1e-9
// relative (the estimate-stage tolerance contract; observed agreement is
// ~1e-12), at every pool size.
func TestCostParallelMatchesSerialReference(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	dHats := []float64{50e-12, 120e-12, 180e-12, 240e-12, 400e-12}
	for _, w := range []int{1, 4} {
		prev := par.SetWorkers(w)
		for _, dHat := range dHats {
			got, err := ce.Cost(dHat)
			if err != nil {
				par.SetWorkers(prev)
				t.Fatal(err)
			}
			ref, err := ce.costSerial(dHat)
			if err != nil {
				par.SetWorkers(prev)
				t.Fatal(err)
			}
			if rd := relDiff(got, ref); rd > 1e-9 {
				par.SetWorkers(prev)
				t.Fatalf("workers=%d dHat=%g: parallel %g vs serial %g (rel %g)", w, dHat, got, ref, rd)
			}
		}
		par.SetWorkers(prev)
	}
}

// TestCostRepeatedCallsIdentical: the pooled path must be a pure function
// of dHat — worker recycling (Retune of a previously used pair) cannot
// leak state between candidate delays.
func TestCostRepeatedCallsIdentical(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	first := make(map[float64]float64)
	for _, dHat := range []float64{100e-12, 180e-12, 300e-12} {
		v, err := ce.Cost(dHat)
		if err != nil {
			t.Fatal(err)
		}
		first[dHat] = v
	}
	// Revisit in a different order, twice, after the pool is warm.
	for i := 0; i < 2; i++ {
		for _, dHat := range []float64{300e-12, 100e-12, 180e-12} {
			v, err := ce.Cost(dHat)
			if err != nil {
				t.Fatal(err)
			}
			if v != first[dHat] {
				t.Fatalf("pass %d dHat %g: %g != first %g", i, dHat, v, first[dHat])
			}
		}
	}
}

// TestCostConcurrentCallers drives Cost from many goroutines at once (the
// shape RunFig6's parallel traces produce) under the race detector.
func TestCostConcurrentCallers(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	dHats := []float64{60e-12, 140e-12, 180e-12, 220e-12, 300e-12, 380e-12}
	want := make([]float64, len(dHats))
	for i, d := range dHats {
		v, err := ce.Cost(d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4*len(dHats))
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, d := range dHats {
				v, err := ce.Cost(d)
				if err != nil {
					errc <- err
					return
				}
				if v != want[i] {
					errc <- errDiff{d, v, want[i]}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type errDiff struct{ d, got, want float64 }

func (e errDiff) Error() string { return "concurrent cost mismatch" }

func TestCostCurveParallelMatchesSerial(t *testing.T) {
	ce := paperEvaluator(t, 180e-12)
	refDs := make([]float64, 15)
	refCosts := make([]float64, 15)
	dLo, dHi := 120e-12, 260e-12
	for i := range refDs {
		refDs[i] = dLo + (dHi-dLo)*float64(i)/float64(len(refDs)-1)
		v, err := ce.costSerial(refDs[i])
		if err != nil {
			refCosts[i] = math.NaN()
			continue
		}
		refCosts[i] = v
	}
	prev := par.SetWorkers(4)
	ds, costs := CostCurve(ce, dLo, dHi, 15)
	par.SetWorkers(prev)
	for i := range ds {
		if ds[i] != refDs[i] {
			t.Fatalf("grid mismatch at %d: %g vs %g", i, ds[i], refDs[i])
		}
		if math.IsNaN(costs[i]) != math.IsNaN(refCosts[i]) {
			t.Fatalf("NaN mismatch at %d", i)
		}
		if !math.IsNaN(costs[i]) && relDiff(costs[i], refCosts[i]) > 1e-9 {
			t.Fatalf("point %d: %g vs %g", i, costs[i], refCosts[i])
		}
	}
}

func TestMultiCostParallelMatchesSerial(t *testing.T) {
	d := 180e-12
	bandB, bandB1 := paperBands()
	var evals []*CostEvaluator
	for k := 0; k < 3; k++ {
		setB := idealSet(bandB, 0, d, 220)
		setB1 := idealSet(bandB1, -300e-9, d, 130)
		times := RandomTimes(470e-9, 1700e-9, 100, int64(k+1))
		ce, err := NewCostEvaluator(setB, setB1, times, pnbs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		evals = append(evals, ce)
	}
	mc, err := NewMultiCost(evals)
	if err != nil {
		t.Fatal(err)
	}
	for _, dHat := range []float64{100e-12, 180e-12, 250e-12} {
		// Serial reference: mean of the per-capture serial costs.
		acc := 0.0
		for _, e := range evals {
			v, err := e.costSerial(dHat)
			if err != nil {
				t.Fatal(err)
			}
			acc += v
		}
		ref := acc / float64(len(evals))
		prev := par.SetWorkers(4)
		got, err := mc.Cost(dHat)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if rd := relDiff(got, ref); rd > 1e-9 {
			t.Fatalf("dHat %g: multi-cost %g vs serial %g (rel %g)", dHat, got, ref, rd)
		}
	}
}
