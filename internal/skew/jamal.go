package skew

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/pnbs"
)

// This file implements the known-sinusoid baseline the paper adapted from
// Jamal, Fu, Singh, Hurst & Lewis, "Calibration of sample-time error in a
// two-channel time-interleaved analog-to-digital converter" (TCAS-I 2004),
// reference [14]. The original is a background calibration loop for T/2
// interleaving; its essence for a sinusoidal stimulus is a per-channel
// phase reference: both channels sample the same known tone, the aliased
// digital tone is fitted on each channel, and the inter-channel phase
// difference divided by the RF frequency yields the delay. The technique
// requires a known, spectrally clean stimulus and — as Table I of the paper
// shows — its accuracy depends strongly on where the aliased tone lands
// (leakage and quantization-spur coherence), which is what makes it
// "restrictive and unreliable" compared with the LMS approach.

// SineEstimateConfig configures the baseline estimator.
type SineEstimateConfig struct {
	// F0 is the known RF frequency of the test sinusoid in Hz.
	F0 float64
	// B is the per-channel sampling rate (1/T).
	B float64
	// T0 is the nominal instant of channel 0's first sample.
	T0 float64
	// DMax bounds the admissible delay; it must be below the 1/F0 phase
	// ambiguity (pass m from the cost conditions).
	DMax float64
}

// AliasedFrequency returns the digital frequency (Hz, in [0, B/2]) where an
// RF tone at f0 lands after real sampling at rate B, and whether the
// spectrum is inverted at that alias.
func AliasedFrequency(f0, b float64) (fa float64, inverted bool) {
	fr := math.Mod(f0, b)
	if fr < 0 {
		fr += b
	}
	if fr <= b/2 {
		return fr, false
	}
	return b - fr, true
}

// EstimateSine recovers the inter-channel delay from the two channel
// captures of the known sinusoid: three-parameter sine fits at the aliased
// frequency give each channel's phase; the raw phase difference equals
// 2 pi f0 D modulo 2 pi.
func EstimateSine(cfg SineEstimateConfig, ch0, ch1 []float64) (float64, error) {
	if cfg.F0 <= 0 || cfg.B <= 0 {
		return 0, fmt.Errorf("skew: sine estimator needs positive F0/B, got %g/%g", cfg.F0, cfg.B)
	}
	if len(ch0) != len(ch1) || len(ch0) < 8 {
		return 0, fmt.Errorf("skew: sine estimator needs matched captures of >= 8 samples")
	}
	if cfg.DMax <= 0 || cfg.DMax >= 1/cfg.F0 {
		return 0, fmt.Errorf("skew: DMax %g outside ]0, 1/F0 = %g[ (phase ambiguity)",
			cfg.DMax, 1/cfg.F0)
	}
	fa, inverted := AliasedFrequency(cfg.F0, cfg.B)
	if fa < 1e-3*cfg.B || fa > 0.4999*cfg.B {
		return 0, fmt.Errorf("skew: aliased tone at %g Hz too close to 0 or B/2 for a sine fit", fa)
	}
	t := 1 / cfg.B
	ts := make([]float64, len(ch0))
	for i := range ts {
		ts[i] = float64(i) * t
	}
	_, p0, _, err := dsp.SineFit3(ts, ch0, fa)
	if err != nil {
		return 0, err
	}
	_, p1, _, err := dsp.SineFit3(ts, ch1, fa)
	if err != nil {
		return 0, err
	}
	if inverted {
		p0, p1 = -p0, -p1
	}
	// ch1 lags ch0 by D at the RF frequency: theta1 - theta0 = 2 pi f0 D.
	dphi := math.Mod(p1-p0, 2*math.Pi)
	if dphi < 0 {
		dphi += 2 * math.Pi
	}
	d := dphi / (2 * math.Pi * cfg.F0)
	if d > cfg.DMax {
		// The other wrap candidate (negative lag) is out of the admissible
		// interval; report the in-range interpretation when one exists.
		alt := d - 1/cfg.F0
		if alt >= 0 && alt <= cfg.DMax {
			return alt, nil
		}
		return 0, fmt.Errorf("skew: sine estimate %g s outside ]0, %g]", d, cfg.DMax)
	}
	return d, nil
}

// SineTestFrequency picks an in-band RF frequency whose alias lands at the
// requested digital frequency faTarget (e.g. 0.4*B as in Table I): the
// smallest f0 = n*B + faTarget inside the band. It errors when the band
// contains no such frequency.
func SineTestFrequency(band pnbs.Band, b, faTarget float64) (float64, error) {
	if faTarget <= 0 || faTarget >= b/2 {
		return 0, fmt.Errorf("skew: alias target %g outside ]0, B/2[", faTarget)
	}
	nLo := int(math.Ceil((band.FLow - faTarget) / b))
	for n := nLo; ; n++ {
		f0 := float64(n)*b + faTarget
		if f0 > band.FHigh() {
			break
		}
		if f0 >= band.FLow {
			return f0, nil
		}
	}
	// Try the inverted alias family f0 = n*B - faTarget.
	nLo = int(math.Ceil((band.FLow + faTarget) / b))
	for n := nLo; ; n++ {
		f0 := float64(n)*b - faTarget
		if f0 > band.FHigh() {
			break
		}
		if f0 >= band.FLow {
			return f0, nil
		}
	}
	return 0, fmt.Errorf("skew: no in-band tone aliases to %g Hz at rate %g", faTarget, b)
}

// EstimateSineUnknownFreq relaxes the known-frequency requirement of the
// sine-fit baseline: a coarse RF frequency guess (within ~B/(4N) of the
// truth after aliasing) is refined with a four-parameter fit before the
// phase-reference estimate. It still requires a sinusoidal stimulus — the
// structural limitation the LMS technique removes — but tolerates
// synthesizer offset.
func EstimateSineUnknownFreq(cfg SineEstimateConfig, f0Guess float64, ch0, ch1 []float64) (dHat, f0Refined float64, err error) {
	if f0Guess <= 0 || cfg.B <= 0 {
		return 0, 0, fmt.Errorf("skew: unknown-freq estimator needs positive guess/B")
	}
	if len(ch0) != len(ch1) || len(ch0) < 16 {
		return 0, 0, fmt.Errorf("skew: unknown-freq estimator needs matched captures of >= 16 samples")
	}
	fa, inverted := AliasedFrequency(f0Guess, cfg.B)
	if fa < 1e-3*cfg.B || fa > 0.4999*cfg.B {
		return 0, 0, fmt.Errorf("skew: guessed alias %g too close to 0 or B/2", fa)
	}
	t := 1 / cfg.B
	ts := make([]float64, len(ch0))
	for i := range ts {
		ts[i] = float64(i) * t
	}
	faRef, _, _, _, err := dsp.SineFit4(ts, ch0, fa, 6)
	if err != nil {
		return 0, 0, err
	}
	// Map the refined alias back to RF around the guess.
	dAlias := faRef - fa
	if inverted {
		dAlias = -dAlias
	}
	f0 := f0Guess + dAlias
	refined := cfg
	refined.F0 = f0
	d, err := EstimateSine(refined, ch0, ch1)
	if err != nil {
		return 0, 0, err
	}
	return d, f0, nil
}
