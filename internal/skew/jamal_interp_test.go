package skew

import (
	"math"
	"testing"

	"repro/internal/pnbs"
)

// toneChannels samples an ideal RF sinusoid into the two channels.
func toneChannels(f0, b, d float64, n int) (ch0, ch1 []float64) {
	tt := 1 / b
	ch0 = make([]float64, n)
	ch1 = make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = math.Cos(2 * math.Pi * f0 * float64(i) * tt)
		ch1[i] = math.Cos(2 * math.Pi * f0 * (float64(i)*tt + d))
	}
	return ch0, ch1
}

func TestJamalInterpFrequencySensitivity(t *testing.T) {
	// The interpolation-based adaptation of [14] must show a systematic,
	// omega0-dependent error of picosecond order — the paper's Table I
	// behaviour — even on noiseless captures.
	d := 180e-12
	b := 90e6
	band := pnbs.Band{FLow: 955e6, B: b}
	m := MUpper(band, HalfRateBand(band))
	errs := map[float64]float64{}
	for _, frac := range []float64{0.40, 0.46} {
		f0, err := SineTestFrequency(band, b, frac*b)
		if err != nil {
			t.Fatal(err)
		}
		ch0, ch1 := toneChannels(f0, b, d, 512)
		got, err := EstimateJamalInterp(SineEstimateConfig{F0: f0, B: b, DMax: m}, ch0, ch1)
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		errs[frac] = math.Abs(got - d)
	}
	// Errors are systematic (interpolation curvature), ps-scale, and differ
	// strongly between the two frequencies.
	for frac, e := range errs {
		if e < 0.5e-12 || e > 60e-12 {
			t.Errorf("omega0 = %g B: error %.2f ps outside the expected systematic range",
				frac, e*1e12)
		}
	}
	ratio := errs[0.40] / errs[0.46]
	if ratio > 0.67 && ratio < 1.5 {
		t.Errorf("errors too similar (%.2f vs %.2f ps): no omega0 sensitivity",
			errs[0.40]*1e12, errs[0.46]*1e12)
	}
}

func TestJamalInterpBeatenByCoherentFit(t *testing.T) {
	// The idealized coherent sine fit (EstimateSine) must out-perform the
	// interpolation loop on the same data: the bias is a property of the
	// interpolator, not of the data.
	d := 180e-12
	b := 90e6
	band := pnbs.Band{FLow: 955e6, B: b}
	m := MUpper(band, HalfRateBand(band))
	f0, _ := SineTestFrequency(band, b, 0.4*b)
	ch0, ch1 := toneChannels(f0, b, d, 512)
	cfg := SineEstimateConfig{F0: f0, B: b, DMax: m}
	dJamal, err := EstimateJamalInterp(cfg, ch0, ch1)
	if err != nil {
		t.Fatal(err)
	}
	dSine, err := EstimateSine(cfg, ch0, ch1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dSine-d) >= math.Abs(dJamal-d) {
		t.Errorf("coherent fit (%.3f ps err) not better than interpolation loop (%.3f ps err)",
			math.Abs(dSine-d)*1e12, math.Abs(dJamal-d)*1e12)
	}
}

func TestJamalInterpValidation(t *testing.T) {
	good := make([]float64, 64)
	if _, err := EstimateJamalInterp(SineEstimateConfig{B: 90e6, DMax: 1e-12}, good, good); err == nil {
		t.Error("F0=0 must fail")
	}
	cfg := SineEstimateConfig{F0: 1.026e9, B: 90e6, DMax: 480e-12}
	if _, err := EstimateJamalInterp(cfg, good[:8], good[:8]); err == nil {
		t.Error("too short must fail")
	}
	if _, err := EstimateJamalInterp(SineEstimateConfig{F0: 1.026e9, B: 90e6, DMax: 2e-9}, good, good); err == nil {
		t.Error("DMax >= 1/F0 must fail")
	}
	// DC alias.
	if _, err := EstimateJamalInterp(SineEstimateConfig{F0: 900e6, B: 90e6, DMax: 480e-12}, good, good); err == nil {
		t.Error("DC alias must fail")
	}
	// Inverted alias unsupported.
	if _, err := EstimateJamalInterp(SineEstimateConfig{F0: 1.036e9, B: 90e6, DMax: 480e-12}, good, good); err == nil {
		t.Error("inverted alias must fail")
	}
	// All-zero channels: no consistent shift.
	if _, err := EstimateJamalInterp(cfg, good, good); err == nil {
		t.Error("degenerate data must fail")
	}
}

func TestEstimateSineUnknownFreqRefines(t *testing.T) {
	d := 180e-12
	b := 90e6
	band := pnbs.Band{FLow: 955e6, B: b}
	f0, _ := SineTestFrequency(band, b, 0.4*b)
	fTrue := f0 + 21e3 // synthesizer offset the known-freq fit would misread
	ch0, ch1 := toneChannels(fTrue, b, d, 1024)
	m := MUpper(band, HalfRateBand(band))
	cfg := SineEstimateConfig{B: b, DMax: m}
	got, fRef, err := EstimateSineUnknownFreq(cfg, f0, ch0, ch1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fRef-fTrue) > 100 {
		t.Errorf("refined frequency off by %g Hz", fRef-fTrue)
	}
	if math.Abs(got-d) > 0.3e-12 {
		t.Errorf("delay %.3f ps, want 180", got*1e12)
	}
	// The known-frequency fit with the WRONG frequency degrades: the phase
	// ramp from the 21 kHz offset corrupts both channel phases coherently,
	// so compare against a deliberately mistuned estimate to document why
	// refinement matters for long records.
	if _, _, err := EstimateSineUnknownFreq(SineEstimateConfig{B: 0}, f0, ch0, ch1); err == nil {
		t.Error("bad config must fail")
	}
	if _, _, err := EstimateSineUnknownFreq(cfg, 900e6, ch0, ch1); err == nil {
		t.Error("DC-alias guess must fail")
	}
	if _, _, err := EstimateSineUnknownFreq(cfg, f0, ch0[:8], ch1[:8]); err == nil {
		t.Error("short capture must fail")
	}
}
