package skew

import (
	"fmt"
	"math"
)

// EstimateJamalInterp is the faithful adaptation of the Jamal et al. [14]
// background calibration to the nonuniform bandpass sampler. The original
// technique predicts the delayed channel from the reference channel with a
// short interpolator and correlates the prediction error with the local
// slope; the converged adaptive loop is equivalent to the least-squares
// linear-interpolation delay estimator implemented here:
//
//	a* = sum((ch1 - ch0)(ch0' - ch0)) / sum((ch0' - ch0)^2)
//
// over the candidate sample shift n0, where ch0' = ch0 shifted by one. The
// apparent digital delay tau = (n0 + a*) T of the aliased tone is then
// mapped back to the RF delay via D = tau * fa / f0.
//
// Linear interpolation of a sinusoid is only exact for slowly varying
// signals; at the aliased frequencies used in Table I (0.4 B, 0.46 B) the
// curvature error biases the estimate by several picoseconds, with a strong
// and non-monotonic dependence on omega0 — reproducing the paper's finding
// that the technique is "sensitive w.r.t. the frequency of the input test
// signal" and "restrictive and unreliable" compared with the LMS approach.
func EstimateJamalInterp(cfg SineEstimateConfig, ch0, ch1 []float64) (float64, error) {
	if cfg.F0 <= 0 || cfg.B <= 0 {
		return 0, fmt.Errorf("skew: jamal estimator needs positive F0/B, got %g/%g", cfg.F0, cfg.B)
	}
	if len(ch0) != len(ch1) || len(ch0) < 16 {
		return 0, fmt.Errorf("skew: jamal estimator needs matched captures of >= 16 samples")
	}
	if cfg.DMax <= 0 || cfg.DMax >= 1/cfg.F0 {
		return 0, fmt.Errorf("skew: DMax %g outside ]0, 1/F0 = %g[", cfg.DMax, 1/cfg.F0)
	}
	fa, inverted := AliasedFrequency(cfg.F0, cfg.B)
	if fa < 1e-3*cfg.B {
		return 0, fmt.Errorf("skew: aliased tone at %g Hz too close to DC", fa)
	}
	if inverted {
		return 0, fmt.Errorf("skew: inverted alias not supported by the interpolation loop")
	}
	t := 1 / cfg.B
	// The apparent digital delay can span several sample periods
	// (tau = D f0 / fa); search the integer shift and fit the fraction.
	maxShift := int(math.Ceil(1/(fa*t))) + 1
	bestRes := math.Inf(1)
	bestTau := 0.0
	n := len(ch0)
	for n0 := 0; n0 < maxShift && n0+1 < n; n0++ {
		var num, den, res float64
		for i := 0; i+n0+1 < n; i++ {
			d0 := ch0[i+n0]
			d1 := ch0[i+n0+1]
			num += (ch1[i] - d0) * (d1 - d0)
			den += (d1 - d0) * (d1 - d0)
		}
		if den == 0 {
			continue
		}
		a := num / den
		if a < -0.25 || a > 1.25 {
			continue // fraction outside this interval: wrong shift
		}
		// Residual of the linear-interpolation fit.
		for i := 0; i+n0+1 < n; i++ {
			p := (1-a)*ch0[i+n0] + a*ch0[i+n0+1]
			e := ch1[i] - p
			res += e * e
		}
		if res < bestRes {
			bestRes = res
			bestTau = (float64(n0) + a) * t
		}
	}
	if math.IsInf(bestRes, 1) {
		return 0, fmt.Errorf("skew: jamal estimator found no consistent shift")
	}
	// The apparent delay is only defined modulo one period of the aliased
	// tone; reduce before mapping back to the RF delay.
	tau := math.Mod(bestTau, 1/fa)
	if tau < 0 {
		tau += 1 / fa
	}
	d := tau * fa / cfg.F0 // in [0, 1/F0)
	if d > cfg.DMax {
		return 0, fmt.Errorf("skew: jamal estimate %g s outside ]0, %g]", d, cfg.DMax)
	}
	return d, nil
}
