package skew

import (
	"fmt"

	"repro/internal/par"
)

// MultiCost aggregates the dual-rate cost over several independent
// acquisitions of the same transmitter: J(D) = mean_k J_k(D). The physical
// delay D is common to all captures while the clock jitter is not, so the
// empirical minimum's jitter-induced wander shrinks as 1/sqrt(K) — the
// route from this simulator's ~0.8 ps single-capture accuracy toward the
// paper's <0.1 ps regime without any hardware change (captures are cheap:
// the ADCs are idle anyway during Tx test).
type MultiCost struct {
	evals []*CostEvaluator
}

// NewMultiCost validates and bundles the per-capture evaluators.
func NewMultiCost(evals []*CostEvaluator) (*MultiCost, error) {
	if len(evals) == 0 {
		return nil, fmt.Errorf("skew: multi-capture cost needs at least one evaluator")
	}
	m := evals[0].M()
	for i, e := range evals[1:] {
		if e.M() != m {
			return nil, fmt.Errorf("skew: evaluator %d has different band geometry (m %g vs %g)",
				i+1, e.M(), m)
		}
	}
	return &MultiCost{evals: evals}, nil
}

// K returns the number of aggregated captures.
func (mc *MultiCost) K() int { return len(mc.evals) }

// M returns the searchable-delay upper limit shared by all captures.
func (mc *MultiCost) M() float64 { return mc.evals[0].M() }

// Cost evaluates the averaged objective. The K captures are independent,
// so they fan out over the par pool; the per-capture costs are averaged in
// capture order, keeping the result independent of the pool size.
func (mc *MultiCost) Cost(dHat float64) (float64, error) {
	vals, err := par.MapErr(len(mc.evals), func(i int) (float64, error) {
		return mc.evals[i].Cost(dHat)
	})
	if err != nil {
		return 0, err
	}
	acc := 0.0
	for _, v := range vals {
		acc += v
	}
	return acc / float64(len(mc.evals)), nil
}

// EstimateMulti runs Algorithm 1 on the averaged cost with the same default
// bounds as Estimate.
func EstimateMulti(mc *MultiCost, d0 float64, cfg LMSConfig) (LMSResult, error) {
	m := mc.M()
	if cfg.DMin == 0 && cfg.DMax == 0 {
		cfg.DMin = m / 1000
		cfg.DMax = m * 0.999
	}
	return EstimateLMS(mc.Cost, d0, cfg)
}
