package skew

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pnbs"
)

// fusedCase is one configuration of the error-bound differential sweep:
// the fused reassociated cost must agree with the per-instant serial oracle
// to 1e-9 relative across bands (including an integer-positioned half-rate
// band where the s0 kernel term vanishes), filter lengths, and skews.
type fusedCase struct {
	name     string
	band     pnbs.Band
	halfTaps int
	d        float64 // true skew baked into the capture
	dHats    []float64
}

func fusedCases() []fusedCase {
	return []fusedCase{
		{
			name:     "paper/61taps",
			band:     pnbs.Band{FLow: 955e6, B: 90e6},
			halfTaps: 0, // default 30
			d:        180e-12,
			dHats:    []float64{60e-12, 180e-12, 181e-12, 350e-12},
		},
		{
			name:     "paper/short-filter",
			band:     pnbs.Band{FLow: 955e6, B: 90e6},
			halfTaps: 8,
			d:        250e-12,
			dHats:    []float64{100e-12, 250e-12, 400e-12},
		},
		{
			name: "low-band/29taps",
			band: pnbs.Band{FLow: 430e6, B: 60e6},
			// fc = 460 MHz: k+ B = 960 MHz vs k1 B1 = 900, k1+ B1 = 930.
			halfTaps: 14,
			d:        300e-12,
			dHats:    []float64{150e-12, 300e-12, 500e-12},
		},
		{
			name: "s0zero-halfrate/61taps",
			// fc = 980 MHz, B = 80 MHz: the half-rate band (960 MHz lower
			// edge, 40 MHz wide) is integer positioned (2 fl1/B1 = 48), so
			// the rate-B1 reconstructor runs the s0Zero fused branch.
			band:     pnbs.Band{FLow: 940e6, B: 80e6},
			halfTaps: 0,
			d:        180e-12,
			dHats:    []float64{90e-12, 180e-12, 300e-12},
		},
	}
}

func caseEvaluator(t *testing.T, fc fusedCase) *CostEvaluator {
	t.Helper()
	opt := pnbs.Options{HalfTaps: fc.halfTaps}
	bandB1 := HalfRateBand(fc.band)
	setB := idealSet(fc.band, 0, fc.d, 220)
	setB1 := idealSet(bandB1, -300e-9, fc.d, 130)
	// Deterministic capture noise keeps the cost floor honest: a noiseless
	// synthetic capture evaluated EXACTLY at its true skew collapses the
	// cost ten orders of magnitude below any physical run (pure
	// reconstruction-truncation residue), where relative comparison is
	// meaningless. Real captures are ADC-noise floored; model that.
	rng := rand.New(rand.NewSource(11))
	for _, ch := range [][]float64{setB.Ch0, setB.Ch1, setB1.Ch0, setB1.Ch1} {
		for i := range ch {
			ch[i] += 0.01 * (2*rng.Float64() - 1)
		}
	}
	lo, hi, err := EvalWindow(setB, setB1, opt)
	if err != nil {
		t.Fatal(err)
	}
	times := RandomTimes(lo, hi, 120, 7)
	ce, err := NewCostEvaluator(setB, setB1, times, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ce
}

// TestCostFusedErrorBoundSweep is the table-driven differential guarantee:
// |CostFused − costSerial| / costSerial <= 1e-9 across band positions,
// filter lengths and candidate skews, including candidates at the cost
// minimum (the worst cancellation case) and an s0Zero half-rate band.
func TestCostFusedErrorBoundSweep(t *testing.T) {
	for _, fc := range fusedCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			ce := caseEvaluator(t, fc)
			for _, dHat := range fc.dHats {
				got, err := ce.Cost(dHat)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := ce.costSerial(dHat)
				if err != nil {
					t.Fatal(err)
				}
				if rd := relDiff(got, ref); rd > 1e-9 {
					t.Fatalf("dHat=%g: fused %.17g vs serial %.17g (rel %g)",
						dHat, got, ref, rd)
				}
			}
		})
	}
}

// FuzzCostFusedVsSerial fuzzes the fused-vs-serial agreement over random
// captures, candidate delays, and filter lengths: for every candidate both
// paths accept, the reassociated fused cost must stay within 1e-9 relative
// of the per-instant serial oracle. Random (noise-like) captures exercise
// the reassociation error without the structure of a true skew; the seeded
// table rows cover the paper geometry and a near-minimum candidate.
func FuzzCostFusedVsSerial(f *testing.F) {
	f.Add(0.36, int64(1), uint8(6))
	f.Add(0.5, int64(2), uint8(12))
	f.Add(0.12, int64(3), uint8(30))
	f.Add(0.9, int64(4), uint8(6))
	f.Add(0.63, int64(5), uint8(9))
	f.Fuzz(func(t *testing.T, dFrac float64, seed int64, taps uint8) {
		if math.IsNaN(dFrac) || math.IsInf(dFrac, 0) {
			t.Skip()
		}
		bandB, bandB1 := pnbs.Band{FLow: 955e6, B: 90e6}, HalfRateBand(pnbs.Band{FLow: 955e6, B: 90e6})
		m := MUpper(bandB, bandB1)
		// Fold the fuzzed fraction into ]0, m[ away from the endpoints.
		dHat := (0.02 + 0.96*math.Abs(math.Remainder(dFrac, 1))) * m
		halfTaps := 4 + int(taps)%28
		opt := pnbs.Options{HalfTaps: halfTaps}

		rng := rand.New(rand.NewSource(seed))
		mk := func(band pnbs.Band, t0 float64, n int) SampleSet {
			ch0 := make([]float64, n)
			ch1 := make([]float64, n)
			for i := range ch0 {
				ch0[i] = 2*rng.Float64() - 1
				ch1[i] = 2*rng.Float64() - 1
			}
			return SampleSet{Band: band, T0: t0, Ch0: ch0, Ch1: ch1}
		}
		setB := mk(bandB, 0, 160)
		setB1 := mk(bandB1, -300e-9, 100)
		lo, hi, err := EvalWindow(setB, setB1, opt)
		if err != nil {
			t.Skip()
		}
		times := RandomTimes(lo, hi, 50, seed)
		ce, err := NewCostEvaluator(setB, setB1, times, opt)
		if err != nil {
			t.Skip()
		}
		got, gotErr := ce.Cost(dHat)
		ref, refErr := ce.costSerial(dHat)
		if (gotErr == nil) != (refErr == nil) {
			t.Fatalf("feasibility disagreement at dHat=%g: fused err %v, serial err %v",
				dHat, gotErr, refErr)
		}
		if gotErr != nil {
			return
		}
		if rd := relDiff(got, ref); rd > 1e-9 {
			t.Fatalf("dHat=%g halfTaps=%d: fused %.17g vs serial %.17g (rel %g)",
				dHat, halfTaps, got, ref, rd)
		}
	})
}
