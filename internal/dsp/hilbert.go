package dsp

import (
	"fmt"
	"math"
)

// HilbertFIR designs an odd-length linear-phase FIR Hilbert transformer
// (type III): h[n] = 2/(pi n) for odd n, 0 for even n, Kaiser-windowed.
// Combined with a matching delay it yields the analytic signal
// x[n] + i xh[n] of a real record — the discrete cousin of sig.Downconvert.
func HilbertFIR(numTaps int, beta float64) (*FIR, error) {
	if numTaps < 7 {
		return nil, fmt.Errorf("dsp: Hilbert transformer needs >= 7 taps, got %d", numTaps)
	}
	if numTaps%2 == 0 {
		return nil, fmt.Errorf("dsp: Hilbert transformer needs an odd tap count, got %d", numTaps)
	}
	if beta == 0 {
		beta = 8
	}
	win := Kaiser(numTaps, beta)
	taps := make([]float64, numTaps)
	mid := numTaps / 2
	for i := range taps {
		n := i - mid
		if n%2 != 0 {
			taps[i] = 2 / (math.Pi * float64(n)) * win[i]
		}
	}
	return &FIR{Taps: taps}, nil
}

// AnalyticSignal returns the analytic signal of a real record using a
// HilbertFIR of the given length: out[n] = x[n] + i H{x}[n], both branches
// delay-aligned. Edge regions (half the filter length) are less accurate.
func AnalyticSignal(x []float64, numTaps int) ([]complex128, error) {
	h, err := HilbertFIR(numTaps, 0)
	if err != nil {
		return nil, err
	}
	q := h.Filter(x)
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = complex(x[i], q[i])
	}
	return out, nil
}

// InstantaneousFrequency estimates f[n] (cycles/sample) from an analytic
// signal by phase differencing.
func InstantaneousFrequency(z []complex128) []float64 {
	if len(z) < 2 {
		return nil
	}
	out := make([]float64, len(z)-1)
	for i := 1; i < len(z); i++ {
		c := z[i] * complex(real(z[i-1]), -imag(z[i-1]))
		out[i-1] = math.Atan2(imag(c), real(c)) / (2 * math.Pi)
	}
	return out
}
