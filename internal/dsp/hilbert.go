package dsp

import (
	"fmt"
	"math"
)

// HilbertFIR designs an odd-length linear-phase FIR Hilbert transformer
// (type III): h[n] = 2/(pi n) for odd n, 0 for even n, Kaiser-windowed.
// Combined with a matching delay it yields the analytic signal
// x[n] + i xh[n] of a real record — the discrete cousin of sig.Downconvert.
func HilbertFIR(numTaps int, beta float64) (*FIR, error) {
	if numTaps < 7 {
		return nil, fmt.Errorf("dsp: Hilbert transformer needs >= 7 taps, got %d", numTaps)
	}
	if numTaps%2 == 0 {
		return nil, fmt.Errorf("dsp: Hilbert transformer needs an odd tap count, got %d", numTaps)
	}
	if beta == 0 {
		beta = 8
	}
	win := Kaiser(numTaps, beta)
	taps := make([]float64, numTaps)
	mid := numTaps / 2
	for i := range taps {
		n := i - mid
		if n%2 != 0 {
			taps[i] = 2 / (math.Pi * float64(n)) * win[i]
		}
	}
	return &FIR{Taps: taps}, nil
}

// AnalyticSignal returns the analytic signal of a real record using a
// HilbertFIR of the given length: out[n] = x[n] + i H{x}[n], both branches
// delay-aligned. Edge regions (half the filter length) are less accurate.
func AnalyticSignal(x []float64, numTaps int) ([]complex128, error) {
	h, err := HilbertFIR(numTaps, 0)
	if err != nil {
		return nil, err
	}
	q := h.Filter(x)
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = complex(x[i], q[i])
	}
	return out, nil
}

// AnalyticSignalFFT returns the analytic signal of a real record by the
// frequency-domain method: transform, zero the negative frequencies,
// double the positive ones and invert. Unlike the FIR route it is exact
// over the whole record (no edge regions), at the cost of treating the
// record as periodic. Both transforms run through the cached plan engine,
// so repeated calls at one record length reuse the twiddle tables.
func AnalyticSignalFFT(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	spec := RealFFT(x)
	// H[0] = 1, H[k] = 2 for 0 < k < n/2 (+ Nyquist bin kept at 1 for even
	// n), H[k] = 0 for the negative frequencies.
	half := n / 2
	for k := 1; k < half; k++ {
		spec[k] *= 2
	}
	if n%2 != 0 && half >= 1 {
		spec[half] *= 2 // odd length: bin n/2 is still a positive frequency
	}
	for k := half + 1; k < n; k++ {
		spec[k] = 0
	}
	out := spec
	PlanIFFT(n).Execute(out)
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// InstantaneousFrequency estimates f[n] (cycles/sample) from an analytic
// signal by phase differencing.
func InstantaneousFrequency(z []complex128) []float64 {
	if len(z) < 2 {
		return nil
	}
	out := make([]float64, len(z)-1)
	for i := 1; i < len(z); i++ {
		c := z[i] * complex(real(z[i-1]), -imag(z[i-1]))
		out[i-1] = math.Atan2(imag(c), real(c)) / (2 * math.Pi)
	}
	return out
}
