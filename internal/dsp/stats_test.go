package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanRMSVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if Mean(x) != 2.5 {
		t.Error("Mean")
	}
	if math.Abs(RMS(x)-math.Sqrt(7.5)) > 1e-12 {
		t.Error("RMS")
	}
	if math.Abs(Variance(x)-1.25) > 1e-12 {
		t.Error("Variance")
	}
	if math.Abs(StdDev(x)-math.Sqrt(1.25)) > 1e-12 {
		t.Error("StdDev")
	}
	if Mean(nil) != 0 || RMS(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice conventions")
	}
}

func TestVarianceShiftInvariantProperty(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		shift = math.Mod(shift, 100)
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 50)
		y := make([]float64, 50)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = x[i] + shift
		}
		return math.Abs(Variance(x)-Variance(y)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMSEAndRelError(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{1, 4}
	if MSE(a, b) != 2 {
		t.Errorf("MSE = %g", MSE(a, b))
	}
	if MSE(nil, nil) != 0 {
		t.Error("empty MSE")
	}
	if got := RelRMSError([]float64{2}, []float64{1}); got != 1 {
		t.Errorf("RelRMSError = %g", got)
	}
	if RelRMSError([]float64{0}, []float64{0}) != 0 {
		t.Error("zero/zero should be 0")
	}
	if !math.IsInf(RelRMSError([]float64{1}, []float64{0}), 1) {
		t.Error("nonzero/zero should be +Inf")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestMaxAbsFloat(t *testing.T) {
	if MaxAbsFloat(nil) != 0 {
		t.Error("empty")
	}
	if MaxAbsFloat([]float64{-3, 2}) != 3 {
		t.Error("value")
	}
}

func TestLinspace(t *testing.T) {
	x := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace = %v", x)
		}
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Error("n=1 case")
	}
	if Linspace(0, 1, 0) != nil {
		t.Error("n=0 case")
	}
	// Endpoint exactness.
	y := Linspace(0.1, 0.9, 7)
	if y[6] != 0.9 {
		t.Error("endpoint not exact")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, ok := SolveLinear(a, b)
	if !ok {
		t.Fatal("solver failed")
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, ok := SolveLinear(a, b); ok {
		t.Error("singular system should report failure")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6
		a := make([][]float64, n)
		orig := make([][]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = r.NormFloat64()
				orig[i][j] = a[i][j]
			}
			a[i][i] += 5 // diagonally dominant: well conditioned
			orig[i][i] += 5
			for j := 0; j < n; j++ {
				b[i] += orig[i][j] * x[j]
			}
		}
		got, ok := SolveLinear(a, b)
		if !ok {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSineFit3RecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f0 := 1e6
	amp, phase, offset := 0.8, 1.1, 0.05
	n := 500
	ts := make([]float64, n)
	xs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i) * 1e-8
		xs[i] = amp*math.Cos(2*math.Pi*f0*ts[i]+phase) + offset + 1e-4*rng.NormFloat64()
	}
	a, p, c, err := SineFit3(ts, xs, f0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-amp) > 1e-3 || math.Abs(p-phase) > 1e-3 || math.Abs(c-offset) > 1e-3 {
		t.Errorf("fit = (%g, %g, %g), want (%g, %g, %g)", a, p, c, amp, phase, offset)
	}
}

func TestSineFit3Errors(t *testing.T) {
	if _, _, _, err := SineFit3([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch")
	}
	if _, _, _, err := SineFit3([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("too few samples")
	}
}

func TestSineFit4RefinesFrequency(t *testing.T) {
	f0 := 1e6
	fTrue := 1.0003e6
	n := 2000
	ts := make([]float64, n)
	xs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i) * 1e-8
		xs[i] = math.Cos(2 * math.Pi * fTrue * ts[i])
	}
	f, amp, _, _, err := SineFit4(ts, xs, f0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-fTrue) > 1 { // within 1 Hz
		t.Errorf("refined f = %g, want %g", f, fTrue)
	}
	if math.Abs(amp-1) > 1e-6 {
		t.Errorf("amp = %g", amp)
	}
}

func TestSolveLinearComplexRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5
		a := make([][]complex128, n)
		orig := make([][]complex128, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = make([]complex128, n)
			orig[i] = make([]complex128, n)
			for j := 0; j < n; j++ {
				a[i][j] = complex(r.NormFloat64(), r.NormFloat64())
				orig[i][j] = a[i][j]
			}
			a[i][i] += 4
			orig[i][i] += 4
			for j := 0; j < n; j++ {
				b[i] += orig[i][j] * x[j]
			}
		}
		got, ok := SolveLinearComplex(a, b)
		if !ok {
			return false
		}
		for i := range x {
			if cmplxAbs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	// Singular detection.
	a := [][]complex128{{1, 1}, {1, 1}}
	if _, ok := SolveLinearComplex(a, []complex128{1, 1}); ok {
		t.Error("singular complex system should report failure")
	}
}
