package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Plan is a precomputed transform descriptor for one (size, direction)
// pair: the per-stage twiddle-factor tables and the bit-reversal swap list
// for power-of-two sizes, or the cached chirp vector plus the
// pre-transformed chirp filter for Bluestein sizes. Building a plan costs
// the trigonometry once; Execute then runs the butterflies with table
// lookups only and performs zero allocations in steady state.
//
// Plans are immutable after construction and safe for concurrent use by
// any number of goroutines (the Bluestein work buffer comes from an
// internal pool). Obtain shared plans from the process-wide cache with
// PlanFFT/PlanIFFT; NewPlan builds an uncached private instance.
//
// The transform is the same one FFT/IFFT always computed — bit-identical,
// butterfly for butterfly, to the direct sincos-per-butterfly evaluation
// (retained as the fuzzing oracle in fftRadix2/bluestein) — so switching a
// call site to a plan never changes its numbers, only its cost.
type Plan struct {
	n       int
	inverse bool
	// swaps lists the (i, j) index pairs, flattened, of the bit-reversal
	// permutation with i < j, so Execute applies it with plain swaps.
	swaps []int32
	// tw holds the per-stage twiddle factors, concatenated in stage order
	// (size 2, 4, ..., n): stage "size" contributes size/2 entries
	// w[k] = exp(sign * i * 2 pi k / size).
	tw []complex128
	// bs holds the Bluestein state for non-power-of-two sizes; nil
	// otherwise.
	bs *bluesteinPlan
}

// bluesteinPlan caches everything the chirp-z transform of one
// (size, direction) pair can precompute: the chirp, the forward transform
// of the circular chirp kernel, and the two inner power-of-two plans. The
// per-call work buffer is pooled so concurrent Executes never contend and
// steady-state calls never allocate.
type bluesteinPlan struct {
	m       int          // padded power-of-two convolution length
	chirp   []complex128 // exp(sign * i * pi * k^2 / n)
	kernelT []complex128 // forward FFT of the circular conj-chirp kernel
	fwd     *Plan        // radix-2 forward plan of size m
	inv     *Plan        // radix-2 (un-normalised) inverse plan of size m
	scratch sync.Pool    // *[]complex128 of length m
}

// planKey indexes the process-wide plan cache.
type planKey struct {
	n       int
	inverse bool
}

// planCache holds one entry per (size, direction) ever requested. Entries
// are never evicted: a plan is a few multiples of its transform length
// (~48 bytes/point for radix-2), and a process works a small set of sizes
// (segment lengths, capture lengths), so the cache reaches a fixed point
// after warm-up. Concurrent first requests may build duplicate plans; the
// cache keeps exactly one and the losers are garbage.
var planCache sync.Map // planKey -> *planEntry

// planEntry pairs a cached plan with its per-size hit counter, so counting
// a hit costs one atomic add and no second map lookup.
type planEntry struct {
	p    *Plan
	hits *obs.Counter
}

// Cache instruments. The aggregate counters answer "is the cache hot";
// the per-size counters (registered lazily on the build path, where the
// fmt.Sprintf allocation is amortised into the one-time trigonometry)
// answer "which transform sizes does this workload actually run".
var (
	mPlanHits   = obs.C("dsp.plan.hits")
	mPlanMisses = obs.C("dsp.plan.misses")
	mPlanBuilds = obs.C("dsp.plan.builds")
)

// Trace instruments: plan builds appear as spans on a shared "dsp.plan"
// display track (they are the one-off trigonometry a capture should show
// as cold-start cost, not steady-state work), and cache traffic streams
// onto cumulative hit/build counter tracks. The cumulative counts reset
// per recording (they count only while one is active), so a capture reads
// "N hits since the recording started". All of it is behind the trace
// gate; the hit path's only added cost when disabled is one atomic load.
var (
	tnPlanBuild     = trace.Intern("dsp.plan.build")
	tracePlanHits   atomic.Int64
	tracePlanBuilds atomic.Int64
)

// planSizeName labels a per-size cache counter: dsp.plan.<what>.<n>.<dir>.
func planSizeName(what string, n int, inverse bool) string {
	dir := "fwd"
	if inverse {
		dir = "inv"
	}
	return fmt.Sprintf("dsp.plan.%s.%d.%s", what, n, dir)
}

// PlanFFT returns the shared forward-DFT plan for length n, building and
// caching it on first use. It panics for n < 0; n <= 1 yields a trivial
// identity plan.
func PlanFFT(n int) *Plan { return cachedPlan(n, false) }

// PlanIFFT returns the shared plan for the un-normalised inverse DFT
// (conjugate transform) of length n. Callers scale by 1/n themselves —
// exactly what IFFT does.
func PlanIFFT(n int) *Plan { return cachedPlan(n, true) }

func cachedPlan(n int, inverse bool) *Plan {
	key := planKey{n, inverse}
	if e, ok := planCache.Load(key); ok {
		ent := e.(*planEntry)
		mPlanHits.Inc()
		ent.hits.Inc()
		if trace.Enabled() {
			trace.Counter(trace.Root, "dsp.plan.hits", float64(tracePlanHits.Add(1)))
		}
		return ent.p
	}
	mPlanMisses.Inc()
	obs.C(planSizeName("misses", n, inverse)).Inc()
	sp := trace.StartOnTrack("dsp.plan", trace.Root, tnPlanBuild)
	sp.SetInt("n", int64(n))
	p := NewPlan(n, inverse)
	sp.End()
	if trace.Enabled() {
		trace.Counter(trace.Root, "dsp.plan.builds", float64(tracePlanBuilds.Add(1)))
	}
	mPlanBuilds.Inc()
	obs.C(planSizeName("builds", n, inverse)).Inc()
	ent := &planEntry{p: p, hits: obs.C(planSizeName("hits", n, inverse))}
	e, _ := planCache.LoadOrStore(key, ent)
	return e.(*planEntry).p
}

// NewPlan builds an uncached plan for length n. inverse selects the
// conjugate (un-normalised inverse) transform. Most callers want the
// shared PlanFFT/PlanIFFT instances instead.
func NewPlan(n int, inverse bool) *Plan {
	if n < 0 {
		panic(fmt.Sprintf("dsp: NewPlan: negative length %d", n))
	}
	p := &Plan{n: n, inverse: inverse}
	if n < 2 {
		return p
	}
	if IsPowerOfTwo(n) {
		p.buildRadix2()
		return p
	}
	p.buildBluestein()
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// Inverse reports whether the plan computes the (un-normalised) inverse
// transform.
func (p *Plan) Inverse() bool { return p.inverse }

func (p *Plan) buildRadix2() {
	n := p.n
	// Bit-reversal swap list: the same permutation fftRadix2 derives per
	// call, precomputed as (i, j) pairs with j > i.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			p.swaps = append(p.swaps, int32(i), int32(j))
		}
	}
	sign := -1.0
	if p.inverse {
		sign = 1.0
	}
	// Per-stage twiddles, evaluated with the exact expressions fftRadix2
	// uses so the planned transform stays bit-identical to the oracle.
	p.tw = make([]complex128, 0, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		for k := 0; k < half; k++ {
			s, c := math.Sincos(step * float64(k))
			p.tw = append(p.tw, complex(c, s))
		}
	}
}

func (p *Plan) buildBluestein() {
	n := p.n
	sign := -1.0
	if p.inverse {
		sign = 1.0
	}
	bs := &bluesteinPlan{m: NextPowerOfTwo(2*n - 1)}
	// chirp[k] = exp(sign * i * pi * k^2 / n); k^2 mod 2n keeps the phase
	// argument bounded so accuracy does not degrade for large k.
	bs.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		phi := sign * math.Pi * float64(kk) / float64(n)
		s, c := math.Sincos(phi)
		bs.chirp[k] = complex(c, s)
	}
	// Circular kernel b[k] = conj(chirp[|k|]), transformed once here
	// instead of once per call.
	bs.kernelT = make([]complex128, bs.m)
	bs.kernelT[0] = conj(bs.chirp[0])
	for k := 1; k < n; k++ {
		v := conj(bs.chirp[k])
		bs.kernelT[k] = v
		bs.kernelT[bs.m-k] = v
	}
	bs.fwd = cachedPlan(bs.m, false)
	bs.inv = cachedPlan(bs.m, true)
	bs.fwd.Execute(bs.kernelT)
	bs.scratch.New = func() any {
		buf := make([]complex128, bs.m)
		return &buf
	}
	p.bs = bs
}

// Execute transforms a in place. len(a) must equal Len(). Inverse plans
// leave the result un-normalised (scale by 1/n for the true inverse DFT).
// Steady-state calls perform zero allocations; concurrent calls on the
// same plan are safe.
func (p *Plan) Execute(a []complex128) {
	if len(a) != p.n {
		panic(fmt.Sprintf("dsp: Plan.Execute: length %d does not match plan size %d", len(a), p.n))
	}
	if p.n < 2 {
		return
	}
	if p.bs != nil {
		p.executeBluestein(a)
		return
	}
	p.executeRadix2(a)
}

// ExecuteInto transforms src into dst without modifying src (unless they
// alias, in which case it degenerates to Execute). Both must have the
// plan's length.
func (p *Plan) ExecuteInto(dst, src []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("dsp: Plan.ExecuteInto: lengths %d, %d do not match plan size %d",
			len(dst), len(src), p.n))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	p.Execute(dst)
}

func (p *Plan) executeRadix2(a []complex128) {
	for s := 0; s < len(p.swaps); s += 2 {
		i, j := p.swaps[s], p.swaps[s+1]
		a[i], a[j] = a[j], a[i]
	}
	n := p.n
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := p.tw[off : off+half]
		off += half
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k]
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
	}
}

func (p *Plan) executeBluestein(a []complex128) {
	bs := p.bs
	n := p.n
	sp := bs.scratch.Get().(*[]complex128)
	fa := *sp
	for k := 0; k < n; k++ {
		fa[k] = a[k] * bs.chirp[k]
	}
	for k := n; k < bs.m; k++ {
		fa[k] = 0
	}
	bs.fwd.Execute(fa)
	for i := range fa {
		fa[i] *= bs.kernelT[i]
	}
	bs.inv.Execute(fa)
	scale := complex(1/float64(bs.m), 0)
	for k := 0; k < n; k++ {
		a[k] = fa[k] * scale * bs.chirp[k]
	}
	bs.scratch.Put(sp)
}
