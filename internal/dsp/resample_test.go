package dsp

import (
	"math"
	"testing"
)

func TestResamplerValidation(t *testing.T) {
	if _, err := NewResampler(0, 1, 0, 0); err == nil {
		t.Error("L=0 must fail")
	}
	if _, err := NewResampler(1, 0, 0, 0); err == nil {
		t.Error("M=0 must fail")
	}
	r, err := NewResampler(4, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reduced to lowest terms.
	if r.L != 2 || r.M != 1 {
		t.Errorf("not reduced: %d/%d", r.L, r.M)
	}
}

func TestResamplerUpsampleTone(t *testing.T) {
	// 3x upsample of a slow tone must interpolate smoothly.
	r, err := NewResampler(3, 1, 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	x := make([]float64, n)
	nu := 0.03
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * nu * float64(i))
	}
	y := r.Apply(x)
	if len(y) != r.OutLen(n) || len(y) != n*3 {
		t.Fatalf("output length %d", len(y))
	}
	worst := 0.0
	for j := 60; j < len(y)-60; j++ {
		want := math.Sin(2 * math.Pi * nu * float64(j) / 3)
		if d := math.Abs(y[j] - want); d > worst {
			worst = d
		}
	}
	if worst > 2e-3 {
		t.Errorf("upsample error %g", worst)
	}
}

func TestResamplerRationalRatio(t *testing.T) {
	// 3/2 resampling of a tone: output tone at nu*2/3 of the new rate.
	r, err := NewResampler(3, 2, 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	n := 600
	x := make([]float64, n)
	nu := 0.05
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * nu * float64(i))
	}
	y := r.Apply(x)
	worst := 0.0
	for j := 60; j < len(y)-60; j++ {
		want := math.Cos(2 * math.Pi * nu * float64(j) * 2 / 3)
		if d := math.Abs(y[j] - want); d > worst {
			worst = d
		}
	}
	if worst > 5e-3 {
		t.Errorf("3/2 resample error %g", worst)
	}
}

func TestResamplerDecimateRemovesHighBand(t *testing.T) {
	// 1/2 decimation must anti-alias: a tone above the output Nyquist is
	// suppressed rather than folded.
	r, err := NewResampler(1, 2, 20, 80)
	if err != nil {
		t.Fatal(err)
	}
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 0.35 * float64(i)) // above 0.25
	}
	y := r.Apply(x)
	if rms := RMS(y[40 : len(y)-40]); rms > 0.02 {
		t.Errorf("aliased energy %g after decimation", rms)
	}
}

func TestResamplerComplex(t *testing.T) {
	r, _ := NewResampler(2, 1, 12, 70)
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(float64(i%5), -float64(i%3))
	}
	y := r.ApplyComplex(x)
	if len(y) != 256 {
		t.Fatalf("length %d", len(y))
	}
	if r.Apply(nil) != nil {
		t.Error("empty input")
	}
}

func TestCrossCorrelateFindsDelay(t *testing.T) {
	n := 512
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = math.Sin(0.7*float64(i)) + 0.3*math.Sin(0.13*float64(i))
	}
	shift := 7
	for i := range b {
		if i+shift < n {
			b[i] = a[i+shift] // b leads a by `shift`
		}
	}
	lags, r, err := CrossCorrelate(a, b, 20)
	if err != nil {
		t.Fatal(err)
	}
	// a[t] ~ b[t - shift]: peak at k = shift.
	peak, err := PeakLag(lags, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peak-float64(shift)) > 0.5 {
		t.Errorf("peak lag %g, want %d", peak, shift)
	}
}

func TestCrossCorrelateValidation(t *testing.T) {
	if _, _, err := CrossCorrelate(nil, []float64{1}, 2); err == nil {
		t.Error("empty input must fail")
	}
	if _, _, err := CrossCorrelate([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative lag must fail")
	}
	if _, err := PeakLag([]int{0}, nil); err == nil {
		t.Error("ragged PeakLag must fail")
	}
}

func TestPeakLagParabolicRefinement(t *testing.T) {
	// Symmetric triangle around lag 0 slightly tilted: refinement lands
	// between samples.
	lags := []int{-1, 0, 1}
	r := []float64{0.8, 1.0, 0.9}
	peak, err := PeakLag(lags, r)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= 0 || peak >= 0.5 {
		t.Errorf("refined peak %g, want in (0, 0.5)", peak)
	}
}
