package dsp

import "math"

// BesselI0 returns the modified Bessel function of the first kind, order
// zero, I0(x). It uses the power series for |x| < 3.75 and the standard
// asymptotic rational approximation (Abramowitz & Stegun 9.8.1/9.8.2)
// otherwise; both branches are accurate to better than 2e-7 relative error,
// which is far below the ripple of any Kaiser window designed here.
func BesselI0(x float64) float64 {
	ax := math.Abs(x)
	if ax < 3.75 {
		t := x / 3.75
		t *= t
		return 1 + t*(3.5156229+t*(3.0899424+t*(1.2067492+
			t*(0.2659732+t*(0.0360768+t*0.0045813)))))
	}
	t := 3.75 / ax
	return math.Exp(ax) / math.Sqrt(ax) *
		(0.39894228 + t*(0.01328592+t*(0.00225319+t*(-0.00157565+
			t*(0.00916281+t*(-0.02057706+t*(0.02635537+
				t*(-0.01647633+t*0.00392377))))))))
}

// BesselI0Series evaluates I0 by its defining power series
// sum_k ((x/2)^k / k!)^2 until the terms fall below machine precision.
// It is slower than BesselI0 and exists as an independent cross-check used
// by the test suite.
func BesselI0Series(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 200; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < sum*1e-17 {
			break
		}
	}
	return sum
}
