package dsp

import (
	"fmt"
	"math"
)

// Resampler converts a uniformly sampled sequence by the rational factor
// L/M (upsample by L, anti-alias filter, downsample by M) using a polyphase
// windowed-sinc kernel. It serves the rate conversions between the modem,
// capture and analysis domains.
type Resampler struct {
	L, M int
	// taps holds the prototype lowpass at the upsampled rate.
	taps []float64
}

// NewResampler designs a rational resampler. tapsPerPhase controls kernel
// quality (0 = 12); attenDB the stopband attenuation (0 = 70 dB).
func NewResampler(l, m, tapsPerPhase int, attenDB float64) (*Resampler, error) {
	if l < 1 || m < 1 {
		return nil, fmt.Errorf("dsp: resampler needs positive L/M, got %d/%d", l, m)
	}
	g := gcd(l, m)
	l, m = l/g, m/g
	if tapsPerPhase <= 0 {
		tapsPerPhase = 12
	}
	if attenDB <= 0 {
		attenDB = 70
	}
	// Prototype cutoff at min(1/L, 1/M)/2 of the upsampled rate.
	cutoff := 0.5 / float64(maxI(l, m))
	n := tapsPerPhase*l | 1
	beta := KaiserBeta(attenDB)
	win := Kaiser(n, beta)
	taps := make([]float64, n)
	mid := float64(n-1) / 2
	for i := range taps {
		taps[i] = 2 * cutoff * Sinc(2*cutoff*(float64(i)-mid)) * win[i]
	}
	// Normalise for unity DC gain after the x L interpolation.
	s := 0.0
	for _, t := range taps {
		s += t
	}
	if s != 0 {
		scale := float64(l) / s
		for i := range taps {
			taps[i] *= scale
		}
	}
	return &Resampler{L: l, M: m, taps: taps}, nil
}

// OutLen returns the output length for an input of length n.
func (r *Resampler) OutLen(n int) int {
	return (n*r.L + r.M - 1) / r.M
}

// Apply resamples x. The output is time-aligned with the input (the
// prototype's group delay is compensated).
func (r *Resampler) Apply(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	outLen := r.OutLen(len(x))
	out := make([]float64, outLen)
	delay := (len(r.taps) - 1) / 2
	for j := 0; j < outLen; j++ {
		// Output sample j sits at upsampled index j*M; the kernel is
		// centred there after delay compensation.
		up := j*r.M + delay
		// x contributes at upsampled indices i*L.
		acc := 0.0
		// taps index k = up - i*L must lie in [0, len(taps)).
		iMin := (up - (len(r.taps) - 1) + r.L - 1) / r.L
		if iMin < 0 {
			iMin = 0
		}
		iMax := up / r.L
		if iMax >= len(x) {
			iMax = len(x) - 1
		}
		for i := iMin; i <= iMax; i++ {
			k := up - i*r.L
			acc += x[i] * r.taps[k]
		}
		out[j] = acc
	}
	return out
}

// ApplyComplex resamples a complex sequence.
func (r *Resampler) ApplyComplex(x []complex128) []complex128 {
	re := make([]float64, len(x))
	im := make([]float64, len(x))
	for i, v := range x {
		re[i] = real(v)
		im[i] = imag(v)
	}
	or := r.Apply(re)
	oi := r.Apply(im)
	out := make([]complex128, len(or))
	for i := range out {
		out[i] = complex(or[i], oi[i])
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CrossCorrelate returns the biased cross-correlation
// r[k] = sum_n a[n] b[n-k] / N for lags k in [-maxLag, maxLag], along with
// the lag axis. It underlies coarse delay estimation between channels.
func CrossCorrelate(a, b []float64, maxLag int) (lags []int, r []float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, nil, fmt.Errorf("dsp: cross-correlation of empty input")
	}
	if maxLag < 0 {
		return nil, nil, fmt.Errorf("dsp: negative maxLag")
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	lags = make([]int, 2*maxLag+1)
	r = make([]float64, 2*maxLag+1)
	for i := range lags {
		k := i - maxLag
		lags[i] = k
		acc := 0.0
		for t := 0; t < n; t++ {
			u := t - k
			if u < 0 || u >= n {
				continue
			}
			acc += a[t] * b[u]
		}
		r[i] = acc / float64(n)
	}
	return lags, r, nil
}

// PeakLag returns the lag of the maximum cross-correlation magnitude with
// three-point parabolic interpolation for sub-sample resolution.
func PeakLag(lags []int, r []float64) (float64, error) {
	if len(lags) != len(r) || len(r) == 0 {
		return 0, fmt.Errorf("dsp: PeakLag: bad inputs")
	}
	best := 0
	for i := range r {
		if math.Abs(r[i]) > math.Abs(r[best]) {
			best = i
		}
	}
	lag := float64(lags[best])
	if best > 0 && best < len(r)-1 {
		ym, y0, yp := math.Abs(r[best-1]), math.Abs(r[best]), math.Abs(r[best+1])
		den := ym - 2*y0 + yp
		if den < 0 {
			lag += 0.5 * (ym - yp) / den
		}
	}
	return lag, nil
}
