package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBesselI0AgainstSeries(t *testing.T) {
	for _, x := range []float64{0, 0.1, 1, 3, 3.75, 5, 10, 20, 50} {
		fast := BesselI0(x)
		ref := BesselI0Series(x)
		if rel := math.Abs(fast-ref) / ref; rel > 3e-7 {
			t.Errorf("I0(%g): fast %g vs series %g (rel %g)", x, fast, ref, rel)
		}
	}
}

func TestBesselI0KnownValues(t *testing.T) {
	// Abramowitz & Stegun table values.
	cases := []struct{ x, want float64 }{
		{0, 1},
		{1, 1.2660658777520084},
		{2, 2.2795853023360673},
		{5, 27.239871823604442},
	}
	for _, c := range cases {
		if got := BesselI0(c.x); math.Abs(got-c.want)/c.want > 1e-6 {
			t.Errorf("I0(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestBesselI0EvenProperty(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 30)
		return BesselI0(x) == BesselI0(-x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWindowsSymmetricAndBounded(t *testing.T) {
	for _, wt := range []WindowType{Rectangular, Hann, Hamming, Blackman, KaiserWin} {
		n := 61
		w := Window(wt, n, 7.0)
		if len(w) != n {
			t.Fatalf("%v: wrong length", wt)
		}
		for i := 0; i < n/2; i++ {
			if math.Abs(w[i]-w[n-1-i]) > 1e-12 {
				t.Errorf("%v: asymmetric at %d: %g vs %g", wt, i, w[i], w[n-1-i])
			}
		}
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v[%d] = %g outside [0,1]", wt, i, v)
			}
		}
		// Peak at centre for odd-length windows.
		if w[n/2] < w[0]-1e-12 {
			t.Errorf("%v: centre %g below edge %g", wt, w[n/2], w[0])
		}
	}
}

func TestWindowSinglePoint(t *testing.T) {
	for _, wt := range []WindowType{Rectangular, Hann, Hamming, Blackman, KaiserWin} {
		w := Window(wt, 1, 5)
		if len(w) != 1 || w[0] != 1 {
			t.Errorf("%v: single-point window = %v, want [1]", wt, w)
		}
	}
}

func TestKaiserBetaZeroIsRectangular(t *testing.T) {
	w := Kaiser(11, 0)
	for i, v := range w {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("Kaiser(beta=0)[%d] = %g, want 1", i, v)
		}
	}
}

func TestKaiserSidelobesImproveWithBeta(t *testing.T) {
	// Higher beta must give lower peak sidelobes in the window's spectrum.
	sidelobe := func(beta float64) float64 {
		n := 63
		w := Kaiser(n, beta)
		pad := make([]float64, 4096)
		copy(pad, w)
		spec := RealFFT(pad)
		main := cabs(spec[0])
		// Find peak beyond the main lobe (skip first ~ mainlobe bins).
		skip := 4096 / n * 4
		peak := 0.0
		for k := skip; k < 2048; k++ {
			if a := cabs(spec[k]); a > peak {
				peak = a
			}
		}
		return 20 * math.Log10(peak/main)
	}
	s2 := sidelobe(2)
	s8 := sidelobe(8)
	if s8 >= s2 {
		t.Errorf("sidelobe(beta=8)=%g dB not below sidelobe(beta=2)=%g dB", s8, s2)
	}
	if s8 > -55 {
		t.Errorf("Kaiser beta=8 sidelobes %g dB, want < -55 dB", s8)
	}
}

func cabs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestKaiserBetaFormulaRegions(t *testing.T) {
	if KaiserBeta(10) != 0 {
		t.Error("beta should be 0 below 21 dB")
	}
	if b := KaiserBeta(60); math.Abs(b-0.1102*(60-8.7)) > 1e-12 {
		t.Errorf("beta(60) = %g", b)
	}
	if b := KaiserBeta(30); b <= 0 || b > 5 {
		t.Errorf("beta(30) = %g out of plausible range", b)
	}
}

func TestKaiserOrderMonotonic(t *testing.T) {
	if KaiserOrder(60, 0.01) <= KaiserOrder(60, 0.05) {
		t.Error("narrower transition must need a higher order")
	}
	if KaiserOrder(80, 0.01) <= KaiserOrder(40, 0.01) {
		t.Error("more attenuation must need a higher order")
	}
	defer func() {
		if recover() == nil {
			t.Error("KaiserOrder with zero width should panic")
		}
	}()
	KaiserOrder(60, 0)
}

func TestCoherentGainAndNoiseBandwidth(t *testing.T) {
	rect := Window(Rectangular, 64, 0)
	if g := CoherentGain(rect); math.Abs(g-1) > 1e-12 {
		t.Errorf("rect coherent gain = %g", g)
	}
	if nb := NoiseBandwidth(rect); math.Abs(nb-1) > 1e-12 {
		t.Errorf("rect noise bandwidth = %g", nb)
	}
	hann := Window(Hann, 4096, 0)
	if nb := NoiseBandwidth(hann); math.Abs(nb-1.5) > 0.01 {
		t.Errorf("hann noise bandwidth = %g, want ~1.5", nb)
	}
	if CoherentGain(nil) != 0 || NoiseBandwidth(nil) != 0 {
		t.Error("empty window edge cases")
	}
}

func TestWindowTypeString(t *testing.T) {
	if Rectangular.String() != "rectangular" || KaiserWin.String() != "kaiser" {
		t.Error("WindowType.String mismatch")
	}
	if WindowType(99).String() == "" {
		t.Error("unknown window type should still stringify")
	}
}

func TestSincValues(t *testing.T) {
	if Sinc(0) != 1 {
		t.Error("Sinc(0) != 1")
	}
	for _, k := range []float64{1, 2, 3, -4} {
		if math.Abs(Sinc(k)) > 1e-12 {
			t.Errorf("Sinc(%g) = %g, want 0", k, Sinc(k))
		}
	}
	if math.Abs(Sinc(0.5)-2/math.Pi) > 1e-12 {
		t.Errorf("Sinc(0.5) = %g", Sinc(0.5))
	}
	// Taylor branch continuity near zero.
	if math.Abs(Sinc(1e-7)-Sinc(1.0000001e-6)) > 1e-9 {
		t.Error("Sinc discontinuous near 0")
	}
}

func TestDiffCosOverTLimit(t *testing.T) {
	a, b := 2*math.Pi*1e9, 2*math.Pi*0.7e9
	p := 0.4
	want := -a*math.Sin(p) + b*math.Sin(p)
	got := DiffCosOverT(a, p, b, p, 0)
	if math.Abs(got-want)/math.Abs(want) > 1e-12 {
		t.Errorf("limit = %g, want %g", got, want)
	}
	// Continuity across the threshold: compare each branch against the
	// second-order expansion valid for tiny t. The function's own slope is
	// ~(b^2-a^2)cos(p)/2, so evaluate both sides at their own t.
	for _, tv := range []float64{0.9e-13, 1.1e-13, 2e-13} {
		expand := (b-a)*math.Sin(p) + tv*0.5*(b*b-a*a)*math.Cos(p)
		got := DiffCosOverT(a, p, b, p, tv)
		if math.Abs(got-expand)/math.Abs(expand) > 1e-6 {
			t.Errorf("t=%g: %g deviates from expansion %g", tv, got, expand)
		}
	}
}

func TestFlattopAmplitudeAccuracy(t *testing.T) {
	// A flat-top-windowed DFT reads tone amplitudes accurately even with
	// worst-case bin offset (half-bin).
	n := 4096
	w := Window(Flattop, n, 0)
	if len(w) != n {
		t.Fatal("length")
	}
	amp := 1.23
	nu := (100.5) / float64(n) // worst-case scalloping position
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Cos(2*math.Pi*nu*float64(i))
	}
	p := TonePhasor(x, nu, w)
	if math.Abs(cabs(p)-amp)/amp > 0.001 {
		t.Errorf("flattop amplitude %g, want %g", cabs(p), amp)
	}
	// Compare against Hann at the same offset but probing the nearest BIN
	// frequency (scalloping): Hann loses >1 dB, flat-top doesn't.
	binNu := 100.0 / float64(n)
	hannP := cabs(TonePhasor(x, binNu, Window(Hann, n, 0)))
	flatP := cabs(TonePhasor(x, binNu, w))
	if flatP < hannP {
		t.Errorf("flattop (%g) should out-read hann (%g) off-bin", flatP, hannP)
	}
	if Flattop.String() != "flattop" {
		t.Error("name")
	}
}
