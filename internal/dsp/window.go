package dsp

import (
	"fmt"
	"math"
)

// WindowType enumerates the supported window functions.
type WindowType int

const (
	// Rectangular is the boxcar window (no tapering).
	Rectangular WindowType = iota
	// Hann is the raised-cosine window.
	Hann
	// Hamming is the 0.54/0.46 raised-cosine window.
	Hamming
	// Blackman is the classic three-term Blackman window.
	Blackman
	// KaiserWin is the Kaiser-Bessel window; its shape parameter beta is
	// supplied separately (see Kaiser and Window).
	KaiserWin
	// Flattop is the five-term flat-top window (SR785 coefficients), used
	// for amplitude-accurate tone measurements: scalloping loss < 0.01 dB.
	Flattop
)

// String implements fmt.Stringer.
func (w WindowType) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case KaiserWin:
		return "kaiser"
	case Flattop:
		return "flattop"
	default:
		return fmt.Sprintf("WindowType(%d)", int(w))
	}
}

// Window returns the n-point window of the given type. beta is only used by
// KaiserWin. Windows are symmetric (suitable for FIR design); for n == 1 the
// single coefficient is 1.
func Window(t WindowType, n int, beta float64) []float64 {
	switch t {
	case Rectangular:
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		return w
	case Hann:
		return cosineWindow(n, 0.5, 0.5, 0)
	case Hamming:
		return cosineWindow(n, 0.54, 0.46, 0)
	case Blackman:
		return cosineWindow(n, 0.42, 0.5, 0.08)
	case KaiserWin:
		return Kaiser(n, beta)
	case Flattop:
		return flattopWindow(n)
	default:
		panic(fmt.Sprintf("dsp: unknown window type %d", int(t)))
	}
}

// flattopWindow evaluates the five-term flat-top window.
func flattopWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	const (
		a0 = 1.0
		a1 = 1.93
		a2 = 1.29
		a3 = 0.388
		a4 = 0.028
	)
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = (a0 - a1*math.Cos(x) + a2*math.Cos(2*x) - a3*math.Cos(3*x) + a4*math.Cos(4*x)) /
			(a0 + a1 + a2 + a3 + a4)
	}
	return w
}

func cosineWindow(n int, a0, a1, a2 float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = a0 - a1*math.Cos(x) + a2*math.Cos(2*x)
	}
	return w
}

// Kaiser returns the n-point Kaiser window with shape parameter beta:
// w[i] = I0(beta*sqrt(1-(2i/(n-1)-1)^2)) / I0(beta).
func Kaiser(n int, beta float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := BesselI0(beta)
	for i := range w {
		x := 2*float64(i)/float64(n-1) - 1
		w[i] = BesselI0(beta*math.Sqrt(1-x*x)) / den
	}
	return w
}

// KaiserBeta returns the Kaiser shape parameter achieving the requested
// stop-band attenuation in dB (Kaiser's empirical formula).
func KaiserBeta(attenDB float64) float64 {
	switch {
	case attenDB > 50:
		return 0.1102 * (attenDB - 8.7)
	case attenDB >= 21:
		return 0.5842*math.Pow(attenDB-21, 0.4) + 0.07886*(attenDB-21)
	default:
		return 0
	}
}

// KaiserOrder estimates the FIR order needed for the given stop-band
// attenuation (dB) and normalised transition width (cycles/sample).
func KaiserOrder(attenDB, transWidth float64) int {
	if transWidth <= 0 {
		panic("dsp: KaiserOrder requires transWidth > 0")
	}
	n := (attenDB - 7.95) / (2.285 * 2 * math.Pi * transWidth)
	if n < 1 {
		n = 1
	}
	return int(math.Ceil(n))
}

// CoherentGain is the mean of the window coefficients; dividing a windowed
// DFT magnitude by n*CoherentGain recovers tone amplitudes.
func CoherentGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s / float64(len(w))
}

// NoiseBandwidth returns the equivalent noise bandwidth of the window in
// bins: N * sum(w^2) / sum(w)^2. Used to normalise Welch PSD estimates.
func NoiseBandwidth(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var s, s2 float64
	for _, v := range w {
		s += v
		s2 += v * v
	}
	if s == 0 {
		return 0
	}
	return float64(len(w)) * s2 / (s * s)
}
