package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is the O(N^2) reference transform used to validate the FFTs.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for m := 0; m < n; m++ {
			phi := -2 * math.Pi * float64(k) * float64(m) / float64(n)
			acc += x[m] * cmplx.Exp(complex(0, phi))
		}
		out[k] = acc
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128, 3, 5, 7, 12, 60, 100, 255} {
		x := randComplex(n, rng)
		got := FFT(x)
		want := dftNaive(x)
		if d := maxDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: FFT deviates from naive DFT by %g", n, d)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randComplex(32, rng)
	orig := append([]complex128(nil), x...)
	_ = FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT modified input at %d", i)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 16, 128, 3, 10, 77, 129} {
		x := randComplex(n, rng)
		y := IFFT(FFT(x))
		if d := maxDiff(x, y); d > 1e-9*float64(n+1) {
			t.Errorf("n=%d: IFFT(FFT(x)) differs from x by %g", n, d)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16
		a := randComplex(n, r)
		b := randComplex(n, r)
		alpha := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+alpha*fb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		x := randComplex(n, r)
		var pt float64
		for _, v := range x {
			pt += real(v)*real(v) + imag(v)*imag(v)
		}
		var pf float64
		for _, v := range FFT(x) {
			pf += real(v)*real(v) + imag(v)*imag(v)
		}
		pf /= float64(n)
		return math.Abs(pt-pf) <= 1e-9*(pt+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 32)
	x[0] = 1
	for i, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d: impulse FFT = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleToneBin(t *testing.T) {
	n := 64
	k0 := 5
	x := make([]complex128, n)
	for i := range x {
		phi := 2 * math.Pi * float64(k0) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, phi))
	}
	spec := FFT(x)
	for k, v := range spec {
		want := complex(0, 0)
		if k == k0 {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestRealFFTConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := RealFFT(x)
	for k := 1; k < n; k++ {
		if cmplx.Abs(spec[k]-cmplx.Conj(spec[n-k])) > 1e-9 {
			t.Fatalf("bin %d breaks conjugate symmetry", k)
		}
	}
}

func TestFFTShiftRoundTripAndCentering(t *testing.T) {
	for _, n := range []int{4, 5, 8, 9} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i), 0)
		}
		s := FFTShift(x)
		// DC (index 0) must land at index ceil(n/2) after the shift... for
		// the symmetric convention used here DC lands at n-ceil(n/2)=n/2.
		if got := s[n-(n+1)/2]; got != x[0] {
			t.Errorf("n=%d: DC bin landed wrong: %v", n, got)
		}
	}
}

func TestFFTFreqs(t *testing.T) {
	f := FFTFreqs(4, 100)
	want := []float64{0, 25, -50, -25}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-12 {
			t.Fatalf("FFTFreqs = %v, want %v", f, want)
		}
	}
	if FFTFreqs(0, 1) != nil {
		t.Error("FFTFreqs(0) should be nil")
	}
}

func TestDTFTMatchesFFTOnBins(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 48
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := RealFFT(x)
	for _, k := range []int{0, 1, 7, 23} {
		got := DTFT(x, float64(k)/float64(n))
		if cmplx.Abs(got-spec[k]) > 1e-9 {
			t.Errorf("DTFT at bin %d: %v vs FFT %v", k, got, spec[k])
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 300)
	b := make([]float64, 41)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := Convolve(a, b) // large enough to take the FFT path
	want := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			want[i+j] += av * bv
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Convolve[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConvolveEdgeCases(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Error("nil input should give nil")
	}
	got := Convolve([]float64{2}, []float64{3})
	if len(got) != 1 || got[0] != 6 {
		t.Errorf("scalar convolution = %v", got)
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NextPowerOfTwo(0) should panic")
		}
	}()
	NextPowerOfTwo(0)
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 65536} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 100} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs(nil) != 0")
	}
	if got := MaxAbs([]complex128{1i, complex(3, 4)}); got != 5 {
		t.Errorf("MaxAbs = %g, want 5", got)
	}
}

func TestBluesteinLargePrime(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randComplex(257, rng) // prime length forces Bluestein
	y := IFFT(FFT(x))
	if d := maxDiff(x, y); d > 1e-8 {
		t.Errorf("prime-length round trip error %g", d)
	}
}
