package dsp

import "math"

// Sinc returns the normalised sinc function sin(pi x)/(pi x), with
// Sinc(0) = 1. Near zero a Taylor expansion avoids catastrophic cancellation.
func Sinc(x float64) float64 {
	ax := math.Abs(x)
	if ax < 1e-6 {
		px := math.Pi * x
		return 1 - px*px/6
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// DiffCosOverT evaluates (cos(a*t + pa) - cos(b*t + pb)) / t with the t -> 0
// limit handled analytically. When pa == pb the limit is (b-a)*sin(pa)...
// more precisely d/dt[cos(a t + pa) - cos(b t + pb)] at 0 =
// -a sin(pa) + b sin(pb). This helper underpins the Kohlenberg interpolation
// kernel, whose two terms are exactly of this shape.
func DiffCosOverT(a, pa, b, pb, t float64) float64 {
	if math.Abs(t) < 1e-13 {
		// First-order Taylor: cos(a t + pa) ~ cos(pa) - a t sin(pa).
		// (cos(pa)-cos(pb))/t diverges unless cos(pa)==cos(pb); the kernel
		// always calls with pa == pb so the constant term cancels exactly.
		return -a*math.Sin(pa) + b*math.Sin(pb) +
			t*0.5*(-a*a*math.Cos(pa)+b*b*math.Cos(pb))
	}
	return (math.Cos(a*t+pa) - math.Cos(b*t+pb)) / t
}
