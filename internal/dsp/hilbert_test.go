package dsp

import (
	"math"
	"testing"
)

func TestHilbertFIRValidation(t *testing.T) {
	if _, err := HilbertFIR(5, 0); err == nil {
		t.Error("too short must fail")
	}
	if _, err := HilbertFIR(64, 0); err == nil {
		t.Error("even length must fail")
	}
}

func TestAnalyticSignalOfTone(t *testing.T) {
	// The analytic signal of cos is exp(i...): unit magnitude, rotating.
	n := 1024
	nu := 0.07
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * nu * float64(i))
	}
	z, err := AnalyticSignal(x, 129)
	if err != nil {
		t.Fatal(err)
	}
	for i := 200; i < n-200; i++ {
		if d := math.Abs(cabs(z[i]) - 1); d > 0.01 {
			t.Fatalf("analytic magnitude off by %g at %d", d, i)
		}
	}
	fi := InstantaneousFrequency(z[200 : n-200])
	for i, f := range fi {
		if math.Abs(f-nu) > 1e-3 {
			t.Fatalf("inst freq %g at %d, want %g", f, i, nu)
		}
	}
}

func TestInstantaneousFrequencyOfChirpRecord(t *testing.T) {
	// Digital chirp: frequency ramps 0.02 -> 0.2 cycles/sample.
	n := 4096
	x := make([]float64, n)
	phase := 0.0
	for i := range x {
		f := 0.02 + (0.2-0.02)*float64(i)/float64(n)
		phase += 2 * math.Pi * f
		x[i] = math.Cos(phase)
	}
	z, err := AnalyticSignal(x, 129)
	if err != nil {
		t.Fatal(err)
	}
	fi := InstantaneousFrequency(z)
	// Mid-record estimate close to the mid frequency.
	mid := fi[n/2]
	want := 0.02 + (0.2-0.02)*0.5
	if math.Abs(mid-want) > 0.01 {
		t.Errorf("mid frequency %g, want %g", mid, want)
	}
	if InstantaneousFrequency(z[:1]) != nil {
		t.Error("short input convention")
	}
}

func TestPAPRAnalysis(t *testing.T) {
	// Constant envelope: PAPR = 0 dB.
	n := 4096
	cw := make([]complex128, n)
	for i := range cw {
		s, c := math.Sincos(0.1 * float64(i))
		cw[i] = complex(c, s)
	}
	r, err := PAPR(cw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PAPRdB) > 0.01 {
		t.Errorf("CW PAPR %g dB", r.PAPRdB)
	}
	for _, v := range r.CCDFdB {
		if math.Abs(v) > 0.01 {
			t.Errorf("CW CCDF %g dB", v)
		}
	}
	// Two equal tones: peak power 4x average of one... PAPR = 3 dB.
	two := make([]complex128, n)
	// Beat frequency commensurate with the record so the average power is
	// exactly 2 and the peak (amplitude 2) is hit.
	delta := 2 * math.Pi * 2 / float64(n)
	for i := range two {
		s1, c1 := math.Sincos(0.1 * float64(i))
		s2, c2 := math.Sincos((0.1 + delta) * float64(i))
		two[i] = complex(c1+c2, s1+s2) // amplitude beats between 0 and 2
	}
	r2, err := PAPR(two, []float64{1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.PAPRdB-3) > 0.3 {
		t.Errorf("two-tone PAPR %g dB, want ~3", r2.PAPRdB)
	}
}

func TestPAPRValidation(t *testing.T) {
	if _, err := PAPR(make([]complex128, 4), nil); err == nil {
		t.Error("too short must fail")
	}
	if _, err := PAPR(make([]complex128, 64), nil); err == nil {
		t.Error("zero record must fail")
	}
	x := make([]complex128, 64)
	x[0] = 1
	if _, err := PAPR(x, []float64{2}); err == nil {
		t.Error("bad probability must fail")
	}
}
