package dsp

import (
	"fmt"
	"math"
	"sync"
)

// RealPlan computes the DFT of an even-length real sequence through one
// complex transform of half the length: adjacent sample pairs pack into a
// complex vector, a length-n/2 plan transforms it, and a precomputed
// twiddle table untangles the even/odd interleave. That halves both the
// butterfly work and the memory traffic relative to widening the input to
// []complex128.
//
// Like Plan, a RealPlan is immutable, concurrency-safe and allocation-free
// in steady state. Obtain shared instances from PlanRealFFT.
type RealPlan struct {
	n       int          // full (even) transform length
	half    *Plan        // forward complex plan of size n/2
	wr      []complex128 // exp(-i 2 pi k / n) for k = 0..n/2
	scratch sync.Pool    // *[]complex128 of length n/2
}

// realPlanCache mirrors planCache for real-input plans, keyed by length.
var realPlanCache sync.Map // int -> *RealPlan

// PlanRealFFT returns the shared real-input forward plan for even length
// n >= 2, building and caching it on first use. It panics for odd or
// non-positive n; callers with odd lengths use the complex path (as
// RealFFT does).
func PlanRealFFT(n int) *RealPlan {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("dsp: PlanRealFFT: length %d is not even and positive", n))
	}
	if p, ok := realPlanCache.Load(n); ok {
		return p.(*RealPlan)
	}
	p := &RealPlan{n: n, half: cachedPlan(n/2, false)}
	h := n / 2
	p.wr = make([]complex128, h+1)
	for k := 0; k <= h; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.wr[k] = complex(c, s)
	}
	p.scratch.New = func() any {
		buf := make([]complex128, h)
		return &buf
	}
	got, _ := realPlanCache.LoadOrStore(n, p)
	return got.(*RealPlan)
}

// Len returns the real transform length the plan was built for.
func (p *RealPlan) Len() int { return p.n }

// Transform writes the full length-n complex spectrum of x into dst.
// len(x) and len(dst) must equal Len(). The upper half is filled by
// conjugate symmetry: dst[n-k] = conj(dst[k]). Zero allocations in steady
// state.
func (p *RealPlan) Transform(dst []complex128, x []float64) {
	if len(x) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("dsp: RealPlan.Transform: lengths %d, %d do not match plan size %d",
			len(dst), len(x), p.n))
	}
	h := p.n / 2
	p.untangle(dst[:h+1], x)
	for k := 1; k < h; k++ {
		dst[p.n-k] = conj(dst[k])
	}
}

// HalfSpectrum writes the one-sided spectrum (bins 0..n/2 inclusive) of x
// into dst, which must have length n/2+1. For real input this is the
// whole information content; bins n/2+1..n-1 are its mirror. Zero
// allocations in steady state.
func (p *RealPlan) HalfSpectrum(dst []complex128, x []float64) {
	if len(x) != p.n || len(dst) != p.n/2+1 {
		panic(fmt.Sprintf("dsp: RealPlan.HalfSpectrum: lengths %d, %d do not match plan size %d",
			len(dst), len(x), p.n))
	}
	p.untangle(dst, x)
}

// untangle packs x into the pooled half-length buffer, runs the half-size
// complex transform and recombines bins 0..n/2 into dst.
func (p *RealPlan) untangle(dst []complex128, x []float64) {
	h := p.n / 2
	sp := p.scratch.Get().(*[]complex128)
	z := *sp
	for i := 0; i < h; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	p.half.Execute(z)
	// With Z the half-size transform (Z[h] wrapping to Z[0]):
	//   even[k] = (Z[k] + conj(Z[h-k])) / 2        (spectrum of x[2i])
	//   odd[k]  = (Z[k] - conj(Z[h-k])) / (2i)     (spectrum of x[2i+1])
	//   X[k]    = even[k] + wr[k] * odd[k]
	for k := 0; k <= h; k++ {
		zk := z[k%h]
		zc := conj(z[(h-k)%h])
		even := (zk + zc) * 0.5
		od := (zk - zc) * complex(0, -0.5)
		dst[k] = even + p.wr[k]*od
	}
	p.scratch.Put(sp)
}
