package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// directFFT evaluates the transform with the retained sincos-per-butterfly
// oracle (fftRadix2 / bluestein), exactly as the seed-era FFT did.
func directFFT(x []complex128, inverse bool) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	if len(x) < 2 {
		return out
	}
	if IsPowerOfTwo(len(x)) {
		fftRadix2(out, inverse)
		return out
	}
	return bluestein(out, inverse)
}

// TestPlanMatchesDirectBitExact is the engine's core contract: a cached
// plan reproduces the direct evaluation bit for bit, for both directions,
// across radix-2 and Bluestein lengths. Golden vectors downstream rely on
// this — the plan migration must not move a single ulp.
func TestPlanMatchesDirectBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 60, 64, 100, 255, 256, 1000, 4096} {
		x := randComplex(n, rng)
		for _, inverse := range []bool{false, true} {
			want := directFFT(x, inverse)
			got := make([]complex128, n)
			p := cachedPlan(n, inverse)
			p.ExecuteInto(got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d inverse=%v bin %d: plan %v != direct %v",
						n, inverse, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPlanRepeatedExecuteReusesState runs one plan many times over and
// checks the scratch/cache reuse never contaminates results.
func TestPlanRepeatedExecuteReusesState(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{64, 100} { // radix-2 and Bluestein
		p := PlanFFT(n)
		x := randComplex(n, rng)
		want := directFFT(x, false)
		buf := make([]complex128, n)
		for rep := 0; rep < 5; rep++ {
			p.ExecuteInto(buf, x)
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("n=%d repeat %d bin %d: %v != %v", n, rep, i, buf[i], want[i])
				}
			}
		}
	}
}

func TestPlanExecuteInPlaceAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randComplex(128, rng)
	want := FFT(x)
	got := append([]complex128(nil), x...)
	PlanFFT(128).ExecuteInto(got, got) // dst aliases src
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased ExecuteInto differs at %d", i)
		}
	}
}

func TestPlanExecuteZeroAllocs(t *testing.T) {
	for _, n := range []int{1024, 1000} { // radix-2 and Bluestein
		p := PlanFFT(n)
		buf := make([]complex128, n)
		for i := range buf {
			buf[i] = complex(float64(i%7), float64(i%5))
		}
		p.Execute(buf) // warm the scratch pool
		allocs := testing.AllocsPerRun(20, func() {
			p.Execute(buf)
		})
		if allocs != 0 {
			t.Errorf("n=%d: Execute allocates %.1f objects/op in steady state, want 0", n, allocs)
		}
	}
}

func TestRealPlanZeroAllocs(t *testing.T) {
	n := 1024
	p := PlanRealFFT(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.2 * float64(i))
	}
	dst := make([]complex128, n)
	half := make([]complex128, n/2+1)
	p.Transform(dst, x)
	if a := testing.AllocsPerRun(20, func() { p.Transform(dst, x) }); a != 0 {
		t.Errorf("Transform allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { p.HalfSpectrum(half, x) }); a != 0 {
		t.Errorf("HalfSpectrum allocates %.1f objects/op, want 0", a)
	}
}

// TestPlanCacheConcurrency hammers the shared cache from many goroutines
// requesting distinct and overlapping sizes while executing transforms —
// the race-detector CI step runs this to catch cache or scratch races.
func TestPlanCacheConcurrency(t *testing.T) {
	sizes := []int{8, 12, 64, 100, 128, 255, 256, 500, 1000, 1024}
	rng := rand.New(rand.NewSource(23))
	inputs := make(map[int][]complex128, len(sizes))
	wants := make(map[int][]complex128, len(sizes))
	for _, n := range sizes {
		inputs[n] = randComplex(n, rng)
		wants[n] = directFFT(inputs[n], false)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]complex128, 1024)
			for rep := 0; rep < 20; rep++ {
				n := sizes[(g+rep)%len(sizes)]
				p := PlanFFT(n)
				out := buf[:n]
				p.ExecuteInto(out, inputs[n])
				for i := range out {
					if out[i] != wants[n][i] {
						select {
						case errs <- "concurrent Execute produced a wrong value":
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestPlanCacheReturnsSameInstance(t *testing.T) {
	if PlanFFT(512) != PlanFFT(512) {
		t.Error("PlanFFT(512) built two instances")
	}
	if PlanFFT(512) == PlanIFFT(512) {
		t.Error("forward and inverse plans must differ")
	}
	p := PlanFFT(384)
	if p.Len() != 384 || p.Inverse() {
		t.Error("plan metadata wrong")
	}
	if !PlanIFFT(384).Inverse() {
		t.Error("inverse plan metadata wrong")
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	p := PlanFFT(16)
	for _, fn := range []func(){
		func() { p.Execute(make([]complex128, 8)) },
		func() { p.ExecuteInto(make([]complex128, 16), make([]complex128, 8)) },
		func() { NewPlan(-1, false) },
		func() { PlanRealFFT(15) },
		func() { PlanRealFFT(0) },
		func() { PlanRealFFT(16).Transform(make([]complex128, 8), make([]float64, 16)) },
		func() { PlanRealFFT(16).HalfSpectrum(make([]complex128, 16), make([]float64, 16)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRealPlanMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{2, 4, 6, 10, 48, 128, 1000, 1024} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		want := FFT(c)
		got := RealFFT(x)
		scale := 1.0
		for _, v := range x {
			scale += math.Abs(v)
		}
		tol := 1e-12 * scale
		for k := range want {
			if d := cmplx.Abs(got[k] - want[k]); d > tol {
				t.Fatalf("n=%d bin %d: RealFFT %v vs FFT %v (diff %g)", n, k, got[k], want[k], d)
			}
		}
		half := RealFFTHalf(x)
		if len(half) != n/2+1 {
			t.Fatalf("n=%d: RealFFTHalf length %d, want %d", n, len(half), n/2+1)
		}
		for k := range half {
			if d := cmplx.Abs(half[k] - want[k]); d > tol {
				t.Fatalf("n=%d bin %d: RealFFTHalf %v vs FFT %v (diff %g)", n, k, half[k], want[k], d)
			}
		}
	}
}

func TestRealFFTOddAndEmpty(t *testing.T) {
	if RealFFT(nil) != nil || RealFFTHalf(nil) != nil {
		t.Error("empty input should give nil")
	}
	x := []float64{1.5}
	got := RealFFT(x)
	if len(got) != 1 || got[0] != complex(1.5, 0) {
		t.Errorf("length-1 RealFFT = %v", got)
	}
	h := RealFFTHalf([]float64{2, 1, -1}) // odd: falls back to the complex path
	if len(h) != 2 {
		t.Errorf("odd RealFFTHalf length %d, want 2", len(h))
	}
	if cmplx.Abs(h[0]-complex(2, 0)) > 1e-12 {
		t.Errorf("odd RealFFTHalf DC %v, want 2", h[0])
	}
}

func TestAnalyticSignalFFTRecoversSignalAndQuadrature(t *testing.T) {
	// A pure cosine over an integer number of cycles: the analytic signal
	// must be exp(i phi) — real part the input, imaginary part the sine.
	for _, n := range []int{128, 125} { // even (real plan) and odd (fallback)
		x := make([]float64, n)
		cycles := 7.0
		for i := range x {
			x[i] = math.Cos(2 * math.Pi * cycles * float64(i) / float64(n))
		}
		z := AnalyticSignalFFT(x)
		for i := range x {
			wantIm := math.Sin(2 * math.Pi * cycles * float64(i) / float64(n))
			if math.Abs(real(z[i])-x[i]) > 1e-10 {
				t.Fatalf("n=%d: real part off at %d: %g vs %g", n, i, real(z[i]), x[i])
			}
			if math.Abs(imag(z[i])-wantIm) > 1e-10 {
				t.Fatalf("n=%d: quadrature off at %d: %g vs %g", n, i, imag(z[i]), wantIm)
			}
		}
	}
	if AnalyticSignalFFT(nil) != nil {
		t.Error("empty input should give nil")
	}
}
