package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDesignLowpassResponse(t *testing.T) {
	f, err := DesignLowpass(101, 0.1, KaiserWin, KaiserBeta(60))
	if err != nil {
		t.Fatal(err)
	}
	// Unity at DC.
	if g := cabs(f.Response(0)); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain = %g", g)
	}
	// Passband flat within 1 dB.
	for _, nu := range []float64{0.01, 0.05, 0.08} {
		if db := f.MagnitudeDB(nu); db < -1 || db > 1 {
			t.Errorf("passband %g: %g dB", nu, db)
		}
	}
	// Stopband below -50 dB past the transition.
	for _, nu := range []float64{0.16, 0.2, 0.3, 0.45} {
		if db := f.MagnitudeDB(nu); db > -50 {
			t.Errorf("stopband %g: %g dB", nu, db)
		}
	}
	// -6 dB point near the cutoff.
	if db := f.MagnitudeDB(0.1); math.Abs(db-(-6)) > 1.5 {
		t.Errorf("cutoff attenuation %g dB, want ~ -6", db)
	}
}

func TestDesignLowpassErrors(t *testing.T) {
	if _, err := DesignLowpass(0, 0.1, Hann, 0); err == nil {
		t.Error("numTaps 0 should fail")
	}
	if _, err := DesignLowpass(11, 0.6, Hann, 0); err == nil {
		t.Error("cutoff >= 0.5 should fail")
	}
	if _, err := DesignLowpass(11, 0, Hann, 0); err == nil {
		t.Error("cutoff 0 should fail")
	}
}

func TestDesignBandpassResponse(t *testing.T) {
	f, err := DesignBandpass(201, 0.15, 0.25, KaiserWin, KaiserBeta(60))
	if err != nil {
		t.Fatal(err)
	}
	if db := f.MagnitudeDB(0.2); math.Abs(db) > 1 {
		t.Errorf("mid-band gain %g dB", db)
	}
	for _, nu := range []float64{0.02, 0.08, 0.33, 0.45} {
		if db := f.MagnitudeDB(nu); db > -50 {
			t.Errorf("bandpass stopband %g: %g dB", nu, db)
		}
	}
	if _, err := DesignBandpass(11, 0.3, 0.2, Hann, 0); err == nil {
		t.Error("inverted edges should fail")
	}
	if _, err := DesignBandpass(0, 0.1, 0.2, Hann, 0); err == nil {
		t.Error("zero taps should fail")
	}
}

func TestFIRFilterDelayAlignment(t *testing.T) {
	// A filtered sinusoid well inside the passband should come out nearly
	// unchanged (same phase) thanks to the group-delay compensation.
	f, err := DesignLowpass(101, 0.2, KaiserWin, KaiserBeta(60))
	if err != nil {
		t.Fatal(err)
	}
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 0.05 * float64(i))
	}
	y := f.Filter(x)
	if len(y) != n {
		t.Fatalf("output length %d != %d", len(y), n)
	}
	// Compare away from the edges.
	worst := 0.0
	for i := 100; i < n-100; i++ {
		if d := math.Abs(y[i] - x[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Errorf("aligned passband error %g", worst)
	}
}

func TestFIRFilterComplexMatchesParts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f, _ := DesignLowpass(31, 0.2, Hann, 0)
	n := 200
	x := make([]complex128, n)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range x {
		re[i], im[i] = rng.NormFloat64(), rng.NormFloat64()
		x[i] = complex(re[i], im[i])
	}
	y := f.FilterComplex(x)
	yr, yi := f.Filter(re), f.Filter(im)
	for i := range y {
		if math.Abs(real(y[i])-yr[i]) > 1e-12 || math.Abs(imag(y[i])-yi[i]) > 1e-12 {
			t.Fatalf("complex filter mismatch at %d", i)
		}
	}
}

func TestFIRDecimate(t *testing.T) {
	f, _ := DesignLowpass(63, 0.1, KaiserWin, KaiserBeta(60))
	x := make([]complex128, 400)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*0.02*float64(i)), 0)
	}
	y := f.Decimate(x, 4)
	if len(y) != 100 {
		t.Fatalf("decimated length %d, want 100", len(y))
	}
	defer func() {
		if recover() == nil {
			t.Error("factor 0 should panic")
		}
	}()
	f.Decimate(x, 0)
}

func TestFIRGroupDelay(t *testing.T) {
	f := &FIR{Taps: make([]float64, 61)}
	if gd := f.GroupDelay(); gd != 30 {
		t.Errorf("group delay %g, want 30", gd)
	}
	if f.Len() != 61 {
		t.Errorf("Len %d", f.Len())
	}
}

func TestMagnitudeDBClamp(t *testing.T) {
	f := &FIR{Taps: []float64{0}}
	if db := f.MagnitudeDB(0.1); db != -400 {
		t.Errorf("zero filter magnitude %g, want clamp at -400", db)
	}
}
