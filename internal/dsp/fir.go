package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite impulse response filter described by its tap vector.
type FIR struct {
	Taps []float64
}

// DesignLowpass designs a linear-phase lowpass FIR by the windowed-sinc
// method. cutoff is the -6 dB edge in cycles/sample (0 < cutoff < 0.5),
// numTaps must be >= 1. The window type and Kaiser beta follow Window.
func DesignLowpass(numTaps int, cutoff float64, w WindowType, beta float64) (*FIR, error) {
	if numTaps < 1 {
		return nil, fmt.Errorf("dsp: DesignLowpass: numTaps %d < 1", numTaps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: DesignLowpass: cutoff %g outside (0, 0.5)", cutoff)
	}
	win := Window(w, numTaps, beta)
	taps := make([]float64, numTaps)
	mid := float64(numTaps-1) / 2
	for i := range taps {
		taps[i] = 2 * cutoff * Sinc(2*cutoff*(float64(i)-mid)) * win[i]
	}
	f := &FIR{Taps: taps}
	f.normalizeDC()
	return f, nil
}

// DesignBandpass designs a linear-phase bandpass FIR with -6 dB edges f1 < f2
// (cycles/sample) by spectral subtraction of two windowed-sinc lowpasses.
func DesignBandpass(numTaps int, f1, f2 float64, w WindowType, beta float64) (*FIR, error) {
	if numTaps < 1 {
		return nil, fmt.Errorf("dsp: DesignBandpass: numTaps %d < 1", numTaps)
	}
	if !(0 < f1 && f1 < f2 && f2 < 0.5) {
		return nil, fmt.Errorf("dsp: DesignBandpass: need 0 < f1 < f2 < 0.5, got %g, %g", f1, f2)
	}
	win := Window(w, numTaps, beta)
	taps := make([]float64, numTaps)
	mid := float64(numTaps-1) / 2
	for i := range taps {
		d := float64(i) - mid
		taps[i] = (2*f2*Sinc(2*f2*d) - 2*f1*Sinc(2*f1*d)) * win[i]
	}
	return &FIR{Taps: taps}, nil
}

// normalizeDC scales the taps for unity gain at DC.
func (f *FIR) normalizeDC() {
	s := 0.0
	for _, t := range f.Taps {
		s += t
	}
	if s == 0 {
		return
	}
	for i := range f.Taps {
		f.Taps[i] /= s
	}
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.Taps) }

// GroupDelay returns the group delay in samples of the (linear-phase) filter.
func (f *FIR) GroupDelay() float64 { return float64(len(f.Taps)-1) / 2 }

// Filter convolves x with the filter and returns the "same"-length output,
// aligned so that out[n] corresponds to x[n] delayed by the group delay.
func (f *FIR) Filter(x []float64) []float64 {
	full := Convolve(x, f.Taps)
	d := (len(f.Taps) - 1) / 2
	out := make([]float64, len(x))
	copy(out, full[d:d+len(x)])
	return out
}

// FilterComplex applies the real-tap filter independently to the real and
// imaginary parts of x ("same" alignment as Filter).
func (f *FIR) FilterComplex(x []complex128) []complex128 {
	re := make([]float64, len(x))
	im := make([]float64, len(x))
	for i, v := range x {
		re[i] = real(v)
		im[i] = imag(v)
	}
	fr := f.Filter(re)
	fi := f.Filter(im)
	out := make([]complex128, len(x))
	for i := range out {
		out[i] = complex(fr[i], fi[i])
	}
	return out
}

// Response evaluates the filter's complex frequency response at the
// normalised frequency nu (cycles/sample).
func (f *FIR) Response(nu float64) complex128 {
	var acc complex128
	for n, h := range f.Taps {
		phi := -2 * math.Pi * nu * float64(n)
		s, c := math.Sincos(phi)
		acc += complex(h*c, h*s)
	}
	return acc
}

// MagnitudeDB returns the magnitude response in dB at nu, clamped at -400 dB.
func (f *FIR) MagnitudeDB(nu float64) float64 {
	m := f.Response(nu)
	mag := math.Hypot(real(m), imag(m))
	if mag < 1e-20 {
		return -400
	}
	return 20 * math.Log10(mag)
}

// Decimate lowpass-filters x and keeps every factor-th sample. The filter
// must already be designed with an appropriate cutoff (< 0.5/factor).
func (f *FIR) Decimate(x []complex128, factor int) []complex128 {
	if factor < 1 {
		panic("dsp: Decimate factor must be >= 1")
	}
	y := f.FilterComplex(x)
	out := make([]complex128, 0, len(y)/factor+1)
	for i := 0; i < len(y); i += factor {
		out = append(out, y[i])
	}
	return out
}
