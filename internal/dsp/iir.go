package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Biquad is one second-order IIR section in direct form II transposed:
//
//	y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
	z1, z2     float64
}

// Process filters one sample.
func (q *Biquad) Process(x float64) float64 {
	y := q.B0*x + q.z1
	q.z1 = q.B1*x - q.A1*y + q.z2
	q.z2 = q.B2*x - q.A2*y
	return y
}

// Reset clears the section state.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// IIR is a cascade of biquad sections — here used as discrete-time
// Butterworth filters for stream post-processing of captured records.
type IIR struct {
	Sections []Biquad
}

// NewButterworthLowpass designs an order-n Butterworth lowpass with -3 dB
// cutoff at the normalised frequency fc (cycles/sample, 0 < fc < 0.5) via
// the bilinear transform with frequency pre-warping. Odd orders are rounded
// up to the next even order (pure biquad cascade).
func NewButterworthLowpass(order int, fc float64) (*IIR, error) {
	if order < 1 || order > 16 {
		return nil, fmt.Errorf("dsp: Butterworth order %d outside [1, 16]", order)
	}
	if fc <= 0 || fc >= 0.5 {
		return nil, fmt.Errorf("dsp: Butterworth cutoff %g outside (0, 0.5)", fc)
	}
	if order%2 == 1 {
		order++
	}
	// Analog prototype poles on the unit circle, pre-warped cutoff.
	warped := math.Tan(math.Pi * fc)
	sections := make([]Biquad, 0, order/2)
	for k := 0; k < order/2; k++ {
		theta := math.Pi * (2*float64(k) + 1) / (2 * float64(order))
		// Analog pole pair: s = -sin(theta) +- i cos(theta), scaled by the
		// warped cutoff. Bilinear transform s = (1 - z^-1)/(1 + z^-1).
		re := -math.Sin(theta) * warped
		im := math.Cos(theta) * warped
		p := complex(re, im)
		// H(s) = w^2 / (s^2 - 2 re s + |p|^2); bilinear:
		pp := real(p)*real(p) + imag(p)*imag(p)
		a0 := 1 - 2*real(p) + pp
		b := Biquad{
			B0: warped * warped / a0,
			B1: 2 * warped * warped / a0,
			B2: warped * warped / a0,
			A1: (2*pp - 2) / a0,
			A2: (1 + 2*real(p) + pp) / a0,
		}
		sections = append(sections, b)
	}
	return &IIR{Sections: sections}, nil
}

// Reset clears all section states.
func (f *IIR) Reset() {
	for i := range f.Sections {
		f.Sections[i].Reset()
	}
}

// Filter processes a whole record (state persists across calls; Reset to
// start fresh).
func (f *IIR) Filter(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		y := v
		for s := range f.Sections {
			y = f.Sections[s].Process(y)
		}
		out[i] = y
	}
	return out
}

// Response evaluates the cascade's complex frequency response at the
// normalised frequency nu.
func (f *IIR) Response(nu float64) complex128 {
	z := cmplx.Exp(complex(0, -2*math.Pi*nu))
	h := complex(1, 0)
	for _, s := range f.Sections {
		num := complex(s.B0, 0) + complex(s.B1, 0)*z + complex(s.B2, 0)*z*z
		den := complex(1, 0) + complex(s.A1, 0)*z + complex(s.A2, 0)*z*z
		h *= num / den
	}
	return h
}

// MagnitudeDB returns the magnitude response in dB at nu.
func (f *IIR) MagnitudeDB(nu float64) float64 {
	return AmplitudeDB(cmplx.Abs(f.Response(nu)))
}
