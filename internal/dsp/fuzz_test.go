package dsp

import (
	"encoding/binary"
	"math"
	"math/cmplx"
	"testing"
)

// floatsFromBytes decodes data into at most maxN sanitized float64 samples:
// non-finite values become 0 and magnitudes fold into [-8, 8] so a fuzzed
// bit pattern cannot trivially overflow the transforms.
func floatsFromBytes(data []byte, maxN int) []float64 {
	n := len(data) / 8
	if n > maxN {
		n = maxN
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		} else if math.Abs(v) > 8 {
			v = math.Remainder(v, 8)
		}
		out[i] = v
	}
	return out
}

func complexFromFloats(vals []float64) []complex128 {
	x := make([]complex128, len(vals)/2)
	for i := range x {
		x[i] = complex(vals[2*i], vals[2*i+1])
	}
	return x
}

func seedBytes(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// FuzzFFTRoundtrip checks IFFT(FFT(x)) == x and Parseval's identity for
// arbitrary inputs of arbitrary length, covering both the radix-2 and the
// Bluestein path.
func FuzzFFTRoundtrip(f *testing.F) {
	f.Add(seedBytes(1, 0, -1, 0, 0.5, -0.25, 3, 3))                  // length 4: radix-2
	f.Add(seedBytes(1, 2, 3, 4, 5, 6))                               // length 3: Bluestein
	f.Add(seedBytes(0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, -0.8, 1)) // length 4 + spare
	f.Add(seedBytes(math.Inf(1), math.NaN(), 1e300, -1e-300))        // sanitizer path
	f.Fuzz(func(t *testing.T, data []byte) {
		x := complexFromFloats(floatsFromBytes(data, 128))
		if len(x) == 0 {
			t.Skip()
		}
		X := FFT(x)
		if len(X) != len(x) {
			t.Fatalf("FFT changed length: %d -> %d", len(x), len(X))
		}
		back := IFFT(X)
		scale := 1.0
		var pt, pf float64
		for i := range x {
			if a := cmplx.Abs(x[i]); a > scale {
				scale = a
			}
			pt += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			pf += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		tol := 1e-9 * scale * float64(len(x))
		for i := range x {
			if d := cmplx.Abs(back[i] - x[i]); d > tol {
				t.Fatalf("n=%d: roundtrip error %g at %d exceeds %g", len(x), d, i, tol)
			}
		}
		pf /= float64(len(x))
		if math.Abs(pt-pf) > 1e-9*(pt+1)*float64(len(x)) {
			t.Fatalf("n=%d: Parseval violated: time %g vs freq %g", len(x), pt, pf)
		}
	})
}

// FuzzBluesteinVsRadix2 differentially tests the chirp-z transform against
// the radix-2 FFT on power-of-two lengths, where both are defined.
func FuzzBluesteinVsRadix2(f *testing.F) {
	f.Add(seedBytes(1, 0, 0, 1, -1, 0, 0, -1))
	f.Add(seedBytes(0.5, 0.5, 0.5, 0.5, 1, 2, 3, 4, 5, 6, 7, 8, -1, -2, -3, -4))
	f.Add(seedBytes(2, -3))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := floatsFromBytes(data, 256)
		x := complexFromFloats(vals)
		// Truncate to the largest power-of-two length.
		n := 1
		for 2*n <= len(x) {
			n *= 2
		}
		if len(x) < 2 {
			t.Skip()
		}
		x = x[:n]
		want := FFT(x) // radix-2 path for power-of-two n
		got := make([]complex128, n)
		copy(got, x)
		got = bluestein(got, false)
		scale := 1.0
		for _, v := range x {
			scale += cmplx.Abs(v)
		}
		tol := 1e-9 * scale * float64(n)
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > tol {
				t.Fatalf("n=%d bin %d: bluestein %v vs radix-2 %v (diff %g > %g)",
					n, i, got[i], want[i], d, tol)
			}
		}
	})
}

// planSeed encodes a FuzzPlanVsDirect input: a little-endian uint16
// transform length followed by float64 samples that are cycled to fill it.
func planSeed(n int, vals ...float64) []byte {
	b := make([]byte, 2+8*len(vals))
	binary.LittleEndian.PutUint16(b, uint16(n))
	copy(b[2:], seedBytes(vals...))
	return b
}

// FuzzPlanVsDirect differentially tests the cached plan engine against the
// retained direct oracle (sincos-per-butterfly radix-2, per-call-chirp
// Bluestein) across mixed power-of-two and Bluestein lengths, in both
// directions. The contract is exact: a plan reproduces the direct
// transform bit for bit. Each case also executes the plan twice to
// exercise cache and scratch reuse.
func FuzzPlanVsDirect(f *testing.F) {
	for _, n := range []int{1, 2, 3, 12, 64, 1000, 4096} {
		f.Add(planSeed(n, 1, -0.5, 0.25, 3, -2, 0.125, 7, -0.75))
	}
	f.Add(planSeed(255, 1e6, -1e-6))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		n := int(binary.LittleEndian.Uint16(data))%4096 + 1
		vals := floatsFromBytes(data[2:], 64)
		if len(vals) < 2 {
			t.Skip()
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(vals[(2*i)%len(vals)], vals[(2*i+1)%len(vals)])
		}
		for _, inverse := range []bool{false, true} {
			want := directFFT(x, inverse)
			p := cachedPlan(n, inverse)
			got := make([]complex128, n)
			p.ExecuteInto(got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d inverse=%v bin %d: plan %v != direct %v",
						n, inverse, i, got[i], want[i])
				}
			}
			// Second execution on the same plan: scratch reuse must not
			// perturb the result.
			p.ExecuteInto(got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d inverse=%v bin %d: repeat Execute diverged", n, inverse, i)
				}
			}
		}
	})
}

// FuzzFIRLinearity checks the defining property of an LTI filter on fuzzed
// signals and mixing coefficients: Filter(a x + b y) == a Filter(x) +
// b Filter(y) up to rounding.
func FuzzFIRLinearity(f *testing.F) {
	f.Add(seedBytes(1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 2, -2))
	f.Add(seedBytes(0.5, -2, 0.1, 0.2, 0.3, 0.4, -0.5, 0.6, 0.7, -0.8))
	f.Add(seedBytes(3, 4))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := floatsFromBytes(data, 130)
		if len(vals) < 4 {
			t.Skip()
		}
		a, b := vals[0], vals[1]
		sig := vals[2:]
		half := len(sig) / 2
		if half == 0 {
			t.Skip()
		}
		x, y := sig[:half], sig[half:2*half]
		fir, err := DesignLowpass(13, 0.2, KaiserWin, 6)
		if err != nil {
			t.Fatal(err)
		}
		// The error scale is set by the individual terms, not the mix: when
		// a x and b y nearly cancel, each side still rounds at the magnitude
		// of the larger operand.
		var mx, my float64
		for i := range x {
			mx = math.Max(mx, math.Abs(x[i]))
			my = math.Max(my, math.Abs(y[i]))
		}
		scale := 1 + math.Abs(a)*mx + math.Abs(b)*my
		mix := make([]float64, half)
		for i := range mix {
			mix[i] = a*x[i] + b*y[i]
		}
		fm := fir.Filter(mix)
		fx := fir.Filter(x)
		fy := fir.Filter(y)
		tol := 1e-10 * scale * float64(half)
		for i := range fm {
			want := a*fx[i] + b*fy[i]
			if d := math.Abs(fm[i] - want); d > tol {
				t.Fatalf("linearity violated at %d: %g vs %g (diff %g > %g, a=%g b=%g n=%d)",
					i, fm[i], want, d, tol, a, b, half)
			}
		}
	})
}
