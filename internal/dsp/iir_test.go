package dsp

import (
	"math"
	"testing"
)

func TestButterworthValidation(t *testing.T) {
	if _, err := NewButterworthLowpass(0, 0.1); err == nil {
		t.Error("order 0 must fail")
	}
	if _, err := NewButterworthLowpass(20, 0.1); err == nil {
		t.Error("order 20 must fail")
	}
	if _, err := NewButterworthLowpass(4, 0); err == nil {
		t.Error("fc 0 must fail")
	}
	if _, err := NewButterworthLowpass(4, 0.5); err == nil {
		t.Error("fc 0.5 must fail")
	}
	// Odd order rounds up.
	f, err := NewButterworthLowpass(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sections) != 2 {
		t.Errorf("%d sections for order 3->4", len(f.Sections))
	}
}

func TestButterworthResponseShape(t *testing.T) {
	f, err := NewButterworthLowpass(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// DC gain 1.
	if db := f.MagnitudeDB(0); math.Abs(db) > 0.01 {
		t.Errorf("DC gain %g dB", db)
	}
	// -3 dB at the cutoff.
	if db := f.MagnitudeDB(0.1); math.Abs(db-(-3.01)) > 0.2 {
		t.Errorf("cutoff gain %g dB, want -3", db)
	}
	// Monotone (maximally flat) magnitude.
	prev := 1.0
	for nu := 0.005; nu < 0.5; nu += 0.005 {
		m := math.Abs(real(f.Response(nu))) + math.Abs(imag(f.Response(nu)))
		_ = m
		mag := cabs(f.Response(nu))
		if mag > prev+1e-9 {
			t.Fatalf("non-monotone magnitude at %g", nu)
		}
		prev = mag
	}
	// ~ -24 dB/octave for order 4: an octave above cutoff.
	if db := f.MagnitudeDB(0.2); db > -20 {
		t.Errorf("octave-above attenuation %g dB", db)
	}
}

func TestButterworthTimeDomain(t *testing.T) {
	f, _ := NewButterworthLowpass(4, 0.05)
	n := 2048
	in := make([]float64, n)
	for i := range in {
		in[i] = math.Sin(2*math.Pi*0.01*float64(i)) + math.Sin(2*math.Pi*0.3*float64(i))
	}
	out := f.Filter(in)
	// The 0.3 component must be crushed; the 0.01 component survives.
	lowP := cabs(DTFT(out[500:], 0.01))
	highP := cabs(DTFT(out[500:], 0.3))
	if highP > lowP/100 {
		t.Errorf("stopband leakage: low %g vs high %g", lowP, highP)
	}
	// Reset clears state.
	f.Reset()
	y1 := f.Filter([]float64{1})
	f.Reset()
	y2 := f.Filter([]float64{1})
	if y1[0] != y2[0] {
		t.Error("Reset does not restore initial state")
	}
}

func TestBiquadDirectFormIdentity(t *testing.T) {
	// A pass-through biquad.
	q := Biquad{B0: 1}
	for i, v := range []float64{1, -2, 3.5} {
		if got := q.Process(v); got != v {
			t.Fatalf("sample %d: %g != %g", i, got, v)
		}
	}
}
