// Package dsp provides the digital signal processing substrate used by the
// PNBS-BIST reproduction: FFTs, window functions, FIR design and filtering,
// power spectral density estimation, tone extraction and small numerical
// helpers. It replaces the Matlab toolbox functions used by the paper and is
// implemented with the standard library only.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0
// or when the result would overflow an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic("dsp: NextPowerOfTwo overflow")
	}
	return p
}

// FFT computes the fast Fourier transform of x: radix-2 for power-of-two
// lengths, Bluestein chirp-z otherwise. The input slice is not modified; a
// new slice holding X[k] = sum_n x[n] exp(-i 2 pi k n / N) is returned.
// The transform runs through the shared plan cache (see Plan), so repeated
// calls at one size pay the twiddle trigonometry only once; callers on a
// hot path can hold the plan themselves and use Execute to skip the output
// allocation too.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	PlanFFT(n).ExecuteInto(out, x)
	return out
}

// IFFT computes the inverse discrete Fourier transform with 1/N scaling so
// that IFFT(FFT(x)) == x up to rounding. Like FFT it is a thin wrapper
// over the plan cache.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	PlanIFFT(n).ExecuteInto(out, x)
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// fftRadix2 performs an in-place iterative radix-2 FFT, evaluating each
// twiddle with math.Sincos inside the butterfly loop. It is retained as
// the direct oracle the plan engine is fuzzed against (FuzzPlanVsDirect):
// a Plan must reproduce it bit for bit.
// inverse selects the conjugate (un-normalised inverse) transform.
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// Twiddle generation by recurrence would accumulate error over
		// long runs; direct evaluation keeps the transform accurate for
		// the modest sizes (<= 2^22) used here.
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				s, c := math.Sincos(step * float64(k))
				w := complex(c, s)
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
	}
}

// RealFFT computes the DFT of a real sequence and returns the full complex
// spectrum (length len(x)). For real inputs the upper half mirrors the lower
// half; callers interested in the one-sided spectrum can slice [:n/2+1] or
// call RealFFTHalf. Even lengths take the half-size complex-transform
// split (RealPlan) — roughly twice as fast as widening to []complex128 —
// and odd lengths fall back to the complex plan.
func RealFFT(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	if n >= 2 && n%2 == 0 {
		PlanRealFFT(n).Transform(out, x)
		return out
	}
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	PlanFFT(n).Execute(out)
	return out
}

// RealFFTHalf computes the one-sided spectrum of a real sequence: bins
// 0..n/2 inclusive (length n/2+1). For real input the remaining bins are
// the conjugate mirror, so this is the whole information content at half
// the memory traffic of RealFFT.
func RealFFTHalf(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n >= 2 && n%2 == 0 {
		out := make([]complex128, n/2+1)
		PlanRealFFT(n).HalfSpectrum(out, x)
		return out
	}
	return RealFFT(x)[:n/2+1]
}

// FFTShift reorders a spectrum so that the zero-frequency bin sits at the
// centre, mirroring Matlab's fftshift. Works for even and odd lengths.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	h := (n + 1) / 2
	copy(out, x[h:])
	copy(out[n-h:], x[:h])
	return out
}

// FFTShiftFloat is FFTShift for real-valued vectors (e.g. PSD estimates).
func FFTShiftFloat(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	h := (n + 1) / 2
	copy(out, x[h:])
	copy(out[n-h:], x[:h])
	return out
}

// FFTFreqs returns the frequency axis of an N-point DFT at sample rate fs in
// natural (unshifted) bin order: 0, fs/N, ..., then the negative frequencies.
func FFTFreqs(n int, fs float64) []float64 {
	if n <= 0 {
		return nil
	}
	f := make([]float64, n)
	df := fs / float64(n)
	for i := 0; i < n; i++ {
		k := i
		if i > (n-1)/2 {
			k = i - n
		}
		f[i] = float64(k) * df
	}
	return f
}

// DTFT evaluates the discrete-time Fourier transform of x at the normalised
// frequency nu (cycles per sample): X(nu) = sum_n x[n] exp(-i 2 pi nu n).
// It is the arbitrary-frequency companion of Goertzel for short sequences.
func DTFT(x []float64, nu float64) complex128 {
	var acc complex128
	for n, v := range x {
		phi := -2 * math.Pi * nu * float64(n)
		s, c := math.Sincos(phi)
		acc += complex(v*c, v*s)
	}
	return acc
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1), computed via FFT for large inputs and directly
// for small ones.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	if len(a)*len(b) <= 4096 { // direct is faster and exact for small sizes
		out := make([]float64, n)
		for i, av := range a {
			for j, bv := range b {
				out[i+j] += av * bv
			}
		}
		return out
	}
	m := NextPowerOfTwo(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	fwd := PlanFFT(m)
	fwd.Execute(fa)
	fwd.Execute(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	PlanIFFT(m).Execute(fa)
	out := make([]float64, n)
	scale := 1 / float64(m)
	for i := range out {
		out[i] = real(fa[i]) * scale
	}
	return out
}

// MaxAbs returns the maximum magnitude of the complex vector, or 0 for an
// empty input.
func MaxAbs(x []complex128) float64 {
	m := 0.0
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}
