package dsp

import "math"

// PowerDB converts a power ratio to decibels (10 log10), clamped at -400 dB
// for non-positive inputs so log-domain plots stay finite.
func PowerDB(p float64) float64 {
	if p <= 0 {
		return -400
	}
	return 10 * math.Log10(p)
}

// AmplitudeDB converts an amplitude ratio to decibels (20 log10), with the
// same clamping as PowerDB.
func AmplitudeDB(a float64) float64 {
	if a <= 0 {
		return -400
	}
	return 20 * math.Log10(a)
}

// FromPowerDB converts decibels to a power ratio.
func FromPowerDB(db float64) float64 { return math.Pow(10, db/10) }

// FromAmplitudeDB converts decibels to an amplitude ratio.
func FromAmplitudeDB(db float64) float64 { return math.Pow(10, db/20) }

// DBm converts a power in watts (50-ohm convention handled by caller) to dBm.
func DBm(watts float64) float64 {
	if watts <= 0 {
		return -400
	}
	return 10*math.Log10(watts) + 30
}
