package dsp

import "math"

// bluestein computes the DFT (or un-normalised inverse DFT) of a for
// arbitrary length using the chirp-z transform: the length-N DFT is expressed
// as a convolution, which is evaluated with power-of-two FFTs.
//
// This is the direct evaluation — chirp and kernel rebuilt on every call —
// retained as the oracle the cached Bluestein plans are fuzzed against
// (FuzzPlanVsDirect); production callers go through Plan, which reproduces
// this function bit for bit.
func bluestein(a []complex128, inverse bool) []complex128 {
	n := len(a)
	if n < 2 {
		out := make([]complex128, n)
		copy(out, a)
		return out
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * i * pi * k^2 / n). k^2 mod 2n keeps the phase
	// argument bounded so accuracy does not degrade for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		phi := sign * math.Pi * float64(kk) / float64(n)
		s, c := math.Sincos(phi)
		chirp[k] = complex(c, s)
	}
	m := NextPowerOfTwo(2*n - 1)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for k := 0; k < n; k++ {
		fa[k] = a[k] * chirp[k]
	}
	// Kernel b[k] = conj(chirp[|k|]) arranged circularly.
	fb[0] = conj(chirp[0])
	for k := 1; k < n; k++ {
		v := conj(chirp[k])
		fb[k] = v
		fb[m-k] = v
	}
	fftRadix2(fa, false)
	fftRadix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	fftRadix2(fa, true)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = fa[k] * scale * chirp[k]
	}
	return out
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }
