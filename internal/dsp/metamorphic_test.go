package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// Metamorphic properties of the transform substrate across randomized
// lengths, deliberately including non-powers of two so the Bluestein path
// sits under the same net as radix-2.

var metamorphicLengths = []int{5, 8, 12, 16, 27, 31, 64, 100, 128}

func randVec(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTParsevalAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range metamorphicLengths {
		x := randVec(n, rng)
		var pt, pf float64
		for _, v := range x {
			pt += real(v)*real(v) + imag(v)*imag(v)
		}
		for _, v := range FFT(x) {
			pf += real(v)*real(v) + imag(v)*imag(v)
		}
		pf /= float64(n)
		if math.Abs(pt-pf) > 1e-9*(pt+1) {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, pt, pf)
		}
	}
}

func TestFFTLinearityAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, n := range metamorphicLengths {
		a := randVec(n, rng)
		b := randVec(n, rng)
		alpha := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+alpha*fb[i])) > 1e-8*float64(n) {
				t.Errorf("n=%d bin %d: linearity violated", n, i)
				break
			}
		}
	}
}

// TestFFTTimeShiftTheorem: circularly delaying x by s multiplies bin k by
// exp(-i 2 pi k s / N).
func TestFFTTimeShiftTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, n := range metamorphicLengths {
		x := randVec(n, rng)
		s := 1 + rng.Intn(n-1)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[((i-s)%n+n)%n]
		}
		fx, fs := FFT(x), FFT(shifted)
		for k := range fx {
			phi := -2 * math.Pi * float64(k) * float64(s) / float64(n)
			sn, cs := math.Sincos(phi)
			want := fx[k] * complex(cs, sn)
			if cmplx.Abs(fs[k]-want) > 1e-8*(1+cmplx.Abs(fx[k]))*float64(n) {
				t.Errorf("n=%d shift=%d bin %d: %v, want %v", n, s, k, fs[k], want)
				break
			}
		}
	}
}

// TestFFTConjugateSymmetryAllLengths: a real input spectrum satisfies
// X[(N-k) mod N] = conj(X[k]) on both transform paths.
func TestFFTConjugateSymmetryAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, n := range metamorphicLengths {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		X := RealFFT(x)
		for k := range X {
			mirror := X[(n-k)%n]
			if cmplx.Abs(mirror-cmplx.Conj(X[k])) > 1e-8*(1+cmplx.Abs(X[k]))*float64(n) {
				t.Errorf("n=%d bin %d: conjugate symmetry violated", n, k)
				break
			}
		}
	}
}

// TestResampleIdentity: the L == M resampler must be the identity to within
// sinc rounding — its prototype collapses to a near-unit impulse (sin(pi k)
// leaves ~1e-17 residue off-centre).
func TestResampleIdentity(t *testing.T) {
	r, err := NewResampler(1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(105))
	x := make([]float64, 257)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := r.Apply(x)
	if len(y) != len(x) {
		t.Fatalf("identity resampler changed length: %d -> %d", len(x), len(y))
	}
	for i := range y {
		if math.Abs(y[i]-x[i]) > 1e-12*(1+math.Abs(x[i])) {
			t.Fatalf("identity resampler altered sample %d: %g -> %g", i, x[i], y[i])
		}
	}
	// The reduction path must behave the same: 3/3 == 1/1.
	r33, err := NewResampler(3, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r33.L != 1 || r33.M != 1 {
		t.Errorf("3/3 not reduced: L=%d M=%d", r33.L, r33.M)
	}
}

// TestResampleRoundTripBandlimited: upsampling by 2 then decimating by 2
// must return a bandlimited signal to itself within the prototype's
// stopband leakage, away from the edges.
func TestResampleRoundTripBandlimited(t *testing.T) {
	up, err := NewResampler(2, 1, 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	down, err := NewResampler(1, 2, 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	n := 400
	x := make([]float64, n)
	for i := range x {
		tv := float64(i)
		x[i] = math.Sin(2*math.Pi*0.04*tv) + 0.5*math.Cos(2*math.Pi*0.11*tv+0.3)
	}
	y := down.Apply(up.Apply(x))
	if len(y) < n {
		t.Fatalf("roundtrip shortened signal: %d -> %d", n, len(y))
	}
	worst := 0.0
	for i := n / 4; i < 3*n/4; i++ { // interior: clear of kernel edge effects
		if d := math.Abs(y[i] - x[i]); d > worst {
			worst = d
		}
	}
	if worst > 2e-3 {
		t.Errorf("roundtrip interior error %g exceeds 2e-3", worst)
	}
}
