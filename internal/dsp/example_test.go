package dsp_test

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// Round-trip a record through the FFT.
func ExampleFFT() {
	x := make([]complex128, 8)
	x[1] = 1 // a unit impulse at n = 1
	spec := dsp.FFT(x)
	back := dsp.IFFT(spec)
	fmt.Printf("|X[k]| flat: %v, round trip exact: %v\n",
		math.Abs(real(spec[0]*complex(real(spec[0]), -imag(spec[0])))-1) < 1e-12,
		math.Abs(real(back[1])-1) < 1e-12)
	// Output: |X[k]| flat: true, round trip exact: true
}

// Welch PSD of a complex tone in noise.
func ExampleWelchComplex() {
	fs := 1e6
	x := make([]complex128, 1<<13)
	for i := range x {
		s, c := math.Sincos(2 * math.Pi * 125e3 * float64(i) / fs)
		x[i] = complex(c, s)
	}
	spec, err := dsp.WelchComplex(x, fs, 0, dsp.DefaultWelch(1024))
	if err != nil {
		panic(err)
	}
	_, fpk := spec.PeakBin()
	fmt.Printf("peak at %.0f kHz\n", fpk/1e3)
	// Output: peak at 125 kHz
}

// Rational resampling by 3/2.
func ExampleResampler() {
	r, err := dsp.NewResampler(3, 2, 12, 70)
	if err != nil {
		panic(err)
	}
	in := make([]float64, 200)
	for i := range in {
		in[i] = math.Sin(2 * math.Pi * 0.05 * float64(i))
	}
	out := r.Apply(in)
	fmt.Printf("%d -> %d samples\n", len(in), len(out))
	// Output: 200 -> 300 samples
}
