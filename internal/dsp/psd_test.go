package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchToneAndNoiseFloor(t *testing.T) {
	// Complex tone of amplitude A at f0 in white noise: the PSD peak should
	// integrate to ~A^2 and the floor should match sigma^2/fs.
	rng := rand.New(rand.NewSource(10))
	fs := 1e6
	f0 := 125e3
	amp := 1.0
	sigma := 0.01
	n := 1 << 16
	x := make([]complex128, n)
	for i := range x {
		phi := 2 * math.Pi * f0 * float64(i) / fs
		s, c := math.Sincos(phi)
		x[i] = complex(amp*c+sigma*rng.NormFloat64(), amp*s+sigma*rng.NormFloat64())
	}
	spec, err := WelchComplex(x, fs, 0, DefaultWelch(4096))
	if err != nil {
		t.Fatal(err)
	}
	_, fpk := spec.PeakBin()
	if math.Abs(fpk-f0) > 2*spec.BinWidth {
		t.Errorf("peak at %g Hz, want %g", fpk, f0)
	}
	// Tone power: integrate +-5 bins around the peak.
	p := spec.PowerInBand(f0-5*spec.BinWidth, f0+5*spec.BinWidth)
	if math.Abs(p-amp*amp) > 0.05*amp*amp {
		t.Errorf("tone power %g, want ~%g", p, amp*amp)
	}
	// Noise floor far from the tone: PSD ~ 2*sigma^2/fs (complex noise has
	// sigma^2 per real dimension).
	floor := spec.PowerInBand(-400e3, -300e3) / 100e3
	want := 2 * sigma * sigma / fs
	if floor < want/3 || floor > want*3 {
		t.Errorf("noise floor %g, want ~%g", floor, want)
	}
	// Total power should approximate tone + noise power.
	tot := spec.TotalPower()
	if math.Abs(tot-(amp*amp+2*sigma*sigma)) > 0.1*amp*amp {
		t.Errorf("total power %g", tot)
	}
}

func TestWelchRealTone(t *testing.T) {
	fs := 1e4
	f0 := 1e3
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = 2 * math.Cos(2*math.Pi*f0*float64(i)/fs)
	}
	spec, err := WelchReal(x, fs, DefaultWelch(2048))
	if err != nil {
		t.Fatal(err)
	}
	// Real tone of amplitude 2: power 2, split between +-f0 (1 each).
	pp := spec.PowerInBand(f0-50, f0+50)
	pn := spec.PowerInBand(-f0-50, -f0+50)
	if math.Abs(pp-1) > 0.05 || math.Abs(pn-1) > 0.05 {
		t.Errorf("split powers %g, %g, want 1, 1", pp, pn)
	}
}

func TestWelchErrors(t *testing.T) {
	x := make([]complex128, 100)
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 0}); err == nil {
		t.Error("segment 0 should fail")
	}
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 200}); err == nil {
		t.Error("segment > input should fail")
	}
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 50, Overlap: 50}); err == nil {
		t.Error("overlap == segment should fail")
	}
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 50, Overlap: -1}); err == nil {
		t.Error("negative overlap should fail")
	}
}

func TestPeriodogramCentreShift(t *testing.T) {
	n := 1024
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(1, 0) // DC only
	}
	spec, err := Periodogram(x, 1e6, 2e9, Hann, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, fpk := spec.PeakBin()
	if math.Abs(fpk-2e9) > spec.BinWidth {
		t.Errorf("centre-shifted DC peak at %g, want 2e9", fpk)
	}
}

func TestSpectrumHelpers(t *testing.T) {
	s := &Spectrum{
		Freqs:    []float64{-1, 0, 1},
		PSD:      []float64{0, 2, 1},
		BinWidth: 1,
	}
	if s.Len() != 3 {
		t.Error("Len")
	}
	if p := s.PowerInBand(1, -1); p != 3 { // swapped bounds
		t.Errorf("PowerInBand swapped = %g", p)
	}
	db := s.PSDdB()
	if db[0] != -400 {
		t.Error("zero PSD should clamp at -400 dB")
	}
	if math.Abs(db[1]-10*math.Log10(2)) > 1e-12 {
		t.Error("PSDdB value")
	}
}

func TestDBHelpers(t *testing.T) {
	if PowerDB(100) != 20 || AmplitudeDB(10) != 20 {
		t.Error("dB conversions")
	}
	if PowerDB(0) != -400 || AmplitudeDB(-1) != -400 {
		t.Error("clamping")
	}
	if math.Abs(FromPowerDB(3)-1.9952623149688795) > 1e-12 {
		t.Error("FromPowerDB")
	}
	if math.Abs(FromAmplitudeDB(6)-1.9952623149688795) > 1e-12 {
		t.Error("FromAmplitudeDB")
	}
	if math.Abs(DBm(1)-30) > 1e-12 || DBm(0) != -400 {
		t.Error("DBm")
	}
}

func TestGoertzelMatchesDTFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 333)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, nu := range []float64{0, 0.01, 0.123456, 0.25, 0.49} {
		g := Goertzel(x, nu)
		d := DTFT(x, nu)
		if cabs(g-d) > 1e-7*float64(len(x)) {
			t.Errorf("nu=%g: Goertzel %v vs DTFT %v", nu, g, d)
		}
	}
	if Goertzel(nil, 0.1) != 0 {
		t.Error("empty Goertzel should be 0")
	}
}

func TestTonePhasorRecoversAmplitudeAndPhase(t *testing.T) {
	n := 1000
	nu := 0.123
	amp, phase := 1.7, 0.6
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Cos(2*math.Pi*nu*float64(i)+phase)
	}
	p := TonePhasor(x, nu, Window(Hann, n, 0))
	if math.Abs(cabs(p)-amp) > 1e-3 {
		t.Errorf("amplitude %g, want %g", cabs(p), amp)
	}
	if d := math.Abs(math.Atan2(imag(p), real(p)) - phase); d > 1e-3 {
		t.Errorf("phase error %g", d)
	}
	if TonePhasor(nil, 0.1, nil) != 0 {
		t.Error("empty input")
	}
}
