package dsp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
	"repro/internal/testkit"
)

func TestWelchToneAndNoiseFloor(t *testing.T) {
	// Complex tone of amplitude A at f0 in white noise: the PSD peak should
	// integrate to ~A^2 and the floor should match sigma^2/fs.
	rng := rand.New(rand.NewSource(10))
	fs := 1e6
	f0 := 125e3
	amp := 1.0
	sigma := 0.01
	n := 1 << 16
	x := make([]complex128, n)
	for i := range x {
		phi := 2 * math.Pi * f0 * float64(i) / fs
		s, c := math.Sincos(phi)
		x[i] = complex(amp*c+sigma*rng.NormFloat64(), amp*s+sigma*rng.NormFloat64())
	}
	spec, err := WelchComplex(x, fs, 0, DefaultWelch(4096))
	if err != nil {
		t.Fatal(err)
	}
	_, fpk := spec.PeakBin()
	if math.Abs(fpk-f0) > 2*spec.BinWidth {
		t.Errorf("peak at %g Hz, want %g", fpk, f0)
	}
	// Tone power: integrate +-5 bins around the peak.
	p := spec.PowerInBand(f0-5*spec.BinWidth, f0+5*spec.BinWidth)
	if math.Abs(p-amp*amp) > 0.05*amp*amp {
		t.Errorf("tone power %g, want ~%g", p, amp*amp)
	}
	// Noise floor far from the tone: PSD ~ 2*sigma^2/fs (complex noise has
	// sigma^2 per real dimension).
	floor := spec.PowerInBand(-400e3, -300e3) / 100e3
	want := 2 * sigma * sigma / fs
	if floor < want/3 || floor > want*3 {
		t.Errorf("noise floor %g, want ~%g", floor, want)
	}
	// Total power should approximate tone + noise power.
	tot := spec.TotalPower()
	if math.Abs(tot-(amp*amp+2*sigma*sigma)) > 0.1*amp*amp {
		t.Errorf("total power %g", tot)
	}
}

func TestWelchRealTone(t *testing.T) {
	fs := 1e4
	f0 := 1e3
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = 2 * math.Cos(2*math.Pi*f0*float64(i)/fs)
	}
	spec, err := WelchReal(x, fs, DefaultWelch(2048))
	if err != nil {
		t.Fatal(err)
	}
	// Real tone of amplitude 2: power 2, split between +-f0 (1 each).
	pp := spec.PowerInBand(f0-50, f0+50)
	pn := spec.PowerInBand(-f0-50, -f0+50)
	if math.Abs(pp-1) > 0.05 || math.Abs(pn-1) > 0.05 {
		t.Errorf("split powers %g, %g, want 1, 1", pp, pn)
	}
}

func TestWelchErrors(t *testing.T) {
	x := make([]complex128, 100)
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 0}); err == nil {
		t.Error("segment 0 should fail")
	}
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 200}); err == nil {
		t.Error("segment > input should fail")
	}
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 50, Overlap: 50}); err == nil {
		t.Error("overlap == segment should fail")
	}
	if _, err := WelchComplex(x, 1, 0, WelchConfig{SegmentLen: 50, Overlap: -1}); err == nil {
		t.Error("negative overlap should fail")
	}
}

func TestPeriodogramCentreShift(t *testing.T) {
	n := 1024
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(1, 0) // DC only
	}
	spec, err := Periodogram(x, 1e6, 2e9, Hann, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, fpk := spec.PeakBin()
	if math.Abs(fpk-2e9) > spec.BinWidth {
		t.Errorf("centre-shifted DC peak at %g, want 2e9", fpk)
	}
}

func TestSpectrumHelpers(t *testing.T) {
	s := &Spectrum{
		Freqs:    []float64{-1, 0, 1},
		PSD:      []float64{0, 2, 1},
		BinWidth: 1,
	}
	if s.Len() != 3 {
		t.Error("Len")
	}
	if p := s.PowerInBand(1, -1); p != 3 { // swapped bounds
		t.Errorf("PowerInBand swapped = %g", p)
	}
	db := s.PSDdB()
	if db[0] != -400 {
		t.Error("zero PSD should clamp at -400 dB")
	}
	if math.Abs(db[1]-10*math.Log10(2)) > 1e-12 {
		t.Error("PSDdB value")
	}
}

// TestPowerInBandBoundaries pins the binary-search bin-range behaviour at
// the awkward edges: bands outside the axis, single-bin bands, inverted
// bounds and exact bin-centre hits.
func TestPowerInBandBoundaries(t *testing.T) {
	s := &Spectrum{
		Freqs:    []float64{-2, -1, 0, 1, 2},
		PSD:      []float64{1, 2, 4, 8, 16},
		BinWidth: 1,
	}
	cases := []struct {
		name   string
		f1, f2 float64
		want   float64
	}{
		{"whole axis", -2, 2, 31},
		{"beyond both ends", -100, 100, 31},
		{"entirely below", -10, -3, 0},
		{"entirely above", 3, 10, 0},
		{"between bin centres", 0.25, 0.75, 0},
		{"single bin exact", 1, 1, 8},
		{"single bin straddled", 0.5, 1.5, 8},
		{"inverted bounds", 1.5, 0.5, 8},
		{"inverted whole axis", 2, -2, 31},
		{"left edge only", -2, -2, 1},
		{"right edge only", 2, 2, 16},
	}
	for _, c := range cases {
		if got := s.PowerInBand(c.f1, c.f2); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("%s: PowerInBand(%g, %g) = %g, want %g", c.name, c.f1, c.f2, got, c.want)
		}
	}
	// TotalPower must agree with the full-axis band query.
	if got, want := s.TotalPower(), s.PowerInBand(-2, 2); got != want {
		t.Errorf("TotalPower %g != full-axis PowerInBand %g", got, want)
	}
	empty := &Spectrum{}
	if empty.PowerInBand(-1, 1) != 0 || empty.TotalPower() != 0 {
		t.Error("empty spectrum should integrate to 0")
	}
}

// TestWelchRealMatchesComplex differentially checks the half-size
// real-FFT Welch path against the widen-to-complex reference on the same
// record, for both power-of-two and odd (Bluestein-fallback) segments.
func TestWelchRealMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	n := 6000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.21*float64(i)) + 0.3*rng.NormFloat64()
	}
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	for _, segLen := range []int{512, 500, 511} { // pow2, even-Bluestein, odd
		cfg := DefaultWelch(segLen)
		sre, err := WelchReal(x, 1e6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := WelchComplex(c, 1e6, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sre.Len() != ref.Len() || sre.BinWidth != ref.BinWidth {
			t.Fatalf("seg %d: shape mismatch", segLen)
		}
		for i := range ref.PSD {
			d := math.Abs(sre.PSD[i] - ref.PSD[i])
			if d > 1e-12*(ref.PSD[i]+1e-30) && d > 1e-25 {
				t.Fatalf("seg %d bin %d: real-path PSD %g vs complex %g", segLen, i, sre.PSD[i], ref.PSD[i])
			}
			if sre.Freqs[i] != ref.Freqs[i] {
				t.Fatalf("seg %d bin %d: freq axis diverged", segLen, i)
			}
		}
	}
}

// TestWelchWorkerCountByteIdentical asserts the Welch determinism
// contract: the canonical encoding of the Spectrum is byte-identical for
// worker counts 1, 2 and 8 on the same input, for both the complex and
// real estimators.
func TestWelchWorkerCountByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 1 << 13
	xc := make([]complex128, n)
	xr := make([]float64, n)
	for i := range xc {
		xc[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		xr[i] = rng.NormFloat64()
	}
	cfg := DefaultWelch(512)
	encode := func(workers int) (cpx, re []byte) {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		sc, err := WelchComplex(xc, 1e6, 1e9, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := WelchReal(xr, 1e6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := testkit.MarshalCanonical(sc)
		if err != nil {
			t.Fatal(err)
		}
		br, err := testkit.MarshalCanonical(sr)
		if err != nil {
			t.Fatal(err)
		}
		return bc, br
	}
	c1, r1 := encode(1)
	for _, w := range []int{2, 8} {
		cw, rw := encode(w)
		if !bytes.Equal(c1, cw) {
			t.Errorf("WelchComplex: %d workers diverged from serial", w)
		}
		if !bytes.Equal(r1, rw) {
			t.Errorf("WelchReal: %d workers diverged from serial", w)
		}
	}
}

// TestWelchMatchesSerialReference pins the parallel implementation to the
// seed-era serial accumulation loop bit for bit.
func TestWelchMatchesSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	cfg := DefaultWelch(256)
	got, err := WelchComplex(x, 2e6, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the historical serial loop, written out longhand.
	win := Window(cfg.Win, cfg.SegmentLen, cfg.Beta)
	var winPow float64
	for _, w := range win {
		winPow += w * w
	}
	step := cfg.SegmentLen - cfg.Overlap
	acc := make([]float64, cfg.SegmentLen)
	buf := make([]complex128, cfg.SegmentLen)
	segs := 0
	for start := 0; start+cfg.SegmentLen <= n; start += step {
		for i := 0; i < cfg.SegmentLen; i++ {
			buf[i] = x[start+i] * complex(win[i], 0)
		}
		spec := directFFT(buf, false)
		for i, v := range spec {
			re, im := real(v), imag(v)
			acc[i] += re*re + im*im
		}
		segs++
	}
	norm := 1 / (2e6 * winPow * float64(segs))
	for i := range acc {
		acc[i] *= norm
	}
	want := FFTShiftFloat(acc)
	for i := range want {
		if got.PSD[i] != want[i] {
			t.Fatalf("bin %d: parallel Welch %g != serial reference %g", i, got.PSD[i], want[i])
		}
	}
}

func TestDBHelpers(t *testing.T) {
	if PowerDB(100) != 20 || AmplitudeDB(10) != 20 {
		t.Error("dB conversions")
	}
	if PowerDB(0) != -400 || AmplitudeDB(-1) != -400 {
		t.Error("clamping")
	}
	if math.Abs(FromPowerDB(3)-1.9952623149688795) > 1e-12 {
		t.Error("FromPowerDB")
	}
	if math.Abs(FromAmplitudeDB(6)-1.9952623149688795) > 1e-12 {
		t.Error("FromAmplitudeDB")
	}
	if math.Abs(DBm(1)-30) > 1e-12 || DBm(0) != -400 {
		t.Error("DBm")
	}
}

func TestGoertzelMatchesDTFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 333)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, nu := range []float64{0, 0.01, 0.123456, 0.25, 0.49} {
		g := Goertzel(x, nu)
		d := DTFT(x, nu)
		if cabs(g-d) > 1e-7*float64(len(x)) {
			t.Errorf("nu=%g: Goertzel %v vs DTFT %v", nu, g, d)
		}
	}
	if Goertzel(nil, 0.1) != 0 {
		t.Error("empty Goertzel should be 0")
	}
}

func TestTonePhasorRecoversAmplitudeAndPhase(t *testing.T) {
	n := 1000
	nu := 0.123
	amp, phase := 1.7, 0.6
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Cos(2*math.Pi*nu*float64(i)+phase)
	}
	p := TonePhasor(x, nu, Window(Hann, n, 0))
	if math.Abs(cabs(p)-amp) > 1e-3 {
		t.Errorf("amplitude %g, want %g", cabs(p), amp)
	}
	if d := math.Abs(math.Atan2(imag(p), real(p)) - phase); d > 1e-3 {
		t.Errorf("phase error %g", d)
	}
	if TonePhasor(nil, 0.1, nil) != 0 {
		t.Error("empty input")
	}
}
