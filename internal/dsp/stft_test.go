package dsp

import (
	"math"
	"testing"
)

func TestSTFTValidation(t *testing.T) {
	x := make([]complex128, 64)
	if _, err := STFT(x, 1, 2, 1); err == nil {
		t.Error("tiny segment must fail")
	}
	if _, err := STFT(x, 1, 16, 0); err == nil {
		t.Error("hop 0 must fail")
	}
	if _, err := STFT(x[:8], 1, 16, 4); err == nil {
		t.Error("short input must fail")
	}
}

func TestSTFTTracksHoppingTone(t *testing.T) {
	// Frequency-hopped complex tone: -100 kHz for the first half, +200 kHz
	// for the second.
	fs := 1e6
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		f := -100e3
		if i >= n/2 {
			f = 200e3
		}
		ph := 2 * math.Pi * f * float64(i) / fs
		s, c := math.Sincos(ph)
		x[i] = complex(c, s)
	}
	sg, err := STFT(x, fs, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	track := sg.PeakTrack()
	if len(track) != len(sg.Times) {
		t.Fatal("track length")
	}
	// Early columns near -100 kHz, late near +200 kHz.
	early := track[1]
	late := track[len(track)-2]
	if math.Abs(early-(-100e3)) > 2*fs/256 {
		t.Errorf("early track %g", early)
	}
	if math.Abs(late-200e3) > 2*fs/256 {
		t.Errorf("late track %g", late)
	}
	// Time axis sane and monotone.
	for i := 1; i < len(sg.Times); i++ {
		if sg.Times[i] <= sg.Times[i-1] {
			t.Fatal("times not monotone")
		}
	}
	// Frequency axis spans [-fs/2, fs/2).
	if sg.Freqs[0] != -fs/2 {
		t.Errorf("freq axis starts at %g", sg.Freqs[0])
	}
}
