package dsp

import (
	"fmt"

	"repro/internal/par"
)

// Spectrogram is a short-time Fourier transform magnitude map, used to
// inspect transient behaviour (burst edges, settling, hopping) of captured
// or reconstructed waveforms.
type Spectrogram struct {
	// Times holds the centre time of each column in seconds.
	Times []float64
	// Freqs holds the (shifted, ascending) frequency axis in Hz.
	Freqs []float64
	// PowerDB[t][f] is the windowed power in dB.
	PowerDB [][]float64
}

// STFT computes a spectrogram of a complex sequence sampled at fs with the
// given segment length and hop. A Hann window is applied per segment.
// Columns are independent, so they transform through one cached Plan and
// fan out over the par worker pool; each column's numbers depend only on
// its own samples, so the spectrogram is identical at any worker count.
func STFT(x []complex128, fs float64, segLen, hop int) (*Spectrogram, error) {
	if segLen < 4 {
		return nil, fmt.Errorf("dsp: STFT segment %d too short", segLen)
	}
	if hop < 1 {
		return nil, fmt.Errorf("dsp: STFT hop %d must be positive", hop)
	}
	if len(x) < segLen {
		return nil, fmt.Errorf("dsp: STFT input %d shorter than segment %d", len(x), segLen)
	}
	win := Window(Hann, segLen, 0)
	nCols := (len(x)-segLen)/hop + 1
	sg := &Spectrogram{
		Times:   make([]float64, nCols),
		Freqs:   make([]float64, segLen),
		PowerDB: make([][]float64, nCols),
	}
	df := fs / float64(segLen)
	for i := range sg.Freqs {
		sg.Freqs[i] = (float64(i) - float64(segLen)/2) * df
	}
	plan := PlanFFT(segLen)
	nw := par.Workers()
	if nw > nCols {
		nw = nCols
	}
	free := complexScratch(segLen, nw)
	rows := make([]float64, nCols*segLen)
	// shift maps the natural bin order to the centred axis: row[i] is the
	// power of spectrum bin (shift+i) mod segLen, the in-place equivalent
	// of FFTShift.
	shift := (segLen + 1) / 2
	par.For(nCols, func(c int) {
		buf := <-free
		start := c * hop
		sg.Times[c] = (float64(start) + float64(segLen)/2) / fs
		for i := 0; i < segLen; i++ {
			buf[i] = x[start+i] * complex(win[i], 0)
		}
		plan.Execute(buf)
		row := rows[c*segLen : (c+1)*segLen]
		for i := range row {
			v := buf[(shift+i)%segLen]
			re, im := real(v), imag(v)
			row[i] = PowerDB(re*re + im*im)
		}
		sg.PowerDB[c] = row
		free <- buf
	})
	return sg, nil
}

// PeakTrack returns, for each column, the frequency of the strongest bin —
// a simple instantaneous-frequency track for chirps and hops.
func (s *Spectrogram) PeakTrack() []float64 {
	out := make([]float64, len(s.PowerDB))
	for c, row := range s.PowerDB {
		best := 0
		for i, v := range row {
			if v > row[best] {
				best = i
			}
		}
		out[c] = s.Freqs[best]
	}
	return out
}
