package dsp

import (
	"fmt"
	"math"
)

// Spectrum is a one- or two-sided power spectral density estimate.
type Spectrum struct {
	// Freqs holds the frequency of each bin in Hz (monotonically increasing
	// for shifted two-sided spectra).
	Freqs []float64
	// PSD holds the power spectral density in V^2/Hz (assuming the input is
	// in volts at the given sample rate).
	PSD []float64
	// BinWidth is the frequency resolution in Hz.
	BinWidth float64
}

// Len returns the number of bins.
func (s *Spectrum) Len() int { return len(s.Freqs) }

// PowerInBand integrates the PSD between f1 and f2 (Hz) and returns the band
// power in V^2. Bins whose centre lies in [f1, f2] contribute fully.
func (s *Spectrum) PowerInBand(f1, f2 float64) float64 {
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	p := 0.0
	for i, f := range s.Freqs {
		if f >= f1 && f <= f2 {
			p += s.PSD[i] * s.BinWidth
		}
	}
	return p
}

// TotalPower integrates the whole PSD.
func (s *Spectrum) TotalPower() float64 {
	p := 0.0
	for _, v := range s.PSD {
		p += v * s.BinWidth
	}
	return p
}

// PSDdB returns the PSD in dB (10log10), clamped at -400 dB, re 1 V^2/Hz.
func (s *Spectrum) PSDdB() []float64 {
	out := make([]float64, len(s.PSD))
	for i, v := range s.PSD {
		out[i] = PowerDB(v)
	}
	return out
}

// PeakBin returns the index and frequency of the largest PSD bin.
func (s *Spectrum) PeakBin() (idx int, freq float64) {
	best := math.Inf(-1)
	for i, v := range s.PSD {
		if v > best {
			best = v
			idx = i
		}
	}
	if len(s.Freqs) > 0 {
		freq = s.Freqs[idx]
	}
	return idx, freq
}

// WelchConfig configures Welch's averaged-periodogram PSD estimator.
type WelchConfig struct {
	// SegmentLen is the per-segment FFT length (power of two recommended).
	SegmentLen int
	// Overlap is the number of samples shared by consecutive segments
	// (typically SegmentLen/2).
	Overlap int
	// Win selects the taper; Beta is the Kaiser parameter when Win is
	// KaiserWin.
	Win  WindowType
	Beta float64
}

// DefaultWelch returns a sensible configuration: Hann window, 50 % overlap.
func DefaultWelch(segmentLen int) WelchConfig {
	return WelchConfig{SegmentLen: segmentLen, Overlap: segmentLen / 2, Win: Hann}
}

// WelchComplex estimates the two-sided PSD of a complex baseband sequence
// sampled at fs. centre shifts the frequency axis (pass the carrier to plot
// an RF-referred spectrum). The result is fftshifted so frequencies ascend.
func WelchComplex(x []complex128, fs, centre float64, cfg WelchConfig) (*Spectrum, error) {
	n := cfg.SegmentLen
	if n <= 0 {
		return nil, fmt.Errorf("dsp: Welch: SegmentLen %d <= 0", n)
	}
	if len(x) < n {
		return nil, fmt.Errorf("dsp: Welch: input length %d < segment %d", len(x), n)
	}
	if cfg.Overlap < 0 || cfg.Overlap >= n {
		return nil, fmt.Errorf("dsp: Welch: overlap %d outside [0, %d)", cfg.Overlap, n)
	}
	win := Window(cfg.Win, n, cfg.Beta)
	var winPow float64
	for _, w := range win {
		winPow += w * w
	}
	step := n - cfg.Overlap
	acc := make([]float64, n)
	segs := 0
	buf := make([]complex128, n)
	for start := 0; start+n <= len(x); start += step {
		for i := 0; i < n; i++ {
			buf[i] = x[start+i] * complex(win[i], 0)
		}
		spec := FFT(buf)
		for i, v := range spec {
			re, im := real(v), imag(v)
			acc[i] += re*re + im*im
		}
		segs++
	}
	if segs == 0 {
		return nil, fmt.Errorf("dsp: Welch: no complete segments")
	}
	// PSD normalisation: |X|^2 / (fs * sum(w^2)), averaged over segments.
	norm := 1 / (fs * winPow * float64(segs))
	psd := make([]float64, n)
	for i := range acc {
		psd[i] = acc[i] * norm
	}
	psd = FFTShiftFloat(psd)
	freqs := make([]float64, n)
	df := fs / float64(n)
	for i := range freqs {
		freqs[i] = centre + (float64(i)-float64(n)/2)*df
	}
	return &Spectrum{Freqs: freqs, PSD: psd, BinWidth: df}, nil
}

// WelchReal estimates the two-sided PSD of a real sequence sampled at fs.
func WelchReal(x []float64, fs float64, cfg WelchConfig) (*Spectrum, error) {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return WelchComplex(c, fs, 0, cfg)
}

// Periodogram is the single-segment special case of Welch.
func Periodogram(x []complex128, fs, centre float64, win WindowType, beta float64) (*Spectrum, error) {
	return WelchComplex(x, fs, centre, WelchConfig{SegmentLen: len(x), Win: win, Beta: beta})
}
