package dsp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// Spectrum is a one- or two-sided power spectral density estimate.
type Spectrum struct {
	// Freqs holds the frequency of each bin in Hz (monotonically increasing
	// for shifted two-sided spectra).
	Freqs []float64
	// PSD holds the power spectral density in V^2/Hz (assuming the input is
	// in volts at the given sample rate).
	PSD []float64
	// BinWidth is the frequency resolution in Hz.
	BinWidth float64
}

// Len returns the number of bins.
func (s *Spectrum) Len() int { return len(s.Freqs) }

// binRange returns the half-open index range [lo, hi) of bins whose centre
// lies in [f1, f2], located by binary search over the monotonic Freqs axis.
func (s *Spectrum) binRange(f1, f2 float64) (lo, hi int) {
	lo = sort.SearchFloat64s(s.Freqs, f1)
	hi = sort.Search(len(s.Freqs), func(i int) bool { return s.Freqs[i] > f2 })
	return lo, hi
}

// PowerInBand integrates the PSD between f1 and f2 (Hz) and returns the band
// power in V^2. Bins whose centre lies in [f1, f2] contribute fully. The
// bin range comes from a binary search over the monotonic frequency axis,
// so narrow-band queries on long spectra cost O(log n + band), not O(n).
func (s *Spectrum) PowerInBand(f1, f2 float64) float64 {
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	lo, hi := s.binRange(f1, f2)
	p := 0.0
	for i := lo; i < hi; i++ {
		p += s.PSD[i] * s.BinWidth
	}
	return p
}

// TotalPower integrates the whole PSD.
func (s *Spectrum) TotalPower() float64 {
	p := 0.0
	for _, v := range s.PSD {
		p += v * s.BinWidth
	}
	return p
}

// PSDdB returns the PSD in dB (10log10), clamped at -400 dB, re 1 V^2/Hz.
func (s *Spectrum) PSDdB() []float64 {
	out := make([]float64, len(s.PSD))
	for i, v := range s.PSD {
		out[i] = PowerDB(v)
	}
	return out
}

// PeakBin returns the index and frequency of the largest PSD bin.
func (s *Spectrum) PeakBin() (idx int, freq float64) {
	best := math.Inf(-1)
	for i, v := range s.PSD {
		if v > best {
			best = v
			idx = i
		}
	}
	if len(s.Freqs) > 0 {
		freq = s.Freqs[idx]
	}
	return idx, freq
}

// WelchConfig configures Welch's averaged-periodogram PSD estimator.
type WelchConfig struct {
	// SegmentLen is the per-segment FFT length (power of two recommended).
	SegmentLen int
	// Overlap is the number of samples shared by consecutive segments
	// (typically SegmentLen/2).
	Overlap int
	// Win selects the taper; Beta is the Kaiser parameter when Win is
	// KaiserWin.
	Win  WindowType
	Beta float64
}

// DefaultWelch returns a sensible configuration: Hann window, 50 % overlap.
func DefaultWelch(segmentLen int) WelchConfig {
	return WelchConfig{SegmentLen: segmentLen, Overlap: segmentLen / 2, Win: Hann}
}

// welchParams validates a Welch configuration against the input length and
// returns the window, its power, the hop and the segment count.
func welchParams(inputLen int, cfg WelchConfig) (win []float64, winPow float64, step, segs int, err error) {
	n := cfg.SegmentLen
	if n <= 0 {
		return nil, 0, 0, 0, fmt.Errorf("dsp: Welch: SegmentLen %d <= 0", n)
	}
	if inputLen < n {
		return nil, 0, 0, 0, fmt.Errorf("dsp: Welch: input length %d < segment %d", inputLen, n)
	}
	if cfg.Overlap < 0 || cfg.Overlap >= n {
		return nil, 0, 0, 0, fmt.Errorf("dsp: Welch: overlap %d outside [0, %d)", cfg.Overlap, n)
	}
	win = Window(cfg.Win, n, cfg.Beta)
	for _, w := range win {
		winPow += w * w
	}
	step = n - cfg.Overlap
	segs = (inputLen-n)/step + 1
	if segs == 0 {
		return nil, 0, 0, 0, fmt.Errorf("dsp: Welch: no complete segments")
	}
	return win, winPow, step, segs, nil
}

// welchAverage fans the segment periodograms out over the par pool and
// folds them into the averaged two-sided PSD.
//
// Determinism contract: every segment writes its |X|^2 into its own row of
// a per-segment partial matrix, and the rows are summed serially in
// segment-index order afterwards. The float reduction tree is therefore a
// fixed left fold independent of scheduling, so the averaged PSD is
// bit-identical at any worker count — the same invariance the cost path
// established in PR 1 — and also bit-identical to the historical serial
// loop (which accumulated segments in the same order).
//
// periodogram must fill pow (length n) with the segment's |X[k]|^2; it is
// called concurrently for distinct segments.
func welchAverage(n, segs int, fs, winPow float64, periodogram func(seg int, pow []float64)) []float64 {
	backing := make([]float64, segs*n)
	par.For(segs, func(s int) {
		periodogram(s, backing[s*n:(s+1)*n])
	})
	acc := make([]float64, n)
	for s := 0; s < segs; s++ {
		row := backing[s*n : (s+1)*n]
		for i, v := range row {
			acc[i] += v
		}
	}
	// PSD normalisation: |X|^2 / (fs * sum(w^2)), averaged over segments.
	norm := 1 / (fs * winPow * float64(segs))
	for i := range acc {
		acc[i] *= norm
	}
	return acc
}

// complexScratch is a fixed-size free list of complex work buffers shared
// by the concurrent segment workers: cap buffers are preallocated in one
// backing array, so a Welch call performs a constant number of allocations
// regardless of segment count.
func complexScratch(n, count int) chan []complex128 {
	free := make(chan []complex128, count)
	backing := make([]complex128, n*count)
	for i := 0; i < count; i++ {
		free <- backing[i*n : (i+1)*n]
	}
	return free
}

// spectrumFromPSD shifts the natural-order two-sided PSD and builds the
// ascending frequency axis around centre.
func spectrumFromPSD(psd []float64, fs, centre float64) *Spectrum {
	n := len(psd)
	psd = FFTShiftFloat(psd)
	freqs := make([]float64, n)
	df := fs / float64(n)
	for i := range freqs {
		freqs[i] = centre + (float64(i)-float64(n)/2)*df
	}
	return &Spectrum{Freqs: freqs, PSD: psd, BinWidth: df}
}

// WelchComplex estimates the two-sided PSD of a complex baseband sequence
// sampled at fs. centre shifts the frequency axis (pass the carrier to plot
// an RF-referred spectrum). The result is fftshifted so frequencies ascend.
//
// Segments transform through a cached Plan and fan out over the par worker
// pool; the estimate is bit-identical at any worker count (see
// welchAverage) and the call allocates O(1) buffers beyond the returned
// Spectrum.
func WelchComplex(x []complex128, fs, centre float64, cfg WelchConfig) (*Spectrum, error) {
	win, winPow, step, segs, err := welchParams(len(x), cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.SegmentLen
	plan := PlanFFT(n)
	nw := par.Workers()
	if nw > segs {
		nw = segs
	}
	free := complexScratch(n, nw)
	psd := welchAverage(n, segs, fs, winPow, func(s int, pow []float64) {
		buf := <-free
		start := s * step
		for i := 0; i < n; i++ {
			buf[i] = x[start+i] * complex(win[i], 0)
		}
		plan.Execute(buf)
		for i, v := range buf {
			re, im := real(v), imag(v)
			pow[i] = re*re + im*im
		}
		free <- buf
	})
	return spectrumFromPSD(psd, fs, centre), nil
}

// WelchReal estimates the two-sided PSD of a real sequence sampled at fs.
// Even segment lengths route through the half-size real-FFT plan
// (RealPlan) — the windowed segment never widens to []complex128 — and the
// conjugate-symmetric upper half of each periodogram is mirrored from the
// lower. Odd segment lengths fall back to the complex path.
func WelchReal(x []float64, fs float64, cfg WelchConfig) (*Spectrum, error) {
	n := cfg.SegmentLen
	if n < 2 || n%2 != 0 {
		c := make([]complex128, len(x))
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		return WelchComplex(c, fs, 0, cfg)
	}
	win, winPow, step, segs, err := welchParams(len(x), cfg)
	if err != nil {
		return nil, err
	}
	plan := PlanRealFFT(n)
	h := n / 2
	nw := par.Workers()
	if nw > segs {
		nw = segs
	}
	// Each worker slot needs a real windowed segment and a half-spectrum
	// output; both come from fixed free lists so the allocation count stays
	// constant.
	freeRe := make(chan []float64, nw)
	reBacking := make([]float64, n*nw)
	for i := 0; i < nw; i++ {
		freeRe <- reBacking[i*n : (i+1)*n]
	}
	freeHalf := complexScratch(h+1, nw)
	psd := welchAverage(n, segs, fs, winPow, func(s int, pow []float64) {
		buf := <-freeRe
		half := <-freeHalf
		start := s * step
		for i := 0; i < n; i++ {
			buf[i] = x[start+i] * win[i]
		}
		plan.HalfSpectrum(half, buf)
		for k := 0; k <= h; k++ {
			re, im := real(half[k]), imag(half[k])
			pow[k] = re*re + im*im
		}
		for k := 1; k < h; k++ {
			pow[n-k] = pow[k]
		}
		freeRe <- buf
		freeHalf <- half
	})
	return spectrumFromPSD(psd, fs, 0), nil
}

// Periodogram is the single-segment special case of Welch.
func Periodogram(x []complex128, fs, centre float64, win WindowType, beta float64) (*Spectrum, error) {
	return WelchComplex(x, fs, centre, WelchConfig{SegmentLen: len(x), Win: win, Beta: beta})
}
