package dsp

import "math"

// Goertzel evaluates the DFT of x at a single normalised frequency nu
// (cycles/sample) with the Goertzel second-order recurrence. It matches
// DTFT(x, nu) but runs with one multiply per sample.
func Goertzel(x []float64, nu float64) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * nu
	cw := math.Cos(w)
	coeff := 2 * cw
	var s1, s2 float64
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	sw := math.Sin(w)
	// y[N-1] = s1 - exp(-iw) s2 = exp(iw(N-1)) X(nu).
	re := s1 - s2*cw
	im := s2 * sw
	// Rotate back so the result matches DTFT's index-0 phase reference.
	ys, yc := math.Sincos(w * float64(n-1))
	rot := complex(yc, -ys)
	return complex(re, im) * rot
}

// TonePhasor extracts the complex amplitude of a known tone at normalised
// frequency nu from x: the returned phasor p satisfies
// x[n] ~ Re{ p * exp(i 2 pi nu n) } for a real tone. A window may be applied
// to reduce leakage; pass nil for rectangular. win must be nil or have the
// same length as x.
func TonePhasor(x []float64, nu float64, win []float64) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	var acc complex128
	var gain float64
	for i, v := range x {
		w := 1.0
		if win != nil {
			w = win[i]
		}
		phi := -2 * math.Pi * nu * float64(i)
		s, c := math.Sincos(phi)
		acc += complex(v*w*c, v*w*s)
		gain += w
	}
	// For a real tone, the analytic component carries half the amplitude.
	return acc * complex(2/gain, 0)
}
