package dsp

import (
	"fmt"
	"math"
	"sort"
)

// PAPRResult summarises a peak-to-average power analysis of a complex
// envelope — the quantity that decides how far a PA must be backed off.
type PAPRResult struct {
	// AvgPower is E[|x|^2]; PeakPower the maximum instantaneous power.
	AvgPower, PeakPower float64
	// PAPRdB is the peak-to-average ratio in dB.
	PAPRdB float64
	// CCDFdB[i] is the power level (dB above average) exceeded with
	// probability CCDFProb[i].
	CCDFdB   []float64
	CCDFProb []float64
}

// PAPR analyses a complex envelope record. probs selects the CCDF points
// (nil = {1e-1, 1e-2, 1e-3}).
func PAPR(x []complex128, probs []float64) (*PAPRResult, error) {
	if len(x) < 16 {
		return nil, fmt.Errorf("dsp: PAPR needs >= 16 samples, got %d", len(x))
	}
	if probs == nil {
		probs = []float64{1e-1, 1e-2, 1e-3}
	}
	pw := make([]float64, len(x))
	var avg, peak float64
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		pw[i] = p
		avg += p
		if p > peak {
			peak = p
		}
	}
	avg /= float64(len(x))
	if avg <= 0 {
		return nil, fmt.Errorf("dsp: PAPR of a zero record")
	}
	sort.Float64s(pw)
	res := &PAPRResult{
		AvgPower:  avg,
		PeakPower: peak,
		PAPRdB:    10 * math.Log10(peak/avg),
	}
	for _, p := range probs {
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("dsp: CCDF probability %g outside (0, 1)", p)
		}
		idx := int(float64(len(pw)) * (1 - p))
		if idx >= len(pw) {
			idx = len(pw) - 1
		}
		res.CCDFProb = append(res.CCDFProb, p)
		res.CCDFdB = append(res.CCDFdB, 10*math.Log10(pw[idx]/avg))
	}
	return res, nil
}
