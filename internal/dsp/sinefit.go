package dsp

import (
	"fmt"
	"math"
)

// SineFit3 performs the IEEE-1057 three-parameter sine fit: given samples
// x[i] taken at times t[i] of a sinusoid with KNOWN frequency f (Hz), it
// finds amplitude A, phase phi and offset C minimising
// sum (x[i] - A cos(2 pi f t[i] + phi) - C)^2.
func SineFit3(t, x []float64, f float64) (amp, phase, offset float64, err error) {
	if len(t) != len(x) {
		return 0, 0, 0, fmt.Errorf("dsp: SineFit3: length mismatch %d vs %d", len(t), len(x))
	}
	if len(t) < 3 {
		return 0, 0, 0, fmt.Errorf("dsp: SineFit3: need >= 3 samples, got %d", len(t))
	}
	// Model x = a cos(w t) + b sin(w t) + c ; normal equations (3x3).
	w := 2 * math.Pi * f
	var scc, scs, sc, sss, ss, n float64
	var xc, xs, xo float64
	for i := range t {
		c := math.Cos(w * t[i])
		s := math.Sin(w * t[i])
		scc += c * c
		scs += c * s
		sc += c
		sss += s * s
		ss += s
		n++
		xc += x[i] * c
		xs += x[i] * s
		xo += x[i]
	}
	a := [][]float64{
		{scc, scs, sc},
		{scs, sss, ss},
		{sc, ss, n},
	}
	b := []float64{xc, xs, xo}
	sol, ok := SolveLinear(a, b)
	if !ok {
		return 0, 0, 0, fmt.Errorf("dsp: SineFit3: singular normal equations (f=%g)", f)
	}
	// a cos + b sin = A cos(wt + phi) with A = hypot(a,b), phi = atan2(-b, a).
	amp = math.Hypot(sol[0], sol[1])
	phase = math.Atan2(-sol[1], sol[0])
	offset = sol[2]
	return amp, phase, offset, nil
}

// SineFit4 refines frequency as well (four-parameter fit) by Newton
// iterations around an initial frequency guess f0. Returns the refined
// frequency along with amplitude, phase and offset.
func SineFit4(t, x []float64, f0 float64, iters int) (f, amp, phase, offset float64, err error) {
	f = f0
	if iters < 1 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		w := 2 * math.Pi * f
		// Linearised model: x ~ a cos(wt) + b sin(wt) + c + dw * t *
		// (-a sin(wt) + b cos(wt)); solve 4x4 for (a, b, c, dw').
		amp, phase, offset, err = SineFit3(t, x, f)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		a0 := amp * math.Cos(phase)
		b0 := -amp * math.Sin(phase)
		var m [4][4]float64
		var rhs [4]float64
		for i := range t {
			c := math.Cos(w * t[i])
			s := math.Sin(w * t[i])
			g := t[i] * (-a0*s + b0*c) // d/dw of the model
			row := [4]float64{c, s, 1, g}
			res := x[i]
			for r := 0; r < 4; r++ {
				for q := 0; q < 4; q++ {
					m[r][q] += row[r] * row[q]
				}
				rhs[r] += res * row[r]
			}
		}
		mm := make([][]float64, 4)
		bb := make([]float64, 4)
		for r := 0; r < 4; r++ {
			mm[r] = append([]float64(nil), m[r][:]...)
			bb[r] = rhs[r]
		}
		sol, ok := SolveLinear(mm, bb)
		if !ok {
			return 0, 0, 0, 0, fmt.Errorf("dsp: SineFit4: singular system at iteration %d", it)
		}
		dw := sol[3]
		f += dw / (2 * math.Pi)
		amp = math.Hypot(sol[0], sol[1])
		phase = math.Atan2(-sol[1], sol[0])
		offset = sol[2]
	}
	return f, amp, phase, offset, nil
}
