package dsp

import "math"

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// RMS returns the root-mean-square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MSE returns the mean squared error between a and b; the slices must have
// the same length.
func MSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dsp: MSE: length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// RelRMSError returns RMS(a-b)/RMS(b): the relative error of a with respect
// to reference b. It returns +Inf when the reference has zero power but the
// error does not.
func RelRMSError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dsp: RelRMSError: length mismatch")
	}
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// MaxAbsFloat returns max_i |x[i]| (0 for empty input).
func MaxAbsFloat(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Linspace returns n evenly spaced points from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = a
		return out
	}
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// SolveLinear solves the n x n dense system A x = b in place using Gaussian
// elimination with partial pivoting. A is row-major; both A and b are
// clobbered. It returns false when the matrix is numerically singular.
func SolveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				piv = r
			}
		}
		if best < 1e-300 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// SolveLinearComplex solves the n x n dense complex system A x = b in place
// using Gaussian elimination with partial pivoting (by magnitude). A and b
// are clobbered. Returns false when the matrix is numerically singular.
func SolveLinearComplex(a [][]complex128, b []complex128) ([]complex128, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := col
		best := cmplxAbs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := cmplxAbs(a[r][col]); v > best {
				best = v
				piv = r
			}
		}
		if best < 1e-300 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := complex(1, 0) / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]complex128, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }
