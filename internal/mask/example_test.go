package mask_test

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/mask"
)

// Check a synthetic transmit spectrum against the built-in wideband mask.
func ExampleCheck() {
	m := mask.WidebandQPSK15M()
	fc := 1e9
	// Synthetic PSD: flat 15 MHz channel with -45 dBc skirts.
	binW := 25e3
	n := int(120e6 / binW)
	freqs := make([]float64, n)
	psd := make([]float64, n)
	for i := range freqs {
		f := fc - 60e6 + float64(i)*binW
		freqs[i] = f
		if math.Abs(f-fc) <= 7.5e6 {
			psd[i] = 1
		} else {
			psd[i] = dsp.FromPowerDB(-45)
		}
	}
	spec := &dsp.Spectrum{Freqs: freqs, PSD: psd, BinWidth: binW}
	rep, err := mask.Check(m, spec, fc)
	if err != nil {
		panic(err)
	}
	fmt.Println("pass:", rep.Pass)
	fmt.Println("has positive margin:", rep.WorstMarginDB > 0)
	// Output:
	// pass: true
	// has positive margin: true
}

// Occupied bandwidth of the same synthetic channel.
func ExampleOccupiedBandwidth() {
	binW := 25e3
	n := int(60e6 / binW)
	freqs := make([]float64, n)
	psd := make([]float64, n)
	for i := range freqs {
		f := -30e6 + float64(i)*binW
		freqs[i] = f
		if math.Abs(f) <= 5e6 {
			psd[i] = 1
		} else {
			psd[i] = 1e-9
		}
	}
	spec := &dsp.Spectrum{Freqs: freqs, PSD: psd, BinWidth: binW}
	obw, _, err := mask.OccupiedBandwidth(spec, 0.99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("99%% OBW ~ 10 MHz: %v\n", obw > 9.5e6 && obw < 10.2e6)
	// Output: 99% OBW ~ 10 MHz: true
}
