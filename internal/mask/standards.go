package mask

// Built-in masks. These are representative multistandard-radio emission
// masks in the spirit of the waveforms a tactical SDR must support; they are
// not verbatim copies of any single regulation (the paper likewise argues
// about mask compliance generically).

// WidebandQPSK15M suits the paper's test signal: 10 MHz QPSK with
// alpha = 0.5 root-raised-cosine shaping occupies ~15 MHz.
func WidebandQPSK15M() *Mask {
	return &Mask{
		Name:      "wideband-qpsk-15M",
		ChannelBW: 15e6,
		RefBW:     100e3,
		Points: []Point{
			{OffsetHz: 7.5e6, LimitDBc: -26},
			{OffsetHz: 10e6, LimitDBc: -34},
			{OffsetHz: 15e6, LimitDBc: -42},
			{OffsetHz: 22.5e6, LimitDBc: -46},
			{OffsetHz: 35e6, LimitDBc: -48},
		},
	}
}

// NarrowbandVHF builds a narrowband (25 kHz channel) mask typical of
// legacy-interop waveforms.
func NarrowbandVHF() *Mask {
	return &Mask{
		Name:      "narrowband-vhf-25k",
		ChannelBW: 25e3,
		RefBW:     1e3,
		Points: []Point{
			{OffsetHz: 12.5e3, LimitDBc: -25},
			{OffsetHz: 25e3, LimitDBc: -45},
			{OffsetHz: 62.5e3, LimitDBc: -60},
		},
	}
}

// WidebandOFDMLike is a 5 MHz channel mask with steep shoulders, in the
// style of modern wideband networking waveforms.
func WidebandOFDMLike() *Mask {
	return &Mask{
		Name:      "wideband-ofdm-5M",
		ChannelBW: 5e6,
		RefBW:     100e3,
		Points: []Point{
			{OffsetHz: 2.5e6, LimitDBc: -20},
			{OffsetHz: 3.5e6, LimitDBc: -28},
			{OffsetHz: 6e6, LimitDBc: -40},
			{OffsetHz: 10e6, LimitDBc: -50},
		},
	}
}

// WidebandMulticarrier10M suits a ~10 MHz multicarrier (OFDM-style)
// waveform, whose sinc-like subcarrier sidelobes decay far more slowly than
// a shaped single-carrier spectrum: the shoulders are correspondingly
// relaxed. Masks are waveform-specific — checking OFDM against a
// single-carrier mask produces false alarms by design.
func WidebandMulticarrier10M() *Mask {
	return &Mask{
		Name:      "wideband-multicarrier-10M",
		ChannelBW: 12e6,
		RefBW:     100e3,
		Points: []Point{
			{OffsetHz: 6e6, LimitDBc: -42},
			{OffsetHz: 8e6, LimitDBc: -52},
			{OffsetHz: 20e6, LimitDBc: -56},
			{OffsetHz: 35e6, LimitDBc: -56},
		},
	}
}

// ByName looks up a built-in mask.
func ByName(name string) (*Mask, bool) {
	switch name {
	case "wideband-qpsk-15M":
		return WidebandQPSK15M(), true
	case "narrowband-vhf-25k":
		return NarrowbandVHF(), true
	case "wideband-ofdm-5M":
		return WidebandOFDMLike(), true
	case "wideband-multicarrier-10M":
		return WidebandMulticarrier10M(), true
	default:
		return nil, false
	}
}

// Names lists the built-in masks.
func Names() []string {
	return []string{"wideband-qpsk-15M", "narrowband-vhf-25k", "wideband-ofdm-5M",
		"wideband-multicarrier-10M"}
}
