package mask

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dsp"
)

// flatChannelSpectrum builds a synthetic PSD: flat channel of the given
// width around fc, with skirts decaying at slopeDBperHz outside.
func flatChannelSpectrum(fc, chanBW, span, binW float64, skirtDBc func(off float64) float64) *dsp.Spectrum {
	n := int(span / binW)
	fr := make([]float64, n)
	ps := make([]float64, n)
	for i := 0; i < n; i++ {
		f := fc - span/2 + float64(i)*binW
		fr[i] = f
		off := math.Abs(f - fc)
		if off <= chanBW/2 {
			ps[i] = 1
		} else {
			ps[i] = dsp.FromPowerDB(skirtDBc(off - chanBW/2))
		}
	}
	return &dsp.Spectrum{Freqs: fr, PSD: ps, BinWidth: binW}
}

func TestMaskValidate(t *testing.T) {
	m := WidebandQPSK15M()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Mask{Name: "x", ChannelBW: 1e6, RefBW: 1e3,
		Points: []Point{{OffsetHz: 1e5, LimitDBc: -30}}}
	if err := bad.Validate(); err == nil {
		t.Error("breakpoint inside channel must fail")
	}
	bad2 := &Mask{Name: "x", ChannelBW: 0, RefBW: 1e3, Points: []Point{{1e6, -30}}}
	if err := bad2.Validate(); err == nil {
		t.Error("zero channel bw must fail")
	}
	bad3 := &Mask{Name: "x", ChannelBW: 1e6, RefBW: 1e3}
	if err := bad3.Validate(); err == nil {
		t.Error("no points must fail")
	}
	bad4 := &Mask{Name: "x", ChannelBW: 1e6, RefBW: 1e3,
		Points: []Point{{2e6, -30}, {1e6, -40}}}
	if err := bad4.Validate(); err == nil {
		t.Error("unsorted points must fail")
	}
}

func TestLimitAtInterpolation(t *testing.T) {
	m := &Mask{Name: "t", ChannelBW: 1e6, RefBW: 1e4,
		Points: []Point{{1e6, -20}, {2e6, -40}, {4e6, -40}}}
	if v := m.LimitAt(0.5e6); v != -20 {
		t.Errorf("before first point: %g", v)
	}
	if v := m.LimitAt(1.5e6); math.Abs(v-(-30)) > 1e-12 {
		t.Errorf("midpoint: %g, want -30", v)
	}
	if v := m.LimitAt(3e6); v != -40 {
		t.Errorf("flat segment: %g", v)
	}
	if v := m.LimitAt(9e6); v != -40 {
		t.Errorf("beyond last point: %g", v)
	}
	if v := m.LimitAt(-1.5e6); math.Abs(v-(-30)) > 1e-12 {
		t.Error("negative offsets must use |offset|")
	}
	if m.MaxOffset() != 4e6 {
		t.Error("MaxOffset")
	}
}

func TestCheckPassesCleanSpectrum(t *testing.T) {
	m := WidebandQPSK15M()
	fc := 1e9
	// Skirts falling 4 dB/MHz: well below the mask everywhere.
	spec := flatChannelSpectrum(fc, m.ChannelBW, 120e6, 25e3, func(off float64) float64 {
		return -30 - off/1e6*4
	})
	rep, err := Check(m, spec, fc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("clean spectrum failed: worst %g dB at %g", rep.WorstMarginDB, rep.WorstOffsetHz)
	}
	if rep.WorstMarginDB <= 0 || len(rep.Violations) != 0 {
		t.Error("margins inconsistent with pass")
	}
	if len(rep.Offsets) == 0 || len(rep.Offsets) != len(rep.LevelsDBc) ||
		len(rep.Offsets) != len(rep.LimitsDBc) {
		t.Error("trace arrays")
	}
}

func TestCheckFailsRegrownSpectrum(t *testing.T) {
	m := WidebandQPSK15M()
	fc := 1e9
	// Shoulders at -18 dBc out to 12 MHz: violates the -23 dBc first
	// segment.
	spec := flatChannelSpectrum(fc, m.ChannelBW, 120e6, 25e3, func(off float64) float64 {
		if off < 12e6 {
			return -18
		}
		return -60
	})
	rep, err := Check(m, spec, fc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("regrown spectrum passed")
	}
	if len(rep.Violations) == 0 || rep.WorstMarginDB >= 0 {
		t.Error("violations not reported")
	}
	v := rep.Violations[0]
	if v.MarginDB() >= 0 {
		t.Error("violation margin sign")
	}
}

func TestCheckErrorPaths(t *testing.T) {
	m := WidebandQPSK15M()
	if _, err := Check(m, nil, 1e9); err == nil {
		t.Error("nil spectrum must fail")
	}
	tiny := &dsp.Spectrum{Freqs: []float64{1e9}, PSD: []float64{1}, BinWidth: 1}
	if _, err := Check(m, tiny, 2e9); err == nil {
		t.Error("non-covering spectrum must fail")
	}
	zero := flatChannelSpectrum(1e9, m.ChannelBW, 120e6, 25e3, func(float64) float64 { return -60 })
	for i := range zero.PSD {
		zero.PSD[i] = 0
	}
	if _, err := Check(m, zero, 1e9); err == nil {
		t.Error("zero channel power must fail")
	}
	badMask := &Mask{Name: "bad"}
	if _, err := Check(badMask, zero, 1e9); err == nil {
		t.Error("invalid mask must fail")
	}
}

func TestACPR(t *testing.T) {
	fc := 1e9
	spec := flatChannelSpectrum(fc, 15e6, 120e6, 25e3, func(off float64) float64 {
		return -30
	})
	v, err := ACPR(spec, fc, 15e6, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent channel is entirely skirt at -30 dBc/bin; ratio ~ -30 dB.
	if math.Abs(v-(-30)) > 1.5 {
		t.Errorf("ACPR %g, want ~-30", v)
	}
	if _, err := ACPR(nil, fc, 15e6, 20e6); err == nil {
		t.Error("nil spectrum must fail")
	}
	if _, err := ACPR(spec, fc, 0, 20e6); err == nil {
		t.Error("zero bw must fail")
	}
}

func TestBuiltinMasksValidAndLookup(t *testing.T) {
	for _, name := range Names() {
		m, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%s)", name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !strings.Contains(m.Name, "-") {
			t.Errorf("%s: suspicious name", m.Name)
		}
		// Masks must be monotonically tightening outward.
		for i := 1; i < len(m.Points); i++ {
			if m.Points[i].LimitDBc > m.Points[i-1].LimitDBc {
				t.Errorf("%s: mask loosens at %g Hz", name, m.Points[i].OffsetHz)
			}
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown mask must not resolve")
	}
}
