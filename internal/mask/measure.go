package mask

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
)

// OccupiedBandwidth returns the width of the smallest frequency interval
// centred on the power centroid that contains the given fraction (e.g.
// 0.99) of the total power — the standard 99 % OBW measurement.
func OccupiedBandwidth(spec *dsp.Spectrum, fraction float64) (obw, centre float64, err error) {
	if spec == nil || spec.Len() < 3 {
		return 0, 0, fmt.Errorf("mask: OBW: empty spectrum")
	}
	if fraction <= 0 || fraction >= 1 {
		return 0, 0, fmt.Errorf("mask: OBW: fraction %g outside (0, 1)", fraction)
	}
	total := 0.0
	var centroid float64
	for i, p := range spec.PSD {
		total += p
		centroid += p * spec.Freqs[i]
	}
	if total <= 0 {
		return 0, 0, fmt.Errorf("mask: OBW: zero power")
	}
	centroid /= total
	// Standard tail method: discard (1-fraction)/2 of the power from each
	// edge of the spectrum.
	tail := total * (1 - fraction) / 2
	acc := 0.0
	lo := spec.Freqs[0]
	for i := 0; i < spec.Len(); i++ {
		acc += spec.PSD[i]
		if acc >= tail {
			lo = spec.Freqs[i]
			break
		}
	}
	acc = 0.0
	hi := spec.Freqs[spec.Len()-1]
	for i := spec.Len() - 1; i >= 0; i-- {
		acc += spec.PSD[i]
		if acc >= tail {
			hi = spec.Freqs[i]
			break
		}
	}
	if hi < lo {
		hi = lo
	}
	return hi - lo, centroid, nil
}

// SpectralFlatness returns the ratio of geometric to arithmetic mean of the
// PSD over [f1, f2] (1 = perfectly flat, smaller = peaky). OFDM occupied
// bands score near 1; a tone scores near 0.
func SpectralFlatness(spec *dsp.Spectrum, f1, f2 float64) (float64, error) {
	if spec == nil || spec.Len() == 0 {
		return 0, fmt.Errorf("mask: flatness: empty spectrum")
	}
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	var logSum, sum float64
	n := 0
	for i, f := range spec.Freqs {
		if f < f1 || f > f2 {
			continue
		}
		p := spec.PSD[i]
		if p <= 0 {
			p = 1e-300
		}
		logSum += math.Log(p)
		sum += p
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("mask: flatness: no bins in [%g, %g]", f1, f2)
	}
	geo := math.Exp(logSum / float64(n))
	ari := sum / float64(n)
	if ari == 0 {
		return 0, nil
	}
	return geo / ari, nil
}

// PercentileLevel returns the given percentile (0..100) of the PSD values
// in [f1, f2], useful for robust noise-floor estimation under spurs.
func PercentileLevel(spec *dsp.Spectrum, f1, f2, percentile float64) (float64, error) {
	if spec == nil || spec.Len() == 0 {
		return 0, fmt.Errorf("mask: percentile: empty spectrum")
	}
	if percentile < 0 || percentile > 100 {
		return 0, fmt.Errorf("mask: percentile %g outside [0, 100]", percentile)
	}
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	var vals []float64
	for i, f := range spec.Freqs {
		if f >= f1 && f <= f2 {
			vals = append(vals, spec.PSD[i])
		}
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("mask: percentile: no bins in [%g, %g]", f1, f2)
	}
	sort.Float64s(vals)
	idx := int(percentile / 100 * float64(len(vals)-1))
	return vals[idx], nil
}
