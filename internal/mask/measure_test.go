package mask

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

// rectSpectrum builds a flat band of the given width on a tiny floor.
func rectSpectrum(fc, bw, span, binW float64) *dsp.Spectrum {
	n := int(span / binW)
	fr := make([]float64, n)
	ps := make([]float64, n)
	for i := 0; i < n; i++ {
		f := fc - span/2 + float64(i)*binW
		fr[i] = f
		if math.Abs(f-fc) <= bw/2 {
			ps[i] = 1
		} else {
			ps[i] = 1e-9
		}
	}
	return &dsp.Spectrum{Freqs: fr, PSD: ps, BinWidth: binW}
}

func TestOccupiedBandwidthRectangular(t *testing.T) {
	spec := rectSpectrum(1e9, 10e6, 80e6, 50e3)
	obw, centre, err := OccupiedBandwidth(spec, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// 99 % of a flat 10 MHz band: ~9.9 MHz.
	if obw < 9.5e6 || obw > 10.2e6 {
		t.Errorf("OBW %g", obw)
	}
	if math.Abs(centre-1e9) > 100e3 {
		t.Errorf("centroid %g", centre)
	}
}

func TestOccupiedBandwidthValidation(t *testing.T) {
	if _, _, err := OccupiedBandwidth(nil, 0.99); err == nil {
		t.Error("nil spectrum must fail")
	}
	spec := rectSpectrum(0, 1e6, 10e6, 50e3)
	if _, _, err := OccupiedBandwidth(spec, 0); err == nil {
		t.Error("fraction 0 must fail")
	}
	if _, _, err := OccupiedBandwidth(spec, 1); err == nil {
		t.Error("fraction 1 must fail")
	}
	zero := rectSpectrum(0, 1e6, 10e6, 50e3)
	for i := range zero.PSD {
		zero.PSD[i] = 0
	}
	if _, _, err := OccupiedBandwidth(zero, 0.99); err == nil {
		t.Error("zero power must fail")
	}
}

func TestSpectralFlatness(t *testing.T) {
	flat := rectSpectrum(0, 10e6, 10e6, 50e3) // whole span in-band
	v, err := SpectralFlatness(flat, -4e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.99 {
		t.Errorf("flat band flatness %g", v)
	}
	// A peaky spectrum scores low.
	peaky := rectSpectrum(0, 10e6, 10e6, 50e3)
	for i := range peaky.PSD {
		peaky.PSD[i] = 1e-9
	}
	peaky.PSD[len(peaky.PSD)/2] = 1
	v2, err := SpectralFlatness(peaky, -4e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	if v2 > 0.1 {
		t.Errorf("peaky flatness %g", v2)
	}
	if _, err := SpectralFlatness(flat, 20e6, 30e6); err == nil {
		t.Error("empty range must fail")
	}
	if _, err := SpectralFlatness(nil, 0, 1); err == nil {
		t.Error("nil spectrum must fail")
	}
	// Swapped bounds accepted.
	if _, err := SpectralFlatness(flat, 4e6, -4e6); err != nil {
		t.Error("swapped bounds should work")
	}
}

func TestPercentileLevel(t *testing.T) {
	spec := rectSpectrum(0, 4e6, 10e6, 50e3)
	// Median over the whole span: floor (most bins are out of band).
	med, err := PercentileLevel(spec, -5e6, 5e6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if med > 1e-6 {
		t.Errorf("median %g should be the floor", med)
	}
	hi, _ := PercentileLevel(spec, -5e6, 5e6, 100)
	if hi != 1 {
		t.Errorf("p100 %g", hi)
	}
	if _, err := PercentileLevel(spec, -5e6, 5e6, 150); err == nil {
		t.Error("percentile > 100 must fail")
	}
	if _, err := PercentileLevel(spec, 20e6, 30e6, 50); err == nil {
		t.Error("empty range must fail")
	}
	if _, err := PercentileLevel(nil, 0, 1, 50); err == nil {
		t.Error("nil spectrum must fail")
	}
}
