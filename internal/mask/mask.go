// Package mask implements transmit spectral-mask definitions and compliance
// checking — the paper's motivating application: "characterization of the
// transmitter chain with respect to compliance to the spectral mask" is
// called "the most vexing post-manufacture test issue for tactical radio
// units" (Section I). A mask limits the emitted power spectral density,
// integrated in a reference bandwidth, as a function of offset from the
// carrier, relative to the total in-channel power.
package mask

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
)

// Point is one mask breakpoint: at |f - fc| = OffsetHz the allowed level is
// LimitDBc (dB relative to the channel power, measured in RefBW).
type Point struct {
	OffsetHz float64
	LimitDBc float64
}

// Mask is a symmetric transmit spectral mask.
type Mask struct {
	// Name identifies the mask in reports.
	Name string
	// ChannelBW is the occupied bandwidth over which the reference channel
	// power is integrated.
	ChannelBW float64
	// RefBW is the measurement (integration) bandwidth for each mask point.
	RefBW float64
	// Points are the breakpoints, sorted by increasing offset; between
	// points the limit is linearly interpolated in offset, beyond the last
	// point it stays at the final limit. Offsets inside ChannelBW/2 are
	// not evaluated.
	Points []Point
}

// Validate checks internal consistency.
func (m *Mask) Validate() error {
	if m.ChannelBW <= 0 || m.RefBW <= 0 {
		return fmt.Errorf("mask %q: ChannelBW and RefBW must be positive", m.Name)
	}
	if len(m.Points) == 0 {
		return fmt.Errorf("mask %q: no breakpoints", m.Name)
	}
	if !sort.SliceIsSorted(m.Points, func(i, j int) bool {
		return m.Points[i].OffsetHz < m.Points[j].OffsetHz
	}) {
		return fmt.Errorf("mask %q: breakpoints not sorted by offset", m.Name)
	}
	if m.Points[0].OffsetHz < m.ChannelBW/2 {
		return fmt.Errorf("mask %q: first breakpoint %g inside the channel", m.Name, m.Points[0].OffsetHz)
	}
	return nil
}

// LimitAt returns the mask limit (dBc) at the absolute offset |f - fc|.
// Offsets before the first breakpoint return the first limit.
func (m *Mask) LimitAt(offset float64) float64 {
	offset = math.Abs(offset)
	pts := m.Points
	if offset <= pts[0].OffsetHz {
		return pts[0].LimitDBc
	}
	for i := 1; i < len(pts); i++ {
		if offset <= pts[i].OffsetHz {
			w := (offset - pts[i-1].OffsetHz) / (pts[i].OffsetHz - pts[i-1].OffsetHz)
			return pts[i-1].LimitDBc + w*(pts[i].LimitDBc-pts[i-1].LimitDBc)
		}
	}
	return pts[len(pts)-1].LimitDBc
}

// MaxOffset returns the largest breakpoint offset (the mask evaluation
// range).
func (m *Mask) MaxOffset() float64 { return m.Points[len(m.Points)-1].OffsetHz }

// Violation records one mask exceedance.
type Violation struct {
	// Freq is the absolute frequency of the violating measurement.
	Freq float64
	// OffsetHz is the offset from the carrier.
	OffsetHz float64
	// LevelDBc is the measured level.
	LevelDBc float64
	// LimitDBc is the allowed level.
	LimitDBc float64
}

// MarginDB returns limit - level (negative = violation).
func (v Violation) MarginDB() float64 { return v.LimitDBc - v.LevelDBc }

// Report is the outcome of a mask check.
type Report struct {
	MaskName string
	Pass     bool
	// WorstMarginDB is the minimum (limit - level) across all evaluated
	// offsets; negative when the mask is violated.
	WorstMarginDB float64
	// WorstOffsetHz locates the worst margin.
	WorstOffsetHz float64
	// ChannelPower is the integrated in-channel power (V^2).
	ChannelPower float64
	// Violations lists every exceedance.
	Violations []Violation
	// Offsets and LevelsDBc trace the measured emission profile (both
	// sides, ordered by signed offset) for plotting.
	Offsets   []float64
	LevelsDBc []float64
	LimitsDBc []float64
}

// Check evaluates the mask against a two-sided PSD estimate centred on
// carrier fc. The spectrum must cover fc +- (ChannelBW/2 + MaxOffset).
func Check(m *Mask, spec *dsp.Spectrum, fc float64) (*Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if spec == nil || spec.Len() == 0 {
		return nil, fmt.Errorf("mask %q: empty spectrum", m.Name)
	}
	if spec.Freqs[0] > fc-m.ChannelBW/2 || spec.Freqs[spec.Len()-1] < fc+m.ChannelBW/2 {
		return nil, fmt.Errorf("mask %q: spectrum [%g, %g] does not cover the channel at %g",
			m.Name, spec.Freqs[0], spec.Freqs[spec.Len()-1], fc)
	}
	chanPow := spec.PowerInBand(fc-m.ChannelBW/2, fc+m.ChannelBW/2)
	if chanPow <= 0 {
		return nil, fmt.Errorf("mask %q: zero channel power", m.Name)
	}
	rep := &Report{MaskName: m.Name, Pass: true, ChannelPower: chanPow,
		WorstMarginDB: math.Inf(1)}
	// Walk offsets from the channel edge to MaxOffset in RefBW/2 steps, on
	// both sides of the carrier. When the spectrum's bin spacing is coarser
	// than RefBW, integrate over a window wide enough to contain bins and
	// rescale to the reference bandwidth (PSD assumed locally flat) —
	// otherwise most windows would silently contain no bin at all.
	step := m.RefBW / 2
	window := math.Max(m.RefBW, 2.5*spec.BinWidth)
	// Start far enough out that the integration window never overlaps the
	// occupied channel itself.
	start := math.Max(m.ChannelBW/2+window/2, m.Points[0].OffsetHz)
	for side := -1; side <= 1; side += 2 {
		for off := start; off <= m.MaxOffset(); off += step {
			f := fc + float64(side)*off
			if f-window/2 < spec.Freqs[0] || f+window/2 > spec.Freqs[spec.Len()-1] {
				continue // outside the measured span: skip silently
			}
			p := spec.PowerInBand(f-window/2, f+window/2) * (m.RefBW / window)
			level := dsp.PowerDB(p / chanPow)
			limit := m.LimitAt(off)
			margin := limit - level
			rep.Offsets = append(rep.Offsets, float64(side)*off)
			rep.LevelsDBc = append(rep.LevelsDBc, level)
			rep.LimitsDBc = append(rep.LimitsDBc, limit)
			if margin < rep.WorstMarginDB {
				rep.WorstMarginDB = margin
				rep.WorstOffsetHz = float64(side) * off
			}
			if margin < 0 {
				rep.Pass = false
				rep.Violations = append(rep.Violations, Violation{
					Freq: f, OffsetHz: float64(side) * off,
					LevelDBc: level, LimitDBc: limit,
				})
			}
		}
	}
	if len(rep.Offsets) == 0 {
		return nil, fmt.Errorf("mask %q: no offsets could be evaluated (span too small)", m.Name)
	}
	return rep, nil
}

// ACPR computes the adjacent-channel power ratio: power in a ChannelBW-wide
// band centred at fc + spacing, relative to the main channel power, in dB.
func ACPR(spec *dsp.Spectrum, fc, channelBW, spacing float64) (float64, error) {
	if spec == nil || spec.Len() == 0 {
		return 0, fmt.Errorf("mask: ACPR: empty spectrum")
	}
	if channelBW <= 0 {
		return 0, fmt.Errorf("mask: ACPR: channel bandwidth must be positive")
	}
	main := spec.PowerInBand(fc-channelBW/2, fc+channelBW/2)
	adj := spec.PowerInBand(fc+spacing-channelBW/2, fc+spacing+channelBW/2)
	if main <= 0 {
		return 0, fmt.Errorf("mask: ACPR: zero main-channel power")
	}
	return dsp.PowerDB(adj / main), nil
}
