// Package sig provides the continuous-time signal framework on which the
// PNBS-BIST behavioural simulation is built. Signals and complex envelopes
// are functions evaluable at arbitrary time instants, so picosecond-offset
// nonuniform sampling is exact rather than interpolated from a uniform grid.
// This is the Go substitute for the paper's Matlab behavioural passband
// models, which must "explicitly simulate each carrier cycle".
package sig

import "math"

// Signal is a real-valued continuous-time waveform.
type Signal interface {
	// At returns the instantaneous value at time t (seconds).
	At(t float64) float64
}

// Envelope is a complex baseband (lowpass-equivalent) waveform.
type Envelope interface {
	// At returns the complex envelope at time t (seconds).
	At(t float64) complex128
}

// SignalFunc adapts an ordinary function to the Signal interface.
type SignalFunc func(t float64) float64

// At implements Signal.
func (f SignalFunc) At(t float64) float64 { return f(t) }

// EnvelopeFunc adapts an ordinary function to the Envelope interface.
type EnvelopeFunc func(t float64) complex128

// At implements Envelope.
func (f EnvelopeFunc) At(t float64) complex128 { return f(t) }

// Passband turns a complex envelope around carrier fc into the real RF
// waveform x(t) = Re{ env(t) * exp(i 2 pi fc t) }.
type Passband struct {
	Env Envelope
	Fc  float64
}

// At implements Signal.
func (p *Passband) At(t float64) float64 {
	e := p.Env.At(t)
	s, c := math.Sincos(2 * math.Pi * p.Fc * t)
	return real(e)*c - imag(e)*s
}

// Tone is a real sinusoid Amp * cos(2 pi Freq t + Phase).
type Tone struct {
	Amp   float64
	Freq  float64
	Phase float64
}

// At implements Signal.
func (s *Tone) At(t float64) float64 {
	return s.Amp * math.Cos(2*math.Pi*s.Freq*t+s.Phase)
}

// ComplexTone is a complex exponential Amp * exp(i(2 pi Freq t + Phase)),
// used as a baseband test envelope (a single tone offset from the carrier).
type ComplexTone struct {
	Amp   float64
	Freq  float64
	Phase float64
}

// At implements Envelope.
func (s *ComplexTone) At(t float64) complex128 {
	ph := 2*math.Pi*s.Freq*t + s.Phase
	sn, cs := math.Sincos(ph)
	return complex(s.Amp*cs, s.Amp*sn)
}

// Sum adds any number of signals.
type Sum []Signal

// At implements Signal.
func (s Sum) At(t float64) float64 {
	v := 0.0
	for _, x := range s {
		v += x.At(t)
	}
	return v
}

// EnvSum adds any number of envelopes.
type EnvSum []Envelope

// At implements Envelope.
func (s EnvSum) At(t float64) complex128 {
	var v complex128
	for _, x := range s {
		v += x.At(t)
	}
	return v
}

// Scale multiplies a signal by a constant gain.
func Scale(x Signal, gain float64) Signal {
	return SignalFunc(func(t float64) float64 { return gain * x.At(t) })
}

// ScaleEnv multiplies an envelope by a complex gain.
func ScaleEnv(x Envelope, gain complex128) Envelope {
	return EnvelopeFunc(func(t float64) complex128 { return gain * x.At(t) })
}

// Delay shifts a signal later in time by tau seconds.
func Delay(x Signal, tau float64) Signal {
	return SignalFunc(func(t float64) float64 { return x.At(t - tau) })
}

// DelayEnv shifts an envelope later in time by tau seconds.
func DelayEnv(x Envelope, tau float64) Envelope {
	return EnvelopeFunc(func(t float64) complex128 { return x.At(t - tau) })
}

// Zero is the all-zero signal.
var Zero Signal = SignalFunc(func(float64) float64 { return 0 })

// SampleAt evaluates a signal at each time in ts.
func SampleAt(x Signal, ts []float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = x.At(t)
	}
	return out
}

// SampleEnvAt evaluates an envelope at each time in ts.
func SampleEnvAt(x Envelope, ts []float64) []complex128 {
	out := make([]complex128, len(ts))
	for i, t := range ts {
		out[i] = x.At(t)
	}
	return out
}

// UniformTimes returns n instants t0, t0+dt, ..., t0+(n-1)dt.
func UniformTimes(t0, dt float64, n int) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = t0 + float64(i)*dt
	}
	return ts
}

// Downconvert extracts the complex envelope of a real signal x around fc by
// analytic mixing: env(t) = 2 * LPF{ x(t) exp(-i 2 pi fc t) }. The caller is
// responsible for subsequent lowpass filtering of the sampled sequence; this
// helper only performs the instantaneous mix.
func Downconvert(x Signal, fc float64) Envelope {
	return EnvelopeFunc(func(t float64) complex128 {
		s, c := math.Sincos(2 * math.Pi * fc * t)
		v := x.At(t)
		return complex(2*v*c, -2*v*s)
	})
}

// Chirp is a linear frequency sweep: starting at F0 with rate Slope Hz/s,
// amplitude Amp. Useful for transient/tracking tests and STFT validation.
type Chirp struct {
	Amp   float64
	F0    float64
	Slope float64
	Phase float64
}

// At implements Signal: phase(t) = 2 pi (F0 t + Slope t^2 / 2).
func (c *Chirp) At(t float64) float64 {
	ph := 2*math.Pi*(c.F0*t+0.5*c.Slope*t*t) + c.Phase
	return c.Amp * math.Cos(ph)
}

// InstFreq returns the instantaneous frequency at t.
func (c *Chirp) InstFreq(t float64) float64 { return c.F0 + c.Slope*t }
