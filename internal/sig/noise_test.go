package sig

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

func TestBandNoisePowerAndBand(t *testing.T) {
	power := 0.25
	n := NewBandNoise(10e6, 20e6, power, 200, 42)
	// Estimate power by time averaging over a long window.
	fs := 100e6
	ns := 1 << 14
	x := make([]float64, ns)
	for i := range x {
		x[i] = n.At(float64(i) / fs)
	}
	if p := dsp.RMS(x); math.Abs(p*p-power) > 0.15*power {
		t.Errorf("noise power %g, want ~%g", p*p, power)
	}
	// Spectral confinement: out-of-band PSD must be far below in-band.
	spec, err := dsp.WelchReal(x, fs, dsp.DefaultWelch(4096))
	if err != nil {
		t.Fatal(err)
	}
	in := spec.PowerInBand(10e6, 20e6)
	out := spec.PowerInBand(25e6, 45e6)
	if out > in/1e6 {
		t.Errorf("out-of-band leakage: in %g vs out %g", in, out)
	}
}

func TestBandNoiseDeterministic(t *testing.T) {
	a := NewBandNoise(1e6, 2e6, 1, 50, 7)
	b := NewBandNoise(1e6, 2e6, 1, 50, 7)
	c := NewBandNoise(1e6, 2e6, 1, 50, 8)
	if a.At(1.23e-6) != b.At(1.23e-6) {
		t.Error("same seed must reproduce")
	}
	if a.At(1.23e-6) == c.At(1.23e-6) {
		t.Error("different seeds should differ")
	}
}

func TestBandNoiseMinTones(t *testing.T) {
	n := NewBandNoise(1e6, 2e6, 1, 0, 1) // clamps to 1 tone
	if v := n.At(0.5e-6); math.IsNaN(v) {
		t.Error("NaN from degenerate config")
	}
}

func TestComplexBandNoiseCircularAndPower(t *testing.T) {
	power := 2.0
	n := NewComplexBandNoise(20e6, power, 300, 99)
	fs := 80e6
	ns := 1 << 14
	var pwr, re2, im2 float64
	for i := 0; i < ns; i++ {
		v := n.At(float64(i) / fs)
		pwr += real(v)*real(v) + imag(v)*imag(v)
		re2 += real(v) * real(v)
		im2 += imag(v) * imag(v)
	}
	pwr /= float64(ns)
	if math.Abs(pwr-power) > 0.15*power {
		t.Errorf("complex noise power %g, want ~%g", pwr, power)
	}
	// Circular symmetry: I and Q powers roughly equal.
	if r := re2 / im2; r < 0.7 || r > 1.4 {
		t.Errorf("I/Q power ratio %g", r)
	}
}

func TestComplexBandNoiseDeterministic(t *testing.T) {
	a := NewComplexBandNoise(1e6, 1, 0, 3) // also exercises nTones clamp
	b := NewComplexBandNoise(1e6, 1, 0, 3)
	if a.At(2e-6) != b.At(2e-6) {
		t.Error("same seed must reproduce")
	}
}

func TestPRBSProperties(t *testing.T) {
	for _, order := range []uint{7, 9, 15} {
		p, err := NewPRBS(order, 1)
		if err != nil {
			t.Fatal(err)
		}
		period := p.Period()
		if period != 1<<order-1 {
			t.Fatalf("period %d", period)
		}
		bits := p.Bits(2 * period)
		// Maximal-length property: exactly 2^(order-1) ones per period.
		ones := 0
		for _, b := range bits[:period] {
			ones += b
		}
		if ones != 1<<(order-1) {
			t.Errorf("order %d: %d ones per period, want %d", order, ones, 1<<(order-1))
		}
		// Periodicity.
		for i := 0; i < period; i++ {
			if bits[i] != bits[i+period] {
				t.Fatalf("order %d: sequence not periodic at %d", order, i)
			}
		}
	}
}

func TestPRBSZeroSeedAndBadOrder(t *testing.T) {
	p, err := NewPRBS(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero register would lock up; implementation must avoid it.
	bits := p.Bits(100)
	any := 0
	for _, b := range bits {
		any += b
	}
	if any == 0 {
		t.Error("PRBS stuck at zero")
	}
	if _, err := NewPRBS(8, 1); err == nil {
		t.Error("unsupported order must error")
	}
}
