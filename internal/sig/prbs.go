package sig

import "fmt"

// PRBS is a maximal-length linear feedback shift register pseudo-random bit
// sequence generator. Supported orders follow the ITU-T naming: PRBS7,
// PRBS9, PRBS15, PRBS23 and PRBS31, each using its canonical feedback taps.
type PRBS struct {
	state uint32
	mask  uint32
	taps  [2]uint // feedback bit positions (1-based from LSB of the register)
	order uint
}

// prbsTaps maps the register order to its canonical (x^n + x^m + 1) taps.
var prbsTaps = map[uint][2]uint{
	7:  {7, 6},
	9:  {9, 5},
	15: {15, 14},
	23: {23, 18},
	31: {31, 28},
}

// NewPRBS creates a generator of the given order seeded with a non-zero
// register value. The all-ones register is used when seed (mod 2^order) is 0.
func NewPRBS(order uint, seed uint32) (*PRBS, error) {
	taps, ok := prbsTaps[order]
	if !ok {
		return nil, fmt.Errorf("sig: PRBS order %d unsupported (7, 9, 15, 23, 31)", order)
	}
	mask := uint32(1)<<order - 1
	s := seed & mask
	if s == 0 {
		s = mask
	}
	return &PRBS{state: s, mask: mask, taps: taps, order: order}, nil
}

// Next returns the next bit of the sequence. The generator is a Fibonacci
// LFSR in left-shift form: the emitted bit is the feedback
// state[taps0-1] XOR state[taps1-1], shifted into the register LSB.
func (p *PRBS) Next() int {
	b1 := (p.state >> (p.taps[0] - 1)) & 1
	b2 := (p.state >> (p.taps[1] - 1)) & 1
	fb := b1 ^ b2
	p.state = ((p.state << 1) | fb) & p.mask
	return int(fb)
}

// Bits returns the next n bits.
func (p *PRBS) Bits(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}

// Period returns the sequence period 2^order - 1.
func (p *PRBS) Period() int { return int(p.mask) }
