package sig

import (
	"math"
	"math/rand"
)

// BandNoise is a stationary Gaussian-like band-limited noise process built
// from a dense sum of random-phase sinusoids (the classical sum-of-sinusoids
// model). It is evaluable at arbitrary t, deterministic for a given seed and
// has one-sided power Power spread uniformly over [FLow, FHigh].
type BandNoise struct {
	freqs  []float64
	amps   []float64
	phases []float64
}

// NewBandNoise creates a band-limited noise signal with total power
// (variance) power spread over [fLow, fHigh] using nTones components.
// By the central limit theorem the amplitude distribution approaches
// Gaussian for nTones >~ 50.
func NewBandNoise(fLow, fHigh, power float64, nTones int, seed int64) *BandNoise {
	if nTones < 1 {
		nTones = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := &BandNoise{
		freqs:  make([]float64, nTones),
		amps:   make([]float64, nTones),
		phases: make([]float64, nTones),
	}
	// Each tone amp A contributes A^2/2 power; jitter the frequency inside
	// each sub-band so the process is not periodic.
	amp := math.Sqrt(2 * power / float64(nTones))
	df := (fHigh - fLow) / float64(nTones)
	for i := 0; i < nTones; i++ {
		n.freqs[i] = fLow + (float64(i)+rng.Float64())*df
		n.amps[i] = amp
		n.phases[i] = 2 * math.Pi * rng.Float64()
	}
	return n
}

// At implements Signal.
func (n *BandNoise) At(t float64) float64 {
	v := 0.0
	for i, f := range n.freqs {
		v += n.amps[i] * math.Cos(2*math.Pi*f*t+n.phases[i])
	}
	return v
}

// ComplexBandNoise is the baseband (complex envelope) counterpart of
// BandNoise: circularly symmetric noise over [-bw/2, +bw/2].
type ComplexBandNoise struct {
	freqs  []float64
	amps   []float64
	phases []float64
}

// NewComplexBandNoise creates circular complex noise of total power power
// (E[|z|^2]) uniformly spread over [-bw/2, bw/2].
func NewComplexBandNoise(bw, power float64, nTones int, seed int64) *ComplexBandNoise {
	if nTones < 1 {
		nTones = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := &ComplexBandNoise{
		freqs:  make([]float64, nTones),
		amps:   make([]float64, nTones),
		phases: make([]float64, nTones),
	}
	amp := math.Sqrt(power / float64(nTones))
	df := bw / float64(nTones)
	for i := 0; i < nTones; i++ {
		n.freqs[i] = -bw/2 + (float64(i)+rng.Float64())*df
		n.amps[i] = amp
		n.phases[i] = 2 * math.Pi * rng.Float64()
	}
	return n
}

// At implements Envelope.
func (n *ComplexBandNoise) At(t float64) complex128 {
	var vr, vi float64
	for i, f := range n.freqs {
		ph := 2*math.Pi*f*t + n.phases[i]
		s, c := math.Sincos(ph)
		vr += n.amps[i] * c
		vi += n.amps[i] * s
	}
	return complex(vr, vi)
}
