package sig

import (
	"fmt"
	"math"
)

// SampledEnvelope adapts a uniformly sampled complex sequence back to the
// continuous Envelope interface with Catmull-Rom cubic interpolation. It is
// used to feed reconstructed (discrete) envelopes into continuous-time
// consumers such as the matched-filter demodulator. Accuracy is excellent
// when the sequence oversamples its content by >= 4x.
type SampledEnvelope struct {
	// T0 is the time of sample 0; Dt the sample spacing.
	T0, Dt float64
	// Samples holds the envelope values.
	Samples []complex128
}

// NewSampledEnvelope validates and wraps a sampled envelope.
func NewSampledEnvelope(t0, dt float64, samples []complex128) (*SampledEnvelope, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("sig: sampled envelope needs dt > 0, got %g", dt)
	}
	if len(samples) < 4 {
		return nil, fmt.Errorf("sig: sampled envelope needs >= 4 samples, got %d", len(samples))
	}
	return &SampledEnvelope{T0: t0, Dt: dt, Samples: samples}, nil
}

// Span returns the time interval over which interpolation is supported.
func (s *SampledEnvelope) Span() (lo, hi float64) {
	return s.T0 + s.Dt, s.T0 + float64(len(s.Samples)-2)*s.Dt
}

// At implements Envelope. Outside the supported span it returns 0.
func (s *SampledEnvelope) At(t float64) complex128 {
	x := (t - s.T0) / s.Dt
	i := int(math.Floor(x))
	if i+2 == len(s.Samples) && x-float64(i) < 1e-12 {
		// Exactly the last supported grid point.
		return s.Samples[i]
	}
	if i < 1 || i+2 >= len(s.Samples) {
		return 0
	}
	f := x - float64(i)
	p0 := s.Samples[i-1]
	p1 := s.Samples[i]
	p2 := s.Samples[i+1]
	p3 := s.Samples[i+2]
	// Catmull-Rom spline.
	ff := complex(f, 0)
	a := p1
	b := (p2 - p0) * 0.5
	c := p0 - p1*2.5 + p2*2 - p3*0.5
	d := (p3 - p0 + (p1-p2)*3) * 0.5
	return a + ff*(b+ff*(c+ff*d))
}
