package sig

import (
	"math"
	"testing"
	"testing/quick"
)

func TestToneValues(t *testing.T) {
	s := &Tone{Amp: 2, Freq: 1e6, Phase: math.Pi / 2}
	if math.Abs(s.At(0)) > 1e-12 {
		t.Errorf("cos with pi/2 phase at t=0 should be 0, got %g", s.At(0))
	}
	// Quarter period later: cos(pi/2 + pi/2) = -1 -> -2.
	if v := s.At(0.25e-6); math.Abs(v+2) > 1e-9 {
		t.Errorf("got %g, want -2", v)
	}
}

func TestComplexToneUnitCircle(t *testing.T) {
	s := &ComplexTone{Amp: 1, Freq: 3e6}
	f := func(tRaw float64) bool {
		tv := math.Mod(tRaw, 1e-3)
		if math.IsNaN(tv) {
			return true
		}
		v := s.At(tv)
		return math.Abs(math.Hypot(real(v), imag(v))-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPassbandMatchesDirectExpression(t *testing.T) {
	fc := 1e9
	env := &ComplexTone{Amp: 0.7, Freq: 5e6, Phase: 0.3}
	pb := &Passband{Env: env, Fc: fc}
	for _, tv := range []float64{0, 1.23e-9, 4.567e-8, 1e-6} {
		e := env.At(tv)
		want := real(e)*math.Cos(2*math.Pi*fc*tv) - imag(e)*math.Sin(2*math.Pi*fc*tv)
		if got := pb.At(tv); math.Abs(got-want) > 1e-12 {
			t.Errorf("t=%g: %g vs %g", tv, got, want)
		}
	}
}

func TestPassbandOfComplexToneIsShiftedTone(t *testing.T) {
	// Re{A e^{i 2 pi fb t} e^{i 2 pi fc t}} = A cos(2 pi (fc+fb) t).
	fc, fb := 1e9, 7e6
	pb := &Passband{Env: &ComplexTone{Amp: 1.5, Freq: fb}, Fc: fc}
	ref := &Tone{Amp: 1.5, Freq: fc + fb}
	for _, tv := range []float64{0, 3.1e-10, 2.7e-9, 5e-8} {
		if d := math.Abs(pb.At(tv) - ref.At(tv)); d > 1e-9 {
			t.Errorf("t=%g: diff %g", tv, d)
		}
	}
}

func TestCombinators(t *testing.T) {
	a := &Tone{Amp: 1, Freq: 1e6}
	b := &Tone{Amp: 0.5, Freq: 2e6}
	sum := Sum{a, b}
	tv := 0.321e-6
	if math.Abs(sum.At(tv)-(a.At(tv)+b.At(tv))) > 1e-12 {
		t.Error("Sum")
	}
	if math.Abs(Scale(a, 3).At(tv)-3*a.At(tv)) > 1e-12 {
		t.Error("Scale")
	}
	if math.Abs(Delay(a, 1e-7).At(tv)-a.At(tv-1e-7)) > 1e-12 {
		t.Error("Delay")
	}
	if Zero.At(tv) != 0 {
		t.Error("Zero")
	}
	ea := &ComplexTone{Amp: 1, Freq: 1e6}
	eb := &ComplexTone{Amp: 2, Freq: -3e6}
	es := EnvSum{ea, eb}
	if v := es.At(tv) - ea.At(tv) - eb.At(tv); math.Hypot(real(v), imag(v)) > 1e-12 {
		t.Error("EnvSum")
	}
	if v := ScaleEnv(ea, 2i).At(tv) - 2i*ea.At(tv); v != 0 {
		t.Error("ScaleEnv")
	}
	if v := DelayEnv(ea, 1e-7).At(tv) - ea.At(tv-1e-7); v != 0 {
		t.Error("DelayEnv")
	}
}

func TestSampleHelpers(t *testing.T) {
	a := &Tone{Amp: 1, Freq: 1e6}
	ts := UniformTimes(1e-6, 1e-8, 5)
	if len(ts) != 5 || ts[0] != 1e-6 || math.Abs(ts[4]-1.04e-6) > 1e-18 {
		t.Errorf("UniformTimes = %v", ts)
	}
	xs := SampleAt(a, ts)
	for i := range ts {
		if xs[i] != a.At(ts[i]) {
			t.Error("SampleAt mismatch")
		}
	}
	env := &ComplexTone{Amp: 1, Freq: 1e6}
	es := SampleEnvAt(env, ts)
	for i := range ts {
		if es[i] != env.At(ts[i]) {
			t.Error("SampleEnvAt mismatch")
		}
	}
}

func TestDownconvertRecoversEnvelope(t *testing.T) {
	// Downconvert(Passband(env)) = env + image at -2fc; at t where the
	// double-frequency term is small on average, check the low-frequency
	// content by averaging over a carrier period.
	fc := 1e9
	env := &ComplexTone{Amp: 0.9, Freq: 2e6, Phase: 1.0}
	pb := &Passband{Env: env, Fc: fc}
	down := Downconvert(pb, fc)
	// Average over exactly one carrier cycle kills the 2fc image.
	n := 64
	var acc complex128
	t0 := 1.7e-7
	for i := 0; i < n; i++ {
		acc += down.At(t0 + float64(i)/float64(n)/fc)
	}
	acc /= complex(float64(n), 0)
	want := env.At(t0 + 0.5/fc) // envelope is nearly constant over the cycle
	if d := acc - want; math.Hypot(real(d), imag(d)) > 1e-2 {
		t.Errorf("downconverted %v, want %v", acc, want)
	}
}

func TestSignalFuncAdapters(t *testing.T) {
	s := SignalFunc(func(t float64) float64 { return 2 * t })
	if s.At(3) != 6 {
		t.Error("SignalFunc")
	}
	e := EnvelopeFunc(func(t float64) complex128 { return complex(t, -t) })
	if e.At(2) != complex(2, -2) {
		t.Error("EnvelopeFunc")
	}
}

func TestChirpInstantaneousFrequency(t *testing.T) {
	c := &Chirp{Amp: 1, F0: 1e6, Slope: 1e12}
	if c.InstFreq(0) != 1e6 || c.InstFreq(1e-6) != 2e6 {
		t.Error("InstFreq")
	}
	// Zero crossing spacing shrinks as the chirp accelerates: count sign
	// changes in two equal windows.
	count := func(t0, t1 float64) int {
		n := 0
		prev := c.At(t0)
		for tv := t0; tv < t1; tv += 1e-9 {
			v := c.At(tv)
			if v*prev < 0 {
				n++
			}
			prev = v
		}
		return n
	}
	early := count(0, 5e-6)
	late := count(15e-6, 20e-6)
	if late <= early {
		t.Errorf("chirp not accelerating: %d vs %d crossings", early, late)
	}
}
