package sig

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestSampledEnvelopeValidation(t *testing.T) {
	if _, err := NewSampledEnvelope(0, 0, make([]complex128, 8)); err == nil {
		t.Error("dt=0 must fail")
	}
	if _, err := NewSampledEnvelope(0, 1, make([]complex128, 3)); err == nil {
		t.Error("too few samples must fail")
	}
}

func TestSampledEnvelopeInterpolatesOversampledTone(t *testing.T) {
	// 8x oversampled complex tone: Catmull-Rom should track to < 1 %.
	f0 := 1e6
	fs := 8e6
	n := 256
	xs := make([]complex128, n)
	for i := range xs {
		ph := 2 * math.Pi * f0 * float64(i) / fs
		s, c := math.Sincos(ph)
		xs[i] = complex(c, s)
	}
	env, err := NewSampledEnvelope(0, 1/fs, xs)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := env.Span()
	worst := 0.0
	for i := 0; i < 500; i++ {
		tv := lo + (hi-lo)*float64(i)/499
		ph := 2 * math.Pi * f0 * tv
		s, c := math.Sincos(ph)
		want := complex(c, s)
		if d := cmplx.Abs(env.At(tv) - want); d > worst {
			worst = d
		}
	}
	if worst > 0.01 {
		t.Errorf("interpolation error %g", worst)
	}
}

func TestSampledEnvelopeExactOnGrid(t *testing.T) {
	xs := []complex128{1, 2i, 3, -4i, 5, 6}
	env, _ := NewSampledEnvelope(10, 0.5, xs)
	// Interior grid points are reproduced exactly by Catmull-Rom.
	for i := 1; i <= 3; i++ {
		tv := 10 + 0.5*float64(i)
		if env.At(tv) != xs[i] {
			t.Errorf("grid point %d: %v != %v", i, env.At(tv), xs[i])
		}
	}
}

func TestSampledEnvelopeOutsideSpanIsZero(t *testing.T) {
	env, _ := NewSampledEnvelope(0, 1, make([]complex128, 8))
	if env.At(-5) != 0 || env.At(100) != 0 {
		t.Error("outside span must be zero")
	}
	lo, hi := env.Span()
	if lo != 1 || hi != 6 {
		t.Errorf("span [%g, %g]", lo, hi)
	}
}
