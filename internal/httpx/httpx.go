// Package httpx is the repository's hardened HTTP serving seam: one place
// that knows how to stand up an observability/service endpoint correctly —
// header-read timeouts so an idle connection cannot pin a goroutine
// forever, and a graceful two-phase stop (Shutdown with a deadline, then
// Close) so in-flight requests drain instead of being cut mid-body. Both
// bistlab's -metrics-addr endpoint and the bistd fleet service build on
// it; neither carries its own net/http wiring.
package httpx

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// ReadHeaderTimeout bounds how long a client may dawdle between opening a
// connection and finishing its request headers. Without it every idle or
// malicious connection holds a goroutine and a file descriptor
// indefinitely (slowloris); 10 s is generous for a LAN test floor.
const ReadHeaderTimeout = 10 * time.Second

// Server wraps http.Server with the repository's serving policy: bound
// listener resolution (":0" to the real port), ReadHeaderTimeout applied,
// and a drain-then-close stop path.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves handler in a background goroutine. The
// returned server is already accepting; Addr reports the resolved address.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: ReadHeaderTimeout,
	}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return s, nil
}

// Addr returns the bound address (resolves ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to the context deadline; whatever is still open
// then is closed forcibly. Always returns the server fully stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline hit with requests still in flight: cut them. Shutdown
		// already closed the listener, Close sweeps the connections.
		s.srv.Close()
	}
	return err
}

// Close stops the server immediately, cutting in-flight requests. Prefer
// Shutdown; Close is the test/teardown path.
func (s *Server) Close() error { return s.srv.Close() }

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and one process may start several servers (tests, a
// metrics endpoint next to a fleet endpoint).
var publishOnce sync.Once

// ObsMux returns the standard observability mux: /metrics serves the
// canonical-JSON snapshot of the default obs registry, /debug/vars the
// expvar view of the same data (plus the stdlib memstats/cmdline vars),
// and — only when requested — /debug/pprof. A private mux is used instead
// of http.DefaultServeMux precisely so importing net/http/pprof does not
// unconditionally expose profiling.
func ObsMux(withPprof bool) *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("bist", expvar.Func(obs.ExpvarFunc()))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler)
	mux.HandleFunc("/metrics.prom", PromHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// MetricsHandler serves the default obs registry as canonical JSON — the
// same bytes bistlab's -metrics block appends to a report.
func MetricsHandler(w http.ResponseWriter, r *http.Request) {
	b, err := obs.MarshalSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// PromHandler serves the default obs registry in Prometheus text
// exposition format (0.0.4) so a stock Prometheus scrape_config can point
// at any bist service without an exporter sidecar.
func PromHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w) //nolint:errcheck // client gone mid-scrape; nothing to do
}
