package httpx

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testkit"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestObsMuxServesMetrics(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	defer obs.Reset()
	obs.Reset()
	obs.C("httpx.test.hits").Add(7)

	srv, err := Serve("127.0.0.1:0", ObsMux(false))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap struct {
		Counters map[string]int64
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["httpx.test.hits"] != 7 {
		t.Errorf("counter not visible: %v", snap.Counters)
	}
	if code, _ := get(t, "http://"+srv.Addr()+"/debug/pprof/"); code == http.StatusOK {
		t.Error("pprof served without being requested")
	}
}

// TestObsMuxRouteComposition pins the full observability surface on one
// mux: JSON snapshot, Prometheus exposition, expvar, and (when requested)
// pprof all coexist, and the Prometheus output parses as valid text
// format with the expected families.
func TestObsMuxRouteComposition(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	defer obs.Reset()
	obs.Reset()
	obs.C("httpx.route.cells").Add(3)
	obs.G("httpx.route.depth").Set(5)
	obs.H("httpx.route.lat", []float64{1, 2}).Observe(1.5)

	srv, err := Serve("127.0.0.1:0", ObsMux(true))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics: canonical JSON snapshot.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !json.Valid(body) {
		t.Errorf("/metrics: status %d, valid JSON %v", code, json.Valid(body))
	}

	// /metrics.prom: valid Prometheus text with the registered families.
	resp, err := http.Get(base + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.prom status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics.prom Content-Type = %q", ct)
	}
	fams, err := testkit.ScanProm(string(promBody))
	if err != nil {
		t.Fatalf("/metrics.prom does not scan: %v\n%s", err, promBody)
	}
	names := testkit.PromFamilyNames(fams)
	for _, want := range []string{"bist_httpx_route_cells", "bist_httpx_route_depth", "bist_httpx_route_lat"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s missing from exposition: %v", want, names)
		}
	}

	// /debug/vars: expvar view including the published bist var.
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(string(body), `"bist"`) {
		t.Errorf("/debug/vars: status %d, has bist var %v", code, strings.Contains(string(body), `"bist"`))
	}

	// pprof was requested on this mux, so it serves.
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d with pprof enabled", code)
	}
}

// TestReadHeaderTimeoutConfigured pins the slowloris defence: a connection
// that never finishes its headers is cut by the server, not held forever.
func TestReadHeaderTimeoutConfigured(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.srv.ReadHeaderTimeout; got != ReadHeaderTimeout {
		t.Fatalf("ReadHeaderTimeout = %v, want %v", got, ReadHeaderTimeout)
	}
	// Behavioural check at a tiny timeout would slow the suite; the policy
	// field plus one live half-open connection that the server accepts and
	// later reaps is enough to show the path is wired.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatalf("half-open write: %v", err)
	}
}

// TestShutdownDrainsInFlight pins the graceful path: a request already in
// a handler completes (200, full body) even though Shutdown was called
// while it was running, and Shutdown returns only after it finished.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "drained")
	})
	srv, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		body string
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- result{-1, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- result{resp.StatusCode, string(b)}
	}()

	<-entered
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the handler, not race past it.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned with a request still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.code != http.StatusOK || r.body != "drained" {
		t.Fatalf("in-flight request got (%d, %q), want (200, drained)", r.code, r.body)
	}

	// After shutdown the listener is gone.
	if _, err := http.Get("http://" + srv.Addr() + "/slow"); err == nil {
		t.Error("server still accepting after Shutdown")
	}
}

// TestShutdownDeadlineForcesClose pins the second phase: when the drain
// deadline passes with a request still running, Shutdown reports the
// deadline error and the connection is cut rather than leaked.
func TestShutdownDeadlineForcesClose(t *testing.T) {
	entered := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	srv, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown returned nil despite a stuck handler")
	}
	<-errc // the client call must return (connection cut), not hang
}
