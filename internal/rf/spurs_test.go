package rf

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/sig"
)

func TestSpurCombValidation(t *testing.T) {
	cases := []struct {
		label   string
		spacing float64
		levels  []float64
	}{
		{"zero spacing", 0, []float64{-20}},
		{"negative spacing", -1e6, []float64{-20}},
		{"no harmonics", 1e6, nil},
		{"nan level", 1e6, []float64{math.NaN()}},
		{"positive level", 1e6, []float64{3}},
		{"zero level", 1e6, []float64{0}},
	}
	for _, c := range cases {
		if _, err := NewSpurComb(c.spacing, c.levels, 1); err == nil {
			t.Errorf("%s: expected error", c.label)
		}
	}
	if _, err := NewSpurComb(12e6, []float64{-15, -19, -24}, 33); err != nil {
		t.Errorf("catalogue parameters rejected: %v", err)
	}
}

// TestSpurCombRMS: a single spur at L dBc is a phase tone of peak
// deviation 2*10^(L/20), so its RMS is that over sqrt(2).
func TestSpurCombRMS(t *testing.T) {
	s, err := NewSpurComb(1e6, []float64{-20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Pow(10, -20.0/20) / math.Sqrt2
	if got := s.RMSRadians(); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMS %g, want %g", got, want)
	}
}

// TestSpurCombDeterministic: same seed, same waveform; different seed,
// different phases — the fault must reproduce exactly across runs.
func TestSpurCombDeterministic(t *testing.T) {
	a, _ := NewSpurComb(1e6, []float64{-18, -25}, 42)
	b, _ := NewSpurComb(1e6, []float64{-18, -25}, 42)
	c, _ := NewSpurComb(1e6, []float64{-18, -25}, 43)
	tt := 3.7e-7
	if a.Phi(tt) != b.Phi(tt) {
		t.Error("same seed produced different phase processes")
	}
	if a.Phi(tt) == c.Phi(tt) {
		t.Error("different seeds produced identical phase processes")
	}
}

// TestSpurCombApplyEnvIsPureRotation: the comb modulates phase only — the
// envelope magnitude is untouched, which is why the images it creates are
// dBc-constant (they track the signal level at any drive).
func TestSpurCombApplyEnvIsPureRotation(t *testing.T) {
	s, err := NewSpurComb(12e6, []float64{-15, -19, -24}, 33)
	if err != nil {
		t.Fatal(err)
	}
	env := sig.EnvelopeFunc(func(t float64) complex128 {
		return complex(0.8*math.Cos(2*math.Pi*1e6*t), 0.3)
	})
	out := s.ApplyEnv(env)
	for i := 0; i < 64; i++ {
		tt := float64(i) * 7.3e-9
		in, o := env.At(tt), out.At(tt)
		if d := math.Abs(cmplx.Abs(o) - cmplx.Abs(in)); d > 1e-12 {
			t.Fatalf("t=%g: magnitude changed by %g", tt, d)
		}
		// The applied rotation must equal Phi(t).
		if in != 0 {
			got := cmplx.Phase(o * cmplx.Conj(in))
			want := math.Remainder(s.Phi(tt), 2*math.Pi)
			if math.Abs(math.Remainder(got-want, 2*math.Pi)) > 1e-9 {
				t.Fatalf("t=%g: rotation %g, want %g", tt, got, want)
			}
		}
	}
}

func TestSpurCombDescribe(t *testing.T) {
	s, _ := NewSpurComb(12e6, []float64{-15, -19}, 1)
	d := s.Describe()
	if !strings.Contains(d, "spurs") || !strings.Contains(d, "-15") {
		t.Errorf("unhelpful description %q", d)
	}
}

// TestTransmitterSpurChain: the comb slots into the transmitter after
// phase noise — the output envelope picks up exactly the comb rotation,
// and Describe advertises it.
func TestTransmitterSpurChain(t *testing.T) {
	spurs, err := NewSpurComb(12e6, []float64{-15}, 33)
	if err != nil {
		t.Fatal(err)
	}
	bb := sig.EnvelopeFunc(func(tt float64) complex128 { return complex(0.7, -0.2) })
	clean, err := NewTransmitter(TxConfig{Fc: 1e9}, bb)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := NewTransmitter(TxConfig{Fc: 1e9, Spurs: spurs}, bb)
	if err != nil {
		t.Fatal(err)
	}
	tt := 1.9e-8
	want := clean.OutputEnvelope().At(tt) * cmplx.Exp(complex(0, spurs.Phi(tt)))
	if d := cmplx.Abs(dirty.OutputEnvelope().At(tt) - want); d > 1e-12 {
		t.Errorf("spur rotation not applied in chain: err %g", d)
	}
	if !strings.Contains(dirty.Describe(), "spurs") {
		t.Errorf("Describe omits the comb: %q", dirty.Describe())
	}
}

// TestApplyPADispatch: ApplyPA routes envelope-capable PAs (the memory
// polynomial) through their full ApplyEnv model and wraps plain pointwise
// PAs — so TxConfig.PA works for both without the transmitter caring.
func TestApplyPADispatch(t *testing.T) {
	bb := sig.EnvelopeFunc(func(tt float64) complex128 {
		return complex(0.5*math.Cos(2*math.Pi*5e6*tt), 0.2)
	})
	// Plain PA: ApplyPA must equal pointwise Apply.
	lin := &LinearPA{Gain: complex(1.3, 0)}
	out := ApplyPA(lin, bb)
	for i := 0; i < 16; i++ {
		tt := float64(i) * 11e-9
		if out.At(tt) != lin.Apply(bb.At(tt)) {
			t.Fatalf("t=%g: wrapped PA differs from pointwise", tt)
		}
	}
	// Memory PA: the envelope path must show the delayed tap, i.e. differ
	// from the memoryless pointwise core.
	mem, err := NewMemoryPolyPA([][3]complex128{
		{1, complex(-0.32, 0.14), 0},
		{0, complex(0.22, -0.15), 0},
	}, 22e-9)
	if err != nil {
		t.Fatal(err)
	}
	memOut := ApplyPA(mem, bb)
	var differs bool
	for i := 0; i < 64; i++ {
		tt := float64(i) * 11e-9
		if cmplx.Abs(memOut.At(tt)-mem.Apply(bb.At(tt))) > 1e-9 {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("memory PA through ApplyPA behaved memorylessly — dispatch lost the envelope path")
	}
	// A single-tap memory polynomial IS memoryless: the two paths agree.
	mless, err := NewMemoryPolyPA([][3]complex128{{1, complex(-0.1, 0.05), 0}}, 22e-9)
	if err != nil {
		t.Fatal(err)
	}
	mlessOut := ApplyPA(mless, bb)
	for i := 0; i < 16; i++ {
		tt := float64(i) * 11e-9
		if d := cmplx.Abs(mlessOut.At(tt) - mless.Apply(bb.At(tt))); d > 1e-12 {
			t.Fatalf("t=%g: memoryless polynomial paths disagree by %g", tt, d)
		}
	}
}
