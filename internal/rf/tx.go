package rf

import (
	"fmt"
	"strings"

	"repro/internal/sig"
)

// TxConfig describes the homodyne transmitter chain of paper Fig. 1. Any nil
// block is ideal/absent, so the zero value (plus a carrier) is a perfect
// transmitter.
type TxConfig struct {
	// Fc is the carrier frequency in Hz.
	Fc float64
	// DAC models the zero-order hold of the baseband DACs (nil = ideal).
	DAC *ZOH
	// ReconFilter is the post-DAC analog lowpass (nil = none).
	ReconFilter *AnalogFIR
	// IQ models quadrature modulator impairments (nil = perfect).
	IQ *IQImbalance
	// PhaseNoise models the RF local oscillator (nil = clean).
	PhaseNoise *PhaseNoise
	// Spurs models discrete LO spur combs (nil = spur-free), applied after
	// the continuous phase-noise process.
	Spurs *SpurComb
	// PA is the power amplifier model (nil = unity).
	PA PA
	// OutputGain is a final linear scale (antenna/coupler), 0 = 1.
	OutputGain float64
}

// Transmitter is a configured homodyne transmitter driving a baseband
// envelope through the impairment chain up to the PA output.
type Transmitter struct {
	cfg    TxConfig
	outEnv sig.Envelope
}

// NewTransmitter composes the chain
// baseband -> DAC ZOH -> reconstruction filter -> IQ modulator ->
// LO phase noise -> PA -> output gain.
func NewTransmitter(cfg TxConfig, baseband sig.Envelope) (*Transmitter, error) {
	if cfg.Fc <= 0 {
		return nil, fmt.Errorf("rf: transmitter needs a positive carrier, got %g", cfg.Fc)
	}
	if baseband == nil {
		return nil, fmt.Errorf("rf: transmitter needs a baseband envelope")
	}
	env := baseband
	if cfg.DAC != nil {
		env = cfg.DAC.ApplyEnv(env)
	}
	if cfg.ReconFilter != nil {
		env = cfg.ReconFilter.ApplyEnv(env)
	}
	if cfg.IQ != nil {
		env = cfg.IQ.ApplyEnv(env)
	}
	if cfg.PhaseNoise != nil {
		env = cfg.PhaseNoise.ApplyEnv(env)
	}
	if cfg.Spurs != nil {
		env = cfg.Spurs.ApplyEnv(env)
	}
	if cfg.PA != nil {
		env = ApplyPA(cfg.PA, env)
	}
	if cfg.OutputGain != 0 && cfg.OutputGain != 1 {
		env = sig.ScaleEnv(env, complex(cfg.OutputGain, 0))
	}
	return &Transmitter{cfg: cfg, outEnv: env}, nil
}

// Fc returns the carrier frequency.
func (tx *Transmitter) Fc() float64 { return tx.cfg.Fc }

// OutputEnvelope returns the PA-output complex envelope.
func (tx *Transmitter) OutputEnvelope() sig.Envelope { return tx.outEnv }

// Output returns the real RF waveform at the PA output / antenna port. This
// is the bandpass signal the BP-TIADC captures.
func (tx *Transmitter) Output() sig.Signal {
	return &sig.Passband{Env: tx.outEnv, Fc: tx.cfg.Fc}
}

// Describe summarises the configured chain for reports.
func (tx *Transmitter) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "homodyne tx @ %.6g Hz", tx.cfg.Fc)
	if tx.cfg.DAC != nil {
		fmt.Fprintf(&b, ", DAC ZOH %.4g Hz", tx.cfg.DAC.Fs)
	}
	if tx.cfg.ReconFilter != nil {
		fmt.Fprintf(&b, ", recon FIR %d taps", len(tx.cfg.ReconFilter.Taps))
	}
	if tx.cfg.IQ != nil {
		fmt.Fprintf(&b, ", IQ(g=%.4g, phi=%.4g rad, IRR=%.1f dB)",
			tx.cfg.IQ.GainRatio, tx.cfg.IQ.PhaseError, tx.cfg.IQ.ImageRejectionDB())
	}
	if tx.cfg.PhaseNoise != nil {
		fmt.Fprintf(&b, ", LO PN %.3g mrad rms", 1e3*tx.cfg.PhaseNoise.RMSRadians())
	}
	if tx.cfg.Spurs != nil {
		fmt.Fprintf(&b, ", LO %s", tx.cfg.Spurs.Describe())
	}
	if tx.cfg.PA != nil {
		fmt.Fprintf(&b, ", PA %s", tx.cfg.PA.Describe())
	}
	return b.String()
}
