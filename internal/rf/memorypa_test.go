package rf

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/sig"
)

func TestMemoryPolyPAValidation(t *testing.T) {
	if _, err := NewMemoryPolyPA(nil, 1e-9); err == nil {
		t.Error("no taps must fail")
	}
	if _, err := NewMemoryPolyPA([][3]complex128{{1}, {0.1}}, 0); err == nil {
		t.Error("multi-tap with tau 0 must fail")
	}
	p, err := NewMemoryPolyPA([][3]complex128{{1}}, 0)
	if err != nil || !p.Memoryless() {
		t.Error("single-tap model")
	}
	if p.Describe() == "" {
		t.Error("describe")
	}
}

func TestMemoryPolyMemorylessMatchesPolyPA(t *testing.T) {
	coef := [3]complex128{complex(1, 0.1), complex(-0.05, 0.01), complex(0.001, 0)}
	mp, _ := NewMemoryPolyPA([][3]complex128{coef}, 0)
	ref := &PolyPA{A1: coef[0], A3: coef[1], A5: coef[2]}
	env := &sig.ComplexTone{Amp: 0.8, Freq: 3e6, Phase: 0.4}
	out := mp.ApplyEnv(env)
	for _, tv := range []float64{0, 1.7e-8, 3.3e-7} {
		want := ref.Apply(env.At(tv))
		if d := cmplx.Abs(out.At(tv) - want); d > 1e-12 {
			t.Errorf("t=%g: memoryless mismatch %g", tv, d)
		}
	}
}

func TestMemoryPolyPAMemoryChangesOutput(t *testing.T) {
	// With a second tap the output at time t depends on the past.
	mp, _ := NewMemoryPolyPA([][3]complex128{
		{1, complex(-0.05, 0)},
		{complex(0.2, 0), complex(-0.01, 0)},
	}, 25e-9)
	ramp := sig.EnvelopeFunc(func(t float64) complex128 {
		if t < 0 {
			return 0
		}
		return complex(t*1e7, 0)
	})
	out := mp.ApplyEnv(ramp)
	// At t just after 0, the delayed tap still sees zero; later it doesn't.
	early := out.At(1e-9)
	if cmplx.Abs(early-complex(1e-2, 0)*complex(1, 0)) > 1e-3 {
		// x(1ns) = 0.01; delayed tap sees x(-24ns) = 0.
		t.Errorf("early output %v", early)
	}
	late := out.At(100e-9)
	direct := complex(1e-6*1e7, 0)
	if cmplx.Abs(late-direct) < 0.1*cmplx.Abs(direct) {
		t.Error("memory tap contribution not visible")
	}
}

func TestTwoToneIMD3MatchesAnalytic(t *testing.T) {
	// For the baseband-equivalent model y = x + a3 x|x|^2 with two complex
	// tones of amplitude A each: IM3 amplitude = |a3| A^3 and each
	// fundamental compresses to A (1 + 3 a3 A^2). (The familiar 3/4 factor
	// belongs to the passband x^3 form, not the envelope form.)
	a3 := -0.01
	pa := &PolyPA{A1: 1, A3: complex(a3, 0)}
	amp := 0.5
	res, err := TwoToneTest(PAChain(pa), 1e6, 1.3e6, amp, 20e6, 8192)
	if err != nil {
		t.Fatal(err)
	}
	fund := amp * math.Abs(1+3*a3*amp*amp)
	wantIMD := 20 * math.Log10(fund/(math.Abs(a3)*amp*amp*amp))
	if math.Abs(res.IMD3dBc-wantIMD) > 1.5 {
		t.Errorf("IMD3 %g dBc, analytic %g", res.IMD3dBc, wantIMD)
	}
	// OIP3 consistency.
	if math.Abs(res.OIP3DB-(res.ToneDB+res.IMD3dBc/2)) > 1e-9 {
		t.Error("OIP3 bookkeeping")
	}
	// IM5 far below IM3 for a pure third-order device.
	if res.IM5DB > res.IM3DB-20 {
		t.Errorf("IM5 %g dB implausibly high vs IM3 %g dB", res.IM5DB, res.IM3DB)
	}
}

func TestTwoToneLinearPAHasNoIMD(t *testing.T) {
	res, err := TwoToneTest(PAChain(&LinearPA{Gain: 2}), 1e6, 1.4e6, 0.5, 20e6, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.IMD3dBc < 80 {
		t.Errorf("linear PA shows IMD3 %g dBc", res.IMD3dBc)
	}
}

func TestTwoToneMemoryPAAsymmetry(t *testing.T) {
	// Memory makes the two IM3 products unequal; our result averages them,
	// so compare a memoryless model against a memory model at identical
	// nominal coefficients: IMD must differ.
	memoryless, _ := NewMemoryPolyPA([][3]complex128{{1, complex(-0.02, 0)}}, 0)
	memory, _ := NewMemoryPolyPA([][3]complex128{
		{1, complex(-0.012, 0)},
		{0, complex(-0.008, 0.004)},
	}, 100e-9)
	r1, err := TwoToneTest(memoryless.ApplyEnv, 1e6, 1.3e6, 0.5, 20e6, 8192)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TwoToneTest(memory.ApplyEnv, 1e6, 1.3e6, 0.5, 20e6, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.IMD3dBc-r2.IMD3dBc) < 0.2 {
		t.Error("memory effects invisible in IMD")
	}
}

func TestTwoToneValidation(t *testing.T) {
	ch := PAChain(&LinearPA{Gain: 1})
	if _, err := TwoToneTest(ch, 2e6, 1e6, 0.5, 20e6, 4096); err == nil {
		t.Error("f1 >= f2 must fail")
	}
	if _, err := TwoToneTest(ch, 1e6, 2e6, 0, 20e6, 4096); err == nil {
		t.Error("amp 0 must fail")
	}
	if _, err := TwoToneTest(ch, 1e6, 2e6, 0.5, 20e6, 16); err == nil {
		t.Error("too few samples must fail")
	}
	if _, err := TwoToneTest(ch, 1e6, 4.9e6, 0.5, 16e6, 4096); err == nil {
		t.Error("IM3 above Nyquist must fail")
	}
}

func TestReceiverValidationAndDemod(t *testing.T) {
	if _, err := NewReceiver(RxConfig{}); err == nil {
		t.Error("Fc=0 must fail")
	}
	if _, err := NewReceiver(RxConfig{Fc: 1e9, NoiseRMS: -1}); err == nil {
		t.Error("negative noise must fail")
	}
	rx, err := NewReceiver(RxConfig{Fc: 1e9, Gain: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A clean tone at fc + fb comes back as a complex tone at fb with
	// twice the amplitude (gain 2).
	in := &sig.Passband{Env: &sig.ComplexTone{Amp: 0.5, Freq: 3e6}, Fc: 1e9}
	bb, err := rx.SampleBaseband(in, 40e6, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Tone power at +3 MHz.
	var acc complex128
	for i, v := range bb {
		ph := -2 * math.Pi * 3e6 * float64(i) / 40e6
		s, c := math.Sincos(ph)
		acc += v * complex(c, s)
	}
	acc /= complex(float64(len(bb)), 0)
	if math.Abs(cmplx.Abs(acc)-1.0) > 0.05 {
		t.Errorf("recovered tone amplitude %g, want ~1.0", cmplx.Abs(acc))
	}
	// Sampling validation.
	if _, err := rx.SampleBaseband(in, 0, 0, 512); err == nil {
		t.Error("fs=0 must fail")
	}
	if _, err := rx.SampleBaseband(in, 40e6, 0, 4); err == nil {
		t.Error("too few samples must fail")
	}
}

func TestReceiverNoiseAndIQ(t *testing.T) {
	rx, _ := NewReceiver(RxConfig{Fc: 1e9, NoiseRMS: 0.1, Seed: 3})
	in := sig.Zero
	bb, err := rx.SampleBaseband(in, 40e6, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	var p float64
	for _, v := range bb {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p = math.Sqrt(p / float64(2*len(bb)))
	if math.Abs(p-0.1) > 0.02 {
		t.Errorf("noise rms %g, want 0.1", p)
	}
	// Rx IQ imbalance produces an image.
	rxIQ, _ := NewReceiver(RxConfig{Fc: 1e9, IQ: FromImbalanceDB(1, 6, 0)})
	tone := &sig.Passband{Env: &sig.ComplexTone{Amp: 1, Freq: 4e6}, Fc: 1e9}
	bb2, err := rxIQ.SampleBaseband(tone, 40e6, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(f float64) float64 {
		var acc complex128
		for i, v := range bb2 {
			ph := -2 * math.Pi * f * float64(i) / 40e6
			s, c := math.Sincos(ph)
			acc += v * complex(c, s)
		}
		return cmplx.Abs(acc) / float64(len(bb2))
	}
	irr := 20 * math.Log10(probe(4e6)/probe(-4e6))
	want := FromImbalanceDB(1, 6, 0).ImageRejectionDB()
	if math.Abs(irr-want) > 1.5 {
		t.Errorf("Rx IRR %g dB vs analytic %g", irr, want)
	}
}
