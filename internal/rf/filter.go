package rf

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/sig"
)

// AnalogFIR is a continuous-time FIR operating on envelopes: a tapped delay
// line with tap spacing Dt seconds,
//
//	y(t) = sum_k h[k] x(t - k Dt),
//
// used to model the transmitter's baseband reconstruction lowpass after the
// DAC. Because it is evaluated analytically it composes with the arbitrary-
// instant sampling required by nonuniform capture.
type AnalogFIR struct {
	Taps []float64
	Dt   float64
}

// NewAnalogLowpass designs a continuous lowpass with -6 dB cutoff fc (Hz)
// realised as an FIR with tap spacing dt = 1/fsTap and attenuation attenDB.
func NewAnalogLowpass(fc, fsTap, attenDB float64) (*AnalogFIR, error) {
	if fc <= 0 || fsTap <= 0 {
		return nil, fmt.Errorf("rf: analog lowpass needs positive fc/fsTap, got %g/%g", fc, fsTap)
	}
	cutoff := fc / fsTap
	if cutoff >= 0.5 {
		return nil, fmt.Errorf("rf: analog lowpass cutoff %g Hz not below fsTap/2 = %g", fc, fsTap/2)
	}
	beta := dsp.KaiserBeta(attenDB)
	// Transition width: a quarter of the cutoff, bounded for sanity.
	tw := cutoff / 4
	if tw < 0.01 {
		tw = 0.01
	}
	n := dsp.KaiserOrder(attenDB, tw) | 1 // odd length for integer group delay
	f, err := dsp.DesignLowpass(n, cutoff, dsp.KaiserWin, beta)
	if err != nil {
		return nil, err
	}
	return &AnalogFIR{Taps: f.Taps, Dt: 1 / fsTap}, nil
}

// GroupDelay returns the filter delay in seconds.
func (f *AnalogFIR) GroupDelay() float64 {
	return float64(len(f.Taps)-1) / 2 * f.Dt
}

// ApplyEnv filters an envelope. The output is advanced by the group delay so
// the filtered waveform stays time-aligned with its input.
func (f *AnalogFIR) ApplyEnv(env sig.Envelope) sig.Envelope {
	gd := f.GroupDelay()
	taps := f.Taps
	dt := f.Dt
	return sig.EnvelopeFunc(func(t float64) complex128 {
		var acc complex128
		base := t + gd
		for k, h := range taps {
			acc += env.At(base-float64(k)*dt) * complex(h, 0)
		}
		return acc
	})
}

// ResponseAt returns the filter's magnitude response (linear) at frequency
// f Hz.
func (f *AnalogFIR) ResponseAt(freq float64) float64 {
	var re, im float64
	for k, h := range f.Taps {
		phi := -2 * math.Pi * freq * float64(k) * f.Dt
		s, c := math.Sincos(phi)
		re += h * c
		im += h * s
	}
	return math.Hypot(re, im)
}

// ZOH models the zero-order hold of a DAC running at rate Fs: the envelope
// is frozen at the most recent DAC update instant. Combined with an
// AnalogFIR reconstruction filter it reproduces DAC sinc droop and images.
type ZOH struct {
	Fs float64
}

// ApplyEnv implements the hold.
func (z *ZOH) ApplyEnv(env sig.Envelope) sig.Envelope {
	ts := 1 / z.Fs
	return sig.EnvelopeFunc(func(t float64) complex128 {
		return env.At(math.Floor(t/ts) * ts)
	})
}
