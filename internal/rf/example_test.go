package rf_test

import (
	"fmt"

	"repro/internal/rf"
	"repro/internal/sig"
)

// Compose the paper's homodyne transmitter with typical impairments.
func ExampleNewTransmitter() {
	pa, err := rf.NewRappPA(1, 1.0, 2)
	if err != nil {
		panic(err)
	}
	tx, err := rf.NewTransmitter(rf.TxConfig{
		Fc: 1e9,
		IQ: rf.FromImbalanceDB(0.5, 3, 0),
		PA: pa,
	}, &sig.ComplexTone{Amp: 0.3, Freq: 5e6})
	if err != nil {
		panic(err)
	}
	fmt.Println("carrier:", tx.Fc())
	fmt.Printf("IRR: %.1f dB\n", rf.FromImbalanceDB(0.5, 3, 0).ImageRejectionDB())
	// Output:
	// carrier: 1e+09
	// IRR: 28.2 dB
}

// The P1dB compression point of a Rapp PA.
func ExampleInputP1dB() {
	pa, _ := rf.NewRappPA(10, 1, 2)
	p1 := rf.InputP1dB(pa)
	fmt.Println("compresses:", p1 > 0)
	// Output: compresses: true
}

// Two-tone intermodulation on a third-order nonlinearity.
func ExampleTwoToneTest() {
	pa := &rf.PolyPA{A1: 1, A3: complex(-0.01, 0)}
	res, err := rf.TwoToneTest(rf.PAChain(pa), 1e6, 1.3e6, 0.5, 20e6, 4096)
	if err != nil {
		panic(err)
	}
	fmt.Println("IMD3 within 3 dB of 52 dBc:", res.IMD3dBc > 49 && res.IMD3dBc < 55)
	// Output: IMD3 within 3 dB of 52 dBc: true
}
