package rf

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/sig"
)

func TestLinearPA(t *testing.T) {
	p := &LinearPA{Gain: 2i}
	if p.Apply(complex(1, 1)) != complex(-2, 2) {
		t.Error("linear gain")
	}
	if p.Describe() == "" {
		t.Error("describe")
	}
}

func TestRappPASmallSignalAndSaturation(t *testing.T) {
	p, err := NewRappPA(10, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Small signal: gain ~ 10.
	in := complex(1e-4, 0)
	if g := cmplx.Abs(p.Apply(in)) / cmplx.Abs(in); math.Abs(g-10) > 1e-3 {
		t.Errorf("small-signal gain %g", g)
	}
	// Deep saturation: output clamps to Vsat.
	if out := cmplx.Abs(p.Apply(complex(100, 0))); math.Abs(out-1) > 1e-2 {
		t.Errorf("saturated output %g, want ~1", out)
	}
	// Monotone non-decreasing output amplitude.
	prev := -1.0
	for r := 0.001; r < 10; r *= 1.3 {
		out := cmplx.Abs(p.Apply(complex(r, 0)))
		if out < prev-1e-12 {
			t.Errorf("non-monotonic at %g", r)
		}
		prev = out
	}
	// Phase preserved (pure AM/AM).
	v := p.Apply(cmplx.Exp(complex(0, 1.1)) * 3)
	if d := math.Abs(math.Atan2(imag(v), real(v)) - 1.1); d > 1e-12 {
		t.Errorf("Rapp altered phase by %g", d)
	}
	if p.Apply(0) != 0 {
		t.Error("zero in, zero out")
	}
}

func TestRappPAValidation(t *testing.T) {
	for _, bad := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if _, err := NewRappPA(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewRappPA%v should fail", bad)
		}
	}
}

func TestSalehPADefaultsAndAMPM(t *testing.T) {
	p := NewSalehPA(0, 0, 0, 0)
	if p.AlphaA != 2.1587 {
		t.Error("canonical defaults not applied")
	}
	// AM/PM: phase rotation grows with amplitude.
	phi := func(r float64) float64 {
		v := p.Apply(complex(r, 0))
		return math.Atan2(imag(v), real(v))
	}
	if !(phi(0.9) > phi(0.3) && phi(0.3) > phi(0.05)) {
		t.Errorf("AM/PM not increasing: %g %g %g", phi(0.05), phi(0.3), phi(0.9))
	}
	// AM/AM peaks at r = 1/sqrt(betaA) then compresses.
	rPeak := 1 / math.Sqrt(p.BetaA)
	aPeak := cmplx.Abs(p.Apply(complex(rPeak, 0)))
	if cmplx.Abs(p.Apply(complex(3*rPeak, 0))) >= aPeak {
		t.Error("Saleh does not compress past the peak")
	}
	if p.Apply(0) != 0 {
		t.Error("zero in, zero out")
	}
	custom := NewSalehPA(1, 2, 3, 4)
	if custom.BetaP != 4 {
		t.Error("custom params")
	}
	if p.Describe() == "" || custom.Describe() == "" {
		t.Error("describe")
	}
}

func TestPolyPAThirdOrder(t *testing.T) {
	// Pure third-order: two-tone input should generate IM3 — verified here
	// via the amplitude dependence y(r) = a1 r + a3 r^3.
	p := &PolyPA{A1: 1, A3: complex(-0.1, 0)}
	for _, r := range []float64{0.1, 0.5, 1} {
		want := r - 0.1*r*r*r
		if got := real(p.Apply(complex(r, 0))); math.Abs(got-want) > 1e-12 {
			t.Errorf("r=%g: %g, want %g", r, got, want)
		}
	}
	if p.Describe() == "" {
		t.Error("describe")
	}
}

func TestInputP1dB(t *testing.T) {
	p, _ := NewRappPA(10, 1, 2)
	r1 := InputP1dB(p)
	if r1 <= 0 {
		t.Fatal("no compression point found")
	}
	// At the returned amplitude the gain must be 1 dB below small signal.
	gSmall := GainAt(p, 1e-6)
	gAt := GainAt(p, r1)
	dB := 10 * math.Log10(gSmall/gAt)
	if math.Abs(dB-1) > 0.01 {
		t.Errorf("compression at P1dB point = %g dB", dB)
	}
	// A linear PA never compresses.
	if InputP1dB(&LinearPA{Gain: 3}) != 0 {
		t.Error("linear PA should report no P1dB")
	}
	if GainAt(p, 0) != 0 {
		t.Error("GainAt(0)")
	}
}

func TestApplyPAOnEnvelope(t *testing.T) {
	p, _ := NewRappPA(2, 1, 2)
	env := sig.EnvelopeFunc(func(t float64) complex128 { return complex(t, 0) })
	out := ApplyPA(p, env)
	if out.At(0.1) != p.Apply(complex(0.1, 0)) {
		t.Error("envelope lift mismatch")
	}
}

func TestRappOutputNeverExceedsVsatProperty(t *testing.T) {
	p, _ := NewRappPA(5, 0.7, 1.5)
	f := func(re, im float64) bool {
		if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
			return true
		}
		out := cmplx.Abs(p.Apply(complex(re, im)))
		return out <= 0.7*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
