package rf

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dsp"
	"repro/internal/sig"
)

func TestPerfectModulatorIsIdentity(t *testing.T) {
	q := Perfect()
	if q.Alpha() != 1 || q.Beta() != 0 {
		t.Errorf("alpha %v beta %v", q.Alpha(), q.Beta())
	}
	v := complex(0.3, -0.7)
	if q.Apply(v) != v {
		t.Error("perfect modulator altered the signal")
	}
	if q.ImageRejectionDB() != 400 {
		t.Error("perfect IRR should clamp at 400")
	}
}

func TestIQImbalanceImageLevel(t *testing.T) {
	// 1 dB gain imbalance, 5 degrees phase: a classic moderate impairment.
	q := FromImbalanceDB(1, 5, 0)
	irr := q.ImageRejectionDB()
	// Textbook IRR for (1 dB, 5 deg) is ~20-21 dB.
	if irr < 18 || irr > 24 {
		t.Errorf("IRR = %g dB, want ~21", irr)
	}
	// Energy check: |alpha|^2 + |beta|^2 ~ (1+g^2)/2.
	a2 := cmplx.Abs(q.Alpha()) * cmplx.Abs(q.Alpha())
	b2 := cmplx.Abs(q.Beta()) * cmplx.Abs(q.Beta())
	g := q.GainRatio
	if math.Abs(a2+b2-(1+g*g)/2) > 1e-12 {
		t.Errorf("coefficient energy %g", a2+b2)
	}
}

func TestIQImbalanceCreatesImageTone(t *testing.T) {
	// A +f0 complex tone through an imbalanced modulator must grow a -f0
	// image exactly beta/alpha below the direct tone.
	q := FromImbalanceDB(0.5, 3, 0)
	f0 := 1e6
	env := q.ApplyEnv(&sig.ComplexTone{Amp: 1, Freq: f0})
	fs := 16e6
	n := 4096
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = env.At(float64(i) / fs)
	}
	direct := complexTonePower(xs, f0/fs)
	image := complexTonePower(xs, -f0/fs)
	gotIRR := 10 * math.Log10(direct/image)
	if math.Abs(gotIRR-q.ImageRejectionDB()) > 0.5 {
		t.Errorf("measured IRR %g dB vs analytic %g dB", gotIRR, q.ImageRejectionDB())
	}
}

// complexTonePower estimates |X(nu)|^2 normalised for a complex sequence.
func complexTonePower(x []complex128, nu float64) float64 {
	var acc complex128
	for i, v := range x {
		phi := -2 * math.Pi * nu * float64(i)
		s, c := math.Sincos(phi)
		acc += v * complex(c, s)
	}
	acc /= complex(float64(len(x)), 0)
	return real(acc)*real(acc) + imag(acc)*imag(acc)
}

func TestLOLeakageAddsDC(t *testing.T) {
	q := &IQImbalance{GainRatio: 1, LOLeakage: complex(0.05, 0.02)}
	if q.Apply(0) != complex(0.05, 0.02) {
		t.Error("leakage not added")
	}
}

func TestPhaseNoiseMaskRealisation(t *testing.T) {
	offsets := []float64{1e4, 1e5, 1e6, 1e7}
	mask := []float64{-80, -95, -115, -130}
	pn, err := NewPhaseNoise(offsets, mask, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	rms := pn.RMSRadians()
	if rms <= 0 || rms > 0.3 {
		t.Errorf("integrated phase noise %g rad implausible", rms)
	}
	// Time-domain RMS must match the analytic sum.
	fs := 50e6
	n := 1 << 14
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = pn.Phi(float64(i) / fs)
	}
	if got := dsp.RMS(xs); math.Abs(got-rms)/rms > 0.25 {
		t.Errorf("time-domain rms %g vs analytic %g", got, rms)
	}
}

func TestPhaseNoiseValidation(t *testing.T) {
	if _, err := NewPhaseNoise([]float64{1e3}, []float64{-80}, 10, 1); err == nil {
		t.Error("single point must fail")
	}
	if _, err := NewPhaseNoise([]float64{1e4, 1e3}, []float64{-80, -90}, 10, 1); err == nil {
		t.Error("non-increasing offsets must fail")
	}
	if _, err := NewPhaseNoise([]float64{0, 1e3}, []float64{-80, -90}, 10, 1); err == nil {
		t.Error("zero offset must fail")
	}
	pn, err := NewPhaseNoise([]float64{1e3, 1e6}, []float64{-90, -120}, 0, 1)
	if err != nil || len(pn.freqs) != 64 {
		t.Error("nTones default")
	}
}

func TestPhaseNoisePreservesMagnitude(t *testing.T) {
	pn, _ := NewPhaseNoise([]float64{1e4, 1e6}, []float64{-80, -110}, 64, 5)
	env := pn.ApplyEnv(&sig.ComplexTone{Amp: 2, Freq: 1e5})
	for _, tv := range []float64{0, 1e-7, 3.3e-6} {
		if d := math.Abs(cmplx.Abs(env.At(tv)) - 2); d > 1e-12 {
			t.Errorf("phase noise altered magnitude by %g", d)
		}
	}
}

func TestInterpMaskDB(t *testing.T) {
	off := []float64{1e3, 1e5}
	db := []float64{-60, -100}
	if v := interpMaskDB(off, db, 1e2); v != -60 {
		t.Error("below range")
	}
	if v := interpMaskDB(off, db, 1e6); v != -100 {
		t.Error("above range")
	}
	if v := interpMaskDB(off, db, 1e4); math.Abs(v-(-80)) > 1e-9 {
		t.Errorf("log midpoint %g, want -80", v)
	}
}
