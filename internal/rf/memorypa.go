package rf

import (
	"fmt"

	"repro/internal/sig"
)

// MemoryPolyPA is a memory-polynomial (pruned Volterra) PA model:
//
//	y(t) = sum_{q=0}^{Q} sum_{p in {1,3,5}} a[q][p] x(t - q tau) |x(t - q tau)|^(p-1)
//
// the industry-standard behavioural model for PAs whose bias networks and
// matching introduce memory: spectral regrowth becomes asymmetric and
// cannot be captured by a memoryless AM/AM curve. It operates on the
// complex envelope like the other PA models but, because it needs delayed
// input samples, it lifts whole envelopes rather than single values.
type MemoryPolyPA struct {
	// Taps[q] holds the complex coefficients {a1, a3, a5} for delay q.
	Taps [][3]complex128
	// Tau is the memory tap spacing in seconds.
	Tau float64
}

// NewMemoryPolyPA validates the model.
func NewMemoryPolyPA(taps [][3]complex128, tau float64) (*MemoryPolyPA, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("rf: memory PA needs at least one tap")
	}
	if len(taps) > 1 && tau <= 0 {
		return nil, fmt.Errorf("rf: memory PA with %d taps needs a positive tau", len(taps))
	}
	return &MemoryPolyPA{Taps: taps, Tau: tau}, nil
}

// Apply implements the PA interface with the model's memoryless core (the
// q = 0 tap polynomial). A single value cannot carry the delayed-input
// history, so this is exact only for Memoryless() models; NewTransmitter
// detects the EnvelopePA capability and routes whole envelopes through
// ApplyEnv, which evaluates the full memory structure.
func (p *MemoryPolyPA) Apply(v complex128) complex128 {
	c := p.Taps[0]
	r2 := real(v)*real(v) + imag(v)*imag(v)
	return v * (c[0] + c[1]*complex(r2, 0) + c[2]*complex(r2*r2, 0))
}

// ApplyEnv lifts the model to a whole envelope.
func (p *MemoryPolyPA) ApplyEnv(env sig.Envelope) sig.Envelope {
	taps := p.Taps
	tau := p.Tau
	return sig.EnvelopeFunc(func(t float64) complex128 {
		var acc complex128
		for q, c := range taps {
			x := env.At(t - float64(q)*tau)
			r2 := real(x)*real(x) + imag(x)*imag(x)
			acc += x * (c[0] + c[1]*complex(r2, 0) + c[2]*complex(r2*r2, 0))
		}
		return acc
	})
}

// Memoryless reports whether the model degenerates to a single tap.
func (p *MemoryPolyPA) Memoryless() bool { return len(p.Taps) == 1 }

// Describe matches the PA interface convention for reports.
func (p *MemoryPolyPA) Describe() string {
	return fmt.Sprintf("memory-poly(%d taps, tau=%.3g s)", len(p.Taps), p.Tau)
}
