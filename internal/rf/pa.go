// Package rf implements the behavioural model of the homodyne transmitter
// that the BIST observes (paper Fig. 1): IQ modulator impairments, local
// oscillator phase noise and leakage, analog reconstruction filtering, DAC
// zero-order hold and power-amplifier nonlinearities. All blocks operate on
// the baseband-equivalent complex envelope (standard passband behavioural
// modelling), and the composed transmitter exposes the RF output as a
// continuous-time signal evaluable at arbitrary instants.
package rf

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/sig"
)

// PA is a memoryless power-amplifier model acting on the complex envelope.
// Memoryless baseband nonlinearities capture AM/AM and AM/PM conversion,
// the mechanisms behind spectral regrowth at the PA output.
type PA interface {
	// Apply maps an instantaneous input envelope value to the output.
	Apply(v complex128) complex128
	// Describe returns a short human-readable model description.
	Describe() string
}

// LinearPA is an ideal amplifier with a fixed complex gain.
type LinearPA struct {
	Gain complex128
}

// Apply implements PA.
func (p *LinearPA) Apply(v complex128) complex128 { return p.Gain * v }

// Describe implements PA.
func (p *LinearPA) Describe() string { return fmt.Sprintf("linear(gain=%v)", p.Gain) }

// RappPA is the Rapp solid-state PA model: pure AM/AM compression
//
//	|y| = G r / (1 + (G r / Vsat)^(2S))^(1/(2S))
//
// with smoothness S and output saturation Vsat. Phase is preserved.
type RappPA struct {
	Gain       float64 // small-signal gain
	Vsat       float64 // output saturation amplitude
	Smoothness float64 // knee sharpness S (typ. 1..3)
}

// NewRappPA validates and builds a Rapp model.
func NewRappPA(gain, vsat, smoothness float64) (*RappPA, error) {
	if gain <= 0 || vsat <= 0 || smoothness <= 0 {
		return nil, fmt.Errorf("rf: Rapp PA needs positive gain/vsat/smoothness, got %g/%g/%g",
			gain, vsat, smoothness)
	}
	return &RappPA{Gain: gain, Vsat: vsat, Smoothness: smoothness}, nil
}

// Apply implements PA.
func (p *RappPA) Apply(v complex128) complex128 {
	r := cmplx.Abs(v)
	if r == 0 {
		return 0
	}
	g := p.Gain * r
	den := math.Pow(1+math.Pow(g/p.Vsat, 2*p.Smoothness), 1/(2*p.Smoothness))
	return v * complex(p.Gain/den, 0)
}

// Describe implements PA.
func (p *RappPA) Describe() string {
	return fmt.Sprintf("rapp(G=%.3g, Vsat=%.3g, S=%.3g)", p.Gain, p.Vsat, p.Smoothness)
}

// SalehPA is the Saleh travelling-wave-tube model with both AM/AM and AM/PM:
//
//	A(r) = aA r / (1 + bA r^2),  Phi(r) = aP r^2 / (1 + bP r^2).
type SalehPA struct {
	AlphaA, BetaA float64
	AlphaP, BetaP float64
}

// NewSalehPA builds the classic Saleh model; the canonical parameter set
// (2.1587, 1.1517, 4.0033, 9.1040) is used when all arguments are zero.
func NewSalehPA(aA, bA, aP, bP float64) *SalehPA {
	if aA == 0 && bA == 0 && aP == 0 && bP == 0 {
		return &SalehPA{AlphaA: 2.1587, BetaA: 1.1517, AlphaP: 4.0033, BetaP: 9.1040}
	}
	return &SalehPA{AlphaA: aA, BetaA: bA, AlphaP: aP, BetaP: bP}
}

// Apply implements PA.
func (p *SalehPA) Apply(v complex128) complex128 {
	r := cmplx.Abs(v)
	if r == 0 {
		return 0
	}
	amp := p.AlphaA * r / (1 + p.BetaA*r*r)
	phi := p.AlphaP * r * r / (1 + p.BetaP*r*r)
	theta := math.Atan2(imag(v), real(v)) + phi
	s, c := math.Sincos(theta)
	return complex(amp*c, amp*s)
}

// Describe implements PA.
func (p *SalehPA) Describe() string {
	return fmt.Sprintf("saleh(aA=%.3g, bA=%.3g, aP=%.3g, bP=%.3g)",
		p.AlphaA, p.BetaA, p.AlphaP, p.BetaP)
}

// PolyPA is an odd-order baseband polynomial model
// y = a1 v + a3 v |v|^2 + a5 v |v|^4 with complex coefficients, the standard
// form for fitting measured AM/AM-AM/PM curves.
type PolyPA struct {
	A1, A3, A5 complex128
}

// Apply implements PA.
func (p *PolyPA) Apply(v complex128) complex128 {
	r2 := real(v)*real(v) + imag(v)*imag(v)
	return v * (p.A1 + p.A3*complex(r2, 0) + p.A5*complex(r2*r2, 0))
}

// Describe implements PA.
func (p *PolyPA) Describe() string {
	return fmt.Sprintf("poly(a1=%v, a3=%v, a5=%v)", p.A1, p.A3, p.A5)
}

// EnvelopePA marks PA models whose output depends on the input history
// (memory effects): they lift whole envelopes instead of single values.
// ApplyPA dispatches on this capability, so a MemoryPolyPA plugged into
// TxConfig.PA exercises its full memory structure.
type EnvelopePA interface {
	PA
	ApplyEnv(env sig.Envelope) sig.Envelope
}

// ApplyPA lifts a PA model to a whole envelope, routing memory models
// through their envelope-level implementation.
func ApplyPA(p PA, env sig.Envelope) sig.Envelope {
	if ep, ok := p.(EnvelopePA); ok {
		return ep.ApplyEnv(env)
	}
	return sig.EnvelopeFunc(func(t float64) complex128 { return p.Apply(env.At(t)) })
}

// GainAt returns the power gain (output/input, linear) of the PA at input
// amplitude r.
func GainAt(p PA, r float64) float64 {
	if r <= 0 {
		return 0
	}
	out := cmplx.Abs(p.Apply(complex(r, 0)))
	return (out / r) * (out / r)
}

// InputP1dB searches for the input amplitude at which the PA gain has
// compressed by 1 dB from its small-signal value. It returns 0 when the
// model never compresses within the searched range.
func InputP1dB(p PA) float64 {
	small := GainAt(p, 1e-6)
	if small <= 0 {
		return 0
	}
	target := small * math.Pow(10, -0.1) // -1 dB
	lo, hi := 1e-6, 1e6
	if GainAt(p, hi) > target {
		return 0
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if GainAt(p, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
