package rf

import (
	"fmt"
	"math"

	"repro/internal/sig"
)

// TwoToneResult summarises a two-tone intermodulation measurement.
type TwoToneResult struct {
	// ToneDB is the mean power of the two fundamentals (dB, arbitrary ref).
	ToneDB float64
	// IM3DB is the mean power of the two third-order products
	// (2f1 - f2, 2f2 - f1).
	IM3DB float64
	// IM5DB is the mean power of the two fifth-order products.
	IM5DB float64
	// IMD3dBc is the classic figure: fundamental minus IM3.
	IMD3dBc float64
	// OIP3DB is the extrapolated output third-order intercept
	// (tone + IMD3/2) in the same arbitrary reference.
	OIP3DB float64
}

// TwoToneTest drives a PA-bearing envelope chain with two equal tones at
// baseband offsets f1 and f2 (f1 < f2) of amplitude amp each and measures
// the intermodulation products on the output envelope, using a windowed
// DTFT over an observation of nSamples at rate fs.
func TwoToneTest(chain func(sig.Envelope) sig.Envelope, f1, f2, amp, fs float64, nSamples int) (*TwoToneResult, error) {
	if f1 >= f2 {
		return nil, fmt.Errorf("rf: two-tone test needs f1 < f2, got %g, %g", f1, f2)
	}
	if amp <= 0 || fs <= 0 || nSamples < 256 {
		return nil, fmt.Errorf("rf: two-tone test bad parameters (amp %g, fs %g, n %d)", amp, fs, nSamples)
	}
	need := 2*f2 - f1
	if need >= fs/2 {
		return nil, fmt.Errorf("rf: fs %g too low to observe IM3 at %g", fs, need)
	}
	input := sig.EnvSum{
		&sig.ComplexTone{Amp: amp, Freq: f1},
		&sig.ComplexTone{Amp: amp, Freq: f2, Phase: 0.7},
	}
	out := chain(input)
	xs := make([]complex128, nSamples)
	for i := range xs {
		xs[i] = out.At(float64(i) / fs)
	}
	mag := func(f float64) float64 {
		var acc complex128
		var gain float64
		for i, v := range xs {
			w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(nSamples-1))
			phi := -2 * math.Pi * f / fs * float64(i)
			s, c := math.Sincos(phi)
			acc += v * complex(w*c, w*s)
			gain += w
		}
		return math.Hypot(real(acc), imag(acc)) / gain
	}
	db := func(a float64) float64 {
		if a <= 0 {
			return -400
		}
		return 20 * math.Log10(a)
	}
	tone := (mag(f1) + mag(f2)) / 2
	im3 := (mag(2*f1-f2) + mag(2*f2-f1)) / 2
	im5 := (mag(3*f1-2*f2) + mag(3*f2-2*f1)) / 2
	res := &TwoToneResult{
		ToneDB: db(tone),
		IM3DB:  db(im3),
		IM5DB:  db(im5),
	}
	res.IMD3dBc = res.ToneDB - res.IM3DB
	res.OIP3DB = res.ToneDB + res.IMD3dBc/2
	return res, nil
}

// PAChain adapts a memoryless PA to the envelope-chain signature used by
// TwoToneTest.
func PAChain(p PA) func(sig.Envelope) sig.Envelope {
	return func(env sig.Envelope) sig.Envelope { return ApplyPA(p, env) }
}
