package rf

import (
	"math"
	"testing"

	"repro/internal/sig"
)

// TestPhaseNoiseRMSMatchesTimeAverage: the analytic RMSRadians (sum of tone
// powers) must agree with a long time average of Phi^2 — the tones are
// incoherent, so cross terms average out.
func TestPhaseNoiseRMSMatchesTimeAverage(t *testing.T) {
	pn, err := NewPhaseNoise([]float64{1e4, 1e6}, []float64{-70, -90}, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := pn.RMSRadians()
	n := 200000
	dt := 1e-7 // 20 ms span: ~200 periods of the slowest tone
	var acc float64
	for i := 0; i < n; i++ {
		v := pn.Phi(float64(i) * dt)
		acc += v * v
	}
	got := math.Sqrt(acc / float64(n))
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("time-averaged RMS %g vs analytic %g", got, want)
	}
}

// TestPhaseNoiseDefaultTones: nTones < 2 must fall back to the 64-tone
// default rather than building a degenerate process.
func TestPhaseNoiseDefaultTones(t *testing.T) {
	pn, err := NewPhaseNoise([]float64{1e4, 1e6}, []float64{-70, -90}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pn.freqs) != 64 {
		t.Errorf("default tone count %d, want 64", len(pn.freqs))
	}
}

// TestPhaseNoiseApplyEnvRotation: ApplyEnv must rotate the envelope by
// exactly Phi(t) without changing its magnitude.
func TestPhaseNoiseApplyEnvRotation(t *testing.T) {
	pn, err := NewPhaseNoise([]float64{1e4, 1e5}, []float64{-40, -60}, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	env := sig.EnvelopeFunc(func(t float64) complex128 { return complex(0.7, -0.2) })
	rot := pn.ApplyEnv(env)
	for _, tv := range []float64{0, 1.3e-6, 7.7e-5} {
		phi := pn.Phi(tv)
		s, c := math.Sincos(phi)
		want := env.At(tv) * complex(c, s)
		got := rot.At(tv)
		if d := got - want; math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Errorf("t=%g: rotated %v, want %v", tv, got, want)
		}
	}
}

// TestInterpMaskDBClamps: outside the specified offsets the mask clamps to
// its end values; inside it interpolates monotonically in log-f.
func TestInterpMaskDBClamps(t *testing.T) {
	offsets := []float64{1e4, 1e5, 1e6}
	levels := []float64{-60, -80, -100}
	if got := interpMaskDB(offsets, levels, 1e3); got != -60 {
		t.Errorf("below-range clamp %g, want -60", got)
	}
	if got := interpMaskDB(offsets, levels, 1e7); got != -100 {
		t.Errorf("above-range clamp %g, want -100", got)
	}
	// Log-midpoint of [1e4, 1e5] is sqrt(1e4*1e5): exactly half-way in dB.
	if got := interpMaskDB(offsets, levels, math.Sqrt(1e4*1e5)); math.Abs(got+70) > 1e-9 {
		t.Errorf("log-midpoint %g, want -70", got)
	}
	if got := interpMaskDB(offsets, levels, 1e5); got != -80 {
		t.Errorf("knot value %g, want -80", got)
	}
}
