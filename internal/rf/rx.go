package rf

import (
	"fmt"
	"math"

	"repro/internal/sig"
)

// RxConfig describes a simple homodyne receiver used for loopback testing
// (paper Fig. 1, lower half): LNA gain, downconversion at the shared LO,
// baseband noise and its own IQ imbalance. The paper's Section I criticises
// loopback BIST for fault masking — "a (non-catastrophic) failure of the Tx
// is covered up by an exceptionally good Rx"; this model makes that
// argument executable.
type RxConfig struct {
	// Fc is the downconversion LO frequency (shared with the Tx in
	// loopback).
	Fc float64
	// Gain is the front-end voltage gain (0 = 1).
	Gain float64
	// NoiseRMS is the input-referred baseband noise per I/Q rail (volts rms
	// at the sampling instants).
	NoiseRMS float64
	// IQ models the receiver's own quadrature imbalance (nil = perfect).
	IQ *IQImbalance
	// Seed drives the noise.
	Seed int64
}

// Receiver downconverts an RF signal to a complex baseband envelope.
type Receiver struct {
	cfg RxConfig
}

// NewReceiver validates the configuration.
func NewReceiver(cfg RxConfig) (*Receiver, error) {
	if cfg.Fc <= 0 {
		return nil, fmt.Errorf("rf: receiver needs a positive LO, got %g", cfg.Fc)
	}
	if cfg.NoiseRMS < 0 {
		return nil, fmt.Errorf("rf: receiver noise must be non-negative")
	}
	if cfg.Gain == 0 {
		cfg.Gain = 1
	}
	return &Receiver{cfg: cfg}, nil
}

// DemodEnvelope returns the receiver's baseband output as a continuous
// envelope: ideal quadrature mixing of the RF input (the 2 fc image is the
// caller's filtering concern, exactly as with sig.Downconvert), through the
// receiver's gain and IQ imbalance. Noise is added at sampling time by
// SampleBaseband, not here, so the envelope itself stays deterministic.
func (rx *Receiver) DemodEnvelope(in sig.Signal) sig.Envelope {
	base := sig.Downconvert(in, rx.cfg.Fc)
	g := complex(rx.cfg.Gain, 0)
	env := sig.EnvelopeFunc(func(t float64) complex128 { return g * base.At(t) })
	if rx.cfg.IQ != nil {
		return rx.cfg.IQ.ApplyEnv(env)
	}
	return env
}

// SampleBaseband acquires n complex baseband samples at rate fs starting at
// t0, applying an anti-image lowpass (the Rx channel filter) and the
// receiver noise. This is the signal the modem sees in loopback.
func (rx *Receiver) SampleBaseband(in sig.Signal, fs, t0 float64, n int) ([]complex128, error) {
	if fs <= 0 || n < 16 {
		return nil, fmt.Errorf("rf: receiver sampling needs fs > 0 and n >= 16")
	}
	env := rx.DemodEnvelope(in)
	// Oversample and filter away the 2 fc image, like any real channel
	// filter would; factor chosen so the image aliases out of band.
	over := 4
	for ; over <= 12; over++ {
		img := math.Mod(2*rx.cfg.Fc, fs*float64(over))
		if img > fs*float64(over)/2 {
			img = fs*float64(over) - img
		}
		if img > 0.6*fs {
			break
		}
	}
	if over > 12 {
		return nil, fmt.Errorf("rf: no oversampling factor separates the Rx 2fc image")
	}
	raw := make([]complex128, n*over)
	for i := range raw {
		raw[i] = env.At(t0 + float64(i)/(fs*float64(over)))
	}
	lp, err := lowpassForDecimation(over)
	if err != nil {
		return nil, err
	}
	out := lp.Decimate(raw, over)[:n]
	if rx.cfg.NoiseRMS > 0 {
		rng := newSeededNorm(rx.cfg.Seed)
		for i := range out {
			out[i] += complex(rx.cfg.NoiseRMS*rng(), rx.cfg.NoiseRMS*rng())
		}
	}
	return out, nil
}
