package rf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sig"
)

// PhaseNoise models local-oscillator phase noise as a sum of random-phase
// sinusoidal phase modulations whose amplitudes realise a target single-
// sideband PSD L(f) specified in dBc/Hz at given frequency offsets. Between
// the specification points the PSD is interpolated log-log, the classical
// piecewise-linear phase-noise mask.
type PhaseNoise struct {
	freqs  []float64
	amps   []float64 // peak phase deviation per tone, radians
	phases []float64
}

// NewPhaseNoise builds a phase-noise process from a mask of (offset Hz,
// dBc/Hz) points, realised with nTones log-spaced tones between the first
// and last offsets. For small phase deviations, a tone of peak deviation
// b at offset f contributes L(f) = (b/2)^2 / bin to the SSB PSD; the tone
// amplitudes integrate the mask over each log-spaced bin.
func NewPhaseNoise(offsets, dBcHz []float64, nTones int, seed int64) (*PhaseNoise, error) {
	if len(offsets) != len(dBcHz) || len(offsets) < 2 {
		return nil, fmt.Errorf("rf: phase noise mask needs >= 2 matching points, got %d/%d",
			len(offsets), len(dBcHz))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			return nil, fmt.Errorf("rf: phase noise offsets must increase")
		}
	}
	if offsets[0] <= 0 {
		return nil, fmt.Errorf("rf: phase noise offsets must be positive")
	}
	if nTones < 2 {
		nTones = 64
	}
	rng := rand.New(rand.NewSource(seed))
	pn := &PhaseNoise{
		freqs:  make([]float64, nTones),
		amps:   make([]float64, nTones),
		phases: make([]float64, nTones),
	}
	logLo := math.Log(offsets[0])
	logHi := math.Log(offsets[len(offsets)-1])
	for i := 0; i < nTones; i++ {
		l0 := logLo + (logHi-logLo)*float64(i)/float64(nTones)
		l1 := logLo + (logHi-logLo)*float64(i+1)/float64(nTones)
		f := math.Exp((l0 + l1) / 2)
		binW := math.Exp(l1) - math.Exp(l0)
		lf := interpMaskDB(offsets, dBcHz, f)
		// SSB power in the bin: 10^(L/10) * binW; tone phase deviation b
		// satisfies (b/2)^2 = bin power (two sidebands carry b^2/4 each).
		p := math.Pow(10, lf/10) * binW
		pn.freqs[i] = f
		pn.amps[i] = 2 * math.Sqrt(p)
		pn.phases[i] = 2 * math.Pi * rng.Float64()
	}
	return pn, nil
}

// interpMaskDB interpolates the mask in dB over log-frequency.
func interpMaskDB(offsets, dBcHz []float64, f float64) float64 {
	if f <= offsets[0] {
		return dBcHz[0]
	}
	n := len(offsets)
	if f >= offsets[n-1] {
		return dBcHz[n-1]
	}
	for i := 1; i < n; i++ {
		if f <= offsets[i] {
			x0, x1 := math.Log(offsets[i-1]), math.Log(offsets[i])
			w := (math.Log(f) - x0) / (x1 - x0)
			return dBcHz[i-1] + w*(dBcHz[i]-dBcHz[i-1])
		}
	}
	return dBcHz[n-1]
}

// Phi returns the instantaneous phase deviation in radians at time t.
func (pn *PhaseNoise) Phi(t float64) float64 {
	v := 0.0
	for i, f := range pn.freqs {
		v += pn.amps[i] * math.Cos(2*math.Pi*f*t+pn.phases[i])
	}
	return v
}

// RMSRadians estimates the integrated RMS phase deviation.
func (pn *PhaseNoise) RMSRadians() float64 {
	v := 0.0
	for _, a := range pn.amps {
		v += a * a / 2
	}
	return math.Sqrt(v)
}

// ApplyEnv rotates an envelope by the instantaneous phase-noise process.
func (pn *PhaseNoise) ApplyEnv(env sig.Envelope) sig.Envelope {
	return sig.EnvelopeFunc(func(t float64) complex128 {
		s, c := math.Sincos(pn.Phi(t))
		return env.At(t) * complex(c, s)
	})
}
