package rf

import (
	"math/rand"

	"repro/internal/dsp"
)

// lowpassForDecimation designs the anti-image filter used before an
// integer decimation by the given factor.
func lowpassForDecimation(factor int) (*dsp.FIR, error) {
	return dsp.DesignLowpass(91, 0.45/float64(factor), dsp.KaiserWin, dsp.KaiserBeta(70))
}

// newSeededNorm returns a deterministic standard-normal generator.
func newSeededNorm(seed int64) func() float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.NormFloat64
}
