package rf

import (
	"math"
	"math/cmplx"

	"repro/internal/sig"
)

// IQImbalance models the quadrature modulator impairments of a homodyne
// transmitter: gain mismatch g (linear I/Q amplitude ratio), quadrature
// phase error phi (radians) and additive LO leakage. In the baseband
// equivalent these produce the well-known image term:
//
//	y = alpha x + beta conj(x) + leak
//	alpha = (1 + g e^{+i phi}) / 2,  beta = (1 - g e^{-i phi}) / 2.
//
// A perfect modulator has g = 1, phi = 0, leak = 0 giving alpha = 1, beta = 0.
type IQImbalance struct {
	GainRatio  float64    // I/Q gain ratio g, 1 = matched
	PhaseError float64    // quadrature error in radians, 0 = perfect
	LOLeakage  complex128 // carrier feedthrough added at baseband
}

// Alpha returns the direct-path coefficient.
func (q *IQImbalance) Alpha() complex128 {
	s, c := math.Sincos(q.PhaseError)
	return (1 + complex(q.GainRatio*c, q.GainRatio*s)) / 2
}

// Beta returns the image-path coefficient.
func (q *IQImbalance) Beta() complex128 {
	s, c := math.Sincos(q.PhaseError)
	return (1 - complex(q.GainRatio*c, -q.GainRatio*s)) / 2
}

// Apply transforms one envelope value.
func (q *IQImbalance) Apply(v complex128) complex128 {
	return q.Alpha()*v + q.Beta()*cmplx.Conj(v) + q.LOLeakage
}

// ApplyEnv lifts the impairment to a whole envelope. Coefficients are
// precomputed once.
func (q *IQImbalance) ApplyEnv(env sig.Envelope) sig.Envelope {
	a, b, l := q.Alpha(), q.Beta(), q.LOLeakage
	return sig.EnvelopeFunc(func(t float64) complex128 {
		v := env.At(t)
		return a*v + b*cmplx.Conj(v) + l
	})
}

// ImageRejectionDB returns the image rejection ratio |alpha|^2/|beta|^2 in
// dB; +Inf (represented as 400) for a perfect modulator.
func (q *IQImbalance) ImageRejectionDB() float64 {
	a := cmplx.Abs(q.Alpha())
	b := cmplx.Abs(q.Beta())
	if b == 0 {
		return 400
	}
	return 20 * math.Log10(a/b)
}

// Perfect returns an impairment-free modulator.
func Perfect() *IQImbalance { return &IQImbalance{GainRatio: 1} }

// FromImbalanceDB builds an IQImbalance from a gain imbalance in dB and a
// phase error in degrees, the way datasheets specify it.
func FromImbalanceDB(gainDB, phaseDeg float64, leak complex128) *IQImbalance {
	return &IQImbalance{
		GainRatio:  math.Pow(10, gainDB/20),
		PhaseError: phaseDeg * math.Pi / 180,
		LOLeakage:  leak,
	}
}
