package rf

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/sig"
)

func TestAnalogLowpassDesignAndResponse(t *testing.T) {
	f, err := NewAnalogLowpass(20e6, 200e6, 60)
	if err != nil {
		t.Fatal(err)
	}
	if g := f.ResponseAt(0); math.Abs(g-1) > 1e-6 {
		t.Errorf("DC gain %g", g)
	}
	if g := f.ResponseAt(5e6); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain %g", g)
	}
	if g := f.ResponseAt(60e6); g > 0.01 {
		t.Errorf("stopband gain %g", g)
	}
	if f.GroupDelay() <= 0 {
		t.Error("group delay")
	}
}

func TestAnalogLowpassValidation(t *testing.T) {
	if _, err := NewAnalogLowpass(0, 1e6, 60); err == nil {
		t.Error("fc=0 must fail")
	}
	if _, err := NewAnalogLowpass(1e6, 0, 60); err == nil {
		t.Error("fsTap=0 must fail")
	}
	if _, err := NewAnalogLowpass(1e6, 1.5e6, 60); err == nil {
		t.Error("cutoff above Nyquist must fail")
	}
}

func TestAnalogFIRPassesSlowToneAligned(t *testing.T) {
	f, _ := NewAnalogLowpass(20e6, 200e6, 60)
	tone := &sig.ComplexTone{Amp: 1, Freq: 2e6}
	out := f.ApplyEnv(tone)
	// Group-delay compensation keeps the output phase-aligned.
	for _, tv := range []float64{0, 1e-7, 7.7e-7} {
		if d := cmplx.Abs(out.At(tv) - tone.At(tv)); d > 0.02 {
			t.Errorf("t=%g: misaligned by %g", tv, d)
		}
	}
}

func TestZOHHoldsValue(t *testing.T) {
	z := &ZOH{Fs: 1e6}
	ramp := sig.EnvelopeFunc(func(t float64) complex128 { return complex(t, 0) })
	held := z.ApplyEnv(ramp)
	if held.At(1.4e-6) != held.At(1.9e-6) {
		t.Error("value not held within the DAC period")
	}
	if held.At(1.4e-6) != complex(1e-6, 0) {
		t.Errorf("held value %v", held.At(1.4e-6))
	}
}

func TestTransmitterComposition(t *testing.T) {
	pa, _ := NewRappPA(1, 10, 2)
	pn, _ := NewPhaseNoise([]float64{1e4, 1e6}, []float64{-100, -130}, 32, 1)
	lp, _ := NewAnalogLowpass(30e6, 400e6, 50)
	cfg := TxConfig{
		Fc:          1e9,
		DAC:         &ZOH{Fs: 200e6},
		ReconFilter: lp,
		IQ:          FromImbalanceDB(0.2, 1, 0),
		PhaseNoise:  pn,
		PA:          pa,
		OutputGain:  2,
	}
	tx, err := NewTransmitter(cfg, &sig.ComplexTone{Amp: 0.1, Freq: 3e6})
	if err != nil {
		t.Fatal(err)
	}
	if tx.Fc() != 1e9 {
		t.Error("Fc accessor")
	}
	d := tx.Describe()
	for _, frag := range []string{"homodyne", "DAC", "recon", "IQ", "PN", "rapp"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe missing %q: %s", frag, d)
		}
	}
	// The output must be a bounded, non-trivial waveform.
	v := tx.Output().At(1e-6)
	if math.IsNaN(v) || v == 0 {
		t.Errorf("output sample %g", v)
	}
}

func TestTransmitterValidation(t *testing.T) {
	if _, err := NewTransmitter(TxConfig{Fc: 0}, &sig.ComplexTone{}); err == nil {
		t.Error("Fc=0 must fail")
	}
	if _, err := NewTransmitter(TxConfig{Fc: 1e9}, nil); err == nil {
		t.Error("nil baseband must fail")
	}
}

func TestIdealTransmitterIsTransparent(t *testing.T) {
	env := &sig.ComplexTone{Amp: 0.5, Freq: 4e6, Phase: 0.2}
	tx, err := NewTransmitter(TxConfig{Fc: 1e9}, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, tv := range []float64{0, 2.3e-8, 1.1e-6} {
		if tx.OutputEnvelope().At(tv) != env.At(tv) {
			t.Error("ideal chain must be transparent")
		}
	}
	// RF output equals Re{env e^{i 2 pi fc t}}.
	ref := &sig.Passband{Env: env, Fc: 1e9}
	for _, tv := range []float64{0, 3.7e-10, 9.1e-9} {
		if tx.Output().At(tv) != ref.At(tv) {
			t.Error("passband mismatch")
		}
	}
}

func TestTransmitterPACompressionShowsInOutput(t *testing.T) {
	pa, _ := NewRappPA(1, 0.5, 2) // saturates at 0.5
	tx, _ := NewTransmitter(TxConfig{Fc: 1e9, PA: pa}, &sig.ComplexTone{Amp: 5, Freq: 1e6})
	out := tx.OutputEnvelope().At(1e-7)
	if cmplx.Abs(out) > 0.51 {
		t.Errorf("PA output %g exceeds saturation", cmplx.Abs(out))
	}
}
