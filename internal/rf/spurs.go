package rf

import (
	"fmt"
	"math"

	"repro/internal/sig"
)

// SpurComb models discrete local-oscillator spurs at harmonics of a single
// offset frequency — the signature of a damaged fractional-N PLL whose
// reference or fractional spurs are no longer attenuated by the loop
// filter. Each spur is a small-angle phase modulation tone: a spur at
// level L dBc appears as a pair of signal images at +-k*Spacing carrying
// 10^(L/10) of the carrier power between them. Unlike PhaseNoise (a dense
// tone bank realising a continuous PSD), the comb is sparse and coherent:
// the images land at fixed offsets where an emission mask can catch them.
type SpurComb struct {
	// Spacing is the fundamental spur offset in Hz; harmonic k sits at
	// k*Spacing.
	Spacing float64
	// LevelsDBc holds the per-harmonic spur levels (both sidebands
	// combined), LevelsDBc[k-1] for harmonic k.
	LevelsDBc []float64
	// amps[k-1] is the peak phase deviation of harmonic k in radians.
	amps   []float64
	phases []float64
}

// NewSpurComb validates and builds the comb. Phases are drawn
// deterministically from the seed so a configured fault reproduces the
// exact same waveform in every run.
func NewSpurComb(spacing float64, levelsDBc []float64, seed int64) (*SpurComb, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("rf: spur comb needs a positive spacing, got %g", spacing)
	}
	if len(levelsDBc) == 0 {
		return nil, fmt.Errorf("rf: spur comb needs at least one harmonic level")
	}
	for k, l := range levelsDBc {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("rf: spur comb harmonic %d level must be finite, got %g", k+1, l)
		}
		if l >= 0 {
			return nil, fmt.Errorf("rf: spur comb harmonic %d level %g dBc must be negative", k+1, l)
		}
	}
	sc := &SpurComb{
		Spacing:   spacing,
		LevelsDBc: append([]float64(nil), levelsDBc...),
		amps:      make([]float64, len(levelsDBc)),
		phases:    make([]float64, len(levelsDBc)),
	}
	// SplitMix64-style phase draw: cheap, stateless, decorrelated across
	// harmonics, and independent of math/rand generator changes.
	for k, l := range levelsDBc {
		// Two sidebands carry (b/2)^2 each: b = 2*10^(L/20) for a combined
		// level of L dBc.
		sc.amps[k] = 2 * math.Pow(10, l/20)
		z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(k+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		sc.phases[k] = 2 * math.Pi * float64(z>>11) / float64(uint64(1)<<53)
	}
	return sc, nil
}

// Phi returns the instantaneous phase deviation in radians at time t.
func (s *SpurComb) Phi(t float64) float64 {
	v := 0.0
	for k, a := range s.amps {
		v += a * math.Cos(2*math.Pi*float64(k+1)*s.Spacing*t+s.phases[k])
	}
	return v
}

// RMSRadians returns the integrated RMS phase deviation of the comb.
func (s *SpurComb) RMSRadians() float64 {
	v := 0.0
	for _, a := range s.amps {
		v += a * a / 2
	}
	return math.Sqrt(v)
}

// ApplyEnv rotates an envelope by the comb's phase process.
func (s *SpurComb) ApplyEnv(env sig.Envelope) sig.Envelope {
	return sig.EnvelopeFunc(func(t float64) complex128 {
		sn, cs := math.Sincos(s.Phi(t))
		return env.At(t) * complex(cs, sn)
	})
}

// Describe summarises the comb for reports.
func (s *SpurComb) Describe() string {
	return fmt.Sprintf("spurs(%d @ %.3g Hz, %.0f dBc)", len(s.amps), s.Spacing, s.LevelsDBc[0])
}
