package experiments

import (
	"fmt"
	"io"

	"repro/internal/dsp"
	"repro/internal/pnbs"
)

// FilterRespResult characterises the practical reconstruction filter of
// Eq. (6): the effective frequency response of the truncated, windowed
// Kohlenberg interpolation for several filter lengths.
type FilterRespResult struct {
	Band pnbs.Band
	// Taps[i] is the filter length (2*half+1); Ripple[i]/Stopband[i] the
	// in-band worst gain error and out-of-band worst leakage (dB).
	Taps     []int
	Ripple   []float64
	Stopband []float64
	// Points holds the full response for the paper's 61-tap filter.
	Points []pnbs.ResponsePoint
}

// RunFilterResp measures the reconstruction transfer function for the paper
// band at a few tap counts, probing across and beyond the band.
func RunFilterResp() (*FilterRespResult, error) {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	inBand := dsp.Linspace(band.FLow+2e6, band.FHigh()-2e6, 13)
	outBand := []float64{0.80e9, 0.88e9, 0.93e9, 1.07e9, 1.12e9, 1.2e9}
	probes := append(append([]float64{}, inBand...), outBand...)
	res := &FilterRespResult{Band: band}
	for _, half := range []int{10, 20, 30, 45, 60} {
		pts, err := pnbs.FrequencyResponse(band, d, pnbs.Options{HalfTaps: half}, probes)
		if err != nil {
			return nil, err
		}
		res.Taps = append(res.Taps, 2*half+1)
		res.Ripple = append(res.Ripple, pnbs.PassbandRipple(pts, band))
		res.Stopband = append(res.Stopband, pnbs.StopbandRejection(pts, band))
		if half == 30 {
			res.Points = pts
		}
	}
	return res, nil
}

// Render prints the summary table and the 61-tap response trace.
func (r *FilterRespResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Reconstruction-filter response vs length (Eq. 6 truncation, Kaiser beta 8)")
	rows := make([][]string, 0, len(r.Taps))
	for i := range r.Taps {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Taps[i]),
			fmt.Sprintf("%.4f", r.Ripple[i]),
			fmt.Sprintf("%.1f", r.Stopband[i]),
		})
	}
	writeTable(w, []string{"taps", "passband ripple [dB]", "worst stopband [dB]"}, rows)
	fmt.Fprintln(w, "\n61-tap response (the paper's configuration):")
	rows = rows[:0]
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.Freq/1e6),
			fmt.Sprintf("%.3f", p.GainDB),
		})
	}
	writeTable(w, []string{"probe [MHz]", "gain [dB]"}, rows)
}
