package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dsp"
	"repro/internal/pnbs"
	"repro/internal/sig"
	"repro/internal/skew"
)

// Eq4Point is one delay-error sample of the Eq. (4) validation.
type Eq4Point struct {
	DeltaD   float64
	Measured float64
	Bound    float64
}

// Eq4Result validates the paper's robustness bound Delta-F ~ pi B (k+1) dD
// (Eq. 4) and its Eq. (5) example (fc = 1 GHz, B = 80 MHz -> 1 % at ~2 ps):
// the measured relative reconstruction error is swept against the delay
// estimation error and compared with the analytic bound.
type Eq4Result struct {
	Band   pnbs.Band
	Points []Eq4Point
	// DD1Pct is the analytic dD for 1 % error (paper: ~2 ps).
	DD1Pct float64
}

// RunEq4 sweeps dD over the given values (defaults 0.25..16 ps) using a
// noiseless capture so the delay error is the only impairment.
func RunEq4(deltas []float64) (*Eq4Result, error) {
	band := pnbs.Band{FLow: 960e6, B: 80e6} // the Eq. (5) example band
	if len(deltas) == 0 {
		deltas = []float64{0.25e-12, 0.5e-12, 1e-12, 2e-12, 4e-12, 8e-12, 16e-12}
	}
	d := band.OptimalD()
	tt := band.T()
	n := 400
	// In-band multitone test signal (noiseless, ideal sampling).
	tones := sig.Sum{
		&sig.Tone{Amp: 1, Freq: 0.975e9, Phase: 0.4},
		&sig.Tone{Amp: 0.7, Freq: 1.0e9, Phase: 1.9},
		&sig.Tone{Amp: 0.5, Freq: 1.02e9, Phase: 2.7},
	}
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = tones.At(float64(i) * tt)
		ch1[i] = tones.At(float64(i)*tt + d)
	}
	opt := pnbs.Options{HalfTaps: 40}
	ref, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, opt)
	if err != nil {
		return nil, err
	}
	lo, hi := ref.ValidRange()
	times := skew.RandomTimes(lo+0.05*(hi-lo), hi-0.05*(hi-lo), 250, 77)
	truth := sig.SampleAt(tones, times)
	res := &Eq4Result{Band: band, DD1Pct: pnbs.DeltaDFor(band, 0.01)}
	for _, dd := range deltas {
		r, err := pnbs.NewReconstructor(band, d+dd, 0, ch0, ch1, opt)
		if err != nil {
			return nil, err
		}
		meas := dsp.RelRMSError(r.AtTimes(times), truth)
		res.Points = append(res.Points, Eq4Point{
			DeltaD:   dd,
			Measured: meas,
			Bound:    pnbs.SpectralErrorBound(band, dd),
		})
	}
	return res, nil
}

// Render prints the sweep with the bound.
func (r *Eq4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Eq. (4) validation — fc = %.2f GHz, B = %.0f MHz, k+1 = %d\n",
		r.Band.Fc()/1e9, r.Band.B/1e6, r.Band.KPlus())
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		ratio := math.NaN()
		if p.Bound > 0 {
			ratio = p.Measured / p.Bound
		}
		rows = append(rows, []string{
			ps(p.DeltaD) + " ps",
			pct(p.Measured),
			pct(p.Bound),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	writeTable(w, []string{"dD", "measured err", "pi B (k+1) dD", "ratio"}, rows)
	fmt.Fprintf(w, "Eq. (5): dD for 1%% error = %.2f ps (paper: ~2 ps)\n", r.DD1Pct*1e12)
}
