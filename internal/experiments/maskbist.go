package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// MaskBISTRow is one unit (healthy or faulty) through the full BIST.
type MaskBISTRow struct {
	Unit       string
	ShouldFail bool
	Report     *core.Report
	// Correct indicates the verdict matched expectation (no escape, no
	// false alarm).
	Correct bool
}

// MaskBISTResult is the fault-detection matrix of the end-to-end BIST
// (experiment E8): a healthy unit plus every catalogue fault.
type MaskBISTResult struct {
	Rows    []MaskBISTRow
	Escapes int
	Alarms  int
}

// RunMaskBIST executes the complete flow for the healthy unit and each
// fault. scale trades accuracy for speed: 1.0 is the full paper-size
// configuration; smaller values shrink captures/PSDs proportionally (used
// by unit tests and quick benchmarks).
func RunMaskBIST(scale float64) (*MaskBISTResult, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	mk := func() core.Config {
		c := core.PaperScenario()
		c.CaptureLen = int(2200 * scale)
		if c.CaptureLen < 700 {
			c.CaptureLen = 700
		}
		c.NTimes = int(300 * scale)
		if c.NTimes < 60 {
			c.NTimes = 60
		}
		c.PSDLen = int(2048 * scale)
		if c.PSDLen < 512 {
			c.PSDLen = 512
		}
		c.SegLen = c.PSDLen / 4
		return c
	}
	res := &MaskBISTResult{}
	run := func(unit string, shouldFail bool, mutate func(*core.Config)) error {
		cfg := mk()
		if mutate != nil {
			mutate(&cfg)
		}
		b, err := core.New(cfg)
		if err != nil {
			return fmt.Errorf("experiments: unit %s: %w", unit, err)
		}
		rep, err := b.Run()
		if err != nil {
			return fmt.Errorf("experiments: unit %s: %w", unit, err)
		}
		res.Rows = append(res.Rows, MaskBISTRow{
			Unit:       unit,
			ShouldFail: shouldFail,
			Report:     rep,
			Correct:    rep.Pass != shouldFail,
		})
		if shouldFail && rep.Pass {
			res.Escapes++
		}
		if !shouldFail && !rep.Pass {
			res.Alarms++
		}
		return nil
	}
	if err := run("healthy", false, nil); err != nil {
		return nil, err
	}
	for _, f := range core.Catalog() {
		f := f
		if err := run(f.Name, f.ShouldFail, f.Apply); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render prints the detection matrix.
func (r *MaskBISTResult) Render(w io.Writer) {
	fmt.Fprintln(w, "End-to-end spectral-mask BIST — fault detection matrix")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		verdict := "PASS"
		if !row.Report.Pass {
			verdict = "FAIL"
		}
		expect := "pass"
		if row.ShouldFail {
			expect = "fail"
		}
		ok := "ok"
		if !row.Correct {
			ok = "WRONG"
		}
		worst := ""
		if row.Report.Mask != nil {
			worst = fmt.Sprintf("%+.1f dB", row.Report.Mask.WorstMarginDB)
		}
		irr := ""
		if row.Report.IRRTested {
			irr = fmt.Sprintf("%.1f dB", row.Report.IRRMeasuredDB)
		}
		rows = append(rows, []string{
			row.Unit, expect, verdict, ok,
			fmt.Sprintf("%.3f ps", row.Report.SkewErrPS()),
			worst, irr,
		})
	}
	writeTable(w, []string{"unit", "expected", "verdict", "scored", "skew err", "mask margin", "IRR"}, rows)
	fmt.Fprintf(w, "escapes: %d, false alarms: %d\n", r.Escapes, r.Alarms)
}
