package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dsp"
	"repro/internal/par"
	"repro/internal/pnbs"
	"repro/internal/rf"
	"repro/internal/sig"
	"repro/internal/skew"
)

// Table1Row is one estimator evaluation: the paper's three metrics.
type Table1Row struct {
	// Label identifies the technique and its parameter.
	Label string
	// AbsErr is |D-hat - D| in seconds.
	AbsErr float64
	// RelErr is |1 - D-hat/D|.
	RelErr float64
	// ReconErr is the relative error of the test-signal reconstruction
	// performed with D-hat (the paper's Delta-epsilon column).
	ReconErr float64
}

// Table1Result reproduces Table I: the sinusoid-based technique adapted
// from [14] at two test frequencies versus the LMS technique from two
// starting estimates.
type Table1Result struct {
	DTrue float64
	Rows  []Table1Row
	// AuxRows holds the idealised coherent-fit adaptation of [14] at the
	// same frequencies: together with Rows it brackets the paper's
	// baseline (see EXPERIMENTS.md, "baseline ordering").
	AuxRows []Table1Row
	// FloorErr is the reconstruction error with the exact delay — the
	// jitter/quantization floor (paper: 0.84 %).
	FloorErr float64
}

// RunTable1 regenerates Table I.
func RunTable1(s PaperSetup, nB int) (*Table1Result, error) {
	if nB <= 0 {
		nB = 220
	}
	tx, err := s.buildTx()
	if err != nil {
		return nil, err
	}
	out := tx.Output()
	setB, setB1, actualD, err := s.AcquireDualRate(out, nB)
	if err != nil {
		return nil, err
	}
	ce, err := s.Evaluator(setB, setB1)
	if err != nil {
		return nil, err
	}
	times := ce.Times()
	truth := sig.SampleAt(out, times)
	opt := pnbs.Options{HalfTaps: s.HalfTaps}
	reconErr := func(dHat float64) (float64, error) {
		r, err := pnbs.NewReconstructor(setB.Band, dHat, setB.T0, setB.Ch0, setB.Ch1, opt)
		if err != nil {
			return 0, err
		}
		return dsp.RelRMSError(r.AtTimes(times), truth), nil
	}
	res := &Table1Result{DTrue: actualD}
	if res.FloorErr, err = reconErr(actualD); err != nil {
		return nil, err
	}
	m := skew.MUpper(s.BandB, s.BandB1)

	// The four estimator evaluations — the sinusoid baseline at omega0 =
	// 0.4 B and 0.46 B (each with its own tone transmitter and capture)
	// and the LMS from the paper's two starting estimates — are mutually
	// independent, so they fan out over the pool. Results land in the
	// table's row order regardless of scheduling.
	fracs := []float64{0.40, 0.46}
	d0s := []float64{50e-12, 400e-12}
	type unit struct {
		row, aux Table1Row
		hasAux   bool
	}
	units, err := par.MapErr(len(fracs)+len(d0s), func(i int) (unit, error) {
		if i >= len(fracs) {
			// LMS technique on the shared (concurrency-safe) evaluator.
			d0 := d0s[i-len(fracs)]
			r, err := skew.Estimate(ce, d0, skew.LMSConfig{Mu0: 1e-12})
			if err != nil {
				return unit{}, err
			}
			re, err := reconErr(r.DHat)
			if err != nil {
				return unit{}, err
			}
			return unit{row: Table1Row{
				Label:    fmt.Sprintf("LMS, D0 = %.0f ps", d0*1e12),
				AbsErr:   math.Abs(r.DHat - actualD),
				RelErr:   math.Abs(1 - r.DHat/actualD),
				ReconErr: re,
			}}, nil
		}
		// Sinusoid-based baseline.
		frac := fracs[i]
		f0, err := skew.SineTestFrequency(s.BandB, s.BandB.B, frac*s.BandB.B)
		if err != nil {
			return unit{}, err
		}
		fb := f0 - s.BandB.Fc()
		toneTx, err := rf.NewTransmitter(rf.TxConfig{Fc: s.BandB.Fc()},
			&sig.ComplexTone{Amp: 1, Freq: fb})
		if err != nil {
			return unit{}, err
		}
		ti, err := s.buildTIADC()
		if err != nil {
			return unit{}, err
		}
		cap0, err := ti.Capture(toneTx.Output(), s.BandB.T(), s.D, 0, nB)
		if err != nil {
			return unit{}, err
		}
		scfg := skew.SineEstimateConfig{F0: f0, B: s.BandB.B, T0: cap0.T0, DMax: m}
		dHat, err := skew.EstimateJamalInterp(scfg, cap0.Ch0, cap0.Ch1)
		if err != nil {
			return unit{}, err
		}
		re, err := reconErr(dHat)
		if err != nil {
			return unit{}, err
		}
		u := unit{row: Table1Row{
			Label:    fmt.Sprintf("sine [14], w0 = %.2f B", frac),
			AbsErr:   math.Abs(dHat - actualD),
			RelErr:   math.Abs(1 - dHat/actualD),
			ReconErr: re,
		}}
		// Auxiliary: the idealised coherent-fit adaptation on the same data.
		dFit, err := skew.EstimateSine(scfg, cap0.Ch0, cap0.Ch1)
		if err != nil {
			return unit{}, err
		}
		reFit, err := reconErr(dFit)
		if err != nil {
			return unit{}, err
		}
		u.aux = Table1Row{
			Label:    fmt.Sprintf("coherent fit, w0 = %.2f B", frac),
			AbsErr:   math.Abs(dFit - actualD),
			RelErr:   math.Abs(1 - dFit/actualD),
			ReconErr: reFit,
		}
		u.hasAux = true
		return u, nil
	})
	if err != nil {
		return nil, err
	}
	for _, u := range units {
		res.Rows = append(res.Rows, u.row)
		if u.hasAux {
			res.AuxRows = append(res.AuxRows, u.aux)
		}
	}
	return res, nil
}

// Render prints Table I.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table I — time-skew estimation analysis (true D = 180 ps)")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			ps(row.AbsErr) + " ps",
			pct(row.RelErr),
			pct(row.ReconErr),
		})
	}
	writeTable(w, []string{"technique", "|D-hat - D|", "|1 - D-hat/D|", "recon err"}, rows)
	fmt.Fprintf(w, "reconstruction floor with exact D: %s (paper: 0.84%%)\n", pct(r.FloorErr))
	if len(r.AuxRows) > 0 {
		fmt.Fprintln(w, "\nauxiliary: the idealised coherent-fit adaptation of [14] on the same captures")
		rows = rows[:0]
		for _, row := range r.AuxRows {
			rows = append(rows, []string{row.Label, ps(row.AbsErr) + " ps", pct(row.RelErr), pct(row.ReconErr)})
		}
		writeTable(w, []string{"technique", "|D-hat - D|", "|1 - D-hat/D|", "recon err"}, rows)
		fmt.Fprintln(w, "The two adaptations bracket the paper's baseline rows; the LMS needs no stimulus knowledge at all.")
	}
}
