package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/pnbs"
	"repro/internal/sig"
	"repro/internal/skew"
)

// NoiseFoldResult quantifies the paper's Section II-B.3 "Wideband Noise"
// remark: unlike an analog downconversion receiver, a bandpass-sampling
// front end folds out-of-band thermal noise into the band of interest.
type NoiseFoldResult struct {
	// InBandNoisePower is the input noise power falling inside the capture
	// band (what an ideal analog receiver would see).
	InBandNoisePower float64
	// TotalNoisePower is the full wideband input noise power.
	TotalNoisePower float64
	// ReconNoisePower is the noise power observed on the reconstruction.
	ReconNoisePower float64
	// FoldingPenaltyDB is 10 log10(ReconNoise / InBandNoise): the SNR cost
	// of subsampling relative to an analog receiver.
	FoldingPenaltyDB float64
	// CapturePenaltyDB compares reconstructed noise to total input noise
	// (how much of the wideband noise survives into the band; ~0 dB means
	// everything folds in).
	CapturePenaltyDB float64
	// SignalErr is the relative reconstruction error of the in-band test
	// tone under the wideband noise (the paper argues it stays small at
	// high signal levels).
	SignalErr float64
}

// RunNoiseFold reconstructs an in-band tone in the presence of wideband
// noise occupying [noiseLo, noiseHi] with total power noisePower, using
// ideal converters so the folding effect is isolated.
func RunNoiseFold(noiseLo, noiseHi, noisePower float64) (*NoiseFoldResult, error) {
	if noiseLo <= 0 || noiseHi <= noiseLo || noisePower <= 0 {
		return nil, fmt.Errorf("experiments: noise band [%g, %g] / power %g invalid",
			noiseLo, noiseHi, noisePower)
	}
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	tt := band.T()
	n := 500
	tone := &sig.Tone{Amp: 1, Freq: 1.004e9, Phase: 0.2}
	noise := sig.NewBandNoise(noiseLo, noiseHi, noisePower, 400, 404)
	noisy := sig.Sum{tone, noise}
	sample := func(x sig.Signal) (ch0, ch1 []float64) {
		ch0 = make([]float64, n)
		ch1 = make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = x.At(float64(i) * tt)
			ch1[i] = x.At(float64(i)*tt + d)
		}
		return ch0, ch1
	}
	c0, c1 := sample(noisy)
	r0, r1 := sample(tone)
	opt := pnbs.Options{}
	recNoisy, err := pnbs.NewReconstructor(band, d, 0, c0, c1, opt)
	if err != nil {
		return nil, err
	}
	recClean, err := pnbs.NewReconstructor(band, d, 0, r0, r1, opt)
	if err != nil {
		return nil, err
	}
	lo, hi := recNoisy.ValidRange()
	times := skew.RandomTimes(lo+0.05*(hi-lo), hi-0.05*(hi-lo), 400, 11)
	var noisePow, sigPow, errPow float64
	for _, tv := range times {
		vN := recNoisy.At(tv)
		vC := recClean.At(tv)
		dn := vN - vC // reconstructed noise component
		noisePow += dn * dn
		ref := tone.At(tv)
		sigPow += ref * ref
		e := vN - ref
		errPow += e * e
	}
	noisePow /= float64(len(times))
	sigPow /= float64(len(times))
	errPow /= float64(len(times))

	// Input noise inside the capture band (analytic: uniform PSD).
	overlap := overlapWidth(noiseLo, noiseHi, band.FLow, band.FHigh())
	inBand := noisePower * overlap / (noiseHi - noiseLo)
	res := &NoiseFoldResult{
		InBandNoisePower: inBand,
		TotalNoisePower:  noisePower,
		ReconNoisePower:  noisePow,
		SignalErr:        sqrtRatio(errPow, sigPow),
	}
	if inBand > 0 {
		res.FoldingPenaltyDB = 10 * math.Log10(noisePow/inBand)
	} else {
		res.FoldingPenaltyDB = 400
	}
	res.CapturePenaltyDB = 10 * math.Log10(noisePow/noisePower)
	return res, nil
}

func overlapWidth(aLo, aHi, bLo, bHi float64) float64 {
	lo := aLo
	if bLo > lo {
		lo = bLo
	}
	hi := aHi
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func sqrtRatio(num, den float64) float64 {
	if den <= 0 || num <= 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// Render prints the comparison.
func (r *NoiseFoldResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Wideband-noise folding (paper Section II-B.3)")
	rows := [][]string{
		{"input noise power (total)", fmt.Sprintf("%.4g", r.TotalNoisePower)},
		{"input noise power in band", fmt.Sprintf("%.4g", r.InBandNoisePower)},
		{"reconstructed noise power", fmt.Sprintf("%.4g", r.ReconNoisePower)},
		{"folding penalty vs analog receiver", fmt.Sprintf("%.1f dB", r.FoldingPenaltyDB)},
		{"reconstructed/total input noise", fmt.Sprintf("%.1f dB", r.CapturePenaltyDB)},
		{"in-band tone reconstruction error", pct(r.SignalErr)},
	}
	writeTable(w, []string{"quantity", "value"}, rows)
	fmt.Fprintln(w, "Out-of-band noise folds into the reconstruction (penalty >> 0 dB), but the high-level signal test is barely affected — the paper's argument for accepting bandpass sampling in a Tx BIST.")
}
