package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/skew"
)

// Fig5Result is the cost-function sweep of Fig. 5: epsilon versus the delay
// estimate D-hat, with the expected unique minimum at D-hat = D.
type Fig5Result struct {
	DHats []float64
	Costs []float64
	// DTrue is the realised delay; ArgMin the sweep minimiser.
	DTrue  float64
	ArgMin float64
}

// RunFig5 regenerates the Fig. 5 sweep: the paper plots D-hat in
// [120, 260] ps against the cost computed from N = 300 random instants in
// [470, 1700] ns. nB is the rate-B capture length (0 = 2000 samples,
// covering the paper's window with margin).
func RunFig5(s PaperSetup, dLo, dHi float64, nPts, nB int) (*Fig5Result, error) {
	if dLo == 0 && dHi == 0 {
		dLo, dHi = 120e-12, 260e-12
	}
	if nPts <= 1 {
		nPts = 57
	}
	if nB <= 0 {
		nB = 220
	}
	tx, err := s.buildTx()
	if err != nil {
		return nil, err
	}
	setB, setB1, actualD, err := s.AcquireDualRate(tx.Output(), nB)
	if err != nil {
		return nil, err
	}
	ce, err := s.Evaluator(setB, setB1)
	if err != nil {
		return nil, err
	}
	ds, costs := skew.CostCurve(ce, dLo, dHi, nPts)
	res := &Fig5Result{DHats: ds, Costs: costs, DTrue: actualD}
	best := 0
	for i, c := range costs {
		if !math.IsNaN(c) && c < costs[best] {
			best = i
		}
	}
	res.ArgMin = ds[best]
	return res, nil
}

// Render prints the sweep as (D-hat, cost) pairs.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 5 — cost function vs delay estimate D-hat (true D = 180 ps)")
	rows := make([][]string, 0, len(r.DHats))
	for i := range r.DHats {
		rows = append(rows, []string{ps(r.DHats[i]), fmt.Sprintf("%.6g", r.Costs[i])})
	}
	writeTable(w, []string{"D-hat [ps]", "cost"}, rows)
	// Fig. 5 as a plot.
	yMax := 0.0
	for _, c := range r.Costs {
		if !math.IsNaN(c) && c > yMax {
			yMax = c
		}
	}
	plot := newAsciiPlot(60, 16, r.DHats[0]*1e12, r.DHats[len(r.DHats)-1]*1e12, 0, yMax*1.05,
		"D-hat [ps]", "cost")
	xs := make([]float64, len(r.DHats))
	for i, d := range r.DHats {
		xs[i] = d * 1e12
	}
	plot.series(xs, r.Costs, '*')
	plot.mark(r.DTrue*1e12, 0, '^')
	plot.render(w)
	fmt.Fprintf(w, "argmin = %.2f ps (true %.2f ps, marked ^): single minimum at D-hat = D, as Fig. 5 shows.\n",
		r.ArgMin*1e12, r.DTrue*1e12)
}
