package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/pnbs"
	"repro/internal/skew"
)

// AblateRow is one design-point evaluation.
type AblateRow struct {
	Param     string
	Value     float64
	SkewErrPS float64
	ReconErr  float64
	CostEvals int
	Iters     int
}

// AblateResult sweeps the design choices DESIGN.md calls out — filter
// length, window shape, cost-sample count, clock jitter — one at a time
// around the paper's operating point, and additionally compares Algorithm 1
// against a golden-section search on the same objective.
type AblateResult struct {
	Rows []AblateRow
	// GoldenEvals and LMSEvals compare the two minimisers at the paper's
	// operating point.
	GoldenEvals, LMSEvals int
	GoldenErrPS, LMSErrPS float64
}

// AblateSweep configures the RunAblate design grids. The zero value of a
// list skips that sweep; DefaultAblateSweep reproduces the paper-scale run.
type AblateSweep struct {
	// HalfTaps, KaiserBeta, NTimes and Jitter are the per-parameter value
	// grids (jitter in seconds rms).
	HalfTaps   []int
	KaiserBeta []float64
	NTimes     []int
	Jitter     []float64
	// BaseNTimes overrides the cost-sample count for every design point
	// outside the NTimes sweep and for the minimiser duel (0 = the paper's
	// 300). Smaller values trade estimate variance for speed; the golden
	// regression test runs the sweep at BaseNTimes = 60.
	BaseNTimes int
}

// DefaultAblateSweep returns the grids DESIGN.md calls out, centred on the
// paper's operating point.
func DefaultAblateSweep() AblateSweep {
	return AblateSweep{
		HalfTaps:   []int{10, 20, 30, 45, 60},
		KaiserBeta: []float64{-1, 4, 6, 8, 10, 12},
		NTimes:     []int{50, 100, 200, 300, 500},
		Jitter:     []float64{0, 1e-12, 3e-12, 6e-12, 10e-12},
	}
}

// RunAblate executes the full default sweep. Each design point runs the
// complete acquire -> evaluate -> estimate pipeline on the paper scenario.
func RunAblate() (*AblateResult, error) {
	return RunAblateSweep(DefaultAblateSweep())
}

// RunAblateSweep executes the sweep over the given grids.
func RunAblateSweep(cfg AblateSweep) (*AblateResult, error) {
	res := &AblateResult{}
	runPoint := func(param string, value float64, mutate func(s *PaperSetup)) error {
		s := DefaultPaperSetup()
		if cfg.BaseNTimes > 0 {
			s.NTimes = cfg.BaseNTimes
		}
		mutate(&s)
		tx, err := s.buildTx()
		if err != nil {
			return err
		}
		// Capture length scales with the filter span so the paper's
		// evaluation window stays covered for every design point.
		nB := 2*s.HalfTaps + 170
		setB, setB1, actualD, err := s.AcquireDualRate(tx.Output(), nB)
		if err != nil {
			return err
		}
		ce, err := s.Evaluator(setB, setB1)
		if err != nil {
			return err
		}
		r, err := skew.Estimate(ce, 100e-12, skew.LMSConfig{Mu0: 1e-12})
		if err != nil {
			return err
		}
		// Reconstruction error with the estimated delay (vs ideal samples).
		opt := pnbs.Options{HalfTaps: s.HalfTaps, KaiserBeta: s.KaiserBeta}
		rec, err := pnbs.NewReconstructor(setB.Band, r.DHat, setB.T0, setB.Ch0, setB.Ch1, opt)
		if err != nil {
			return err
		}
		times := ce.Times()
		truth := make([]float64, len(times))
		out := tx.Output()
		for i, tv := range times {
			truth[i] = out.At(tv)
		}
		got := rec.AtTimes(times)
		var num, den float64
		for i := range got {
			d := got[i] - truth[i]
			num += d * d
			den += truth[i] * truth[i]
		}
		res.Rows = append(res.Rows, AblateRow{
			Param:     param,
			Value:     value,
			SkewErrPS: math.Abs(r.DHat-actualD) * 1e12,
			ReconErr:  math.Sqrt(num / den),
			CostEvals: r.CostEvals,
			Iters:     r.Iterations,
		})
		return nil
	}

	for _, ht := range cfg.HalfTaps {
		ht := ht
		if err := runPoint("halfTaps", float64(ht), func(s *PaperSetup) { s.HalfTaps = ht }); err != nil {
			return nil, err
		}
	}
	// -1 is the rectangular (untapered) design point: KaiserBeta < 0
	// disables the taper, quantifying what the window buys.
	for _, kb := range cfg.KaiserBeta {
		kb := kb
		if err := runPoint("kaiserBeta", kb, func(s *PaperSetup) { s.KaiserBeta = kb }); err != nil {
			return nil, err
		}
	}
	for _, nt := range cfg.NTimes {
		nt := nt
		if err := runPoint("nTimes", float64(nt), func(s *PaperSetup) { s.NTimes = nt }); err != nil {
			return nil, err
		}
	}
	for _, jit := range cfg.Jitter {
		jit := jit
		if err := runPoint("jitterPS", jit*1e12, func(s *PaperSetup) { s.JitterRMS = jit }); err != nil {
			return nil, err
		}
	}

	// Minimiser comparison at the operating point.
	s := DefaultPaperSetup()
	if cfg.BaseNTimes > 0 {
		s.NTimes = cfg.BaseNTimes
	}
	tx, err := s.buildTx()
	if err != nil {
		return nil, err
	}
	setB, setB1, actualD, err := s.AcquireDualRate(tx.Output(), 220)
	if err != nil {
		return nil, err
	}
	ce, err := s.Evaluator(setB, setB1)
	if err != nil {
		return nil, err
	}
	lms, err := skew.Estimate(ce, 100e-12, skew.LMSConfig{Mu0: 1e-12})
	if err != nil {
		return nil, err
	}
	m := skew.MUpper(s.BandB, s.BandB1)
	gold, err := skew.GoldenSection(ce.Cost, m/1000, m*0.999, 0.05e-12)
	if err != nil {
		return nil, err
	}
	res.LMSEvals = lms.CostEvals
	res.LMSErrPS = math.Abs(lms.DHat-actualD) * 1e12
	res.GoldenEvals = gold.CostEvals
	res.GoldenErrPS = math.Abs(gold.DHat-actualD) * 1e12
	return res, nil
}

// Render prints the sweep tables.
func (r *AblateResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Design-choice ablations around the paper operating point")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Param,
			fmt.Sprintf("%g", row.Value),
			fmt.Sprintf("%.3f", row.SkewErrPS),
			pct(row.ReconErr),
			fmt.Sprintf("%d", row.CostEvals),
			fmt.Sprintf("%d", row.Iters),
		})
	}
	writeTable(w, []string{"param", "value", "skew err [ps]", "recon err", "cost evals", "iters"}, rows)
	fmt.Fprintf(w, "minimiser comparison (blind start vs full bracket): LMS %d evals / %.3f ps vs golden-section %d evals / %.3f ps\n",
		r.LMSEvals, r.LMSErrPS, r.GoldenEvals, r.GoldenErrPS)
}
