package experiments

import (
	"fmt"
	"io"

	"repro/internal/obs/trace"
	"repro/internal/par"
	"repro/internal/skew"
)

var tnFig6 = trace.Intern("experiments.fig6")

// Fig6Trace is one LMS run from a given starting estimate.
type Fig6Trace struct {
	D0     float64
	Result skew.LMSResult
}

// Fig6Result collects the Fig. 6 convergence traces.
type Fig6Result struct {
	DTrue  float64
	Traces []Fig6Trace
}

// RunFig6 regenerates Fig. 6: the LMS cost evolution for starting estimates
// D-hat_0 in {50, 100, 350, 400} ps with mu_0 = 1 ps, converging in < 20
// iterations for every start.
func RunFig6(s PaperSetup, starts []float64, nB int) (*Fig6Result, error) {
	if len(starts) == 0 {
		starts = []float64{50e-12, 100e-12, 350e-12, 400e-12}
	}
	if nB <= 0 {
		nB = 220
	}
	tx, err := s.buildTx()
	if err != nil {
		return nil, err
	}
	setB, setB1, actualD, err := s.AcquireDualRate(tx.Output(), nB)
	if err != nil {
		return nil, err
	}
	ce, err := s.Evaluator(setB, setB1)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{DTrue: actualD}
	// Each trace is an independent descent on the shared evaluator (Cost is
	// concurrency-safe); the traces fan out over the pool and land in
	// start-estimate order. Under a trace recording the sweep runs inside an
	// "experiments.fig6" root span, each descent contributing its own
	// skew.lms subtree and per-start counter tracks.
	sp := trace.Start(trace.Root, tnFig6)
	sp.SetInt("starts", int64(len(starts)))
	traces, err := par.MapErrCtx(sp.Ctx(), len(starts), func(taskCtx trace.Ctx, i int) (Fig6Trace, error) {
		d0 := starts[i]
		r, err := skew.EstimateCtx(taskCtx, ce, d0, skew.LMSConfig{Mu0: 1e-12})
		if err != nil {
			return Fig6Trace{}, fmt.Errorf("experiments: LMS from %g: %w", d0, err)
		}
		return Fig6Trace{D0: d0, Result: r}, nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	res.Traces = traces
	return res, nil
}

// Render prints the cost-vs-iteration series for each start.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6 — LMS cost evolution for several starting estimates (true D = 180 ps)")
	maxLen := 0
	for _, tr := range r.Traces {
		if len(tr.Result.CostHistory) > maxLen {
			maxLen = len(tr.Result.CostHistory)
		}
	}
	header := []string{"iter"}
	for _, tr := range r.Traces {
		header = append(header, fmt.Sprintf("D0=%.0f ps", tr.D0*1e12))
	}
	rows := make([][]string, 0, maxLen)
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for _, tr := range r.Traces {
			if i < len(tr.Result.CostHistory) {
				row = append(row, fmt.Sprintf("%.6g", tr.Result.CostHistory[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
	// Fig. 6 as a plot: one marker per trace.
	yMax := 0.0
	for _, tr := range r.Traces {
		for _, c := range tr.Result.CostHistory {
			if c > yMax {
				yMax = c
			}
		}
	}
	plot := newAsciiPlot(60, 14, 0, float64(maxLen-1), 0, yMax*1.05, "iteration", "cost")
	markers := []byte{'a', 'b', 'c', 'd'}
	for ti, tr := range r.Traces {
		for i, c := range tr.Result.CostHistory {
			plot.mark(float64(i), c, markers[ti%len(markers)])
		}
	}
	plot.render(w)
	for _, tr := range r.Traces {
		fmt.Fprintf(w, "D0 = %3.0f ps -> D-hat = %.3f ps in %d iterations (err %.3f ps)\n",
			tr.D0*1e12, tr.Result.DHat*1e12, tr.Result.Iterations,
			abs(tr.Result.DHat-r.DTrue)*1e12)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
