package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/pnbs"
)

func TestRunFig3a(t *testing.T) {
	r := RunFig3a(0, 0)
	if r.NMax != 3 || len(r.FhOverB) != 61 {
		t.Fatalf("defaults: %d curves, %d pts", r.NMax, len(r.FhOverB))
	}
	// n=1 lower boundary at fH/B = 2 is fs/B = 4.
	c1 := r.Curves[1]
	idx := 10 // axis [1,7] with 61 pts: 1 + 10*0.1 = 2.0
	if math.Abs(r.FhOverB[idx]-2) > 1e-9 || math.Abs(c1[0][idx]-4) > 1e-9 {
		t.Errorf("axis/boundary mismatch: %g -> %g", r.FhOverB[idx], c1[0][idx])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 3a") {
		t.Error("render header")
	}
}

func TestRunFig3b(t *testing.T) {
	r, err := RunFig3b()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Windows) < 20 {
		t.Fatalf("only %d windows", len(r.Windows))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Fig. 3b") || !strings.Contains(out, "90.2222") {
		t.Errorf("render content:\n%s", out)
	}
}

func fastSetup() PaperSetup {
	s := DefaultPaperSetup()
	s.NTimes = 80
	return s
}

func TestRunFig5UniqueMinimum(t *testing.T) {
	r, err := RunFig5(fastSetup(), 0, 0, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ArgMin-r.DTrue) > 6e-12 {
		t.Errorf("argmin %.1f ps, true %.1f ps", r.ArgMin*1e12, r.DTrue*1e12)
	}
	// The curve must decrease toward the minimum from both sides.
	if r.Costs[0] < r.Costs[len(r.Costs)/2] || r.Costs[len(r.Costs)-1] < r.Costs[len(r.Costs)/2] {
		t.Error("cost curve shape wrong")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "argmin") {
		t.Error("render")
	}
}

func TestRunFig6Convergence(t *testing.T) {
	// Paper N = 300: the final accuracy below is jitter-variance limited.
	r, err := RunFig6(DefaultPaperSetup(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != 4 {
		t.Fatalf("%d traces", len(r.Traces))
	}
	for _, tr := range r.Traces {
		if math.Abs(tr.Result.DHat-r.DTrue) > 1.5e-12 {
			t.Errorf("D0 %.0f ps: error %.3f ps", tr.D0*1e12,
				math.Abs(tr.Result.DHat-r.DTrue)*1e12)
		}
		if tr.Result.Iterations >= 25 {
			t.Errorf("D0 %.0f ps: %d iterations (paper: < 20)", tr.D0*1e12, tr.Result.Iterations)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 6") {
		t.Error("render")
	}
}

func TestRunTable1Shape(t *testing.T) {
	// Full paper N = 300: the LMS accuracy bound below is jitter-variance
	// limited and needs the full cost-sample count.
	r, err := RunTable1(DefaultPaperSetup(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Paper shape (Table I): the adapted [14] baseline errs at the ps to
	// tens-of-ps level with a strong omega0 dependence, while LMS is
	// sub-picosecond, identical from both starting estimates, and its
	// reconstruction error sits at the jitter/quantization floor.
	sineA, sineB := r.Rows[0].AbsErr, r.Rows[1].AbsErr
	if sineA < 2e-12 && sineB < 2e-12 {
		t.Errorf("baseline too accurate (%.2f, %.2f ps): frequency sensitivity lost",
			sineA*1e12, sineB*1e12)
	}
	ratio := sineA / sineB
	if ratio > 1 {
		ratio = 1 / ratio
	}
	if ratio > 0.67 {
		t.Errorf("baseline rows too similar (%.2f vs %.2f ps): omega0 sensitivity not visible",
			sineA*1e12, sineB*1e12)
	}
	lmsA, lmsB := r.Rows[2], r.Rows[3]
	if lmsA.AbsErr > 2e-12 || lmsB.AbsErr > 2e-12 {
		t.Errorf("LMS abs errors %.3f / %.3f ps too large", lmsA.AbsErr*1e12, lmsB.AbsErr*1e12)
	}
	if math.Abs(lmsA.AbsErr-lmsB.AbsErr) > 0.2e-12 {
		t.Errorf("LMS not start-independent: %.3f vs %.3f ps", lmsA.AbsErr*1e12, lmsB.AbsErr*1e12)
	}
	if r.FloorErr <= 0 || r.FloorErr > 0.05 {
		t.Errorf("reconstruction floor %.3g implausible", r.FloorErr)
	}
	for _, lms := range []Table1Row{lmsA, lmsB} {
		if lms.ReconErr > 1.5*r.FloorErr {
			t.Errorf("%s recon err %.3g far above floor %.3g", lms.Label, lms.ReconErr, r.FloorErr)
		}
	}
	// "Who wins": the worse baseline row must reconstruct worse than LMS.
	if math.Max(r.Rows[0].ReconErr, r.Rows[1].ReconErr) < lmsA.ReconErr {
		t.Error("baseline unexpectedly beats LMS in reconstruction")
	}
	// The idealised coherent-fit adaptation brackets from below: sub-ps at
	// both frequencies.
	if len(r.AuxRows) != 2 {
		t.Fatalf("%d auxiliary rows", len(r.AuxRows))
	}
	for _, aux := range r.AuxRows {
		if aux.AbsErr > 1e-12 {
			t.Errorf("%s: %.3f ps, want sub-ps", aux.Label, aux.AbsErr*1e12)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("render")
	}
}

func TestRunEq4BoundTracksMeasurement(t *testing.T) {
	r, err := RunEq4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.DD1Pct-1.59e-12) > 0.3e-12 {
		t.Errorf("Eq. (5) dD = %.2f ps, want ~1.6 (paper rounds to 2)", r.DD1Pct*1e12)
	}
	for _, p := range r.Points {
		// First-order bound: measurement within a factor ~[0.1, 2] of it
		// across the small-dD region.
		if p.DeltaD <= 4e-12 {
			ratio := p.Measured / p.Bound
			if ratio < 0.1 || ratio > 2 {
				t.Errorf("dD %.2f ps: measured/bound = %.2f", p.DeltaD*1e12, ratio)
			}
		}
	}
	// Monotone growth with dD.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Measured < r.Points[i-1].Measured*0.8 {
			t.Error("measured error not growing with dD")
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Eq. (4)") {
		t.Error("render")
	}
}

func TestRunDSweep(t *testing.T) {
	band := DefaultPaperSetup().BandB
	r, err := RunDSweep(band, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep minimum should be within ~25 % of the analytic optimum.
	if math.Abs(r.BestD-r.OptimalD)/r.OptimalD > 0.4 {
		t.Errorf("sweep best %.0f ps vs optimal %.0f ps", r.BestD*1e12, r.OptimalD*1e12)
	}
	if len(r.Forbidden) == 0 {
		t.Error("no forbidden delays listed")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "forbidden") {
		t.Error("render")
	}
	if _, err := RunDSweep(pnbs.Band{}, 0, 0); err == nil {
		t.Error("bad band must fail")
	}
}

func TestRunNoiseFold(t *testing.T) {
	r, err := RunNoiseFold(0.9e9, 1.9e9, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Folding: reconstructed noise far above the in-band share, same order
	// as the total input noise.
	if r.FoldingPenaltyDB < 6 {
		t.Errorf("folding penalty %.1f dB too small", r.FoldingPenaltyDB)
	}
	if r.CapturePenaltyDB < -3 || r.CapturePenaltyDB > 6 {
		t.Errorf("capture penalty %.1f dB implausible", r.CapturePenaltyDB)
	}
	// High-level signal test barely affected.
	if r.SignalErr > 0.05 {
		t.Errorf("signal error %.3g under thermal-scale noise", r.SignalErr)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "folding") {
		t.Error("render")
	}
	if _, err := RunNoiseFold(0, 1, 1); err == nil {
		t.Error("bad band must fail")
	}
	if _, err := RunNoiseFold(2, 1, 1); err == nil {
		t.Error("inverted band must fail")
	}
	if _, err := RunNoiseFold(1, 2, 0); err == nil {
		t.Error("zero power must fail")
	}
}

func TestRunAblateShape(t *testing.T) {
	r, err := RunAblate()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The rectangular design point (KaiserBeta = -1) must run and must be
	// beaten by the paper's beta = 8 taper on reconstruction error.
	var rectErr, kb8Err float64
	for _, row := range r.Rows {
		if row.Param == "kaiserBeta" && row.Value == -1 {
			rectErr = row.ReconErr
		}
		if row.Param == "kaiserBeta" && row.Value == 8 {
			kb8Err = row.ReconErr
		}
	}
	if rectErr == 0 || kb8Err == 0 {
		t.Error("kaiserBeta sweep missing the rectangular or beta=8 point")
	} else if kb8Err >= rectErr {
		t.Errorf("taper did not help: beta=8 %.4f vs rect %.4f", kb8Err, rectErr)
	}
	byParam := map[string][]AblateRow{}
	for _, row := range r.Rows {
		byParam[row.Param] = append(byParam[row.Param], row)
	}
	// Jitter sweep: zero jitter must be essentially exact, and both the
	// skew error and the reconstruction error must grow with jitter.
	jit := byParam["jitterPS"]
	if jit[0].SkewErrPS > 0.05 {
		t.Errorf("zero-jitter skew error %.3f ps", jit[0].SkewErrPS)
	}
	if !(jit[len(jit)-1].ReconErr > jit[0].ReconErr*3) {
		t.Error("reconstruction error does not grow with jitter")
	}
	// NTimes sweep: the largest N must beat the smallest N.
	nt := byParam["nTimes"]
	if nt[len(nt)-1].SkewErrPS > nt[0].SkewErrPS {
		t.Errorf("more cost samples did not help: %.2f -> %.2f ps",
			nt[0].SkewErrPS, nt[len(nt)-1].SkewErrPS)
	}
	// Minimiser duel: both find the same minimum; golden-section uses
	// fewer evaluations when a full bracket is available.
	if mathAbs(r.GoldenErrPS-r.LMSErrPS) > 0.5 {
		t.Errorf("minimisers disagree: %.3f vs %.3f ps", r.GoldenErrPS, r.LMSErrPS)
	}
	if r.GoldenEvals <= 0 || r.LMSEvals <= 0 {
		t.Error("eval counters")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "minimiser") {
		t.Error("render")
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestRunYieldExperiment(t *testing.T) {
	r, err := RunYieldExperiment(6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if r.InSpec.Yield != 1 {
		t.Errorf("in-spec yield %.2f: the instrument produced false alarms", r.InSpec.Yield)
	}
	if r.Marginal.Yield >= 1 {
		t.Error("marginal lot should show fallout")
	}
	if r.Marginal.Passes == 0 {
		t.Error("marginal lot should not be entirely dead")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "yield") {
		t.Error("render")
	}
}

func TestRunAveragingReducesError(t *testing.T) {
	r, err := RunAveraging([]int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.Rows[1].SkewErrPS >= r.Rows[0].SkewErrPS {
		t.Errorf("averaging did not help: %.3f -> %.3f ps",
			r.Rows[0].SkewErrPS, r.Rows[1].SkewErrPS)
	}
	// The residual jitter-induced bias keeps the K=16 error finite but it
	// must be well below the single-capture error.
	if r.Rows[1].SkewErrPS > 0.6 {
		t.Errorf("K=16 error %.3f ps too large", r.Rows[1].SkewErrPS)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Averaging") {
		t.Error("render")
	}
	if _, err := RunAveraging([]int{0}); err == nil {
		t.Error("K=0 must fail")
	}
}

func TestRunLoopbackFaultMasking(t *testing.T) {
	r, err := RunLoopback()
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: the DUT is out of its Tx budget but inside the
	// end-to-end budget.
	if r.TxEVMTrue <= r.TxLimit || r.TxEVMTrue >= r.E2ELimit {
		t.Fatalf("DUT not marginal: true EVM %.2f%%", r.TxEVMTrue)
	}
	// Loopback through the golden Rx masks the fault (escape)...
	if !r.LoopbackPass {
		t.Error("loopback should pass (that IS the fault-masking escape)")
	}
	// ...while the PNBS BIST rejects the unit.
	if r.PNBSPass {
		t.Error("PNBS BIST should reject the marginal Tx")
	}
	// The PNBS path measures the true Tx EVM closely.
	if mathAbs(r.PNBSEVM-r.TxEVMTrue) > 1.5 {
		t.Errorf("PNBS EVM %.2f%% vs truth %.2f%%", r.PNBSEVM, r.TxEVMTrue)
	}
	// A nominal receiver pushes the escaped unit past the e2e budget.
	if r.FieldEVM <= r.E2ELimit {
		t.Errorf("field EVM %.2f%% should exceed the e2e limit", r.FieldEVM)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "masking") {
		t.Error("render")
	}
}

func TestRunFilterResp(t *testing.T) {
	r, err := RunFilterResp()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Taps) != 5 || len(r.Points) == 0 {
		t.Fatalf("shape: %d tap points, %d probes", len(r.Taps), len(r.Points))
	}
	// The paper's 61-tap filter: flat passband, decent stopband.
	idx61 := -1
	for i, n := range r.Taps {
		if n == 61 {
			idx61 = i
		}
	}
	if idx61 < 0 {
		t.Fatal("61-tap row missing")
	}
	// The probes reach within 2 MHz of the band edges, where truncation
	// bites hardest: ~0.5 dB there is the honest figure for 61 taps.
	if r.Ripple[idx61] > 1.0 {
		t.Errorf("61-tap passband ripple %.3f dB", r.Ripple[idx61])
	}
	if r.Stopband[idx61] > -20 {
		t.Errorf("61-tap stopband %.1f dB", r.Stopband[idx61])
	}
	// Longer filters must not be worse in ripple.
	if r.Ripple[len(r.Ripple)-1] > r.Ripple[0] {
		t.Error("ripple did not improve with taps")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "61-tap") {
		t.Error("render")
	}
}

func TestRunMaskBISTMatrixSmallScale(t *testing.T) {
	r, err := RunMaskBIST(0.35)
	if err != nil {
		t.Fatal(err)
	}
	if r.Escapes != 0 || r.Alarms != 0 {
		t.Fatalf("detection matrix: %d escapes, %d alarms", r.Escapes, r.Alarms)
	}
	if len(r.Rows) < 10 {
		t.Errorf("only %d units scored", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Correct {
			t.Errorf("unit %s scored wrong", row.Unit)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "escapes: 0") {
		t.Error("render")
	}
}

func TestRunFlexAllPass(t *testing.T) {
	r, err := RunFlex(0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 6 {
		t.Fatalf("only %d configurations", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.MaskPass {
			t.Errorf("%s failed its mask", row.Label)
		}
		if row.SkewErrPS > 5 {
			t.Errorf("%s skew error %.2f ps", row.Label, row.SkewErrPS)
		}
		// The PNBS total rate never exceeds the best PBS rate.
		if row.PNBSRate > row.PBSMinRate+1e-3 {
			t.Errorf("%s: PNBS rate above PBS minimum", row.Label)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "PNBS") {
		t.Error("render")
	}
}
