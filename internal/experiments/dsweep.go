package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/par"
	"repro/internal/pnbs"
)

// DSweepResult maps delay choices to kernel coefficient magnitudes
// (Section II-B.1): coefficients blow up as D approaches nT/k or nT/(k+1)
// and are smallest near D = 1/(4 fc).
type DSweepResult struct {
	Band      pnbs.Band
	Ds        []float64
	Metric    []float64
	Forbidden []float64
	OptimalD  float64
	BestD     float64
}

// RunDSweep sweeps D over (0, maxD] with nPts points for the paper band.
func RunDSweep(band pnbs.Band, maxD float64, nPts int) (*DSweepResult, error) {
	if _, err := pnbs.NewBand(band.FLow, band.B); err != nil {
		return nil, err
	}
	if maxD == 0 {
		maxD = 520e-12
	}
	if nPts <= 1 {
		nPts = 104
	}
	res := &DSweepResult{
		Band:      band,
		Forbidden: band.ForbiddenD(maxD),
		OptimalD:  band.OptimalD(),
		Ds:        make([]float64, nPts),
		Metric:    make([]float64, nPts),
	}
	// Independent sweep points fan out over the pool; the argmin scan runs
	// serially afterwards so ties keep resolving to the lowest delay.
	par.For(nPts, func(i int) {
		d := maxD * float64(i+1) / float64(nPts)
		res.Ds[i] = d
		res.Metric[i] = pnbs.CoefficientMetric(band, d)
	})
	best := math.Inf(1)
	for i, m := range res.Metric {
		if m < best {
			best = m
			res.BestD = res.Ds[i]
		}
	}
	return res, nil
}

// Render prints the sweep.
func (r *DSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Delay sweep — kernel coefficient metric vs D (band %.0f-%.0f MHz)\n",
		r.Band.FLow/1e6, r.Band.FHigh()/1e6)
	rows := make([][]string, 0, len(r.Ds))
	for i := range r.Ds {
		m := r.Metric[i]
		ms := fmt.Sprintf("%.3f", m)
		if math.IsInf(m, 1) || m > 1e6 {
			ms = "unstable"
		}
		rows = append(rows, []string{ps(r.Ds[i]) + " ps", ms})
	}
	writeTable(w, []string{"D", "1/|sin(k pi B D)| + 1/|sin(k+ pi B D)|"}, rows)
	fmt.Fprintf(w, "forbidden delays (Eq. 3):")
	for _, d := range r.Forbidden {
		fmt.Fprintf(w, " %.1f ps", d*1e12)
	}
	fmt.Fprintf(w, "\noptimal D = 1/(4 fc) = %.1f ps; sweep minimum at %.1f ps\n",
		r.OptimalD*1e12, r.BestD*1e12)
}
