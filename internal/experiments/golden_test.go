package experiments

import (
	"path/filepath"
	"testing"

	"repro/internal/testkit"
)

// The golden regression net: every experiments.Run* entry point runs at a
// reduced-scale configuration (each well under a second) and is compared
// field-by-field against a committed vector. Regenerate after an intended
// behaviour change with
//
//	go test ./internal/experiments -run Golden -update
//
// and review the diff like any other code change — the diff IS the
// experiment-output change the PR ships.
//
// Pinning is two-tier (see DESIGN.md, "Golden pinning policy"):
//
//   - Estimate-stage leaves — anything the reassociated fused cost kernel
//     feeds: cost values and histories (rel <= 1e-9), delay estimates and
//     their histories (abs <= 1 fs), and scalars derived from a delay
//     estimate such as reconstruction errors (rel 1e-9 with a 1 fs-scale
//     absolute floor). These carry an explicit tolerance Rule below.
//   - Everything else — captures, measurements, mask margins, verdicts,
//     counters — is byte-exact (the zero-Tol default). If a kernel change
//     moves one of these leaves, the golden fails and the diff gets
//     reviewed; tolerances never silently absorb a physics change.
func goldenCheck(t *testing.T, name string, v any, rules ...testkit.Rule) {
	t.Helper()
	testkit.Golden(t, filepath.Join("testdata", "golden", name+".json"), v,
		testkit.Options{Rules: rules})
}

// The estimate-stage tolerance tiers.
var (
	// costTol bounds fused-kernel cost leaves: the reassociated evaluation
	// order is allowed to drift the value within 1e-9 relative of the
	// per-instant serial oracle (observed drift ~1e-12).
	costTol = testkit.Tol{Rel: 1e-9}
	// delayTol bounds delay estimates to 1 fs absolute — 1000x below the
	// 1 ps average estimation error the paper reports.
	delayTol = testkit.Tol{Abs: 1e-15}
	// psTol is delayTol for leaves expressed in picoseconds.
	psTol = testkit.Tol{Abs: 1e-3, Rel: 1e-9}
	// derivedTol covers dimensionless scalars computed from a delay
	// estimate (relative errors, reconstruction errors).
	derivedTol = testkit.Tol{Abs: 1e-15, Rel: 1e-9}
)

// goldenSetup is the reduced-scale PaperSetup shared by the capture-based
// goldens: the paper geometry with fewer cost instants.
func goldenSetup() PaperSetup {
	s := DefaultPaperSetup()
	s.NTimes = 60
	return s
}

func TestGoldenFig3a(t *testing.T) {
	goldenCheck(t, "fig3a", RunFig3a(3, 21))
}

func TestGoldenFig3b(t *testing.T) {
	r, err := RunFig3b()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "fig3b", r)
}

func TestGoldenFig5(t *testing.T) {
	r, err := RunFig5(goldenSetup(), 0, 0, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "fig5", r,
		testkit.Rule{Pattern: "Costs/**", Tol: costTol},
		testkit.Rule{Pattern: "ArgMin", Tol: delayTol},
	)
}

func TestGoldenFig6(t *testing.T) {
	r, err := RunFig6(goldenSetup(), []float64{100e-12, 350e-12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The LMS trace tail is the most FP-sensitive number in the repo (a
	// gradient ratio near the cost minimum), so the histories keep a
	// looser relative band than the headline cost tier.
	goldenCheck(t, "fig6", r,
		testkit.Rule{Pattern: "Traces/*/Result/CostHistory/**", Tol: testkit.Tol{Rel: 1e-6}},
		testkit.Rule{Pattern: "Traces/*/Result/DHistory/**", Tol: testkit.Tol{Rel: 1e-6, Abs: 1e-16}},
		testkit.Rule{Pattern: "Traces/*/Result/DHat", Tol: delayTol},
	)
}

func TestGoldenTable1(t *testing.T) {
	r, err := RunTable1(goldenSetup(), 0)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "table1", r,
		testkit.Rule{Pattern: "*Rows/*/AbsErr", Tol: delayTol},
		testkit.Rule{Pattern: "*Rows/*/RelErr", Tol: derivedTol},
		testkit.Rule{Pattern: "*Rows/*/ReconErr", Tol: derivedTol},
		testkit.Rule{Pattern: "FloorErr", Tol: derivedTol},
	)
}

func TestGoldenEq4(t *testing.T) {
	r, err := RunEq4([]float64{1e-12, 4e-12, 16e-12})
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "eq4", r)
}

func TestGoldenDSweep(t *testing.T) {
	r, err := RunDSweep(DefaultPaperSetup().BandB, 0, 26)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "dsweep", r)
}

func TestGoldenAveraging(t *testing.T) {
	r, err := RunAveraging([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "averaging", r,
		testkit.Rule{Pattern: "Rows/*/SkewErrPS", Tol: psTol},
	)
}

func TestGoldenNoiseFold(t *testing.T) {
	r, err := RunNoiseFold(0.9e9, 1.9e9, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "noisefold", r)
}

func TestGoldenYield(t *testing.T) {
	r, err := RunYieldExperiment(4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "yield", r,
		testkit.Rule{Pattern: "*/Units/*/SkewPS", Tol: psTol},
		testkit.Rule{Pattern: "*/WorstSkewPS", Tol: psTol},
	)
}

func TestGoldenMaskBIST(t *testing.T) {
	r, err := RunMaskBIST(0.3)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "maskbist", r,
		testkit.Rule{Pattern: "Rows/*/Report/DHat", Tol: delayTol},
		testkit.Rule{Pattern: "Rows/*/Report/LMS/DHat", Tol: delayTol},
		testkit.Rule{Pattern: "Rows/*/Report/LMS/CostHistory/**", Tol: costTol},
		testkit.Rule{Pattern: "Rows/*/Report/LMS/DHistory/**", Tol: delayTol},
		testkit.Rule{Pattern: "Rows/*/Report/ReconRelErr", Tol: derivedTol},
	)
}

func TestGoldenFlex(t *testing.T) {
	r, err := RunFlex(0.3)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "flex", r,
		testkit.Rule{Pattern: "Rows/*/SkewErrPS", Tol: psTol},
		testkit.Rule{Pattern: "Rows/*/ReconErr", Tol: derivedTol},
	)
}

func TestGoldenAblate(t *testing.T) {
	// One value per grid around the operating point keeps the sweep under a
	// second; RunAblate()'s full default grid stays covered by
	// TestRunAblateShape.
	r, err := RunAblateSweep(AblateSweep{
		HalfTaps:   []int{30},
		KaiserBeta: []float64{-1, 8},
		NTimes:     []int{60},
		Jitter:     []float64{0, 3e-12},
		BaseNTimes: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "ablate", r,
		testkit.Rule{Pattern: "Rows/*/SkewErrPS", Tol: psTol},
		testkit.Rule{Pattern: "Rows/*/ReconErr", Tol: derivedTol},
		testkit.Rule{Pattern: "GoldenErrPS", Tol: psTol},
		testkit.Rule{Pattern: "LMSErrPS", Tol: psTol},
	)
}

func TestGoldenLoopback(t *testing.T) {
	r, err := RunLoopback()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "loopback", r)
}

func TestGoldenFilterResp(t *testing.T) {
	r, err := RunFilterResp()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "filterresp", r)
}

// TestGoldenCoverage pins the default-grid detection matrix at the same
// reduced scale the campaign property tests use. The golden carries the
// documented escapes (the backed-off 16QAM stimulus shipping PA faults),
// so a physics change in any layer below — faults, stimuli, estimator,
// mask — shows up here as a reviewable diff. Every leaf is byte-exact:
// detection verdicts must not move under any tolerance.
func TestGoldenCoverage(t *testing.T) {
	r, err := RunCoverage(nil, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "coverage", r)
}
