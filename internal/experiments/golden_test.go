package experiments

import (
	"path/filepath"
	"testing"

	"repro/internal/testkit"
)

// The golden regression net: every experiments.Run* entry point runs at a
// reduced-scale configuration (each well under a second) and is compared
// field-by-field against a committed vector. Regenerate after an intended
// behaviour change with
//
//	go test ./internal/experiments -run Golden -update
//
// and review the diff like any other code change — the diff IS the
// experiment-output change the PR ships.
func goldenCheck(t *testing.T, name string, v any, opt testkit.Options) {
	t.Helper()
	testkit.Golden(t, filepath.Join("testdata", "golden", name+".json"), v, opt)
}

// goldenSetup is the reduced-scale PaperSetup shared by the capture-based
// goldens: the paper geometry with fewer cost instants.
func goldenSetup() PaperSetup {
	s := DefaultPaperSetup()
	s.NTimes = 60
	return s
}

func TestGoldenFig3a(t *testing.T) {
	goldenCheck(t, "fig3a", RunFig3a(3, 21), testkit.DefaultOptions())
}

func TestGoldenFig3b(t *testing.T) {
	r, err := RunFig3b()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "fig3b", r, testkit.DefaultOptions())
}

func TestGoldenFig5(t *testing.T) {
	r, err := RunFig5(goldenSetup(), 0, 0, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "fig5", r, testkit.DefaultOptions())
}

func TestGoldenFig6(t *testing.T) {
	r, err := RunFig6(goldenSetup(), []float64{100e-12, 350e-12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The LMS trace tail is the most FP-sensitive number in the repo (a
	// gradient ratio near the cost minimum), so the history gets a looser
	// relative band than the headline estimate.
	opt := testkit.DefaultOptions()
	opt.Rules = []testkit.Rule{
		{Pattern: "Traces/*/Result/CostHistory/**", Tol: testkit.Tol{Rel: 1e-6}},
		{Pattern: "Traces/*/Result/DHistory/**", Tol: testkit.Tol{Rel: 1e-6, Abs: 1e-16}},
	}
	goldenCheck(t, "fig6", r, opt)
}

func TestGoldenTable1(t *testing.T) {
	r, err := RunTable1(goldenSetup(), 0)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "table1", r, testkit.DefaultOptions())
}

func TestGoldenEq4(t *testing.T) {
	r, err := RunEq4([]float64{1e-12, 4e-12, 16e-12})
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "eq4", r, testkit.DefaultOptions())
}

func TestGoldenDSweep(t *testing.T) {
	r, err := RunDSweep(DefaultPaperSetup().BandB, 0, 26)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "dsweep", r, testkit.DefaultOptions())
}

func TestGoldenAveraging(t *testing.T) {
	r, err := RunAveraging([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "averaging", r, testkit.DefaultOptions())
}

func TestGoldenNoiseFold(t *testing.T) {
	r, err := RunNoiseFold(0.9e9, 1.9e9, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "noisefold", r, testkit.DefaultOptions())
}

func TestGoldenYield(t *testing.T) {
	r, err := RunYieldExperiment(4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "yield", r, testkit.DefaultOptions())
}

func TestGoldenMaskBIST(t *testing.T) {
	r, err := RunMaskBIST(0.3)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "maskbist", r, testkit.DefaultOptions())
}

func TestGoldenFlex(t *testing.T) {
	r, err := RunFlex(0.3)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "flex", r, testkit.DefaultOptions())
}

func TestGoldenAblate(t *testing.T) {
	// One value per grid around the operating point keeps the sweep under a
	// second; RunAblate()'s full default grid stays covered by
	// TestRunAblateShape.
	r, err := RunAblateSweep(AblateSweep{
		HalfTaps:   []int{30},
		KaiserBeta: []float64{-1, 8},
		NTimes:     []int{60},
		Jitter:     []float64{0, 3e-12},
		BaseNTimes: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "ablate", r, testkit.DefaultOptions())
}

func TestGoldenLoopback(t *testing.T) {
	r, err := RunLoopback()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "loopback", r, testkit.DefaultOptions())
}

func TestGoldenFilterResp(t *testing.T) {
	r, err := RunFilterResp()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "filterresp", r, testkit.DefaultOptions())
}

// TestGoldenCoverage pins the default-grid detection matrix at the same
// reduced scale the campaign property tests use. The golden carries the
// documented escapes (the backed-off 16QAM stimulus shipping PA faults),
// so a physics change in any layer below — faults, stimuli, estimator,
// mask — shows up here as a reviewable diff.
func TestGoldenCoverage(t *testing.T) {
	r, err := RunCoverage(nil, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "coverage", r, testkit.DefaultOptions())
}
