package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// asciiPlot renders an (x, y) series as a terminal scatter/line chart.
// It is deliberately minimal: fixed-size grid, dot markers, axis labels at
// the corners — enough to eyeball the shapes of Fig. 3a, Fig. 5 and Fig. 6.
type asciiPlot struct {
	w, h   int
	grid   [][]byte
	xMin   float64
	xMax   float64
	yMin   float64
	yMax   float64
	xLabel string
	yLabel string
}

// newAsciiPlot allocates a w x h plot over the given axis ranges.
func newAsciiPlot(w, h int, xMin, xMax, yMin, yMax float64, xLabel, yLabel string) *asciiPlot {
	if w < 16 {
		w = 16
	}
	if h < 8 {
		h = 8
	}
	g := make([][]byte, h)
	for i := range g {
		g[i] = []byte(strings.Repeat(" ", w))
	}
	return &asciiPlot{w: w, h: h, grid: g,
		xMin: xMin, xMax: xMax, yMin: yMin, yMax: yMax,
		xLabel: xLabel, yLabel: yLabel}
}

// cell maps data coordinates to a grid cell, reporting false when outside.
func (p *asciiPlot) cell(x, y float64) (cx, cy int, ok bool) {
	if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(y, 0) {
		return 0, 0, false
	}
	fx := (x - p.xMin) / (p.xMax - p.xMin)
	fy := (y - p.yMin) / (p.yMax - p.yMin)
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 {
		return 0, 0, false
	}
	cx = int(fx * float64(p.w-1))
	cy = p.h - 1 - int(fy*float64(p.h-1))
	return cx, cy, true
}

// mark places a marker at data coordinates.
func (p *asciiPlot) mark(x, y float64, c byte) {
	if cx, cy, ok := p.cell(x, y); ok {
		p.grid[cy][cx] = c
	}
}

// series plots a whole curve.
func (p *asciiPlot) series(xs, ys []float64, c byte) {
	for i := range xs {
		if i < len(ys) {
			p.mark(xs[i], ys[i], c)
		}
	}
}

// render writes the plot with a frame and corner labels.
func (p *asciiPlot) render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", p.yLabel)
	fmt.Fprintf(w, "%9.3g +%s+\n", p.yMax, strings.Repeat("-", p.w))
	for _, row := range p.grid {
		fmt.Fprintf(w, "%9s |%s|\n", "", string(row))
	}
	fmt.Fprintf(w, "%9.3g +%s+\n", p.yMin, strings.Repeat("-", p.w))
	fmt.Fprintf(w, "%9s  %-*.3g%*.3g   %s\n", "", p.w/2, p.xMin, p.w-p.w/2, p.xMax, p.xLabel)
}
