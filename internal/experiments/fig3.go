package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dsp"
	"repro/internal/pnbs"
)

// Fig3aResult holds the PBS constraint wedges of Fig. 3a: for each wrap
// factor n, the lower/upper alias-free boundaries of fs/B versus fH/B.
type Fig3aResult struct {
	FhOverB []float64
	Curves  map[int][2][]float64
	NMax    int
}

// RunFig3a samples the normalised constraint diagram over fH/B in [1, 7]
// (the paper's axis) for the wedges n = 1..nMax.
func RunFig3a(nMax, nPts int) *Fig3aResult {
	if nMax <= 0 {
		nMax = 3
	}
	if nPts <= 1 {
		nPts = 61
	}
	axis := dsp.Linspace(1, 7, nPts)
	return &Fig3aResult{
		FhOverB: axis,
		Curves:  pnbs.BoundaryCurves(axis, nMax),
		NMax:    nMax,
	}
}

// Render prints the boundary series (one row per axis point).
func (r *Fig3aResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 3a — PBS alias-free wedges (normalised): fs/B bounds per wrap factor n")
	header := []string{"fH/B"}
	for n := 1; n <= r.NMax; n++ {
		header = append(header, fmt.Sprintf("n=%d lo", n), fmt.Sprintf("n=%d hi", n))
	}
	rows := make([][]string, 0, len(r.FhOverB))
	for i, x := range r.FhOverB {
		row := []string{fmt.Sprintf("%.2f", x)}
		for n := 1; n <= r.NMax; n++ {
			c := r.Curves[n]
			lo, hi := c[0][i], c[1][i]
			loS := fmt.Sprintf("%.3f", lo)
			hiS := "inf"
			if !math.IsInf(hi, 1) {
				hiS = fmt.Sprintf("%.3f", hi)
			}
			if !math.IsInf(hi, 1) && hi < lo {
				loS, hiS = "-", "-" // wedge closed at this fH/B
			}
			row = append(row, loS, hiS)
		}
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
	fmt.Fprintln(w, "Closed wedges ('-') alias for every fs in that family; the minimum ideal rate is fs/B = 2 (PNBS achieves it for every fH/B).")

	// Region map in the style of Fig. 3a: '#' where uniform sampling
	// aliases, ' ' where it is safe, '=' the PNBS minimal-rate line.
	fmt.Fprintln(w, "\nregion map (x: fH/B in [1,7], y: fs/B in [0,8]):")
	plot := newAsciiPlot(64, 20, 1, 7, 0, 8, "fH/B", "fs/B")
	for ix := 0; ix < 64; ix++ {
		r := 1 + 6*float64(ix)/63
		band := pnbs.Band{FLow: (r - 1) * 1e6, B: 1e6} // normalised: B = 1
		if band.FLow <= 0 {
			continue
		}
		for iy := 0; iy < 20; iy++ {
			fs := 8 * float64(iy) / 19
			if fs <= 0 {
				continue
			}
			aliases, err := pnbs.Aliases(band, fs*1e6)
			if err == nil && aliases {
				plot.mark(r, fs, '#')
			}
		}
	}
	for ix := 0; ix < 64; ix++ {
		plot.mark(1+6*float64(ix)/63, 2, '=')
	}
	plot.render(w)
	fmt.Fprintln(w, "'#': aliasing; blank: alias-free PBS; '=': the PNBS rate 2B, valid everywhere.")
}

// Fig3bResult lists the feasible uniform subsampling windows for the
// paper's fH = 2.03 GHz, B = 30 MHz example between 60 and 100 MHz.
type Fig3bResult struct {
	Band    pnbs.Band
	Windows []pnbs.RateWindow
}

// RunFig3b computes the Fig. 3b windows.
func RunFig3b() (*Fig3bResult, error) {
	band := pnbs.Band{FLow: 2e9, B: 30e6}
	wins, err := pnbs.WindowsInRange(band, 60e6, 100e6)
	if err != nil {
		return nil, err
	}
	return &Fig3bResult{Band: band, Windows: wins}, nil
}

// Render prints the windows with their clock-precision budgets.
func (r *Fig3bResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 3b — alias-free uniform rates for fH = %.3f GHz, B = %.0f MHz, fs in [60, 100] MHz\n",
		r.Band.FHigh()/1e9, r.Band.B/1e6)
	rows := make([][]string, 0, len(r.Windows))
	for _, win := range r.Windows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", win.N),
			mhz(win.Lo), mhz(win.Hi),
			fmt.Sprintf("%.1f", win.Width()/1e3),
			fmt.Sprintf("%.1f", pnbs.RequiredClockPrecision(win)/1e3),
		})
	}
	writeTable(w, []string{"n", "fs lo [MHz]", "fs hi [MHz]", "width [kHz]", "+-precision [kHz]"}, rows)
	fmt.Fprintln(w, "Near fs = 2B the budget is a few kHz; even near 90 MHz it is a few hundred kHz — the paper's fragility argument for PBS.")
}
