package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/par"
)

// YieldResult is the Monte-Carlo production experiment: an in-spec lot and
// a marginal lot through the full BIST.
type YieldResult struct {
	InSpec   *core.YieldReport
	Marginal *core.YieldReport
	Units    int
}

// RunYieldExperiment simulates two lots of nUnits devices: one drawn from
// the typical (in-spec) process spread, one from a marginal lot whose IQ
// quadrature spread straddles the IRR limit. A healthy test program shows
// ~100 % yield on the first and a meaningful fallout on the second with no
// measurement-induced (false-alarm) loss.
func RunYieldExperiment(nUnits int, scale float64) (*YieldResult, error) {
	if nUnits <= 0 {
		nUnits = 12
	}
	if scale <= 0 || scale > 1 {
		scale = 0.5
	}
	base := core.PaperScenario()
	base.CaptureLen = int(2200 * scale)
	if base.CaptureLen < 900 {
		base.CaptureLen = 900
	}
	base.NTimes = 150
	base.PSDLen = int(2048 * scale)
	if base.PSDLen < 512 {
		base.PSDLen = 512
	}
	base.SegLen = base.PSDLen / 4
	base.IRRTest = true

	marginal := core.TypicalSpread()
	marginal.IQPhaseSigmaDeg = 2.5
	marginal.IQGainSigmaDB = 0.4
	// The two lots are independent Monte-Carlo runs (RunYield itself fans
	// its units over the same pool), so they proceed concurrently.
	lots := []struct {
		name   string
		spread core.ProcessSpread
		seed   int64
	}{
		{"in-spec lot", core.TypicalSpread(), 1001},
		{"marginal lot", marginal, 1002},
	}
	reps, err := par.MapErr(len(lots), func(i int) (*core.YieldReport, error) {
		rep, err := core.RunYield(base, lots[i].spread, nUnits, lots[i].seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", lots[i].name, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	return &YieldResult{InSpec: reps[0], Marginal: reps[1], Units: nUnits}, nil
}

// Render prints the lot comparison.
func (r *YieldResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Monte-Carlo production yield (%d units per lot, full BIST per unit)\n", r.Units)
	rows := [][]string{
		{"in-spec lot", fmt.Sprintf("%.0f%%", 100*r.InSpec.Yield),
			fmt.Sprintf("%.2f ps", r.InSpec.WorstSkewPS),
			fmt.Sprintf("%+.1f dB", r.InSpec.WorstMarginDB)},
		{"marginal-IQ lot", fmt.Sprintf("%.0f%%", 100*r.Marginal.Yield),
			fmt.Sprintf("%.2f ps", r.Marginal.WorstSkewPS),
			fmt.Sprintf("%+.1f dB", r.Marginal.WorstMarginDB)},
	}
	writeTable(w, []string{"lot", "yield", "worst skew err", "worst mask margin"}, rows)
	fmt.Fprintln(w, "The in-spec lot passes wholesale (no false alarms from the instrument); the marginal lot shows real fallout at the IRR limit.")
}
