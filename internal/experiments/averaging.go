package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/skew"
)

// AveragingRow is one point of the multi-capture averaging sweep.
type AveragingRow struct {
	Captures  int
	SkewErrPS float64
	CostEvals int
}

// AveragingResult shows how averaging K independent captures shrinks the
// jitter-limited delay-estimation error. Averaging removes the
// jitter-noise VARIANCE of the empirical cost minimum (~1/sqrt(K)); a
// small residual BIAS of order sigma_j^2 remains because the expected
// jitter-noise power itself depends weakly on the delay estimate —
// reaching the paper's <0.1 ps regime therefore needs both averaging and a
// cleaner clock (see the jitter ablation).
type AveragingResult struct {
	Rows []AveragingRow
}

// RunAveraging sweeps the capture count. All captures share the DUT and the
// true delay; jitter and quantization noise are independent per capture.
func RunAveraging(ks []int) (*AveragingResult, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8, 16}
	}
	s := DefaultPaperSetup()
	tx, err := s.buildTx()
	if err != nil {
		return nil, err
	}
	out := tx.Output()
	res := &AveragingResult{}
	for _, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("experiments: capture count %d invalid", k)
		}
		evals := make([]*skew.CostEvaluator, 0, k)
		var actualD float64
		for j := 0; j < k; j++ {
			sj := s
			sj.Seed = s.Seed + int64(j)*101 // independent jitter per capture
			// Stagger successive captures by an irrational fraction of the
			// sample period to decorrelate quantization error.
			stagger := float64(j) * 0.381966 * s.BandB.T()
			setB, setB1, d, err := sj.AcquireDualRateAt(out, 220, stagger)
			if err != nil {
				return nil, err
			}
			actualD = d
			ce, err := sj.Evaluator(setB, setB1)
			if err != nil {
				return nil, err
			}
			evals = append(evals, ce)
		}
		mc, err := skew.NewMultiCost(evals)
		if err != nil {
			return nil, err
		}
		r, err := skew.EstimateMulti(mc, 100e-12, skew.LMSConfig{Mu0: 1e-12})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AveragingRow{
			Captures:  k,
			SkewErrPS: math.Abs(r.DHat-actualD) * 1e12,
			CostEvals: r.CostEvals,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AveragingResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Multi-capture averaging — jitter-limited skew error vs capture count")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Captures),
			fmt.Sprintf("%.3f", row.SkewErrPS),
			fmt.Sprintf("%d", row.CostEvals),
		})
	}
	writeTable(w, []string{"captures K", "skew err [ps]", "cost evals"}, rows)
	fmt.Fprintln(w, "Averaging removes the variance part of the error; the remaining few tenths of a ps is a jitter-induced bias (~sigma_j^2) of the cost minimum itself, which only a cleaner sampling clock removes (see 'bistlab ablate', jitterPS sweep).")
}
