package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/modem"
	"repro/internal/rf"
	"repro/internal/sig"
)

// LoopbackResult contrasts the classic loopback BIST with the paper's
// direct-observation PNBS BIST on the same marginal transmitter — the
// fault-masking argument of Section I, executed.
type LoopbackResult struct {
	// TxEVMTrue is the transmitter's own modulation error (ground truth).
	TxEVMTrue float64
	// LoopbackEVM is the end-to-end EVM measured through an exceptionally
	// good receiver.
	LoopbackEVM float64
	// FieldEVM is the end-to-end EVM through a nominal receiver — what the
	// escaped unit will do in the field.
	FieldEVM float64
	// PNBSEVM is the Tx EVM measured directly through the nonuniform
	// reconstruction path.
	PNBSEVM float64
	// Limits used by the two test programs.
	TxLimit, E2ELimit float64
	// Verdicts.
	LoopbackPass bool
	PNBSPass     bool
}

// RunLoopback builds a marginal transmitter (IQ imbalance pushing its
// modulation error just past the Tx budget), measures it (a) in loopback
// through a golden receiver against the end-to-end spec, and (b) with the
// PNBS BIST against the transmitter's own budget.
func RunLoopback() (*LoopbackResult, error) {
	res := &LoopbackResult{TxLimit: 6, E2ELimit: 10}

	// The marginal DUT: ~22 dB IRR contributes ~8 % EVM — out of the 6 %
	// Tx budget but inside the 10 % end-to-end budget on its own.
	marginalIQ := rf.FromImbalanceDB(1.0, 6, 0)

	cfg := core.PaperScenario()
	cfg.CaptureLen = 1400
	cfg.NTimes = 150
	cfg.PSDLen = 1024
	cfg.SegLen = 256
	cfg.Tx.IQ = marginalIQ
	cfg.Mask = nil // isolate the modulation-quality test
	cfg.EVMTest = true
	cfg.MaxEVMPercent = res.TxLimit
	b, err := core.New(cfg)
	if err != nil {
		return nil, err
	}

	// Ground truth: demodulate the Tx envelope directly.
	pulse, err := modem.NewSRRC(1/cfg.SymbolRate, cfg.RollOff, 8)
	if err != nil {
		return nil, err
	}
	mf, err := modem.NewMatchedFilter(pulse, 8)
	if err != nil {
		return nil, err
	}
	refSyms := func(k0, n int) []complex128 {
		out := make([]complex128, n)
		syms := b.Baseband().Symbols
		m := len(syms)
		for i := range out {
			out[i] = syms[((k0+i)%m+m)%m]
		}
		return out
	}
	evmOf := func(env sig.Envelope, k0, n int) (float64, error) {
		got := mf.Demod(env, k0, n)
		ref := refSyms(k0, n)
		norm, err := modem.NormalizeScaleAndPhase(got, ref)
		if err != nil {
			return 0, err
		}
		r, err := modem.EVM(norm, ref)
		if err != nil {
			return 0, err
		}
		return r.RMSPercent, nil
	}
	truth, err := evmOf(b.Transmitter().OutputEnvelope(), 4, 48)
	if err != nil {
		return nil, err
	}
	res.TxEVMTrue = truth

	// Loopback through a receiver: sample the RF output, demodulate.
	loop := func(rxCfg rf.RxConfig) (float64, error) {
		rx, err := rf.NewReceiver(rxCfg)
		if err != nil {
			return 0, err
		}
		fs := 8 * cfg.SymbolRate
		nSym := 48
		span := 8 / cfg.SymbolRate
		n := int((float64(nSym)/cfg.SymbolRate + 4*span) * fs)
		t0 := -2 * span
		bb, err := rx.SampleBaseband(b.Transmitter().Output(), fs, t0, n)
		if err != nil {
			return 0, err
		}
		env, err := sig.NewSampledEnvelope(t0, 1/fs, bb)
		if err != nil {
			return 0, err
		}
		lo, hi := env.Span()
		k0 := int(math.Ceil((lo + span) * cfg.SymbolRate))
		kEnd := int(math.Floor((hi - span) * cfg.SymbolRate))
		if kEnd-k0 < 16 {
			return 0, fmt.Errorf("experiments: loopback window too short")
		}
		if kEnd-k0 > nSym {
			kEnd = k0 + nSym
		}
		return evmOf(env, k0, kEnd-k0)
	}
	golden, err := loop(rf.RxConfig{Fc: cfg.Fc, Seed: 5}) // exceptionally good Rx
	if err != nil {
		return nil, err
	}
	res.LoopbackEVM = golden
	res.LoopbackPass = golden <= res.E2ELimit

	// The same unit through a NOMINAL receiver (its own noise and IQ
	// error): the field link the escape will actually live on.
	field, err := loop(rf.RxConfig{
		Fc:       cfg.Fc,
		NoiseRMS: 0.04,
		IQ:       rf.FromImbalanceDB(0.5, 3, 0),
		Seed:     6,
	})
	if err != nil {
		return nil, err
	}
	res.FieldEVM = field

	// The PNBS BIST: direct Tx observation.
	rep, err := b.Run()
	if err != nil {
		return nil, err
	}
	if rep.EVM == nil {
		return nil, fmt.Errorf("experiments: PNBS EVM missing")
	}
	res.PNBSEVM = rep.EVM.RMSPercent
	res.PNBSPass = rep.Pass
	return res, nil
}

// Render prints the comparison.
func (r *LoopbackResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Loopback fault masking vs direct PNBS observation (paper Section I)")
	verdict := func(pass bool) string {
		if pass {
			return "PASS"
		}
		return "FAIL"
	}
	rows := [][]string{
		{"Tx modulation error (ground truth)", pctv(r.TxEVMTrue), fmt.Sprintf("Tx budget %.0f%%", r.TxLimit)},
		{"loopback EVM via golden Rx", pctv(r.LoopbackEVM),
			fmt.Sprintf("e2e limit %.0f%% -> %s", r.E2ELimit, verdict(r.LoopbackPass))},
		{"PNBS BIST EVM (direct Tx)", pctv(r.PNBSEVM),
			fmt.Sprintf("Tx limit %.0f%% -> %s", r.TxLimit, verdict(r.PNBSPass))},
		{"field link via nominal Rx", pctv(r.FieldEVM), "what the escape ships as"},
	}
	writeTable(w, []string{"measurement", "EVM", "verdict / note"}, rows)
	fmt.Fprintln(w, "The exceptionally good receiver masks the marginal transmitter (loopback PASS = test escape); the PNBS BIST observes the Tx directly and rejects it. In the field, a nominal receiver pushes the link toward the end-to-end limit.")
}

// pctv formats an EVM percentage value.
func pctv(v float64) string { return fmt.Sprintf("%.2f%%", v) }
