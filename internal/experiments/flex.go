package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pnbs"
)

// FlexRow summarises one multistandard configuration.
type FlexRow struct {
	Label string
	Fc    float64
	B     float64
	// PNBSRate is the total PNBS conversion rate (2B, always minimal).
	PNBSRate float64
	// PBSWindow is the narrowest constraint the best alias-free uniform
	// rate must satisfy (clock precision budget, +- Hz); Inf when simple
	// oversampling is the only option.
	PBSMinRate    float64
	PBSPrecision  float64
	SkewErrPS     float64
	ReconErr      float64
	MaskPass      bool
	LMSIterations int
}

// FlexResult is the Section II-B flexibility experiment (E9): the same BIST
// runs unchanged across waveforms and carriers at the minimal rate, while
// the PBS baseline needs per-configuration rate planning with kHz-level
// precision.
type FlexResult struct {
	Rows []FlexRow
}

// RunFlex executes every multistandard scenario at the given scale (see
// RunMaskBIST for the scale semantics).
func RunFlex(scale float64) (*FlexResult, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	res := &FlexResult{}
	for _, cfg := range core.MultistandardScenarios() {
		cfg.CaptureLen = int(2200 * scale)
		if cfg.CaptureLen < 700 {
			cfg.CaptureLen = 700
		}
		// The empirical cost minimum wanders as 1/sqrt(NTimes); higher
		// carriers are more sensitive (Eq. 4), so never go below the
		// paper's N = 300 here.
		cfg.NTimes = 300
		cfg.PSDLen = int(2048 * scale)
		if cfg.PSDLen < 512 {
			cfg.PSDLen = 512
		}
		cfg.SegLen = cfg.PSDLen / 4
		b, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := b.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: flex %s@%.3g: %w", cfg.Constellation, cfg.Fc, err)
		}
		band := b.Band()
		win, err := pnbs.MinAliasFreeRate(band)
		if err != nil {
			return nil, err
		}
		label := cfg.Name
		if label == "" {
			label = cfg.Constellation
		}
		res.Rows = append(res.Rows, FlexRow{
			Label:         fmt.Sprintf("%s %.3g MHz @ %.3g GHz", label, cfg.SymbolRate/1e6, cfg.Fc/1e9),
			Fc:            cfg.Fc,
			B:             cfg.B,
			PNBSRate:      2 * cfg.B,
			PBSMinRate:    win.Lo,
			PBSPrecision:  pnbs.RequiredClockPrecision(win),
			SkewErrPS:     rep.SkewErrPS(),
			ReconErr:      rep.ReconRelErr,
			MaskPass:      rep.Mask != nil && rep.Mask.Pass,
			LMSIterations: rep.LMS.Iterations,
		})
	}
	return res, nil
}

// Render prints the comparison.
func (r *FlexResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Multistandard flexibility — PNBS BIST vs PBS rate planning")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			fmt.Sprintf("%.0f", row.PNBSRate/1e6),
			fmt.Sprintf("%.3f", row.PBSMinRate/1e6),
			fmt.Sprintf("%.1f", row.PBSPrecision/1e3),
			fmt.Sprintf("%.3f", row.SkewErrPS),
			pct(row.ReconErr),
			fmt.Sprintf("%v", row.MaskPass),
			fmt.Sprintf("%d", row.LMSIterations),
		})
	}
	writeTable(w, []string{"configuration", "PNBS rate [MHz]", "PBS min rate [MHz]",
		"PBS +-prec [kHz]", "skew err [ps]", "recon err", "mask", "LMS iters"}, rows)
	fmt.Fprintln(w, "PNBS always runs at the theoretical minimum 2B regardless of carrier; PBS needs a per-configuration rate hunt with kHz-level clock precision.")
}
