package experiments

import (
	"repro/internal/campaign"
)

// RunCoverage executes a stimulus-coverage campaign and returns its
// detection matrix. A nil grid runs the committed default campaign
// (campaign.DefaultGrid): four stimuli spanning the drive/payload corners
// crossed with the whole extended fault catalogue. scale (when in (0, 1))
// and units (when > 0) override the grid's knobs, mirroring how the other
// experiment runners take -scale; the golden vector pins the default grid
// at reduced scale, where the matrix — including its documented escapes —
// is byte-reproducible at any worker count.
func RunCoverage(g *campaign.Grid, scale float64, units int) (*campaign.DetectionMatrix, error) {
	grid := campaign.DefaultGrid()
	if g != nil {
		grid = *g
	}
	if scale > 0 && scale < 1 {
		grid.Scale = scale
	}
	if units > 0 {
		grid.Units = units
	}
	return grid.Run()
}
