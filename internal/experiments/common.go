// Package experiments contains the runners that regenerate every table and
// figure of the paper's evaluation (see DESIGN.md's experiment index). Each
// runner returns a structured result and can render itself as the text
// table/series the paper prints; cmd/bistlab and the repository benchmarks
// are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/adc"
	"repro/internal/core"
	"repro/internal/pnbs"
	"repro/internal/rf"
	"repro/internal/sig"
	"repro/internal/skew"
	"repro/internal/tiadc"
)

// PaperSetup bundles the Section V simulation constants shared by the
// Fig. 5 / Fig. 6 / Table I experiments.
type PaperSetup struct {
	// BandB is the rate-B capture band (fc = 1 GHz, B = 90 MHz).
	BandB pnbs.Band
	// BandB1 is the half-rate band (B1 = 45 MHz).
	BandB1 pnbs.Band
	// D is the true channel delay (180 ps).
	D float64
	// JitterRMS is the clock time-skew jitter (3 ps rms).
	JitterRMS float64
	// Bits is the ADC resolution (10).
	Bits int
	// HalfTaps is nw/2 (30 -> 61 taps).
	HalfTaps int
	// KaiserBeta shapes the reconstruction window (0 = 8; negative = no
	// taper, see pnbs.Options.KaiserBeta).
	KaiserBeta float64
	// NTimes is the cost-function point count (300).
	NTimes int
	// Seed drives every stochastic block.
	Seed int64
}

// DefaultPaperSetup returns the Section V constants.
func DefaultPaperSetup() PaperSetup {
	bandB := pnbs.Band{FLow: 955e6, B: 90e6}
	return PaperSetup{
		BandB:     bandB,
		BandB1:    skew.HalfRateBand(bandB),
		D:         180e-12,
		JitterRMS: 3e-12,
		Bits:      10,
		HalfTaps:  30,
		NTimes:    300,
		Seed:      2014,
	}
}

// buildTx assembles the paper's homodyne transmitter with the QPSK test
// signal (10 MHz symbols, SRRC alpha = 0.5, fc = 1 GHz) and no impairments.
func (s PaperSetup) buildTx() (*rf.Transmitter, error) {
	cfg := core.PaperScenario()
	b, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return b.Transmitter(), nil
}

// buildTIADC assembles the paper's two-channel sampler: 10-bit ADCs, 3 ps
// rms clock jitter, ideal gain/offset (Section V assumes no gain/offset
// mismatch).
func (s PaperSetup) buildTIADC() (*tiadc.TIADC, error) {
	return tiadc.New(tiadc.Config{
		Ch0:            adc.Config{Bits: s.Bits, FullScale: 1.5, Seed: s.Seed + 1},
		Ch1:            adc.Config{Bits: s.Bits, FullScale: 1.5, Seed: s.Seed + 2},
		DCDE:           tiadc.DCDE{Min: 0, Max: 480e-12},
		ClockJitterRMS: s.JitterRMS,
		Seed:           s.Seed + 3,
	})
}

// AcquireDualRate captures the transmitter output at rates B and B1 = B/2
// with the paper's geometry and returns the two sample sets plus the
// realised delay.
func (s PaperSetup) AcquireDualRate(out sig.Signal, nB int) (setB, setB1 skew.SampleSet, actualD float64, err error) {
	return s.AcquireDualRateAt(out, nB, 0)
}

// AcquireDualRateAt additionally staggers the capture start by the given
// offset. Successive hardware captures never begin at the same clock phase;
// a sub-period stagger decorrelates the quantization error between captures,
// which matters when averaging several acquisitions.
func (s PaperSetup) AcquireDualRateAt(out sig.Signal, nB int, stagger float64) (setB, setB1 skew.SampleSet, actualD float64, err error) {
	ti, err := s.buildTIADC()
	if err != nil {
		return setB, setB1, 0, err
	}
	t := s.BandB.T()
	// Start the capture HalfTaps periods early so the valid reconstruction
	// window begins near t = 0 regardless of the filter length.
	capB, err := ti.Capture(out, t, s.D, -float64(s.HalfTaps)*t+stagger, nB)
	if err != nil {
		return setB, setB1, 0, err
	}
	t1 := 2 * t
	n1 := nB/2 + 2*s.HalfTaps + 4
	capB1, err := ti.Capture(out, t1, s.D, -float64(s.HalfTaps)*t1+stagger, n1)
	if err != nil {
		return setB, setB1, 0, err
	}
	setB = skew.SampleSet{Band: s.BandB, T0: capB.T0, Ch0: capB.Ch0, Ch1: capB.Ch1}
	setB1 = skew.SampleSet{Band: s.BandB1, T0: capB1.T0, Ch0: capB1.Ch0, Ch1: capB1.Ch1}
	return setB, setB1, capB.ActualD, nil
}

// Evaluator builds the paper's cost evaluator over N random instants in
// [470, 1700] ns.
func (s PaperSetup) Evaluator(setB, setB1 skew.SampleSet) (*skew.CostEvaluator, error) {
	opt := pnbs.Options{HalfTaps: s.HalfTaps, KaiserBeta: s.KaiserBeta}
	lo, hi, err := skew.EvalWindow(setB, setB1, opt)
	if err != nil {
		return nil, err
	}
	tLo, tHi := 470e-9, 1700e-9
	if tLo < lo || tHi > hi {
		return nil, fmt.Errorf("experiments: capture window [%g, %g] does not cover the paper's interval", lo, hi)
	}
	times := skew.RandomTimes(tLo, tHi, s.NTimes, s.Seed+5)
	return skew.NewCostEvaluator(setB, setB1, times, opt)
}

// writeTable renders an aligned text table.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// ps formats seconds as picoseconds.
func ps(v float64) string { return fmt.Sprintf("%.3f", v*1e12) }

// pct formats a ratio as percent.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// mhz formats Hz as MHz.
func mhz(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4f", v/1e6)
}
