package testkit

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTolSemantics(t *testing.T) {
	cases := []struct {
		tol        Tol
		got, want  float64
		shouldPass bool
	}{
		{Tol{}, 1, 1, true},
		{Tol{}, 1, 1 + 1e-15, false}, // zero Tol is exact
		{Tol{Abs: 1e-12}, 180e-12, 180.5e-12, true},
		{Tol{Abs: 1e-13}, 180e-12, 182e-12, false},
		{Tol{Rel: 1e-9}, 1e6, 1e6 * (1 + 5e-10), true},
		{Tol{Rel: 1e-9}, 1e6, 1e6 * (1 + 5e-9), false},
		{Tol{Rel: 1e-9}, math.NaN(), math.NaN(), true},
		{Tol{Rel: 1e-9}, math.NaN(), 1, false},
		{Tol{Rel: 1e-9}, math.Inf(1), math.Inf(1), true},
		{Tol{Rel: 1e-9}, math.Inf(1), math.Inf(-1), false},
		{Tol{Rel: 1e-9}, math.Inf(1), 1e308, false},
	}
	for i, c := range cases {
		if got := c.tol.ok(c.got, c.want); got != c.shouldPass {
			t.Errorf("case %d: tol %+v ok(%g, %g) = %v, want %v", i, c.tol, c.got, c.want, got, c.shouldPass)
		}
	}
}

func TestRuleMatching(t *testing.T) {
	opt := Options{
		Default: Tol{},
		Rules: []Rule{
			{Pattern: "Rows/*/ReconErr", Tol: Tol{Abs: 1}},
			{Pattern: "Traces/**", Tol: Tol{Abs: 2}},
			{Pattern: "DTrue", Tol: Tol{Abs: 3}},
		},
	}
	cases := map[string]float64{
		"Rows/0/ReconErr":      1,
		"Rows/12/ReconErr":     1,
		"Rows/0/SkewErr":       0,
		"Traces/0/Result/DHat": 2,
		"Traces/5":             2,
		"Traces":               0, // subtree pattern is strictly below
		"DTrue":                3,
		"Other":                0,
	}
	for p, want := range cases {
		if got := opt.tolFor(p).Abs; got != want {
			t.Errorf("tolFor(%q).Abs = %g, want %g", p, got, want)
		}
	}
}

type doc struct {
	A float64
	B []float64
	C string
	N float64 // NaN/Inf channel
}

func TestCompareWithinTolerance(t *testing.T) {
	w := doc{A: 1, B: []float64{1, 2, 3}, C: "x", N: math.NaN()}
	g := w
	g.A = 1 + 1e-12
	g.B = []float64{1, 2 + 1e-12, 3}
	ms, err := Compare(g, w, Options{Default: Tol{Rel: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("unexpected mismatches: %v", ms)
	}
}

func TestCompareFlagsDrift(t *testing.T) {
	w := doc{A: 1, B: []float64{1, 2, 3}, C: "x"}
	g := doc{A: 1.1, B: []float64{1, 2, 4}, C: "y"}
	ms, err := Compare(g, w, Options{Default: Tol{Rel: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("want 3 mismatches, got %v", ms)
	}
	paths := map[string]bool{}
	for _, m := range ms {
		paths[m.Path] = true
	}
	for _, p := range []string{"A", "B/2", "C"} {
		if !paths[p] {
			t.Errorf("missing mismatch at %s: %v", p, ms)
		}
	}
}

func TestCompareStructural(t *testing.T) {
	type v1 struct{ A, B float64 }
	type v2 struct{ A, X float64 }
	ms, err := Compare(v2{A: 1, X: 2}, v1{A: 1, B: 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 { // B missing, X extra
		t.Fatalf("want 2 structural mismatches, got %v", ms)
	}
	// Array length change is one mismatch, not a flood.
	ms, err = Compare(doc{B: []float64{1}}, doc{B: []float64{1, 2, 3}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Path == "B" && strings.Contains(m.Got, "array of 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("array length mismatch not reported: %v", ms)
	}
}

// recorder satisfies TB and captures failures.
type recorder struct {
	fatal, errs, logs []string
}

func (r *recorder) Helper() {}
func (r *recorder) Fatalf(f string, a ...any) {
	r.fatal = append(r.fatal, f)
}
func (r *recorder) Errorf(f string, a ...any) {
	r.errs = append(r.errs, f)
}
func (r *recorder) Logf(f string, a ...any) {
	r.logs = append(r.logs, f)
}

func TestGoldenUpdateAndCompareCycle(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "sub", "case.json")
	v := doc{A: 42e-12, B: []float64{1, math.Inf(1)}, C: "hello", N: math.NaN()}

	// Missing golden: fatal with a regeneration hint.
	var rec recorder
	Golden(&rec, p, v, DefaultOptions())
	if len(rec.fatal) == 0 {
		t.Fatal("missing golden must be fatal")
	}

	// -update writes it (and a second write is byte-identical).
	old := *Update
	*Update = true
	rec = recorder{}
	Golden(&rec, p, v, DefaultOptions())
	first, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	Golden(&rec, p, v, DefaultOptions())
	second, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	*Update = old
	if string(first) != string(second) {
		t.Fatal("-update not byte-deterministic")
	}
	if len(rec.fatal)+len(rec.errs) != 0 {
		t.Fatalf("update flow failed: %+v", rec)
	}

	// Same value compares clean.
	rec = recorder{}
	Golden(&rec, p, v, DefaultOptions())
	if len(rec.fatal)+len(rec.errs) != 0 {
		t.Fatalf("clean compare failed: %+v", rec)
	}

	// Out-of-tolerance drift fails.
	drift := v
	drift.A = 43e-12
	rec = recorder{}
	Golden(&rec, p, drift, DefaultOptions())
	if len(rec.errs) == 0 {
		t.Fatal("drift not detected")
	}

	// In-tolerance drift passes with a loose rule on exactly that field.
	rec = recorder{}
	Golden(&rec, p, drift, Options{
		Default: Tol{Rel: 1e-9},
		Rules:   []Rule{{Pattern: "A", Tol: Tol{Abs: 2e-12}}},
	})
	if len(rec.fatal)+len(rec.errs) != 0 {
		t.Fatalf("rule did not absorb drift: %+v", rec)
	}
}
