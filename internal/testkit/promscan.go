package testkit

import (
	"bufio"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Minimal Prometheus text-format (0.0.4) scanner for tests: enough
// structure checking to catch a malformed exposition — names, TYPE
// discipline, sample syntax, cumulative histogram buckets — without
// pulling a client library into the module. This is a test utility, not a
// full parser: exotic escapes and exemplars are out of scope.

// PromFamily is one scanned metric family: its TYPE line plus every
// sample that belongs to it (histogram _bucket/_sum/_count samples are
// attributed to the base family).
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// PromSample is one sample line.
type PromSample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$`)
	promLabelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// ScanProm parses a Prometheus text exposition and validates its
// structure: every sample must follow a TYPE line for its family, names
// must be legal, histogram buckets must be cumulative and end at
// le="+Inf" with a _count equal to the +Inf bucket. Families are returned
// sorted by name.
func ScanProm(text string) ([]PromFamily, error) {
	fams := map[string]*PromFamily{}
	var order []string
	base := func(sample string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(sample, suf); ok {
				if f, exists := fams[b]; exists && f.Type == "histogram" {
					return b
				}
			}
		}
		return sample
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				return nil, fmt.Errorf("prom line %d: bad family name %q", lineNo, name)
			}
			f := fams[name]
			if f == nil {
				f = &PromFamily{Name: name}
				fams[name] = f
				order = append(order, name)
			}
			rest := ""
			if len(fields) == 4 {
				rest = fields[3]
			}
			if fields[1] == "HELP" {
				f.Help = rest
			} else {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.Type = rest
				default:
					return nil, fmt.Errorf("prom line %d: unknown type %q for %s", lineNo, rest, name)
				}
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("prom line %d: unparseable sample %q", lineNo, line)
		}
		sample := PromSample{Name: m[1], Labels: map[string]string{}}
		if m[3] != "" {
			for _, pair := range strings.Split(m[3], ",") {
				pair = strings.TrimSpace(pair)
				if pair == "" {
					continue
				}
				lm := promLabelRe.FindStringSubmatch(pair)
				if lm == nil {
					return nil, fmt.Errorf("prom line %d: bad label %q", lineNo, pair)
				}
				sample.Labels[lm[1]] = lm[2]
			}
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("prom line %d: bad value %q: %v", lineNo, m[4], err)
		}
		sample.Value = v
		famName := base(m[1])
		f := fams[famName]
		if f == nil || f.Type == "" {
			return nil, fmt.Errorf("prom line %d: sample %s before its TYPE line", lineNo, m[1])
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for _, name := range order {
		f := fams[name]
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	sort.Strings(order)
	out := make([]PromFamily, 0, len(order))
	for _, name := range order {
		out = append(out, *fams[name])
	}
	return out, nil
}

// checkHistogram enforces the cumulative-bucket contract.
func checkHistogram(f *PromFamily) error {
	var prev float64
	var inf, count float64
	sawInf, sawCount := false, false
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("prom: %s bucket without le label", f.Name)
			}
			if s.Value < prev {
				return fmt.Errorf("prom: %s buckets not cumulative at le=%s", f.Name, le)
			}
			prev = s.Value
			if le == "+Inf" {
				inf, sawInf = s.Value, true
			}
		case f.Name + "_count":
			count, sawCount = s.Value, true
		}
	}
	if !sawInf {
		return fmt.Errorf("prom: %s has no le=\"+Inf\" bucket", f.Name)
	}
	if sawCount && count != inf {
		return fmt.Errorf("prom: %s _count %g != +Inf bucket %g", f.Name, count, inf)
	}
	return nil
}

// PromFamilyNames returns the sorted family names of a scanned exposition
// — the one-liner smoke assertions use it.
func PromFamilyNames(fams []PromFamily) []string {
	names := make([]string, 0, len(fams))
	for _, f := range fams {
		names = append(names, f.Name)
	}
	return names
}
