// Package testkit is the repository's correctness net: a canonical JSON
// encoder with byte-deterministic output, a tolerance-aware golden-file
// framework for the experiment result structs, and the comparison engine
// both share. Every experiments.Run* entry point pins its numbers to a
// vector under testdata/golden/ through this package, so a silent
// regression anywhere in the DSP substrate fails a test instead of quietly
// changing EXPERIMENTS.md.
package testkit

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Non-finite floats have no JSON literal; they are encoded as these string
// sentinels and turned back into floats by the comparison engine.
const (
	sentinelNaN    = "NaN"
	sentinelPosInf = "Infinity"
	sentinelNegInf = "-Infinity"
)

// MarshalCanonical encodes v as canonical, human-diffable JSON: two-space
// indentation, struct fields in declaration order, map keys sorted
// (numerically for integer-keyed maps), floats in shortest round-trip form,
// and NaN/±Inf as string sentinels (encoding/json rejects them outright).
// The same value always yields the same bytes, which is what makes golden
// files and CI diffs of `bistlab -json` stable.
func MarshalCanonical(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeValue(&buf, reflect.ValueOf(v), 0); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// FormatFloat renders a float the way the canonical encoder does: shortest
// decimal that round-trips through float64, or a sentinel for non-finite
// values.
func FormatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return sentinelNaN
	case math.IsInf(f, 1):
		return sentinelPosInf
	case math.IsInf(f, -1):
		return sentinelNegInf
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func indent(buf *bytes.Buffer, depth int) {
	for i := 0; i < depth; i++ {
		buf.WriteString("  ")
	}
}

func encodeValue(buf *bytes.Buffer, v reflect.Value, depth int) error {
	if !v.IsValid() {
		buf.WriteString("null")
		return nil
	}
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			buf.WriteString("null")
			return nil
		}
		return encodeValue(buf, v.Elem(), depth)
	case reflect.Bool:
		buf.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		buf.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		buf.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			buf.WriteString(strconv.Quote(FormatFloat(f)))
		} else {
			buf.WriteString(FormatFloat(f))
		}
	case reflect.Complex64, reflect.Complex128:
		// Encoded as a two-element [re, im] array.
		c := v.Complex()
		buf.WriteString("[")
		buf.WriteString(FormatFloat(real(c)))
		buf.WriteString(", ")
		buf.WriteString(FormatFloat(imag(c)))
		buf.WriteString("]")
	case reflect.String:
		buf.WriteString(strconv.Quote(v.String()))
	case reflect.Slice:
		if v.IsNil() {
			buf.WriteString("null")
			return nil
		}
		return encodeSeq(buf, v, depth)
	case reflect.Array:
		return encodeSeq(buf, v, depth)
	case reflect.Map:
		return encodeMap(buf, v, depth)
	case reflect.Struct:
		return encodeStruct(buf, v, depth)
	default:
		return fmt.Errorf("testkit: cannot encode %s", v.Kind())
	}
	return nil
}

func encodeSeq(buf *bytes.Buffer, v reflect.Value, depth int) error {
	n := v.Len()
	if n == 0 {
		buf.WriteString("[]")
		return nil
	}
	buf.WriteString("[\n")
	for i := 0; i < n; i++ {
		indent(buf, depth+1)
		if err := encodeValue(buf, v.Index(i), depth+1); err != nil {
			return err
		}
		if i < n-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	indent(buf, depth)
	buf.WriteByte(']')
	return nil
}

// mapKeyString renders a map key as its JSON object-key string. Only string
// and integer keys are supported (the only kinds the result structs use).
func mapKeyString(k reflect.Value) (string, error) {
	switch k.Kind() {
	case reflect.String:
		return k.String(), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(k.Int(), 10), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(k.Uint(), 10), nil
	}
	return "", fmt.Errorf("testkit: unsupported map key kind %s", k.Kind())
}

func encodeMap(buf *bytes.Buffer, v reflect.Value, depth int) error {
	if v.IsNil() {
		buf.WriteString("null")
		return nil
	}
	keys := v.MapKeys()
	type kv struct {
		label string
		key   reflect.Value
	}
	pairs := make([]kv, 0, len(keys))
	for _, k := range keys {
		label, err := mapKeyString(k)
		if err != nil {
			return err
		}
		pairs = append(pairs, kv{label, k})
	}
	numeric := len(pairs) > 0 && v.Type().Key().Kind() != reflect.String
	sort.Slice(pairs, func(i, j int) bool {
		if numeric {
			a, _ := strconv.ParseInt(pairs[i].label, 10, 64)
			b, _ := strconv.ParseInt(pairs[j].label, 10, 64)
			return a < b
		}
		return pairs[i].label < pairs[j].label
	})
	if len(pairs) == 0 {
		buf.WriteString("{}")
		return nil
	}
	buf.WriteString("{\n")
	for i, p := range pairs {
		indent(buf, depth+1)
		buf.WriteString(strconv.Quote(p.label))
		buf.WriteString(": ")
		if err := encodeValue(buf, v.MapIndex(p.key), depth+1); err != nil {
			return err
		}
		if i < len(pairs)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	indent(buf, depth)
	buf.WriteByte('}')
	return nil
}

// fieldName resolves the JSON object key for a struct field, honouring the
// name part of a `json` tag; a "-" tag skips the field.
func fieldName(f reflect.StructField) (string, bool) {
	tag := f.Tag.Get("json")
	if tag == "-" {
		return "", false
	}
	if name, _, _ := strings.Cut(tag, ","); name != "" {
		return name, true
	}
	return f.Name, true
}

func encodeStruct(buf *bytes.Buffer, v reflect.Value, depth int) error {
	t := v.Type()
	type field struct {
		name string
		val  reflect.Value
	}
	var fields []field
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		name, ok := fieldName(f)
		if !ok {
			continue
		}
		fields = append(fields, field{name, v.Field(i)})
	}
	if len(fields) == 0 {
		buf.WriteString("{}")
		return nil
	}
	buf.WriteString("{\n")
	for i, f := range fields {
		indent(buf, depth+1)
		buf.WriteString(strconv.Quote(f.name))
		buf.WriteString(": ")
		if err := encodeValue(buf, f.val, depth+1); err != nil {
			return err
		}
		if i < len(fields)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	indent(buf, depth)
	buf.WriteByte('}')
	return nil
}
