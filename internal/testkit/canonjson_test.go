package testkit

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

type inner struct {
	Name  string
	Ratio float64
}

type sample struct {
	ID      int
	Flag    bool
	Vals    []float64
	Curves  map[int][2]float64
	Labels  map[string]string
	Child   *inner
	Skipped string `json:"-"`
	Renamed string `json:"alias"`
}

func mkSample() sample {
	return sample{
		ID:   7,
		Flag: true,
		Vals: []float64{1.5, math.NaN(), math.Inf(1), math.Inf(-1), 0.1},
		Curves: map[int][2]float64{
			10: {1, 2},
			2:  {3, 4},
			-1: {5, 6},
		},
		Labels:  map[string]string{"b": "2", "a": "1"},
		Child:   &inner{Name: "x", Ratio: 1.0 / 3.0},
		Skipped: "must not appear",
		Renamed: "tagged",
	}
}

func TestMarshalCanonicalDeterministic(t *testing.T) {
	// Maps are the usual source of nondeterminism: encode many times.
	var first []byte
	for i := 0; i < 50; i++ {
		b, err := MarshalCanonical(mkSample())
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
			continue
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("encoding %d differs:\n%s\nvs\n%s", i, first, b)
		}
	}
}

func TestMarshalCanonicalContent(t *testing.T) {
	b, err := MarshalCanonical(mkSample())
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"NaN"`, `"Infinity"`, `"-Infinity"`, `"alias"`, `0.3333333333333333`} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, "must not appear") || strings.Contains(s, "Skipped") {
		t.Errorf("json:\"-\" field leaked:\n%s", s)
	}
	// Integer map keys sort numerically: -1 before 2 before 10.
	i1 := strings.Index(s, `"-1"`)
	i2 := strings.Index(s, `"2"`)
	i3 := strings.Index(s, `"10"`)
	if !(i1 >= 0 && i1 < i2 && i2 < i3) {
		t.Errorf("integer keys out of order (%d, %d, %d):\n%s", i1, i2, i3, s)
	}
	// Must remain parseable standard JSON.
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
}

func TestMarshalCanonicalNilHandling(t *testing.T) {
	type holder struct {
		P *inner
		S []float64
		M map[string]int
	}
	b, err := MarshalCanonical(holder{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"P": null`, `"S": null`, `"M": null`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("missing %s in:\n%s", want, b)
		}
	}
}

func TestMarshalCanonicalFloatFormatRoundTrips(t *testing.T) {
	for _, f := range []float64{0, 1, -1.5, 1e-12, 180e-12, 2.5e9, 0.1, 1.0 / 3.0, math.Pi} {
		s := FormatFloat(f)
		var back float64
		if err := json.Unmarshal([]byte(s), &back); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if back != f {
			t.Errorf("%v -> %s -> %v does not round-trip", f, s, back)
		}
	}
}

func TestMarshalCanonicalRejectsUnsupported(t *testing.T) {
	if _, err := MarshalCanonical(struct{ F func() }{}); err == nil {
		t.Error("func field must be rejected")
	}
	if _, err := MarshalCanonical(map[float64]int{1.5: 1}); err == nil {
		t.Error("float map key must be rejected")
	}
}
