package testkit

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
)

// Update rewrites golden files instead of comparing against them:
//
//	go test ./internal/experiments -run Golden -update
//
// The canonical encoder is deterministic, so running -update twice yields
// byte-identical files.
var Update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// Tol is a numeric tolerance: a leaf passes when |got-want| <= Abs or
// |got-want| <= Rel * max(|got|, |want|). The zero Tol demands exact
// equality.
type Tol struct {
	Abs float64
	Rel float64
}

// ok reports whether got and want agree within the tolerance. Non-finite
// values must match exactly (NaN equals NaN; infinities must share sign).
func (tl Tol) ok(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) && math.IsNaN(want)
	}
	if math.IsInf(got, 0) || math.IsInf(want, 0) {
		return got == want
	}
	d := math.Abs(got - want)
	if d <= tl.Abs {
		return true
	}
	m := math.Max(math.Abs(got), math.Abs(want))
	return d <= tl.Rel*m
}

// Rule attaches a tolerance to the fields whose path matches Pattern.
// Paths are /-separated: object keys verbatim, array indices in decimal
// ("Traces/2/Result/DHat"). Pattern follows path.Match, so "*" spans one
// segment ("Rows/*/ReconErr"); a trailing "/**" matches the whole subtree.
// The first matching rule wins; the Options default applies otherwise.
type Rule struct {
	Pattern string
	Tol     Tol
}

// Options configures a golden comparison.
type Options struct {
	// Default is the tolerance for fields no rule matches.
	Default Tol
	// Rules are per-field overrides, tried in order.
	Rules []Rule
}

// DefaultOptions returns the tolerance the experiment goldens use: tight
// enough that any physically meaningful drift (a fraction of a picosecond,
// a hundredth of a dB) fails, loose enough to absorb FP reassociation from
// compiler or scheduling changes.
func DefaultOptions() Options {
	return Options{Default: Tol{Abs: 1e-15, Rel: 1e-9}}
}

func (o Options) tolFor(p string) Tol {
	for _, r := range o.Rules {
		if matchRule(r.Pattern, p) {
			return r.Tol
		}
	}
	return o.Default
}

// matchRule matches a field path against a rule pattern; "prefix/**"
// matches everything strictly below a prefix that itself matches.
func matchRule(pattern, p string) bool {
	if strings.HasSuffix(pattern, "/**") {
		prefix := strings.TrimSuffix(pattern, "/**")
		head := firstSegments(p, segCount(prefix))
		ok, err := path.Match(prefix, head)
		return err == nil && ok && len(p) > len(head)
	}
	ok, err := path.Match(pattern, p)
	return err == nil && ok
}

func segCount(p string) int {
	if p == "" {
		return 0
	}
	n := 1
	for i := 0; i < len(p); i++ {
		if p[i] == '/' {
			n++
		}
	}
	return n
}

// firstSegments returns the first n /-separated segments of p (p itself if
// it has fewer).
func firstSegments(p string, n int) string {
	cnt := 0
	for i := 0; i < len(p); i++ {
		if p[i] == '/' {
			cnt++
			if cnt == n {
				return p[:i]
			}
		}
	}
	return p
}

// Mismatch is one out-of-tolerance leaf or structural difference.
type Mismatch struct {
	Path string
	Got  string
	Want string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("%s: got %s, want %s", m.Path, m.Got, m.Want)
}

// CompareBytes parses two canonical-JSON documents and returns every
// difference outside the configured tolerances. A nil slice means the
// documents agree.
func CompareBytes(got, want []byte, opt Options) ([]Mismatch, error) {
	g, err := parseJSON(got)
	if err != nil {
		return nil, fmt.Errorf("testkit: parse got: %w", err)
	}
	w, err := parseJSON(want)
	if err != nil {
		return nil, fmt.Errorf("testkit: parse want: %w", err)
	}
	var ms []Mismatch
	compareTree(g, w, "", opt, &ms)
	return ms, nil
}

// Compare canonically encodes got and compares it against the encoding of
// want (convenience for in-memory checks and the testkit's own tests).
func Compare(got, want any, opt Options) ([]Mismatch, error) {
	gb, err := MarshalCanonical(got)
	if err != nil {
		return nil, err
	}
	wb, err := MarshalCanonical(want)
	if err != nil {
		return nil, err
	}
	return CompareBytes(gb, wb, opt)
}

func parseJSON(b []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// asNumber converts a parsed leaf into a float64, unquoting the non-finite
// sentinels the canonical encoder emits.
func asNumber(v any) (float64, bool) {
	switch x := v.(type) {
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	case string:
		switch x {
		case sentinelNaN:
			return math.NaN(), true
		case sentinelPosInf:
			return math.Inf(1), true
		case sentinelNegInf:
			return math.Inf(-1), true
		}
	}
	return 0, false
}

func render(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case json.Number:
		return x.String()
	case string:
		return strconv.Quote(x)
	case bool:
		return strconv.FormatBool(x)
	case map[string]any:
		return fmt.Sprintf("object with %d keys", len(x))
	case []any:
		return fmt.Sprintf("array of %d", len(x))
	}
	return fmt.Sprintf("%v", v)
}

func joinPath(p, seg string) string {
	if p == "" {
		return seg
	}
	return p + "/" + seg
}

func compareTree(got, want any, p string, opt Options, ms *[]Mismatch) {
	// Numeric leaves (including sentinel strings) compare by tolerance.
	gf, gok := asNumber(got)
	wf, wok := asNumber(want)
	if gok && wok {
		if !opt.tolFor(p).ok(gf, wf) {
			*ms = append(*ms, Mismatch{p, render(got), render(want)})
		}
		return
	}
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			*ms = append(*ms, Mismatch{p, render(got), render(want)})
			return
		}
		for k, wv := range w {
			gv, present := g[k]
			if !present {
				*ms = append(*ms, Mismatch{joinPath(p, k), "missing", render(wv)})
				continue
			}
			compareTree(gv, wv, joinPath(p, k), opt, ms)
		}
		for k, gv := range g {
			if _, present := w[k]; !present {
				*ms = append(*ms, Mismatch{joinPath(p, k), render(gv), "absent from golden"})
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			*ms = append(*ms, Mismatch{p, render(got), render(want)})
			return
		}
		if len(g) != len(w) {
			*ms = append(*ms, Mismatch{p, render(got), render(want)})
			return
		}
		for i := range w {
			compareTree(g[i], w[i], joinPath(p, strconv.Itoa(i)), opt, ms)
		}
	default:
		if got != want {
			*ms = append(*ms, Mismatch{p, render(got), render(want)})
		}
	}
}

// TB is the subset of *testing.T the golden helper needs. Taking the
// interface keeps package testkit importable from non-test binaries
// (cmd/bistlab links the canonical encoder).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// maxReported bounds the mismatches printed per golden so a wholesale
// drift does not flood the test log.
const maxReported = 20

// Golden canonically encodes v and compares it with the golden file at
// path. With -update the file is (re)written instead. Missing goldens fail
// with a regeneration hint.
func Golden(t TB, goldenPath string, v any, opt Options) {
	t.Helper()
	got, err := MarshalCanonical(v)
	if err != nil {
		t.Fatalf("testkit: encode %s: %v", goldenPath, err)
		return
	}
	if *Update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("testkit: mkdir for %s: %v", goldenPath, err)
			return
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatalf("testkit: write %s: %v", goldenPath, err)
			return
		}
		t.Logf("testkit: wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("testkit: %v (regenerate with -update)", err)
		return
	}
	ms, err := CompareBytes(got, want, opt)
	if err != nil {
		t.Fatalf("testkit: compare %s: %v", goldenPath, err)
		return
	}
	if len(ms) == 0 {
		return
	}
	shown := ms
	if len(shown) > maxReported {
		shown = shown[:maxReported]
	}
	for _, m := range shown {
		t.Errorf("%s: %s", filepath.Base(goldenPath), m)
	}
	if len(ms) > len(shown) {
		t.Errorf("%s: ... and %d more mismatches", filepath.Base(goldenPath), len(ms)-len(shown))
	}
}
