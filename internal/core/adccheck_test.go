package core

import "testing"

func TestADCCheckHealthyPasses(t *testing.T) {
	c := fastScenario()
	c.ADCCheck = true
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ADCChecked || rep.ADC == nil {
		t.Fatal("pre-check did not run")
	}
	if !rep.Pass {
		t.Fatalf("healthy unit failed the instrument check:\n%s", rep.Summary())
	}
	// Healthy SNDR is jitter-limited near 34 dB per channel.
	for i, sndr := range rep.ADC.SNDRdB {
		if sndr < 30 || sndr > 45 {
			t.Errorf("channel %d SNDR %.1f dB outside the jitter-limited regime", i, sndr)
		}
	}
}

func TestADCINLFaultDetected(t *testing.T) {
	c := fastScenario()
	f, err := FaultByName("adc-inl")
	if err != nil {
		t.Fatal(err)
	}
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("gross ADC INL escaped (SNDR %.1f/%.1f dB):\n%s",
			rep.ADC.SNDRdB[0], rep.ADC.SNDRdB[1], rep.Summary())
	}
	// The fault is on channel 1 only: channel 0 should remain healthy.
	if rep.ADC.SNDRdB[0] < 30 {
		t.Errorf("channel 0 dragged down: %.1f dB", rep.ADC.SNDRdB[0])
	}
	if rep.ADC.SNDRdB[1] >= 30 {
		t.Errorf("channel 1 SNDR %.1f dB did not drop below the floor", rep.ADC.SNDRdB[1])
	}
}
