package core

import (
	"fmt"
	"math"

	"repro/internal/modem"
	"repro/internal/pnbs"
	"repro/internal/sig"
)

// EVMOutcome reports the modulation-quality sub-test measured through the
// BIST reconstruction path.
type EVMOutcome struct {
	// RMSPercent and PeakPercent are the error-vector magnitudes.
	RMSPercent, PeakPercent float64
	// DB is the RMS EVM in dB.
	DB float64
	// Symbols is the number of demodulated symbols.
	Symbols int
}

// RunEVMTest demodulates the reconstructed waveform with a matched filter
// and compares against the known transmitted symbols (reference-aided EVM,
// the natural choice inside a BIST where the stimulus is self-generated).
// Timing is known absolutely — the BIST generated the waveform — so no
// timing recovery is required; a common complex gain (chain gain and
// static phase) is removed by least squares before the comparison.
func (b *BIST) RunEVMTest(rec *pnbs.Reconstructor, nSym int) (*EVMOutcome, error) {
	c := b.cfg
	if nSym <= 0 {
		nSym = 48
	}
	// Reconstructed envelope on a uniform grid; needs enough span for the
	// requested symbols plus the pulse tails.
	ts := 1 / c.SymbolRate
	span := float64(b.bb.Pulse.SpanSymbols()) * ts
	gridN := int((float64(nSym)*ts + 4*span) * c.B)
	// Clamp to what the capture supports; the symbol count shrinks below.
	if rLo, rHi := rec.ValidRange(); gridN > int((rHi-rLo)*c.B)-8 {
		gridN = int((rHi-rLo)*c.B) - 8
	}
	env, fsEnv, t0, err := b.envelopeGrid(rec, gridN)
	if err != nil {
		return nil, fmt.Errorf("core: EVM grid: %w", err)
	}
	cont, err := sig.NewSampledEnvelope(t0, 1/fsEnv, env)
	if err != nil {
		return nil, err
	}
	lo, hi := cont.Span()
	// First symbol whose matched-filter support fits inside the span.
	k0 := int(math.Ceil((lo + span) / ts))
	kEnd := int(math.Floor((hi - span) / ts))
	if kEnd-k0+1 < 8 {
		return nil, fmt.Errorf("core: EVM window too short (%d symbols)", kEnd-k0+1)
	}
	if kEnd-k0+1 < nSym {
		nSym = kEnd - k0 + 1
	}
	mf, err := modem.NewMatchedFilter(b.bb.Pulse, 8)
	if err != nil {
		return nil, err
	}
	got := mf.Demod(cont, k0, nSym)
	// Reference symbols from the cyclic stream (gain applied by the
	// shaper is part of the common complex gain removed below).
	ref := make([]complex128, nSym)
	nStream := len(b.bb.Symbols)
	for i := range ref {
		ref[i] = b.bb.Symbols[((k0+i)%nStream+nStream)%nStream]
	}
	norm, err := modem.NormalizeScaleAndPhase(got, ref)
	if err != nil {
		return nil, err
	}
	res, err := modem.EVM(norm, ref)
	if err != nil {
		return nil, err
	}
	return &EVMOutcome{
		RMSPercent:  res.RMSPercent,
		PeakPercent: res.PeakPercent,
		DB:          res.DB,
		Symbols:     nSym,
	}, nil
}
