package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rf"
)

// fastScenario shrinks the paper scenario so unit tests stay quick while
// exercising the whole flow.
func fastScenario() Config {
	c := PaperScenario()
	c.CaptureLen = 900
	c.NTimes = 80
	c.PSDLen = 512
	c.SegLen = 256
	return c
}

func TestNewValidation(t *testing.T) {
	c := fastScenario()
	c.Fc = 0
	if _, err := New(c); err == nil {
		t.Error("Fc=0 must fail")
	}
	c = fastScenario()
	c.SymbolRate = 0
	if _, err := New(c); err == nil {
		t.Error("symbol rate 0 must fail")
	}
	c = fastScenario()
	c.B = 3e9
	if _, err := New(c); err == nil {
		t.Error("B >= 2fc must fail")
	}
	c = fastScenario()
	c.SymbolRate = 100e6
	if _, err := New(c); err == nil {
		t.Error("occupied bandwidth above B must fail")
	}
	c = fastScenario()
	c.Constellation = "GMSK"
	if _, err := New(c); err == nil {
		t.Error("unknown constellation must fail")
	}
	c = fastScenario()
	c.B = 100e6 // 2fc/B = 20 exactly: Eq. (9) collision
	if _, err := New(c); err == nil {
		t.Error("infeasible dual-rate configuration must fail")
	}
}

func TestHealthyUnitPasses(t *testing.T) {
	b, err := New(fastScenario())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("healthy unit failed:\n%s", rep.Summary())
	}
	// Delay identification is jitter-variance limited: with 3 ps rms clock
	// jitter the cost minimum wanders by a few ps (the induced spectral
	// error pi B (k+1) dD stays below the jitter floor, so the BIST verdict
	// is unaffected). The paper's <0.1 ps figure corresponds to the
	// noiseless case, which TestLMSConvergesFromPaperStarts covers.
	if rep.SkewErrPS() > 3 {
		t.Errorf("skew error %.3f ps too large", rep.SkewErrPS())
	}
	// Reconstruction error ~ the paper's 0.84 % regime (jitter + 10-bit
	// quantization floor). Allow a generous envelope.
	if rep.ReconRelErr > 0.05 {
		t.Errorf("reconstruction error %.3g", rep.ReconRelErr)
	}
	if rep.Mask == nil || !rep.Mask.Pass {
		t.Error("mask check missing or failed")
	}
	if rep.RefMask != nil && !rep.RefMask.Pass {
		t.Error("reference mask must pass for a healthy unit")
	}
	if rep.LMS.Iterations >= 30 {
		t.Errorf("LMS took %d iterations", rep.LMS.Iterations)
	}
	s := rep.Summary()
	for _, frag := range []string{"PASS", "delay", "mask", "ACPR"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestDCDEBiasIsAbsorbed(t *testing.T) {
	// The DCDE bias makes the actual delay differ from the setting; the
	// LMS must estimate the ACTUAL delay, keeping the unit passing.
	c := fastScenario()
	f, err := FaultByName("dcde-bias")
	if err != nil {
		t.Fatal(err)
	}
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("benign DCDE bias caused a false alarm:\n%s", rep.Summary())
	}
	if math.Abs(rep.DActual-rep.DNominal) < 30e-12 {
		t.Fatal("fault not injected")
	}
	if rep.SkewErrPS() > 3 {
		t.Errorf("LMS did not absorb the bias: err %.3f ps", rep.SkewErrPS())
	}
}

func TestPACompressionFaultDetected(t *testing.T) {
	c := fastScenario()
	f, _ := FaultByName("pa-compression")
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("PA compression escaped:\n%s", rep.Summary())
	}
	if rep.Mask == nil || rep.Mask.Pass {
		t.Error("mask should catch spectral regrowth")
	}
	// The BIST verdict must agree with the golden reference instrument.
	if rep.RefMask != nil && rep.RefMask.Pass {
		t.Error("reference instrument disagrees: fault should be real")
	}
}

func TestIQImbalanceFaultDetected(t *testing.T) {
	c := fastScenario()
	f, _ := FaultByName("iq-imbalance")
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IRRTested {
		t.Fatal("IRR test did not run")
	}
	if rep.Pass {
		t.Fatalf("IQ imbalance escaped (IRR %.1f dB):\n%s", rep.IRRMeasuredDB, rep.Summary())
	}
	// 2 dB / 12 deg gives IRR ~ 19 dB; the BIST should measure something
	// in that region through the reconstruction path.
	want := rf.FromImbalanceDB(2, 12, 0).ImageRejectionDB()
	if math.Abs(rep.IRRMeasuredDB-want) > 4 {
		t.Errorf("measured IRR %.1f dB vs analytic %.1f dB", rep.IRRMeasuredDB, want)
	}
}

func TestLOLeakageFaultDetected(t *testing.T) {
	c := fastScenario()
	f, _ := FaultByName("lo-leakage")
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("LO leakage escaped (%.1f dBc):\n%s", rep.LOLeakageDBc, rep.Summary())
	}
	if rep.LOLeakageDBc < -30 {
		t.Errorf("leakage measured %.1f dBc, expected above -30", rep.LOLeakageDBc)
	}
}

func TestDeadGainFaultDetected(t *testing.T) {
	c := fastScenario()
	f, _ := FaultByName("dead-gain")
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("dead gain escaped:\n%s", rep.Summary())
	}
}

func TestMildIQPasses(t *testing.T) {
	c := fastScenario()
	f, _ := FaultByName("mild-iq")
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("mild IQ caused a false alarm (IRR %.1f dB):\n%s", rep.IRRMeasuredDB, rep.Summary())
	}
}

func TestFaultCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) < 5 {
		t.Fatalf("catalog has %d faults", len(cat))
	}
	names := map[string]bool{}
	for _, f := range cat {
		if f.Name == "" || f.Description == "" || f.Apply == nil {
			t.Errorf("incomplete fault %+v", f)
		}
		if names[f.Name] {
			t.Errorf("duplicate fault %s", f.Name)
		}
		names[f.Name] = true
	}
	if _, err := FaultByName("nope"); err == nil {
		t.Error("unknown fault must error")
	}
}

func TestMultistandardScenariosFeasible(t *testing.T) {
	for _, c := range MultistandardScenarios() {
		c.CaptureLen = 700
		c.NTimes = 40
		c.PSDLen = 256
		c.SegLen = 128
		if _, err := New(c); err != nil {
			t.Errorf("scenario %s @ %g: %v", c.Constellation, c.Fc, err)
		}
	}
}

func TestPaperScenarioDefaults(t *testing.T) {
	c := PaperScenario().withDefaults()
	if c.NominalD != 180e-12 {
		t.Error("paper D")
	}
	if c.B != 90e6 || c.Fc != 1e9 || c.NTimes != 300 {
		t.Error("paper parameters")
	}
	if c.HalfTaps != 30 {
		t.Error("61-tap filter default")
	}
	b, err := New(PaperScenario())
	if err != nil {
		t.Fatal(err)
	}
	if b.Band().Fc() != 1e9 {
		t.Error("band centre")
	}
	if b.Transmitter() == nil || b.Baseband() == nil {
		t.Error("accessors")
	}
}

func TestComputeBudgetAccounted(t *testing.T) {
	b, err := New(fastScenario())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compute.KernelEvals <= 0 || rep.Compute.CostEvals <= 0 {
		t.Fatalf("compute budget empty: %+v", rep.Compute)
	}
	// Order-of-magnitude sanity: cost evals x NTimes x 2 recon x 122 taps.
	lower := int64(rep.Compute.CostEvals) * 80 * 2 * 122
	if rep.Compute.KernelEvals < lower {
		t.Errorf("kernel evals %d below the LMS share %d", rep.Compute.KernelEvals, lower)
	}
	if !strings.Contains(rep.Summary(), "compute:") {
		t.Error("summary missing compute line")
	}
}

func TestOccupiedBandwidthReported(t *testing.T) {
	b, err := New(fastScenario())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 MHz QPSK with alpha = 0.5 occupies ~15 MHz; the 99 % OBW through
	// the reconstruction sits near (slightly under) that.
	if rep.OBWHz < 10e6 || rep.OBWHz > 18e6 {
		t.Errorf("99%% OBW %.2f MHz, want ~13-15", rep.OBWHz/1e6)
	}
	if !strings.Contains(rep.Summary(), "OBW") {
		t.Error("summary missing OBW")
	}
}
