package core

import (
	"testing"

	"repro/internal/mask"
	"repro/internal/modem"
	"repro/internal/rf"
	"repro/internal/sig"
)

func TestOFDMThroughFullBIST(t *testing.T) {
	// The multistandard claim stretched to a waveform class the paper never
	// simulated: a 64-subcarrier CP-OFDM signal through the complete flow.
	ofdm, err := modem.NewOFDM(modem.OFDMConfig{
		Subcarriers: 64,
		Spacing:     156.25e3,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := fastScenario()
	// Scale to respect the ADC full scale: OFDM PAPR is ~10 dB.
	c.Baseband = sig.ScaleEnv(ofdm, 0.5)
	c.Mask = mask.WidebandMulticarrier10M()
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("healthy OFDM unit failed:\n%s", rep.Summary())
	}
	if rep.SkewErrPS() > 3 {
		t.Errorf("skew error %.3f ps on OFDM", rep.SkewErrPS())
	}
	if rep.ReconRelErr > 0.06 {
		t.Errorf("reconstruction error %.3g on OFDM", rep.ReconRelErr)
	}
}

func TestOFDMWithPACompressionFails(t *testing.T) {
	// OFDM's high PAPR makes it the harshest probe of PA compression.
	ofdm, err := modem.NewOFDM(modem.OFDMConfig{
		Subcarriers: 64,
		Spacing:     156.25e3,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := fastScenario()
	c.Baseband = sig.ScaleEnv(ofdm, 0.5)
	c.Mask = mask.WidebandMulticarrier10M()
	f, _ := FaultByName("pa-compression")
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("PA compression escaped under OFDM:\n%s", rep.Summary())
	}
}

func TestCustomBasebandRejectsEVM(t *testing.T) {
	ofdm, _ := modem.NewOFDM(modem.OFDMConfig{Subcarriers: 16, Spacing: 1e6, Seed: 1})
	c := fastScenario()
	c.Baseband = ofdm
	c.EVMTest = true
	if _, err := New(c); err == nil {
		t.Error("EVM with custom baseband must fail")
	}
}

func TestGMSKThroughFullBIST(t *testing.T) {
	gmsk, err := modem.NewCPM(modem.CPMConfig{SymbolRate: 2e6, BT: 0.3, Symbols: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := fastScenario()
	c.Fc = 520e6
	c.B = 32e6
	c.SymbolRate = 2e6
	c.NominalD = 0
	c.D0 = 0
	c.TI.DCDE.Max = 0.35 / c.Fc
	c.Baseband = sig.ScaleEnv(gmsk, 0.7)
	c.Mask = mask.WidebandOFDMLike()
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("healthy GMSK unit failed:\n%s", rep.Summary())
	}
	// Constant envelope: a saturated PA must NOT create regrowth — the
	// hallmark of CPM waveforms. Vsat just above the envelope amplitude.
	pa, _ := rf.NewRappPA(1, 0.72, 2)
	c.Tx.PA = pa
	b2, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := b2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Pass {
		t.Fatalf("constant-envelope GMSK through a saturated PA should still pass:\n%s", rep2.Summary())
	}
}
