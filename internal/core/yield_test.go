package core

import "testing"

func TestYieldInSpecPopulation(t *testing.T) {
	base := fastScenario()
	base.IRRTest = true
	rep, err := RunYield(base, TypicalSpread(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Units) != 8 || rep.Passes != 8 || rep.Yield != 1 {
		t.Fatalf("in-spec yield %.2f (%d/%d)", rep.Yield, rep.Passes, len(rep.Units))
	}
	if rep.WorstSkewPS > 20 {
		t.Errorf("worst skew %.2f ps across the lot", rep.WorstSkewPS)
	}
	if rep.WorstMarginDB < 0 {
		t.Errorf("worst mask margin %.2f dB", rep.WorstMarginDB)
	}
}

func TestYieldDetectsOutOfSpecTail(t *testing.T) {
	// Blow up the IQ spread so a good fraction of units violate the IRR
	// limit: yield must drop below 1.
	base := fastScenario()
	base.IRRTest = true
	spread := TypicalSpread()
	// ~30 dB IRR corresponds to ~2.3 deg of quadrature error: a 2.5 deg
	// sigma puts a substantial fraction of units on each side of the limit.
	spread.IQPhaseSigmaDeg = 2.5
	spread.IQGainSigmaDB = 0.4
	rep, err := RunYield(base, spread, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Yield >= 1 {
		t.Fatalf("out-of-spec population yielded 100%% (worst margin %.1f dB)", rep.WorstMarginDB)
	}
	if rep.Passes == 0 {
		t.Error("population should not be entirely dead either")
	}
}

func TestYieldValidation(t *testing.T) {
	if _, err := RunYield(fastScenario(), TypicalSpread(), 0, 1); err == nil {
		t.Error("zero units must fail")
	}
}

func TestYieldDeterministic(t *testing.T) {
	base := fastScenario()
	a, err := RunYield(base, TypicalSpread(), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunYield(base, TypicalSpread(), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Units {
		if a.Units[i].SkewPS != b.Units[i].SkewPS {
			t.Fatal("yield run not reproducible")
		}
	}
}
