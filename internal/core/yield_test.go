package core

import (
	"testing"

	"repro/internal/par"
)

func TestYieldInSpecPopulation(t *testing.T) {
	base := fastScenario()
	base.IRRTest = true
	rep, err := RunYield(base, TypicalSpread(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Units) != 8 || rep.Passes != 8 || rep.Yield != 1 {
		t.Fatalf("in-spec yield %.2f (%d/%d)", rep.Yield, rep.Passes, len(rep.Units))
	}
	if rep.WorstSkewPS > 20 {
		t.Errorf("worst skew %.2f ps across the lot", rep.WorstSkewPS)
	}
	if rep.WorstMarginDB < 0 {
		t.Errorf("worst mask margin %.2f dB", rep.WorstMarginDB)
	}
}

func TestYieldDetectsOutOfSpecTail(t *testing.T) {
	// Blow up the IQ spread so a good fraction of units violate the IRR
	// limit: yield must drop below 1.
	base := fastScenario()
	base.IRRTest = true
	spread := TypicalSpread()
	// ~30 dB IRR corresponds to ~2.3 deg of quadrature error: a 2.5 deg
	// sigma puts a substantial fraction of units on each side of the limit.
	spread.IQPhaseSigmaDeg = 2.5
	spread.IQGainSigmaDB = 0.4
	rep, err := RunYield(base, spread, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Yield >= 1 {
		t.Fatalf("out-of-spec population yielded 100%% (worst margin %.1f dB)", rep.WorstMarginDB)
	}
	if rep.Passes == 0 {
		t.Error("population should not be entirely dead either")
	}
}

func TestYieldValidation(t *testing.T) {
	if _, err := RunYield(fastScenario(), TypicalSpread(), 0, 1); err == nil {
		t.Error("zero units must fail")
	}
}

func TestYieldDeterministic(t *testing.T) {
	base := fastScenario()
	a, err := RunYield(base, TypicalSpread(), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunYield(base, TypicalSpread(), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Units {
		if a.Units[i].SkewPS != b.Units[i].SkewPS {
			t.Fatal("yield run not reproducible")
		}
	}
}

func TestYieldDeterministicAcrossWorkerCounts(t *testing.T) {
	// Each unit derives its RNG from the lot seed + its own index, so the
	// report must be bit-identical no matter how the units are scheduled.
	base := fastScenario()
	run := func(workers, n int) *YieldReport {
		t.Helper()
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		rep, err := RunYield(base, TypicalSpread(), n, 7)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1, 4)
	for _, w := range []int{2, 5} {
		rep := run(w, 4)
		for i := range serial.Units {
			if rep.Units[i] != serial.Units[i] {
				t.Fatalf("workers=%d: unit %d differs: %+v vs %+v",
					w, i, rep.Units[i], serial.Units[i])
			}
		}
		if rep.Yield != serial.Yield || rep.WorstSkewPS != serial.WorstSkewPS {
			t.Fatalf("workers=%d: aggregate differs", w)
		}
	}
	// Lot-resize stability: unit u's draw depends only on (seed, u), so a
	// smaller lot is a strict prefix of a bigger one.
	small := run(3, 2)
	for i := range small.Units {
		if small.Units[i] != serial.Units[i] {
			t.Fatalf("prefix stability broken at unit %d", i)
		}
	}
}
