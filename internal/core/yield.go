package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/par"
	"repro/internal/rf"
)

// ProcessSpread describes lot-level manufacturing variation: each simulated
// unit draws its impairments from these (Gaussian) distributions. Zero
// values disable the corresponding variation.
type ProcessSpread struct {
	// IQGainSigmaDB is the sigma of the IQ gain imbalance in dB.
	IQGainSigmaDB float64
	// IQPhaseSigmaDeg is the sigma of the quadrature error in degrees.
	IQPhaseSigmaDeg float64
	// LOLeakSigma is the sigma of the carrier feedthrough amplitude.
	LOLeakSigma float64
	// PAGainSigmaDB is the sigma of the PA small-signal gain in dB.
	PAGainSigmaDB float64
	// DCDEBiasSigma is the sigma of the DCDE static bias in seconds.
	DCDEBiasSigma float64
	// ChannelGainSigmaDB is the per-ADC-channel gain-error sigma in dB.
	ChannelGainSigmaDB float64
	// ChannelOffsetSigma is the per-channel offset sigma in volts.
	ChannelOffsetSigma float64
}

// TypicalSpread returns a credible in-spec production population.
func TypicalSpread() ProcessSpread {
	return ProcessSpread{
		IQGainSigmaDB:      0.1,
		IQPhaseSigmaDeg:    0.5,
		LOLeakSigma:        0.005,
		PAGainSigmaDB:      0.3,
		DCDEBiasSigma:      5e-12,
		ChannelGainSigmaDB: 0.1,
		ChannelOffsetSigma: 0.005,
	}
}

// UnitResult records one simulated unit's outcome.
type UnitResult struct {
	Unit   int
	Pass   bool
	SkewPS float64
	// WorstMarginDB is the mask margin (when a mask ran).
	WorstMarginDB float64
}

// YieldReport aggregates a Monte-Carlo production run.
type YieldReport struct {
	Units  []UnitResult
	Passes int
	// Yield is Passes / len(Units).
	Yield float64
	// WorstSkewPS and WorstMarginDB summarise the tails.
	WorstSkewPS   float64
	WorstMarginDB float64
}

// unitConfig derives unit u's impairment draw. Each unit owns an RNG
// seeded from the lot seed plus its index (splitmix-style mixing keeps
// neighbouring seeds decorrelated), so the draw depends only on (seed, u):
// reproducible at any worker count, stable under lot resizing, and free of
// shared state across goroutines.
func unitConfig(base Config, spread ProcessSpread, seed int64, u int) Config {
	rng := rand.New(rand.NewSource(mixSeed(seed, int64(u))))
	cfg := base
	cfg.Seed = base.Seed + int64(u)
	cfg.TimesSeed = base.TimesSeed + int64(u)
	cfg.TI.Seed = base.TI.Seed + int64(u)*17
	cfg.TI.Ch0.Seed = base.TI.Ch0.Seed + int64(u)*31
	cfg.TI.Ch1.Seed = base.TI.Ch1.Seed + int64(u)*37
	cfg.CalibrateMismatch = true
	gainDB := spread.IQGainSigmaDB * rng.NormFloat64()
	phaseDeg := spread.IQPhaseSigmaDeg * rng.NormFloat64()
	leak := complex(spread.LOLeakSigma*rng.NormFloat64(), spread.LOLeakSigma*rng.NormFloat64())
	if gainDB != 0 || phaseDeg != 0 || leak != 0 {
		cfg.Tx.IQ = rf.FromImbalanceDB(gainDB, phaseDeg, leak)
	}
	if spread.PAGainSigmaDB > 0 {
		g := dsp.FromAmplitudeDB(spread.PAGainSigmaDB * rng.NormFloat64())
		cfg.Tx.PA = &rf.LinearPA{Gain: complex(g, 0)}
	}
	cfg.TI.DCDE.Bias = spread.DCDEBiasSigma * rng.NormFloat64()
	cfg.TI.Ch0.Gain = dsp.FromAmplitudeDB(spread.ChannelGainSigmaDB * rng.NormFloat64())
	cfg.TI.Ch1.Gain = dsp.FromAmplitudeDB(spread.ChannelGainSigmaDB * rng.NormFloat64())
	cfg.TI.Ch0.Offset = spread.ChannelOffsetSigma * rng.NormFloat64()
	cfg.TI.Ch1.Offset = spread.ChannelOffsetSigma * rng.NormFloat64()
	return cfg
}

// UnitConfig exposes the per-unit impairment draw to campaign code: the
// same SplitMix64 contract RunYield uses, so a coverage grid sharded over
// the pool at any worker count — or resumed from any unit index — derives
// bit-identical device configurations.
func UnitConfig(base Config, spread ProcessSpread, seed int64, u int) Config {
	return unitConfig(base, spread, seed, u)
}

// mixSeed combines the lot seed with a unit index via the SplitMix64
// finaliser, so that consecutive (seed, u) pairs land far apart in the
// generator's state space.
func mixSeed(seed, u int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(u+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunYield simulates nUnits devices drawn from the spread through the full
// BIST and reports the yield. The base configuration supplies everything
// not varied (waveform, rates, thresholds); calibration is enabled so
// benign channel mismatch does not eat yield. Units fan out over the par
// pool; because every unit derives its own RNG from the lot seed and its
// index, the report is identical at any worker count.
func RunYield(base Config, spread ProcessSpread, nUnits int, seed int64) (*YieldReport, error) {
	if nUnits < 1 {
		return nil, fmt.Errorf("core: yield run needs at least one unit")
	}
	units := make([]UnitResult, nUnits)
	err := par.ForErr(nUnits, func(u int) error {
		b, err := New(unitConfig(base, spread, seed, u))
		if err != nil {
			return fmt.Errorf("core: yield unit %d: %w", u, err)
		}
		r, err := b.Run()
		if err != nil {
			return fmt.Errorf("core: yield unit %d: %w", u, err)
		}
		ur := UnitResult{Unit: u, Pass: r.Pass, SkewPS: r.SkewErrPS()}
		if r.Mask != nil {
			ur.WorstMarginDB = r.Mask.WorstMarginDB
		}
		units[u] = ur
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &YieldReport{WorstMarginDB: 1e9}
	for u := 0; u < nUnits; u++ {
		ur := units[u]
		if ur.WorstMarginDB != 0 && ur.WorstMarginDB < rep.WorstMarginDB {
			rep.WorstMarginDB = ur.WorstMarginDB
		}
		if ur.SkewPS > rep.WorstSkewPS {
			rep.WorstSkewPS = ur.SkewPS
		}
		if ur.Pass {
			rep.Passes++
		}
		rep.Units = append(rep.Units, ur)
	}
	rep.Yield = float64(rep.Passes) / float64(nUnits)
	return rep, nil
}
