package core

import (
	"fmt"
	"math"

	"repro/internal/pnbs"
	"repro/internal/rf"
	"repro/internal/sig"
	"repro/internal/skew"
)

// RunIRRTest performs the single-sideband tone sub-test: the transmitter is
// driven with a complex tone at +fb from the carrier, the PA output is
// captured through the BP-TIADC and reconstructed with the previously
// estimated delay, and the reconstructed envelope is searched for the
// direct tone (fc + fb), its image (fc - fb, produced by IQ imbalance) and
// the carrier residue (LO leakage). It returns the image rejection ratio in
// dB and the LO leakage in dBc.
func (b *BIST) RunIRRTest(dHat float64) (irrDB, loLeakDBc float64, err error) {
	c := b.cfg
	fb := c.SymbolRate / 2
	if fb >= c.B/2 {
		fb = c.B / 8
	}
	amp := math.Sqrt(c.BasebandPower)
	tone := &sig.ComplexTone{Amp: amp, Freq: fb}
	txCfg := c.Tx
	txCfg.Fc = c.Fc
	tx, err := rf.NewTransmitter(txCfg, tone)
	if err != nil {
		return 0, 0, fmt.Errorf("core: IRR test transmitter: %w", err)
	}
	gridN := 1024
	capLen := gridN + 2*c.HalfTaps + 16
	cap0, err := b.ti.Capture(tx.Output(), 1/c.B, c.NominalD, c.CaptureStart, capLen)
	if err != nil {
		return 0, 0, fmt.Errorf("core: IRR capture: %w", err)
	}
	set := skew.SampleSet{Band: b.band, T0: cap0.T0, Ch0: cap0.Ch0, Ch1: cap0.Ch1}
	rec, err := pnbs.NewReconstructor(set.Band, dHat, set.T0, set.Ch0, set.Ch1, b.opt())
	if err != nil {
		return 0, 0, err
	}
	env, fsEnv, _, err := b.envelopeGrid(rec, gridN)
	// The decimated envelope is a fresh slice and rec is not used past this
	// point, so the tone capture's buffers can rejoin the acquisition pool.
	cap0.Release()
	if err != nil {
		return 0, 0, err
	}
	direct := windowedPhasorMag(env, fb/fsEnv)
	image := windowedPhasorMag(env, -fb/fsEnv)
	dc := windowedPhasorMag(env, 0)
	if direct <= 0 {
		return 0, 0, fmt.Errorf("core: IRR test: no direct tone found")
	}
	// Floor the image/leak magnitudes at a tiny fraction of the direct tone
	// so perfect modulators report a large-but-finite figure.
	floor := direct * 1e-8
	if image < floor {
		image = floor
	}
	if dc < floor {
		dc = floor
	}
	return 20 * math.Log10(direct/image), 20 * math.Log10(dc/direct), nil
}

// windowedPhasorMag measures |X(nu)| of a complex sequence with a Hann
// window, normalised so a unit complex tone at nu yields 1.
func windowedPhasorMag(x []complex128, nu float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	var acc complex128
	var gain float64
	for i, v := range x {
		w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		phi := -2 * math.Pi * nu * float64(i)
		s, c := math.Sincos(phi)
		acc += v * complex(w*c, w*s)
		gain += w
	}
	return math.Hypot(real(acc), imag(acc)) / gain
}
