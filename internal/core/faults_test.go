package core

import (
	"reflect"
	"testing"
)

// TestCatalogEntriesWellFormed: every fault must have a unique name, a
// description, and an Apply that actually changes the configuration —
// otherwise escape analysis silently tests the healthy unit twice.
func TestCatalogEntriesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Catalog() {
		if f.Name == "" || f.Description == "" {
			t.Errorf("fault %+v missing name or description", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate fault name %q", f.Name)
		}
		seen[f.Name] = true
		if f.Apply == nil {
			t.Errorf("%s: nil Apply", f.Name)
			continue
		}
		healthy := PaperScenario()
		faulty := PaperScenario()
		f.Apply(&faulty)
		if reflect.DeepEqual(healthy, faulty) {
			t.Errorf("%s: Apply left the configuration unchanged", f.Name)
		}
	}
}

// TestCatalogConfigsConstructible: every faulty configuration must still be
// accepted by New — a fault models a broken DUT, not a broken simulation.
func TestCatalogConfigsConstructible(t *testing.T) {
	for _, f := range Catalog() {
		cfg := PaperScenario()
		f.Apply(&cfg)
		if _, err := New(cfg); err != nil {
			t.Errorf("%s: New rejected the faulty config: %v", f.Name, err)
		}
	}
}

func TestFaultByName(t *testing.T) {
	for _, f := range Catalog() {
		got, err := FaultByName(f.Name)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if got.Name != f.Name || got.ShouldFail != f.ShouldFail {
			t.Errorf("%s: lookup returned %q/%v", f.Name, got.Name, got.ShouldFail)
		}
	}
	if _, err := FaultByName("no-such-fault"); err == nil {
		t.Error("unknown fault name must fail")
	}
}

// TestCatalogFailureBalance: the library must exercise both sides of the
// escape/false-alarm analysis.
func TestCatalogFailureBalance(t *testing.T) {
	var fail, benign int
	for _, f := range Catalog() {
		if f.ShouldFail {
			fail++
		} else {
			benign++
		}
	}
	if fail == 0 || benign == 0 {
		t.Errorf("catalogue unbalanced: %d must-fail, %d benign", fail, benign)
	}
}

// TestBuildCatalogMirrorsCatalog: the error-returning constructor and its
// panicking wrapper must agree — same faults, same order, no panic.
func TestBuildCatalogMirrorsCatalog(t *testing.T) {
	built, err := BuildCatalog()
	if err != nil {
		t.Fatal(err)
	}
	viaPanic := Catalog()
	if len(built) != len(viaPanic) {
		t.Fatalf("BuildCatalog %d faults, Catalog %d", len(built), len(viaPanic))
	}
	for i := range built {
		if built[i].Name != viaPanic[i].Name || built[i].ShouldFail != viaPanic[i].ShouldFail {
			t.Errorf("entry %d differs: %s vs %s", i, built[i].Name, viaPanic[i].Name)
		}
	}
	ext, err := BuildExtendedCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != len(built)+3 {
		t.Errorf("extended catalogue: %d faults, want base %d + 3", len(ext), len(built))
	}
}

// TestExtendedCatalogWellFormed: the campaign-grade entries obey the same
// contract as the base library — unique named, constructible, and Apply
// actually mutates the configuration.
func TestExtendedCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range ExtendedCatalog() {
		if f.Name == "" || f.Description == "" {
			t.Errorf("fault %+v missing name or description", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate fault name %q", f.Name)
		}
		seen[f.Name] = true
		healthy := PaperScenario()
		faulty := PaperScenario()
		f.Apply(&faulty)
		if reflect.DeepEqual(healthy, faulty) {
			t.Errorf("%s: Apply left the configuration unchanged", f.Name)
		}
		if _, err := New(faulty); err != nil {
			t.Errorf("%s: New rejected the faulty config: %v", f.Name, err)
		}
	}
	if seen["healthy"] {
		t.Error(`catalogue entry named "healthy" collides with the campaign baseline row`)
	}
}

// TestNewFaultModelsApply: table test for the three campaign fault models
// — each sets exactly its own knobs, and Apply has value semantics (the
// original configuration passed by value elsewhere stays untouched).
func TestNewFaultModelsApply(t *testing.T) {
	cases := []struct {
		name  string
		check func(t *testing.T, c *Config)
	}{
		{"dcde-stuck", func(t *testing.T, c *Config) {
			if !c.TI.DCDE.Stuck || c.TI.DCDE.StuckAt != 8e-12 {
				t.Errorf("DCDE stuck state not set: %+v", c.TI.DCDE)
			}
			if c.Tx.PA != nil || c.Tx.Spurs != nil {
				t.Error("dcde-stuck touched the transmitter")
			}
		}},
		{"pa-memory", func(t *testing.T, c *Config) {
			if c.Tx.PA == nil {
				t.Fatal("PA not replaced")
			}
			if c.TI.DCDE.Stuck || c.Tx.Spurs != nil {
				t.Error("pa-memory touched unrelated knobs")
			}
		}},
		{"lo-spur-comb", func(t *testing.T, c *Config) {
			if c.Tx.Spurs == nil {
				t.Fatal("spur comb not installed")
			}
			if got := c.Tx.Spurs.RMSRadians(); got <= 0 {
				t.Errorf("spur comb has no phase deviation: %g rad", got)
			}
			if c.Tx.PA != nil || c.TI.DCDE.Stuck {
				t.Error("lo-spur-comb touched unrelated knobs")
			}
		}},
	}
	for _, tc := range cases {
		f, err := FaultByName(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !f.ShouldFail {
			t.Errorf("%s: must be a ShouldFail fault", tc.name)
		}
		orig := PaperScenario()
		cfg := orig
		f.Apply(&cfg)
		tc.check(t, &cfg)
		if !reflect.DeepEqual(orig, PaperScenario()) {
			t.Errorf("%s: Apply leaked into the original config", tc.name)
		}
	}
}

// TestFaultByNameFindsExtended: lookup spans the extended catalogue.
func TestFaultByNameFindsExtended(t *testing.T) {
	for _, name := range []string{"dcde-stuck", "pa-memory", "lo-spur-comb"} {
		if _, err := FaultByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
