package core

import (
	"reflect"
	"testing"
)

// TestCatalogEntriesWellFormed: every fault must have a unique name, a
// description, and an Apply that actually changes the configuration —
// otherwise escape analysis silently tests the healthy unit twice.
func TestCatalogEntriesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Catalog() {
		if f.Name == "" || f.Description == "" {
			t.Errorf("fault %+v missing name or description", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate fault name %q", f.Name)
		}
		seen[f.Name] = true
		if f.Apply == nil {
			t.Errorf("%s: nil Apply", f.Name)
			continue
		}
		healthy := PaperScenario()
		faulty := PaperScenario()
		f.Apply(&faulty)
		if reflect.DeepEqual(healthy, faulty) {
			t.Errorf("%s: Apply left the configuration unchanged", f.Name)
		}
	}
}

// TestCatalogConfigsConstructible: every faulty configuration must still be
// accepted by New — a fault models a broken DUT, not a broken simulation.
func TestCatalogConfigsConstructible(t *testing.T) {
	for _, f := range Catalog() {
		cfg := PaperScenario()
		f.Apply(&cfg)
		if _, err := New(cfg); err != nil {
			t.Errorf("%s: New rejected the faulty config: %v", f.Name, err)
		}
	}
}

func TestFaultByName(t *testing.T) {
	for _, f := range Catalog() {
		got, err := FaultByName(f.Name)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if got.Name != f.Name || got.ShouldFail != f.ShouldFail {
			t.Errorf("%s: lookup returned %q/%v", f.Name, got.Name, got.ShouldFail)
		}
	}
	if _, err := FaultByName("no-such-fault"); err == nil {
		t.Error("unknown fault name must fail")
	}
}

// TestCatalogFailureBalance: the library must exercise both sides of the
// escape/false-alarm analysis.
func TestCatalogFailureBalance(t *testing.T) {
	var fail, benign int
	for _, f := range Catalog() {
		if f.ShouldFail {
			fail++
		} else {
			benign++
		}
	}
	if fail == 0 || benign == 0 {
		t.Errorf("catalogue unbalanced: %d must-fail, %d benign", fail, benign)
	}
}
