package core
