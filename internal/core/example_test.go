package core_test

import (
	"fmt"

	"repro/internal/core"
)

// One complete BIST execution on the paper's scenario: stimulate, capture
// nonuniformly, identify the delay blindly, reconstruct, check the mask.
func ExampleBIST_Run() {
	cfg := core.PaperScenario()
	cfg.CaptureLen = 900 // demo-friendly size
	cfg.NTimes = 100
	cfg.PSDLen = 512
	cfg.SegLen = 256
	b, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	rep, err := b.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict pass:", rep.Pass)
	fmt.Println("skew error below 3 ps:", rep.SkewErrPS() < 3)
	fmt.Println("mask:", rep.Mask.Pass)
	// Output:
	// verdict pass: true
	// skew error below 3 ps: true
	// mask: true
}

// Fault injection: mutate the healthy configuration, rerun, observe the
// verdict flip.
func ExampleFaultByName() {
	cfg := core.PaperScenario()
	cfg.CaptureLen = 900
	cfg.NTimes = 100
	cfg.PSDLen = 512
	cfg.SegLen = 256
	f, err := core.FaultByName("pa-compression")
	if err != nil {
		panic(err)
	}
	f.Apply(&cfg)
	b, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	rep, err := b.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("faulty unit rejected:", !rep.Pass)
	// Output: faulty unit rejected: true
}
