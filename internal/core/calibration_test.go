package core

import "testing"

func TestChannelMismatchAbsorbedByCalibration(t *testing.T) {
	c := fastScenario()
	f, err := FaultByName("channel-mismatch")
	if err != nil {
		t.Fatal(err)
	}
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("calibrated channel mismatch caused a false alarm:\n%s", rep.Summary())
	}
	if rep.ReconRelErr > 0.05 {
		t.Errorf("reconstruction error %.3g with calibration", rep.ReconRelErr)
	}
}

func TestChannelMismatchHurtsWithoutCalibration(t *testing.T) {
	// Same mismatch, calibration disabled: the reconstruction degrades
	// measurably (gain mismatch acts like multiplicative noise on half the
	// sample set).
	mk := func(calibrate bool) float64 {
		c := fastScenario()
		f, _ := FaultByName("channel-mismatch")
		f.Apply(&c)
		c.CalibrateMismatch = calibrate
		b, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.ReconRelErr
	}
	with := mk(true)
	without := mk(false)
	if without < 1.5*with {
		t.Errorf("calibration gain not visible: %.3g with vs %.3g without", with, without)
	}
}

func TestCalibrationHarmlessOnHealthyUnit(t *testing.T) {
	c := fastScenario()
	c.CalibrateMismatch = true
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("calibration broke a healthy unit:\n%s", rep.Summary())
	}
}
