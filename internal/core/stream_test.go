package core

import "testing"

// TestRunStreamChunkInvariance pins the acquisition pipeline's determinism
// contract end to end: the streamed, int16-packed capture feeds the whole
// BIST — delay estimate, reconstruction fidelity, mask verdict — and every
// result must be bit-identical at every chunk size (the producer owns the
// random streams in index order, and the fixed-point round trip is exact).
func TestRunStreamChunkInvariance(t *testing.T) {
	run := func(chunk int) *Report {
		c := fastScenario()
		c.StreamChunk = chunk
		b, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ref := run(0)
	for _, chunk := range []int{1, 13, 900, 4096} {
		rep := run(chunk)
		if rep.DHat != ref.DHat {
			t.Errorf("chunk=%d: DHat %.17g != %.17g", chunk, rep.DHat, ref.DHat)
		}
		if rep.ReconRelErr != ref.ReconRelErr {
			t.Errorf("chunk=%d: recon error %.17g != %.17g", chunk,
				rep.ReconRelErr, ref.ReconRelErr)
		}
		if rep.Pass != ref.Pass {
			t.Errorf("chunk=%d: verdict %v != %v", chunk, rep.Pass, ref.Pass)
		}
	}
}
