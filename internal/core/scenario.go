package core

import (
	"repro/internal/adc"
	"repro/internal/mask"
	"repro/internal/modem"
	"repro/internal/rf"
	"repro/internal/sig"
	"repro/internal/tiadc"
)

// PaperScenario returns the Section V simulation configuration: 10 MHz QPSK
// shaped by SRRC alpha = 0.5 at fc = 1 GHz, captured by two 10-bit ADCs at
// B = 90 MHz with 3 ps rms clock jitter, DCDE programmed to 180 ps, LMS
// initialised with mu = 1 ps.
func PaperScenario() Config {
	return Config{
		Constellation: "QPSK",
		SymbolRate:    10e6,
		RollOff:       0.5,
		NumSymbols:    128,
		Seed:          2014,
		BasebandPower: 0.5,

		Fc: 1e9,
		Tx: rf.TxConfig{}, // healthy: impairment-free

		B:        90e6,
		NominalD: 180e-12,
		TI: tiadc.Config{
			Ch0:            adc.Config{Bits: 10, FullScale: 1.5, Seed: 101},
			Ch1:            adc.Config{Bits: 10, FullScale: 1.5, Seed: 202},
			DCDE:           tiadc.DCDE{Min: 0, Max: 480e-12},
			ClockJitterRMS: 3e-12,
			Seed:           303,
		},
		CaptureLen:   2200,
		CaptureStart: 0,

		NTimes:    300,
		TimesSeed: 404,

		Mask: mask.WidebandQPSK15M(),
	}
}

// MultistandardScenarios returns a set of waveform/carrier configurations
// demonstrating the flexibility claim of Section II-B: the same BIST
// hardware covers every configuration at the minimal per-channel rate, with
// no per-configuration clock planning.
func MultistandardScenarios() []Config {
	base := PaperScenario()
	mk := func(name string, symRate, fc, b float64, m *mask.Mask) Config {
		c := base
		c.Constellation = name
		c.SymbolRate = symRate
		c.Fc = fc
		c.B = b
		c.NominalD = 0 // re-derive the optimal delay for the new carrier
		c.D0 = 0
		// Scale the DCDE range with the carrier (optimal D = 1/(4 fc)).
		c.TI.DCDE.Max = 0.35 / fc
		// Hold the clock's PHASE jitter constant across carriers (3 ps at
		// 1 GHz): sampling-clock jitter requirements scale with the carrier
		// exactly like LO phase-noise requirements (paper §II-B.3, ref
		// [15]), so a radio built for a higher band ships a better clock.
		c.TI.ClockJitterRMS = 3e-12 * 1e9 / fc
		c.Mask = m
		return c
	}
	// Capture rates are chosen so frac(2 fc / B) lies in (0, 0.5]; outside
	// that range the centred half-rate band violates the Eq. (9b)
	// uniqueness condition (k+ B = k1+ B1). See CheckFeasibility.
	out := []Config{
		mk("QPSK", 10e6, 1e9, 90e6, mask.WidebandQPSK15M()),
		mk("16QAM", 3.2e6, 2.2e9, 72e6, mask.WidebandOFDMLike()),
		mk("8PSK", 1.6e6, 450e6, 44e6, mask.WidebandOFDMLike()),
		mk("BPSK", 5e6, 3.1e9, 72e6, mask.WidebandQPSK15M()),
	}
	for i := range out {
		out[i].Name = out[i].Constellation
	}
	// A multicarrier waveform the paper never simulated: 64-subcarrier
	// CP-OFDM at 1.45 GHz — "standards yet to appear" (Section I).
	ofdm, err := modem.NewOFDM(modem.OFDMConfig{
		Subcarriers: 64,
		Spacing:     156.25e3,
		Seed:        64,
	})
	if err != nil {
		panic("core: OFDM scenario: " + err.Error())
	}
	oc := mk("QPSK", 10e6, 1.45e9, 90e6, mask.WidebandMulticarrier10M())
	oc.Name = "OFDM-64"
	// Scale for the ADC full scale given OFDM's ~10 dB PAPR.
	oc.Baseband = sig.ScaleEnv(ofdm, 0.5)
	out = append(out, oc)
	// The opposite waveform corner: constant-envelope GMSK (BT = 0.3), the
	// saturated-PA tactical waveform class.
	gmsk, err := modem.NewCPM(modem.CPMConfig{SymbolRate: 2e6, BT: 0.3, Symbols: 256, Seed: 77})
	if err != nil {
		panic("core: GMSK scenario: " + err.Error())
	}
	gc := mk("QPSK", 2e6, 520e6, 32e6, mask.WidebandOFDMLike())
	gc.Name = "GMSK"
	gc.Baseband = sig.ScaleEnv(gmsk, 0.7)
	out = append(out, gc)
	return out
}
