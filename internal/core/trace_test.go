package core

import (
	"bytes"
	"testing"

	"repro/internal/obs/trace"
	"repro/internal/par"
	"repro/internal/testkit"
)

// Enabling a trace recording must not change a single output bit of the
// pipeline — the same contract the metrics layer honours.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	run := func() *Report {
		t.Helper()
		b, err := New(fastScenario())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run()
	if err := trace.StartRecording(trace.Config{}); err != nil {
		t.Fatal(err)
	}
	on := run()
	rec := trace.StopRecording()
	if rec == nil || len(rec.Spans) == 0 {
		t.Fatal("recording captured nothing")
	}
	offJSON, err := testkit.MarshalCanonical(off)
	if err != nil {
		t.Fatal(err)
	}
	onJSON, err := testkit.MarshalCanonical(on)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offJSON, onJSON) {
		t.Error("report differs with tracing enabled")
	}
}

// One traced BIST run must produce the full stage-span tree: a
// core.bist.run root with every pipeline stage as a direct child, the LMS
// subtree nested under the estimate stage, and one skew.lms.iter span per
// reported outer iteration.
func TestTraceStageSpans(t *testing.T) {
	b, err := New(fastScenario())
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.StartRecording(trace.Config{}); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	rec := trace.StopRecording()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int32]trace.SpanData{}
	count := map[string]int{}
	for _, s := range rec.Spans {
		byID[s.ID] = s
		count[s.Name]++
	}
	if count["core.bist.run"] != 1 {
		t.Fatalf("core.bist.run spans: %d, want 1", count["core.bist.run"])
	}
	for _, stage := range []string{"core.stage.acquire", "core.stage.estimate",
		"core.stage.reconstruct", "core.stage.measure"} {
		if count[stage] != 1 {
			t.Errorf("%s spans: %d, want 1", stage, count[stage])
		}
	}
	if got, want := count["skew.lms.iter"], rep.LMS.Iterations; got != want {
		t.Errorf("skew.lms.iter spans: %d, want LMS iterations %d", got, want)
	}
	if got, want := count["skew.cost.eval"], rep.LMS.CostEvals; got != want {
		t.Errorf("skew.cost.eval spans: %d, want cost evals %d", got, want)
	}
	// Parentage: every stage span is a direct child of the run span, and the
	// LMS span's chain reaches the estimate stage.
	var runID, estID int32
	for _, s := range rec.Spans {
		switch s.Name {
		case "core.bist.run":
			runID = s.ID
		case "core.stage.estimate":
			estID = s.ID
		}
	}
	for _, s := range rec.Spans {
		switch s.Name {
		case "core.stage.acquire", "core.stage.estimate", "core.stage.reconstruct", "core.stage.measure":
			if s.Parent != runID {
				t.Errorf("%s parented to %d, want core.bist.run %d", s.Name, s.Parent, runID)
			}
		case "skew.lms":
			if s.Parent != estID {
				t.Errorf("skew.lms parented to %d, want core.stage.estimate %d", s.Parent, estID)
			}
		}
	}
	// The LMS counter tracks streamed one sample per history point.
	dhat, cost := 0, 0
	for _, c := range rec.Counters {
		switch {
		case len(c.Name) > 14 && c.Name[:14] == "skew.lms.dhat[":
			dhat++
		case len(c.Name) > 14 && c.Name[:14] == "skew.lms.cost[":
			cost++
		}
	}
	if dhat != len(rep.LMS.DHistory) || cost != len(rep.LMS.CostHistory) {
		t.Errorf("counter samples dhat=%d cost=%d, want history lengths %d/%d",
			dhat, cost, len(rep.LMS.DHistory), len(rep.LMS.CostHistory))
	}
}

// The normalized span tree is byte-identical at any worker count: the
// timeline moves, the structure does not.
func TestTraceNormalizedIdenticalAcrossWorkers(t *testing.T) {
	capture := func(workers int) []byte {
		t.Helper()
		prevW := par.SetWorkers(workers)
		defer par.SetWorkers(prevW)
		b, err := New(fastScenario())
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.StartRecording(trace.Config{}); err != nil {
			t.Fatal(err)
		}
		_, runErr := b.Run()
		rec := trace.StopRecording()
		if runErr != nil {
			t.Fatal(runErr)
		}
		enc, err := rec.MarshalNormalized()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	one := capture(1)
	four := capture(4)
	if !bytes.Equal(one, four) {
		t.Errorf("normalized trace differs between worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
}
