package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dsp"
	"repro/internal/mask"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/par"
	"repro/internal/pnbs"
	"repro/internal/sig"
	"repro/internal/skew"
)

// Stage latency instruments for the BIST pipeline. One histogram per
// pipeline stage (seconds, shared exponential buckets) plus a run counter;
// together with skew's eval counter they make the paper's compute-budget
// discussion observable on a live run instead of analytic-only.
var (
	mRuns         = obs.C("core.bist.runs")
	hStageAcquire = obs.H("core.stage.acquire.seconds", obs.LatencyBuckets)
	hStageEstim   = obs.H("core.stage.estimate.seconds", obs.LatencyBuckets)
	hStageRecon   = obs.H("core.stage.reconstruct.seconds", obs.LatencyBuckets)
	hStageMeasure = obs.H("core.stage.measure.seconds", obs.LatencyBuckets)
	hRunTotal     = obs.H("core.stage.total.seconds", obs.LatencyBuckets)
)

// Trace span names for the pipeline (interned once). The histograms above
// answer "how long do stages take on aggregate"; the spans place each
// stage of each run on a timeline, nested under one root span per BIST
// execution.
var (
	tnRun         = trace.Intern("core.bist.run")
	tnAcquire     = trace.Intern("core.stage.acquire")
	tnEstimate    = trace.Intern("core.stage.estimate")
	tnReconstruct = trace.Intern("core.stage.reconstruct")
	tnMeasure     = trace.Intern("core.stage.measure")
	tnADCCheck    = trace.Intern("core.stage.adccheck")
)

// ComputeBudget estimates the arithmetic work of one BIST execution — the
// quantity behind the paper's remark that the technique "is more suitable
// for an offline implementation". Counts are analytic (derived from the
// configuration and the LMS trace), not timed.
type ComputeBudget struct {
	// KernelEvals is the number of Kohlenberg kernel evaluations: the
	// dominant cost (a handful of complex multiplies each).
	KernelEvals int64
	// CostEvals is the number of objective evaluations Algorithm 1 used.
	CostEvals int
	// PSDSamples is the number of envelope-grid points reconstructed for
	// the spectral measurements.
	PSDSamples int
}

// Report is the structured outcome of one BIST execution.
type Report struct {
	// Scenario describes the DUT configuration under test.
	Scenario string

	// Delay identification.
	DNominal float64 // DCDE setting
	DActual  float64 // ground truth (simulation only)
	DHat     float64 // LMS estimate
	LMS      skew.LMSResult

	// Reconstruction fidelity against the true waveform at the evaluation
	// instants (simulation-only ground truth, the paper's Delta-epsilon).
	ReconRelErr float64

	// Spectral measurements through the BIST path.
	Mask       *mask.Report
	ACPRLowDB  float64
	ACPRHighDB float64
	// OBWHz is the measured 99 % occupied bandwidth.
	OBWHz float64

	// Reference mask check measured directly at the (noiseless) Tx output,
	// for escape/false-alarm analysis.
	RefMask *mask.Report

	// Modulator health (set when IRRTest is enabled).
	IRRMeasuredDB float64
	LOLeakageDBc  float64
	IRRTested     bool

	// Modulation quality through the BIST path (set when EVMTest is
	// enabled).
	EVM       *EVMOutcome
	EVMTested bool

	// Instrument pre-check (set when ADCCheck is enabled).
	ADC        *ADCCheckResult
	ADCChecked bool

	// Compute is the analytic work estimate for the run.
	Compute ComputeBudget

	// Verdict.
	Pass     bool
	Failures []string
}

// SkewErrPS returns |DHat - DActual| in picoseconds.
func (r *Report) SkewErrPS() float64 { return math.Abs(r.DHat-r.DActual) * 1e12 }

// Summary renders a compact multi-line report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BIST %s\n", map[bool]string{true: "PASS", false: "FAIL"}[r.Pass])
	fmt.Fprintf(&b, "  scenario: %s\n", r.Scenario)
	fmt.Fprintf(&b, "  delay: nominal %.2f ps, actual %.2f ps, estimated %.3f ps (err %.3f ps, %d LMS iters)\n",
		r.DNominal*1e12, r.DActual*1e12, r.DHat*1e12, r.SkewErrPS(), r.LMS.Iterations)
	fmt.Fprintf(&b, "  reconstruction error: %.3g %%\n", 100*r.ReconRelErr)
	if r.Mask != nil {
		fmt.Fprintf(&b, "  mask %s: %v (worst margin %+.2f dB at %+.2f MHz)\n",
			r.Mask.MaskName, r.Mask.Pass, r.Mask.WorstMarginDB, r.Mask.WorstOffsetHz/1e6)
		fmt.Fprintf(&b, "  ACPR: %+.2f / %+.2f dB (low/high); 99%% OBW %.2f MHz\n",
			r.ACPRLowDB, r.ACPRHighDB, r.OBWHz/1e6)
	}
	if r.IRRTested {
		fmt.Fprintf(&b, "  IRR %.1f dB, LO leakage %.1f dBc\n", r.IRRMeasuredDB, r.LOLeakageDBc)
	}
	if r.EVMTested && r.EVM != nil {
		fmt.Fprintf(&b, "  EVM %.2f%% rms / %.2f%% peak over %d symbols\n",
			r.EVM.RMSPercent, r.EVM.PeakPercent, r.EVM.Symbols)
	}
	if r.ADCChecked && r.ADC != nil {
		fmt.Fprintf(&b, "  ADC pre-check: SNDR %.1f / %.1f dB (ch0/ch1)\n",
			r.ADC.SNDRdB[0], r.ADC.SNDRdB[1])
	}
	if r.Compute.KernelEvals > 0 {
		fmt.Fprintf(&b, "  compute: %.1f M kernel evals (%d cost evals, %d PSD samples)\n",
			float64(r.Compute.KernelEvals)/1e6, r.Compute.CostEvals, r.Compute.PSDSamples)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  failure: %s\n", f)
	}
	return b.String()
}

// Run executes the full BIST flow and returns the report.
func (b *BIST) Run() (*Report, error) {
	return b.RunCtx(trace.Root)
}

// RunCtx is Run under a trace parent: the whole execution nests in a
// "core.bist.run" span with one "core.stage.*" child per pipeline stage,
// so a capture shows where a run's wall time went — and, through the
// children the estimate stage hands down to skew, how the LMS descent
// spent it.
func (b *BIST) RunCtx(tc trace.Ctx) (*Report, error) {
	c := b.cfg
	mRuns.Inc()
	total := hRunTotal.Start()
	defer total.End()
	run := trace.Start(tc, tnRun)
	run.SetAttr("scenario", b.tx.Describe())
	defer run.End()
	rep := &Report{
		Scenario: b.tx.Describe(),
		DNominal: c.NominalD,
	}
	// 0. Instrument pre-check: do not trust a broken converter.
	if c.ADCCheck {
		spChk := trace.Start(run.Ctx(), tnADCCheck)
		chk, err := b.RunADCCheck()
		spChk.End()
		if err != nil {
			return nil, err
		}
		rep.ADCChecked = true
		rep.ADC = chk
		for i, sndr := range chk.SNDRdB {
			if sndr < c.MinADCSNDRdB {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("ADC channel %d SNDR %.1f dB below instrument floor %.1f dB",
						i, sndr, c.MinADCSNDRdB))
			}
		}
	}

	// 1-2. Acquire the PA output nonuniformly at both rates.
	spAcq := hStageAcquire.Start()
	tAcq := trace.Start(run.Ctx(), tnAcquire)
	setB, setB1, caps, actualD, err := b.acquire()
	tAcq.End()
	spAcq.End()
	if err != nil {
		return nil, err
	}
	// The report aliases nothing from the acquisition, and the evaluator
	// and reconstructors built below die with this call — so the capture
	// buffers and the measure-stage scratch go back to their pools on every
	// exit path, keeping a campaign's steady-state allocation rate flat.
	defer caps[0].Release()
	defer caps[1].Release()
	defer b.releaseScratch()
	rep.DActual = actualD

	// 3. Identify the channel delay (Algorithm 1).
	spEst := hStageEstim.Start()
	tEst := trace.Start(run.Ctx(), tnEstimate)
	res, ce, err := b.estimate(tEst.Ctx(), setB, setB1)
	tEst.End()
	spEst.End()
	if err != nil {
		return nil, err
	}
	rep.DHat = res.DHat
	rep.LMS = res

	// 4. Reconstruct the bandpass waveform with the estimated delay.
	spRec := hStageRecon.Start()
	tRec := trace.Start(run.Ctx(), tnReconstruct)
	rec, err := b.Reconstructor(setB, res.DHat)
	if err != nil {
		tRec.End()
		spRec.End()
		return nil, err
	}
	// Ground-truth fidelity at the evaluation instants.
	truth := b.tx.Output()
	got := rec.AtTimes(ce.Times())
	want := sig.SampleAt(truth, ce.Times())
	rep.ReconRelErr = dsp.RelRMSError(got, want)
	tRec.End()
	spRec.End()

	spMeas := hStageMeasure.Start()
	defer spMeas.End()
	tMeas := trace.Start(run.Ctx(), tnMeasure)
	defer tMeas.End()

	// 5. Spectral measurements.
	if c.Mask != nil {
		env, fsEnv, _, err := b.envelopeGrid(rec, c.PSDLen)
		if err != nil {
			return nil, err
		}
		spec, err := b.measurePSD(env, fsEnv)
		if err != nil {
			return nil, err
		}
		mrep, err := mask.Check(c.Mask, spec, c.Fc)
		if err != nil {
			return nil, err
		}
		rep.Mask = mrep
		if obw, _, err := mask.OccupiedBandwidth(spec, 0.99); err == nil {
			rep.OBWHz = obw
		}
		if v, err := mask.ACPR(spec, c.Fc, c.Mask.ChannelBW, -c.Mask.ChannelBW*1.25); err == nil {
			rep.ACPRLowDB = v
		}
		if v, err := mask.ACPR(spec, c.Fc, c.Mask.ChannelBW, c.Mask.ChannelBW*1.25); err == nil {
			rep.ACPRHighDB = v
		}
		// Reference: the same measurement directly on the Tx envelope.
		refSpec, err := b.referencePSD(tMeas.Ctx())
		if err == nil {
			if refRep, err := mask.Check(c.Mask, refSpec, c.Fc); err == nil {
				rep.RefMask = refRep
			}
		}
		if !mrep.Pass {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("spectral mask %s violated by %.2f dB at %+.2f MHz",
					mrep.MaskName, -mrep.WorstMarginDB, mrep.WorstOffsetHz/1e6))
		}
		if c.MinChannelPower > 0 && mrep.ChannelPower < c.MinChannelPower {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("channel power %.3g below minimum %.3g", mrep.ChannelPower, c.MinChannelPower))
		}
	}

	// 6. Modulation quality through the reconstruction path.
	if c.EVMTest {
		evm, err := b.RunEVMTest(rec, c.EVMSymbols)
		if err != nil {
			return nil, err
		}
		rep.EVMTested = true
		rep.EVM = evm
		if evm.RMSPercent > c.MaxEVMPercent {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("EVM %.2f%% above limit %.2f%%", evm.RMSPercent, c.MaxEVMPercent))
		}
	}

	// 7. Modulator health via the SSB tone test.
	if c.IRRTest {
		irr, leak, err := b.RunIRRTest(res.DHat)
		if err != nil {
			return nil, err
		}
		rep.IRRTested = true
		rep.IRRMeasuredDB = irr
		rep.LOLeakageDBc = leak
		if irr < c.MinIRRDB {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("image rejection %.1f dB below minimum %.1f dB", irr, c.MinIRRDB))
		}
		if leak > c.MaxLOLeakDBc {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("LO leakage %.1f dBc above limit %.1f dBc", leak, c.MaxLOLeakDBc))
		}
	}

	// Analytic compute accounting: every reconstruction evaluation touches
	// 2*(2h+1) kernel terms (both channels across the filter support).
	taps := int64(2 * (2*c.HalfTaps + 1))
	rep.Compute.CostEvals = res.CostEvals
	rep.Compute.KernelEvals = int64(res.CostEvals) * int64(c.NTimes) * 2 * taps
	if c.Mask != nil {
		rep.Compute.PSDSamples = c.PSDLen
		rep.Compute.KernelEvals += int64(c.PSDLen) * 4 * taps // 4x oversampled grid
	}
	rep.Compute.KernelEvals += int64(len(ce.Times())) * taps // fidelity check

	rep.Pass = len(rep.Failures) == 0
	return rep, nil
}

// Reconstructor builds the rate-B reconstructor for an acquired set and a
// delay estimate.
func (b *BIST) Reconstructor(setB skew.SampleSet, dHat float64) (*pnbs.Reconstructor, error) {
	return pnbs.NewReconstructor(setB.Band, dHat, setB.T0, setB.Ch0, setB.Ch1, b.opt())
}

// referencePSD measures the Welch PSD of the true Tx envelope on a uniform
// grid (the "golden" instrument the BIST replaces). Envelope evaluations
// are independent per instant, so they fan out over the par pool; each
// grid point's value depends only on its own instant, keeping the result
// identical at any worker count.
func (b *BIST) referencePSD(tc trace.Ctx) (*dsp.Spectrum, error) {
	c := b.cfg
	env := b.tx.OutputEnvelope()
	n := c.PSDLen
	xs := make([]complex128, n)
	par.ForCtx(tc, n, func(i int) {
		xs[i] = env.At(c.CaptureStart + float64(i)/c.B)
	})
	return dsp.WelchComplex(xs, c.B, c.Fc, dsp.DefaultWelch(c.SegLen))
}
