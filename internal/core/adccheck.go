package core

import (
	"fmt"
	"math"

	"repro/internal/adc"
	"repro/internal/rf"
	"repro/internal/sig"
	"repro/internal/skew"
)

// ADCCheckResult reports the per-channel instrument pre-check.
type ADCCheckResult struct {
	// SNDRdB holds channel 0 and channel 1 signal-to-noise-and-distortion.
	SNDRdB [2]float64
	// ENOB holds the effective bits per channel.
	ENOB [2]float64
	// AliasFreq is the digital frequency (Hz) of the test tone after
	// subsampling.
	AliasFreq float64
}

// RunADCCheck verifies the reused receiver converters before trusting the
// BIST measurement: the transmitter emits a clean SSB tone, each channel
// captures it by subsampling, and a single-tone FFT test measures SNDR per
// channel. A converter with gross static nonlinearity (or excess noise)
// fails here, preventing the instrument from masquerading as a DUT fault —
// the fault-masking concern the paper raises about loopback BIST
// (Section I) applied to the converter itself.
//
// Note the healthy SNDR is jitter-limited, not quantization-limited: with
// 3 ps rms aperture/clock jitter on a 1 GHz carrier the ceiling is
// -20 log10(2 pi fc sigma_j) ~ 34.5 dB.
func (b *BIST) RunADCCheck() (*ADCCheckResult, error) {
	c := b.cfg
	// Pick a tone whose alias lands mid-band for a clean FFT test.
	fa, err := skew.SineTestFrequency(b.band, c.B, 0.23*c.B)
	if err != nil {
		return nil, err
	}
	fb := fa - c.Fc
	txCfg := c.Tx
	txCfg.Fc = c.Fc
	tx, err := rf.NewTransmitter(txCfg, &sig.ComplexTone{Amp: math.Sqrt(c.BasebandPower), Freq: fb})
	if err != nil {
		return nil, err
	}
	n := 4096
	cap0, err := b.ti.Capture(tx.Output(), 1/c.B, c.NominalD, c.CaptureStart, n)
	if err != nil {
		return nil, err
	}
	alias, _ := skew.AliasedFrequency(fa, c.B)
	nu := alias / c.B
	res := &ADCCheckResult{AliasFreq: alias}
	for i, ch := range [][]float64{cap0.Ch0, cap0.Ch1} {
		dt, err := adc.DynamicTest(ch, nu)
		if err != nil {
			return nil, fmt.Errorf("core: ADC check channel %d: %w", i, err)
		}
		res.SNDRdB[i] = dt.SNDRdB
		res.ENOB[i] = dt.ENOB
	}
	cap0.Release() // the result holds scalars only
	return res, nil
}
