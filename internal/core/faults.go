package core

import (
	"fmt"

	"repro/internal/adc"
	"repro/internal/rf"
)

// Fault is one injectable manufacturing defect for escape analysis. Apply
// mutates a healthy configuration into the faulty one.
type Fault struct {
	// Name identifies the fault in reports.
	Name string
	// Description explains the physical defect and its expected signature.
	Description string
	// ShouldFail indicates whether a correct BIST must reject the unit.
	ShouldFail bool
	// Apply injects the fault.
	Apply func(c *Config)
}

// BuildCatalog constructs the built-in fault library. Faults marked
// ShouldFail are specification violations; the remainder are benign process
// variations the BIST must tolerate (no false alarms) — notably the DCDE
// bias, which is exactly the unknown the LMS technique exists to absorb.
//
// Every impairment model is constructed here, up front, so a bad parameter
// surfaces as a returned error instead of a panic inside an Apply closure
// deep in a campaign run; the closures only assign the prebuilt (read-only)
// models.
func BuildCatalog() ([]Fault, error) {
	compressedPA, err := rf.NewRappPA(1, 0.55, 2)
	if err != nil {
		return nil, fmt.Errorf("core: fault catalog: pa-compression: %w", err)
	}
	inlProfile, err := adc.NewRandomNL(10, 1.0, 91)
	if err != nil {
		return nil, fmt.Errorf("core: fault catalog: adc-inl: %w", err)
	}
	heavyPN, err := rf.NewPhaseNoise(
		[]float64{1e4, 1e5, 1e6, 1e7},
		[]float64{-48, -55, -75, -100}, 256, 17)
	if err != nil {
		return nil, fmt.Errorf("core: fault catalog: lo-phase-noise: %w", err)
	}
	return []Fault{
		{
			Name:        "pa-compression",
			Description: "PA driven deep into compression: spectral regrowth violates the mask shoulders",
			ShouldFail:  true,
			Apply: func(c *Config) {
				// Saturation at ~the signal RMS: heavy clipping.
				c.Tx.PA = compressedPA
				c.BasebandPower = 1.0
			},
		},
		{
			Name:        "iq-imbalance",
			Description: "severe quadrature error (2 dB / 12 deg): image rejection collapses",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.IQ = rf.FromImbalanceDB(2, 12, 0)
				c.IRRTest = true
			},
		},
		{
			Name:        "lo-leakage",
			Description: "carrier feedthrough at -18 dBc: LO leakage limit violated",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.IQ = rf.FromImbalanceDB(0, 0, complex(0.09, 0))
				c.IRRTest = true
			},
		},
		{
			Name:        "dead-gain",
			Description: "PA gain collapsed by 20 dB: output power floor violated",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.PA = &rf.LinearPA{Gain: 0.1}
				c.MinChannelPower = 0.05
			},
		},
		{
			Name:        "adc-inl",
			Description: "receiver ADC channel 1 with gross ladder mismatch (1 LSB rms DNL random walk): instrument pre-check fails",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.TI.Ch1.NL = inlProfile
				c.ADCCheck = true
			},
		},
		{
			Name:        "lo-phase-noise",
			Description: "degraded LO with heavy close-in phase noise: modulation quality (EVM) collapses",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.PhaseNoise = heavyPN
				c.EVMTest = true
			},
		},
		{
			Name:        "channel-mismatch",
			Description: "ADC channel gain/offset mismatch (0.7 dB, 30 mV): benign once background calibration runs",
			ShouldFail:  false,
			Apply: func(c *Config) {
				c.TI.Ch0.Gain = 1.04
				c.TI.Ch0.Offset = 0.03
				c.TI.Ch1.Gain = 0.96
				c.TI.Ch1.Offset = -0.03
				c.CalibrateMismatch = true
			},
		},
		{
			Name:        "dcde-bias",
			Description: "DCDE static bias of +35 ps: benign, absorbed by LMS delay identification",
			ShouldFail:  false,
			Apply: func(c *Config) {
				c.TI.DCDE.Bias = 35e-12
			},
		},
		{
			Name:        "mild-iq",
			Description: "mild quadrature error (0.2 dB / 1 deg): within spec, must pass",
			ShouldFail:  false,
			Apply: func(c *Config) {
				c.Tx.IQ = rf.FromImbalanceDB(0.2, 1, 0)
				c.IRRTest = true
			},
		},
	}, nil
}

// Catalog returns the built-in fault library, panicking on construction
// errors. The library is built from constant parameters, so a failure here
// is a programming error, not an input error; campaign code that wants to
// surface the error instead calls BuildCatalog directly.
func Catalog() []Fault {
	fs, err := BuildCatalog()
	if err != nil {
		panic(fmt.Sprintf("core: fault catalog: %v", err))
	}
	return fs
}

// BuildExtendedCatalog returns the base library plus the campaign-grade
// fault models: defects whose visibility depends on the stimulus driving
// the transmitter, which is what a stimulus-coverage matrix exists to
// measure. They live outside Catalog() so the classic single-stimulus
// experiments (RunMaskBIST and the spectral-mask example) keep their
// committed vectors.
func BuildExtendedCatalog() ([]Fault, error) {
	base, err := BuildCatalog()
	if err != nil {
		return nil, err
	}
	// AM-AM + AM-PM with memory: a two-tap memory polynomial whose delayed
	// third-order term makes the spectral regrowth asymmetric. Third-order
	// products scale with the drive cubed, so a backed-off stimulus can
	// legitimately miss this fault — the canonical coverage escape.
	memPA, err := rf.NewMemoryPolyPA([][3]complex128{
		{1, complex(-0.32, 0.14), 0},
		{0, complex(0.22, -0.15), 0},
	}, 22e-9)
	if err != nil {
		return nil, fmt.Errorf("core: fault catalog: pa-memory: %w", err)
	}
	// Reference-spur comb of a broken PLL: signal images at +-k*12 MHz.
	// Phase spurs are multiplicative, so the images track the signal level
	// (dBc-constant) and land where the wideband masks have teeth.
	spurs, err := rf.NewSpurComb(12e6, []float64{-15, -19, -24}, 33)
	if err != nil {
		return nil, fmt.Errorf("core: fault catalog: lo-spur-comb: %w", err)
	}
	return append(base,
		Fault{
			Name:        "dcde-stuck",
			Description: "DCDE control word stuck near code 0 (8 ps): channels sample almost coincidentally, reconstruction conditioning collapses",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.TI.DCDE.Stuck = true
				c.TI.DCDE.StuckAt = 8e-12
			},
		},
		Fault{
			Name:        "pa-memory",
			Description: "PA memory effects (two-tap memory polynomial, tau = 22 ns): asymmetric spectral regrowth at nominal drive",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.PA = memPA
			},
		},
		Fault{
			Name:        "lo-spur-comb",
			Description: "LO reference-spur comb (-15 dBc @ 12 MHz + harmonics): signal images violate the mask shoulders",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.Spurs = spurs
			},
		},
	), nil
}

// ExtendedCatalog is the panicking wrapper around BuildExtendedCatalog,
// mirroring Catalog.
func ExtendedCatalog() []Fault {
	fs, err := BuildExtendedCatalog()
	if err != nil {
		panic(fmt.Sprintf("core: fault catalog: %v", err))
	}
	return fs
}

// FaultByName looks up a catalogue entry (base or extended).
func FaultByName(name string) (Fault, error) {
	for _, f := range ExtendedCatalog() {
		if f.Name == name {
			return f, nil
		}
	}
	return Fault{}, fmt.Errorf("core: unknown fault %q", name)
}
