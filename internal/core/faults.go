package core

import (
	"fmt"

	"repro/internal/adc"
	"repro/internal/rf"
)

// Fault is one injectable manufacturing defect for escape analysis. Apply
// mutates a healthy configuration into the faulty one.
type Fault struct {
	// Name identifies the fault in reports.
	Name string
	// Description explains the physical defect and its expected signature.
	Description string
	// ShouldFail indicates whether a correct BIST must reject the unit.
	ShouldFail bool
	// Apply injects the fault.
	Apply func(c *Config)
}

// Catalog returns the built-in fault library. Faults marked ShouldFail are
// specification violations; the remainder are benign process variations the
// BIST must tolerate (no false alarms) — notably the DCDE bias, which is
// exactly the unknown the LMS technique exists to absorb.
func Catalog() []Fault {
	return []Fault{
		{
			Name:        "pa-compression",
			Description: "PA driven deep into compression: spectral regrowth violates the mask shoulders",
			ShouldFail:  true,
			Apply: func(c *Config) {
				// Saturation at ~the signal RMS: heavy clipping.
				pa, err := rf.NewRappPA(1, 0.55, 2)
				if err != nil {
					panic(fmt.Sprintf("core: fault catalog: %v", err))
				}
				c.Tx.PA = pa
				c.BasebandPower = 1.0
			},
		},
		{
			Name:        "iq-imbalance",
			Description: "severe quadrature error (2 dB / 12 deg): image rejection collapses",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.IQ = rf.FromImbalanceDB(2, 12, 0)
				c.IRRTest = true
			},
		},
		{
			Name:        "lo-leakage",
			Description: "carrier feedthrough at -18 dBc: LO leakage limit violated",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.IQ = rf.FromImbalanceDB(0, 0, complex(0.09, 0))
				c.IRRTest = true
			},
		},
		{
			Name:        "dead-gain",
			Description: "PA gain collapsed by 20 dB: output power floor violated",
			ShouldFail:  true,
			Apply: func(c *Config) {
				c.Tx.PA = &rf.LinearPA{Gain: 0.1}
				c.MinChannelPower = 0.05
			},
		},
		{
			Name:        "adc-inl",
			Description: "receiver ADC channel 1 with gross ladder mismatch (1 LSB rms DNL random walk): instrument pre-check fails",
			ShouldFail:  true,
			Apply: func(c *Config) {
				nl, err := adc.NewRandomNL(10, 1.0, 91)
				if err != nil {
					panic(fmt.Sprintf("core: fault catalog: %v", err))
				}
				c.TI.Ch1.NL = nl
				c.ADCCheck = true
			},
		},
		{
			Name:        "lo-phase-noise",
			Description: "degraded LO with heavy close-in phase noise: modulation quality (EVM) collapses",
			ShouldFail:  true,
			Apply: func(c *Config) {
				pn, err := rf.NewPhaseNoise(
					[]float64{1e4, 1e5, 1e6, 1e7},
					[]float64{-48, -55, -75, -100}, 256, 17)
				if err != nil {
					panic(fmt.Sprintf("core: fault catalog: %v", err))
				}
				c.Tx.PhaseNoise = pn
				c.EVMTest = true
			},
		},
		{
			Name:        "channel-mismatch",
			Description: "ADC channel gain/offset mismatch (0.7 dB, 30 mV): benign once background calibration runs",
			ShouldFail:  false,
			Apply: func(c *Config) {
				c.TI.Ch0.Gain = 1.04
				c.TI.Ch0.Offset = 0.03
				c.TI.Ch1.Gain = 0.96
				c.TI.Ch1.Offset = -0.03
				c.CalibrateMismatch = true
			},
		},
		{
			Name:        "dcde-bias",
			Description: "DCDE static bias of +35 ps: benign, absorbed by LMS delay identification",
			ShouldFail:  false,
			Apply: func(c *Config) {
				c.TI.DCDE.Bias = 35e-12
			},
		},
		{
			Name:        "mild-iq",
			Description: "mild quadrature error (0.2 dB / 1 deg): within spec, must pass",
			ShouldFail:  false,
			Apply: func(c *Config) {
				c.Tx.IQ = rf.FromImbalanceDB(0.2, 1, 0)
				c.IRRTest = true
			},
		},
	}
}

// FaultByName looks up a catalogue entry.
func FaultByName(name string) (Fault, error) {
	for _, f := range Catalog() {
		if f.Name == name {
			return f, nil
		}
	}
	return Fault{}, fmt.Errorf("core: unknown fault %q", name)
}
