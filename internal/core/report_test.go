package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mask"
	"repro/internal/skew"
)

func TestSkewErrPS(t *testing.T) {
	r := &Report{DActual: 180e-12, DHat: 182.5e-12}
	if got := r.SkewErrPS(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("SkewErrPS = %g, want 2.5", got)
	}
	r.DHat = 177.5e-12
	if got := r.SkewErrPS(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("SkewErrPS = %g, want 2.5 (sign-independent)", got)
	}
}

// TestSummaryAllSections: a fully populated report must render every
// optional block, and a failing one must say FAIL with its reasons.
func TestSummaryAllSections(t *testing.T) {
	r := &Report{
		Scenario:    "unit-test scenario",
		DNominal:    180e-12,
		DActual:     181e-12,
		DHat:        180.9e-12,
		LMS:         skew.LMSResult{Iterations: 7},
		ReconRelErr: 0.004,
		Mask: &mask.Report{
			MaskName:      "test-mask",
			Pass:          false,
			WorstMarginDB: -2.5,
			WorstOffsetHz: 12e6,
		},
		ACPRLowDB:     -41,
		ACPRHighDB:    -40,
		OBWHz:         16e6,
		IRRTested:     true,
		IRRMeasuredDB: 52,
		LOLeakageDBc:  -55,
		EVMTested:     true,
		EVM:           &EVMOutcome{RMSPercent: 1.5, PeakPercent: 4, Symbols: 120},
		ADCChecked:    true,
		ADC:           &ADCCheckResult{SNDRdB: [2]float64{58, 57}},
		Compute:       ComputeBudget{KernelEvals: 3_000_000, CostEvals: 40, PSDSamples: 2048},
		Pass:          false,
		Failures:      []string{"spectral mask test-mask violated by 2.50 dB"},
	}
	s := r.Summary()
	for _, want := range []string{
		"BIST FAIL",
		"unit-test scenario",
		"delay: nominal 180.00 ps",
		"reconstruction error",
		"mask test-mask",
		"ACPR",
		"99% OBW 16.00 MHz",
		"IRR 52.0 dB, LO leakage -55.0 dBc",
		"EVM 1.50% rms / 4.00% peak over 120 symbols",
		"ADC pre-check: SNDR 58.0 / 57.0 dB",
		"compute: 3.0 M kernel evals (40 cost evals, 2048 PSD samples)",
		"failure: spectral mask",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q in:\n%s", want, s)
		}
	}
}

// TestSummaryMinimal: with every optional section disabled the summary must
// omit them and report PASS.
func TestSummaryMinimal(t *testing.T) {
	r := &Report{Scenario: "bare", Pass: true}
	s := r.Summary()
	if !strings.Contains(s, "BIST PASS") {
		t.Errorf("expected PASS in:\n%s", s)
	}
	for _, banned := range []string{"mask", "IRR", "EVM", "ADC pre-check", "compute:", "failure:"} {
		if strings.Contains(s, banned) {
			t.Errorf("minimal summary must not contain %q:\n%s", banned, s)
		}
	}
}
