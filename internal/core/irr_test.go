package core

import (
	"math"
	"testing"
)

// TestWindowedPhasorMag: a unit complex tone at nu must measure 1; an
// off-bin probe must measure (near) 0; the empty input is defined as 0.
func TestWindowedPhasorMag(t *testing.T) {
	n := 256
	nu := 10.0 / float64(n)
	x := make([]complex128, n)
	for i := range x {
		s, c := math.Sincos(2 * math.Pi * nu * float64(i))
		x[i] = complex(c, s)
	}
	if got := windowedPhasorMag(x, nu); math.Abs(got-1) > 1e-3 {
		t.Errorf("on-tone magnitude %g, want 1", got)
	}
	if got := windowedPhasorMag(x, -nu); got > 1e-3 {
		t.Errorf("image probe on a clean tone measured %g, want ~0", got)
	}
	if got := windowedPhasorMag(nil, 0.1); got != 0 {
		t.Errorf("empty input measured %g, want 0", got)
	}
}

// TestRunIRRTestHealthy: a clean modulator must report a large image
// rejection (the 1e-8 floor caps it at 160 dB) and strongly negative LO
// leakage.
func TestRunIRRTestHealthy(t *testing.T) {
	cfg := PaperScenario()
	cfg.CaptureLen = 1100
	cfg.NTimes = 150
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	irr, leak, err := b.RunIRRTest(cfg.NominalD)
	if err != nil {
		t.Fatal(err)
	}
	if irr < 40 {
		t.Errorf("healthy modulator IRR %.1f dB, want >= 40", irr)
	}
	if leak > -40 {
		t.Errorf("healthy modulator LO leakage %.1f dBc, want <= -40", leak)
	}
}

// TestRunIRRTestImbalanced: a gross quadrature error must collapse the
// measured IRR well below the healthy figure.
func TestRunIRRTestImbalanced(t *testing.T) {
	cfg := PaperScenario()
	cfg.CaptureLen = 1100
	cfg.NTimes = 150
	fault, err := FaultByName("iq-imbalance")
	if err != nil {
		t.Fatal(err)
	}
	fault.Apply(&cfg)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	irr, _, err := b.RunIRRTest(cfg.NominalD)
	if err != nil {
		t.Fatal(err)
	}
	if irr > 30 {
		t.Errorf("2 dB / 12 deg imbalance still measured IRR %.1f dB, want < 30", irr)
	}
}
