// Package core orchestrates the complete RF BIST strategy of the paper:
// drive the transmitter with a multistandard test waveform, capture the PA
// output with the nonuniform BP-TIADC built from the idle receiver ADCs,
// identify the inter-channel delay with the LMS technique (Algorithm 1),
// reconstruct the bandpass waveform (Kohlenberg interpolation) and verify
// spectral-mask compliance plus modulator health (image rejection, LO
// leakage). Fault injection and structured reports make it a production
// test flow rather than a demo.
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dsp"
	"repro/internal/mask"
	"repro/internal/modem"
	"repro/internal/obs/trace"
	"repro/internal/pnbs"
	"repro/internal/rf"
	"repro/internal/sig"
	"repro/internal/skew"
	"repro/internal/tiadc"
)

// Config fully describes one BIST execution.
type Config struct {
	// Name optionally labels the configuration in reports and sweeps.
	Name string

	// --- Test waveform -------------------------------------------------
	// Constellation names the modulation ("QPSK", "16QAM", ...).
	Constellation string
	// SymbolRate in symbols/s (paper: 10 MHz).
	SymbolRate float64
	// RollOff is the SRRC roll-off (paper: 0.5).
	RollOff float64
	// PulseSpan is the one-sided SRRC span in symbols (0 = 8).
	PulseSpan int
	// NumSymbols is the cyclic symbol-stream length (0 = 128).
	NumSymbols int
	// Seed drives symbol generation.
	Seed int64
	// Symbols, when non-nil, replaces the seed-drawn random symbol stream
	// with an explicit one (e.g. a PRBS-driven campaign stimulus mapped
	// onto the constellation). The stream is cyclic like the generated
	// one, and the EVM sub-test stays available — the reference symbols
	// are known either way. NumSymbols and Seed are ignored for waveform
	// generation when set.
	Symbols []complex128
	// BasebandPower is the mean |envelope|^2 driven into the chain
	// (0 = 0.5).
	BasebandPower float64
	// Baseband, when non-nil, overrides the internally generated
	// single-carrier waveform with a custom envelope (e.g. OFDM). The EVM
	// sub-test is unavailable in this mode (no known symbol stream).
	Baseband sig.Envelope

	// --- Device under test ----------------------------------------------
	// Fc is the carrier frequency (paper: 1 GHz).
	Fc float64
	// Tx configures impairments; Tx.Fc is overridden with Fc.
	Tx rf.TxConfig

	// --- Acquisition ----------------------------------------------------
	// B is the per-channel capture rate and reconstruction bandwidth
	// (paper: 90 MHz).
	B float64
	// NominalD is the DCDE setting (0 = optimal 1/(4 Fc)).
	NominalD float64
	// TI configures the BP-TIADC (channels, DCDE, clock jitter).
	TI tiadc.Config
	// CaptureLen is the per-channel sample count at rate B (0 = 2200).
	CaptureLen int
	// CaptureStart is the nominal first sampling instant.
	CaptureStart float64
	// StreamChunk sets the acquisition pipeline chunk size in samples
	// (0 = 256): the analog front end overlaps with quantization and int16
	// packing on chunk boundaries (see tiadc.Config.StreamChunk). Captures —
	// and therefore every downstream estimate and measurement — are
	// bit-identical at every chunk size. TI.StreamChunk, when set, wins.
	StreamChunk int
	// CalibrateMismatch enables the background gain/offset calibration of
	// the two channels before reconstruction (paper Section III / [16]).
	CalibrateMismatch bool

	// --- Delay estimation -------------------------------------------------
	// HalfTaps is nw/2 for the reconstruction filter (0 = 30 -> 61 taps).
	HalfTaps int
	// KaiserBeta windows the reconstruction filter (0 = 8; negative = no
	// taper, i.e. a rectangular window — see pnbs.Options.KaiserBeta).
	KaiserBeta float64
	// NTimes is the cost-function sample count (0 = 300, the paper's N).
	NTimes int
	// TimesSeed seeds the random evaluation instants.
	TimesSeed int64
	// LMS configures Algorithm 1 (zero value = defaults).
	LMS skew.LMSConfig
	// D0 is the initial delay estimate (0 = NominalD).
	D0 float64

	// --- Measurements -----------------------------------------------------
	// Mask, when non-nil, enables the spectral-mask test.
	Mask *mask.Mask
	// PSDLen is the number of envelope samples (at rate B) used for the
	// Welch PSD (0 = 2048).
	PSDLen int
	// SegLen is the Welch segment length (0 = 512).
	SegLen int
	// IRRTest enables the single-sideband tone test measuring image
	// rejection and LO leakage through the reconstruction path.
	IRRTest bool
	// MinIRRDB is the image-rejection pass threshold (0 = 30 dB).
	MinIRRDB float64
	// MaxLOLeakDBc is the LO-leakage pass threshold (0 = -30 dBc).
	MaxLOLeakDBc float64
	// MinChannelPower, when positive, requires at least this in-channel
	// power (V^2) — catches dead-gain faults.
	MinChannelPower float64
	// EVMTest enables the modulation-quality sub-test through the
	// reconstruction path.
	EVMTest bool
	// MaxEVMPercent is the EVM pass threshold (0 = 8 %).
	MaxEVMPercent float64
	// EVMSymbols is the demodulated symbol count (0 = 48).
	EVMSymbols int
	// ADCCheck enables the converter instrument pre-check.
	ADCCheck bool
	// MinADCSNDRdB is the per-channel SNDR floor for the pre-check
	// (0 = 30 dB; the healthy ceiling is jitter-limited around 34 dB).
	MinADCSNDRdB float64
}

func (c Config) withDefaults() Config {
	if c.Constellation == "" {
		c.Constellation = "QPSK"
	}
	if c.PulseSpan == 0 {
		c.PulseSpan = 8
	}
	if c.NumSymbols == 0 {
		c.NumSymbols = 128
	}
	if c.BasebandPower == 0 {
		c.BasebandPower = 0.5
	}
	if c.NominalD == 0 {
		c.NominalD = 1 / (4 * c.Fc)
	}
	if c.CaptureLen == 0 {
		c.CaptureLen = 2200
	}
	if c.HalfTaps == 0 {
		c.HalfTaps = 30
	}
	if c.KaiserBeta == 0 {
		c.KaiserBeta = 8
	}
	if c.NTimes == 0 {
		c.NTimes = 300
	}
	if c.D0 == 0 {
		c.D0 = c.NominalD
	}
	if c.PSDLen == 0 {
		c.PSDLen = 2048
	}
	if c.SegLen == 0 {
		c.SegLen = 512
	}
	if c.MinIRRDB == 0 {
		c.MinIRRDB = 30
	}
	if c.MaxLOLeakDBc == 0 {
		c.MaxLOLeakDBc = -30
	}
	if c.MaxEVMPercent == 0 {
		c.MaxEVMPercent = 8
	}
	if c.EVMSymbols == 0 {
		c.EVMSymbols = 48
	}
	if c.MinADCSNDRdB == 0 {
		c.MinADCSNDRdB = 30
	}
	// The PSD grid must fit inside the reconstruction's valid range
	// (capture minus the filter half-support on each side).
	if maxPSD := c.CaptureLen - 2*c.HalfTaps - 8; c.PSDLen > maxPSD {
		c.PSDLen = maxPSD
		if c.SegLen > c.PSDLen/2 {
			c.SegLen = c.PSDLen / 2
		}
	}
	return c
}

// BIST is a configured self-test engine. It is not safe for concurrent
// use: the measure stage reuses a scratch grid buffer across measurements.
type BIST struct {
	cfg  Config
	band pnbs.Band
	tx   *rf.Transmitter
	ti   *tiadc.TIADC
	bb   *modem.ShapedEnvelope
	// gridBuf is the reusable oversampled-envelope scratch of
	// envelopeGrid (see there).
	gridBuf []complex128
}

// New validates the configuration and assembles the test article and
// instrumentation.
func New(cfg Config) (*BIST, error) {
	c := cfg.withDefaults()
	if c.Fc <= 0 {
		return nil, fmt.Errorf("core: carrier %g must be positive", c.Fc)
	}
	if c.SymbolRate <= 0 {
		return nil, fmt.Errorf("core: symbol rate %g must be positive", c.SymbolRate)
	}
	if c.B <= 0 || c.B >= 2*c.Fc {
		return nil, fmt.Errorf("core: capture rate %g implausible for fc %g", c.B, c.Fc)
	}
	occupied := c.SymbolRate * (1 + c.RollOff)
	if occupied > c.B {
		return nil, fmt.Errorf("core: occupied bandwidth %g exceeds capture bandwidth %g",
			occupied, c.B)
	}
	band := pnbs.Band{FLow: c.Fc - c.B/2, B: c.B}
	if err := skew.CheckUniqueness(band, skew.HalfRateBand(band)); err != nil {
		return nil, fmt.Errorf("core: dual-rate configuration infeasible (pick B with frac(2fc/B) in (0, 0.5]): %w", err)
	}
	var bb *modem.ShapedEnvelope
	var baseband sig.Envelope
	if c.Baseband != nil {
		if c.EVMTest {
			return nil, fmt.Errorf("core: the EVM sub-test needs the internally generated waveform")
		}
		baseband = c.Baseband
	} else {
		cst, err := modem.ByName(c.Constellation)
		if err != nil {
			return nil, err
		}
		pulse, err := modem.NewSRRC(1/c.SymbolRate, c.RollOff, c.PulseSpan)
		if err != nil {
			return nil, err
		}
		syms := c.Symbols
		if syms == nil {
			syms = cst.RandomSymbols(c.NumSymbols, c.Seed)
		}
		bb, err = modem.NewShapedEnvelope(syms, pulse, true)
		if err != nil {
			return nil, err
		}
		// The normalisation gain is a pure function of the waveform
		// generation parameters (the symbols are drawn deterministically
		// from the seed, or supplied explicitly and fingerprinted), and
		// SetAvgPower's power estimate samples the envelope thousands of
		// times. A fault-matrix experiment builds tens of BISTs with the
		// same test waveform, so the computed gain is cached by those
		// parameters — a hit reproduces the exact same Gain value the full
		// estimate would.
		key := gainKey{
			constellation: c.Constellation, numSymbols: len(syms),
			symbolRate: c.SymbolRate, rollOff: c.RollOff, pulseSpan: c.PulseSpan,
			power: c.BasebandPower,
		}
		if c.Symbols != nil {
			// An explicit stream is independent of Seed; key it by content
			// so every campaign cell sharing a stimulus shares the gain.
			key.symHash = hashSymbols(syms)
		} else {
			key.seed = c.Seed
		}
		if g, ok := gainCache.Load(key); ok {
			bb.Gain = g.(float64)
		} else {
			bb.SetAvgPower(c.BasebandPower, 4096)
			gainCache.Store(key, bb.Gain)
		}
		baseband = bb
	}
	txCfg := c.Tx
	txCfg.Fc = c.Fc
	tx, err := rf.NewTransmitter(txCfg, baseband)
	if err != nil {
		return nil, err
	}
	tiCfg := c.TI
	if tiCfg.StreamChunk == 0 {
		tiCfg.StreamChunk = c.StreamChunk
	}
	ti, err := tiadc.New(tiCfg)
	if err != nil {
		return nil, err
	}
	if c.Mask != nil {
		// Warm the shared FFT plan for the Welch segment length at assembly
		// time so the first mask capture measures the DUT, not the one-off
		// twiddle-table construction.
		dsp.PlanFFT(c.SegLen)
	}
	return &BIST{cfg: c, band: band, tx: tx, ti: ti, bb: bb}, nil
}

// Baseband exposes the shaped test envelope (for EVM-style ground truth).
func (b *BIST) Baseband() *modem.ShapedEnvelope { return b.bb }

// Band returns the capture band.
func (b *BIST) Band() pnbs.Band { return b.band }

// Transmitter exposes the device under test (for ground-truth comparisons).
func (b *BIST) Transmitter() *rf.Transmitter { return b.tx }

// opt returns the reconstruction options.
func (b *BIST) opt() pnbs.Options {
	return pnbs.Options{HalfTaps: b.cfg.HalfTaps, KaiserBeta: b.cfg.KaiserBeta}
}

// acquire captures the Tx output at rates B and B/2 with the shared DCDE
// setting and returns the two sample sets plus the backing captures. The
// sample sets alias the captures' channel buffers: the caller owns the
// captures and may Release them once every downstream consumer (cost
// evaluator, reconstructor) is dead, returning the buffers to the
// acquisition pool for the next unit.
func (b *BIST) acquire() (setB, setB1 skew.SampleSet, caps [2]*tiadc.Capture, actualD float64, err error) {
	c := b.cfg
	out := b.tx.Output()
	t := 1 / c.B
	capB, err := b.ti.Capture(out, t, c.NominalD, c.CaptureStart, c.CaptureLen)
	if err != nil {
		return setB, setB1, caps, 0, fmt.Errorf("core: rate-B capture: %w", err)
	}
	t1 := 2 * t
	n1 := c.CaptureLen/2 + 2*c.HalfTaps + 4
	t01 := c.CaptureStart - float64(2*c.HalfTaps)*t1/2
	capB1, err := b.ti.Capture(out, t1, c.NominalD, t01, n1)
	if err != nil {
		capB.Release()
		return setB, setB1, caps, 0, fmt.Errorf("core: rate-B/2 capture: %w", err)
	}
	if c.CalibrateMismatch {
		if capB, err = calibrated(capB); err != nil {
			capB1.Release()
			return setB, setB1, caps, 0, fmt.Errorf("core: rate-B calibration: %w", err)
		}
		if capB1, err = calibrated(capB1); err != nil {
			capB.Release()
			return setB, setB1, caps, 0, fmt.Errorf("core: rate-B/2 calibration: %w", err)
		}
	}
	setB = skew.SampleSet{Band: b.band, T0: capB.T0, Ch0: capB.Ch0, Ch1: capB.Ch1}
	setB1 = skew.SampleSet{Band: skew.HalfRateBand(b.band), T0: capB1.T0,
		Ch0: capB1.Ch0, Ch1: capB1.Ch1}
	return setB, setB1, [2]*tiadc.Capture{capB, capB1}, capB.ActualD, nil
}

// calibrated runs the background gain/offset mismatch estimation and
// correction on a capture. The corrected copy owns fresh channel buffers,
// so the raw capture is released back to the acquisition pool here.
func calibrated(c *tiadc.Capture) (*tiadc.Capture, error) {
	m, err := tiadc.EstimateMismatch(c)
	if err != nil {
		return nil, err
	}
	cc, err := m.Corrected(c)
	if err != nil {
		return nil, err
	}
	c.Release()
	return cc, nil
}

// estimate runs Algorithm 1 on the acquired sets under the estimate
// stage's trace context, so the LMS spans nest inside the pipeline tree.
func (b *BIST) estimate(tc trace.Ctx, setB, setB1 skew.SampleSet) (skew.LMSResult, *skew.CostEvaluator, error) {
	lo, hi, err := skew.EvalWindow(setB, setB1, b.opt())
	if err != nil {
		return skew.LMSResult{}, nil, err
	}
	// Keep a guard band away from the window edges.
	span := hi - lo
	times := skew.RandomTimes(lo+0.05*span, hi-0.05*span, b.cfg.NTimes, b.cfg.TimesSeed)
	ce, err := skew.NewCostEvaluator(setB, setB1, times, b.opt())
	if err != nil {
		return skew.LMSResult{}, nil, err
	}
	res, err := skew.EstimateCtx(tc, ce, b.cfg.D0, b.cfg.LMS)
	if err != nil {
		return skew.LMSResult{}, nil, err
	}
	return res, ce, nil
}

// envelopeGrid reconstructs the complex envelope on a uniform grid at rate
// fsEnv = B: the bandpass reconstruction is evaluated oversampled, mixed to
// baseband, lowpass filtered to kill the 2 fc image and decimated. The
// oversampling factor is chosen so the -2 fc mixing image, after aliasing
// at the oversampled rate, falls in the decimation filter's stopband — a
// fixed factor can drop the image inside the band for unlucky carrier/rate
// ratios (e.g. fc = 1.45 GHz with B = 90 MHz at 4x).
func (b *BIST) envelopeGrid(r *pnbs.Reconstructor, n int) (env []complex128, fsEnv, t0 float64, err error) {
	fsEnv = b.cfg.B
	over := 0
	for cand := 4; cand <= 12; cand++ {
		cfsHi := fsEnv * float64(cand)
		img := math.Mod(2*b.cfg.Fc, cfsHi)
		if img > cfsHi/2 {
			img = cfsHi - img
		}
		if img > 0.6*fsEnv {
			over = cand
			break
		}
	}
	if over == 0 {
		return nil, 0, 0, fmt.Errorf("core: no oversampling factor separates the 2fc image (fc %g, B %g)",
			b.cfg.Fc, fsEnv)
	}
	fsHi := fsEnv * float64(over)
	lo, hi := r.ValidRange()
	need := float64(n*over) / fsHi
	if hi-lo < need {
		return nil, 0, 0, fmt.Errorf("core: capture too short for a %d-point PSD grid", n)
	}
	t0 = lo
	// The oversampled evaluation runs through the reconstructor's fused
	// per-phase grid tables (the delay is fixed after estimation, so the
	// per-tap window x kernel factors repeat every `over` grid points);
	// the scratch buffer is reused across the measure stage's grids (mask
	// PSD, EVM, IRR all land here) so repeated measurements on one BIST
	// stay allocation-free on the hot path.
	if cap(b.gridBuf) < n*over {
		b.gridBuf = getGridBuf(n * over)
	}
	raw := b.gridBuf[:n*over]
	r.EnvelopeGridInto(b.cfg.Fc, t0, fsHi, raw)
	lp, err := decimLowpass(over)
	if err != nil {
		return nil, 0, 0, err
	}
	return lp.Decimate(raw, over), fsEnv, t0, nil
}

// decimLowpass returns the shared anti-image decimation filter for an
// oversampling factor. The design depends only on `over`, so one FIR per
// factor is designed process-wide and reused read-only (Decimate never
// mutates the taps); without this every envelope grid re-ran the
// windowed-sinc design.
func decimLowpass(over int) (*dsp.FIR, error) {
	if v, ok := lowpassCache.Load(over); ok {
		return v.(*dsp.FIR), nil
	}
	lp, err := dsp.DesignLowpass(91, 0.45/float64(over), dsp.KaiserWin, dsp.KaiserBeta(70))
	if err != nil {
		return nil, err
	}
	v, _ := lowpassCache.LoadOrStore(over, lp)
	return v.(*dsp.FIR), nil
}

var lowpassCache sync.Map // int (oversampling factor) -> *dsp.FIR

// gridBufPool recycles the oversampled-envelope scratch across BIST
// instances: a campaign builds one BIST per (stimulus, fault, unit) cell,
// and the grid scratch (PSDLen x oversampling complex samples) was the
// measure stage's dominant allocation. EnvelopeGridInto overwrites every
// element of the slice it is handed, so reuse is value-neutral.
var gridBufPool sync.Pool // *[]complex128

func getGridBuf(n int) []complex128 {
	if p, _ := gridBufPool.Get().(*[]complex128); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]complex128, n)
}

// releaseScratch hands the measure-stage grid scratch back to the shared
// pool. Safe whenever no envelope grid evaluation is in flight: the
// decimated envelopes handed to the measurements are fresh slices, never
// views into the scratch.
func (b *BIST) releaseScratch() {
	if b.gridBuf != nil {
		buf := b.gridBuf
		gridBufPool.Put(&buf)
		b.gridBuf = nil
	}
}

// gainKey identifies one deterministic test waveform for the normalisation
// gain cache in New: every field that influences the generated symbols, the
// SRRC pulse, or the target power participates, so two configs share a gain
// only when SetAvgPower would compute the identical value.
type gainKey struct {
	constellation string
	numSymbols    int
	seed          int64
	symHash       uint64
	symbolRate    float64
	rollOff       float64
	pulseSpan     int
	power         float64
}

var gainCache sync.Map // gainKey -> float64

// hashSymbols fingerprints an explicit symbol stream (FNV-1a over the IEEE
// bit patterns) for the normalisation-gain cache key.
func hashSymbols(syms []complex128) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, s := range syms {
		mix(math.Float64bits(real(s)))
		mix(math.Float64bits(imag(s)))
	}
	return h
}

// measurePSD produces the RF-referred Welch PSD from a reconstructed
// envelope grid.
func (b *BIST) measurePSD(env []complex128, fsEnv float64) (*dsp.Spectrum, error) {
	cfg := dsp.DefaultWelch(b.cfg.SegLen)
	return dsp.WelchComplex(env, fsEnv, b.cfg.Fc, cfg)
}
