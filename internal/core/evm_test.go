package core

import "testing"

func TestEVMThroughReconstructionHealthy(t *testing.T) {
	c := fastScenario()
	c.EVMTest = true
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EVMTested || rep.EVM == nil {
		t.Fatal("EVM test did not run")
	}
	// Healthy chain: EVM dominated by the jitter/quantization floor (~2 %).
	if rep.EVM.RMSPercent > 5 {
		t.Errorf("healthy EVM %.2f%%", rep.EVM.RMSPercent)
	}
	if rep.EVM.PeakPercent < rep.EVM.RMSPercent {
		t.Error("peak below rms")
	}
	if rep.EVM.Symbols < 8 {
		t.Errorf("only %d symbols demodulated", rep.EVM.Symbols)
	}
	if !rep.Pass {
		t.Fatalf("healthy unit failed EVM gate:\n%s", rep.Summary())
	}
}

func TestPhaseNoiseFaultDetectedByEVM(t *testing.T) {
	c := fastScenario()
	f, err := FaultByName("lo-phase-noise")
	if err != nil {
		t.Fatal(err)
	}
	f.Apply(&c)
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EVMTested {
		t.Fatal("EVM test did not run")
	}
	if rep.Pass {
		t.Fatalf("phase-noise fault escaped (EVM %.2f%%):\n%s", rep.EVM.RMSPercent, rep.Summary())
	}
	if rep.EVM.RMSPercent <= 8 {
		t.Errorf("EVM %.2f%% did not exceed the limit", rep.EVM.RMSPercent)
	}
}

func TestEVMCompareWithDirectPath(t *testing.T) {
	// The EVM through the reconstruction should be close to the EVM the
	// same receiver would measure on the true Tx output: the BIST path
	// adds only the jitter/quantization floor.
	c := fastScenario()
	c.EVMTest = true
	c.Tx.IQ = nil
	b, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With an ideal chain, direct-path EVM is ~0; BIST-path EVM equals the
	// floor. Just verify the floor is small and nonzero.
	if rep.EVM.RMSPercent <= 0 || rep.EVM.RMSPercent > 5 {
		t.Errorf("BIST-path EVM floor %.3f%%", rep.EVM.RMSPercent)
	}
}
