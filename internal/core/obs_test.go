package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/testkit"
)

// The acceptance contract of the observability layer: the live cost-eval
// counter must agree exactly with the analytic count Algorithm 1 reports,
// i.e. the metrics are the truth, not an estimate of it.
func TestMetricsCostEvalCounterMatchesLMS(t *testing.T) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	b, err := New(fastScenario())
	if err != nil {
		t.Fatal(err)
	}
	obs.Enable()
	obs.Reset()
	rep, err := b.Run()
	obs.Disable()
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	if got, want := snap.Counters["skew.cost.evals"], int64(rep.LMS.CostEvals); got != want {
		t.Errorf("skew.cost.evals counter %d, want LMSResult.CostEvals %d", got, want)
	}
	if got, want := snap.Counters["skew.cost.evals"], int64(rep.Compute.CostEvals); got != want {
		t.Errorf("skew.cost.evals counter %d, want ComputeBudget.CostEvals %d", got, want)
	}
	if snap.Counters["skew.cost.errors"] != 0 {
		t.Errorf("healthy run recorded %d cost errors", snap.Counters["skew.cost.errors"])
	}
	if snap.Counters["core.bist.runs"] != 1 {
		t.Errorf("run counter %d", snap.Counters["core.bist.runs"])
	}
	// The pool must have recycled: far fewer fresh builds than evaluations
	// means the zero-alloc Retune path is actually running. Logical
	// evaluations split exactly into kernel evaluations (each acquiring a
	// pooled worker) and LMS memo hits (repeated candidates, no kernel
	// work).
	news := snap.Counters["skew.cost.pool.news"]
	gets := snap.Counters["skew.cost.pool.gets"]
	hits := snap.Counters["skew.lms.memo.hits"]
	if news+gets+hits != int64(rep.LMS.CostEvals) {
		t.Errorf("pool gets %d + news %d + memo hits %d != cost evals %d",
			gets, news, hits, rep.LMS.CostEvals)
	}
	if hits == 0 {
		t.Error("descent revisited no candidates: memo instrumentation dead")
	}
	if news >= int64(rep.LMS.CostEvals)/2 {
		t.Errorf("pool not recycling: %d fresh builds for %d evals", news, rep.LMS.CostEvals)
	}
	// Stage latency histograms saw exactly one run each.
	for _, stage := range []string{"acquire", "estimate", "reconstruct", "measure", "total"} {
		name := "core.stage." + stage + ".seconds"
		hv, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("missing stage histogram %s", name)
			continue
		}
		if hv.Count != 1 || hv.Sum <= 0 {
			t.Errorf("%s: count %d sum %g", name, hv.Count, hv.Sum)
		}
	}
}

// curatedMetrics extracts the deterministic slice of a snapshot: counters
// whose totals are fixed by the configuration (work dispatched, cache
// traffic, objective evaluations) plus stage-histogram observation counts.
// Deliberately excluded: wall-clock sums, worker occupancy, inline-run
// counts, and sync.Pool recycling stats — all legitimately scheduling- or
// GC-dependent.
func curatedMetrics(s *obs.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for _, name := range []string{
		"core.bist.runs",
		"dsp.plan.builds",
		"dsp.plan.hits",
		"dsp.plan.misses",
		"par.for.calls",
		"par.for.tasks",
		"skew.cost.evals",
		"skew.cost.errors",
		"skew.lms.memo.hits",
	} {
		out[name] = s.Counters[name]
	}
	for _, stage := range []string{"acquire", "estimate", "reconstruct", "measure", "total"} {
		name := "core.stage." + stage + ".seconds"
		out[name+".count"] = s.Histograms[name].Count
	}
	return out
}

// A BIST run's deterministic metrics must be identical at any worker count
// and from run to run — the same bit-invariance contract the pipeline
// results already honour, extended to the instrumentation — and are pinned
// to a committed golden vector.
func TestMetricsSnapshotDeterministicAcrossWorkers(t *testing.T) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	run := func() {
		t.Helper()
		b, err := New(fastScenario())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the process-wide plan cache with collection off, so the measured
	// runs see a steady-state cache (all hits) regardless of which tests
	// ran first.
	run()

	var first []byte
	var last map[string]int64
	for _, w := range []int{1, 4} {
		prevW := par.SetWorkers(w)
		obs.Enable()
		obs.Reset()
		run()
		obs.Disable()
		par.SetWorkers(prevW)
		cur := curatedMetrics(obs.Default().Snapshot())
		enc, err := testkit.MarshalCanonical(cur)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = enc
		} else if !bytes.Equal(first, enc) {
			t.Errorf("metrics snapshot differs between worker counts:\nworkers=1:\n%s\nworkers=%d:\n%s", first, w, enc)
		}
		last = cur
	}
	if last["dsp.plan.misses"] != 0 {
		t.Errorf("steady-state run missed the plan cache %d times", last["dsp.plan.misses"])
	}
	if last["skew.cost.evals"] == 0 || last["par.for.calls"] == 0 {
		t.Error("curated snapshot recorded no work")
	}
	// Exact integers: zero tolerance.
	testkit.Golden(t, "testdata/golden/metrics.json", last, testkit.Options{})
}

// Enabling metrics must not change a single output bit of the pipeline.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	run := func() *Report {
		t.Helper()
		b, err := New(fastScenario())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	obs.Disable()
	off := run()
	obs.Enable()
	obs.Reset()
	on := run()
	obs.Disable()
	offJSON, err := testkit.MarshalCanonical(off)
	if err != nil {
		t.Fatal(err)
	}
	onJSON, err := testkit.MarshalCanonical(on)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offJSON, onJSON) {
		t.Error("report differs with metrics enabled")
	}
}

func init() {
	// Guard against a stray BIST_METRICS in the test environment skewing
	// the deterministic-snapshot golden.
	if obs.Enabled() {
		fmt.Println("core: obs tests assume metrics disabled at start; disabling")
		obs.Disable()
	}
}
