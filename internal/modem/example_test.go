package modem_test

import (
	"fmt"
	"math/cmplx"

	"repro/internal/modem"
)

// The paper's test signal: 10 MHz QPSK symbols shaped by a square-root
// raised cosine with roll-off 0.5, as a continuous envelope.
func ExampleNewShapedEnvelope() {
	pulse, err := modem.NewSRRC(100e-9, 0.5, 8)
	if err != nil {
		panic(err)
	}
	symbols := modem.QPSK.RandomSymbols(64, 1)
	env, err := modem.NewShapedEnvelope(symbols, pulse, true)
	if err != nil {
		panic(err)
	}
	// The envelope is defined at ANY instant — that is what lets the
	// nonuniform sampler hit it at picosecond offsets.
	v := env.At(1.23456789e-6)
	fmt.Println("finite:", !cmplx.IsNaN(v))
	// Output: finite: true
}

// Matched-filter demodulation recovers the symbols exactly on a clean chain.
func ExampleMatchedFilter_Demod() {
	pulse, _ := modem.NewSRRC(100e-9, 0.5, 8)
	symbols := modem.QPSK.RandomSymbols(48, 2)
	env, _ := modem.NewShapedEnvelope(symbols, pulse, true)
	mf, err := modem.NewMatchedFilter(pulse, 16)
	if err != nil {
		panic(err)
	}
	rx := mf.Demod(env, 8, 16)
	norm, _ := modem.NormalizeScaleAndPhase(rx, symbols[8:24])
	res, _ := modem.EVM(norm, symbols[8:24])
	fmt.Println("EVM under 3%:", res.RMSPercent < 3)
	// Output: EVM under 3%: true
}

// Gray-coded constellations with unit average energy.
func ExampleByName() {
	c, err := modem.ByName("16QAM")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d points, %d bits/symbol\n", c.Name, c.Size(), c.BitsPerSymbol())
	// Output: 16QAM: 16 points, 4 bits/symbol
}

// CP-OFDM round trip: modulate, demodulate with the taper-aware equaliser,
// measure EVM.
func ExampleDemodOFDM() {
	ofdm, err := modem.NewOFDM(modem.OFDMConfig{Subcarriers: 32, Spacing: 312.5e3, Seed: 4})
	if err != nil {
		panic(err)
	}
	rx, err := modem.DemodOFDM(ofdm, ofdm.DemodConfig(), 1, 4)
	if err != nil {
		panic(err)
	}
	want := make([][]complex128, 4)
	for m := range want {
		want[m], _ = ofdm.Payload(1 + m)
	}
	evm, err := modem.OFDMEVM(rx, want)
	if err != nil {
		panic(err)
	}
	fmt.Println("clean round-trip EVM under 1.5%:", evm < 1.5)
	// Output: clean round-trip EVM under 1.5%: true
}
