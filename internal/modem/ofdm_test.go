package modem

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dsp"
)

func defaultOFDM(t *testing.T) *OFDMEnvelope {
	t.Helper()
	o, err := NewOFDM(OFDMConfig{
		Subcarriers: 64,
		Spacing:     156.25e3, // ~10 MHz occupied
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOFDMValidation(t *testing.T) {
	if _, err := NewOFDM(OFDMConfig{Subcarriers: 3, Spacing: 1e5}); err == nil {
		t.Error("odd subcarriers must fail")
	}
	if _, err := NewOFDM(OFDMConfig{Subcarriers: 64}); err == nil {
		t.Error("zero spacing must fail")
	}
	if _, err := NewOFDM(OFDMConfig{Subcarriers: 64, Spacing: 1e5, CPFraction: 2}); err == nil {
		t.Error("CP > 1 must fail")
	}
	if _, err := NewOFDM(OFDMConfig{Subcarriers: 64, Spacing: 1e5, EdgeTaper: 0.9}); err == nil {
		t.Error("huge taper must fail")
	}
}

func TestOFDMDerivedQuantities(t *testing.T) {
	o := defaultOFDM(t)
	// 64 active + DC guard: ~10.3 MHz occupied.
	if bw := o.OccupiedBandwidth(); math.Abs(bw-66*156.25e3) > 1 {
		t.Errorf("occupied %g", bw)
	}
	want := (1 + 0.125) / 156.25e3
	if math.Abs(o.SymbolPeriod()-want) > 1e-12 {
		t.Errorf("symbol period %g, want %g", o.SymbolPeriod(), want)
	}
}

func TestOFDMCyclicAndCP(t *testing.T) {
	o := defaultOFDM(t)
	period := float64(o.cfg.Symbols) * o.tSym
	for _, tv := range []float64{1e-6, 37e-6, 55.5e-6} {
		if d := cmplx.Abs(o.At(tv) - o.At(tv+period)); d > 1e-9 {
			t.Errorf("t=%g: stream not cyclic (diff %g)", tv, d)
		}
	}
	// Cyclic prefix: the signal at t inside the CP equals the signal one
	// useful-period later (within the flat part of the window).
	tin := o.tCP * 0.5
	a := o.At(tin + 3*o.tSym)
	b := o.At(tin + 3*o.tSym + o.tUseful)
	// Window differs slightly at the very edges; mid-CP both are tapered
	// similarly only if inside the flat region, so compare direction only.
	_ = a
	_ = b
	// Stronger CP check with taper disabled:
	o2, err := NewOFDM(OFDMConfig{Subcarriers: 16, Spacing: 1e6, Seed: 3, EdgeTaper: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	tin2 := o2.tCP * 0.5
	base := 2 * o2.tSym
	if d := cmplx.Abs(o2.At(base+tin2) - o2.At(base+tin2+o2.tUseful)); d > 1e-9 {
		t.Errorf("cyclic prefix violated: %g", d)
	}
}

func TestOFDMSpectrumConfined(t *testing.T) {
	o := defaultOFDM(t)
	fs := 40e6
	n := 1 << 14
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = o.At(float64(i) / fs)
	}
	spec, err := dsp.WelchComplex(xs, fs, 0, dsp.DefaultWelch(2048))
	if err != nil {
		t.Fatal(err)
	}
	inBand := spec.PowerInBand(-5.2e6, 5.2e6)
	outBand := spec.PowerInBand(8e6, 18e6) + spec.PowerInBand(-18e6, -8e6)
	if ratio := outBand / inBand; ratio > 0.01 {
		t.Errorf("out-of-band leakage %.3g of in-band", ratio)
	}
	// Spectral flatness across the occupied band (OFDM signature): compare
	// power in two quarters of the band.
	q1 := spec.PowerInBand(0.5e6, 2.5e6)
	q2 := spec.PowerInBand(2.5e6, 4.5e6)
	if r := q1 / q2; r < 0.5 || r > 2 {
		t.Errorf("occupied band not flat: %g", r)
	}
}

func TestOFDMPowerNormalisation(t *testing.T) {
	o := defaultOFDM(t)
	// Unit-energy constellation scaled by 1/sqrt(N) per subcarrier gives
	// E|env|^2 ~ 1 inside the flat window region.
	p := o.AvgPower(4096)
	if p < 0.7 || p > 1.2 {
		t.Errorf("avg power %g, want ~1", p)
	}
}

func TestOFDMDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) complex128 {
		o, _ := NewOFDM(OFDMConfig{Subcarriers: 32, Spacing: 1e6, Seed: seed})
		return o.At(3.3e-6)
	}
	if mk(5) != mk(5) {
		t.Error("same seed must reproduce")
	}
	if mk(5) == mk(6) {
		t.Error("different seeds should differ")
	}
}
