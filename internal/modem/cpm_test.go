package modem

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dsp"
)

func gmsk(t *testing.T) *CPMEnvelope {
	t.Helper()
	c, err := NewCPM(CPMConfig{SymbolRate: 1e6, BT: 0.3, Symbols: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCPMValidation(t *testing.T) {
	if _, err := NewCPM(CPMConfig{}); err == nil {
		t.Error("zero rate must fail")
	}
	if _, err := NewCPM(CPMConfig{SymbolRate: 1e6, ModIndex: -1}); err == nil {
		t.Error("negative h must fail")
	}
	if _, err := NewCPM(CPMConfig{SymbolRate: 1e6, BT: 0.01}); err == nil {
		t.Error("tiny BT must fail")
	}
	if _, err := NewCPM(CPMConfig{SymbolRate: 1e6, BT: 0.3, Symbols: 8}); err == nil {
		t.Error("stream shorter than the seam window must fail")
	}
}

func TestCPMConstantEnvelope(t *testing.T) {
	c := gmsk(t)
	for i := 0; i < 500; i++ {
		tv := 137e-9 * float64(i)
		if d := math.Abs(cmplx.Abs(c.At(tv)) - 1); d > 1e-12 {
			t.Fatalf("t=%g: envelope deviates by %g", tv, d)
		}
	}
}

func TestCPMPhaseContinuity(t *testing.T) {
	c := gmsk(t)
	// The phase trajectory must be continuous everywhere, including symbol
	// boundaries and the cyclic seam.
	prev := c.Phase(0)
	dt := 5e-9                                              // Ts/200
	maxStep := 2 * math.Pi * c.cfg.ModIndex * dt / c.ts * 3 // generous bound
	for i := 1; i < 60000; i++ {
		tv := float64(i) * dt
		ph := c.Phase(tv)
		if d := math.Abs(ph - prev); d > maxStep {
			t.Fatalf("phase jump %g rad at t=%g", d, tv)
		}
		prev = ph
	}
}

func TestCPMCyclicUpToPhaseRamp(t *testing.T) {
	c := gmsk(t)
	// env(t + P) = env(t) * exp(i Phi_N): a fixed rotation per period.
	rot := cmplx.Exp(complex(0, c.phaseAcc[len(c.data)]))
	for _, tv := range []float64{3e-6, 47.5e-6, 99.9e-6} {
		a := c.At(tv + c.period)
		b := c.At(tv) * rot
		if cmplx.Abs(a-b) > 1e-9 {
			t.Errorf("t=%g: period relation broken (%g)", tv, cmplx.Abs(a-b))
		}
	}
}

func TestMSKPhaseAdvancesQuarterTurn(t *testing.T) {
	// With h = 0.5 and a wideband pulse (BT large), each symbol advances
	// the phase by ~ +-pi/2 measured at symbol centres.
	c, err := NewCPM(CPMConfig{SymbolRate: 1e6, ModIndex: 0.5, BT: 2, Symbols: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The frequency pulse is centred at k Ts, so symbol k's transition
	// occupies [k Ts - Ts/2, k Ts + Ts/2].
	for k := 5; k < 40; k++ {
		d := c.Phase((float64(k)+0.5)*c.ts) - c.Phase((float64(k)-0.5)*c.ts)
		want := math.Pi / 2 * float64(c.data[k])
		if math.Abs(d-want) > 0.25 {
			t.Errorf("symbol %d: phase step %g, want ~%g", k, d, want)
		}
	}
}

func TestGMSKSpectrumCompact(t *testing.T) {
	c := gmsk(t)
	fs := 8e6
	n := 1 << 14
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = c.At(float64(i) / fs)
	}
	spec, err := dsp.WelchComplex(xs, fs, 0, dsp.DefaultWelch(2048))
	if err != nil {
		t.Fatal(err)
	}
	in := spec.PowerInBand(-750e3, 750e3)
	out := spec.PowerInBand(1.5e6, 3.5e6) + spec.PowerInBand(-3.5e6, -1.5e6)
	if out/in > 0.005 {
		t.Errorf("GMSK out-of-band power ratio %.3g", out/in)
	}
}

func TestCPMDeterministic(t *testing.T) {
	a, _ := NewCPM(CPMConfig{SymbolRate: 1e6, BT: 0.3, Symbols: 64, Seed: 4})
	b, _ := NewCPM(CPMConfig{SymbolRate: 1e6, BT: 0.3, Symbols: 64, Seed: 4})
	d, _ := NewCPM(CPMConfig{SymbolRate: 1e6, BT: 0.3, Symbols: 64, Seed: 5})
	if a.At(7.7e-6) != b.At(7.7e-6) {
		t.Error("same seed must reproduce")
	}
	if a.At(7.7e-6) == d.At(7.7e-6) {
		t.Error("different seeds should differ")
	}
	if a.SymbolPeriod() != 1e-6 {
		t.Error("symbol period")
	}
}
