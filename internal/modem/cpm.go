package modem

import (
	"fmt"
	"math"
	"math/rand"
)

// CPMConfig describes a continuous-phase modulation waveform (MSK/GMSK
// family): binary symbols drive a frequency pulse g(t) whose integral q(t)
// accumulates phase. Constant envelope makes CPM the waveform of choice for
// saturated-PA tactical radios — the opposite corner of the waveform space
// from OFDM, and a natural multistandard BIST probe.
type CPMConfig struct {
	// SymbolRate in symbols/s.
	SymbolRate float64
	// ModIndex is the modulation index h (0 = 0.5, MSK).
	ModIndex float64
	// BT is the Gaussian filter bandwidth-time product; 0 = 0.3 (GSM-style
	// GMSK). Use a large value (e.g. 10) for near-rectangular MSK pulses.
	BT float64
	// Symbols is the cyclic stream length (0 = 256).
	Symbols int
	// Seed draws the random +-1 data.
	Seed int64
}

// CPMEnvelope is the continuous complex envelope exp(i phi(t)).
type CPMEnvelope struct {
	cfg  CPMConfig
	data []int // +-1 symbols
	ts   float64
	// q holds the phase-pulse integral sampled on a dense grid over
	// [-span Ts, +span Ts]; it saturates at 0 before and 1/2 after
	// (LREC/LRC convention: q(inf) = 1/2).
	q      []float64
	qT0    float64
	qDt    float64
	span   int
	period float64
	// phaseStep[k] is the accumulated full-symbol phase before symbol k.
	phaseAcc []float64
}

// NewCPM validates the configuration, integrates the Gaussian frequency
// pulse and precomputes the per-symbol phase accumulation.
func NewCPM(cfg CPMConfig) (*CPMEnvelope, error) {
	if cfg.SymbolRate <= 0 {
		return nil, fmt.Errorf("modem: CPM symbol rate %g must be positive", cfg.SymbolRate)
	}
	if cfg.ModIndex == 0 {
		cfg.ModIndex = 0.5
	}
	if cfg.ModIndex < 0 {
		return nil, fmt.Errorf("modem: CPM modulation index %g must be positive", cfg.ModIndex)
	}
	if cfg.BT == 0 {
		cfg.BT = 0.3
	}
	if cfg.BT < 0.05 {
		return nil, fmt.Errorf("modem: CPM BT %g too small", cfg.BT)
	}
	if cfg.Symbols == 0 {
		cfg.Symbols = 256
	}
	ts := 1 / cfg.SymbolRate
	// Gaussian frequency pulse truncated to +-span symbols; the span grows
	// as BT shrinks.
	span := int(math.Ceil(2.5/cfg.BT)) + 1
	if span < 2 {
		span = 2
	}
	if cfg.Symbols <= 2*span+2 {
		return nil, fmt.Errorf("modem: CPM needs > %d symbols for BT = %g (cyclic seam)",
			2*span+2, cfg.BT)
	}
	const overs = 64 // integration grid per symbol period
	nGrid := 2*span*overs + 1
	g := make([]float64, nGrid)
	sigma := math.Sqrt(math.Ln2) / (2 * math.Pi * cfg.BT / ts)
	sum := 0.0
	dt := ts / overs
	for i := range g {
		t := -float64(span)*ts + float64(i)*dt
		// Gaussian-smoothed rectangular frequency pulse of width Ts.
		g[i] = gaussSmoothedRect(t, ts, sigma)
		sum += g[i] * dt
	}
	// Normalise so q(inf) = 1/2.
	q := make([]float64, nGrid)
	acc := 0.0
	for i := range g {
		acc += g[i] * dt
		q[i] = acc / sum / 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := make([]int, cfg.Symbols)
	for i := range data {
		data[i] = 2*rng.Intn(2) - 1
	}
	c := &CPMEnvelope{
		cfg:    cfg,
		data:   data,
		ts:     ts,
		q:      q,
		qT0:    -float64(span) * ts,
		qDt:    dt,
		span:   span,
		period: float64(cfg.Symbols) * ts,
	}
	// Accumulated phase of fully elapsed symbols: each contributes
	// 2 pi h a_k q(inf) = pi h a_k.
	c.phaseAcc = make([]float64, cfg.Symbols+1)
	for k := 0; k < cfg.Symbols; k++ {
		c.phaseAcc[k+1] = c.phaseAcc[k] + math.Pi*cfg.ModIndex*float64(data[k])
	}
	return c, nil
}

// gaussSmoothedRect evaluates the convolution of a unit rectangular pulse
// of width ts with a Gaussian of deviation sigma:
// 0.5 [erf((t + ts/2)/(sqrt2 sigma)) - erf((t - ts/2)/(sqrt2 sigma))] / ts.
func gaussSmoothedRect(t, ts, sigma float64) float64 {
	a := (t + ts/2) / (math.Sqrt2 * sigma)
	b := (t - ts/2) / (math.Sqrt2 * sigma)
	return 0.5 * (math.Erf(a) - math.Erf(b)) / ts
}

// qAt interpolates the precomputed phase pulse integral; saturated outside
// the grid.
func (c *CPMEnvelope) qAt(t float64) float64 {
	x := (t - c.qT0) / c.qDt
	if x <= 0 {
		return 0
	}
	if x >= float64(len(c.q)-1) {
		return 0.5
	}
	i := int(x)
	f := x - float64(i)
	return c.q[i]*(1-f) + c.q[i+1]*f
}

// Phase returns phi(t) in radians. The stream is cyclic; each whole period
// contributes the total phase phaseAcc[N], and pulses straddling the period
// seam are handled explicitly so the trajectory stays continuous.
func (c *CPMEnvelope) Phase(t float64) float64 {
	n := len(c.data)
	h := c.cfg.ModIndex
	wraps := math.Floor(t / c.period)
	tr := t - wraps*c.period
	kc := int(tr / c.ts)
	if kc >= n {
		kc = n - 1
	}
	phi := wraps * c.phaseAcc[n]
	// Symbols of this period fully in the past (pulse saturated) and not
	// re-visited by the transition window below.
	bulkEnd := kc - c.span
	if bulkEnd > 0 {
		phi += c.phaseAcc[bulkEnd]
	}
	// Transition window: every symbol whose pulse overlaps tr. Indices may
	// spill into the previous period (j < 0: the wraps term already counted
	// them at full saturation, so only the deviation from 1/2 is added) or
	// the next one (j >= n: not counted anywhere yet).
	for j := kc - c.span; j <= kc+c.span+1; j++ {
		qv := c.qAt(tr - float64(j)*c.ts)
		switch {
		case j < 0:
			phi += 2 * math.Pi * h * float64(c.data[j+n]) * (qv - 0.5)
		case j >= n:
			phi += 2 * math.Pi * h * float64(c.data[j-n]) * qv
		default:
			phi += 2 * math.Pi * h * float64(c.data[j]) * qv
		}
	}
	return phi
}

// At implements sig.Envelope: a strictly constant-envelope waveform.
func (c *CPMEnvelope) At(t float64) complex128 {
	s, co := math.Sincos(c.Phase(t))
	return complex(co, s)
}

// SymbolPeriod returns Ts.
func (c *CPMEnvelope) SymbolPeriod() float64 { return c.ts }
