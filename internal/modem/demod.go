package modem

import (
	"fmt"

	"repro/internal/sig"
)

// MatchedFilter recovers symbol-rate decision variables from a continuous
// complex envelope by correlating with the pulse shape:
//
//	y[k] = (1/E) integral env(t) p(t - k Ts) dt
//
// evaluated numerically with oversample points per symbol. For an SRRC
// envelope this implements the SRRC matched filter whose cascade is the
// zero-ISI raised cosine, so y[k] recovers the transmitted symbols.
type MatchedFilter struct {
	Pulse      Pulse
	Oversample int
	energy     float64
}

// NewMatchedFilter builds a matched filter for the pulse; oversample < 4
// defaults to 16.
func NewMatchedFilter(p Pulse, oversample int) (*MatchedFilter, error) {
	if p == nil {
		return nil, fmt.Errorf("modem: matched filter needs a pulse")
	}
	if oversample < 4 {
		oversample = 16
	}
	return &MatchedFilter{Pulse: p, Oversample: oversample, energy: PulseEnergy(p, oversample)}, nil
}

// Demod extracts nSym symbols starting at symbol index k0 from the envelope.
func (m *MatchedFilter) Demod(env sig.Envelope, k0, nSym int) []complex128 {
	ts := m.Pulse.SymbolPeriod()
	dt := ts / float64(m.Oversample)
	span := float64(m.Pulse.SpanSymbols()) * ts
	out := make([]complex128, nSym)
	for k := 0; k < nSym; k++ {
		centre := float64(k0+k) * ts
		var acc complex128
		for t := centre - span; t <= centre+span; t += dt {
			p := m.Pulse.At(t - centre)
			if p == 0 {
				continue
			}
			acc += env.At(t) * complex(p*dt, 0)
		}
		out[k] = acc / complex(m.energy, 0)
	}
	return out
}
