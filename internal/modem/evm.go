package modem

import (
	"fmt"
	"math"
	"math/cmplx"
)

// EVMResult summarises an error-vector-magnitude measurement.
type EVMResult struct {
	// RMSPercent is the RMS EVM in percent of the reference RMS.
	RMSPercent float64
	// PeakPercent is the worst-symbol EVM in percent.
	PeakPercent float64
	// DB is the RMS EVM expressed in dB (20 log10(rms/100)).
	DB float64
}

// EVM computes the error vector magnitude of measured symbols against the
// ideal reference sequence.
func EVM(measured, reference []complex128) (EVMResult, error) {
	if len(measured) != len(reference) {
		return EVMResult{}, fmt.Errorf("modem: EVM: %d measured vs %d reference symbols",
			len(measured), len(reference))
	}
	if len(measured) == 0 {
		return EVMResult{}, fmt.Errorf("modem: EVM: empty input")
	}
	var errPow, refPow, peak float64
	for i := range measured {
		e := measured[i] - reference[i]
		ep := real(e)*real(e) + imag(e)*imag(e)
		errPow += ep
		refPow += real(reference[i])*real(reference[i]) + imag(reference[i])*imag(reference[i])
		if ep > peak {
			peak = ep
		}
	}
	if refPow == 0 {
		return EVMResult{}, fmt.Errorf("modem: EVM: zero reference power")
	}
	n := float64(len(measured))
	rms := math.Sqrt(errPow/n) / math.Sqrt(refPow/n)
	pk := math.Sqrt(peak) / math.Sqrt(refPow/n)
	db := -400.0
	if rms > 0 {
		db = 20 * math.Log10(rms)
	}
	return EVMResult{RMSPercent: 100 * rms, PeakPercent: 100 * pk, DB: db}, nil
}

// NormalizeScaleAndPhase removes a common complex gain from measured symbols
// by least squares against the reference (the standard EVM pre-correction):
// g = sum(meas * conj(ref)) / sum(|ref|^2), returns measured/g.
func NormalizeScaleAndPhase(measured, reference []complex128) ([]complex128, error) {
	if len(measured) != len(reference) || len(measured) == 0 {
		return nil, fmt.Errorf("modem: normalize: bad lengths %d, %d", len(measured), len(reference))
	}
	var num complex128
	var den float64
	for i := range measured {
		num += measured[i] * cmplx.Conj(reference[i])
		den += real(reference[i])*real(reference[i]) + imag(reference[i])*imag(reference[i])
	}
	if den == 0 || num == 0 {
		return nil, fmt.Errorf("modem: normalize: degenerate inputs")
	}
	g := num / complex(den, 0)
	out := make([]complex128, len(measured))
	for i := range out {
		out[i] = measured[i] / g
	}
	return out, nil
}

// SymbolErrorRate slices each measured symbol on the constellation and
// counts decisions that differ from the reference decisions.
func SymbolErrorRate(c *Constellation, measured, reference []complex128) (float64, error) {
	if len(measured) != len(reference) || len(measured) == 0 {
		return 0, fmt.Errorf("modem: SER: bad lengths %d, %d", len(measured), len(reference))
	}
	errs := 0
	for i := range measured {
		if c.Slice(measured[i]) != c.Slice(reference[i]) {
			errs++
		}
	}
	return float64(errs) / float64(len(measured)), nil
}
