package modem

import (
	"testing"
)

func TestDemodOFDMRoundTrip(t *testing.T) {
	o := defaultOFDM(t)
	cfg := o.DemodConfig()
	got, err := DemodOFDM(o, cfg, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]complex128, 6)
	for m := range want {
		p, err := o.Payload(2 + m)
		if err != nil {
			t.Fatal(err)
		}
		want[m] = p
	}
	evm, err := OFDMEVM(got, want)
	if err != nil {
		t.Fatal(err)
	}
	// Clean analytic envelope: only the edge taper and numeric integration
	// limit accuracy.
	if evm > 3 {
		t.Errorf("round-trip OFDM EVM %.2f%%", evm)
	}
}

func TestDemodOFDMDetectsImpairment(t *testing.T) {
	o := defaultOFDM(t)
	cfg := o.DemodConfig()
	clean, err := DemodOFDM(o, cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A nonlinear (cubic) distortion of the envelope must raise EVM.
	dirty := envFunc(func(tv float64) complex128 {
		v := o.At(tv)
		r2 := real(v)*real(v) + imag(v)*imag(v)
		return v * complex(1-0.15*r2, 0)
	})
	got, err := DemodOFDM(dirty, cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]complex128, 4)
	for m := range want {
		want[m], _ = o.Payload(1 + m)
	}
	evmClean, err := OFDMEVM(clean, want)
	if err != nil {
		t.Fatal(err)
	}
	evmDirty, err := OFDMEVM(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if evmDirty < 2*evmClean {
		t.Errorf("distortion invisible: %.2f%% vs %.2f%%", evmClean, evmDirty)
	}
}

// envFunc adapts a closure (avoids importing sig in this package's tests).
type envFunc func(t float64) complex128

func (f envFunc) At(t float64) complex128 { return f(t) }

func TestDemodOFDMValidation(t *testing.T) {
	o := defaultOFDM(t)
	if _, err := DemodOFDM(o, OFDMDemodConfig{Subcarriers: 3, Spacing: 1e5}, 0, 1); err == nil {
		t.Error("odd subcarriers must fail")
	}
	if _, err := DemodOFDM(o, OFDMDemodConfig{Subcarriers: 4}, 0, 1); err == nil {
		t.Error("zero spacing must fail")
	}
	if _, err := DemodOFDM(o, OFDMDemodConfig{Subcarriers: 4, Spacing: 1e5, CPFraction: 2}, 0, 1); err == nil {
		t.Error("bad CP must fail")
	}
	if _, err := DemodOFDM(o, o.DemodConfig(), 0, 0); err == nil {
		t.Error("zero symbols must fail")
	}
	if _, err := o.Payload(-1); err == nil {
		t.Error("bad payload index must fail")
	}
	if _, err := OFDMEVM(nil, nil); err == nil {
		t.Error("empty EVM must fail")
	}
	a := [][]complex128{{1, 2}}
	b := [][]complex128{{1}}
	if _, err := OFDMEVM(a, b); err == nil {
		t.Error("ragged EVM must fail")
	}
}
