package modem

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestShapedEnvelopeZeroISIWithRC(t *testing.T) {
	// With a raised-cosine pulse, env(k Ts) must equal symbol a[k] exactly
	// (zero inter-symbol interference).
	ts := 100e-9
	p, _ := NewRC(ts, 0.5, 8)
	syms := QPSK.RandomSymbols(64, 17)
	env, err := NewShapedEnvelope(syms, p, true)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		got := env.At(float64(k) * ts)
		if cmplx.Abs(got-syms[k]) > 1e-8 {
			t.Errorf("env(%d Ts) = %v, want %v", k, got, syms[k])
		}
	}
}

func TestShapedEnvelopeCyclicPeriodicity(t *testing.T) {
	ts := 100e-9
	p, _ := NewSRRC(ts, 0.5, 8)
	syms := QPSK.RandomSymbols(40, 3)
	env, _ := NewShapedEnvelope(syms, p, true)
	period := float64(len(syms)) * ts
	for _, tv := range []float64{0, 123e-9, 1.7e-6, 3.99e-6} {
		a := env.At(tv)
		b := env.At(tv + period)
		if cmplx.Abs(a-b) > 1e-9 {
			t.Errorf("t=%g: not periodic: %v vs %v", tv, a, b)
		}
	}
}

func TestShapedEnvelopeNonCyclicVanishesOutside(t *testing.T) {
	ts := 100e-9
	p, _ := NewSRRC(ts, 0.5, 8)
	syms := QPSK.RandomSymbols(10, 4)
	env, _ := NewShapedEnvelope(syms, p, false)
	if v := env.At(-9 * ts); v != 0 {
		t.Errorf("before burst: %v", v)
	}
	if v := env.At(float64(len(syms)+9) * ts); v != 0 {
		t.Errorf("after burst: %v", v)
	}
	if env.Duration() != (10+16)*ts {
		t.Errorf("duration %g", env.Duration())
	}
}

func TestShapedEnvelopeValidation(t *testing.T) {
	p, _ := NewSRRC(1, 0.5, 8)
	if _, err := NewShapedEnvelope(nil, p, false); err == nil {
		t.Error("empty symbols must fail")
	}
	if _, err := NewShapedEnvelope([]complex128{1}, nil, false); err == nil {
		t.Error("nil pulse must fail")
	}
	if _, err := NewShapedEnvelope(QPSK.RandomSymbols(10, 1), p, true); err == nil {
		t.Error("cyclic stream shorter than 2x span must fail")
	}
}

func TestSetAvgPower(t *testing.T) {
	ts := 100e-9
	p, _ := NewSRRC(ts, 0.5, 8)
	syms := QPSK.RandomSymbols(64, 7)
	env, _ := NewShapedEnvelope(syms, p, true)
	env.SetAvgPower(2.0, 2048)
	if got := env.AvgPower(2048); math.Abs(got-2.0) > 0.02 {
		t.Errorf("avg power %g, want 2", got)
	}
	// Degenerate: zero symbols vector cannot be scaled.
	z, _ := NewShapedEnvelope(make([]complex128, 64), p, true)
	z.SetAvgPower(1, 128)
	if z.Gain != 1 {
		t.Error("zero-power envelope should leave gain at 1")
	}
}

func TestMatchedFilterRecoversQPSK(t *testing.T) {
	ts := 100e-9
	p, _ := NewSRRC(ts, 0.5, 8)
	syms := QPSK.RandomSymbols(48, 21)
	env, _ := NewShapedEnvelope(syms, p, true)
	mf, err := NewMatchedFilter(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := mf.Demod(env, 8, 24) // stay away from nothing: cyclic, any range ok
	ref := syms[8:32]
	norm, err := NormalizeScaleAndPhase(got, ref)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EVM(norm, ref)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSPercent > 3 {
		t.Errorf("matched-filter EVM %.2f%%, want < 3%%", res.RMSPercent)
	}
	ser, err := SymbolErrorRate(QPSK, norm, ref)
	if err != nil || ser != 0 {
		t.Errorf("SER %g, err %v", ser, err)
	}
}

func TestMatchedFilterValidation(t *testing.T) {
	if _, err := NewMatchedFilter(nil, 8); err == nil {
		t.Error("nil pulse must fail")
	}
	p, _ := NewSRRC(1, 0.5, 4)
	mf, err := NewMatchedFilter(p, 0)
	if err != nil || mf.Oversample != 16 {
		t.Error("oversample default")
	}
}

func TestEVMBasics(t *testing.T) {
	ref := []complex128{1, 1i, -1, -1i}
	meas := []complex128{1.1, 1i, -1, -1i}
	res, err := EVM(meas, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RMSPercent-5) > 1e-9 {
		t.Errorf("RMS EVM %g, want 5", res.RMSPercent)
	}
	if math.Abs(res.PeakPercent-10) > 1e-9 {
		t.Errorf("peak EVM %g, want 10", res.PeakPercent)
	}
	if math.Abs(res.DB-20*math.Log10(0.05)) > 1e-9 {
		t.Errorf("EVM dB %g", res.DB)
	}
	if _, err := EVM(meas[:2], ref); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := EVM(nil, nil); err == nil {
		t.Error("empty must fail")
	}
	if _, err := EVM([]complex128{1}, []complex128{0}); err == nil {
		t.Error("zero reference must fail")
	}
	perfect, _ := EVM(ref, ref)
	if perfect.DB != -400 {
		t.Error("perfect EVM should clamp dB")
	}
}

func TestNormalizeScaleAndPhase(t *testing.T) {
	ref := QPSK.RandomSymbols(32, 9)
	g := complex(0.5, 0.5)
	meas := make([]complex128, len(ref))
	for i := range meas {
		meas[i] = g * ref[i]
	}
	norm, err := NormalizeScaleAndPhase(meas, ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := range norm {
		if cmplx.Abs(norm[i]-ref[i]) > 1e-12 {
			t.Fatalf("normalisation failed at %d", i)
		}
	}
	if _, err := NormalizeScaleAndPhase(meas[:1], ref); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NormalizeScaleAndPhase([]complex128{0}, []complex128{0}); err == nil {
		t.Error("degenerate must fail")
	}
}

func TestSymbolErrorRateValidation(t *testing.T) {
	if _, err := SymbolErrorRate(QPSK, nil, nil); err == nil {
		t.Error("empty must fail")
	}
	ser, err := SymbolErrorRate(QPSK, []complex128{1 + 1i}, []complex128{-1 - 1i})
	if err != nil || ser != 1 {
		t.Errorf("ser %g err %v", ser, err)
	}
}
