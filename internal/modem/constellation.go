// Package modem implements the digital modulation layer of the reproduction:
// constellations, pulse shaping (square-root raised cosine, as used by the
// paper's 10 MHz QPSK test signal), continuous-envelope symbol shaping,
// matched-filter demodulation and EVM measurement. Together with package sig
// it generates the multistandard baseband stimuli that the BIST observes.
package modem

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Constellation is a memoryless symbol alphabet with Gray-coded bit mapping.
type Constellation struct {
	// Name identifies the scheme ("QPSK", "16QAM", ...).
	Name string
	// Points holds the unit-average-energy symbol coordinates indexed by the
	// Gray-decoded bit word.
	Points []complex128
}

// BitsPerSymbol returns log2 of the alphabet size.
func (c *Constellation) BitsPerSymbol() int {
	n := len(c.Points)
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Size returns the alphabet size.
func (c *Constellation) Size() int { return len(c.Points) }

// AvgEnergy returns the mean symbol energy (should be ~1 for the built-ins).
func (c *Constellation) AvgEnergy() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range c.Points {
		s += real(p)*real(p) + imag(p)*imag(p)
	}
	return s / float64(len(c.Points))
}

// MinDistance returns the minimum Euclidean distance between any two points.
func (c *Constellation) MinDistance() float64 {
	min := math.Inf(1)
	for i := 0; i < len(c.Points); i++ {
		for j := i + 1; j < len(c.Points); j++ {
			if d := cmplx.Abs(c.Points[i] - c.Points[j]); d < min {
				min = d
			}
		}
	}
	return min
}

// Map converts a bit slice to symbols; len(bits) must be a multiple of
// BitsPerSymbol. Bits are consumed MSB first per symbol.
func (c *Constellation) Map(bits []int) ([]complex128, error) {
	bps := c.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("modem: %s: bit count %d not a multiple of %d", c.Name, len(bits), bps)
	}
	out := make([]complex128, 0, len(bits)/bps)
	for i := 0; i < len(bits); i += bps {
		idx := 0
		for b := 0; b < bps; b++ {
			if bits[i+b] != 0 {
				idx |= 1 << (bps - 1 - b)
			}
		}
		out = append(out, c.Points[idx])
	}
	return out, nil
}

// Slice returns the index of the nearest constellation point to z.
func (c *Constellation) Slice(z complex128) int {
	best := 0
	bd := math.Inf(1)
	for i, p := range c.Points {
		if d := cmplx.Abs(z - p); d < bd {
			bd = d
			best = i
		}
	}
	return best
}

// RandomSymbols draws n uniformly distributed symbols with a seeded RNG.
func (c *Constellation) RandomSymbols(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = c.Points[rng.Intn(len(c.Points))]
	}
	return out
}

// The built-in alphabets. All are normalised to unit average energy.
var (
	BPSK  = &Constellation{Name: "BPSK", Points: []complex128{1, -1}}
	QPSK  = newPSK("QPSK", 4, math.Pi/4)
	PSK8  = newPSK("8PSK", 8, 0)
	QAM16 = newQAM("16QAM", 4)
	QAM64 = newQAM("64QAM", 8)
)

// ByName returns the built-in constellation with the given name.
func ByName(name string) (*Constellation, error) {
	switch name {
	case "BPSK":
		return BPSK, nil
	case "QPSK":
		return QPSK, nil
	case "8PSK":
		return PSK8, nil
	case "16QAM":
		return QAM16, nil
	case "64QAM":
		return QAM64, nil
	default:
		return nil, fmt.Errorf("modem: unknown constellation %q", name)
	}
}

// newPSK builds an m-ary PSK alphabet with Gray mapping and phase offset:
// the point at angular position i carries the Gray word i XOR (i>>1), so
// adjacent phases differ in exactly one bit.
func newPSK(name string, m int, offset float64) *Constellation {
	pts := make([]complex128, m)
	for i := 0; i < m; i++ {
		g := i ^ (i >> 1)
		s, c := math.Sincos(2*math.Pi*float64(i)/float64(m) + offset)
		pts[g] = complex(c, s)
	}
	return &Constellation{Name: name, Points: pts}
}

// newQAM builds a square m x m QAM alphabet (Gray per axis), unit energy.
func newQAM(name string, side int) *Constellation {
	m := side * side
	pts := make([]complex128, m)
	bpsAxis := 0
	for s := side; s > 1; s >>= 1 {
		bpsAxis++
	}
	levels := make([]float64, side)
	for i := range levels {
		levels[i] = float64(2*i - (side - 1))
	}
	var energy float64
	for idx := 0; idx < m; idx++ {
		iBits := idx >> bpsAxis
		qBits := idx & (side - 1)
		iLvl := grayToBinary(iBits)
		qLvl := grayToBinary(qBits)
		p := complex(levels[iLvl], levels[qLvl])
		pts[idx] = p
		energy += real(p)*real(p) + imag(p)*imag(p)
	}
	scale := complex(1/math.Sqrt(energy/float64(m)), 0)
	for i := range pts {
		pts[i] *= scale
	}
	return &Constellation{Name: name, Points: pts}
}

func grayToBinary(g int) int {
	b := 0
	for g > 0 {
		b ^= g
		g >>= 1
	}
	return b
}

// Pi4DQPSK encodes bits differentially with pi/4-DQPSK phase transitions
// {±pi/4, ±3pi/4}. It returns the transmitted symbol sequence starting from
// phase 0. Bit pairs are consumed MSB first.
func Pi4DQPSK(bits []int) ([]complex128, error) {
	if len(bits)%2 != 0 {
		return nil, fmt.Errorf("modem: pi/4-DQPSK needs an even bit count, got %d", len(bits))
	}
	// Gray-coded dibit -> phase increment.
	incr := map[int]float64{
		0b00: math.Pi / 4,
		0b01: 3 * math.Pi / 4,
		0b11: -3 * math.Pi / 4,
		0b10: -math.Pi / 4,
	}
	out := make([]complex128, 0, len(bits)/2)
	phase := 0.0
	for i := 0; i < len(bits); i += 2 {
		d := bits[i]<<1 | bits[i+1]
		phase += incr[d]
		s, c := math.Sincos(phase)
		out = append(out, complex(c, s))
	}
	return out, nil
}

// DemapPi4DQPSK differentially decodes a pi/4-DQPSK symbol sequence back to
// bits (the inverse of Pi4DQPSK, tolerant of a common phase rotation since
// only phase DIFFERENCES carry information).
func DemapPi4DQPSK(symbols []complex128) ([]int, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("modem: pi/4-DQPSK demap of empty input")
	}
	out := make([]int, 0, 2*len(symbols))
	prev := complex(1, 0)
	for _, s := range symbols {
		d := s * cmplx.Conj(prev)
		prev = s
		dphi := math.Atan2(imag(d), real(d))
		// Slice to the nearest legal increment {+-pi/4, +-3pi/4}.
		var bits [2]int
		switch {
		case dphi >= 0 && dphi < math.Pi/2:
			bits = [2]int{0, 0} // +pi/4
		case dphi >= math.Pi/2:
			bits = [2]int{0, 1} // +3pi/4
		case dphi < 0 && dphi >= -math.Pi/2:
			bits = [2]int{1, 0} // -pi/4
		default:
			bits = [2]int{1, 1} // -3pi/4
		}
		out = append(out, bits[0], bits[1])
	}
	return out, nil
}
