package modem

import (
	"math/rand"
	"testing"

	"repro/internal/sig"
)

func TestMapDemapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, c := range []*Constellation{BPSK, QPSK, PSK8, QAM16, QAM64} {
		bits := make([]int, 240*c.BitsPerSymbol())
		for i := range bits {
			bits[i] = rng.Intn(2)
		}
		syms, used, err := c.MapBits(bits)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if used != len(bits) {
			t.Fatalf("%s: used %d of %d bits", c.Name, used, len(bits))
		}
		back := c.Demap(syms)
		res, err := CountBitErrors(back, bits)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Errorf("%s: %d bit errors on a clean round trip", c.Name, res.Errors)
		}
	}
}

func TestGrayMappingSingleBitPerSymbolError(t *testing.T) {
	// Push each QPSK symbol slightly toward a neighbouring decision region:
	// Gray coding guarantees at most one bit flips per symbol error.
	bits := []int{0, 0, 0, 1, 1, 1, 1, 0}
	syms, _, err := QPSK.MapBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate every symbol by 40 degrees: some decisions flip to an
	// adjacent point.
	rot := complex(0.766, 0.643)
	noisy := make([]complex128, len(syms))
	for i, s := range syms {
		noisy[i] = s * rot
	}
	back := QPSK.Demap(noisy)
	res, err := CountBitErrors(back, bits)
	if err != nil {
		t.Fatal(err)
	}
	// With 40 deg rotation each symbol moves one position at most: at most
	// one bit error per 2-bit symbol.
	if res.Errors > len(syms) {
		t.Errorf("%d errors for %d symbols breaks the Gray property", res.Errors, len(syms))
	}
}

func TestCountBitErrorsValidation(t *testing.T) {
	if _, err := CountBitErrors([]int{1}, []int{1, 0}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := CountBitErrors(nil, nil); err == nil {
		t.Error("empty must fail")
	}
	r, err := CountBitErrors([]int{1, 0, 1, 1}, []int{1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors != 2 || r.BER != 0.5 {
		t.Errorf("result %+v", r)
	}
}

func TestBitPipelineThroughMatchedFilter(t *testing.T) {
	// Bits -> QPSK -> SRRC envelope -> matched filter -> demap: zero BER.
	rng := rand.New(rand.NewSource(21))
	bits := make([]int, 96)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	syms, _, err := QPSK.MapBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	pulse, _ := NewSRRC(100e-9, 0.5, 8)
	env, err := NewShapedEnvelope(syms, pulse, true)
	if err != nil {
		t.Fatal(err)
	}
	mf, _ := NewMatchedFilter(pulse, 8)
	var cont sig.Envelope = env
	rx := mf.Demod(cont, 0, len(syms))
	norm, err := NormalizeScaleAndPhase(rx, syms)
	if err != nil {
		t.Fatal(err)
	}
	back := QPSK.Demap(norm)
	res, err := CountBitErrors(back, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d bit errors through the clean pipeline", res.Errors)
	}
}
