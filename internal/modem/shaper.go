package modem

import (
	"fmt"
	"math"
)

// ShapedEnvelope is the continuous complex envelope of a pulse-shaped symbol
// stream: env(t) = sum_k a[k] p(t - k Ts). With Cyclic set, the symbol index
// wraps modulo the stream length, making the process defined (and cyclo-
// stationary) for all t — convenient for long PSD captures from a finite
// symbol memory, exactly like a looping arbitrary waveform generator.
type ShapedEnvelope struct {
	Symbols []complex128
	Pulse   Pulse
	// Cyclic selects periodic extension of the symbol stream.
	Cyclic bool
	// Gain scales the envelope (1 = unscaled).
	Gain float64
}

// NewShapedEnvelope validates and builds a shaped envelope with unit gain.
func NewShapedEnvelope(symbols []complex128, pulse Pulse, cyclic bool) (*ShapedEnvelope, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("modem: shaped envelope needs at least one symbol")
	}
	if pulse == nil {
		return nil, fmt.Errorf("modem: shaped envelope needs a pulse")
	}
	if cyclic && len(symbols) < 2*pulse.SpanSymbols() {
		return nil, fmt.Errorf("modem: cyclic stream of %d symbols shorter than pulse span %d x2",
			len(symbols), pulse.SpanSymbols())
	}
	return &ShapedEnvelope{Symbols: symbols, Pulse: pulse, Cyclic: cyclic, Gain: 1}, nil
}

// At implements sig.Envelope.
func (s *ShapedEnvelope) At(t float64) complex128 {
	ts := s.Pulse.SymbolPeriod()
	span := s.Pulse.SpanSymbols()
	n := len(s.Symbols)
	if s.Cyclic {
		// Reduce once so evaluations are bit-identical across periods;
		// without this, float rounding at the pulse truncation edge breaks
		// exact periodicity.
		period := float64(n) * ts
		t = math.Mod(t, period)
		if t < 0 {
			t += period
		}
	}
	kc := int(math.Floor(t / ts))
	var acc complex128
	for k := kc - span; k <= kc+span+1; k++ {
		idx := k
		if s.Cyclic {
			idx = ((k % n) + n) % n
		} else if k < 0 || k >= n {
			continue
		}
		p := s.Pulse.At(t - float64(k)*ts)
		if p == 0 {
			continue
		}
		acc += s.Symbols[idx] * complex(p, 0)
	}
	return acc * complex(s.Gain, 0)
}

// Duration returns the time extent of the (non-cyclic) burst including the
// pulse tails.
func (s *ShapedEnvelope) Duration() float64 {
	ts := s.Pulse.SymbolPeriod()
	return (float64(len(s.Symbols)) + 2*float64(s.Pulse.SpanSymbols())) * ts
}

// AvgPower estimates the mean envelope power E[|env|^2] by sampling nPts
// instants across one symbol-stream period (or the burst for non-cyclic).
func (s *ShapedEnvelope) AvgPower(nPts int) float64 {
	if nPts < 2 {
		nPts = 256
	}
	ts := s.Pulse.SymbolPeriod()
	var t0, t1 float64
	if s.Cyclic {
		t0, t1 = 0, float64(len(s.Symbols))*ts
	} else {
		t0 = -float64(s.Pulse.SpanSymbols()) * ts
		t1 = t0 + s.Duration()
	}
	dt := (t1 - t0) / float64(nPts)
	p := 0.0
	for i := 0; i < nPts; i++ {
		v := s.At(t0 + (float64(i)+0.5)*dt)
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return p / float64(nPts)
}

// SetAvgPower rescales Gain so AvgPower becomes the target power.
func (s *ShapedEnvelope) SetAvgPower(target float64, nPts int) {
	s.Gain = 1
	p := s.AvgPower(nPts)
	if p <= 0 {
		return
	}
	s.Gain = math.Sqrt(target / p)
}
