package modem

import (
	"math"
	"testing"
)

func TestSRRCBasicShape(t *testing.T) {
	ts := 100e-9 // 10 MHz symbols as in the paper
	p, err := NewSRRC(ts, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.At(0); math.Abs(v-1) > 1e-12 {
		t.Errorf("peak %g, want 1", v)
	}
	// Even symmetry.
	for _, x := range []float64{0.3, 0.77, 1.5, 3.9} {
		if d := math.Abs(p.At(x*ts) - p.At(-x*ts)); d > 1e-12 {
			t.Errorf("asymmetry at %g Ts: %g", x, d)
		}
	}
	// Truncation beyond the span.
	if p.At(8.001*ts) != 0 || p.At(-9*ts) != 0 {
		t.Error("pulse not truncated")
	}
	if p.SymbolPeriod() != ts || p.SpanSymbols() != 8 {
		t.Error("accessors")
	}
}

func TestSRRCSingularityContinuity(t *testing.T) {
	ts := 1.0
	p, _ := NewSRRC(ts, 0.5, 8)
	// alpha = 0.5 puts the removable singularity at t = Ts/(4*0.5) = Ts/2.
	x0 := ts / 2
	v0 := p.At(x0)
	va := p.At(x0 * (1 - 1e-6))
	vb := p.At(x0 * (1 + 1e-6))
	if math.Abs(v0-va) > 1e-4 || math.Abs(v0-vb) > 1e-4 {
		t.Errorf("singularity discontinuous: %g vs %g, %g", v0, va, vb)
	}
	// Same check near t = 0 (the other removable singularity).
	if math.Abs(p.At(1e-11)-p.At(0)) > 1e-6 {
		t.Error("discontinuous at origin")
	}
}

func TestSRRCValidation(t *testing.T) {
	if _, err := NewSRRC(0, 0.5, 8); err == nil {
		t.Error("Ts=0 must fail")
	}
	if _, err := NewSRRC(1, 0, 8); err == nil {
		t.Error("alpha=0 must fail")
	}
	if _, err := NewSRRC(1, 1.5, 8); err == nil {
		t.Error("alpha>1 must fail")
	}
	p, err := NewSRRC(1, 0.25, 0)
	if err != nil || p.SpanSymbols() != 8 {
		t.Error("default span")
	}
}

func TestRCZeroISIProperty(t *testing.T) {
	ts := 100e-9
	p, err := NewRC(ts, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.At(0)-1) > 1e-12 {
		t.Error("RC peak")
	}
	for k := 1; k <= 9; k++ {
		if v := math.Abs(p.At(float64(k) * ts)); v > 1e-9 {
			t.Errorf("RC(%d Ts) = %g, want 0 (zero ISI)", k, v)
		}
	}
}

func TestRCSingularity(t *testing.T) {
	// alpha=0.5: singular at t = Ts/(2 alpha) = Ts.
	// RC(Ts)=0 is also the zero-ISI point; check continuity around it.
	p, _ := NewRC(1, 0.5, 8)
	v := p.At(1 + 1e-9)
	if math.Abs(v-p.At(1)) > 1e-6 {
		t.Errorf("RC discontinuous at singularity: %g vs %g", v, p.At(1))
	}
	// alpha=0.25: singular at t=2Ts, limit (pi/4) sinc(2) = 0.
	q, _ := NewRC(1, 0.25, 8)
	if math.Abs(q.At(2)-math.Pi/4*0) > 1e-9 {
		t.Errorf("RC(2Ts, alpha=0.25) = %g", q.At(2))
	}
	if _, err := NewRC(0, 0.5, 1); err == nil {
		t.Error("Ts=0 must fail")
	}
	if _, err := NewRC(1, 2, 1); err == nil {
		t.Error("alpha>1 must fail")
	}
}

func TestSRRCSelfConvolutionIsNyquist(t *testing.T) {
	// The SRRC convolved with itself must sample to ~0 at nonzero multiples
	// of Ts (it equals the RC pulse up to scale).
	ts := 1.0
	p, _ := NewSRRC(ts, 0.5, 10)
	conv := func(tau float64) float64 {
		dt := ts / 64
		acc := 0.0
		for t := -10 * ts; t <= 10*ts; t += dt {
			acc += p.At(t) * p.At(tau-t) * dt
		}
		return acc
	}
	peak := conv(0)
	if peak <= 0 {
		t.Fatal("degenerate convolution")
	}
	for k := 1; k <= 5; k++ {
		if v := math.Abs(conv(float64(k)*ts)) / peak; v > 5e-3 {
			t.Errorf("SRRC*SRRC at %d Ts = %g of peak, want ~0", k, v)
		}
	}
}

func TestGaussianPulse(t *testing.T) {
	p, err := NewGaussian(1, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0) != 1 {
		t.Error("Gaussian peak")
	}
	if p.At(0.5) <= p.At(1.0) {
		t.Error("not decreasing")
	}
	if p.At(4.5) != 0 {
		t.Error("not truncated")
	}
	if p.SymbolPeriod() != 1 || p.SpanSymbols() != 4 {
		t.Error("accessors")
	}
	if _, err := NewGaussian(1, 0, 4); err == nil {
		t.Error("BT=0 must fail")
	}
	q, err := NewGaussian(1, 0.5, 0)
	if err != nil || q.SpanSymbols() != 4 {
		t.Error("default span")
	}
}

func TestPulseEnergyPositive(t *testing.T) {
	p, _ := NewSRRC(1, 0.5, 8)
	e := PulseEnergy(p, 32)
	if e <= 0 {
		t.Fatalf("energy %g", e)
	}
	// Oversample clamp path.
	e2 := PulseEnergy(p, 1)
	if math.Abs(e-e2)/e > 0.05 {
		t.Errorf("energy estimates disagree: %g vs %g", e, e2)
	}
}
