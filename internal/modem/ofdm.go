package modem

import (
	"fmt"
	"math"
	"math/rand"
)

// OFDMConfig describes a cyclic-prefix OFDM waveform.
type OFDMConfig struct {
	// Subcarriers is the number of active subcarriers (must be even; they
	// are placed symmetrically around DC, which stays unused).
	Subcarriers int
	// Spacing is the subcarrier spacing in Hz.
	Spacing float64
	// CPFraction is the cyclic-prefix length as a fraction of the useful
	// symbol (0 = 1/8).
	CPFraction float64
	// Constellation maps bits onto each subcarrier (nil = QPSK).
	Constellation *Constellation
	// Symbols is the number of OFDM symbols in the cyclic stream (0 = 16).
	Symbols int
	// Seed drives the random payload.
	Seed int64
	// EdgeTaper is the raised-cosine time-window fraction applied at each
	// symbol boundary to confine the spectrum (0 = 0.05).
	EdgeTaper float64
}

// OFDMEnvelope is a continuous-time OFDM complex envelope: a cyclic stream
// of CP-OFDM symbols evaluable at arbitrary t. It exercises the
// multistandard-BIST claim with a waveform class entirely different from
// single-carrier PSK/QAM — including the paper's "standards yet to appear".
type OFDMEnvelope struct {
	cfg OFDMConfig
	// data[m][k] is the payload of symbol m, subcarrier k.
	data [][]complex128
	// freqs[k] is the baseband frequency of subcarrier k.
	freqs   []float64
	tUseful float64
	tCP     float64
	tSym    float64
	period  float64
}

// NewOFDM validates the configuration and draws the payload.
func NewOFDM(cfg OFDMConfig) (*OFDMEnvelope, error) {
	if cfg.Subcarriers < 2 || cfg.Subcarriers%2 != 0 {
		return nil, fmt.Errorf("modem: OFDM needs an even subcarrier count >= 2, got %d", cfg.Subcarriers)
	}
	if cfg.Spacing <= 0 {
		return nil, fmt.Errorf("modem: OFDM spacing %g must be positive", cfg.Spacing)
	}
	if cfg.CPFraction == 0 {
		cfg.CPFraction = 1.0 / 8
	}
	if cfg.CPFraction < 0 || cfg.CPFraction > 1 {
		return nil, fmt.Errorf("modem: OFDM CP fraction %g outside [0, 1]", cfg.CPFraction)
	}
	if cfg.Constellation == nil {
		cfg.Constellation = QPSK
	}
	if cfg.Symbols == 0 {
		cfg.Symbols = 16
	}
	if cfg.EdgeTaper == 0 {
		cfg.EdgeTaper = 0.05
	}
	if cfg.EdgeTaper < 0 || cfg.EdgeTaper > 0.5 {
		return nil, fmt.Errorf("modem: OFDM edge taper %g outside [0, 0.5]", cfg.EdgeTaper)
	}
	n := cfg.Subcarriers
	rng := rand.New(rand.NewSource(cfg.Seed))
	o := &OFDMEnvelope{
		cfg:     cfg,
		data:    make([][]complex128, cfg.Symbols),
		freqs:   make([]float64, n),
		tUseful: 1 / cfg.Spacing,
	}
	o.tCP = cfg.CPFraction * o.tUseful
	o.tSym = o.tUseful + o.tCP
	o.period = float64(cfg.Symbols) * o.tSym
	for k := 0; k < n/2; k++ {
		o.freqs[k] = float64(k+1) * cfg.Spacing
		o.freqs[n/2+k] = -float64(k+1) * cfg.Spacing
	}
	scale := complex(1/math.Sqrt(float64(n)), 0)
	pts := cfg.Constellation.Points
	for m := range o.data {
		o.data[m] = make([]complex128, n)
		for k := 0; k < n; k++ {
			o.data[m][k] = pts[rng.Intn(len(pts))] * scale
		}
	}
	return o, nil
}

// OccupiedBandwidth returns the two-sided occupied bandwidth.
func (o *OFDMEnvelope) OccupiedBandwidth() float64 {
	return float64(o.cfg.Subcarriers+2) * o.cfg.Spacing
}

// SymbolPeriod returns the full (CP + useful) symbol duration.
func (o *OFDMEnvelope) SymbolPeriod() float64 { return o.tSym }

// At implements sig.Envelope: the payload of the symbol containing t,
// synthesised directly as a sum of subcarrier exponentials (the continuous
// equivalent of IFFT + cyclic prefix), with a raised-cosine edge taper.
func (o *OFDMEnvelope) At(t float64) complex128 {
	// Cyclic extension.
	t = math.Mod(t, o.period)
	if t < 0 {
		t += o.period
	}
	m := int(t / o.tSym)
	if m >= len(o.data) {
		m = len(o.data) - 1
	}
	tin := t - float64(m)*o.tSym
	// CP: the last tCP of the useful symbol replayed first, i.e. the
	// exponentials are referenced to the end of the CP.
	tau := tin - o.tCP
	var acc complex128
	for k, f := range o.freqs {
		ph := 2 * math.Pi * f * tau
		s, c := math.Sincos(ph)
		acc += o.data[m][k] * complex(c, s)
	}
	return acc * complex(o.window(tin), 0)
}

// window applies the raised-cosine symbol-edge taper.
func (o *OFDMEnvelope) window(tin float64) float64 {
	w := o.cfg.EdgeTaper * o.tSym
	if w <= 0 {
		return 1
	}
	switch {
	case tin < w:
		return 0.5 * (1 - math.Cos(math.Pi*tin/w))
	case tin > o.tSym-w:
		return 0.5 * (1 - math.Cos(math.Pi*(o.tSym-tin)/w))
	default:
		return 1
	}
}

// AvgPower estimates E[|env|^2] over one stream period.
func (o *OFDMEnvelope) AvgPower(nPts int) float64 {
	if nPts < 2 {
		nPts = 1024
	}
	p := 0.0
	for i := 0; i < nPts; i++ {
		v := o.At(o.period * (float64(i) + 0.5) / float64(nPts))
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return p / float64(nPts)
}
