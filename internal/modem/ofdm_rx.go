package modem

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/sig"
)

// OFDMDemodConfig describes the receiver side of a CP-OFDM link; it must
// match the transmitter's OFDMConfig numerology.
type OFDMDemodConfig struct {
	// Subcarriers, Spacing and CPFraction mirror OFDMConfig.
	Subcarriers int
	Spacing     float64
	CPFraction  float64
	// EdgeTaper mirrors the transmitter's symbol-edge window fraction;
	// when non-zero the demodulator zero-forces the known inter-carrier
	// interference the window creates inside the useful interval
	// (0 = no equalisation).
	EdgeTaper float64
	// Oversample sets the numeric-integration density per useful symbol
	// (0 = 4 x Subcarriers points).
	Oversample int
}

// DemodOFDM recovers the payload of nSym OFDM symbols starting at symbol
// index m0 from a continuous envelope (analytic or reconstructed): the
// cyclic prefix is skipped and each subcarrier is correlated over the
// useful interval. The result is indexed [symbol][subcarrier] with the
// same subcarrier layout as OFDMEnvelope (positive tones first, then
// negative).
func DemodOFDM(env sig.Envelope, cfg OFDMDemodConfig, m0, nSym int) ([][]complex128, error) {
	if cfg.Subcarriers < 2 || cfg.Subcarriers%2 != 0 {
		return nil, fmt.Errorf("modem: OFDM demod needs an even subcarrier count, got %d", cfg.Subcarriers)
	}
	if cfg.Spacing <= 0 {
		return nil, fmt.Errorf("modem: OFDM demod spacing %g must be positive", cfg.Spacing)
	}
	if cfg.CPFraction == 0 {
		cfg.CPFraction = 1.0 / 8
	}
	if cfg.CPFraction < 0 || cfg.CPFraction > 1 {
		return nil, fmt.Errorf("modem: OFDM demod CP fraction %g outside [0, 1]", cfg.CPFraction)
	}
	if nSym < 1 {
		return nil, fmt.Errorf("modem: OFDM demod needs at least one symbol")
	}
	nPts := cfg.Oversample
	if nPts <= 0 {
		nPts = 4 * cfg.Subcarriers
	}
	tU := 1 / cfg.Spacing
	tCP := cfg.CPFraction * tU
	tSym := tU + tCP
	n := cfg.Subcarriers
	freqs := make([]float64, n)
	for k := 0; k < n/2; k++ {
		freqs[k] = float64(k+1) * cfg.Spacing
		freqs[n/2+k] = -float64(k+1) * cfg.Spacing
	}
	out := make([][]complex128, nSym)
	dt := tU / float64(nPts)
	// Correlate over the FULL useful interval: subcarrier orthogonality
	// requires exactly one period of every beat frequency. The residual
	// error from the transmitter's symbol-edge taper (a few percent of the
	// interval) shows up as a small common loss plus low-level ICI — the
	// receiver-side EVM floor.
	// When the transmitter's edge taper is known, build the windowed
	// cross-correlation matrix G[k][j] = (1/Tu) int T(tau) e^{i2pi(fj-fk)tau}
	// and zero-force it: the taper lives inside the useful interval, so
	// without equalisation it appears as inter-carrier interference.
	var gw map[int]complex128
	if cfg.EdgeTaper > 0 {
		wEdge := cfg.EdgeTaper * tSym
		taper := func(tau float64) float64 {
			tin := tCP + tau
			switch {
			case tin < wEdge:
				return 0.5 * (1 - math.Cos(math.Pi*tin/wEdge))
			case tin > tSym-wEdge:
				return 0.5 * (1 - math.Cos(math.Pi*(tSym-tin)/wEdge))
			default:
				return 1
			}
		}
		gw = make(map[int]complex128, 2*n+1)
		for diff := -n; diff <= n; diff++ {
			var acc complex128
			for i := 0; i < nPts; i++ {
				tau := (float64(i) + 0.5) * dt
				s, c := math.Sincos(2 * math.Pi * float64(diff) * cfg.Spacing * tau)
				acc += complex(taper(tau)*c, taper(tau)*s)
			}
			gw[diff] = acc / complex(float64(nPts), 0)
		}
	}
	// Signed subcarrier indices matching the freqs layout.
	sidx := make([]int, n)
	for k := 0; k < n/2; k++ {
		sidx[k] = k + 1
		sidx[n/2+k] = -(k + 1)
	}
	for m := 0; m < nSym; m++ {
		base := float64(m0+m) * tSym
		row := make([]complex128, n)
		for k, f := range freqs {
			var acc complex128
			for i := 0; i < nPts; i++ {
				// tau referenced to the end of the CP, matching the Tx.
				tau := (float64(i) + 0.5) * dt
				t := base + tCP + tau
				s, c := math.Sincos(-2 * math.Pi * f * tau)
				acc += env.At(t) * complex(c, s)
			}
			row[k] = acc / complex(float64(nPts), 0)
		}
		if gw != nil {
			g := make([][]complex128, n)
			for k := 0; k < n; k++ {
				g[k] = make([]complex128, n)
				for j := 0; j < n; j++ {
					g[k][j] = gw[sidx[j]-sidx[k]]
				}
			}
			eq, ok := dsp.SolveLinearComplex(g, row)
			if !ok {
				return nil, fmt.Errorf("modem: OFDM taper equaliser singular")
			}
			row = eq
		}
		out[m] = row
	}
	return out, nil
}

// OFDMEVM compares demodulated subcarrier values against the known payload
// (both [symbol][subcarrier]) after removing a single common complex gain,
// returning the RMS EVM in percent.
func OFDMEVM(got, want [][]complex128) (float64, error) {
	if len(got) != len(want) || len(got) == 0 {
		return 0, fmt.Errorf("modem: OFDM EVM: %d vs %d symbols", len(got), len(want))
	}
	var g, r []complex128
	for m := range got {
		if len(got[m]) != len(want[m]) {
			return 0, fmt.Errorf("modem: OFDM EVM: symbol %d has %d vs %d subcarriers",
				m, len(got[m]), len(want[m]))
		}
		g = append(g, got[m]...)
		r = append(r, want[m]...)
	}
	norm, err := NormalizeScaleAndPhase(g, r)
	if err != nil {
		return 0, err
	}
	res, err := EVM(norm, r)
	if err != nil {
		return 0, err
	}
	return res.RMSPercent, nil
}

// Payload exposes the transmitted subcarrier values of symbol m (for
// reference-aided measurements).
func (o *OFDMEnvelope) Payload(m int) ([]complex128, error) {
	if m < 0 || m >= len(o.data) {
		return nil, fmt.Errorf("modem: OFDM payload index %d outside [0, %d)", m, len(o.data))
	}
	out := make([]complex128, len(o.data[m]))
	copy(out, o.data[m])
	return out, nil
}

// DemodConfig returns the receiver numerology matching this envelope.
func (o *OFDMEnvelope) DemodConfig() OFDMDemodConfig {
	return OFDMDemodConfig{
		Subcarriers: o.cfg.Subcarriers,
		Spacing:     o.cfg.Spacing,
		CPFraction:  o.cfg.CPFraction,
		EdgeTaper:   o.cfg.EdgeTaper,
	}
}
