package modem

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// Pulse is a continuous-time pulse-shaping filter impulse response.
type Pulse interface {
	// At evaluates the pulse at time t (seconds), centred at t = 0.
	At(t float64) float64
	// SymbolPeriod returns Ts.
	SymbolPeriod() float64
	// SpanSymbols returns the one-sided truncation span in symbol periods:
	// the pulse is treated as zero for |t| > SpanSymbols * Ts.
	SpanSymbols() int
}

// SRRC is the square-root raised cosine pulse with roll-off Alpha used by
// the paper's test signal (alpha = 0.5, 10 MHz symbol rate). The pulse is
// normalised to unit peak: At(0) = 1.
type SRRC struct {
	Ts    float64 // symbol period, seconds
	Alpha float64 // roll-off in (0, 1]
	Span  int     // one-sided truncation span in symbols
	peak  float64
}

// NewSRRC builds an SRRC pulse; span <= 0 defaults to 8 symbols.
func NewSRRC(ts, alpha float64, span int) (*SRRC, error) {
	if ts <= 0 {
		return nil, fmt.Errorf("modem: SRRC: Ts %g must be positive", ts)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("modem: SRRC: alpha %g outside (0, 1]", alpha)
	}
	if span <= 0 {
		span = 8
	}
	p := &SRRC{Ts: ts, Alpha: alpha, Span: span, peak: 1}
	p.peak = p.raw(0)
	return p, nil
}

// raw evaluates the textbook unit-energy SRRC expression (up to a constant).
func (p *SRRC) raw(t float64) float64 {
	x := t / p.Ts
	a := p.Alpha
	// Singularity at x = +-1/(4a).
	if q := math.Abs(4 * a * x); math.Abs(q-1) < 1e-8 {
		return a / math.Sqrt2 * ((1+2/math.Pi)*math.Sin(math.Pi/(4*a)) +
			(1-2/math.Pi)*math.Cos(math.Pi/(4*a)))
	}
	if math.Abs(x) < 1e-10 {
		return 1 - a + 4*a/math.Pi
	}
	num := math.Sin(math.Pi*x*(1-a)) + 4*a*x*math.Cos(math.Pi*x*(1+a))
	den := math.Pi * x * (1 - 16*a*a*x*x)
	return num / den
}

// edgeTaper smoothly truncates a pulse: 1 inside (span-1) symbol periods,
// a raised-cosine roll-off across the final period and exactly 0 beyond the
// span. Continuous truncation keeps pulse-shaped envelopes exactly periodic
// under cyclic extension (a hard edge is ulp-sensitive to time rounding).
func edgeTaper(t, ts float64, span int) float64 {
	x := math.Abs(t) / ts
	edge := float64(span)
	switch {
	case x >= edge:
		return 0
	case x <= edge-1:
		return 1
	default:
		return 0.5 * (1 + math.Cos(math.Pi*(x-edge+1)))
	}
}

// At implements Pulse (peak-normalised, smoothly truncated to the span).
func (p *SRRC) At(t float64) float64 {
	w := edgeTaper(t, p.Ts, p.Span)
	if w == 0 {
		return 0
	}
	return w * p.raw(t) / p.peak
}

// SymbolPeriod implements Pulse.
func (p *SRRC) SymbolPeriod() float64 { return p.Ts }

// SpanSymbols implements Pulse.
func (p *SRRC) SpanSymbols() int { return p.Span }

// RC is the raised-cosine (full Nyquist) pulse: the cascade of two SRRC
// filters. It satisfies the zero-ISI property At(k Ts) = 0 for k != 0.
type RC struct {
	Ts    float64
	Alpha float64
	Span  int
}

// NewRC builds a raised-cosine pulse; span <= 0 defaults to 8.
func NewRC(ts, alpha float64, span int) (*RC, error) {
	if ts <= 0 {
		return nil, fmt.Errorf("modem: RC: Ts %g must be positive", ts)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("modem: RC: alpha %g outside (0, 1]", alpha)
	}
	if span <= 0 {
		span = 8
	}
	return &RC{Ts: ts, Alpha: alpha, Span: span}, nil
}

// At implements Pulse.
func (p *RC) At(t float64) float64 {
	w := edgeTaper(t, p.Ts, p.Span)
	if w == 0 {
		return 0
	}
	x := t / p.Ts
	a := p.Alpha
	den := 1 - 4*a*a*x*x
	if math.Abs(den) < 1e-8 {
		// Limit at x = +-1/(2a): (pi/4) sinc(1/(2a)).
		return w * math.Pi / 4 * dsp.Sinc(1/(2*a))
	}
	return w * dsp.Sinc(x) * math.Cos(math.Pi*a*x) / den
}

// SymbolPeriod implements Pulse.
func (p *RC) SymbolPeriod() float64 { return p.Ts }

// SpanSymbols implements Pulse.
func (p *RC) SpanSymbols() int { return p.Span }

// Gaussian is the Gaussian pulse used by GMSK-like shaping, parameterised by
// the bandwidth-time product BT.
type Gaussian struct {
	Ts   float64
	BT   float64
	Span int
	sig  float64
}

// NewGaussian builds a Gaussian pulse; span <= 0 defaults to 4.
func NewGaussian(ts, bt float64, span int) (*Gaussian, error) {
	if ts <= 0 || bt <= 0 {
		return nil, fmt.Errorf("modem: Gaussian: Ts %g and BT %g must be positive", ts, bt)
	}
	if span <= 0 {
		span = 4
	}
	// sigma = sqrt(ln 2) / (2 pi B), B = BT / Ts.
	sigma := math.Sqrt(math.Ln2) / (2 * math.Pi * bt / ts)
	return &Gaussian{Ts: ts, BT: bt, Span: span, sig: sigma}, nil
}

// At implements Pulse.
func (p *Gaussian) At(t float64) float64 {
	if math.Abs(t) > float64(p.Span)*p.Ts {
		return 0
	}
	return math.Exp(-t * t / (2 * p.sig * p.sig))
}

// SymbolPeriod implements Pulse.
func (p *Gaussian) SymbolPeriod() float64 { return p.Ts }

// SpanSymbols implements Pulse.
func (p *Gaussian) SpanSymbols() int { return p.Span }

// PulseEnergy numerically integrates p^2 over its support (for matched
// filter normalisation), using oversample points per symbol period.
func PulseEnergy(p Pulse, oversample int) float64 {
	if oversample < 2 {
		oversample = 16
	}
	ts := p.SymbolPeriod()
	dt := ts / float64(oversample)
	span := float64(p.SpanSymbols()) * ts
	e := 0.0
	for t := -span; t <= span; t += dt {
		v := p.At(t)
		e += v * v * dt
	}
	return e
}
