package modem

import "fmt"

// Demap slices each received symbol on the constellation and returns the
// corresponding hard-decision bit stream (MSB first per symbol, matching
// Map).
func (c *Constellation) Demap(symbols []complex128) []int {
	bps := c.BitsPerSymbol()
	out := make([]int, 0, len(symbols)*bps)
	for _, s := range symbols {
		idx := c.Slice(s)
		for b := bps - 1; b >= 0; b-- {
			out = append(out, (idx>>b)&1)
		}
	}
	return out
}

// BERResult summarises a bit-error-rate measurement.
type BERResult struct {
	// Bits is the number of compared bits; Errors the mismatches.
	Bits, Errors int
	// BER is Errors/Bits.
	BER float64
}

// CountBitErrors compares two equal-length bit streams.
func CountBitErrors(got, want []int) (BERResult, error) {
	if len(got) != len(want) {
		return BERResult{}, fmt.Errorf("modem: BER: %d vs %d bits", len(got), len(want))
	}
	if len(got) == 0 {
		return BERResult{}, fmt.Errorf("modem: BER: empty streams")
	}
	res := BERResult{Bits: len(got)}
	for i := range got {
		gb := 0
		if got[i] != 0 {
			gb = 1
		}
		wb := 0
		if want[i] != 0 {
			wb = 1
		}
		if gb != wb {
			res.Errors++
		}
	}
	res.BER = float64(res.Errors) / float64(res.Bits)
	return res, nil
}

// MapBits is a convenience wrapper pairing Map's error with Gray demapping
// round trips: it maps bits, returning the symbols and the bit count used.
func (c *Constellation) MapBits(bits []int) ([]complex128, int, error) {
	bps := c.BitsPerSymbol()
	usable := (len(bits) / bps) * bps
	syms, err := c.Map(bits[:usable])
	if err != nil {
		return nil, 0, err
	}
	return syms, usable, nil
}
