package modem

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestConstellationBasics(t *testing.T) {
	cases := []struct {
		c    *Constellation
		size int
		bps  int
	}{
		{BPSK, 2, 1},
		{QPSK, 4, 2},
		{PSK8, 8, 3},
		{QAM16, 16, 4},
		{QAM64, 64, 6},
	}
	for _, tc := range cases {
		if tc.c.Size() != tc.size {
			t.Errorf("%s: size %d, want %d", tc.c.Name, tc.c.Size(), tc.size)
		}
		if tc.c.BitsPerSymbol() != tc.bps {
			t.Errorf("%s: bps %d, want %d", tc.c.Name, tc.c.BitsPerSymbol(), tc.bps)
		}
		if e := tc.c.AvgEnergy(); math.Abs(e-1) > 1e-9 {
			t.Errorf("%s: avg energy %g, want 1", tc.c.Name, e)
		}
		if d := tc.c.MinDistance(); d <= 0 {
			t.Errorf("%s: min distance %g", tc.c.Name, d)
		}
	}
}

func TestPSKGrayAdjacency(t *testing.T) {
	// Neighbouring points on the PSK circle must differ in exactly one bit.
	for _, c := range []*Constellation{QPSK, PSK8} {
		m := c.Size()
		// Recover angular order by sorting points by angle.
		type pp struct {
			idx int
			ang float64
		}
		byAngle := make([]pp, m)
		for i, p := range c.Points {
			byAngle[i] = pp{i, math.Atan2(imag(p), real(p))}
		}
		for i := 0; i < m; i++ { // insertion sort, tiny m
			for j := i; j > 0 && byAngle[j].ang < byAngle[j-1].ang; j-- {
				byAngle[j], byAngle[j-1] = byAngle[j-1], byAngle[j]
			}
		}
		for i := 0; i < m; i++ {
			a := byAngle[i].idx
			b := byAngle[(i+1)%m].idx
			diff := a ^ b
			if bitsSet(diff) != 1 {
				t.Errorf("%s: neighbours %04b and %04b differ in %d bits", c.Name, a, b, bitsSet(diff))
			}
		}
	}
}

func bitsSet(x int) int {
	n := 0
	for x != 0 {
		n += x & 1
		x >>= 1
	}
	return n
}

func TestQAM16GrayAxisAdjacency(t *testing.T) {
	// Horizontally/vertically adjacent 16QAM points must differ in one bit.
	pts := QAM16.Points
	d := QAM16.MinDistance()
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if math.Abs(cmplx.Abs(pts[i]-pts[j])-d) < 1e-9 {
				if bitsSet(i^j) != 1 {
					t.Errorf("adjacent points %04b/%04b differ in %d bits", i, j, bitsSet(i^j))
				}
			}
		}
	}
}

func TestMapAndSliceRoundTrip(t *testing.T) {
	for _, c := range []*Constellation{BPSK, QPSK, PSK8, QAM16, QAM64} {
		bps := c.BitsPerSymbol()
		bits := make([]int, bps*c.Size())
		for i := 0; i < c.Size(); i++ {
			for b := 0; b < bps; b++ {
				bits[i*bps+b] = (i >> (bps - 1 - b)) & 1
			}
		}
		syms, err := c.Map(bits)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for i, s := range syms {
			if got := c.Slice(s); got != i {
				t.Errorf("%s: symbol %d sliced to %d", c.Name, i, got)
			}
		}
	}
}

func TestMapBitCountError(t *testing.T) {
	if _, err := QPSK.Map([]int{1}); err == nil {
		t.Error("odd bit count for QPSK should fail")
	}
}

func TestRandomSymbolsDeterministicAndValid(t *testing.T) {
	a := QPSK.RandomSymbols(100, 5)
	b := QPSK.RandomSymbols(100, 5)
	c := QPSK.RandomSymbols(100, 6)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
		if QPSK.Slice(a[i]) < 0 || cmplx.Abs(a[i]) == 0 {
			t.Fatal("invalid random symbol")
		}
	}
	if !same {
		t.Error("same seed must reproduce")
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"BPSK", "QPSK", "8PSK", "16QAM", "64QAM"} {
		c, err := ByName(n)
		if err != nil || c.Name != n {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("GMSK"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestPi4DQPSK(t *testing.T) {
	syms, err := Pi4DQPSK([]int{0, 0, 0, 1, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 4 {
		t.Fatalf("got %d symbols", len(syms))
	}
	for i, s := range syms {
		if math.Abs(cmplx.Abs(s)-1) > 1e-12 {
			t.Errorf("symbol %d not unit magnitude", i)
		}
	}
	// First dibit 00 -> +pi/4.
	if d := math.Abs(math.Atan2(imag(syms[0]), real(syms[0])) - math.Pi/4); d > 1e-12 {
		t.Errorf("first phase off by %g", d)
	}
	// Each transition must be one of +-pi/4, +-3pi/4 (never 0 or pi):
	// the pi/4-DQPSK envelope therefore never crosses the origin.
	prev := complex(1, 0)
	for _, s := range syms {
		dphi := math.Atan2(imag(s/prev), real(s/prev))
		ad := math.Abs(dphi)
		if math.Abs(ad-math.Pi/4) > 1e-9 && math.Abs(ad-3*math.Pi/4) > 1e-9 {
			t.Errorf("illegal transition %g", dphi)
		}
		prev = s
	}
	if _, err := Pi4DQPSK([]int{1}); err == nil {
		t.Error("odd bits must error")
	}
}

func TestPi4DQPSKRoundTrip(t *testing.T) {
	bits := []int{0, 0, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 1}
	syms, err := Pi4DQPSK(bits)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DemapPi4DQPSK(syms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("bit %d: %d != %d", i, back[i], bits[i])
		}
	}
	// Rotation invariance: differential decoding survives a common phase.
	rot := cmplx.Exp(complex(0, 0.7))
	rotated := make([]complex128, len(syms))
	for i, s := range syms {
		rotated[i] = s * rot
	}
	// The first symbol's difference is taken against the unrotated origin,
	// so skip it and compare the rest.
	back2, err := DemapPi4DQPSK(rotated)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(bits); i++ {
		if back2[i] != bits[i] {
			t.Fatalf("rotated bit %d: %d != %d", i, back2[i], bits[i])
		}
	}
	if _, err := DemapPi4DQPSK(nil); err == nil {
		t.Error("empty must fail")
	}
}
