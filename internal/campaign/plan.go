package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs/trace"
)

// Cell is one (stimulus, fault) unit of campaign work: the indivisible job
// a runner schedules, checkpoints and shards. Its Seed derives from the
// cell's content (stimulus canonical JSON + fault name + grid seed), never
// from its position, which is what lets a cell carry byte-identical
// randomness into any process, shard or resume that runs it.
type Cell struct {
	Stimulus StimulusSpec
	Fault    core.Fault
	Seed     int64
}

// Key names the cell uniquely within its grid — the identity checkpoints
// and shard merges match on. Stimulus names are unique by Validate and
// fault names are unique in the catalogue, so the pair is collision-free.
func (c Cell) Key() string { return c.Stimulus.Name + "\x00" + c.Fault.Name }

// UnitVerdict is the per-device outcome a cell observer sees while a cell
// executes: what a production floor streams as each DUT comes off the
// tester, before the cell's aggregate exists.
type UnitVerdict struct {
	Stimulus string
	Fault    string
	// Unit is the device index within the cell's lot.
	Unit int
	// Pass is the BIST verdict; Err carries the run error when the unit
	// could not even be measured (counted as a rejection).
	Pass bool
	Err  string
	// HasMargin reports whether the run produced a mask verdict;
	// MarginDB is meaningful only when it did.
	HasMargin bool
	MarginDB  float64
}

// Plan is a grid expanded into its deterministic cell list: the defaulted,
// validated grid plus every (stimulus, fault) cell sorted by name. All
// incremental execution — the fleet service's streaming, checkpointing and
// sharding — runs over a Plan; Grid.Run is the batch convenience on top.
type Plan struct {
	// Grid is the defaulted, validated grid the plan was built from.
	Grid Grid
	// Cells is the cell list, sorted by (stimulus name, fault name). The
	// order is part of the sharding contract: shard partitions index into
	// this list, so every process that builds a Plan from the same grid
	// sees the same partition.
	Cells []Cell

	// OnCellDone, when non-nil, observes every completed cell with its
	// wall-clock duration. It exists for telemetry (rolling windows,
	// yield tracking); elapsed is deliberately passed alongside the result
	// rather than stored in it, because CellResult is golden-pinned and
	// must never carry wall-clock fields. Called on the goroutine that ran
	// the cell, after the aggregate is final.
	OnCellDone func(i int, result CellResult, elapsed time.Duration)

	base   core.Config
	spread core.ProcessSpread
}

// NewPlan defaults and validates the grid, resolves the fault list and
// expands the sorted cell list.
func NewPlan(g Grid) (*Plan, error) {
	g = g.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	catalog, err := core.BuildExtendedCatalog()
	if err != nil {
		return nil, err
	}
	faults := []core.Fault{{Name: healthyName, ShouldFail: false}}
	if len(g.Faults) == 0 {
		faults = append(faults, catalog...)
	} else {
		for _, name := range g.Faults {
			f, err := core.FaultByName(name)
			if err != nil {
				return nil, fmt.Errorf("campaign: grid: %w", err)
			}
			faults = append(faults, f)
		}
	}
	p := &Plan{Grid: g, base: baseConfig(g.Scale), spread: core.TypicalSpread()}
	for _, s := range g.Stimuli {
		canon, err := s.MarshalCanonical()
		if err != nil {
			return nil, fmt.Errorf("campaign: stimulus %s: %w", s.Name, err)
		}
		for _, f := range faults {
			p.Cells = append(p.Cells, Cell{Stimulus: s, Fault: f, Seed: cellSeed(g.Seed, canon, f.Name)})
		}
	}
	sortCellsByKey(p.Cells)
	return p, nil
}

// GridHash returns the short hex sha256 of the defaulted grid's canonical
// JSON: the identity checkpoints are keyed by. Two grids with the same
// hash expand to the same plan and the same matrix.
func (p *Plan) GridHash() (string, error) {
	b, err := p.Grid.MarshalCanonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// RunCell executes cell i's full lot through the BIST and returns its
// aggregate. onUnit, when non-nil, observes every device verdict as it
// lands (units run in lot order on the calling goroutine). The result is
// a pure function of the cell's content: the same CellResult bytes come
// back wherever and whenever the cell runs.
func (p *Plan) RunCell(i int, onUnit func(UnitVerdict)) (CellResult, error) {
	job := p.Cells[i]
	started := time.Now()
	sp := trace.Start(trace.Root, tnCell)
	defer sp.End()
	cell := CellResult{
		Stimulus:   job.Stimulus.Name,
		Fault:      job.Fault.Name,
		ShouldFail: job.Fault.ShouldFail,
		Units:      p.Grid.Units,
	}
	worst, haveWorst := 0.0, false
	for u := 0; u < p.Grid.Units; u++ {
		cfg := core.UnitConfig(p.base, p.spread, job.Seed, u)
		if job.Fault.Apply != nil {
			job.Fault.Apply(&cfg)
		}
		cfg, err := job.Stimulus.Configure(cfg)
		if err != nil {
			return CellResult{}, fmt.Errorf("campaign: cell %s/%s: %w", job.Stimulus.Name, job.Fault.Name, err)
		}
		rep, runErr := runUnit(cfg, sp.Ctx())
		mUnits.Inc()
		v := UnitVerdict{Stimulus: cell.Stimulus, Fault: cell.Fault, Unit: u}
		if runErr != nil {
			cell.Errors++
			cell.Rejected++ // unmeasurable units do not ship
			mErrors.Inc()
			mRejected.Inc()
			v.Err = runErr.Error()
		} else {
			v.Pass = rep.Pass
			if !rep.Pass {
				cell.Rejected++
				mRejected.Inc()
			}
			if rep.Mask != nil {
				v.HasMargin, v.MarginDB = true, rep.Mask.WorstMarginDB
				if !haveWorst || rep.Mask.WorstMarginDB < worst {
					worst, haveWorst = rep.Mask.WorstMarginDB, true
				}
			}
		}
		if onUnit != nil {
			onUnit(v)
		}
	}
	if haveWorst {
		cell.HasMargin, cell.WorstMarginDB = true, worst
	}
	cell.DetectionRate = float64(cell.Rejected) / float64(cell.Units)
	mCells.Inc()
	elapsed := time.Since(started)
	mCellSeconds.Observe(elapsed.Seconds())
	if p.OnCellDone != nil {
		p.OnCellDone(i, cell, elapsed)
	}
	return cell, nil
}

// Fold aggregates cell results into the detection matrix. Results may
// arrive in any order and from any process — Fold sorts by name, so the
// matrix bytes depend only on the result set.
func (p *Plan) Fold(cells []CellResult) *DetectionMatrix {
	out := make([]CellResult, len(cells))
	copy(out, cells)
	return p.Grid.fold(out)
}

// ShardIndices returns the cell indices shard `index` of `count` owns: the
// strided partition i % count == index over the sorted cell list. Strided
// (rather than contiguous) keeps per-shard load even when one stimulus is
// much more expensive than another. The union over all shards is exactly
// [0, len(Cells)) and the partitions are disjoint, which is what makes a
// shard merge equal the single-process run byte-for-byte.
func (p *Plan) ShardIndices(index, count int) ([]int, error) {
	if count < 1 || index < 0 || index >= count {
		return nil, fmt.Errorf("campaign: shard %d/%d invalid (want 0 <= index < count)", index, count)
	}
	var out []int
	for i := index; i < len(p.Cells); i += count {
		out = append(out, i)
	}
	return out, nil
}

// sortCellsByKey orders cells by (stimulus name, fault name) — the same
// order fold emits, so Plan.Cells, checkpoints and the matrix all agree.
func sortCellsByKey(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Stimulus.Name != cells[j].Stimulus.Name {
			return cells[i].Stimulus.Name < cells[j].Stimulus.Name
		}
		return cells[i].Fault.Name < cells[j].Fault.Name
	})
}
