package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/testkit"
)

func TestDefaultGridValid(t *testing.T) {
	if err := DefaultGrid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*Grid)
		bad    bool
	}{
		{"default", func(g *Grid) {}, false},
		{"no stimuli", func(g *Grid) { g.Stimuli = nil }, true},
		{"duplicate stimulus", func(g *Grid) { g.Stimuli = append(g.Stimuli, g.Stimuli[0]) }, true},
		{"unknown fault", func(g *Grid) { g.Faults = []string{"rust"} }, true},
		{"known faults", func(g *Grid) { g.Faults = []string{"pa-memory", "dcde-stuck"} }, false},
		{"units high", func(g *Grid) { g.Units = 5000 }, true},
		{"scale high", func(g *Grid) { g.Scale = 1.5 }, true},
		{"threshold high", func(g *Grid) { g.YieldThreshold = 1.1 }, true},
		{"invalid stimulus", func(g *Grid) { g.Stimuli[0].BurstLen = 1 }, true},
	}
	for _, c := range cases {
		g := DefaultGrid()
		c.mutate(&g)
		err := g.Validate()
		if c.bad && err == nil {
			t.Errorf("%s: expected validation error", c.label)
		}
		if !c.bad && err != nil {
			t.Errorf("%s: unexpected error: %v", c.label, err)
		}
	}
}

func TestParseGridDefaultsAndErrors(t *testing.T) {
	in := `{"Stimuli":[{"Name":"x","Constellation":"QPSK","PRBSOrder":7,"PRBSSeed":1,"BurstLen":32,"BackoffDB":0,"Mask":"wideband-qpsk-15M"}]}`
	g, err := ParseGrid([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Units != 1 || g.Scale != 1 || g.YieldThreshold != 0.5 {
		t.Errorf("defaults not applied: %+v", g)
	}
	for label, bad := range map[string]string{
		"unknown field": `{"Stimuli":[],"Workers":8}`,
		"trailing":      `{"Stimuli":[]} {}`,
		"empty":         `{"Stimuli":[]}`,
	} {
		if _, err := ParseGrid([]byte(bad)); err == nil {
			t.Errorf("%s: expected parse error", label)
		}
	}
}

// TestDefaultGridFileInSync pins testdata/default_grid.json — the file the
// README points `bistlab -campaign` users at — to DefaultGrid().
// Regenerate with -update after changing the default grid.
func TestDefaultGridFileInSync(t *testing.T) {
	testkit.Golden(t, filepath.Join("testdata", "default_grid.json"), DefaultGrid(), testkit.DefaultOptions())
}

// TestDefaultGridFileParses: the committed file must round-trip through
// ParseGrid back to the in-code grid, byte for byte.
func TestDefaultGridFileParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "default_grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseGrid(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, DefaultGrid()) {
		t.Errorf("committed grid differs from DefaultGrid():\n%+v\n%+v", g, DefaultGrid())
	}
	b1, err := g.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := DefaultGrid().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("canonical forms differ")
	}
}
