package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/testkit"
)

// Checkpoint is the durable record of a campaign's completed cells: what a
// fleet server writes periodically while a campaign runs, loads to resume
// after a restart, and what two shard processes exchange to merge their
// partitions. Because every CellResult is a pure function of its cell's
// content, a checkpoint needs no positional bookkeeping — the cell list IS
// the state, and replaying the missing cells reproduces the uninterrupted
// matrix byte for byte.
type Checkpoint struct {
	// GridHash is Plan.GridHash of the campaign the cells belong to; a
	// resume or merge against a different grid is refused.
	GridHash string
	// ShardIndex/ShardCount record the strided partition this process
	// owned (0/1 for an unsharded run).
	ShardIndex int
	ShardCount int
	// Cells are the completed cell results, sorted by (stimulus, fault).
	Cells []CellResult
}

// NewCheckpoint starts an empty checkpoint for one shard of a plan.
func NewCheckpoint(p *Plan, shardIndex, shardCount int) (*Checkpoint, error) {
	h, err := p.GridHash()
	if err != nil {
		return nil, err
	}
	if shardCount < 1 {
		shardIndex, shardCount = 0, 1
	}
	if shardIndex < 0 || shardIndex >= shardCount {
		return nil, fmt.Errorf("campaign: checkpoint shard %d/%d invalid", shardIndex, shardCount)
	}
	return &Checkpoint{GridHash: h, ShardIndex: shardIndex, ShardCount: shardCount}, nil
}

// Add records a completed cell, replacing any earlier result for the same
// (stimulus, fault) key and keeping the list sorted.
func (c *Checkpoint) Add(r CellResult) {
	for i := range c.Cells {
		if c.Cells[i].Stimulus == r.Stimulus && c.Cells[i].Fault == r.Fault {
			c.Cells[i] = r
			return
		}
	}
	c.Cells = append(c.Cells, r)
	sort.Slice(c.Cells, func(i, j int) bool {
		if c.Cells[i].Stimulus != c.Cells[j].Stimulus {
			return c.Cells[i].Stimulus < c.Cells[j].Stimulus
		}
		return c.Cells[i].Fault < c.Cells[j].Fault
	})
}

// Done reports the completed cell keys: what a resume skips.
func (c *Checkpoint) Done() map[string]CellResult {
	out := make(map[string]CellResult, len(c.Cells))
	for _, r := range c.Cells {
		out[r.Stimulus+"\x00"+r.Fault] = r
	}
	return out
}

// MarshalCanonical encodes the checkpoint as canonical JSON — the on-disk
// and over-the-wire form.
func (c *Checkpoint) MarshalCanonical() ([]byte, error) {
	return testkit.MarshalCanonical(c)
}

// ParseCheckpoint decodes a checkpoint, rejecting unknown fields (a
// corrupted or wrong file must fail loudly, not resume quietly).
func ParseCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: parse checkpoint: trailing data")
	}
	return &c, nil
}

// Validate checks the checkpoint against a plan: hash match, shard in
// range, every cell a known key with the plan's unit count. Cells from a
// foreign grid or a stale lot size cannot leak into a resumed matrix.
func (c *Checkpoint) Validate(p *Plan) error {
	h, err := p.GridHash()
	if err != nil {
		return err
	}
	if c.GridHash != h {
		return fmt.Errorf("campaign: checkpoint grid hash %s does not match plan %s", c.GridHash, h)
	}
	if c.ShardCount < 1 || c.ShardIndex < 0 || c.ShardIndex >= c.ShardCount {
		return fmt.Errorf("campaign: checkpoint shard %d/%d invalid", c.ShardIndex, c.ShardCount)
	}
	known := make(map[string]bool, len(p.Cells))
	for _, cell := range p.Cells {
		known[cell.Key()] = true
	}
	for _, r := range c.Cells {
		if !known[r.Stimulus+"\x00"+r.Fault] {
			return fmt.Errorf("campaign: checkpoint cell %s/%s not in plan", r.Stimulus, r.Fault)
		}
		if r.Units != p.Grid.Units {
			return fmt.Errorf("campaign: checkpoint cell %s/%s ran %d units, plan wants %d",
				r.Stimulus, r.Fault, r.Units, p.Grid.Units)
		}
	}
	return nil
}

// MergeCheckpoints folds shard checkpoints into the full detection matrix.
// Every plan cell must be covered exactly once across the inputs and every
// checkpoint must validate against the grid; the fold then sorts by name,
// so the merged matrix is byte-identical to the single-process run — the
// multi-process sharding contract the fleet tests pin.
func MergeCheckpoints(g Grid, cks ...*Checkpoint) (*DetectionMatrix, error) {
	p, err := NewPlan(g)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(p.Cells))
	var cells []CellResult
	for _, ck := range cks {
		if err := ck.Validate(p); err != nil {
			return nil, err
		}
		for _, r := range ck.Cells {
			key := r.Stimulus + "\x00" + r.Fault
			if seen[key] {
				return nil, fmt.Errorf("campaign: merge: cell %s/%s covered twice", r.Stimulus, r.Fault)
			}
			seen[key] = true
			cells = append(cells, r)
		}
	}
	if len(cells) != len(p.Cells) {
		return nil, fmt.Errorf("campaign: merge: %d of %d cells covered", len(cells), len(p.Cells))
	}
	return p.Fold(cells), nil
}
