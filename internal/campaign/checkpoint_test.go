package campaign

import (
	"strings"
	"testing"
)

func runPlanCells(t *testing.T, p *Plan, indices []int) []CellResult {
	t.Helper()
	var out []CellResult
	for _, i := range indices {
		r, err := p.RunCell(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

func allIndices(p *Plan) []int {
	out := make([]int, len(p.Cells))
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := planGrid()
	p, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := NewCheckpoint(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runPlanCells(t, p, allIndices(p)) {
		ck.Add(r)
	}
	b, err := ck.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := ParseCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ck2.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("checkpoint does not round-trip byte-stable")
	}
	if err := ck2.Validate(p); err != nil {
		t.Errorf("round-tripped checkpoint fails validation: %v", err)
	}
}

func TestCheckpointAddReplacesAndSorts(t *testing.T) {
	ck := &Checkpoint{GridHash: "x", ShardCount: 1}
	ck.Add(CellResult{Stimulus: "b", Fault: "f", Units: 1})
	ck.Add(CellResult{Stimulus: "a", Fault: "f", Units: 1})
	ck.Add(CellResult{Stimulus: "b", Fault: "f", Units: 1, Rejected: 1})
	if len(ck.Cells) != 2 {
		t.Fatalf("Add kept %d cells, want 2 (replacement, not append)", len(ck.Cells))
	}
	if ck.Cells[0].Stimulus != "a" || ck.Cells[1].Stimulus != "b" {
		t.Error("cells not sorted by stimulus")
	}
	if ck.Cells[1].Rejected != 1 {
		t.Error("Add did not replace the earlier result")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ParseCheckpoint([]byte(`{"GridHash":"x","Bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseCheckpoint([]byte(`{} {}`)); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestCheckpointValidateMismatches(t *testing.T) {
	p, err := NewPlan(planGrid())
	if err != nil {
		t.Fatal(err)
	}
	h, _ := p.GridHash()

	ck := &Checkpoint{GridHash: "deadbeef", ShardCount: 1}
	if err := ck.Validate(p); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Errorf("foreign grid hash accepted: %v", err)
	}
	ck = &Checkpoint{GridHash: h, ShardIndex: 3, ShardCount: 2}
	if err := ck.Validate(p); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("out-of-range shard accepted: %v", err)
	}
	ck = &Checkpoint{GridHash: h, ShardCount: 1,
		Cells: []CellResult{{Stimulus: "nope", Fault: "healthy", Units: 1}}}
	if err := ck.Validate(p); err == nil || !strings.Contains(err.Error(), "not in plan") {
		t.Errorf("foreign cell accepted: %v", err)
	}
	ck = &Checkpoint{GridHash: h, ShardCount: 1,
		Cells: []CellResult{{Stimulus: "qpsk-tiny", Fault: healthyName, Units: 99}}}
	if err := ck.Validate(p); err == nil || !strings.Contains(err.Error(), "units") {
		t.Errorf("stale unit count accepted: %v", err)
	}
}

// TestMergeCheckpointsEqualsSingleProcess pins the sharding contract at
// the library level: two shard checkpoints merge into the same bytes the
// unsharded run produces, and incomplete or overlapping coverage is
// refused.
func TestMergeCheckpointsEqualsSingleProcess(t *testing.T) {
	g := planGrid()
	want, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantB, _ := want.MarshalCanonical()

	p, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	var cks []*Checkpoint
	for idx := 0; idx < 2; idx++ {
		ids, err := p.ShardIndices(idx, 2)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := NewCheckpoint(p, idx, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range runPlanCells(t, p, ids) {
			ck.Add(r)
		}
		cks = append(cks, ck)
	}
	m, err := MergeCheckpoints(g, cks...)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := m.MarshalCanonical()
	if string(gotB) != string(wantB) {
		t.Error("merged shard matrices differ from the single-process run")
	}

	if _, err := MergeCheckpoints(g, cks[0]); err == nil {
		t.Error("merge with a missing shard accepted")
	}
	if _, err := MergeCheckpoints(g, cks[0], cks[0], cks[1]); err == nil {
		t.Error("merge with duplicate coverage accepted")
	}
}
