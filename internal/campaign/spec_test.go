package campaign

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestStimulusSpecRoundTrip: the canonical form is a fixed point of
// parse -> canonicalize, for every committed stimulus.
func TestStimulusSpecRoundTrip(t *testing.T) {
	for _, s := range DefaultGrid().Stimuli {
		b1, err := s.MarshalCanonical()
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Name, err)
		}
		parsed, err := ParseSpec(b1)
		if err != nil {
			t.Fatalf("%s: parse canonical: %v", s.Name, err)
		}
		if !reflect.DeepEqual(parsed, s) {
			t.Errorf("%s: round trip changed the spec: %+v != %+v", s.Name, parsed, s)
		}
		b2, err := parsed.MarshalCanonical()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", s.Name, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: canonical form not byte-stable:\n%s\n%s", s.Name, b1, b2)
		}
	}
}

func validSpec() StimulusSpec {
	return StimulusSpec{
		Name:          "probe",
		Constellation: "QPSK",
		PRBSOrder:     15,
		PRBSSeed:      1,
		BurstLen:      64,
		BackoffDB:     0,
		Mask:          "wideband-qpsk-15M",
	}
}

func TestStimulusSpecValidate(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*StimulusSpec)
		bad    bool
	}{
		{"valid", func(s *StimulusSpec) {}, false},
		{"empty name", func(s *StimulusSpec) { s.Name = "" }, true},
		{"unknown constellation", func(s *StimulusSpec) { s.Constellation = "128APSK" }, true},
		{"unknown prbs order", func(s *StimulusSpec) { s.PRBSOrder = 11 }, true},
		{"burst too short", func(s *StimulusSpec) { s.BurstLen = 8 }, true},
		{"burst too long", func(s *StimulusSpec) { s.BurstLen = 1 << 17 }, true},
		{"backoff nan", func(s *StimulusSpec) { s.BackoffDB = math.NaN() }, true},
		{"backoff too hot", func(s *StimulusSpec) { s.BackoffDB = -9 }, true},
		{"backoff too cold", func(s *StimulusSpec) { s.BackoffDB = 30 }, true},
		{"unknown mask", func(s *StimulusSpec) { s.Mask = "fcc-part-15" }, true},
		{"zero prbs seed ok", func(s *StimulusSpec) { s.PRBSSeed = 0 }, false},
		{"overdrive edge ok", func(s *StimulusSpec) { s.BackoffDB = -6 }, false},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(&s)
		err := s.Validate()
		if c.bad && err == nil {
			t.Errorf("%s: expected validation error", c.label)
		}
		if !c.bad && err != nil {
			t.Errorf("%s: unexpected error: %v", c.label, err)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for label, in := range map[string]string{
		"unknown field": `{"Name":"x","Constellation":"QPSK","PRBSOrder":15,"PRBSSeed":1,"BurstLen":64,"BackoffDB":0,"Mask":"wideband-qpsk-15M","Turbo":true}`,
		"trailing data": `{"Name":"x","Constellation":"QPSK","PRBSOrder":15,"PRBSSeed":1,"BurstLen":64,"BackoffDB":0,"Mask":"wideband-qpsk-15M"} {}`,
		"not an object": `[1,2,3]`,
		"invalid spec":  `{"Name":"x","Constellation":"QPSK","PRBSOrder":15,"PRBSSeed":1,"BurstLen":1,"BackoffDB":0,"Mask":"wideband-qpsk-15M"}`,
	} {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: expected parse error", label)
		}
	}
}

// TestConfigure: the stimulus overlays payload, drive and mask — and only
// those — onto the base configuration.
func TestConfigure(t *testing.T) {
	s := validSpec()
	s.BackoffDB = 3
	base := core.PaperScenario()
	base.CaptureLen = 1234
	cfg, err := s.Configure(base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CaptureLen != 1234 {
		t.Errorf("Configure touched the acquisition geometry: CaptureLen %d", cfg.CaptureLen)
	}
	if cfg.Constellation != "QPSK" || cfg.NumSymbols != 64 || len(cfg.Symbols) != 64 {
		t.Errorf("payload not applied: %s/%d/%d", cfg.Constellation, cfg.NumSymbols, len(cfg.Symbols))
	}
	want := 0.5 * math.Pow(10, -0.3)
	if math.Abs(cfg.BasebandPower-want) > 1e-12 {
		t.Errorf("backoff 3 dB: power %g, want %g", cfg.BasebandPower, want)
	}
	if cfg.Mask == nil {
		t.Error("mask not applied")
	}
	// The overlay wins over whatever a fault set before it — this ordering
	// is what lets a backed-off stimulus miss a drive-dependent fault.
	base.BasebandPower = 1.0
	cfg, err = s.Configure(base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.BasebandPower-want) > 1e-12 {
		t.Errorf("stimulus did not override the fault's drive: %g", cfg.BasebandPower)
	}
}

// TestSymbolsDeterministic: the payload depends only on the spec.
func TestSymbolsDeterministic(t *testing.T) {
	s := validSpec()
	a, err := s.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same spec produced different payloads")
	}
	s2 := s
	s2.PRBSSeed = 2
	c, err := s2.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different PRBS seeds produced identical payloads")
	}
}

func TestValidateErrorNamesStimulus(t *testing.T) {
	s := validSpec()
	s.Mask = "bogus"
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "probe") {
		t.Errorf("error should name the stimulus: %v", err)
	}
}
