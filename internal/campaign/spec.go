// Package campaign turns the paper's "flexible multistandard" claim into a
// measured number: a declarative stimulus matrix (constellation x PRBS
// polynomial/seed x burst length x power backoff x mask standard) is
// crossed with the extended fault library into a grid of (stimulus, fault,
// unit) cells, each cell runs the full BIST, and the resulting detection
// matrix reports which faults each stimulus actually catches — per-fault
// detection probability, escape rates at a yield threshold, and a
// per-stimulus coverage score. It is the software mirror of a
// register-programmable BIST pattern generator (seed, payload mode and
// word count all "register"-driven), and the workload generator a campaign
// server shards over many processes: every cell's randomness derives from
// the grid seed and the cell's content via SplitMix64, so the matrix is
// bit-reproducible at any worker count and invariant under grid row order.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/mask"
	"repro/internal/modem"
	"repro/internal/sig"
	"repro/internal/testkit"
)

// StimulusSpec declares one programmable test stimulus. The zero value is
// invalid; every field participates in canonical serialization, so two
// specs are the same stimulus exactly when their canonical JSON matches.
type StimulusSpec struct {
	// Name labels the stimulus in the detection matrix; must be unique
	// within a grid.
	Name string
	// Constellation names the payload alphabet ("BPSK", "QPSK", "8PSK",
	// "16QAM", "64QAM").
	Constellation string
	// PRBSOrder selects the payload generator polynomial (ITU-T orders 7,
	// 9, 15, 23, 31).
	PRBSOrder uint
	// PRBSSeed is the LFSR start state (0 selects the all-ones register).
	PRBSSeed uint32
	// BurstLen is the cyclic burst length in symbols.
	BurstLen int
	// BackoffDB backs the mean baseband drive off from the nominal
	// operating point in dB; negative values overdrive.
	BackoffDB float64
	// Mask names the emission-mask standard the stimulus is checked
	// against (see mask.Names).
	Mask string
}

// nominalPower is the healthy operating drive (mean |envelope|^2) that
// BackoffDB is referenced to — the paper scenario's 0.5.
const nominalPower = 0.5

// Validate checks the spec against the supported alphabets, polynomials
// and masks without building anything.
func (s StimulusSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: stimulus needs a name")
	}
	if _, err := modem.ByName(s.Constellation); err != nil {
		return fmt.Errorf("campaign: stimulus %s: %w", s.Name, err)
	}
	if _, err := sig.NewPRBS(s.PRBSOrder, s.PRBSSeed); err != nil {
		return fmt.Errorf("campaign: stimulus %s: %w", s.Name, err)
	}
	if s.BurstLen < 16 || s.BurstLen > 1<<16 {
		return fmt.Errorf("campaign: stimulus %s: burst length %d outside [16, 65536]", s.Name, s.BurstLen)
	}
	if math.IsNaN(s.BackoffDB) || math.IsInf(s.BackoffDB, 0) {
		return fmt.Errorf("campaign: stimulus %s: backoff must be finite", s.Name)
	}
	if s.BackoffDB < -6 || s.BackoffDB > 20 {
		return fmt.Errorf("campaign: stimulus %s: backoff %g dB outside [-6, 20]", s.Name, s.BackoffDB)
	}
	if _, ok := mask.ByName(s.Mask); !ok {
		return fmt.Errorf("campaign: stimulus %s: unknown mask %q", s.Name, s.Mask)
	}
	return nil
}

// Symbols expands the payload: PRBS bits mapped MSB-first onto the
// constellation, exactly BurstLen symbols.
func (s StimulusSpec) Symbols() ([]complex128, error) {
	cst, err := modem.ByName(s.Constellation)
	if err != nil {
		return nil, err
	}
	prbs, err := sig.NewPRBS(s.PRBSOrder, s.PRBSSeed)
	if err != nil {
		return nil, err
	}
	return cst.Map(prbs.Bits(s.BurstLen * cst.BitsPerSymbol()))
}

// symbolsCache memoizes the expanded clean payload per stimulus, keyed by
// the spec's canonical JSON — the same content key that seeds the cells.
// A campaign grid runs (faults x units) cells per stimulus and every cell
// used to re-run the PRBS expansion and constellation mapping; the clean
// waveform is a pure function of the spec, so it is computed once and
// shared. The stream is shared READ-ONLY: faults mutate the Config copy a
// cell builds (gain, skew, nonlinearity — never the payload), and the
// waveform generator in core treats the symbol slice as immutable.
var symbolsCache sync.Map // string (canonical spec JSON) -> []complex128

func (s StimulusSpec) cachedSymbols() ([]complex128, error) {
	canon, err := s.MarshalCanonical()
	if err != nil {
		return nil, err
	}
	if v, ok := symbolsCache.Load(string(canon)); ok {
		return v.([]complex128), nil
	}
	syms, err := s.Symbols()
	if err != nil {
		return nil, err
	}
	v, _ := symbolsCache.LoadOrStore(string(canon), syms)
	return v.([]complex128), nil
}

// Configure overlays the stimulus onto a BIST configuration: payload
// stream, drive level and mask standard. Everything else — the DUT
// impairments a fault injected, the sub-tests it enabled, the acquisition
// geometry — is left alone, which is why a campaign applies the fault
// first and the stimulus last: the stimulus controls what the DUT is
// driven with, the fault controls what the DUT is. The payload stream is
// memoized per stimulus content and shared across configurations; treat
// cfg.Symbols as read-only.
func (s StimulusSpec) Configure(base core.Config) (core.Config, error) {
	if err := s.Validate(); err != nil {
		return core.Config{}, err
	}
	syms, err := s.cachedSymbols()
	if err != nil {
		return core.Config{}, err
	}
	m, _ := mask.ByName(s.Mask)
	cfg := base
	cfg.Constellation = s.Constellation
	cfg.Symbols = syms
	cfg.NumSymbols = len(syms)
	cfg.BasebandPower = nominalPower * math.Pow(10, -s.BackoffDB/10)
	cfg.Mask = m
	return cfg, nil
}

// MarshalCanonical encodes the spec as canonical JSON (testkit encoder:
// declaration-order fields, shortest round-trip floats), the byte form the
// round-trip fuzz target pins: parse -> canonicalize -> re-parse is
// byte-stable.
func (s StimulusSpec) MarshalCanonical() ([]byte, error) {
	return testkit.MarshalCanonical(s)
}

// ParseSpec decodes and validates one stimulus spec. Unknown fields are
// rejected — a typo in a campaign file should fail loudly, not silently
// run a default.
func ParseSpec(data []byte) (StimulusSpec, error) {
	var s StimulusSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return StimulusSpec{}, fmt.Errorf("campaign: parse stimulus: %w", err)
	}
	if dec.More() {
		return StimulusSpec{}, fmt.Errorf("campaign: parse stimulus: trailing data")
	}
	if err := s.Validate(); err != nil {
		return StimulusSpec{}, err
	}
	return s, nil
}
