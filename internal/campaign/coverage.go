package campaign

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/par"
	"repro/internal/testkit"
)

var (
	mCells    = obs.C("campaign.cells")
	mUnits    = obs.C("campaign.units")
	mRejected = obs.C("campaign.rejected")
	mErrors   = obs.C("campaign.errors")
	// mCellSeconds is the fleet SLO histogram: wall-clock seconds per cell,
	// exposed to Prometheus as bist_campaign_cell_seconds. Telemetry only —
	// the duration never reaches CellResult, which stays a pure function of
	// the cell's content.
	mCellSeconds = obs.H("campaign.cell.seconds", obs.LatencyBuckets)
	tnCell       = trace.Intern("campaign.cell")
)

// healthyName labels the implicit no-fault baseline row every campaign
// carries: a stimulus that rejects healthy units is measuring itself, not
// the DUT, and its false-alarm rate shows it.
const healthyName = "healthy"

// CellResult is one (stimulus, fault) cell of the detection matrix,
// aggregated over the grid's units.
type CellResult struct {
	// Stimulus and Fault name the cell.
	Stimulus string
	Fault    string
	// ShouldFail records the catalogue expectation for the injected fault.
	ShouldFail bool
	// Units is the number of device draws simulated.
	Units int
	// Rejected counts units the BIST flagged (run errors count as
	// rejections: a unit the instrument cannot even measure is not
	// shippable).
	Rejected int
	// Errors counts units whose run failed outright instead of returning a
	// verdict.
	Errors int
	// DetectionRate is Rejected / Units.
	DetectionRate float64
	// HasMargin reports whether any unit produced a mask verdict at all;
	// WorstMarginDB is meaningful only when it is true. The split keeps a
	// genuine 0 dB worst margin (a DUT exactly on the mask) distinct from
	// "no mask verdict produced" (e.g. every unit errored out), which a
	// bare zero used to conflate.
	HasMargin bool
	// WorstMarginDB is the worst mask margin seen across units (0 when
	// HasMargin is false).
	WorstMarginDB float64
}

// FaultSummary scores one fault across every stimulus in the grid.
type FaultSummary struct {
	Fault      string
	ShouldFail bool
	// BestStimulus is the stimulus with the highest detection rate
	// (lowest name on ties).
	BestStimulus string
	// BestRate is that stimulus's detection rate.
	BestRate float64
	// EscapeRate is 1 - BestRate for ShouldFail faults: the fraction of
	// defective units the best stimulus still ships. 0 for benign faults.
	EscapeRate float64
	// Detected reports BestRate >= the grid's yield threshold (benign
	// faults: whether any stimulus false-alarms at the threshold).
	Detected bool
}

// StimulusSummary scores one stimulus across every fault.
type StimulusSummary struct {
	Stimulus string
	// Coverage is the fraction of ShouldFail faults this stimulus detects
	// at the yield threshold.
	Coverage float64
	// FalseAlarmRate is the mean rejection rate over the benign rows
	// (healthy baseline + ShouldFail=false catalogue entries).
	FalseAlarmRate float64
}

// Escape is a ShouldFail cell that shipped at least one defective unit.
type Escape struct {
	Stimulus      string
	Fault         string
	DetectionRate float64
}

// DetectionMatrix is the campaign report: canonical-JSON serializable,
// byte-identical at any worker count and invariant under permutation of
// the grid's stimulus or fault row order (everything is sorted by name and
// every cell's randomness derives from its content, not its index).
type DetectionMatrix struct {
	// Units, Scale and YieldThreshold echo the grid knobs the numbers
	// depend on.
	Units          int
	Scale          float64
	YieldThreshold float64
	// Cells is the full matrix, sorted by (stimulus, fault).
	Cells []CellResult
	// PerFault and PerStimulus are the two marginals, sorted by name.
	PerFault    []FaultSummary
	PerStimulus []StimulusSummary
	// Escapes lists every ShouldFail cell with DetectionRate < 1: the
	// stimulus/fault pairs where defective units ship.
	Escapes []Escape
	// Errors is the total failed runs across all cells.
	Errors int
}

// MarshalCanonical encodes the matrix as canonical JSON.
func (m *DetectionMatrix) MarshalCanonical() ([]byte, error) {
	return testkit.MarshalCanonical(m)
}

// cellSeed derives a cell's RNG seed from its content: FNV-1a over the
// stimulus's canonical JSON and the fault name, folded with the grid seed.
// Index-free seeding is what makes the matrix invariant under grid row
// permutation — the cell carries its randomness with it wherever it sits.
func cellSeed(gridSeed int64, specCanon []byte, fault string) int64 {
	h := fnv.New64a()
	h.Write(specCanon)
	h.Write([]byte{0})
	h.Write([]byte(fault))
	return int64(h.Sum64() ^ uint64(gridSeed))
}

// baseConfig mirrors the experiments runner's scaling: the paper scenario
// with captures, estimation grid and PSD shrunk proportionally (floored at
// the sizes below which the estimator is not credible).
func baseConfig(scale float64) core.Config {
	c := core.PaperScenario()
	c.CaptureLen = int(2200 * scale)
	if c.CaptureLen < 700 {
		c.CaptureLen = 700
	}
	c.NTimes = int(300 * scale)
	if c.NTimes < 60 {
		c.NTimes = 60
	}
	c.PSDLen = int(2048 * scale)
	if c.PSDLen < 512 {
		c.PSDLen = 512
	}
	c.SegLen = c.PSDLen / 4
	return c
}

// Run expands the grid into (stimulus, fault, unit) cells, runs every cell
// through the full BIST over the par pool, and folds the results into the
// detection matrix. It is the batch convenience over the incremental
// primitives (NewPlan / Plan.RunCell / Plan.Fold) the fleet service
// schedules cell by cell; both paths produce the same bytes because every
// cell result is a pure function of the cell's content and the fold sorts
// by name — never by worker count, arrival order or grid row order.
func (g Grid) Run() (*DetectionMatrix, error) {
	p, err := NewPlan(g)
	if err != nil {
		return nil, err
	}
	cells := make([]CellResult, len(p.Cells))
	perr := par.ForErr(len(p.Cells), func(i int) error {
		cell, err := p.RunCell(i, nil)
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	return p.Fold(cells), nil
}

// runUnit executes one device through the BIST, converting panics-by-
// construction into errors the cell accounting absorbs.
func runUnit(cfg core.Config, tc trace.Ctx) (*core.Report, error) {
	b, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return b.RunCtx(tc)
}

// fold sorts the cells and computes the two marginals and the escape list.
func (g Grid) fold(cells []CellResult) *DetectionMatrix {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Stimulus != cells[j].Stimulus {
			return cells[i].Stimulus < cells[j].Stimulus
		}
		return cells[i].Fault < cells[j].Fault
	})
	m := &DetectionMatrix{
		Units:          g.Units,
		Scale:          g.Scale,
		YieldThreshold: g.YieldThreshold,
		Cells:          cells,
	}
	byFault := map[string][]CellResult{}
	byStim := map[string][]CellResult{}
	for _, c := range cells {
		byFault[c.Fault] = append(byFault[c.Fault], c)
		byStim[c.Stimulus] = append(byStim[c.Stimulus], c)
		m.Errors += c.Errors
		if c.ShouldFail && c.DetectionRate < 1 {
			m.Escapes = append(m.Escapes, Escape{
				Stimulus:      c.Stimulus,
				Fault:         c.Fault,
				DetectionRate: c.DetectionRate,
			})
		}
	}
	faultNames := make([]string, 0, len(byFault))
	for name := range byFault {
		faultNames = append(faultNames, name)
	}
	sort.Strings(faultNames)
	for _, name := range faultNames {
		rows := byFault[name]
		fs := FaultSummary{Fault: name, ShouldFail: rows[0].ShouldFail}
		for _, c := range rows { // rows arrive sorted by stimulus: ties keep the lowest name
			if fs.BestStimulus == "" || c.DetectionRate > fs.BestRate {
				fs.BestStimulus, fs.BestRate = c.Stimulus, c.DetectionRate
			}
		}
		fs.Detected = fs.BestRate >= g.YieldThreshold
		if fs.ShouldFail {
			fs.EscapeRate = 1 - fs.BestRate
		}
		m.PerFault = append(m.PerFault, fs)
	}
	stimNames := make([]string, 0, len(byStim))
	for name := range byStim {
		stimNames = append(stimNames, name)
	}
	sort.Strings(stimNames)
	for _, name := range stimNames {
		rows := byStim[name]
		ss := StimulusSummary{Stimulus: name}
		nBad, nBenign := 0, 0
		var caught int
		var alarmSum float64
		for _, c := range rows {
			if c.ShouldFail {
				nBad++
				if c.DetectionRate >= g.YieldThreshold {
					caught++
				}
			} else {
				nBenign++
				alarmSum += c.DetectionRate
			}
		}
		if nBad > 0 {
			ss.Coverage = float64(caught) / float64(nBad)
		}
		if nBenign > 0 {
			ss.FalseAlarmRate = alarmSum / float64(nBenign)
		}
		m.PerStimulus = append(m.PerStimulus, ss)
	}
	return m
}

// Render prints the matrix for terminal consumption: the stimulus x fault
// grid of detection rates, then the marginals and the escape list.
func (m *DetectionMatrix) Render(w io.Writer) {
	fmt.Fprintf(w, "Coverage campaign — %d units/cell, scale %g, yield threshold %g\n\n",
		m.Units, m.Scale, m.YieldThreshold)
	fmt.Fprintf(w, "%-18s %-16s %6s %9s %7s %12s\n",
		"stimulus", "fault", "expect", "detected", "errors", "worst margin")
	for _, c := range m.Cells {
		expect := "pass"
		if c.ShouldFail {
			expect = "fail"
		}
		fmt.Fprintf(w, "%-18s %-16s %6s %8.0f%% %7d %+9.1f dB\n",
			c.Stimulus, c.Fault, expect, 100*c.DetectionRate, c.Errors, c.WorstMarginDB)
	}
	fmt.Fprintf(w, "\nper-fault (best stimulus):\n")
	for _, f := range m.PerFault {
		status := "DETECTED"
		if !f.Detected {
			if f.ShouldFail {
				status = "MISSED"
			} else {
				status = "clean"
			}
		} else if !f.ShouldFail {
			status = "FALSE-ALARM"
		}
		fmt.Fprintf(w, "  %-16s best=%-18s rate=%4.0f%% escape=%4.0f%%  %s\n",
			f.Fault, f.BestStimulus, 100*f.BestRate, 100*f.EscapeRate, status)
	}
	fmt.Fprintf(w, "\nper-stimulus:\n")
	for _, s := range m.PerStimulus {
		fmt.Fprintf(w, "  %-18s coverage=%4.0f%%  false-alarm=%4.0f%%\n",
			s.Stimulus, 100*s.Coverage, 100*s.FalseAlarmRate)
	}
	if len(m.Escapes) > 0 {
		fmt.Fprintf(w, "\nescapes (defective units shipped):\n")
		for _, e := range m.Escapes {
			fmt.Fprintf(w, "  %-18s x %-16s detection %4.0f%%\n", e.Stimulus, e.Fault, 100*e.DetectionRate)
		}
	}
	if m.Errors > 0 {
		fmt.Fprintf(w, "\nrun errors: %d (counted as rejections)\n", m.Errors)
	}
}
