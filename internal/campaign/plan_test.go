package campaign

import (
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/par"
)

// planGrid is the cheapest credible campaign: one short-burst stimulus
// against two catalogue faults (plus the implicit healthy row) at the
// minimum acquisition floor.
func planGrid() Grid {
	return Grid{
		Stimuli: []StimulusSpec{{
			Name:          "qpsk-tiny",
			Constellation: "QPSK",
			PRBSOrder:     7,
			PRBSSeed:      0x55,
			BurstLen:      64,
			BackoffDB:     0,
			Mask:          "wideband-qpsk-15M",
		}},
		Faults:         []string{"pa-compression", "dead-gain"},
		Units:          1,
		Seed:           42,
		Scale:          0.1,
		YieldThreshold: 0.5,
	}
}

func TestPlanCellsSortedAndKeyed(t *testing.T) {
	g := planGrid()
	p, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(p.Cells), 3; got != want { // healthy + 2 faults
		t.Fatalf("plan has %d cells, want %d", got, want)
	}
	if !sort.SliceIsSorted(p.Cells, func(i, j int) bool {
		if p.Cells[i].Stimulus.Name != p.Cells[j].Stimulus.Name {
			return p.Cells[i].Stimulus.Name < p.Cells[j].Stimulus.Name
		}
		return p.Cells[i].Fault.Name < p.Cells[j].Fault.Name
	}) {
		t.Error("plan cells not sorted by (stimulus, fault)")
	}
	seen := map[string]bool{}
	for _, c := range p.Cells {
		if seen[c.Key()] {
			t.Errorf("duplicate cell key %q", c.Key())
		}
		seen[c.Key()] = true
		if c.Seed == 0 {
			t.Errorf("cell %s has zero seed", c.Key())
		}
	}
}

func TestPlanGridHashStableAndContentSensitive(t *testing.T) {
	p1, err := NewPlan(planGrid())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(planGrid())
	if err != nil {
		t.Fatal(err)
	}
	h1, err := p1.GridHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := p2.GridHash()
	if h1 != h2 {
		t.Errorf("same grid hashed differently: %s vs %s", h1, h2)
	}
	g := planGrid()
	g.Seed++
	p3, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	if h3, _ := p3.GridHash(); h3 == h1 {
		t.Error("different grids share a hash")
	}
}

func TestShardIndicesPartition(t *testing.T) {
	p, err := NewPlan(planGrid())
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 5} {
		covered := map[int]int{}
		for idx := 0; idx < count; idx++ {
			ids, err := p.ShardIndices(idx, count)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range ids {
				covered[i]++
			}
		}
		if len(covered) != len(p.Cells) {
			t.Errorf("shards of %d cover %d cells, want %d", count, len(covered), len(p.Cells))
		}
		for i, n := range covered {
			if n != 1 {
				t.Errorf("count %d: cell %d covered %d times", count, i, n)
			}
		}
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		if _, err := p.ShardIndices(bad[0], bad[1]); err == nil {
			t.Errorf("shard %d/%d accepted", bad[0], bad[1])
		}
	}
}

// TestRunEqualsIncrementalFold pins that the batch Run and the cell-by-
// cell primitive path the fleet service uses produce byte-identical
// matrices at several worker counts.
func TestRunEqualsIncrementalFold(t *testing.T) {
	g := planGrid()
	want, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := want.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		prev := par.SetWorkers(w)
		p, err := NewPlan(g)
		if err != nil {
			par.SetWorkers(prev)
			t.Fatal(err)
		}
		var cells []CellResult
		for i := range p.Cells {
			r, err := p.RunCell(i, nil)
			if err != nil {
				par.SetWorkers(prev)
				t.Fatal(err)
			}
			cells = append(cells, r)
		}
		got, err := p.Fold(cells).MarshalCanonical()
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(wantB) {
			t.Errorf("workers=%d: incremental fold differs from Grid.Run", w)
		}
	}
}

// TestUnitVerdictObserver pins the per-unit stream: one verdict per device
// in lot order, consistent with the cell aggregate.
func TestUnitVerdictObserver(t *testing.T) {
	g := planGrid()
	g.Units = 2
	p, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []UnitVerdict
	r, err := p.RunCell(0, func(v UnitVerdict) { verdicts = append(verdicts, v) })
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != g.Units {
		t.Fatalf("observer saw %d verdicts, want %d", len(verdicts), g.Units)
	}
	rejected := 0
	for u, v := range verdicts {
		if v.Unit != u {
			t.Errorf("verdict %d carries unit %d", u, v.Unit)
		}
		if v.Stimulus != r.Stimulus || v.Fault != r.Fault {
			t.Errorf("verdict %d names %s/%s, cell is %s/%s", u, v.Stimulus, v.Fault, r.Stimulus, r.Fault)
		}
		if !v.Pass || v.Err != "" {
			rejected++
		}
	}
	if rejected != r.Rejected {
		t.Errorf("observer counted %d rejections, cell aggregate says %d", rejected, r.Rejected)
	}
}

// TestCellResultHasMargin pins the satellite bugfix: a cell where no unit
// produced a mask verdict reports HasMargin=false (not a fake 0 dB
// margin), and a normal cell reports HasMargin=true even when its worst
// margin is numerically close to 0.
func TestCellResultHasMargin(t *testing.T) {
	p, err := NewPlan(planGrid())
	if err != nil {
		t.Fatal(err)
	}

	// Normal path: the healthy cell measures a mask margin.
	var healthyIdx = -1
	for i, c := range p.Cells {
		if c.Fault.Name == healthyName {
			healthyIdx = i
		}
	}
	r, err := p.RunCell(healthyIdx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasMargin {
		t.Error("healthy cell produced no mask margin")
	}

	// Error path: a fault that breaks the configuration makes every unit
	// unmeasurable — rejected, errored, and with no mask verdict at all.
	i := healthyIdx
	p.Cells[i].Fault = core.Fault{
		Name:       "broken-config",
		ShouldFail: true,
		Apply:      func(c *core.Config) { c.Fc = -1 },
	}
	r, err = p.RunCell(i, func(v UnitVerdict) {
		if v.Err == "" {
			t.Error("unit verdict missing the run error")
		}
		if v.HasMargin {
			t.Error("unit verdict claims a margin from an errored run")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors != r.Units || r.Rejected != r.Units {
		t.Errorf("broken cell: errors=%d rejected=%d, want both = units %d", r.Errors, r.Rejected, r.Units)
	}
	if r.HasMargin {
		t.Error("cell with no mask verdicts reports HasMargin=true")
	}
	if r.WorstMarginDB != 0 {
		t.Errorf("cell with no mask verdicts carries margin %g, want 0", r.WorstMarginDB)
	}
}

// TestOnCellDoneHook pins the telemetry seam: the hook fires once per
// completed cell with the final aggregate and a positive duration, and the
// duration stays out of CellResult (which is golden-pinned).
func TestOnCellDoneHook(t *testing.T) {
	p, err := NewPlan(planGrid())
	if err != nil {
		t.Fatal(err)
	}
	type done struct {
		i       int
		result  CellResult
		elapsed time.Duration
	}
	var got []done
	p.OnCellDone = func(i int, r CellResult, elapsed time.Duration) {
		got = append(got, done{i, r, elapsed})
	}
	r, err := p.RunCell(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	if got[0].i != 1 || got[0].result != r {
		t.Errorf("hook saw (%d, %+v), cell returned %+v", got[0].i, got[0].result, r)
	}
	if got[0].elapsed <= 0 {
		t.Errorf("hook elapsed = %v, want > 0", got[0].elapsed)
	}
}
