package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/testkit"
)

// Grid declares a coverage campaign: a stimulus matrix crossed with a
// fault list over a population of simulated units. The grid is data, not
// code — it round-trips through canonical JSON, and its detection matrix
// depends only on its content (stimulus specs, fault set, units, seed,
// scale, threshold), never on row order or worker count.
type Grid struct {
	// Stimuli are the test stimuli to cross with the fault list. Names
	// must be unique.
	Stimuli []StimulusSpec
	// Faults names catalogue entries to inject (see core.ExtendedCatalog).
	// Empty means the whole extended catalogue.
	Faults []string
	// Units is the number of process-spread device draws per (stimulus,
	// fault) cell (0 = 1).
	Units int
	// Seed drives the per-unit impairment draws; cell seeds mix it with
	// the cell's content so the matrix is invariant under row order.
	Seed int64
	// Scale trades accuracy for speed exactly like the experiments runner:
	// 1 is the full paper-size acquisition, smaller shrinks captures and
	// PSDs proportionally (0 = 1).
	Scale float64
	// YieldThreshold is the detection-probability bar: a fault counts as
	// detected by a stimulus when at least this fraction of units is
	// rejected (0 = 0.5).
	YieldThreshold float64
}

// withDefaults fills the zero-value knobs.
func (g Grid) withDefaults() Grid {
	if g.Units == 0 {
		g.Units = 1
	}
	if g.Scale == 0 {
		g.Scale = 1
	}
	if g.YieldThreshold == 0 {
		g.YieldThreshold = 0.5
	}
	return g
}

// Validate checks the grid after defaulting: stimulus specs valid with
// unique names, fault names known, knobs in range.
func (g Grid) Validate() error {
	if len(g.Stimuli) == 0 {
		return fmt.Errorf("campaign: grid needs at least one stimulus")
	}
	seen := map[string]bool{}
	for _, s := range g.Stimuli {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("campaign: duplicate stimulus name %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, name := range g.Faults {
		if _, err := core.FaultByName(name); err != nil {
			return fmt.Errorf("campaign: grid: %w", err)
		}
	}
	if g.Units < 1 || g.Units > 4096 {
		return fmt.Errorf("campaign: units %d outside [1, 4096]", g.Units)
	}
	if g.Scale <= 0 || g.Scale > 1 {
		return fmt.Errorf("campaign: scale %g outside (0, 1]", g.Scale)
	}
	if g.YieldThreshold <= 0 || g.YieldThreshold > 1 {
		return fmt.Errorf("campaign: yield threshold %g outside (0, 1]", g.YieldThreshold)
	}
	return nil
}

// MarshalCanonical encodes the grid as canonical JSON.
func (g Grid) MarshalCanonical() ([]byte, error) {
	return testkit.MarshalCanonical(g)
}

// ParseGrid decodes a campaign file, applies defaults and validates.
// Unknown fields are rejected.
func ParseGrid(data []byte) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("campaign: parse grid: %w", err)
	}
	if dec.More() {
		return Grid{}, fmt.Errorf("campaign: parse grid: trailing data")
	}
	g = g.withDefaults()
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// DefaultGrid is the committed reference campaign: four stimuli spanning
// the drive/payload corners that the extended fault library is sensitive
// to, crossed with the whole catalogue.
//
//   - qpsk-nominal: the paper's operating point — catches everything a
//     single-stimulus BIST catches.
//   - qpsk-overdrive: 3 dB hot, the compression-sensitive probe.
//   - qam16-backoff6: high-PAPR payload backed off 6 dB — linearity
//     faults hide here (the documented escapes).
//   - qpsk-prbs7-short: minimal pattern generator (PRBS7, 64 symbols),
//     the cheapest stimulus a production tester would try first.
func DefaultGrid() Grid {
	return Grid{
		Stimuli: []StimulusSpec{
			{
				Name:          "qpsk-nominal",
				Constellation: "QPSK",
				PRBSOrder:     15,
				PRBSSeed:      0x2A5B,
				BurstLen:      128,
				BackoffDB:     0,
				Mask:          "wideband-qpsk-15M",
			},
			{
				Name:          "qpsk-overdrive",
				Constellation: "QPSK",
				PRBSOrder:     15,
				PRBSSeed:      0x11D7,
				BurstLen:      128,
				BackoffDB:     -3,
				Mask:          "wideband-qpsk-15M",
			},
			{
				Name:          "qam16-backoff6",
				Constellation: "16QAM",
				PRBSOrder:     23,
				PRBSSeed:      0x7FFF1,
				BurstLen:      128,
				BackoffDB:     6,
				Mask:          "wideband-qpsk-15M",
			},
			{
				Name:          "qpsk-prbs7-short",
				Constellation: "QPSK",
				PRBSOrder:     7,
				PRBSSeed:      0x55,
				BurstLen:      64,
				BackoffDB:     0,
				Mask:          "wideband-qpsk-15M",
			},
		},
		Units:          1,
		Seed:           1701,
		Scale:          1,
		YieldThreshold: 0.5,
	}.withDefaults()
}
