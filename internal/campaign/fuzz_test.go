package campaign

import (
	"bytes"
	"testing"
)

// FuzzStimulusSpecRoundTrip: for any input that parses, the canonical form
// is a fixed point — parse -> canonicalize -> re-parse -> re-canonicalize
// is byte-stable — and nothing ever panics. This is the contract the
// detection matrix's permutation invariance leans on: cell seeds hash the
// canonical bytes, so two ways of writing the same stimulus must hash
// identically.
func FuzzStimulusSpecRoundTrip(f *testing.F) {
	for _, s := range DefaultGrid().Stimuli {
		b, err := s.MarshalCanonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"Name":"b","Constellation":"BPSK","PRBSOrder":7,"PRBSSeed":0,"BurstLen":16,"BackoffDB":-6,"Mask":"narrowband-vhf-25k"}`))
	f.Add([]byte(`{"Name":"q","Constellation":"64QAM","PRBSOrder":31,"PRBSSeed":4294967295,"BurstLen":65536,"BackoffDB":20,"Mask":"wideband-ofdm-5M"}`))
	f.Add([]byte(`{"Name":"z","Constellation":"QPSK","PRBSOrder":15,"PRBSSeed":1,"BurstLen":64,"BackoffDB":1e-300,"Mask":"wideband-qpsk-15M"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // invalid inputs must error, not panic
		}
		c1, err := s.MarshalCanonical()
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %v", err)
		}
		s2, err := ParseSpec(c1)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, c1)
		}
		c2, err := s2.MarshalCanonical()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical form not a fixed point:\n%s\n%s", c1, c2)
		}
	})
}
