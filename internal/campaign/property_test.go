package campaign

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// propScale is the reduced-scale operating point the coverage properties
// are pinned at (the experiments golden uses the same scale). The
// detection physics — which stimulus catches which fault — is stable here;
// only run time shrinks.
const propScale = 0.3

var (
	propOnce   sync.Once
	propMatrix *DetectionMatrix
	propErr    error
)

// defaultMatrix runs the full default grid once and shares the matrix
// across the property tests.
func defaultMatrix(t *testing.T) *DetectionMatrix {
	t.Helper()
	propOnce.Do(func() {
		g := DefaultGrid()
		g.Scale = propScale
		propMatrix, propErr = g.Run()
	})
	if propErr != nil {
		t.Fatal(propErr)
	}
	return propMatrix
}

// TestCampaignPropertyAllFaultsDetected: the acceptance property of the
// default grid — every ShouldFail fault in the extended catalogue is
// detected by at least one stimulus at the yield threshold, and no benign
// fault (or the healthy baseline) false-alarms. This is the claim that
// makes the stimulus matrix a BIST strategy rather than a demo: the grid
// as committed covers the whole fault library.
func TestCampaignPropertyAllFaultsDetected(t *testing.T) {
	m := defaultMatrix(t)
	catalog, err := core.BuildExtendedCatalog()
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]FaultSummary{}
	for _, f := range m.PerFault {
		rates[f.Fault] = f
	}
	for _, f := range catalog {
		fs, ok := rates[f.Name]
		if !ok {
			t.Errorf("%s: missing from the detection matrix", f.Name)
			continue
		}
		if f.ShouldFail && !fs.Detected {
			t.Errorf("%s: no stimulus detects it (best %s at %.0f%%)",
				f.Name, fs.BestStimulus, 100*fs.BestRate)
		}
		if !f.ShouldFail && fs.Detected {
			t.Errorf("%s: benign fault false-alarms (%s at %.0f%%)",
				f.Name, fs.BestStimulus, 100*fs.BestRate)
		}
	}
	for _, f := range m.PerFault {
		if f.Fault == healthyName && f.BestRate > 0 {
			t.Errorf("healthy baseline rejected at %.0f%% by %s", 100*f.BestRate, f.BestStimulus)
		}
	}
}

// TestCampaignKnownEscapes pins the documented escape set: the exact
// stimulus/fault pairs where defective units ship. These are not test
// failures — they are the finding. PA nonlinearity faults produce
// third-order products that scale with the drive cubed, so the 6 dB
// backed-off 16QAM stimulus cannot see them (pa-compression's own drive
// override is undone by the stimulus overlay, by design), and the PA
// memory fault needs overdrive before its regrowth crosses the mask. A
// new escape appearing — or one of these disappearing — is a physics
// change that must be reviewed, not absorbed.
func TestCampaignKnownEscapes(t *testing.T) {
	m := defaultMatrix(t)
	want := map[[2]string]bool{
		{"qam16-backoff6", "pa-compression"}: true,
		{"qam16-backoff6", "pa-memory"}:      true,
		{"qpsk-nominal", "pa-memory"}:        true,
		{"qpsk-prbs7-short", "pa-memory"}:    true,
	}
	got := map[[2]string]bool{}
	for _, e := range m.Escapes {
		got[[2]string{e.Stimulus, e.Fault}] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("documented escape %s x %s no longer escapes", k[0], k[1])
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("undocumented escape %s x %s — review and add to the list", k[0], k[1])
		}
	}
	if len(m.Escapes) == 0 {
		t.Fatal("a coverage matrix with zero escapes is not measuring anything")
	}
}

// TestCampaignOverdriveCoversEverything: the overdriven stimulus is the
// grid's workhorse — it must cover the full ShouldFail set by itself.
func TestCampaignOverdriveCoversEverything(t *testing.T) {
	m := defaultMatrix(t)
	for _, s := range m.PerStimulus {
		if s.Stimulus == "qpsk-overdrive" {
			if s.Coverage < 1 {
				t.Errorf("qpsk-overdrive coverage %.0f%%, want 100%%", 100*s.Coverage)
			}
			if s.FalseAlarmRate > 0 {
				t.Errorf("qpsk-overdrive false-alarm rate %.0f%%", 100*s.FalseAlarmRate)
			}
			return
		}
	}
	t.Fatal("qpsk-overdrive missing from per-stimulus marginals")
}
