package campaign

import (
	"bytes"
	"testing"

	"repro/internal/par"
)

// tinyGrid is the metamorphic-test workload: two stimuli at opposite drive
// corners crossed with three faults, at the scale floor — small enough to
// run three times in a test, rich enough to exercise detections, escapes
// and the healthy baseline.
func tinyGrid() Grid {
	return Grid{
		Stimuli: []StimulusSpec{
			{
				Name:          "qpsk-hot",
				Constellation: "QPSK",
				PRBSOrder:     15,
				PRBSSeed:      0x2A5B,
				BurstLen:      128,
				BackoffDB:     -3,
				Mask:          "wideband-qpsk-15M",
			},
			{
				Name:          "qam16-cold",
				Constellation: "16QAM",
				PRBSOrder:     23,
				PRBSSeed:      0x7FFF1,
				BurstLen:      128,
				BackoffDB:     6,
				Mask:          "wideband-qpsk-15M",
			},
		},
		Faults:         []string{"pa-compression", "lo-spur-comb", "dcde-stuck"},
		Units:          1,
		Seed:           1701,
		Scale:          0.1,
		YieldThreshold: 0.5,
	}
}

func canonicalMatrix(t *testing.T, g Grid) []byte {
	t.Helper()
	m, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCampaignWorkerCountInvariance: the detection matrix is byte-identical
// at 1, 2 and 8 workers. Cell randomness derives from (grid seed, cell
// content, unit index), never from scheduling, so sharding is free.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	g := tinyGrid()
	var ref []byte
	for _, w := range []int{1, 2, 8} {
		old := par.SetWorkers(w)
		b := canonicalMatrix(t, g)
		par.SetWorkers(old)
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(ref, b) {
			t.Fatalf("workers=%d: matrix bytes differ from workers=1", w)
		}
	}
}

// TestCampaignRowOrderInvariance: permuting the grid's stimulus or fault
// row order leaves the matrix bytes unchanged — cells are seeded by
// content and the report is sorted by name (the MarshalCanonical
// contract), so a grid file is a set, not a sequence.
func TestCampaignRowOrderInvariance(t *testing.T) {
	ref := canonicalMatrix(t, tinyGrid())

	perm := tinyGrid()
	perm.Stimuli[0], perm.Stimuli[1] = perm.Stimuli[1], perm.Stimuli[0]
	perm.Faults = []string{"dcde-stuck", "pa-compression", "lo-spur-comb"}
	if got := canonicalMatrix(t, perm); !bytes.Equal(ref, got) {
		t.Fatal("permuted grid produced different matrix bytes")
	}
}

// TestCampaignSeedMatters: the grid seed must actually reach the per-unit
// draws — otherwise the invariance tests above would pass vacuously.
func TestCampaignSeedMatters(t *testing.T) {
	g := tinyGrid()
	ref := canonicalMatrix(t, g)
	g.Seed = 9999
	if bytes.Equal(ref, canonicalMatrix(t, g)) {
		t.Fatal("different grid seeds produced identical matrices")
	}
}

// TestCampaignMatrixShape: structural sanity of the fold — cell count,
// sorted order, healthy baseline present, marginals complete.
func TestCampaignMatrixShape(t *testing.T) {
	g := tinyGrid()
	m, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(g.Stimuli) * (len(g.Faults) + 1) // + healthy baseline
	if len(m.Cells) != wantCells {
		t.Fatalf("cells: got %d, want %d", len(m.Cells), wantCells)
	}
	for i := 1; i < len(m.Cells); i++ {
		a, b := m.Cells[i-1], m.Cells[i]
		if a.Stimulus > b.Stimulus || (a.Stimulus == b.Stimulus && a.Fault >= b.Fault) {
			t.Fatalf("cells not sorted at %d: %s/%s then %s/%s", i, a.Stimulus, a.Fault, b.Stimulus, b.Fault)
		}
	}
	if len(m.PerFault) != len(g.Faults)+1 || len(m.PerStimulus) != len(g.Stimuli) {
		t.Fatalf("marginals incomplete: %d faults, %d stimuli", len(m.PerFault), len(m.PerStimulus))
	}
	healthySeen := false
	for _, f := range m.PerFault {
		if f.Fault == "healthy" {
			healthySeen = true
			if f.ShouldFail {
				t.Error("healthy baseline marked ShouldFail")
			}
		}
	}
	if !healthySeen {
		t.Error("healthy baseline row missing")
	}
	for _, c := range m.Cells {
		if c.Units != g.Units {
			t.Errorf("%s/%s: units %d", c.Stimulus, c.Fault, c.Units)
		}
		if c.DetectionRate < 0 || c.DetectionRate > 1 {
			t.Errorf("%s/%s: detection rate %g out of range", c.Stimulus, c.Fault, c.DetectionRate)
		}
	}
}

// TestCampaignRejectsBadGrid: Run validates before spending any cycles.
func TestCampaignRejectsBadGrid(t *testing.T) {
	g := tinyGrid()
	g.Faults = []string{"no-such-fault"}
	if _, err := g.Run(); err == nil {
		t.Fatal("expected an unknown-fault error")
	}
	g = tinyGrid()
	g.Stimuli = nil
	if _, err := g.Run(); err == nil {
		t.Fatal("expected an empty-grid error")
	}
}
