package campaign

import (
	"runtime"
	"testing"

	"repro/internal/par"
)

// TestCampaignAllocsFlatAcrossWorkers pins the buffer-recycling contract
// end to end: once the stimulus memo, gain cache and acquisition pools are
// warm, the heap growth of one grid run must not scale with the worker
// count — widening the pool only changes how many pooled buffers are in
// flight at once, not how many are allocated per run. A regression that
// drops Release (or re-expands the stimulus per cell) shows up as a
// worker-proportional or grossly inflated byte count.
func TestCampaignAllocsFlatAcrossWorkers(t *testing.T) {
	g := tinyGrid()
	run := func() {
		if _, err := g.Run(); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(w int) uint64 {
		old := par.SetWorkers(w)
		defer par.SetWorkers(old)
		run() // warm caches and pools at this width
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		run()
		runtime.ReadMemStats(&m1)
		return m1.TotalAlloc - m0.TotalAlloc
	}
	a1 := measure(1)
	for _, w := range []int{2, 8} {
		aw := measure(w)
		// A GC between the ReadMemStats pair can drain the pools and force
		// a refill, so allow slack; the regression signature (per-cell
		// buffers reallocated every run) costs several multiples.
		if float64(aw) > 2*float64(a1)+1<<20 {
			t.Fatalf("workers=%d allocates %d bytes per run vs %d at workers=1; pooling is not holding", w, aw, a1)
		}
	}
}
