package par

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ForChunks calls fn(lo, hi) for consecutive FIXED-SIZE chunks of [0, n):
// [0,chunk), [chunk,2·chunk), ..., distributed over at most Workers()
// goroutines by work-stealing. Unlike ForRanges, whose split depends on the
// worker count, the chunk boundaries here are a pure function of (n, chunk)
// — so a caller that stores one partial result per chunk index and folds
// the partials serially in chunk order gets a total that is bit-identical
// at ANY pool size. That is the determinism contract of the fused cost
// kernel (and of any reassociated reduction built on this dispatcher).
//
// chunk <= 0 selects 256 items. The counters account one call and n tasks,
// like ForRanges: the unit of useful work is the item, not the chunk, so
// the curated metrics snapshot is unaffected by chunking choices. With one
// worker (or one chunk) the chunks run inline in order. A panic in any fn
// is re-raised in the caller after the remaining workers drain.
func ForChunks(n, chunk int, fn func(lo, hi int)) {
	mForCalls.Inc()
	mForTasks.Add(int64(n))
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 256
	}
	nc := (n + chunk - 1) / chunk
	w := Workers()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		mForInline.Inc()
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var (
		next    atomic.Int64
		abort   atomic.Bool
		panicMu sync.Mutex
		panicV  any
	)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			mActive.Add(1)
			defer mActive.Add(-1)
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
					abort.Store(true)
				}
			}()
			for !abort.Load() {
				ci := int(next.Add(1)) - 1
				if ci >= nc {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicV))
	}
}
