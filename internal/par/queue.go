package par

import (
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/eventlog"
)

// Queue instruments: submitted/completed volume plus the two gauges a
// fleet operator watches — how many jobs are parked in the buffer and how
// many workers are busy. Gauges carry high-water marks, so a snapshot
// shows peak backlog even after it drains.
var (
	mQueueJobs   = obs.C("par.queue.jobs")
	mQueueDone   = obs.C("par.queue.done")
	mQueueDepth  = obs.G("par.queue.depth")
	mQueueActive = obs.G("par.queue.active")
)

// Queue is a bounded FIFO job queue with a fixed worker pool: the
// long-running sibling of For. Where For fans out a known index range and
// returns, a Queue accepts work for the life of a service — Submit blocks
// when the buffer is full (backpressure, never unbounded memory), workers
// drain in arrival order, and Close waits for everything in flight. A
// panic in a job is recovered, counted, and reported through the optional
// OnPanic hook rather than killing the worker: one poisonous campaign
// cell must not take the fleet down.
type Queue struct {
	ch      chan func()
	wg      sync.WaitGroup
	workers int

	mu     sync.Mutex
	closed bool

	// active/done are queue-local (not obs-gated) so health sampling —
	// the fleet watchdog — sees the truth even when metrics are disabled.
	active atomic.Int64
	done   atomic.Int64

	// OnPanic, when non-nil, observes recovered job panics. Set it before
	// the first Submit; it runs on the worker goroutine.
	OnPanic func(v any)
}

// NewQueue starts a queue with the given worker count and buffer depth.
// workers <= 0 selects Workers() (the pool default, BIST_WORKERS-aware)
// and is clamped to the same cap as SetWorkers; depth <= 0 selects twice
// the worker count.
func NewQueue(workers, depth int) *Queue {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	q := &Queue{ch: make(chan func(), depth), workers: workers}
	for g := 0; g < workers; g++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for job := range q.ch {
		mQueueDepth.Add(-1)
		mQueueActive.Add(1)
		q.active.Add(1)
		q.runJob(job)
		q.active.Add(-1)
		q.done.Add(1)
		mQueueActive.Add(-1)
		mQueueDone.Inc()
	}
}

// runJob isolates the recover so the worker loop survives a panicking job.
func (q *Queue) runJob(job func()) {
	defer func() {
		if r := recover(); r != nil {
			if q.OnPanic != nil {
				q.OnPanic(r)
			} else if !eventlog.Emit("par.queue.panic", slog.String("panic", fmt.Sprint(r))) {
				// No event log installed: the report must still reach a
				// human, so fall back to raw stderr.
				fmt.Fprintf(os.Stderr, "par: queue job panic (dropped): %v\n", r)
			}
		}
	}()
	job()
}

// Workers returns the pool width the queue was started with.
func (q *Queue) Workers() int { return q.workers }

// Depth returns the number of jobs currently buffered (not yet picked up
// by a worker).
func (q *Queue) Depth() int { return len(q.ch) }

// Cap returns the buffer capacity: Depth() == Cap() means Submit blocks.
func (q *Queue) Cap() int { return cap(q.ch) }

// Active returns the number of jobs currently executing on workers.
func (q *Queue) Active() int64 { return q.active.Load() }

// Done returns the total number of jobs completed (including panicked
// ones) since the queue started. Monotonic — a watchdog compares two
// readings to decide whether the pool is making progress.
func (q *Queue) Done() int64 { return q.done.Load() }

// Submit enqueues a job, blocking while the buffer is full. It returns
// false (dropping the job) once Close has been called.
func (q *Queue) Submit(job func()) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	// The channel send happens under the lock so Close can never close the
	// channel between the check and the send; a Submit blocked on a full
	// buffer holds the lock, which makes Close wait for it — accepted work
	// is never dropped. The buffer provides the concurrency.
	mQueueJobs.Inc()
	mQueueDepth.Add(1)
	q.ch <- job
	q.mu.Unlock()
	return true
}

// Close stops accepting jobs and waits until every submitted job has
// finished. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()
	q.wg.Wait()
}
