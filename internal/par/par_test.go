package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersBounds(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("override not honoured: Workers() = %d", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("default restore broken: Workers() = %d", Workers())
	}
	SetWorkers(1 << 30)
	if Workers() != maxWorkers {
		t.Fatalf("cap not applied: Workers() = %d", Workers())
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		prev := SetWorkers(w)
		got := Map(100, func(i int) int { return i * i })
		SetWorkers(prev)
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestForPoolSizeOneRunsInline(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	// Inline execution must preserve iteration order exactly.
	var order []int
	For(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order broken: %v", order)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	const n = 1000
	var counts [n]int64
	For(n, func(i int) { atomic.AddInt64(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		prev := SetWorkers(w)
		func() {
			defer SetWorkers(prev)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", w)
				}
				if w > 1 && !strings.Contains(fmt.Sprint(r), "boom") {
					t.Fatalf("workers=%d: panic value lost: %v", w, r)
				}
			}()
			For(50, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	err := ForErr(100, func(i int) error {
		if i == 80 || i == 17 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 17" {
		t.Fatalf("got %v, want the index-17 error", err)
	}
	if err := ForErr(10, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMapErr(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	want := errors.New("nope")
	if _, err := MapErr(20, func(i int) (int, error) {
		if i == 5 {
			return 0, want
		}
		return i, nil
	}); !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
	out, err := MapErr(20, func(i int) (int, error) { return 2 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	calls := 0
	For(0, func(int) { calls++ })
	For(-3, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("fn called %d times for empty ranges", calls)
	}
}
