package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs/trace"
)

func TestForCtxDisabledMatchesFor(t *testing.T) {
	if trace.Enabled() {
		t.Fatal("a recording is active")
	}
	var sum atomic.Int64
	ForCtx(trace.Root, 100, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
}

func TestForCtxTracedCoversAllIndicesOnWorkerRows(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	if err := trace.StartRecording(trace.Config{}); err != nil {
		t.Fatal(err)
	}
	defer trace.StopRecording()
	seen := make([]atomic.Bool, 64)
	root := trace.Start(trace.Root, trace.Intern("test.dispatch"))
	ForCtx(root.Ctx(), len(seen), func(i int) { seen[i].Store(true) })
	root.End()
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d never ran", i)
		}
	}
	rec := trace.StopRecording()
	var workers, tasks int
	workerTracks := map[int32]bool{}
	for _, s := range rec.Spans {
		switch s.Name {
		case "par.worker":
			workers++
			workerTracks[s.Track] = true
			if got := rec.Tracks[s.Track]; !strings.HasPrefix(got, "par.worker.") {
				t.Errorf("worker span on track %q, want par.worker.NN", got)
			}
		case "par.task":
			tasks++
		}
	}
	if tasks != len(seen) {
		t.Errorf("recorded %d par.task spans, want %d", tasks, len(seen))
	}
	if workers < 1 || workers > 4 {
		t.Errorf("recorded %d par.worker spans, want 1..4", workers)
	}
	if len(workerTracks) != workers {
		t.Errorf("%d worker spans share %d tracks, want one row each", workers, len(workerTracks))
	}
}

func TestForCtxTracedPanicPropagates(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	if err := trace.StartRecording(trace.Config{}); err != nil {
		t.Fatal(err)
	}
	defer trace.StopRecording()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not re-raised")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Errorf("panic value %v", r)
		}
	}()
	ForCtx(trace.Root, 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestMapErrCtx(t *testing.T) {
	out, err := MapErrCtx(trace.Root, 5, func(_ trace.Ctx, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
	sentinel := errors.New("bad")
	if _, err := MapErrCtx(trace.Root, 5, func(_ trace.Ctx, i int) (int, error) {
		if i >= 2 {
			return 0, sentinel
		}
		return i, nil
	}); !errors.Is(err, sentinel) {
		t.Errorf("error not propagated: %v", err)
	}
}
