package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestStreamCoversEveryIndexInOrder(t *testing.T) {
	for _, tc := range []struct{ n, chunk, depth int }{
		{100, 7, 1}, {100, 0, 0}, {5, 100, 3}, {256, 256, 2}, {1, 1, 1},
	} {
		var produced, consumed []int
		Stream(tc.n, tc.chunk, tc.depth,
			func(lo, hi int) {
				for i := lo; i < hi; i++ {
					produced = append(produced, i)
				}
			},
			func(lo, hi int) {
				for i := lo; i < hi; i++ {
					consumed = append(consumed, i)
				}
			})
		if len(produced) != tc.n || len(consumed) != tc.n {
			t.Fatalf("n=%d chunk=%d: produced %d consumed %d", tc.n, tc.chunk,
				len(produced), len(consumed))
		}
		for i := 0; i < tc.n; i++ {
			if produced[i] != i || consumed[i] != i {
				t.Fatalf("n=%d chunk=%d: out of order at %d: produced %d consumed %d",
					tc.n, tc.chunk, i, produced[i], consumed[i])
			}
		}
	}
}

func TestStreamConsumerSeesOnlyProducedChunks(t *testing.T) {
	// The consumer must never run ahead of the producer: every index it
	// touches has already been written by stage 1.
	n := 10_000
	vals := make([]int64, n)
	var bad atomic.Int64
	Stream(n, 64, 2,
		func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.StoreInt64(&vals[i], int64(i)+1)
			}
		},
		func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if atomic.LoadInt64(&vals[i]) != int64(i)+1 {
					bad.Add(1)
				}
			}
		})
	if bad.Load() != 0 {
		t.Fatalf("consumer observed %d unproduced indices", bad.Load())
	}
}

func TestStreamZeroAndNegativeN(t *testing.T) {
	called := false
	Stream(0, 4, 2, func(lo, hi int) { called = true }, func(lo, hi int) { called = true })
	Stream(-5, 4, 2, func(lo, hi int) { called = true }, func(lo, hi int) { called = true })
	if called {
		t.Fatal("stages ran for n <= 0")
	}
}

func TestStreamProducerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom-produce") {
			t.Fatalf("recover: %v", r)
		}
	}()
	Stream(100, 8, 2,
		func(lo, hi int) {
			if lo >= 16 {
				panic("boom-produce")
			}
		},
		func(lo, hi int) {})
}

func TestStreamConsumerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom-consume") {
			t.Fatalf("recover: %v", r)
		}
	}()
	Stream(100, 8, 1,
		func(lo, hi int) {},
		func(lo, hi int) {
			if lo >= 16 {
				panic("boom-consume")
			}
		})
}
