// Package par is the repository's bounded parallel-execution layer: a
// worker-count-capped fan-out with deterministic result ordering, used by
// the skew/pnbs hot path (dual-rate cost, reconstruction instants) and by
// every experiment runner with independent sweep points, traces, or units.
//
// Determinism contract: For/Map/MapErr assign results by index, so the
// output of a call never depends on goroutine scheduling or on the worker
// count. Callers that reduce (e.g. the cost function's mean square) write
// per-index partials and fold them serially in index order, which keeps
// results bit-identical at any pool size — the property the differential
// tests in skew and pnbs assert.
package par

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool instruments: dispatch volume plus live/peak worker occupancy. The
// gauge moves once per spawned worker goroutine (not per item), so the
// per-item fan-out cost is untouched; inline runs are counted separately
// so "how often did the pool degenerate to serial" is visible.
var (
	mForCalls  = obs.C("par.for.calls")
	mForTasks  = obs.C("par.for.tasks")
	mForInline = obs.C("par.for.inline")
	mActive    = obs.G("par.workers.active")
)

// workerOverride holds the SetWorkers value; 0 means "use the default".
var workerOverride atomic.Int64

func init() {
	// BIST_WORKERS overrides the pool width for the whole process without a
	// code change (ops knob; GOMAXPROCS still bounds real parallelism).
	if s := os.Getenv("BIST_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			workerOverride.Store(int64(n))
		}
	}
}

// maxWorkers is a sanity cap on explicit overrides: far above any real
// machine, low enough to keep a typo from spawning millions of goroutines.
const maxWorkers = 1024

// Workers returns the pool width used by For/Map: the SetWorkers (or
// BIST_WORKERS) override if present, else min(GOMAXPROCS, NumCPU).
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkers overrides the pool width and returns the previous override
// (0 if the default was active). n <= 0 restores the default; n is capped
// at 1024. Values above GOMAXPROCS add concurrency but not parallelism,
// which is exactly what the race-detector tests use on small machines.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	return int(workerOverride.Swap(int64(n)))
}

// For calls fn(i) for every i in [0, n) across at most Workers()
// goroutines and returns when all calls complete. With one worker (or one
// item) it runs inline with no goroutine overhead. A panic in any fn is
// re-raised in the caller after the remaining workers drain.
func For(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	mForCalls.Inc()
	mForTasks.Add(int64(n))
	if w <= 1 {
		mForInline.Inc()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		abort   atomic.Bool
		panicMu sync.Mutex
		panicV  any
	)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			mActive.Add(1)
			defer mActive.Add(-1)
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
					abort.Store(true)
				}
			}()
			for !abort.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicV))
	}
}

// ForErr calls fn(i) for every i in [0, n) on the pool and returns the
// error of the lowest-index failing call (deterministic regardless of
// scheduling), or nil if all succeed.
func ForErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map evaluates fn over [0, n) on the pool and returns the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr evaluates fn over [0, n) on the pool. It returns the results in
// index order, or the error of the lowest-index failing call.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
