// Package par is the repository's bounded parallel-execution layer: a
// worker-count-capped fan-out with deterministic result ordering, used by
// the skew/pnbs hot path (dual-rate cost, reconstruction instants) and by
// every experiment runner with independent sweep points, traces, or units.
//
// Determinism contract: For/Map/MapErr assign results by index, so the
// output of a call never depends on goroutine scheduling or on the worker
// count. Callers that reduce (e.g. the cost function's mean square) write
// per-index partials and fold them serially in index order, which keeps
// results bit-identical at any pool size — the property the differential
// tests in skew and pnbs assert.
package par

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Pool instruments: dispatch volume plus live/peak worker occupancy. The
// gauge moves once per spawned worker goroutine (not per item), so the
// per-item fan-out cost is untouched; inline runs are counted separately
// so "how often did the pool degenerate to serial" is visible.
var (
	mForCalls  = obs.C("par.for.calls")
	mForTasks  = obs.C("par.for.tasks")
	mForInline = obs.C("par.for.inline")
	mActive    = obs.G("par.workers.active")
	// Stream instruments: pipeline activations and chunk hand-offs. These
	// are deliberately separate counters from par.for.* so the curated
	// deterministic metrics snapshot is unaffected by how a stage is
	// chunked.
	mStreamCalls  = obs.C("par.stream.calls")
	mStreamChunks = obs.C("par.stream.chunks")
)

// workerOverride holds the SetWorkers value; 0 means "use the default".
var workerOverride atomic.Int64

func init() {
	// BIST_WORKERS overrides the pool width for the whole process without a
	// code change (ops knob; GOMAXPROCS still bounds real parallelism).
	if s := os.Getenv("BIST_WORKERS"); s != "" {
		n, warn := parseWorkersEnv(s)
		if warn != "" {
			fmt.Fprintln(os.Stderr, "par: BIST_WORKERS:", warn)
		}
		if n > 0 {
			workerOverride.Store(int64(n))
		}
	}
}

// parseWorkersEnv interprets a BIST_WORKERS value under the same cap that
// SetWorkers enforces. It returns the override to apply (0 = leave the
// default active) and a warning for values that are unparseable or out of
// range — the env path must not silently accept what the API would reject,
// and must not silently ignore what the operator clearly meant as a knob.
func parseWorkersEnv(s string) (n int, warn string) {
	v, err := strconv.Atoi(s)
	switch {
	case err != nil:
		return 0, fmt.Sprintf("unparseable value %q ignored (want an integer)", s)
	case v <= 0:
		return 0, fmt.Sprintf("non-positive value %d ignored (using the default of min(GOMAXPROCS, NumCPU))", v)
	case v > maxWorkers:
		return maxWorkers, fmt.Sprintf("value %d above the %d cap, clamped", v, maxWorkers)
	}
	return v, ""
}

// maxWorkers is a sanity cap on explicit overrides: far above any real
// machine, low enough to keep a typo from spawning millions of goroutines.
// Both SetWorkers and the BIST_WORKERS env path enforce it.
const maxWorkers = 1024

// Workers returns the pool width used by For/Map: the SetWorkers (or
// BIST_WORKERS) override if present, else min(GOMAXPROCS, NumCPU).
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkers overrides the pool width and returns the previous override
// (0 if the default was active). n <= 0 restores the default; n is capped
// at 1024. Values above GOMAXPROCS add concurrency but not parallelism,
// which is exactly what the race-detector tests use on small machines.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	return int(workerOverride.Swap(int64(n)))
}

// For calls fn(i) for every i in [0, n) across at most Workers()
// goroutines and returns when all calls complete. With one worker (or one
// item) it runs inline with no goroutine overhead. A panic in any fn is
// re-raised in the caller after the remaining workers drain.
func For(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	mForCalls.Inc()
	mForTasks.Add(int64(n))
	if w <= 1 {
		mForInline.Inc()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		abort   atomic.Bool
		panicMu sync.Mutex
		panicV  any
	)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			mActive.Add(1)
			defer mActive.Add(-1)
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
					abort.Store(true)
				}
			}()
			for !abort.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicV))
	}
}

// Trace span names, interned once. Worker spans land on shared named
// display tracks ("par.worker.NN"), so a Perfetto capture shows one row per
// pool slot with the tasks that ran on it stacked beneath.
var (
	tnWorker = trace.Intern("par.worker")
	tnTask   = trace.Intern("par.task")
)

// ForCtx is For with trace attribution: while a recording is active each
// pool slot runs under a "par.worker" span on its own display row and each
// item under a "par.task" child span carrying its index. With tracing
// disabled it is exactly For — same pool, same counters, no added
// allocations — so hot paths can adopt it without a benchmark penalty.
//
// Task-to-worker assignment is scheduling-dependent, which is why par.*
// spans are excluded from the normalized (golden-pinned) trace form and
// exist only for the timeline view.
func ForCtx(tc trace.Ctx, n int, fn func(i int)) {
	if !trace.Enabled() {
		For(n, fn)
		return
	}
	forTraced(tc, n, func(_ trace.Ctx, i int) { fn(i) })
}

// forTraced mirrors For's pool loop with span instrumentation; fn receives
// the "par.task" span's context so callees can nest their own spans on the
// worker's display row. It is a separate body (rather than a hook inside
// For) so the untraced path keeps its exact allocation profile.
func forTraced(tc trace.Ctx, n int, fn func(taskCtx trace.Ctx, i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	mForCalls.Inc()
	mForTasks.Add(int64(n))
	runTask := func(wc trace.Ctx, i int) {
		sp := trace.Start(wc, tnTask)
		sp.SetInt("i", int64(i))
		defer sp.End()
		fn(sp.Ctx(), i)
	}
	if w <= 1 {
		mForInline.Inc()
		ws := trace.StartOnTrack("par.worker.00", tc, tnWorker)
		wc := ws.Ctx()
		for i := 0; i < n; i++ {
			runTask(wc, i)
		}
		ws.End()
		return
	}
	var (
		next    atomic.Int64
		abort   atomic.Bool
		panicMu sync.Mutex
		panicV  any
	)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(slot int) {
			mActive.Add(1)
			defer mActive.Add(-1)
			defer wg.Done()
			ws := trace.StartOnTrack(fmt.Sprintf("par.worker.%02d", slot), tc, tnWorker)
			defer ws.End()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
					abort.Store(true)
				}
			}()
			wc := ws.Ctx()
			for !abort.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runTask(wc, i)
			}
		}(g)
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicV))
	}
}

// MapErrCtx is MapErr with trace attribution (see ForCtx). fn receives the
// item's "par.task" span context — Root while tracing is disabled — so
// traced callees nest under the worker row that actually ran them.
func MapErrCtx[T any](tc trace.Ctx, n int, fn func(taskCtx trace.Ctx, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if !trace.Enabled() {
		For(n, func(i int) { out[i], errs[i] = fn(trace.Root, i) })
	} else {
		forTraced(tc, n, func(taskCtx trace.Ctx, i int) { out[i], errs[i] = fn(taskCtx, i) })
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForErr calls fn(i) for every i in [0, n) on the pool and returns the
// error of the lowest-index failing call (deterministic regardless of
// scheduling), or nil if all succeed.
func ForErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map evaluates fn over [0, n) on the pool and returns the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}

// splitRanges partitions [0, n) into at most w contiguous ranges of
// near-equal length (the first n%w ranges are one longer). The split is a
// pure function of (n, w), so a blocked dispatch is deterministic for a
// fixed worker count; callers needing worker-count invariance must make
// each range's RESULT independent of the split, which is exactly what the
// blocked reconstruction kernel guarantees (per-index outputs, serial
// index-order fold).
func splitRanges(n, w int) [][2]int {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	base, rem := n/w, n%w
	out := make([][2]int, 0, w)
	lo := 0
	for g := 0; g < w; g++ {
		hi := lo + base
		if g < rem {
			hi++
		}
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
		lo = hi
	}
	return out
}

// ForRanges calls fn(lo, hi) for a set of contiguous ranges that exactly
// cover [0, n), using at most Workers() goroutines (one range per pool
// slot). It is the blocked-dispatch sibling of For: the counters account
// the same work volume as For(n, ...) — one call, n tasks — because the
// unit of useful work is the item, not the block. With one worker (or one
// item) the single range runs inline. A panic in any fn is re-raised in
// the caller after the remaining workers drain.
func ForRanges(n int, fn func(lo, hi int)) {
	mForCalls.Inc()
	mForTasks.Add(int64(n))
	if n <= 0 {
		return
	}
	ranges := splitRanges(n, Workers())
	if len(ranges) <= 1 {
		mForInline.Inc()
		fn(0, n)
		return
	}
	var (
		panicMu sync.Mutex
		panicV  any
	)
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			mActive.Add(1)
			defer mActive.Add(-1)
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			fn(lo, hi)
		}(rg[0], rg[1])
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicV))
	}
}

// ForRangesCtx is ForRanges with trace attribution: each pool slot runs
// under a "par.worker" span on its own display row and each range under a
// "par.task" child span carrying its bounds. With tracing disabled it is
// exactly ForRanges. Like all par.* spans, these are excluded from the
// normalized golden trace form (assignment is scheduling-dependent).
func ForRangesCtx(tc trace.Ctx, n int, fn func(lo, hi int)) {
	if !trace.Enabled() {
		ForRanges(n, fn)
		return
	}
	mForCalls.Inc()
	mForTasks.Add(int64(n))
	if n <= 0 {
		return
	}
	runRange := func(wc trace.Ctx, lo, hi int) {
		sp := trace.Start(wc, tnTask)
		sp.SetInt("lo", int64(lo))
		sp.SetInt("hi", int64(hi))
		defer sp.End()
		fn(lo, hi)
	}
	ranges := splitRanges(n, Workers())
	if len(ranges) <= 1 {
		mForInline.Inc()
		ws := trace.StartOnTrack("par.worker.00", tc, tnWorker)
		runRange(ws.Ctx(), 0, n)
		ws.End()
		return
	}
	var (
		panicMu sync.Mutex
		panicV  any
	)
	var wg sync.WaitGroup
	for slot, rg := range ranges {
		wg.Add(1)
		go func(slot, lo, hi int) {
			mActive.Add(1)
			defer mActive.Add(-1)
			defer wg.Done()
			ws := trace.StartOnTrack(fmt.Sprintf("par.worker.%02d", slot), tc, tnWorker)
			defer ws.End()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			runRange(ws.Ctx(), lo, hi)
		}(slot, rg[0], rg[1])
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicV))
	}
}

// Stream drives a bounded two-stage pipeline over [0, n): produce(lo, hi)
// runs on the calling goroutine in ascending index order — stage 1 keeps
// ownership of any sequential state, such as an ADC jitter RNG stream —
// and every completed chunk is handed through a channel of capacity depth
// to a single consumer goroutine that runs consume(lo, hi) strictly in the
// same order (stage 2). The two stages therefore overlap on chunk
// boundaries while each stage still observes exactly the serial order, so
// any computation whose per-index results are independent of chunking is
// bit-identical to the barrier formulation at every (chunk, depth)
// setting; that is the determinism contract the streaming tests pin.
//
// chunk <= 0 selects 256 items, depth <= 0 a two-chunk buffer. n <= 0 is a
// no-op. Panics in either stage propagate to the caller after the pipeline
// drains (the consumer never blocks the producer on failure).
func Stream(n, chunk, depth int, produce, consume func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 256
	}
	if depth <= 0 {
		depth = 2
	}
	mStreamCalls.Inc()
	ch := make(chan [2]int, depth)
	done := make(chan struct{})
	var consPanic any
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				consPanic = r
				for range ch { // keep draining so the producer never blocks
				}
			}
		}()
		for rg := range ch {
			consume(rg[0], rg[1])
		}
	}()
	func() {
		defer func() {
			close(ch)
			<-done
		}()
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			produce(lo, hi)
			mStreamChunks.Inc()
			ch <- [2]int{lo, hi}
		}
	}()
	if consPanic != nil {
		panic(fmt.Sprintf("par: stream consumer panic: %v", consPanic))
	}
}

// MapErr evaluates fn over [0, n) on the pool. It returns the results in
// index order, or the error of the lowest-index failing call.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
