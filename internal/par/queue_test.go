package par

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParseWorkersEnv pins the env-override contract: valid values apply,
// values above the cap clamp with a warning, and garbage or non-positive
// values warn and leave the default active — never a silent ignore, never
// an uncapped override.
func TestParseWorkersEnv(t *testing.T) {
	cases := []struct {
		in       string
		want     int
		wantWarn string // substring; "" = no warning
	}{
		{"1", 1, ""},
		{"8", 8, ""},
		{"1024", 1024, ""},
		{"1025", 1024, "clamped"},
		{"999999999", 1024, "clamped"},
		{"0", 0, "non-positive"},
		{"-3", 0, "non-positive"},
		{"eight", 0, "unparseable"},
		{"8.5", 0, "unparseable"},
		{"", 0, "unparseable"}, // init never passes "", but the parser must not crash
		{"0x10", 0, "unparseable"},
	}
	for _, tc := range cases {
		n, warn := parseWorkersEnv(tc.in)
		if n != tc.want {
			t.Errorf("parseWorkersEnv(%q) = %d, want %d", tc.in, n, tc.want)
		}
		if tc.wantWarn == "" && warn != "" {
			t.Errorf("parseWorkersEnv(%q) unexpected warning %q", tc.in, warn)
		}
		if tc.wantWarn != "" && !strings.Contains(warn, tc.wantWarn) {
			t.Errorf("parseWorkersEnv(%q) warning %q does not mention %q", tc.in, warn, tc.wantWarn)
		}
	}
}

// TestSetWorkersCap pins that the API path enforces the same cap as the
// env path.
func TestSetWorkersCap(t *testing.T) {
	prev := SetWorkers(maxWorkers + 500)
	defer SetWorkers(prev)
	if got := Workers(); got != maxWorkers {
		t.Errorf("Workers() after over-cap SetWorkers = %d, want %d", got, maxWorkers)
	}
}

func TestQueueRunsEverything(t *testing.T) {
	q := NewQueue(4, 2)
	var sum atomic.Int64
	const n = 100
	for i := 1; i <= n; i++ {
		i := i
		if !q.Submit(func() { sum.Add(int64(i)) }) {
			t.Fatalf("Submit %d refused before Close", i)
		}
	}
	q.Close()
	if got, want := sum.Load(), int64(n*(n+1)/2); got != want {
		t.Errorf("sum after Close = %d, want %d", got, want)
	}
}

func TestQueueSubmitAfterCloseRefused(t *testing.T) {
	q := NewQueue(1, 1)
	q.Close()
	if q.Submit(func() { t.Error("job ran after Close") }) {
		t.Error("Submit accepted after Close")
	}
	q.Close() // idempotent
}

func TestQueueBackpressureBlocksNotDrops(t *testing.T) {
	// One worker, one slot: with the worker held, the third Submit must
	// block (backpressure) rather than drop, and every job must still run.
	q := NewQueue(1, 1)
	release := make(chan struct{})
	var ran atomic.Int64
	q.Submit(func() { <-release; ran.Add(1) }) // occupies the worker
	q.Submit(func() { ran.Add(1) })            // occupies the buffer

	done := make(chan struct{})
	go func() {
		q.Submit(func() { ran.Add(1) })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Submit returned with the buffer full and the worker held")
	default:
	}
	close(release)
	<-done
	q.Close()
	if got := ran.Load(); got != 3 {
		t.Errorf("ran %d jobs, want 3", got)
	}
}

func TestQueuePanicIsolated(t *testing.T) {
	var caught atomic.Value
	q := NewQueue(1, 1)
	q.OnPanic = func(v any) { caught.Store(v) }
	q.Submit(func() { panic("poison cell") })
	var ok atomic.Bool
	q.Submit(func() { ok.Store(true) }) // the worker must survive
	q.Close()
	if got := caught.Load(); got != "poison cell" {
		t.Errorf("OnPanic saw %v, want poison cell", got)
	}
	if !ok.Load() {
		t.Error("job after a panicking job did not run")
	}
}

func TestQueueConcurrentSubmitters(t *testing.T) {
	q := NewQueue(8, 4)
	var sum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q.Submit(func() { sum.Add(1) })
			}
		}()
	}
	wg.Wait()
	q.Close()
	if got := sum.Load(); got != 400 {
		t.Errorf("sum = %d, want 400", got)
	}
}
