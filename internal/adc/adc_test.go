package adc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/sig"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Bits: -1}); err == nil {
		t.Error("negative bits must fail")
	}
	if _, err := New(Config{Bits: 31}); err == nil {
		t.Error("too many bits must fail")
	}
	if _, err := New(Config{Bits: 10}); err == nil {
		t.Error("missing full scale must fail")
	}
	if _, err := New(Config{JitterRMS: -1}); err == nil {
		t.Error("negative jitter must fail")
	}
	if _, err := New(Config{NoiseRMS: -1}); err == nil {
		t.Error("negative noise must fail")
	}
	a, err := New(Config{Bits: 10, FullScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().Gain != 1 {
		t.Error("gain default")
	}
}

func TestQuantizeStepAndClip(t *testing.T) {
	a, _ := New(Config{Bits: 3, FullScale: 1}) // LSB = 0.25
	if a.LSB() != 0.25 {
		t.Fatalf("LSB %g", a.LSB())
	}
	// Mid-rise: 0 maps to +LSB/2.
	if got := a.Quantize(0); got != 0.125 {
		t.Errorf("Quantize(0) = %g", got)
	}
	if got := a.Quantize(0.3); got != 0.375 {
		t.Errorf("Quantize(0.3) = %g", got)
	}
	// Clipping at the rails.
	if got := a.Quantize(5); got != 0.875 {
		t.Errorf("positive clip %g", got)
	}
	if got := a.Quantize(-5); got != -0.875 {
		t.Errorf("negative clip %g", got)
	}
}

func TestQuantizeErrorBoundedProperty(t *testing.T) {
	a, _ := New(Config{Bits: 10, FullScale: 1})
	lsb := a.LSB()
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 0.99) // stay inside the rails
		q := a.Quantize(v)
		return math.Abs(q-v) <= lsb/2+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIdealADCPassesThrough(t *testing.T) {
	a, _ := New(Config{})
	if a.Quantize(0.123456) != 0.123456 {
		t.Error("ideal ADC must not quantize")
	}
	if a.LSB() != 0 || a.SNRIdealDB() != 400 {
		t.Error("ideal ADC conventions")
	}
}

func TestQuantizationSNRCloseToIdeal(t *testing.T) {
	// A full-scale sine through a 10-bit quantizer should achieve ~61.96 dB.
	a, _ := New(Config{Bits: 10, FullScale: 1})
	n := 1 << 14
	fsr := 0.99
	errs := make([]float64, n)
	sigs := make([]float64, n)
	for i := range errs {
		v := fsr * math.Sin(2*math.Pi*0.01234567*float64(i))
		q := a.Quantize(v)
		errs[i] = q - v
		sigs[i] = v
	}
	snr := 20 * math.Log10(dsp.RMS(sigs)/dsp.RMS(errs))
	if math.Abs(snr-a.SNRIdealDB()) > 1.5 {
		t.Errorf("measured SNR %g dB vs ideal %g dB", snr, a.SNRIdealDB())
	}
}

func TestSampleAppliesGainOffsetNoise(t *testing.T) {
	a, _ := New(Config{Gain: 2, Offset: 0.5, Seed: 1})
	x := sig.SignalFunc(func(t float64) float64 { return 1 })
	got := a.Sample(x, []float64{0, 1e-9})
	for _, v := range got {
		if v != 2.5 {
			t.Errorf("sample %g, want 2.5", v)
		}
	}
	b, _ := New(Config{NoiseRMS: 0.1, Seed: 2})
	ys := b.Sample(x, make([]float64, 4096))
	dev := 0.0
	for _, v := range ys {
		dev += (v - 1) * (v - 1)
	}
	dev = math.Sqrt(dev / float64(len(ys)))
	if math.Abs(dev-0.1) > 0.01 {
		t.Errorf("noise rms %g, want 0.1", dev)
	}
}

func TestSampleJitterConvertsSlopeToNoise(t *testing.T) {
	// For a sinusoid of frequency f, jitter sigma_t produces amplitude noise
	// of rms A*2*pi*f*sigma_t/sqrt(2).
	jit := 3e-12
	f0 := 1e9
	a, _ := New(Config{JitterRMS: jit, Seed: 3})
	tone := &sig.Tone{Amp: 1, Freq: f0}
	n := 8192
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i) * 1.111e-8 // incommensurate with the carrier
	}
	got := a.Sample(tone, ts)
	ideal := sig.SampleAt(tone, ts)
	errRMS := 0.0
	for i := range got {
		d := got[i] - ideal[i]
		errRMS += d * d
	}
	errRMS = math.Sqrt(errRMS / float64(n))
	want := 2 * math.Pi * f0 * jit / math.Sqrt2
	if errRMS < want/2 || errRMS > want*2 {
		t.Errorf("jitter-induced noise %g, want ~%g", errRMS, want)
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		a, _ := New(Config{JitterRMS: 1e-12, NoiseRMS: 1e-3, Seed: seed})
		return a.Sample(&sig.Tone{Amp: 1, Freq: 1e9}, sig.UniformTimes(0, 1e-9, 32))
	}
	a1, a2, b := mk(7), mk(7), mk(8)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestClock(t *testing.T) {
	c, err := NewClock(1e-8, 2e-9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := c.Times(0, 3)
	want := []float64{2e-9, 1.2e-8, 2.2e-8}
	for i := range want {
		if math.Abs(ts[i]-want[i]) > 1e-18 {
			t.Fatalf("Times = %v", ts)
		}
	}
	if c.Rate() != 1e8 {
		t.Error("rate")
	}
	// Offset start index.
	ts2 := c.Times(5, 1)
	if math.Abs(ts2[0]-(2e-9+5e-8)) > 1e-18 {
		t.Errorf("n0 offset: %g", ts2[0])
	}
	if _, err := NewClock(0, 0, 0, 0); err == nil {
		t.Error("period 0 must fail")
	}
	if _, err := NewClock(1, 0, -1, 0); err == nil {
		t.Error("negative jitter must fail")
	}
	// Jittered clock deviates from nominal with the right magnitude.
	j, _ := NewClock(1e-8, 0, 5e-12, 9)
	dev := 0.0
	jt := j.Times(0, 4096)
	for i, tv := range jt {
		d := tv - float64(i)*1e-8
		dev += d * d
	}
	dev = math.Sqrt(dev / float64(len(jt)))
	if math.Abs(dev-5e-12) > 1e-12 {
		t.Errorf("clock jitter rms %g", dev)
	}
}

func TestSNRIdealDB(t *testing.T) {
	a, _ := New(Config{Bits: 10, FullScale: 1})
	if math.Abs(a.SNRIdealDB()-61.96) > 0.01 {
		t.Errorf("ideal SNR %g", a.SNRIdealDB())
	}
}

func TestQuantizeWithNLProfile(t *testing.T) {
	nl, _ := NewBowNL(3, 1.0)
	a, err := New(Config{Bits: 3, FullScale: 1, NL: nl})
	if err != nil {
		t.Fatal(err)
	}
	// Mid-scale: bow adds ~1 LSB (0.25 V) to the reconstruction level.
	ideal, _ := New(Config{Bits: 3, FullScale: 1})
	d := a.Quantize(0.01) - ideal.Quantize(0.01)
	if math.Abs(d-0.25) > 0.05 {
		t.Errorf("NL shift %g, want ~0.25", d)
	}
	// Rails: bow is ~0 there.
	dr := a.Quantize(0.99) - ideal.Quantize(0.99)
	if math.Abs(dr) > 0.02 {
		t.Errorf("rail shift %g, want ~0", dr)
	}
}

func TestNLValidation(t *testing.T) {
	nl, _ := NewBowNL(4, 1.0)
	if _, err := New(Config{NL: nl}); err == nil {
		t.Error("NL on ideal ADC must fail")
	}
	if _, err := New(Config{Bits: 10, FullScale: 1, NL: nl}); err == nil {
		t.Error("NL size mismatch must fail")
	}
}

func TestInt16CodecMatchesQuantizeExactly(t *testing.T) {
	for _, bits := range []int{4, 10, 15} {
		a, err := New(Config{Bits: bits, FullScale: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Int16Capable() {
			t.Fatalf("%d-bit NL-free converter must be int16 capable", bits)
		}
		rng := rand.New(rand.NewSource(int64(bits)))
		for i := 0; i < 20000; i++ {
			// Cover the rails and beyond (clipping) as well as the core range.
			v := (rng.Float64() - 0.5) * 3
			c := a.EncodeInt16(v)
			if c&1 == 0 {
				t.Fatalf("bits=%d v=%g: packed code %d must be odd", bits, v, c)
			}
			if got, want := a.DecodeInt16(c), a.Quantize(v); got != want {
				t.Fatalf("bits=%d v=%g: decode %g != quantize %g", bits, v, got, want)
			}
		}
		// Exact rails.
		for _, v := range []float64{-1, 1, -1e9, 1e9, 0} {
			if got, want := a.DecodeInt16(a.EncodeInt16(v)), a.Quantize(v); got != want {
				t.Fatalf("bits=%d rail v=%g: decode %g != quantize %g", bits, v, got, want)
			}
		}
	}
}

func TestInt16CapableGate(t *testing.T) {
	if a, _ := New(Config{}); a.Int16Capable() {
		t.Error("ideal (unquantized) converter must not be int16 capable")
	}
	if a, _ := New(Config{Bits: 16, FullScale: 1}); a.Int16Capable() {
		t.Error("16-bit converter must not be int16 capable (codes overflow)")
	}
	nl := &StaticNL{INL: make([]float64, 1<<4)}
	if a, _ := New(Config{Bits: 4, FullScale: 1, NL: nl}); a.Int16Capable() {
		t.Error("static-NL converter must not be int16 capable")
	}
}

func TestAnalogThenQuantizeMatchesSample(t *testing.T) {
	cfg := Config{Bits: 10, FullScale: 1.5, Gain: 1.02, Offset: 3e-3,
		JitterRMS: 3e-12, NoiseRMS: 1e-3, Seed: 99}
	a1, _ := New(cfg)
	a2, _ := New(cfg)
	tone := &sig.Tone{Amp: 1, Freq: 13e6}
	times := sig.UniformTimes(0, 1e-8, 500)
	want := a1.Sample(tone, times)
	// Split front end across several sequential calls, then quantize: the
	// random-stream order is per index, so the result is bit-identical.
	got := make([]float64, len(times))
	a2.Analog(tone, times[:137], got[:137])
	a2.Analog(tone, times[137:400], got[137:400])
	a2.Analog(tone, times[400:], got[400:])
	for i, v := range got {
		got[i] = a2.Quantize(v)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: split path %g != Sample %g", i, got[i], want[i])
		}
	}
}
