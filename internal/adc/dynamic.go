package adc

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// DynamicResult summarises a coherent FFT-based dynamic converter test.
type DynamicResult struct {
	// SignalPowerDB is the fundamental power in dBFS-equivalent units
	// (relative to the measured record).
	SignalPowerDB float64
	// SNDRdB is signal over everything else (noise + distortion).
	SNDRdB float64
	// SFDRdB is signal over the worst single spur.
	SFDRdB float64
	// THDdB is signal over the first five harmonics.
	THDdB float64
	// ENOB is the effective number of bits (SNDR - 1.76)/6.02.
	ENOB float64
	// FundamentalBin is the detected fundamental FFT bin.
	FundamentalBin int
}

// DynamicTest runs the standard single-tone FFT test on a captured record:
// samples of a (nearly) coherent sinusoid at normalised frequency nu
// (cycles/sample). A Hann window handles residual non-coherence.
func DynamicTest(samples []float64, nu float64) (*DynamicResult, error) {
	n := len(samples)
	if n < 64 {
		return nil, fmt.Errorf("adc: dynamic test needs >= 64 samples, got %d", n)
	}
	if nu <= 0 || nu >= 0.5 {
		return nil, fmt.Errorf("adc: dynamic test frequency %g outside ]0, 0.5[", nu)
	}
	// Kaiser beta = 13 keeps window sidelobes near -90 dB so leakage does
	// not masquerade as noise in high-resolution SNDR measurements.
	win := dsp.Window(dsp.KaiserWin, n, 13)
	buf := make([]float64, n)
	mean := dsp.Mean(samples)
	for i, v := range samples {
		buf[i] = (v - mean) * win[i]
	}
	// One-sided spectrum via the half-size real-FFT plan: bins above n/2
	// are the conjugate mirror and carry no extra information for the
	// power analysis below.
	spec := dsp.RealFFTHalf(buf)
	half := n / 2
	power := make([]float64, half)
	for k := 1; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		power[k] = re*re + im*im
	}
	// Locate the fundamental near the expected bin.
	exp := int(nu*float64(n) + 0.5)
	fund := exp
	for k := maxInt(1, exp-3); k <= minInt(half-1, exp+3); k++ {
		if power[k] > power[fund] {
			fund = k
		}
	}
	// Kaiser beta=13 main lobe spans ~+-4 bins around the peak.
	const lobe = 6
	sigPow := 0.0
	for k := maxInt(1, fund-lobe); k <= minInt(half-1, fund+lobe); k++ {
		sigPow += power[k]
	}
	if sigPow <= 0 {
		return nil, fmt.Errorf("adc: dynamic test found no fundamental")
	}
	// Harmonics 2..6 (folded), for THD.
	thdPow := 0.0
	for h := 2; h <= 6; h++ {
		hb := foldBin(h*fund, n)
		if hb < 1 || hb >= half {
			continue
		}
		for k := maxInt(1, hb-lobe); k <= minInt(half-1, hb+lobe); k++ {
			if k >= fund-lobe && k <= fund+lobe {
				continue
			}
			thdPow += power[k]
		}
	}
	// Residual = everything but fundamental (noise + distortion).
	resPow := 0.0
	worstSpur := 0.0
	for k := 1; k < half; k++ {
		if k >= fund-lobe && k <= fund+lobe {
			continue
		}
		resPow += power[k]
		if power[k] > worstSpur {
			worstSpur = power[k]
		}
	}
	if resPow <= 0 {
		resPow = 1e-300
	}
	if worstSpur <= 0 {
		worstSpur = 1e-300
	}
	if thdPow <= 0 {
		thdPow = 1e-300
	}
	sndr := 10 * math.Log10(sigPow/resPow)
	res := &DynamicResult{
		SignalPowerDB:  10 * math.Log10(sigPow),
		SNDRdB:         sndr,
		SFDRdB:         10 * math.Log10(sigPow/worstSpur),
		THDdB:          10 * math.Log10(sigPow/thdPow),
		ENOB:           (sndr - 1.76) / 6.02,
		FundamentalBin: fund,
	}
	return res, nil
}

// foldBin maps an arbitrary harmonic bin into the first Nyquist zone.
func foldBin(k, n int) int {
	k = k % n
	if k < 0 {
		k += n
	}
	if k > n/2 {
		k = n - k
	}
	return k
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
