package adc

import (
	"fmt"
	"math"
	"math/rand"
)

// StaticNL is a deterministic static-nonlinearity model for a converter:
// per-code threshold deviations expressed as INL (integral nonlinearity)
// in LSB. It perturbs the quantizer's reconstruction levels, the standard
// way production ADC defects (bowing, missing codes, gain/offset drift of
// the ladder) are modelled.
type StaticNL struct {
	// INL[k] is the deviation of code k's reconstruction level in LSB.
	INL []float64
}

// NewBowNL builds the classic quadratic "bow" INL profile with the given
// peak deviation (LSB) at mid-scale, for an n-bit converter.
func NewBowNL(bits int, peakLSB float64) (*StaticNL, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("adc: bow NL bits %d outside [1, 24]", bits)
	}
	n := 1 << uint(bits)
	inl := make([]float64, n)
	for k := 0; k < n; k++ {
		x := 2*float64(k)/float64(n-1) - 1 // [-1, 1]
		inl[k] = peakLSB * (1 - x*x)
	}
	return &StaticNL{INL: inl}, nil
}

// NewRandomNL builds a random-walk INL profile with the given rms DNL
// (LSB), the signature of ladder element mismatch.
func NewRandomNL(bits int, dnlRMS float64, seed int64) (*StaticNL, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("adc: random NL bits %d outside [1, 24]", bits)
	}
	if dnlRMS < 0 {
		return nil, fmt.Errorf("adc: negative DNL rms")
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << uint(bits)
	inl := make([]float64, n)
	acc := 0.0
	for k := 1; k < n; k++ {
		acc += dnlRMS * rng.NormFloat64()
		inl[k] = acc
	}
	// Remove the straight-line (gain/offset) component so INL is pure
	// nonlinearity, per the standard endpoint definition.
	slope := inl[n-1] / float64(n-1)
	for k := range inl {
		inl[k] -= slope * float64(k)
	}
	return &StaticNL{INL: inl}, nil
}

// PeakINL returns max |INL| in LSB.
func (s *StaticNL) PeakINL() float64 {
	m := 0.0
	for _, v := range s.INL {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// DNL returns the differential nonlinearity per code (LSB): the INL first
// difference.
func (s *StaticNL) DNL() []float64 {
	if len(s.INL) < 2 {
		return nil
	}
	out := make([]float64, len(s.INL)-1)
	for k := 1; k < len(s.INL); k++ {
		out[k-1] = s.INL[k] - s.INL[k-1]
	}
	return out
}

// HistogramTest estimates DNL and INL of a converter from a code-density
// histogram acquired with a full-scale sinusoidal stimulus — the standard
// production static test. codes are raw output codes in [0, 2^bits);
// the stimulus must slightly overdrive both rails.
func HistogramTest(codes []int, bits int) (dnl, inl []float64, err error) {
	n := 1 << uint(bits)
	if len(codes) < 16*n {
		return nil, nil, fmt.Errorf("adc: histogram test needs >= %d samples, got %d", 16*n, len(codes))
	}
	hist := make([]float64, n)
	total := 0.0
	for _, c := range codes {
		if c < 0 || c >= n {
			return nil, nil, fmt.Errorf("adc: code %d outside [0, %d)", c, n)
		}
		hist[c]++
		total++
	}
	interior := 0.0
	for k := 1; k < n-1; k++ {
		interior += hist[k]
	}
	if interior == 0 {
		return nil, nil, fmt.Errorf("adc: histogram test: no mid-range hits")
	}
	// Standard cumulative arcsine transform: with the rails absorbing the
	// overdrive, the threshold between code k-1 and k sits (in units of the
	// stimulus amplitude) at
	//
	//	edge[k] = -cos(pi * CH(k-1) / total),  CH = cumulative histogram,
	//
	// including ALL samples in the normalisation. DNL is the deviation of
	// each interior code width from the mean interior width.
	edges := make([]float64, n) // edges[k] = lower threshold of code k
	cum := 0.0
	for k := 0; k < n-1; k++ {
		cum += hist[k]
		edges[k+1] = -math.Cos(math.Pi * cum / total)
	}
	widths := make([]float64, 0, n-2)
	for k := 1; k < n-1; k++ {
		widths = append(widths, edges[k+1]-edges[k])
	}
	ideal := 0.0
	for _, w := range widths {
		ideal += w
	}
	ideal /= float64(len(widths))
	if ideal <= 0 {
		return nil, nil, fmt.Errorf("adc: histogram test: degenerate edge span")
	}
	dnl = make([]float64, n-2)
	inl = make([]float64, n-1)
	acc := 0.0
	for i, w := range widths {
		d := w/ideal - 1
		dnl[i] = d
		acc += d
		inl[i+1] = acc
	}
	// Endpoint-correct INL.
	slope := inl[n-2] / float64(n-2)
	for k := range inl {
		inl[k] -= slope * float64(k)
	}
	return dnl, inl, nil
}

// SampleCodes acquires raw output codes (0 .. 2^bits-1) instead of
// reconstructed voltages, optionally through a static-nonlinearity model:
// the NL shifts each reconstruction level, which for the histogram test is
// equivalent to shifting the thresholds the stimulus crosses.
func (a *ADC) SampleCodes(x func(t float64) float64, times []float64, nl *StaticNL) []int {
	bits := a.cfg.Bits
	if bits == 0 {
		return nil
	}
	n := 1 << uint(bits)
	lsb := a.LSB()
	out := make([]int, len(times))
	for i, t := range times {
		te := t
		if a.cfg.JitterRMS > 0 {
			te += a.cfg.JitterRMS * a.rng.NormFloat64()
		}
		v := a.cfg.Gain*x(te) + a.cfg.Offset
		if a.cfg.NoiseRMS > 0 {
			v += a.cfg.NoiseRMS * a.rng.NormFloat64()
		}
		code := int(math.Floor(v/lsb)) + n/2
		if nl != nil && code >= 0 && code < len(nl.INL) {
			// An INL of e LSB at this code means the device actually
			// resolves the input as if shifted by -e LSB.
			code = int(math.Floor(v/lsb-nl.INL[code])) + n/2
		}
		if code < 0 {
			code = 0
		}
		if code >= n {
			code = n - 1
		}
		out[i] = code
	}
	return out
}
