package adc_test

import (
	"fmt"
	"math"

	"repro/internal/adc"
	"repro/internal/sig"
)

// The paper's converter: 10 bits with 3 ps rms aperture jitter. At a 1 GHz
// input the jitter — not the quantizer — sets the noise floor.
func ExampleADC_Sample() {
	conv, err := adc.New(adc.Config{Bits: 10, FullScale: 1.5, JitterRMS: 3e-12, Seed: 1})
	if err != nil {
		panic(err)
	}
	tone := &sig.Tone{Amp: 1, Freq: 1e9}
	times := sig.UniformTimes(0, 1.111e-8, 4096) // 90 MS/s subsampling
	samples := conv.Sample(tone, times)
	// Error vs the ideal waveform.
	var errPow float64
	for i, tv := range times {
		d := samples[i] - tone.At(tv)
		errPow += d * d
	}
	snr := 10 * math.Log10(0.5/(errPow/float64(len(times))))
	fmt.Printf("jitter-limited SNR in the low 30s dB: %v\n", snr > 28 && snr < 40)
	// Output: jitter-limited SNR in the low 30s dB: true
}

// Static converter test: inject a bow INL, measure it back with the
// sine-histogram method.
func ExampleHistogramTest() {
	nl, _ := adc.NewBowNL(8, 2.0)
	conv, _ := adc.New(adc.Config{Bits: 8, FullScale: 1})
	n := 1 << 18
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
	}
	codes := conv.SampleCodes(func(t float64) float64 {
		return 1.05 * math.Sin(2*math.Pi*0.012360679774997897*t)
	}, times, nl)
	_, inl, err := adc.HistogramTest(codes, 8)
	if err != nil {
		panic(err)
	}
	worst := 0.0
	for _, v := range inl {
		if math.Abs(v) > worst {
			worst = math.Abs(v)
		}
	}
	fmt.Printf("measured peak INL within 50%% of injected 2 LSB: %v\n",
		worst > 1.0 && worst < 3.0)
	// Output: measured peak INL within 50% of injected 2 LSB: true
}
