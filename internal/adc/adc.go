// Package adc models the analog-to-digital converters reused by the BIST:
// sample-and-hold with Gaussian aperture jitter, mid-rise quantization with
// clipping, gain and offset errors and input-referred noise. The paper's
// configuration is two 10-bit converters at 90 MS/s with 3 ps rms sampling
// jitter.
package adc

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sig"
)

// Config describes one converter channel.
type Config struct {
	// Bits is the resolution (1..30). 0 disables quantization (ideal ADC).
	Bits int
	// FullScale is the +- input range in volts; required when Bits > 0.
	FullScale float64
	// Gain is the channel gain error as a multiplier (0 means ideal = 1).
	Gain float64
	// Offset is the additive channel offset in volts.
	Offset float64
	// JitterRMS is the Gaussian aperture jitter in seconds rms.
	JitterRMS float64
	// NoiseRMS is input-referred Gaussian noise in volts rms.
	NoiseRMS float64
	// NL optionally applies a static-nonlinearity (INL) profile to the
	// quantizer's reconstruction levels; it must have 2^Bits entries.
	NL *StaticNL
	// Seed makes the stochastic impairments reproducible.
	Seed int64
}

// ADC is a configured converter channel.
type ADC struct {
	cfg Config
	rng *rand.Rand
}

// New validates the configuration and builds a converter.
func New(cfg Config) (*ADC, error) {
	if cfg.Bits < 0 || cfg.Bits > 30 {
		return nil, fmt.Errorf("adc: bits %d outside [0, 30]", cfg.Bits)
	}
	if cfg.Bits > 0 && cfg.FullScale <= 0 {
		return nil, fmt.Errorf("adc: full scale %g must be positive when quantizing", cfg.FullScale)
	}
	if cfg.JitterRMS < 0 || cfg.NoiseRMS < 0 {
		return nil, fmt.Errorf("adc: negative jitter/noise")
	}
	if cfg.Gain == 0 {
		cfg.Gain = 1
	}
	if cfg.NL != nil {
		if cfg.Bits == 0 {
			return nil, fmt.Errorf("adc: static NL requires a quantizing ADC (Bits > 0)")
		}
		if len(cfg.NL.INL) != 1<<uint(cfg.Bits) {
			return nil, fmt.Errorf("adc: NL profile has %d entries for %d bits",
				len(cfg.NL.INL), cfg.Bits)
		}
	}
	return &ADC{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the effective configuration.
func (a *ADC) Config() Config { return a.cfg }

// LSB returns the quantization step, or 0 for an ideal ADC.
func (a *ADC) LSB() float64 {
	if a.cfg.Bits == 0 {
		return 0
	}
	return 2 * a.cfg.FullScale / float64(int64(1)<<uint(a.cfg.Bits))
}

// Quantize maps an analog value to the reconstructed quantized level
// (mid-rise), clipping at the full-scale rails and applying the static
// nonlinearity profile when configured.
func (a *ADC) Quantize(v float64) float64 {
	if a.cfg.Bits == 0 {
		return v
	}
	lsb := a.LSB()
	half := float64(int64(1) << uint(a.cfg.Bits-1))
	code := math.Floor(v/lsb) + 0.5
	if code > half-0.5 {
		code = half - 0.5
	}
	if code < -half+0.5 {
		code = -half + 0.5
	}
	if a.cfg.NL != nil {
		idx := int(code - 0.5 + half)
		if idx >= 0 && idx < len(a.cfg.NL.INL) {
			code += a.cfg.NL.INL[idx]
		}
	}
	return code * lsb
}

// Analog runs the analog front end at the given instants — aperture jitter,
// gain, offset, input-referred noise — without quantization, writing the
// held voltages into out (len(out) must be >= len(times)). It consumes the
// converter's random streams in index order, so successive calls must cover
// ascending, non-overlapping index ranges on one goroutine: this is the
// producer stage of the streaming capture pipeline, which owns exactly that
// ordering.
func (a *ADC) Analog(x sig.Signal, times, out []float64) {
	for i, t := range times {
		te := t
		if a.cfg.JitterRMS > 0 {
			te += a.cfg.JitterRMS * a.rng.NormFloat64()
		}
		v := a.cfg.Gain*x.At(te) + a.cfg.Offset
		if a.cfg.NoiseRMS > 0 {
			v += a.cfg.NoiseRMS * a.rng.NormFloat64()
		}
		out[i] = v
	}
}

// Sample acquires the signal at the given instants, applying aperture
// jitter, gain, offset, noise and quantization. The instants themselves are
// the requested (nominal) times; the jitter perturbs the actual acquisition.
func (a *ADC) Sample(x sig.Signal, times []float64) []float64 {
	out := make([]float64, len(times))
	a.Analog(x, times, out)
	for i, v := range out {
		out[i] = a.Quantize(v)
	}
	return out
}

// Int16Capable reports whether this converter's output fits the packed
// fixed-point capture format: a mid-rise quantizer emits codes at odd
// half-LSB multiples, so twice the code is an odd integer — representable
// in an int16 for up to 15 bits — provided no static-nonlinearity profile
// shifts the reconstruction levels off the uniform grid. The paper's 10-bit
// converters qualify with room to spare.
func (a *ADC) Int16Capable() bool {
	return a.cfg.Bits > 0 && a.cfg.Bits <= 15 && a.cfg.NL == nil
}

// EncodeInt16 quantizes an analog value to the packed code 2*code (an odd
// integer; the clipping matches Quantize). Only valid for an Int16Capable
// converter.
func (a *ADC) EncodeInt16(v float64) int16 {
	lsb := a.LSB()
	half := float64(int64(1) << uint(a.cfg.Bits-1))
	code := math.Floor(v/lsb) + 0.5
	if code > half-0.5 {
		code = half - 0.5
	}
	if code < -half+0.5 {
		code = -half + 0.5
	}
	return int16(2 * code)
}

// DecodeInt16 maps a packed code back to the reconstructed analog level.
// Halving the code is exact and the final multiply is the same operation
// Quantize performs, so DecodeInt16(EncodeInt16(v)) == Quantize(v)
// bit-for-bit — the property that lets the fixed-point capture buffer feed
// the float64 reconstruction pipeline with unchanged goldens.
func (a *ADC) DecodeInt16(c int16) float64 {
	return float64(c) / 2 * a.LSB()
}

// SNRIdealDB returns the ideal quantization SNR 6.02 N + 1.76 dB for a
// full-scale sinusoid, or +Inf semantics (400) for an unquantized ADC.
func (a *ADC) SNRIdealDB() float64 {
	if a.cfg.Bits == 0 {
		return 400
	}
	return 6.02*float64(a.cfg.Bits) + 1.76
}

// Clock generates sampling instants t[n] = Phase + n * Period, optionally
// perturbed by Gaussian edge jitter. It models the paper's delayed clock
// pair: two Clocks sharing a Period but offset by the DCDE delay D.
type Clock struct {
	Period    float64
	Phase     float64
	JitterRMS float64
	rng       *rand.Rand
}

// NewClock validates and builds a clock; seed controls the jitter stream.
func NewClock(period, phase, jitterRMS float64, seed int64) (*Clock, error) {
	if period <= 0 {
		return nil, fmt.Errorf("adc: clock period %g must be positive", period)
	}
	if jitterRMS < 0 {
		return nil, fmt.Errorf("adc: negative clock jitter")
	}
	return &Clock{Period: period, Phase: phase, JitterRMS: jitterRMS,
		rng: rand.New(rand.NewSource(seed))}, nil
}

// Times returns n successive sampling instants starting at index n0.
func (c *Clock) Times(n0, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := c.Phase + float64(n0+i)*c.Period
		if c.JitterRMS > 0 {
			t += c.JitterRMS * c.rng.NormFloat64()
		}
		out[i] = t
	}
	return out
}

// Rate returns the sample rate in Hz.
func (c *Clock) Rate() float64 { return 1 / c.Period }
