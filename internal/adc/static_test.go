package adc

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

func TestBowNLProfile(t *testing.T) {
	nl, err := NewBowNL(8, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.INL) != 256 {
		t.Fatalf("%d codes", len(nl.INL))
	}
	// Peak at mid-scale, ~0 at the rails.
	if math.Abs(nl.PeakINL()-2.0) > 0.01 {
		t.Errorf("peak INL %g", nl.PeakINL())
	}
	if math.Abs(nl.INL[0]) > 1e-9 || math.Abs(nl.INL[255]) > 1e-9 {
		t.Error("endpoints should be ~0")
	}
	if nl.INL[128] < nl.INL[64] {
		t.Error("bow should peak at centre")
	}
	if _, err := NewBowNL(0, 1); err == nil {
		t.Error("bits 0 must fail")
	}
	if _, err := NewBowNL(30, 1); err == nil {
		t.Error("bits 30 must fail")
	}
}

func TestRandomNLEndpointCorrected(t *testing.T) {
	nl, err := NewRandomNL(10, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := len(nl.INL)
	if math.Abs(nl.INL[0]) > 1e-9 || math.Abs(nl.INL[n-1]) > 1e-9 {
		t.Error("endpoint correction failed")
	}
	dnl := nl.DNL()
	if len(dnl) != n-1 {
		t.Fatalf("DNL length %d", len(dnl))
	}
	// DNL rms should be near the requested value (endpoint correction
	// subtracts only a constant slope).
	if rms := dsp.RMS(dnl); math.Abs(rms-0.3) > 0.1 {
		t.Errorf("DNL rms %g, want ~0.3", rms)
	}
	// Determinism.
	nl2, _ := NewRandomNL(10, 0.3, 5)
	for k := range nl.INL {
		if nl.INL[k] != nl2.INL[k] {
			t.Fatal("same seed must reproduce")
		}
	}
	if _, err := NewRandomNL(10, -1, 5); err == nil {
		t.Error("negative DNL must fail")
	}
}

func TestHistogramTestRecoversBow(t *testing.T) {
	bits := 8
	a, _ := New(Config{Bits: bits, FullScale: 1})
	nl, _ := NewBowNL(bits, 1.5)
	// Slightly overdriven, deliberately non-coherent sine.
	amp := 1.05
	freq := 0.012360679774997897
	nSamp := 1 << 18
	times := make([]float64, nSamp)
	for i := range times {
		times[i] = float64(i)
	}
	codes := a.SampleCodes(func(t float64) float64 {
		return amp * math.Sin(2*math.Pi*freq*t)
	}, times, nl)
	dnl, inl, err := HistogramTest(codes, bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(dnl) != (1<<bits)-2 || len(inl) != (1<<bits)-1 {
		t.Fatalf("lengths %d, %d", len(dnl), len(inl))
	}
	// The measured INL must correlate with the injected bow: peak within
	// 40% and located mid-scale.
	peak, peakIdx := 0.0, 0
	for k, v := range inl {
		if math.Abs(v) > peak {
			peak = math.Abs(v)
			peakIdx = k
		}
	}
	// Statistical INL noise with this record length is ~0.5 LSB rms at
	// mid-scale, so bound loosely around the injected 1.5 LSB bow.
	if peak < 0.9 || peak > 3 {
		t.Errorf("measured peak INL %g LSB, injected 1.5", peak)
	}
	if peakIdx < 48 || peakIdx > 208 {
		t.Errorf("peak at code %d, want mid-scale", peakIdx)
	}
}

func TestHistogramTestHealthyADC(t *testing.T) {
	bits := 8
	a, _ := New(Config{Bits: bits, FullScale: 1})
	nSamp := 1 << 19
	times := make([]float64, nSamp)
	for i := range times {
		times[i] = float64(i)
	}
	codes := a.SampleCodes(func(t float64) float64 {
		return 1.05 * math.Sin(2*math.Pi*0.012360679774997897*t)
	}, times, nil)
	_, inl, err := HistogramTest(codes, bits)
	if err != nil {
		t.Fatal(err)
	}
	// Residual is pure statistical noise (~0.25 LSB rms at this record
	// length); a healthy converter stays well under 1 LSB.
	worst := dsp.MaxAbsFloat(inl)
	if worst > 1.0 {
		t.Errorf("healthy ADC measured INL %g LSB", worst)
	}
}

func TestHistogramTestValidation(t *testing.T) {
	if _, _, err := HistogramTest(make([]int, 10), 8); err == nil {
		t.Error("too few samples must fail")
	}
	bad := make([]int, 16*256)
	bad[0] = 999
	if _, _, err := HistogramTest(bad, 8); err == nil {
		t.Error("out-of-range code must fail")
	}
	zeros := make([]int, 16*256) // all in rail bin 0
	if _, _, err := HistogramTest(zeros, 8); err == nil {
		t.Error("empty mid-range must fail")
	}
}

func TestSampleCodesIdealADCReturnsNil(t *testing.T) {
	a, _ := New(Config{})
	if a.SampleCodes(func(float64) float64 { return 0 }, []float64{0}, nil) != nil {
		t.Error("ideal ADC has no codes")
	}
}

func TestDynamicTestIdealQuantizer(t *testing.T) {
	bits := 10
	a, _ := New(Config{Bits: bits, FullScale: 1})
	n := 1 << 13
	nu := 0.01234567
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = a.Quantize(0.98 * math.Sin(2*math.Pi*nu*float64(i)))
	}
	res, err := DynamicTest(samples, nu)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal 10-bit: SNDR ~ 61.8 dB, ENOB ~ 10.
	if math.Abs(res.ENOB-float64(bits)) > 0.7 {
		t.Errorf("ENOB %g, want ~%d", res.ENOB, bits)
	}
	if res.SFDRdB < res.SNDRdB {
		t.Error("SFDR must be >= SNDR")
	}
	if res.THDdB < res.SNDRdB-1 {
		t.Errorf("THD %g implausibly below SNDR %g", res.THDdB, res.SNDRdB)
	}
}

func TestDynamicTestDetectsDistortion(t *testing.T) {
	n := 1 << 13
	nu := 0.037
	clean := make([]float64, n)
	dirty := make([]float64, n)
	for i := range clean {
		v := math.Sin(2 * math.Pi * nu * float64(i))
		clean[i] = v
		dirty[i] = v - 0.02*v*v*v // 3rd-order distortion
	}
	rc, err := DynamicTest(clean, nu)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := DynamicTest(dirty, nu)
	if err != nil {
		t.Fatal(err)
	}
	if rd.THDdB >= rc.THDdB {
		t.Errorf("distortion not detected: %g vs %g dB", rd.THDdB, rc.THDdB)
	}
	// -0.02 v^3: HD3 at (0.02 * 1/4) amplitude -> THD ~ 46 dB.
	if math.Abs(rd.THDdB-46) > 4 {
		t.Errorf("THD %g dB, want ~46", rd.THDdB)
	}
}

func TestDynamicTestValidation(t *testing.T) {
	if _, err := DynamicTest(make([]float64, 10), 0.1); err == nil {
		t.Error("too short must fail")
	}
	if _, err := DynamicTest(make([]float64, 128), 0.6); err == nil {
		t.Error("frequency above Nyquist must fail")
	}
	if _, err := DynamicTest(make([]float64, 128), 0.1); err == nil {
		t.Error("all-zero record must fail")
	}
}

func TestFoldBin(t *testing.T) {
	n := 1024
	if foldBin(100, n) != 100 {
		t.Error("in-zone")
	}
	if foldBin(600, n) != 424 {
		t.Error("second zone folds")
	}
	if foldBin(1024+100, n) != 100 {
		t.Error("wraps")
	}
}
