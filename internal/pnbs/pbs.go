package pnbs

import (
	"fmt"
	"math"
)

// This file implements the Periodic (uniform first-order) Bandpass Sampling
// baseline of Section II-A, following Vaughan, Scott & White ("The theory of
// bandpass sampling", 1991): a band [fl, fh] can be sampled uniformly at fs
// without aliasing iff
//
//	2 fh / n  <=  fs  <=  2 fl / (n - 1)
//
// for some integer 1 <= n <= floor(fh / B). Fig. 3 of the paper plots these
// allowed wedges; package pnbs regenerates them.

// RateWindow is one alias-free sampling-rate interval for a given wrap
// factor N.
type RateWindow struct {
	// N is the Nyquist-zone wrap factor (n in the inequality above).
	N int
	// Lo and Hi bound the alias-free fs interval in Hz.
	Lo, Hi float64
}

// Width returns the window width in Hz — the sampling-clock precision
// budget available at this rate.
func (w RateWindow) Width() float64 { return w.Hi - w.Lo }

// AllowedWindows returns every alias-free uniform sampling window for the
// band, ordered from the highest rate (n = 1, plain Nyquist-of-fh) down to
// the minimal-rate window near 2B. The n = 1 window is unbounded above; its
// Hi is +Inf.
func AllowedWindows(band Band) ([]RateWindow, error) {
	if _, err := NewBand(band.FLow, band.B); err != nil {
		return nil, err
	}
	fl, fh := band.FLow, band.FHigh()
	nMax := int(math.Floor(fh / band.B))
	out := make([]RateWindow, 0, nMax)
	for n := 1; n <= nMax; n++ {
		lo := 2 * fh / float64(n)
		hi := math.Inf(1)
		if n > 1 {
			hi = 2 * fl / float64(n-1)
		}
		if lo <= hi {
			out = append(out, RateWindow{N: n, Lo: lo, Hi: hi})
		}
	}
	return out, nil
}

// Aliases reports whether uniform sampling of the band at rate fs folds the
// band onto itself (destructive aliasing).
func Aliases(band Band, fs float64) (bool, error) {
	if fs <= 0 {
		return false, fmt.Errorf("pnbs: sampling rate %g must be positive", fs)
	}
	wins, err := AllowedWindows(band)
	if err != nil {
		return false, err
	}
	for _, w := range wins {
		if fs >= w.Lo && fs <= w.Hi {
			return false, nil
		}
	}
	return true, nil
}

// WindowsInRange clips the allowed windows to [fsMin, fsMax], dropping empty
// intersections. This regenerates Fig. 3b: the feasible subsampling rates
// for fH = 2.03 GHz, B = 30 MHz between 60 and 100 MHz.
func WindowsInRange(band Band, fsMin, fsMax float64) ([]RateWindow, error) {
	if fsMin <= 0 || fsMax <= fsMin {
		return nil, fmt.Errorf("pnbs: bad rate range [%g, %g]", fsMin, fsMax)
	}
	wins, err := AllowedWindows(band)
	if err != nil {
		return nil, err
	}
	var out []RateWindow
	for _, w := range wins {
		lo := math.Max(w.Lo, fsMin)
		hi := math.Min(w.Hi, fsMax)
		if lo <= hi {
			out = append(out, RateWindow{N: w.N, Lo: lo, Hi: hi})
		}
	}
	return out, nil
}

// MinAliasFreeRate returns the smallest alias-free uniform rate and its
// window. The theoretical floor is 2B, achieved only for integer-positioned
// bands.
func MinAliasFreeRate(band Band) (RateWindow, error) {
	wins, err := AllowedWindows(band)
	if err != nil {
		return RateWindow{}, err
	}
	best := wins[0]
	for _, w := range wins[1:] {
		if w.Lo < best.Lo {
			best = w
		}
	}
	return best, nil
}

// BoundaryCurves samples the normalised Fig. 3a wedge boundaries: for each
// wrap factor n it returns the lower curve fs/B = 2 (fH/B) / n and upper
// curve fs/B = 2 (fH/B - 1) / (n-1) across the given fH/B axis points. The
// result maps n to a pair of slices [lower, upper] aligned with fhOverB.
func BoundaryCurves(fhOverB []float64, nMax int) map[int][2][]float64 {
	out := make(map[int][2][]float64, nMax)
	for n := 1; n <= nMax; n++ {
		lower := make([]float64, len(fhOverB))
		upper := make([]float64, len(fhOverB))
		for i, r := range fhOverB {
			lower[i] = 2 * r / float64(n)
			if n == 1 {
				upper[i] = math.Inf(1)
			} else {
				upper[i] = 2 * (r - 1) / float64(n-1)
			}
		}
		out[n] = [2][]float64{lower, upper}
	}
	return out
}

// RequiredClockPrecision summarises a window as the +- clock tolerance
// around its centre, the quantity the paper uses to argue PBS is fragile
// ("precision of few KHz" near the minimal rate).
func RequiredClockPrecision(w RateWindow) float64 {
	if math.IsInf(w.Hi, 1) {
		return math.Inf(1)
	}
	return w.Width() / 2
}
