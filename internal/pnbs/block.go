package pnbs

import "math"

// This file implements the blocked batch evaluation path of the Eq. (6)
// reconstructor: AtBlock evaluates a whole instant block for one candidate
// delay D-hat in a single cache-friendly pass over precomputed per-instant
// tables, producing values BIT-IDENTICAL to calling At per instant.
//
// Bit-identity is the load-bearing property: the LMS trajectory, the curated
// metrics golden and the normalized fig6 trace golden all pin the exact cost
// floats of the per-instant path, so the batch path must execute the same
// floating-point operation sequence per instant — only the delay-independent
// setup may move. What moves to prepare time:
//
//   - tap-span geometry: n0 = round((t-t0)/T), the clamped [nLo, nHi] span,
//     the first prompt-channel offset dt0Start = t - t0 - nLo T and the
//     delayed-channel base t0 + nLo T (dt1 = base1 + D - t, associating
//     exactly like At's expression);
//   - the prompt-channel offsets dt0 accumulated tap to tap by the same
//     repeated subtraction At performs, stored verbatim;
//   - the prompt-channel window values w(dt0), which depend only on the
//     instant and the filter — the single per-tap window/LUT evaluation the
//     hot loop no longer repeats per candidate delay.
//
// What stays per candidate (delay-dependent, same ops as At): the eight
// phasor seeds, the per-tap phasor recurrence, the delayed-channel window
// w(dt1), the kernel denominators and the accumulation order. The tables are
// delay-independent by construction, so they survive Retune — the same
// property the kernel's retune exploits for phi0/phi1.

// blockRow holds the per-instant geometry of a prepared block.
type blockRow struct {
	// nLo is the first capture index of the tap span (clamped like At);
	// cnt is the tap count, zero for instants outside the capture.
	nLo, cnt int32
	// off locates this instant's taps in blockPrep.w0 / blockPrep.dt0s.
	off int32
	// dt0Start is t - t0 - nLo T, the first prompt-channel offset.
	dt0Start float64
	// base1 is t0 + nLo T; the delayed-channel offset at eval time is
	// dt1 = base1 + D - t, associating exactly like At.
	base1 float64
}

// blockPrep is the immutable prepared form of one instant block.
type blockPrep struct {
	ts   []float64 // snapshot of the instants (value identity)
	rows []blockRow
	w0   []float64 // window(dt0) per tap — delay-independent
	dt0s []float64 // the exact accumulated dt0 sequence per tap
}

// matches reports whether the prepared block covers exactly these instants.
// Comparison is by value, so an equal block in fresh backing storage (or a
// caller that mutated and restored the slice) still hits the cache, and a
// mutated slice misses it.
func (p *blockPrep) matches(ts []float64) bool {
	if p == nil || len(ts) != len(p.ts) {
		return false
	}
	for i, t := range ts {
		if t != p.ts[i] {
			return false
		}
	}
	return true
}

// buildBlockPrep computes the delay-independent per-instant tables. The tap
// geometry (n0, clamping, dt0 accumulation by repeated subtraction) and the
// window evaluation mirror At exactly, so the stored offsets and window
// values are bit-identical to what the per-instant path recomputes.
func (r *Reconstructor) buildBlockPrep(ts []float64) *blockPrep {
	h := r.opt.HalfTaps
	p := &blockPrep{
		ts:   append([]float64(nil), ts...),
		rows: make([]blockRow, len(ts)),
		w0:   make([]float64, 0, (2*h+1)*len(ts)),
		dt0s: make([]float64, 0, (2*h+1)*len(ts)),
	}
	for i, t := range ts {
		row := &p.rows[i]
		n0 := int(math.Round((t - r.t0) / r.tStep))
		nLo := n0 - h
		if nLo < 0 {
			nLo = 0
		}
		nHi := n0 + h
		if nHi > len(r.ch0)-1 {
			nHi = len(r.ch0) - 1
		}
		row.off = int32(len(p.w0))
		if nLo > nHi {
			continue // out-of-capture instant: At returns 0
		}
		row.nLo = int32(nLo)
		row.cnt = int32(nHi - nLo + 1)
		dt0 := t - r.t0 - float64(nLo)*r.tStep
		row.dt0Start = dt0
		row.base1 = r.t0 + float64(nLo)*r.tStep
		for n := nLo; n <= nHi; n++ {
			p.dt0s = append(p.dt0s, dt0)
			p.w0 = append(p.w0, r.window(dt0))
			dt0 -= r.tStep
		}
	}
	return p
}

// PrepareBlock ensures the delay-independent tables for this instant block
// are built, reusing the cached tables when the instants are value-equal to
// the previous block. It is the serial point callers use before fanning
// AtBlockRange over a worker pool, so concurrent ranges share one build.
// The build is a pure function of the instants and the capture, so a
// racing double-build (possible when AtBlock is called concurrently with a
// new block) produces identical tables and last-write-wins is safe.
func (r *Reconstructor) PrepareBlock(ts []float64) {
	if r.block.Load().matches(ts) {
		return
	}
	r.block.Store(r.buildBlockPrep(ts))
}

// AtBlock evaluates the reconstruction at every instant of the block,
// writing dst[i] = At(ts[i]) (len(dst) must be >= len(ts)) — equality is
// bit-exact, not approximate; the differential tests and FuzzAtBlockVsAt
// pin it. The instants may be in any order; locality is best when they are
// sorted. Splitting a block over workers with AtBlockRange and folding in
// index order is therefore bit-identical at any worker count.
func (r *Reconstructor) AtBlock(ts []float64, dst []float64) {
	r.PrepareBlock(ts)
	r.AtBlockRange(ts, 0, len(ts), dst)
}

// AtBlockRange evaluates instants [lo, hi) of a prepared block, writing
// dst[j] for ts[lo+j]. The caller must have called PrepareBlock(ts) (or
// AtBlock) first; ranges of the same block may run concurrently.
func (r *Reconstructor) AtBlockRange(ts []float64, lo, hi int, dst []float64) {
	p := r.block.Load()
	if !p.matches(ts) {
		// Defensive fallback: an unprepared (or concurrently replaced)
		// block still evaluates correctly, just without shared tables.
		p = r.buildBlockPrep(ts)
		r.block.Store(p)
	}
	k := r.kern
	d := k.D()
	den0 := 2 * math.Pi * k.band.B * k.sin0
	den1 := 2 * math.Pi * k.band.B * k.sin1
	cA0, cB0, cA1, cB1 := r.cjA0, r.cjB0, r.cjA1, r.cjB1
	for i := lo; i < hi; i++ {
		row := &p.rows[i]
		if row.cnt == 0 {
			dst[i-lo] = 0
			continue
		}
		t := ts[i]
		// Phasor seeds: same expressions as At, with the precomputed
		// delay-independent offsets substituted in.
		dt0 := row.dt0Start
		zA0 := cis(k.a0*dt0 - k.phi0)
		zB0 := cis(k.b0*dt0 - k.phi0)
		zA1 := cis(k.a1*dt0 - k.phi1)
		zB1 := cis(k.b1*dt0 - k.phi1)
		dt1 := row.base1 + d - t
		yA0 := cis(k.a0*dt1 - k.phi0)
		yB0 := cis(k.b0*dt1 - k.phi0)
		yA1 := cis(k.a1*dt1 - k.phi1)
		yB1 := cis(k.b1*dt1 - k.phi1)
		// The four parallel arrays are resliced to one shared length so the
		// inner loop indexes them without per-access bounds checks.
		w0 := p.w0[row.off : row.off+row.cnt]
		dt0s := p.dt0s[row.off:][:len(w0)]
		ch0 := r.ch0[row.nLo:][:len(w0)]
		ch1 := r.ch1[row.nLo:][:len(w0)]
		acc := 0.0
		for j := range w0 {
			if w := w0[j]; w != 0 {
				dt0 := dt0s[j]
				var sv float64
				if math.Abs(dt0) < 1e-12 {
					sv = k.S(dt0)
				} else {
					if !k.s0Zero {
						sv = (real(zA0) - real(zB0)) / (den0 * dt0)
					}
					sv += (real(zA1) - real(zB1)) / (den1 * dt0)
				}
				acc += ch0[j] * sv * w
			}
			if w := r.window(dt1); w != 0 {
				var sv float64
				if math.Abs(dt1) < 1e-12 {
					sv = k.S(dt1)
				} else {
					if !k.s0Zero {
						sv = (real(yA0) - real(yB0)) / (den0 * dt1)
					}
					sv += (real(yA1) - real(yB1)) / (den1 * dt1)
				}
				acc += ch1[j] * sv * w
			}
			zA0 *= r.rotA0
			zB0 *= r.rotB0
			zA1 *= r.rotA1
			zB1 *= r.rotB1
			dt1 += r.tStep
			yA0 *= cA0
			yB0 *= cB0
			yA1 *= cA1
			yB1 *= cB1
		}
		dst[i-lo] = acc
	}
}
