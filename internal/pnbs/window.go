package pnbs

import "sync"

// The Kaiser taper applied to the truncated interpolation series is
// independent of the candidate delay D-hat: w(x) = I0(beta sqrt(1-x^2)) /
// I0(beta) depends only on beta and the normalised tap offset x. The LMS
// hot loop, however, evaluates it for every tap of every instant of every
// candidate delay, so the seed implementation spent a BesselI0 call (plus a
// square root) per tap per instant. windowLUT tabulates the taper once per
// beta and interpolates; the table is shared process-wide across all
// reconstructors and all candidate delays.
//
// The taper is sampled in the y = x^2 domain, where it is an entire
// function of y (I0's power series contains only even powers of its
// argument, so w = sum_k (beta^2 (1-y)/4)^k / (k!)^2 / I0(beta)); sampling
// in y avoids the square-root singularity of d/dx sqrt(1-x^2) at the band
// edge and lets a cubic fit reach ~1e-13 absolute accuracy with a modest
// table. Catmull-Rom ghost points one step outside [0, 1] come from the
// same series, which converges for negative arguments too.
type windowLUT struct {
	// vals[k] = w(y) at y = (k-1)*step for k in [0, lutSize+2]: one ghost
	// point on each side of [0, 1] for the cubic end segments.
	vals []float64
	inv  float64 // lutSize, as a float: 1/step
	// coef[4i:4i+4] are segment i's Catmull-Rom coefficients in monomial
	// form (w = c0 + fr(c1 + fr(c2 + fr c3))): the same cubic as at(), with
	// the four-sample combination folded out at build time so the fused
	// path's hot loop is a three-step Horner over one cache line instead of
	// an eleven-op chain. The refactored rounding differs from at() by ~1
	// ulp, which is why only the tolerance-contracted fused path uses it —
	// at() keeps the pinned operation sequence.
	coef []float64
}

// lutSize is the number of interpolation segments spanning y in [0, 1].
const lutSize = 1 << 15

// i0EvenSeries evaluates I0 as a function of the SQUARED argument:
// i0EvenSeries(u*u) = I0(u). Unlike the asymptotic approximation in dsp,
// the series accepts negative w (the analytic continuation used for the
// ghost points) and is exact to machine precision, so the tabulated taper
// is at least as accurate as the seed's per-tap evaluation.
func i0EvenSeries(w float64) float64 {
	sum, term := 1.0, 1.0
	for k := 1; k < 400; k++ {
		term *= w / (4 * float64(k) * float64(k))
		sum += term
		if term < 1e-17*sum && term > -1e-17*sum {
			break
		}
	}
	return sum
}

func newWindowLUT(beta float64) *windowLUT {
	l := &windowLUT{
		vals: make([]float64, lutSize+3),
		inv:  float64(lutSize),
	}
	den := i0EvenSeries(beta * beta)
	step := 1 / float64(lutSize)
	for k := range l.vals {
		y := (float64(k) - 1) * step
		l.vals[k] = i0EvenSeries(beta*beta*(1-y)) / den
	}
	l.coef = make([]float64, 4*lutSize)
	for i := 0; i < lutSize; i++ {
		v0, v1, v2, v3 := l.vals[i], l.vals[i+1], l.vals[i+2], l.vals[i+3]
		c := l.coef[4*i : 4*i+4]
		c[0] = v1
		c[1] = 0.5 * (v2 - v0)
		c[2] = 0.5 * (2*v0 - 5*v1 + 4*v2 - v3)
		c[3] = 0.5 * (3*(v1-v2) + v3 - v0)
	}
	return l
}

// at interpolates the taper at y = x^2, 0 <= y < 1, by the Catmull-Rom
// cubic through the four bracketing samples. This is the hottest leaf of
// the LMS loop (one call per tap per instant per candidate delay), so the
// four neighbours are fetched through a single length-4 sub-slice: one
// bounds check instead of four, with the interpolation arithmetic itself
// untouched (its exact operation sequence is pinned by the bit-identity
// contract of At/AtBlock).
func (l *windowLUT) at(y float64) float64 {
	p := y * l.inv
	i := int(p)
	if i > lutSize-1 {
		i = lutSize - 1
	}
	fr := p - float64(i)
	v := l.vals[i : i+4 : i+4]
	v0, v1, v2, v3 := v[0], v[1], v[2], v[3]
	return v1 + 0.5*fr*(v2-v0+fr*(2*v0-5*v1+4*v2-v3+fr*(3*(v1-v2)+v3-v0)))
}

// lutCache shares one table per beta across every reconstructor in the
// process (the taper does not depend on the band, the delay, or the tap
// count — only the x normalisation does, and that stays in window()).
var lutCache sync.Map // float64 beta -> *windowLUT

func lutFor(beta float64) *windowLUT {
	if v, ok := lutCache.Load(beta); ok {
		return v.(*windowLUT)
	}
	l := newWindowLUT(beta)
	v, _ := lutCache.LoadOrStore(beta, l)
	return v.(*windowLUT)
}
