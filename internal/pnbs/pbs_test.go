package pnbs

import (
	"math"
	"testing"
)

// fig3bBand is the paper's Fig. 3b example: fH = 2.03 GHz, B = 30 MHz.
func fig3bBand() Band {
	return Band{FLow: 2e9, B: 30e6}
}

func TestAllowedWindowsStructure(t *testing.T) {
	b := fig3bBand()
	wins, err := AllowedWindows(b)
	if err != nil {
		t.Fatal(err)
	}
	// nMax = floor(2030/30) = 67.
	if len(wins) == 0 || wins[len(wins)-1].N != 67 {
		t.Fatalf("windows: %d entries, last n = %d", len(wins), wins[len(wins)-1].N)
	}
	// n = 1 window is [2 fH, +Inf).
	if wins[0].N != 1 || wins[0].Lo != 2*b.FHigh() || !math.IsInf(wins[0].Hi, 1) {
		t.Errorf("n=1 window %+v", wins[0])
	}
	// Windows are disjoint and ordered by decreasing rate.
	for i := 1; i < len(wins); i++ {
		if wins[i].Hi > wins[i-1].Lo+1e-6 {
			t.Errorf("windows overlap: %+v then %+v", wins[i-1], wins[i])
		}
		if wins[i].Lo > wins[i].Hi {
			t.Errorf("inverted window %+v", wins[i])
		}
	}
}

func TestFig3bWindowsMatchPaperNumbers(t *testing.T) {
	b := fig3bBand()
	wins, err := WindowsInRange(b, 60e6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) == 0 {
		t.Fatal("no windows in the Fig. 3b range")
	}
	// The window near 90 MHz (n = 45) must span [90.22, 90.91] MHz: a
	// precision budget of "a few hundreds of kHz" (paper Section II-A).
	var w90 *RateWindow
	for i := range wins {
		if wins[i].N == 45 {
			w90 = &wins[i]
		}
	}
	if w90 == nil {
		t.Fatal("n = 45 window missing")
	}
	if math.Abs(w90.Lo-90.2222e6) > 1e3 || math.Abs(w90.Hi-90.9091e6) > 1e3 {
		t.Errorf("n=45 window [%g, %g]", w90.Lo, w90.Hi)
	}
	if p := RequiredClockPrecision(*w90); p < 100e3 || p > 500e3 {
		t.Errorf("clock precision near 90 MHz = %g Hz, want few hundred kHz", p)
	}
	// Near the minimal rate (n = 67, fs ~ 2B = 60 MHz) the budget drops to
	// a few kHz.
	last := wins[len(wins)-1]
	if last.N != 67 {
		t.Fatalf("last window n = %d", last.N)
	}
	if p := RequiredClockPrecision(last); p > 10e3 {
		t.Errorf("clock precision at minimal rate = %g Hz, want few kHz", p)
	}
}

func TestAliasesPredicate(t *testing.T) {
	b := fig3bBand()
	// 90.5 MHz sits inside the n=45 window: alias-free.
	if a, err := Aliases(b, 90.5e6); err != nil || a {
		t.Errorf("90.5 MHz should be alias-free (err %v)", err)
	}
	// 75 MHz falls between windows: aliases.
	if a, err := Aliases(b, 75e6); err != nil || !a {
		t.Errorf("75 MHz should alias (err %v)", err)
	}
	// Far above 2 fH: always alias-free.
	if a, _ := Aliases(b, 5e9); a {
		t.Error("oversampling should never alias")
	}
	if _, err := Aliases(b, 0); err == nil {
		t.Error("fs=0 must fail")
	}
}

func TestMinAliasFreeRate(t *testing.T) {
	b := fig3bBand()
	w, err := MinAliasFreeRate(b)
	if err != nil {
		t.Fatal(err)
	}
	// Minimal rate just above 2B = 60 MHz.
	if w.Lo < 2*b.B || w.Lo > 2.03*b.B {
		t.Errorf("minimal rate %g, want just above %g", w.Lo, 2*b.B)
	}
	// PNBS needs exactly 2B total (2 channels x B): always below or equal
	// to any alias-free PBS rate — the paper's flexibility argument.
	if 2*b.B > w.Lo+1e-6 {
		t.Error("PNBS total rate should not exceed the best PBS rate")
	}
}

func TestWindowsInRangeValidation(t *testing.T) {
	b := fig3bBand()
	if _, err := WindowsInRange(b, 0, 1e6); err == nil {
		t.Error("fsMin=0 must fail")
	}
	if _, err := WindowsInRange(b, 2e6, 1e6); err == nil {
		t.Error("inverted range must fail")
	}
	if _, err := WindowsInRange(Band{}, 1, 2); err == nil {
		t.Error("bad band must fail")
	}
}

func TestBoundaryCurvesFig3a(t *testing.T) {
	axis := []float64{1, 2, 3, 5, 7}
	curves := BoundaryCurves(axis, 3)
	if len(curves) != 3 {
		t.Fatalf("%d curves", len(curves))
	}
	// n=1 lower boundary: fs/B = 2 fH/B; upper infinite.
	c1 := curves[1]
	for i, r := range axis {
		if c1[0][i] != 2*r {
			t.Errorf("n=1 lower at %g: %g", r, c1[0][i])
		}
		if !math.IsInf(c1[1][i], 1) {
			t.Error("n=1 upper must be +Inf")
		}
	}
	// n=2: lower fs/B = fH/B, upper 2(fH/B - 1).
	c2 := curves[2]
	for i, r := range axis {
		if c2[0][i] != r || math.Abs(c2[1][i]-2*(r-1)) > 1e-12 {
			t.Errorf("n=2 curves at %g: %g, %g", r, c2[0][i], c2[1][i])
		}
	}
	// The wedge exists only when lower <= upper: at fH/B = 2 the n=2 wedge
	// opens exactly (2 <= 2), consistent with Fig. 3a's vertex pattern.
}

func TestAllowedWindowsErrorPath(t *testing.T) {
	if _, err := AllowedWindows(Band{}); err == nil {
		t.Error("bad band must fail")
	}
	if _, err := MinAliasFreeRate(Band{}); err == nil {
		t.Error("bad band must fail")
	}
}
