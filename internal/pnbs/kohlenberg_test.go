package pnbs

import (
	"math"
	"math/rand"
	"testing"
)

// paperBand is the simulation configuration of Section V: fc = 1 GHz,
// B = 90 MHz, so fl = 955 MHz.
func paperBand() Band {
	return Band{FLow: 955e6, B: 90e6}
}

func TestBandDerivedQuantities(t *testing.T) {
	b := paperBand()
	if b.FHigh() != 1045e6 {
		t.Errorf("FHigh %g", b.FHigh())
	}
	if b.Fc() != 1e9 {
		t.Errorf("Fc %g", b.Fc())
	}
	if math.Abs(b.T()-1/90e6) > 1e-20 {
		t.Errorf("T %g", b.T())
	}
	// k = ceil(2*955/90) = ceil(21.22) = 22.
	if b.K() != 22 || b.KPlus() != 23 {
		t.Errorf("k = %d, k+ = %d", b.K(), b.KPlus())
	}
	// Optimal D = 1/(4 fc) = 250 ps.
	if math.Abs(b.OptimalD()-250e-12) > 1e-18 {
		t.Errorf("optimal D %g", b.OptimalD())
	}
	if b.IntegerPositioned() {
		t.Error("955/90 band must not be integer positioned")
	}
	ip := Band{FLow: 900e6, B: 90e6} // 2fl/B = 20 exactly
	if !ip.IntegerPositioned() {
		t.Error("900/90 band must be integer positioned")
	}
}

func TestNewBandValidation(t *testing.T) {
	if _, err := NewBand(0, 1); err == nil {
		t.Error("fl=0 must fail")
	}
	if _, err := NewBand(1, 0); err == nil {
		t.Error("B=0 must fail")
	}
}

func TestForbiddenDFamilies(t *testing.T) {
	b := paperBand()
	// T/k = 11.111ns/22 = 505.05 ps; T/(k+1) = 483.09 ps.
	forb := b.ForbiddenD(600e-12)
	if len(forb) != 2 {
		t.Fatalf("forbidden set %v", forb)
	}
	tt := b.T()
	found505, found483 := false, false
	for _, d := range forb {
		if math.Abs(d-tt/22) < 1e-15 {
			found505 = true
		}
		if math.Abs(d-tt/23) < 1e-15 {
			found483 = true
		}
	}
	if !found505 || !found483 {
		t.Errorf("forbidden values %v", forb)
	}
	// Integer-positioned band: only the k+1 family.
	ip := Band{FLow: 900e6, B: 90e6}
	f2 := ip.ForbiddenD(600e-12)
	for _, d := range f2 {
		if math.Abs(d-ip.T()/float64(ip.K())) < 1e-15 {
			t.Error("k family must not apply to integer-positioned bands")
		}
	}
}

func TestNewKernelStabilityConditions(t *testing.T) {
	b := paperBand()
	if _, err := NewKernel(b, 180e-12); err != nil {
		t.Fatalf("paper configuration rejected: %v", err)
	}
	// Exactly forbidden delays must be rejected.
	if _, err := NewKernel(b, b.T()/22); err == nil {
		t.Error("D = T/k must be rejected")
	}
	if _, err := NewKernel(b, b.T()/23); err == nil {
		t.Error("D = T/(k+1) must be rejected")
	}
	if _, err := NewKernel(b, 0); err == nil {
		t.Error("D = 0 must be rejected")
	}
	if _, err := NewKernel(Band{}, 1e-10); err == nil {
		t.Error("bad band must be rejected")
	}
	// Negative delay (the -1/(4fc) optimum) is legal.
	if _, err := NewKernel(b, -b.OptimalD()); err != nil {
		t.Errorf("negative optimal D rejected: %v", err)
	}
}

func TestKernelInterpolationIdentities(t *testing.T) {
	b := paperBand()
	k, err := NewKernel(b, 180e-12)
	if err != nil {
		t.Fatal(err)
	}
	// s(0) = 1: the analytic limits give s0(0)+s1(0) = 1.
	if v := k.S(0); math.Abs(v-1) > 1e-9 {
		t.Errorf("s(0) = %g, want 1", v)
	}
	// s(mT) = 0 for m != 0.
	for _, m := range []int{1, -1, 2, 5, -7, 13} {
		if v := k.S(float64(m) * b.T()); math.Abs(v) > 1e-9 {
			t.Errorf("s(%dT) = %g, want 0", m, v)
		}
	}
	if k.Band() != b || k.D() != 180e-12 {
		t.Error("accessors")
	}
}

func TestKernelS0VanishesForIntegerPositionedBand(t *testing.T) {
	ip := Band{FLow: 900e6, B: 90e6}
	k, err := NewKernel(ip, 180e-12)
	if err != nil {
		t.Fatal(err)
	}
	// s0 must vanish identically; s(0) still 1 via s1.
	if v := k.s0(1.234e-9); v != 0 {
		t.Errorf("s0 = %g for integer-positioned band", v)
	}
	if v := k.S(0); math.Abs(v-1) > 1e-9 {
		t.Errorf("s(0) = %g", v)
	}
}

func TestCoefficientMetricBlowsUpNearForbidden(t *testing.T) {
	b := paperBand()
	opt := CoefficientMetric(b, b.OptimalD())
	near := CoefficientMetric(b, b.T()/23*(1+1e-7))
	if near < 100*opt {
		t.Errorf("metric near forbidden %g not >> optimal %g", near, opt)
	}
	if !math.IsInf(CoefficientMetric(b, b.T()/23), 1) &&
		CoefficientMetric(b, b.T()/23) < 1e6 {
		t.Error("metric at forbidden should explode")
	}
	// The optimal D should be close to a local minimum: sample around it.
	for _, f := range []float64{0.8, 0.9, 1.1, 1.2} {
		if CoefficientMetric(b, b.OptimalD()*f) < opt*0.8 {
			t.Errorf("D = %g x optimal beats optimal substantially", f)
		}
	}
}

func TestSpectralErrorBoundPaperExample(t *testing.T) {
	// Paper Eq. (5): fc = 1 GHz, B = 80 MHz -> fl = 960 MHz, k+1 = 25;
	// 1 % error requires dD <= ~2 ps.
	b := Band{FLow: 960e6, B: 80e6}
	if b.KPlus() != 25 {
		t.Fatalf("k+1 = %d, want 25", b.KPlus())
	}
	dd := DeltaDFor(b, 0.01)
	if dd < 1.4e-12 || dd > 2.2e-12 {
		t.Errorf("dD for 1%% = %g s, want ~1.6-2 ps", dd)
	}
	// Round trip.
	if e := SpectralErrorBound(b, dd); math.Abs(e-0.01) > 1e-12 {
		t.Errorf("bound round trip %g", e)
	}
	// Bound is even in dD.
	if SpectralErrorBound(b, -1e-12) != SpectralErrorBound(b, 1e-12) {
		t.Error("bound must use |dD|")
	}
}

func TestReconstructorExactOnInBandTones(t *testing.T) {
	b := paperBand()
	d := 180e-12
	tt := b.T()
	n := 400
	t0 := 0.0
	rng := rand.New(rand.NewSource(33))
	// Three random in-band tones.
	type tone struct{ a, f, p float64 }
	tones := make([]tone, 3)
	for i := range tones {
		tones[i] = tone{
			a: 0.5 + rng.Float64(),
			f: b.FLow + (0.1+0.8*rng.Float64())*b.B,
			p: 2 * math.Pi * rng.Float64(),
		}
	}
	eval := func(tv float64) float64 {
		v := 0.0
		for _, tn := range tones {
			v += tn.a * math.Cos(2*math.Pi*tn.f*tv+tn.p)
		}
		return v
	}
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = eval(t0 + float64(i)*tt)
		ch1[i] = eval(t0 + float64(i)*tt + d)
	}
	r, err := NewReconstructor(b, d, t0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.ValidRange()
	if lo >= hi {
		t.Fatalf("empty valid range [%g, %g]", lo, hi)
	}
	var maxRel, amp float64
	for _, tn := range tones {
		amp += tn.a
	}
	for i := 0; i < 200; i++ {
		tv := lo + (hi-lo)*rng.Float64()
		got := r.At(tv)
		want := eval(tv)
		if rel := math.Abs(got-want) / amp; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 5e-3 {
		t.Errorf("max relative reconstruction error %g, want < 5e-3", maxRel)
	}
}

func TestReconstructorAccuracyImprovesWithTaps(t *testing.T) {
	b := paperBand()
	d := 180e-12
	tt := b.T()
	n := 600
	f0 := 1.001e9
	eval := func(tv float64) float64 { return math.Cos(2 * math.Pi * f0 * tv) }
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = eval(float64(i) * tt)
		ch1[i] = eval(float64(i)*tt + d)
	}
	errWith := func(half int) float64 {
		r, err := NewReconstructor(b, d, 0, ch0, ch1, Options{HalfTaps: half})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := r.ValidRange()
		rng := rand.New(rand.NewSource(7))
		worst := 0.0
		for i := 0; i < 100; i++ {
			tv := lo + (hi-lo)*rng.Float64()
			if e := math.Abs(r.At(tv) - eval(tv)); e > worst {
				worst = e
			}
		}
		return worst
	}
	e15, e60 := errWith(15), errWith(60)
	if e60 >= e15 {
		t.Errorf("more taps did not help: 31-tap err %g vs 121-tap err %g", e15, e60)
	}
}

func TestReconstructorWrongDelayDegrades(t *testing.T) {
	b := paperBand()
	d := 180e-12
	tt := b.T()
	n := 400
	f0 := 0.99e9
	eval := func(tv float64) float64 { return math.Cos(2 * math.Pi * f0 * tv) }
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = eval(float64(i) * tt)
		ch1[i] = eval(float64(i)*tt + d)
	}
	rmsErr := func(dHat float64) float64 {
		r, err := NewReconstructor(b, dHat, 0, ch0, ch1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := r.ValidRange()
		rng := rand.New(rand.NewSource(9))
		acc := 0.0
		const m = 150
		for i := 0; i < m; i++ {
			tv := lo + (hi-lo)*rng.Float64()
			e := r.At(tv) - eval(tv)
			acc += e * e
		}
		return math.Sqrt(acc / m)
	}
	e0 := rmsErr(d)
	e10 := rmsErr(d + 10e-12)
	e40 := rmsErr(d + 40e-12)
	if !(e0 < e10 && e10 < e40) {
		t.Errorf("delay-error degradation not monotone: %g, %g, %g", e0, e10, e40)
	}
}

func TestReconstructorValidation(t *testing.T) {
	b := paperBand()
	if _, err := NewReconstructor(b, 180e-12, 0, []float64{1}, []float64{1, 2}, Options{}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewReconstructor(b, 180e-12, 0, nil, nil, Options{}); err == nil {
		t.Error("empty capture must fail")
	}
	if _, err := NewReconstructor(b, 0, 0, make([]float64, 100), make([]float64, 100), Options{}); err == nil {
		t.Error("zero delay must fail")
	}
	if _, err := NewReconstructor(b, 180e-12, 0, make([]float64, 10), make([]float64, 10), Options{HalfTaps: 30}); err == nil {
		t.Error("capture shorter than taps must fail")
	}
}

func TestReconstructorEnvelopeDownconversion(t *testing.T) {
	// A tone at fc + fb must downconvert to a complex tone at fb.
	b := paperBand()
	d := 180e-12
	tt := b.T()
	n := 500
	fb := 8e6
	f0 := b.Fc() + fb
	eval := func(tv float64) float64 { return math.Cos(2 * math.Pi * f0 * tv) }
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = eval(float64(i) * tt)
		ch1[i] = eval(float64(i)*tt + d)
	}
	r, _ := NewReconstructor(b, d, 0, ch0, ch1, Options{})
	lo, _ := r.ValidRange()
	ts := make([]float64, 512)
	for i := range ts {
		ts[i] = lo + float64(i)*tt/4 // 4x oversampled envelope grid
	}
	env := r.Envelope(b.Fc(), ts)
	// Windowed DTFT of the envelope: the desired complex tone sits at +fb
	// with amplitude ~1; the 2fc image aliases far out of band.
	phasor := func(f float64) float64 {
		var acc complex128
		var gain float64
		for i, v := range env {
			w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(len(env)-1))
			phi := -2 * math.Pi * f * (ts[i] - ts[0])
			s, c := math.Sincos(phi)
			acc += v * complex(w*c, w*s)
			gain += w
		}
		return math.Hypot(real(acc), imag(acc)) / gain
	}
	if a := phasor(fb); math.Abs(a-1) > 0.1 {
		t.Errorf("envelope tone amplitude at fb: %g, want ~1", a)
	}
	if a := phasor(-fb); a > 0.1 {
		t.Errorf("image at -fb: %g, want ~0", a)
	}
	if a := phasor(35e6); a > 0.1 {
		t.Errorf("out-of-band content at 35 MHz: %g", a)
	}
}
