package pnbs

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/par"
)

// Options tunes the practical reconstruction filter of Eq. (6).
type Options struct {
	// HalfTaps is nw/2: the reconstruction uses nw+1 = 2*HalfTaps+1 sample
	// pairs around the evaluation instant. 0 defaults to 30 (61 taps, the
	// paper's configuration).
	HalfTaps int
	// KaiserBeta shapes the window applied to the truncated interpolation
	// series. 0 defaults to 8 (the paper's configuration); any negative
	// value selects no taper at all (a rectangular window over the filter
	// support), which a zero value cannot express because of the default.
	KaiserBeta float64
}

func (o Options) withDefaults() Options {
	if o.HalfTaps <= 0 {
		o.HalfTaps = 30
	}
	if o.KaiserBeta == 0 {
		o.KaiserBeta = 8
	}
	return o
}

// Reconstructor evaluates the truncated, Kaiser-windowed second-order
// interpolation of Eq. (6):
//
//	f(t) ~ sum_n w(t-nT) [ f(nT) s(t-nT) + f(nT+D) s(nT+D-t) ]
//
// over the nw+1 sample pairs nearest to t. The delay D used here is the
// caller's estimate D-hat; reconstruction fidelity against the true delay is
// exactly what the paper's Eq. (4) bounds and its LMS algorithm optimises.
type Reconstructor struct {
	kern  *Kernel
	t0    float64
	tStep float64
	ch0   []float64
	ch1   []float64
	opt   Options
	// win is the shared Kaiser taper table (nil for a rectangular window);
	// winScale is 1/((HalfTaps+1) T), the tap-offset normalisation.
	win      *windowLUT
	winScale float64
	// Tap-to-tap phasor rotations exp(-i a T) for the four kernel cosine
	// terms: evaluating s() across consecutive taps then needs complex
	// multiplies instead of Sincos calls (the LMS hot path). The rotation
	// angles depend only on the band, so Retune leaves them untouched.
	rotA0, rotB0, rotA1, rotB1 complex128
	// cjA0..cjB1 are the conjugate rotations exp(+i a T) used by the
	// second (delayed-channel) kernel term, whose phase advances the other
	// way across taps. They depend only on the band, like rot*.
	cjA0, cjB0, cjA1, cjB1 complex128
	// block caches the per-instant tables of the batch evaluation path
	// (AtBlock); see block.go. The tables are delay-independent, so they
	// survive Retune; the pointer is atomic so concurrent AtBlock callers
	// on a shared reconstructor stay race-free. The slot itself is held by
	// pointer so Clone can share one cache across a pool of retuned copies.
	block *atomic.Pointer[blockPrep]
	// fused caches the contracted tables of the reassociated fused path
	// (AtBlockFused/CostFused); see fused.go. Delay-independent and shared
	// across clones, like block.
	fused *atomic.Pointer[fusedPrep]
	// grid caches the fused per-phase coefficient tables of the uniform-
	// grid path (AtGridInto/EnvelopeGridInto); see grid.go. These fold the
	// delay in, so a Retune invalidates them (checked by value).
	grid atomic.Pointer[gridPrep]
}

// NewReconstructor builds a reconstructor from the two uniform sample sets:
// ch0[n] = f(t0 + nT) and ch1[n] = f(t0 + nT + D), with T = 1/band.B.
func NewReconstructor(band Band, dEst, t0 float64, ch0, ch1 []float64, opt Options) (*Reconstructor, error) {
	if len(ch0) != len(ch1) {
		return nil, fmt.Errorf("pnbs: channel lengths differ: %d vs %d", len(ch0), len(ch1))
	}
	if len(ch0) == 0 {
		return nil, fmt.Errorf("pnbs: empty capture")
	}
	kern, err := NewKernel(band, dEst)
	if err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	if len(ch0) < o.HalfTaps+1 {
		return nil, fmt.Errorf("pnbs: capture of %d samples shorter than %d half-taps",
			len(ch0), o.HalfTaps)
	}
	r := &Reconstructor{
		kern:     kern,
		t0:       t0,
		tStep:    band.T(),
		ch0:      ch0,
		ch1:      ch1,
		opt:      o,
		winScale: 1 / (float64(o.HalfTaps+1) * band.T()),
		block:    new(atomic.Pointer[blockPrep]),
		fused:    new(atomic.Pointer[fusedPrep]),
	}
	if o.KaiserBeta > 0 {
		r.win = lutFor(o.KaiserBeta)
	}
	tt := band.T()
	r.rotA0 = cis(-kern.a0 * tt)
	r.rotB0 = cis(-kern.b0 * tt)
	r.rotA1 = cis(-kern.a1 * tt)
	r.rotB1 = cis(-kern.b1 * tt)
	conj := func(c complex128) complex128 { return complex(real(c), -imag(c)) }
	r.cjA0, r.cjB0, r.cjA1, r.cjB1 = conj(r.rotA0), conj(r.rotB0), conj(r.rotA1), conj(r.rotB1)
	return r, nil
}

// Retune swaps the candidate delay D-hat into the reconstructor in place:
// only the delay-dependent kernel phases are recomputed — the capture, the
// window table, and the band-derived phasor rotations are reused, so the
// LMS hot loop re-evaluates the cost at a new candidate without a single
// allocation. On error (a forbidden delay violating Eq. (3)) the
// reconstructor is left unchanged at its previous, valid delay.
func (r *Reconstructor) Retune(dHat float64) error {
	return r.kern.retune(dHat)
}

// Clone returns an independent reconstructor over the same capture, retuned
// to dHat. The clone has its own kernel (so Retune on one never disturbs
// another) but SHARES the delay-independent prepared-table caches (block and
// fused) with the original and all its clones: the first member of the
// family to prepare an instant block publishes the tables for everyone.
// This is what lets a pool of per-candidate evaluator workers amortize one
// table build across arbitrarily many candidate delays. Sharing is safe
// because the prepared tables are immutable and validated by instant-set
// value match on every use; concurrent preparation of different instant
// sets merely thrashes the cache, it never corrupts a result. The
// delay-dependent grid cache (AtGridInto) is deliberately NOT shared.
func (r *Reconstructor) Clone(dHat float64) (*Reconstructor, error) {
	kern, err := NewKernel(r.kern.band, dHat)
	if err != nil {
		return nil, err
	}
	c := &Reconstructor{
		kern:     kern,
		t0:       r.t0,
		tStep:    r.tStep,
		ch0:      r.ch0,
		ch1:      r.ch1,
		opt:      r.opt,
		win:      r.win,
		winScale: r.winScale,
		rotA0:    r.rotA0,
		rotB0:    r.rotB0,
		rotA1:    r.rotA1,
		rotB1:    r.rotB1,
		cjA0:     r.cjA0,
		cjB0:     r.cjB0,
		cjA1:     r.cjA1,
		cjB1:     r.cjB1,
		block:    r.block,
		fused:    r.fused,
	}
	return c, nil
}

// cis returns exp(i theta).
func cis(theta float64) complex128 {
	s, c := math.Sincos(theta)
	return complex(c, s)
}

// Kernel exposes the underlying interpolation kernel.
func (r *Reconstructor) Kernel() *Kernel { return r.kern }

// ValidRange returns the interval of t over which the full filter support
// lies inside the capture, i.e. where reconstruction is most accurate.
func (r *Reconstructor) ValidRange() (tMin, tMax float64) {
	h := float64(r.opt.HalfTaps) * r.tStep
	return r.t0 + h, r.t0 + float64(len(r.ch0)-1)*r.tStep - h
}

// window evaluates the continuous Kaiser taper at normalised offset
// x = dt / ((HalfTaps+1) T), zero outside |x| >= 1. The taper value comes
// from the shared per-beta lookup table (see window.go); a nil table means
// the rectangular window (KaiserBeta < 0).
func (r *Reconstructor) window(dt float64) float64 {
	x := dt * r.winScale
	ax := x * x
	if ax >= 1 {
		return 0
	}
	if r.win == nil {
		return 1
	}
	return r.win.at(ax)
}

// At evaluates the reconstruction at time t. Sample pairs outside the
// capture are treated as zero (the signal is assumed quiescent there).
//
// The kernel cosines are evaluated by phasor recurrence across the taps
// (each tap advances every angle by a fixed amount), replacing eight
// Sincos calls per tap with complex multiplies; atReference keeps the
// direct evaluation for differential testing.
func (r *Reconstructor) At(t float64) float64 {
	n0 := int(math.Round((t - r.t0) / r.tStep))
	h := r.opt.HalfTaps
	nLo := n0 - h
	if nLo < 0 {
		nLo = 0
	}
	nHi := n0 + h
	if nHi > len(r.ch0)-1 {
		nHi = len(r.ch0) - 1
	}
	if nLo > nHi {
		return 0
	}
	k := r.kern
	d := k.D()
	den0 := 2 * math.Pi * k.band.B * k.sin0
	den1 := 2 * math.Pi * k.band.B * k.sin1
	// Term A: dt0 = t - t0 - n T, stepping by -T per tap; phasors
	// z = exp(i(a dt - phi)) advance by the precomputed rotations.
	dt0 := t - r.t0 - float64(nLo)*r.tStep
	zA0 := cis(k.a0*dt0 - k.phi0)
	zB0 := cis(k.b0*dt0 - k.phi0)
	zA1 := cis(k.a1*dt0 - k.phi1)
	zB1 := cis(k.b1*dt0 - k.phi1)
	// Term B: dt1 = t0 + n T + d - t, stepping by +T per tap.
	dt1 := r.t0 + float64(nLo)*r.tStep + d - t
	yA0 := cis(k.a0*dt1 - k.phi0)
	yB0 := cis(k.b0*dt1 - k.phi0)
	yA1 := cis(k.a1*dt1 - k.phi1)
	yB1 := cis(k.b1*dt1 - k.phi1)
	cA0, cB0, cA1, cB1 := r.cjA0, r.cjB0, r.cjA1, r.cjB1

	acc := 0.0
	for n := nLo; n <= nHi; n++ {
		if w := r.window(dt0); w != 0 {
			var sv float64
			if math.Abs(dt0) < 1e-12 {
				sv = k.S(dt0)
			} else {
				if !k.s0Zero {
					sv = (real(zA0) - real(zB0)) / (den0 * dt0)
				}
				sv += (real(zA1) - real(zB1)) / (den1 * dt0)
			}
			acc += r.ch0[n] * sv * w
		}
		if w := r.window(dt1); w != 0 {
			var sv float64
			if math.Abs(dt1) < 1e-12 {
				sv = k.S(dt1)
			} else {
				if !k.s0Zero {
					sv = (real(yA0) - real(yB0)) / (den0 * dt1)
				}
				sv += (real(yA1) - real(yB1)) / (den1 * dt1)
			}
			acc += r.ch1[n] * sv * w
		}
		dt0 -= r.tStep
		zA0 *= r.rotA0
		zB0 *= r.rotB0
		zA1 *= r.rotA1
		zB1 *= r.rotB1
		dt1 += r.tStep
		yA0 *= cA0
		yB0 *= cB0
		yA1 *= cA1
		yB1 *= cB1
	}
	return acc
}

// atReference is the direct (Sincos-per-tap) evaluation kept as the
// correctness oracle for At.
func (r *Reconstructor) atReference(t float64) float64 {
	n0 := int(math.Round((t - r.t0) / r.tStep))
	h := r.opt.HalfTaps
	d := r.kern.D()
	acc := 0.0
	for n := n0 - h; n <= n0+h; n++ {
		if n < 0 || n >= len(r.ch0) {
			continue
		}
		tn := r.t0 + float64(n)*r.tStep
		dt0 := t - tn
		if w := r.window(dt0); w != 0 {
			acc += r.ch0[n] * r.kern.S(dt0) * w
		}
		dt1 := tn + d - t
		if w := r.window(dt1); w != 0 {
			acc += r.ch1[n] * r.kern.S(dt1) * w
		}
	}
	return acc
}

// AtTimes evaluates the reconstruction at each instant. The instants are
// independent, so they fan out over the par worker pool; out[i] is always
// At(ts[i]) regardless of the pool size.
func (r *Reconstructor) AtTimes(ts []float64) []float64 {
	out := make([]float64, len(ts))
	r.AtTimesInto(ts, out)
	return out
}

// AtTimesInto is AtTimes writing into a caller-provided buffer (len(out)
// must be >= len(ts)), so repeated evaluations over the same grid — the
// BIST measure stage runs three per unit — stay allocation-free.
func (r *Reconstructor) AtTimesInto(ts []float64, out []float64) {
	par.For(len(ts), func(i int) {
		out[i] = r.At(ts[i])
	})
}

// Envelope returns the complex envelope of the reconstruction around fc
// evaluated at the given instants, by instantaneous analytic mixing. The
// caller should lowpass/decimate the result (the 2fc image is attenuated by
// subsequent PSD windowing or filtering).
func (r *Reconstructor) Envelope(fc float64, ts []float64) []complex128 {
	out := make([]complex128, len(ts))
	r.EnvelopeInto(fc, ts, out)
	return out
}

// EnvelopeInto is Envelope writing into a caller-provided buffer (len(out)
// must be >= len(ts)).
func (r *Reconstructor) EnvelopeInto(fc float64, ts []float64, out []complex128) {
	par.For(len(ts), func(i int) {
		t := ts[i]
		v := r.At(t)
		s, c := math.Sincos(2 * math.Pi * fc * t)
		out[i] = complex(2*v*c, -2*v*s)
	})
}
