package pnbs

import (
	"math/rand"
	"testing"

	"repro/internal/par"
)

// The PNBS reconstruction must be a pure function of (capture, delay,
// instant): evaluating a batch in any order, at any pool width, must yield
// bit-identical values per instant. These are the metamorphic guarantees
// the parallel experiment runners rely on.

func invarianceFixture(t *testing.T) (*Reconstructor, []float64) {
	t.Helper()
	band := Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	ch0, ch1 := toneCapture(band, d, 300)
	r, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.ValidRange()
	rng := rand.New(rand.NewSource(7))
	ts := make([]float64, 193)
	for i := range ts {
		ts[i] = lo + (hi-lo)*rng.Float64()
	}
	return r, ts
}

func TestAtTimesPermutationInvariance(t *testing.T) {
	r, ts := invarianceFixture(t)
	base := r.AtTimes(ts)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(ts))
		shuffled := make([]float64, len(ts))
		for i, j := range perm {
			shuffled[i] = ts[j]
		}
		got := r.AtTimes(shuffled)
		for i, j := range perm {
			if got[i] != base[j] {
				t.Fatalf("trial %d: At(ts[%d]) = %g via permutation, %g in order",
					trial, j, got[i], base[j])
			}
		}
	}
}

func TestAtTimesWorkerCountInvariance(t *testing.T) {
	r, ts := invarianceFixture(t)
	serial := make([]float64, len(ts))
	for i, tv := range ts {
		serial[i] = r.At(tv)
	}
	for _, w := range []int{1, 2, 3, 8, 16} {
		prev := par.SetWorkers(w)
		got := r.AtTimes(ts)
		par.SetWorkers(prev)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: AtTimes[%d] = %g, serial %g", w, i, got[i], serial[i])
			}
		}
	}
}
