package pnbs

import (
	"math"
	"math/rand"
	"testing"
)

// TestAtBlockMatchesAtAndReference is the tentpole differential: over
// random bands, delays and instant orders, AtBlock must be BIT-IDENTICAL
// to the per-instant At path (the batch path hoists only delay-independent
// setup, never reassociating the per-instant arithmetic), and must agree
// with the direct Sincos oracle atReference to the same tolerance At does.
func TestAtBlockMatchesAtAndReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bands := []Band{
		{FLow: 955e6, B: 90e6},   // the paper band
		{FLow: 977.5e6, B: 45e6}, // its half-rate companion
		{FLow: 430e6, B: 70e6},
		{FLow: 1.21e9, B: 33e6},
		{FLow: 225e6, B: 50e6}, // 2 fl / B = 9: integer-positioned, s0 = 0
	}
	for bi, band := range bands {
		for trial := 0; trial < 3; trial++ {
			d := band.OptimalD() * (0.5 + rng.Float64())
			ch0, ch1 := toneCapture(band, d, 220)
			// Stress rough data too: the tables fold the capture verbatim.
			if trial == 2 {
				for i := range ch0 {
					ch0[i] += 0.1 * (2*rng.Float64() - 1)
					ch1[i] += 0.1 * (2*rng.Float64() - 1)
				}
			}
			r, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
			if err != nil {
				t.Fatalf("band %d: %v", bi, err)
			}
			lo, hi := r.ValidRange()
			ts := make([]float64, 97)
			for i := range ts {
				ts[i] = lo + (hi-lo)*rng.Float64()
			}
			// Include instants outside the valid range and on a sample
			// instant (singular tap offsets) among the random ones.
			ts[0] = lo - 40*r.tStep // clamped tap span
			ts[1] = r.t0 + 57*r.tStep
			dst := make([]float64, len(ts))
			r.AtBlock(ts, dst)
			for i, tv := range ts {
				at := r.At(tv)
				if dst[i] != at {
					t.Fatalf("band %d trial %d t=%g: AtBlock %.17g != At %.17g",
						bi, trial, tv, dst[i], at)
				}
				ref := r.atReference(tv)
				if rd := math.Abs(dst[i] - ref); rd > 1e-9*math.Max(math.Abs(dst[i]), math.Abs(ref))+1e-9 {
					t.Fatalf("band %d trial %d t=%g: AtBlock %g vs atReference %g",
						bi, trial, tv, dst[i], ref)
				}
			}
		}
	}
}

// TestAtBlockRangeSplitInvariance: evaluating a block in one piece, in many
// contiguous ranges, or one instant at a time must produce bit-identical
// values — the property the par-fanned blocked Cost relies on.
func TestAtBlockRangeSplitInvariance(t *testing.T) {
	r, ts := invarianceFixture(t)
	whole := make([]float64, len(ts))
	r.AtBlock(ts, whole)
	for _, pieces := range []int{2, 3, 7, len(ts)} {
		got := make([]float64, len(ts))
		for g := 0; g < pieces; g++ {
			lo := g * len(ts) / pieces
			hi := (g + 1) * len(ts) / pieces
			r.AtBlockRange(ts, lo, hi, got[lo:hi])
		}
		for i := range got {
			if got[i] != whole[i] {
				t.Fatalf("pieces=%d i=%d: %.17g != whole-block %.17g", pieces, i, got[i], whole[i])
			}
		}
	}
}

// TestAtBlockPrepSurvivesRetune: the per-block tables are delay
// independent, so a Retune must reuse them and still evaluate exactly like
// a reconstructor freshly built at the new delay (which builds its own
// tables from scratch), which in turn must equal the per-instant At path
// bit for bit.
func TestAtBlockPrepSurvivesRetune(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	ch0, ch1 := toneCapture(band, 180e-12, 260)
	r, err := NewReconstructor(band, 180e-12, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.ValidRange()
	rng := rand.New(rand.NewSource(5))
	ts := make([]float64, 64)
	for i := range ts {
		ts[i] = lo + (hi-lo)*rng.Float64()
	}
	warm := make([]float64, len(ts))
	r.AtBlock(ts, warm) // builds the tables at d = 180 ps
	for _, d := range []float64{120e-12, 240e-12, 180e-12} {
		if err := r.Retune(d); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(ts))
		r.AtBlock(ts, got) // must hit the cached tables
		fresh, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(ts))
		fresh.AtBlock(ts, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("d=%g i=%d: retuned block %.17g != fresh build %.17g", d, i, got[i], want[i])
			}
			if at := r.At(ts[i]); got[i] != at {
				t.Fatalf("d=%g i=%d: retuned block %.17g != At %.17g", d, i, got[i], at)
			}
		}
	}
}

// TestAtBlockNewInstantsRebuild: switching instant blocks (value-keyed)
// must transparently rebuild; switching back must still be correct.
func TestAtBlockNewInstantsRebuild(t *testing.T) {
	r, ts := invarianceFixture(t)
	a := make([]float64, len(ts))
	r.AtBlock(ts, a)
	lo, hi := r.ValidRange()
	other := make([]float64, 31)
	for i := range other {
		other[i] = lo + (hi-lo)*float64(i)/float64(len(other)-1)
	}
	b := make([]float64, len(other))
	r.AtBlock(other, b)
	for i, tv := range other {
		if at := r.At(tv); b[i] != at {
			t.Fatalf("other block i=%d: %.17g != At %.17g", i, b[i], at)
		}
	}
	a2 := make([]float64, len(ts))
	r.AtBlock(ts, a2)
	for i := range a2 {
		if a2[i] != a[i] {
			t.Fatalf("re-prepared block differs at %d: %.17g vs %.17g", i, a2[i], a[i])
		}
	}
}

// FuzzAtBlockVsAt differentially fuzzes the blocked batch path against the
// per-instant At path on fuzzed delays, instants and capture contents. The
// contract is bit-identity, so the comparison is exact equality.
func FuzzAtBlockVsAt(f *testing.F) {
	f.Add(0.36, 0.5, int64(1))
	f.Add(0.9, 0.0, int64(2))   // instant on a sample point
	f.Add(0.36, -1.5, int64(3)) // instant outside the valid range
	f.Add(0.123, 0.77, int64(4))
	f.Add(0.5, 0.25, int64(5))
	f.Fuzz(func(t *testing.T, dFrac, tFrac float64, seed int64) {
		if math.IsNaN(dFrac) || math.IsInf(dFrac, 0) || math.IsNaN(tFrac) || math.IsInf(tFrac, 0) {
			t.Skip()
		}
		band := Band{FLow: 955e6, B: 90e6}
		maxD := 2 / band.B
		d := math.Remainder(dFrac, 2) * maxD / 2
		rng := rand.New(rand.NewSource(seed))
		n := 72
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := range ch0 {
			ch0[i] = 2*rng.Float64() - 1
			ch1[i] = 2*rng.Float64() - 1
		}
		r, err := NewReconstructor(band, d, 0, ch0, ch1, Options{HalfTaps: 6})
		if err != nil {
			t.Skip() // infeasible delay
		}
		span := float64(n) * r.tStep
		// Fold tFrac into [-0.5, 1.5] spans: inside, edges, and outside.
		frac := math.Remainder(tFrac, 2)
		ts := make([]float64, 17)
		for i := range ts {
			ts[i] = (frac + float64(i-8)/16) * span
		}
		dst := make([]float64, len(ts))
		r.AtBlock(ts, dst)
		for i, tv := range ts {
			at := r.At(tv)
			if dst[i] != at {
				t.Fatalf("d=%g t=%g: AtBlock %.17g != At %.17g", d, tv, dst[i], at)
			}
		}
	})
}
