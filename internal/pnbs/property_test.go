package pnbs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFeasibleBand draws a band and a stable delay from the generator.
func randomFeasibleBand(rng *rand.Rand) (Band, float64) {
	for {
		band := Band{
			FLow: 100e6 + rng.Float64()*2.9e9,
			B:    10e6 + rng.Float64()*90e6,
		}
		d := band.OptimalD() * (0.5 + rng.Float64()) // [0.5, 1.5] x optimal
		if _, err := NewKernel(band, d); err == nil {
			return band, d
		}
	}
}

func TestKernelIdentitiesPropertyRandomBands(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		band, d := randomFeasibleBand(rng)
		k, err := NewKernel(band, d)
		if err != nil {
			return false
		}
		// s(0) = 1.
		if math.Abs(k.S(0)-1) > 1e-6 {
			t.Logf("seed %d: s(0) = %g for band %+v d %g", seed, k.S(0), band, d)
			return false
		}
		// s(mT) = 0 for m != 0.
		for _, m := range []int{1, -2, 3, 7} {
			if v := k.S(float64(m) * band.T()); math.Abs(v) > 1e-6 {
				t.Logf("seed %d: s(%dT) = %g", seed, m, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReconstructionPropertyRandomBands(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		band, d := randomFeasibleBand(rng)
		// Random in-band tone, ideal sampling, modest capture.
		f0 := band.FLow + (0.1+0.8*rng.Float64())*band.B
		ph := 2 * math.Pi * rng.Float64()
		eval := func(tv float64) float64 { return math.Cos(2*math.Pi*f0*tv + ph) }
		tt := band.T()
		n := 200
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = eval(float64(i) * tt)
			ch1[i] = eval(float64(i)*tt + d)
		}
		rec, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		lo, hi := rec.ValidRange()
		worst := 0.0
		for i := 0; i < 40; i++ {
			tv := lo + (hi-lo)*rng.Float64()
			if e := math.Abs(rec.At(tv) - eval(tv)); e > worst {
				worst = e
			}
		}
		if worst > 2e-2 {
			t.Logf("seed %d: band %+v d %g: worst error %g", seed, band, d, worst)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEq4BoundPropertyRandomBands(t *testing.T) {
	// DeltaDFor and SpectralErrorBound must stay exact inverses, and the
	// bound must scale linearly in dD for every band.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		band, _ := randomFeasibleBand(rng)
		rel := 0.001 + rng.Float64()*0.1
		dd := DeltaDFor(band, rel)
		if math.Abs(SpectralErrorBound(band, dd)-rel) > 1e-12 {
			return false
		}
		return math.Abs(SpectralErrorBound(band, 2*dd)-2*rel) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPBSWindowsPropertyNoOverlapAndCoverMin(t *testing.T) {
	// For random bands: windows are disjoint and 2B is a lower bound on
	// every alias-free rate.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		band, _ := randomFeasibleBand(rng)
		wins, err := AllowedWindows(band)
		if err != nil || len(wins) == 0 {
			return false
		}
		for i := 1; i < len(wins); i++ {
			if wins[i].Hi > wins[i-1].Lo+1e-3 {
				return false
			}
		}
		for _, w := range wins {
			if w.Lo < 2*band.B-1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
