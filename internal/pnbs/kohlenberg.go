// Package pnbs implements Periodically Nonuniform Bandpass Sampling of
// second order (Kohlenberg 1953), the mathematical core of the paper: exact
// reconstruction of a bandpass signal from two uniform sample sets f(nT) and
// f(nT+D) at the minimal per-channel rate B = 1/T, for any band location.
// It also provides the uniform bandpass sampling (PBS) baseline of Section
// II-A and the robustness bounds of Section II-B.
package pnbs

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// Band describes a real bandpass spectral support fl < |v| < fl + B.
type Band struct {
	// FLow is the lower band edge fl in Hz.
	FLow float64
	// B is the information bandwidth in Hz.
	B float64
}

// NewBand validates the band.
func NewBand(fLow, b float64) (Band, error) {
	if fLow <= 0 || b <= 0 {
		return Band{}, fmt.Errorf("pnbs: band needs positive fl and B, got %g, %g", fLow, b)
	}
	return Band{FLow: fLow, B: b}, nil
}

// FHigh returns the upper band edge fl + B.
func (b Band) FHigh() float64 { return b.FLow + b.B }

// Fc returns the band centre.
func (b Band) Fc() float64 { return b.FLow + b.B/2 }

// T returns the per-channel sampling period 1/B.
func (b Band) T() float64 { return 1 / b.B }

// K returns k = ceil(2 fl / B) from Eq. (2d).
func (b Band) K() int { return int(math.Ceil(2 * b.FLow / b.B)) }

// KPlus returns k+ = k + 1.
func (b Band) KPlus() int { return b.K() + 1 }

// IntegerPositioned reports whether 2 fl / B is an integer, the degenerate
// case where the s0 term of the kernel vanishes identically and uniform
// first-order bandpass sampling would already work.
func (b Band) IntegerPositioned() bool {
	r := 2 * b.FLow / b.B
	return math.Abs(r-math.Round(r)) < 1e-9
}

// OptimalD returns the delay minimising the kernel coefficient magnitudes,
// D = 1/(4 fc) (Vaughan et al., cited as the paper's Eq. choice in II-B.1).
func (b Band) OptimalD() float64 { return 1 / (4 * b.Fc()) }

// ForbiddenD lists the unstable delays n T / k and n T / (k+1) of Eq. (3)
// inside (0, maxD]. When the s0 term vanishes (IntegerPositioned), only the
// k+1 family applies.
func (b Band) ForbiddenD(maxD float64) []float64 {
	t := b.T()
	var out []float64
	add := func(den int) {
		for n := 1; ; n++ {
			d := float64(n) * t / float64(den)
			if d > maxD {
				return
			}
			out = append(out, d)
		}
	}
	if !b.IntegerPositioned() {
		add(b.K())
	}
	add(b.KPlus())
	return out
}

// Kernel evaluates the Kohlenberg interpolation function s(t) = s0(t)+s1(t)
// of Eq. (2) for a band and channel delay D.
type Kernel struct {
	band Band
	d    float64
	// precomputed terms
	k, kp          int
	phi0, phi1     float64 // k pi B D and k+ pi B D
	sin0, sin1     float64
	a0, b0, a1, b1 float64 // angular rates of the cosine differences
	s0Zero         bool
}

// MinSinMargin is the smallest |sin(k pi B D)| accepted before the kernel is
// declared unstable (coefficients blow up as 1/sin per Eq. 3).
const MinSinMargin = 1e-6

// NewKernel validates the stability conditions of Eq. (3) and precomputes
// the kernel terms.
func NewKernel(band Band, d float64) (*Kernel, error) {
	if _, err := NewBand(band.FLow, band.B); err != nil {
		return nil, err
	}
	k := band.K()
	kp := band.KPlus()
	fl := band.FLow
	bw := band.B
	krn := &Kernel{
		band:   band,
		k:      k,
		kp:     kp,
		a0:     2 * math.Pi * (float64(k)*bw - fl),
		b0:     2 * math.Pi * fl,
		a1:     2 * math.Pi * (fl + bw),
		b1:     2 * math.Pi * (float64(k)*bw - fl),
		s0Zero: band.IntegerPositioned(),
	}
	if err := krn.retune(d); err != nil {
		return nil, err
	}
	return krn, nil
}

// retune swaps the delay in place. Only phi0/phi1 and their sines depend
// on D — the angular rates and the band geometry do not — so a retune is a
// handful of multiplies and two sines, with zero allocation. On a
// stability violation (Eq. 3) the kernel keeps its previous delay.
func (k *Kernel) retune(d float64) error {
	if d == 0 {
		return fmt.Errorf("pnbs: delay D must be nonzero")
	}
	bw := k.band.B
	phi0 := float64(k.k) * math.Pi * bw * d
	phi1 := float64(k.kp) * math.Pi * bw * d
	sin0 := math.Sin(phi0)
	sin1 := math.Sin(phi1)
	if !k.s0Zero && math.Abs(sin0) < MinSinMargin {
		return fmt.Errorf("pnbs: D = %g violates Eq. (3a): D ~ nT/k (sin(k pi B D) = %g)",
			d, sin0)
	}
	if math.Abs(sin1) < MinSinMargin {
		return fmt.Errorf("pnbs: D = %g violates Eq. (3b): D ~ nT/(k+1) (sin(k+ pi B D) = %g)",
			d, sin1)
	}
	k.d, k.phi0, k.phi1, k.sin0, k.sin1 = d, phi0, phi1, sin0, sin1
	return nil
}

// Band returns the kernel's band.
func (k *Kernel) Band() Band { return k.band }

// D returns the kernel's delay.
func (k *Kernel) D() float64 { return k.d }

// S evaluates the interpolation function s(t) of Eq. (2). The removable
// singularity at t = 0 is handled analytically; the function satisfies
// s(0) = 1 and s(mT) = 0 for integer m != 0.
func (k *Kernel) S(t float64) float64 {
	return k.s0(t) + k.s1(t)
}

// s0 implements Eq. (2b): [cos((a0)t - phi0) - cos((b0)t - phi0)] /
// (2 pi B t sin(phi0)), with its t -> 0 limit.
func (k *Kernel) s0(t float64) float64 {
	if k.s0Zero {
		return 0
	}
	num := dsp.DiffCosOverT(k.a0, -k.phi0, k.b0, -k.phi0, t)
	return num / (2 * math.Pi * k.band.B * k.sin0)
}

// s1 implements Eq. (2c) with its t -> 0 limit.
func (k *Kernel) s1(t float64) float64 {
	num := dsp.DiffCosOverT(k.a1, -k.phi1, k.b1, -k.phi1, t)
	return num / (2 * math.Pi * k.band.B * k.sin1)
}

// CoefficientMetric quantifies the kernel magnitude growth as D approaches a
// forbidden value (Section II-B.1): 1/|sin(k pi B D)| + 1/|sin(k+ pi B D)|.
// Larger values need longer, more precise reconstruction filters.
func CoefficientMetric(band Band, d float64) float64 {
	k := band.K()
	kp := band.KPlus()
	m := 0.0
	if !band.IntegerPositioned() {
		s := math.Abs(math.Sin(float64(k) * math.Pi * band.B * d))
		if s == 0 {
			return math.Inf(1)
		}
		m += 1 / s
	}
	s := math.Abs(math.Sin(float64(kp) * math.Pi * band.B * d))
	if s == 0 {
		return math.Inf(1)
	}
	return m + 1/s
}

// SpectralErrorBound returns the paper's Eq. (4) first-order bound on the
// relative spectral reconstruction error for a delay-estimate error dD:
// |dF| ~ pi B (k+1) dD.
func SpectralErrorBound(band Band, dD float64) float64 {
	return math.Pi * band.B * float64(band.KPlus()) * math.Abs(dD)
}

// DeltaDFor inverts Eq. (4): the delay accuracy needed for a target relative
// spectral error. The paper's example (fc = 1 GHz, B = 80 MHz, 1 %) gives
// ~2 ps.
func DeltaDFor(band Band, relErr float64) float64 {
	return relErr / (math.Pi * band.B * float64(band.KPlus()))
}
