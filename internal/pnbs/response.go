package pnbs

import (
	"fmt"
	"math"
)

// ResponsePoint is the measured complex gain of the practical reconstructor
// at one frequency.
type ResponsePoint struct {
	// Freq is the probe frequency in Hz.
	Freq float64
	// GainDB is the reconstruction magnitude error 20 log10 |H|.
	GainDB float64
	// PhaseErr is the residual phase error in radians after removing the
	// probe's own phase.
	PhaseErr float64
}

// FrequencyResponse measures the effective transfer function of the
// truncated, windowed reconstruction (Eq. 6 with nw+1 taps) by
// reconstructing pure sinusoids across the probe frequencies: for each f a
// noiseless capture of cos(2 pi f t) is reconstructed and the complex gain
// is extracted by correlation over the valid range. An ideal (infinite)
// reconstructor has H = 1 in-band and H = 0 out of band; the truncation and
// window produce passband ripple and finite stopband rejection, the
// quantities that justify the paper's 61-tap / Kaiser choice.
func FrequencyResponse(band Band, d float64, opt Options, freqs []float64) ([]ResponsePoint, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("pnbs: no probe frequencies")
	}
	tt := band.T()
	n := 6*opt.withDefaults().HalfTaps + 200
	out := make([]ResponsePoint, 0, len(freqs))
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("pnbs: probe frequency %g must be positive", f)
		}
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = math.Cos(2 * math.Pi * f * float64(i) * tt)
			ch1[i] = math.Cos(2 * math.Pi * f * (float64(i)*tt + d))
		}
		rec, err := NewReconstructor(band, d, 0, ch0, ch1, opt)
		if err != nil {
			return nil, err
		}
		lo, hi := rec.ValidRange()
		// Correlate the reconstruction with the analytic probe (I/Q) over a
		// uniform grid in the valid range.
		const m = 400
		var accI, accQ, ref float64
		for i := 0; i < m; i++ {
			tv := lo + (hi-lo)*float64(i)/float64(m-1)
			v := rec.At(tv)
			s, c := math.Sincos(2 * math.Pi * f * tv)
			accI += v * c
			accQ += v * -s
			ref += c * c
		}
		gain := math.Hypot(accI, accQ) / ref
		phase := math.Atan2(accQ, accI)
		db := -400.0
		if gain > 0 {
			db = 20 * math.Log10(gain)
		}
		out = append(out, ResponsePoint{Freq: f, GainDB: db, PhaseErr: phase})
	}
	return out, nil
}

// PassbandRipple summarises a response over the given band: the maximum
// |gain error| in dB across in-band points.
func PassbandRipple(points []ResponsePoint, band Band) float64 {
	worst := 0.0
	for _, p := range points {
		if p.Freq >= band.FLow && p.Freq <= band.FHigh() {
			if a := math.Abs(p.GainDB); a > worst {
				worst = a
			}
		}
	}
	return worst
}

// StopbandRejection returns the worst (least negative) out-of-band gain in
// dB; more negative is better.
func StopbandRejection(points []ResponsePoint, band Band) float64 {
	worst := math.Inf(-1)
	for _, p := range points {
		if p.Freq < band.FLow || p.Freq > band.FHigh() {
			if p.GainDB > worst {
				worst = p.GainDB
			}
		}
	}
	return worst
}
