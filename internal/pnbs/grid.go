package pnbs

import (
	"math"

	"repro/internal/par"
)

// This file implements the uniform-grid evaluation path of the measure
// stage. The BIST's spectral instruments (mask PSD, EVM, IRR) all evaluate
// the reconstruction on grids t_i = t0 + i/fs with fs an integer multiple
// of the capture rate: consecutive instants advance the tap window by
// exactly one capture sample every `over` points, so the tap geometry —
// and with the delay fixed after estimation, the entire per-tap factor
// w(dt) S(dt) — repeats with period `over`. gridPrep folds window and
// kernel into one fused coefficient per tap per phase; a grid instant then
// costs a single dot product of the 2h+1 coefficient pairs against the
// capture, with no window, kernel, or trigonometric work in the loop.
//
// Unlike AtBlock (whose results are pinned bit-for-bit by the estimate
// goldens), the grid path feeds tolerance-checked spectral measurements,
// so it evaluates the kernel directly through Kernel.S — the atReference
// form — and agrees with At to reassociated rounding (~1e-12 relative).
// Instants whose tap span is clamped at the capture edges, or that do not
// land on the expected uniform pattern, fall back to At per instant.

// gridPrep holds the fused per-phase coefficient tables for one
// (t0, fs, d) uniform grid.
type gridPrep struct {
	t0, fs, d float64
	over      int
	// n0Base[p] is the tap-center capture index of grid instant p; instant
	// i = q*over + p has center n0Base[p] + q.
	n0Base []int
	// a0/a1 are the fused w(dt) S(dt) coefficients for the prompt and
	// delayed channels, phase-major with stride 2h+1.
	a0, a1 []float64
}

// buildGridPrep constructs the per-phase tables, or returns nil when fs is
// not (numerically) an integer multiple of the capture rate — the caller
// then evaluates every instant through At.
func (r *Reconstructor) buildGridPrep(t0, fs float64) *gridPrep {
	over := int(math.Round(fs * r.tStep))
	if over < 1 || math.Abs(fs*r.tStep-float64(over)) > 1e-9*float64(over) {
		return nil
	}
	k := r.kern
	h := r.opt.HalfTaps
	nt := 2*h + 1
	d := k.D()
	g := &gridPrep{
		t0: t0, fs: fs, d: d, over: over,
		n0Base: make([]int, over),
		a0:     make([]float64, over*nt),
		a1:     make([]float64, over*nt),
	}
	for p := 0; p < over; p++ {
		t := t0 + float64(p)/fs
		n0 := int(math.Round((t - r.t0) / r.tStep))
		g.n0Base[p] = n0
		nLo := n0 - h
		dt0 := t - r.t0 - float64(nLo)*r.tStep
		dt1 := r.t0 + float64(nLo)*r.tStep + d - t
		for j := 0; j < nt; j++ {
			if w := r.window(dt0); w != 0 {
				g.a0[p*nt+j] = w * k.S(dt0)
			}
			if w := r.window(dt1); w != 0 {
				g.a1[p*nt+j] = w * k.S(dt1)
			}
			dt0 -= r.tStep
			dt1 += r.tStep
		}
	}
	return g
}

// gridFor returns the cached tables for this (t0, fs) grid at the current
// delay, rebuilding on a miss (a Retune changes d and so invalidates). A
// nil return means the grid is incommensurate with the capture rate.
func (r *Reconstructor) gridFor(t0, fs float64) *gridPrep {
	if g := r.grid.Load(); g != nil && g.t0 == t0 && g.fs == fs && g.d == r.kern.D() {
		return g
	}
	g := r.buildGridPrep(t0, fs)
	if g != nil {
		r.grid.Store(g)
	}
	return g
}

// at evaluates grid instant i (t = t0 + i/fs) through the phase tables,
// falling back to the general path for clamped or off-pattern instants.
func (g *gridPrep) at(r *Reconstructor, i int, t float64) float64 {
	p := i % g.over
	n0 := g.n0Base[p] + i/g.over
	h := r.opt.HalfTaps
	nt := 2*h + 1
	nLo := n0 - h
	if nLo < 0 || nLo+nt > len(r.ch0) {
		return r.At(t) // clamped tap span at the capture edges
	}
	if int(math.Round((t-r.t0)/r.tStep)) != n0 {
		return r.At(t) // instant off the assumed uniform pattern
	}
	a0 := g.a0[p*nt:][:nt]
	a1 := g.a1[p*nt:][:nt]
	ch0 := r.ch0[nLo:][:nt]
	ch1 := r.ch1[nLo:][:nt]
	acc := 0.0
	for j := range a0 {
		acc += a0[j]*ch0[j] + a1[j]*ch1[j]
	}
	return acc
}

// AtGridInto evaluates the reconstruction on the uniform grid
// t_i = t0 + i/fs for i < len(out), through the fused per-phase tables
// when the grid is commensurate with the capture rate and through At
// otherwise. The instants fan out over the par pool exactly like
// AtTimesInto, so the observability counters see the same work.
func (r *Reconstructor) AtGridInto(t0, fs float64, out []float64) {
	g := r.gridFor(t0, fs)
	par.For(len(out), func(i int) {
		t := t0 + float64(i)/fs
		if g != nil {
			out[i] = g.at(r, i, t)
		} else {
			out[i] = r.At(t)
		}
	})
}

// EnvelopeGridInto evaluates the complex envelope around fc on the uniform
// grid t_i = t0 + i/fs for i < len(out), by instantaneous analytic mixing
// of the grid-path reconstruction (see Envelope). It is the zero-alloc,
// table-driven form of EnvelopeInto for the measure stage's grids.
func (r *Reconstructor) EnvelopeGridInto(fc, t0, fs float64, out []complex128) {
	g := r.gridFor(t0, fs)
	par.For(len(out), func(i int) {
		t := t0 + float64(i)/fs
		var v float64
		if g != nil {
			v = g.at(r, i, t)
		} else {
			v = r.At(t)
		}
		s, c := math.Sincos(2 * math.Pi * fc * t)
		out[i] = complex(2*v*c, -2*v*s)
	})
}
