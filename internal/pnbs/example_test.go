package pnbs_test

import (
	"fmt"
	"math"

	"repro/internal/pnbs"
)

// Reconstruct a 1 GHz bandpass tone from two 90 MS/s sample sets — the
// paper's core mechanism in a dozen lines.
func ExampleNewReconstructor() {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	tt := band.T()
	n := 300
	f := func(t float64) float64 { return math.Cos(2 * math.Pi * 1e9 * t) }
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = f(float64(i) * tt)
		ch1[i] = f(float64(i)*tt + d)
	}
	rec, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		panic(err)
	}
	// Evaluate at an instant neither channel ever sampled.
	tv := 1.2345e-6
	fmt.Printf("|error| < 1e-3: %v\n", math.Abs(rec.At(tv)-f(tv)) < 1e-3)
	// Output: |error| < 1e-3: true
}

// The PBS baseline shows why uniform subsampling is fragile: the paper's
// Fig. 3b example leaves only a +-4.5 kHz clock budget at the minimal rate.
func ExampleAllowedWindows() {
	band := pnbs.Band{FLow: 2e9, B: 30e6} // fH = 2.03 GHz
	win, err := pnbs.MinAliasFreeRate(band)
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimal alias-free rate %.3f MHz, width %.1f kHz\n",
		win.Lo/1e6, win.Width()/1e3)
	// Output: minimal alias-free rate 60.597 MHz, width 9.0 kHz
}

// Eq. (4): the delay accuracy needed scales with the carrier, which is why
// the paper's LMS estimator exists.
func ExampleDeltaDFor() {
	band := pnbs.Band{FLow: 960e6, B: 80e6} // the Eq. (5) example
	fmt.Printf("dD for 1%% error: %.2f ps\n", pnbs.DeltaDFor(band, 0.01)*1e12)
	// Output: dD for 1% error: 1.59 ps
}
