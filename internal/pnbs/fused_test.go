package pnbs

import (
	"math"
	"math/rand"
	"testing"
)

// fusedTol checks |a-b| against the reassociation budget: 1e-9 relative
// with a 1e-9 absolute floor (values near a reconstruction zero-crossing
// have no meaningful relative error).
func fusedClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-9
}

// TestAtBlockFusedMatchesAt bounds the reassociation error of the fused
// path against the per-instant At path over random bands, delays and
// instants — including an integer-positioned band (s0 = 0), instants on
// sample points (the Taylor branch of the contracted tables), and instants
// outside the capture (fused value must be exactly 0, like At).
func TestAtBlockFusedMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bands := []Band{
		{FLow: 955e6, B: 90e6},   // the paper band
		{FLow: 977.5e6, B: 45e6}, // its half-rate companion
		{FLow: 430e6, B: 70e6},
		{FLow: 225e6, B: 50e6}, // 2 fl / B = 9: integer-positioned, s0 = 0
	}
	for bi, band := range bands {
		for trial := 0; trial < 3; trial++ {
			d := band.OptimalD() * (0.5 + rng.Float64())
			ch0, ch1 := toneCapture(band, d, 220)
			if trial == 2 {
				for i := range ch0 {
					ch0[i] += 0.1 * (2*rng.Float64() - 1)
					ch1[i] += 0.1 * (2*rng.Float64() - 1)
				}
			}
			r, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
			if err != nil {
				t.Fatalf("band %d: %v", bi, err)
			}
			lo, hi := r.ValidRange()
			ts := make([]float64, 97)
			for i := range ts {
				ts[i] = lo + (hi-lo)*rng.Float64()
			}
			ts[0] = lo - 400*r.tStep // out of capture: both paths return 0
			ts[1] = r.t0 + 57*r.tStep
			dst := make([]float64, len(ts))
			r.AtBlockFused(ts, dst)
			for i, tv := range ts {
				at := r.At(tv)
				if i == 0 && (dst[i] != 0 || at != 0) {
					t.Fatalf("band %d: out-of-capture instant: fused %g, At %g", bi, dst[i], at)
				}
				if !fusedClose(dst[i], at) {
					t.Fatalf("band %d trial %d t=%g: AtBlockFused %.17g vs At %.17g",
						bi, trial, tv, dst[i], at)
				}
			}
		}
	}
}

// TestAtBlockFusedPrepSurvivesRetune: the contracted tables are delay
// independent, so a Retune must reuse them and evaluate bit-identically to
// a reconstructor freshly built at the new delay (which builds its own
// tables from the same inputs).
func TestAtBlockFusedPrepSurvivesRetune(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	ch0, ch1 := toneCapture(band, 180e-12, 260)
	r, err := NewReconstructor(band, 180e-12, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.ValidRange()
	rng := rand.New(rand.NewSource(5))
	ts := make([]float64, 64)
	for i := range ts {
		ts[i] = lo + (hi-lo)*rng.Float64()
	}
	warm := make([]float64, len(ts))
	r.AtBlockFused(ts, warm) // builds the tables at d = 180 ps
	for _, d := range []float64{120e-12, 240e-12, 180e-12} {
		if err := r.Retune(d); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(ts))
		r.AtBlockFused(ts, got) // must hit the cached tables
		fresh, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(ts))
		fresh.AtBlockFused(ts, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("d=%g i=%d: retuned fused %.17g != fresh build %.17g", d, i, got[i], want[i])
			}
		}
	}
}

// TestCloneSharesFusedTables pins the amortization mechanism of the pooled
// cost evaluators: clones share the prepared-table cache slots, so a table
// built by any family member is visible to all — and a clone evaluates
// bit-identically to a reconstructor freshly built at its delay.
func TestCloneSharesFusedTables(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	ch0, ch1 := toneCapture(band, 180e-12, 260)
	r, err := NewReconstructor(band, 180e-12, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.ValidRange()
	ts := make([]float64, 40)
	for i := range ts {
		ts[i] = lo + (hi-lo)*float64(i)/float64(len(ts)-1)
	}
	r.PrepareFused(ts)
	r.PrepareBlock(ts)
	c, err := r.Clone(240e-12)
	if err != nil {
		t.Fatal(err)
	}
	if c.fused.Load() != r.fused.Load() || c.fused.Load() == nil {
		t.Fatal("clone does not share the fused table cache")
	}
	if c.block.Load() != r.block.Load() || c.block.Load() == nil {
		t.Fatal("clone does not share the block table cache")
	}
	// Preparation through the clone publishes for the original too.
	other := append([]float64(nil), ts[:20]...)
	c.PrepareFused(other)
	if r.fused.Load() != c.fused.Load() {
		t.Fatal("clone preparation did not publish to the original")
	}
	// The clone is retuned, the original is not.
	if c.Kernel().D() != 240e-12 || r.Kernel().D() != 180e-12 {
		t.Fatalf("delays: clone %g, original %g", c.Kernel().D(), r.Kernel().D())
	}
	got := make([]float64, len(ts))
	c.AtBlockFused(ts, got)
	fresh, err := NewReconstructor(band, 240e-12, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(ts))
	fresh.AtBlockFused(ts, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("i=%d: clone %.17g != fresh %.17g", i, got[i], want[i])
		}
	}
	// Clone at a forbidden delay must fail without disturbing the original.
	if _, err := r.Clone(0); err == nil {
		t.Fatal("clone at zero delay did not fail")
	}
}

// TestCostFusedChunkInvariance: the fused residual partial of a chunk is a
// pure function of the chunk bounds, so any chunking of [0, n) folded in
// order gives bit-identical totals — the worker-count-invariance primitive.
func TestCostFusedChunkInvariance(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	band1 := Band{FLow: 977.5e6, B: 45e6}
	d := 180e-12
	ch0, ch1 := toneCapture(band, d, 220)
	c10, c11 := toneCapture(band1, d, 130)
	rB, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rB1, err := NewReconstructor(band1, d, 0, c10, c11, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo0, hi0 := rB.ValidRange()
	lo1, hi1 := rB1.ValidRange()
	lo, hi := math.Max(lo0, lo1), math.Min(hi0, hi1)
	rng := rand.New(rand.NewSource(3))
	ts := make([]float64, 75)
	for i := range ts {
		ts[i] = lo + (hi-lo)*rng.Float64()
	}
	whole := CostFused(rB, rB1, ts, 0, len(ts))
	for _, chunk := range []int{1, 7, 16, 32, len(ts)} {
		acc := 0.0
		for c := 0; c < len(ts); c += chunk {
			end := c + chunk
			if end > len(ts) {
				end = len(ts)
			}
			acc += CostFused(rB, rB1, ts, c, end)
		}
		// The fold order over chunks differs from the whole-range pass, so
		// compare to reassociation tolerance; per-chunk partials themselves
		// are exact, which the skew worker-invariance tests pin bitwise.
		if !fusedClose(acc, whole) {
			t.Fatalf("chunk=%d: %.17g vs whole %.17g", chunk, acc, whole)
		}
	}
}
