package pnbs

import (
	"math"
	"testing"
)

func TestFrequencyResponsePassbandFlat(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	freqs := []float64{965e6, 980e6, 1e9, 1.02e9, 1.035e9}
	pts, err := FrequencyResponse(band, d, Options{}, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p.GainDB) > 0.1 {
			t.Errorf("f=%g: passband gain %g dB", p.Freq, p.GainDB)
		}
		if math.Abs(p.PhaseErr) > 0.02 {
			t.Errorf("f=%g: phase error %g rad", p.Freq, p.PhaseErr)
		}
	}
	if r := PassbandRipple(pts, band); r > 0.1 {
		t.Errorf("ripple %g dB", r)
	}
}

func TestFrequencyResponseImprovesWithTaps(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	// Probe near the band edge, where truncation hurts most.
	freqs := []float64{958e6, 1.042e9}
	ripple := func(half int) float64 {
		pts, err := FrequencyResponse(band, d, Options{HalfTaps: half}, freqs)
		if err != nil {
			t.Fatal(err)
		}
		return PassbandRipple(pts, band)
	}
	r10, r45 := ripple(10), ripple(45)
	if r45 >= r10 {
		t.Errorf("edge ripple did not improve with taps: %g vs %g dB", r10, r45)
	}
}

func TestFrequencyResponseValidation(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	if _, err := FrequencyResponse(band, 180e-12, Options{}, nil); err == nil {
		t.Error("no probes must fail")
	}
	if _, err := FrequencyResponse(band, 180e-12, Options{}, []float64{-1}); err == nil {
		t.Error("negative probe must fail")
	}
}

func TestStopbandRejection(t *testing.T) {
	pts := []ResponsePoint{
		{Freq: 900e6, GainDB: -35},
		{Freq: 1e9, GainDB: 0.01},
		{Freq: 1.1e9, GainDB: -42},
	}
	band := Band{FLow: 955e6, B: 90e6}
	if got := StopbandRejection(pts, band); got != -35 {
		t.Errorf("stopband %g", got)
	}
	if got := PassbandRipple(pts, band); got != 0.01 {
		t.Errorf("ripple %g", got)
	}
}

func TestAtMatchesReferenceImplementation(t *testing.T) {
	// The phasor-recurrence fast path must agree with the direct kernel
	// evaluation to near machine precision, across bands including the
	// integer-positioned (s0 == 0) case.
	for _, band := range []Band{
		{FLow: 955e6, B: 90e6},
		{FLow: 900e6, B: 90e6}, // integer positioned
		{FLow: 2.164e9, B: 72e6},
	} {
		d := band.OptimalD() * 0.9
		tt := band.T()
		n := 200
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = math.Sin(0.7*float64(i)) + 0.3*math.Cos(0.11*float64(i))
			ch1[i] = math.Sin(0.7*float64(i)+0.2) - 0.2*math.Cos(0.13*float64(i))
		}
		rec, err := NewReconstructor(band, d, 1e-7, ch0, ch1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := rec.ValidRange()
		for i := 0; i <= 200; i++ {
			tv := lo + (hi-lo)*float64(i)/200
			fast := rec.At(tv)
			ref := rec.atReference(tv)
			if math.Abs(fast-ref) > 1e-9*(1+math.Abs(ref)) {
				t.Fatalf("band %+v t=%g: fast %g vs reference %g", band, tv, fast, ref)
			}
		}
		// Exactly on a sample instant (the dt -> 0 branch).
		tv := 1e-7 + 50*tt
		if math.Abs(rec.At(tv)-rec.atReference(tv)) > 1e-9 {
			t.Error("on-sample branch mismatch")
		}
	}
}
