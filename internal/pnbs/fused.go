package pnbs

import "math"

// This file implements the reassociated fused evaluation path of the Eq. (6)
// reconstructor: the estimate-stage hot kernel behind skew.Cost. Unlike
// AtBlock (block.go), which reproduces At bit for bit, the fused path is
// allowed to reassociate — its contract is numerical equivalence within
// tolerance (|fused − serial|/serial <= 1e-9 on the cost), the same contract
// real-time TIADC correction hardware applies when it pipelines these FIR
// folds. That freedom is what lets the prompt-channel tap fold collapse to
// O(1) work per instant per candidate delay:
//
// Write the kernel phase terms as cos(a·dt − φ) = cos(a·dt)cos φ +
// sin(a·dt)sin φ. For the prompt channel the offsets dt0 = t − nT are
// delay-independent, so each instant's whole tap fold contracts to four
// scalars built once at prepare time,
//
//	pc = Σ_j ch0[j]·w(dt0_j)·(cos(a·dt0_j) − cos(b·dt0_j))/dt0_j
//	ps = Σ_j ch0[j]·w(dt0_j)·(sin(a·dt0_j) − sin(b·dt0_j))/dt0_j
//
// per phase pair (a0,b0) and (a1,b1), and the per-candidate evaluation is
// just (pc·cot φ + ps)/(2πB) — only cot φ0 and cot φ1 depend on the delay,
// the same two-phase observation the kernel's Retune exploits. Taps with
// |dt0| below the dsp.DiffCosOverT Taylor threshold contribute their series
// limit (pc term dt·(b²−a²)/2, ps term (a−b)), which is linear in cot φ in
// exactly the same way, so the contraction survives the removable
// singularity.
//
// The delayed channel's offsets dt1 = nT + D − t move with the candidate, so
// it keeps a per-tap loop — but with half of AtBlock's phasor state (the
// four prompt phasors are gone) and the two kernel divisions merged into
// one: s(dt1) = ((ReA0 − ReB0)·inv0 + (ReA1 − ReB1)·inv1)/dt1 with
// inv = 1/(2πB·sin φ) hoisted per candidate.
//
// CostFused fuses the residual-power fold of skew.Cost into the same pass:
// both reconstructions of an instant are produced back to back and only the
// squared difference is accumulated, so samples never round-trip through
// memory. Callers obtain worker-count-invariant totals by evaluating
// fixed-size chunks (par.ForChunks) and folding the per-chunk partials in
// chunk order — blocked summation, which also bounds rounding growth.

// fusedTaylorEps matches the |t| threshold below which dsp.DiffCosOverT
// switches to its series expansion; the prepared tables use the same branch
// point so the fused values track the serial kernel across it.
const fusedTaylorEps = 1e-13

// fusedRow is the per-instant state of the fused path: the prompt-channel
// fold contracted to four delay-independent scalars plus the delayed-channel
// tap-span geometry.
type fusedRow struct {
	// nLo is the first capture index of the tap span (clamped like At);
	// cnt is the tap count, zero for instants outside the capture.
	nLo, cnt int32
	// dtdStart is t0 + nLo·T − t: the first delayed-channel offset at eval
	// time is dt1 = dtdStart + D, associating the delay in last so the
	// prepared part stays delay-independent.
	dtdStart float64
	// pc0/ps0 and pc1/ps1 are the contracted prompt-channel folds for the
	// (a0,b0) and (a1,b1) phase pairs.
	pc0, ps0, pc1, ps1 float64
}

// fusedPrep is the immutable prepared form of one instant block for the
// fused path. It is delay-independent, so it survives Retune and is shared
// across every candidate delay (and, via Reconstructor.Clone, across pooled
// evaluator workers).
type fusedPrep struct {
	ts   []float64
	rows []fusedRow
}

// matches reports whether the prepared tables cover exactly these instants
// (value comparison, like blockPrep.matches).
func (p *fusedPrep) matches(ts []float64) bool {
	if p == nil || len(ts) != len(p.ts) {
		return false
	}
	for i, t := range ts {
		if t != p.ts[i] {
			return false
		}
	}
	return true
}

// buildFusedPrep contracts the prompt-channel tap folds. The tap geometry
// (n0, clamping, dt0 accumulation by repeated subtraction) mirrors At; the
// trig is evaluated by direct Sincos per tap — prepare runs once per
// (capture, instants) and its accuracy feeds every candidate, where the
// cost fold's cancellation amplifies prep error by ~1e6: a phasor
// recurrence here (tried) costs ~4e-9 on the cost and busts the 1e-9
// oracle contract.
func (r *Reconstructor) buildFusedPrep(ts []float64) *fusedPrep {
	h := r.opt.HalfTaps
	k := r.kern
	p := &fusedPrep{
		ts:   append([]float64(nil), ts...),
		rows: make([]fusedRow, len(ts)),
	}
	for i, t := range ts {
		row := &p.rows[i]
		n0 := int(math.Round((t - r.t0) / r.tStep))
		nLo := n0 - h
		if nLo < 0 {
			nLo = 0
		}
		nHi := n0 + h
		if nHi > len(r.ch0)-1 {
			nHi = len(r.ch0) - 1
		}
		if nLo > nHi {
			continue // out-of-capture instant: the fused value is 0
		}
		row.nLo = int32(nLo)
		row.cnt = int32(nHi - nLo + 1)
		row.dtdStart = r.t0 + float64(nLo)*r.tStep - t
		dt0 := t - r.t0 - float64(nLo)*r.tStep
		for n := nLo; n <= nHi; n++ {
			if w := r.window(dt0); w != 0 {
				cw := r.ch0[n] * w
				if math.Abs(dt0) < fusedTaylorEps {
					// Series limit of (cos(a·dt)−cos(b·dt))/dt and
					// (sin(a·dt)−sin(b·dt))/dt, matching DiffCosOverT's
					// expansion to the same order.
					row.pc0 += cw * dt0 * 0.5 * (k.b0*k.b0 - k.a0*k.a0)
					row.ps0 += cw * (k.a0 - k.b0)
					row.pc1 += cw * dt0 * 0.5 * (k.b1*k.b1 - k.a1*k.a1)
					row.ps1 += cw * (k.a1 - k.b1)
				} else {
					inv := cw / dt0
					sA, cA := math.Sincos(k.a0 * dt0)
					sB, cB := math.Sincos(k.b0 * dt0)
					row.pc0 += (cA - cB) * inv
					row.ps0 += (sA - sB) * inv
					sA, cA = math.Sincos(k.a1 * dt0)
					sB, cB = math.Sincos(k.b1 * dt0)
					row.pc1 += (cA - cB) * inv
					row.ps1 += (sA - sB) * inv
				}
			}
			dt0 -= r.tStep
		}
	}
	return p
}

// PrepareFused ensures the fused delay-independent tables for this instant
// block are built, reusing the cached tables when the instants are
// value-equal to the previous block. The cache slot is shared with every
// Clone of this reconstructor, so pooled evaluator workers build the tables
// once between them; a racing double-build is a pure function of the same
// inputs and therefore publishes identical tables.
func (r *Reconstructor) PrepareFused(ts []float64) {
	if r.fused.Load().matches(ts) {
		return
	}
	r.fused.Store(r.buildFusedPrep(ts))
}

// fusedEval is the per-candidate evaluation context: the prepared tables
// plus the handful of delay-dependent scalars hoisted out of the instant
// loop.
type fusedEval struct {
	r       *Reconstructor
	p       *fusedPrep
	d       float64
	inv2piB float64
	// cot0/cot1 contract the prompt-channel tables; inv0/inv1 merge the
	// delayed-channel kernel denominators into one division per tap.
	cot0, cot1 float64
	inv0, inv1 float64
	// winScale/lutCoef/lutInv are the taper lookup hoisted out of
	// Reconstructor.window: the window is the hottest leaf of the tap loop
	// and neither window nor windowLUT.at is inlinable, so the tap loop
	// evaluates the precomputed per-segment cubic coefficients directly.
	// lutCoef is nil for the rectangular (no-taper) window.
	winScale float64
	lutCoef  []float64
	lutInv   float64
}

// fusedEval snapshots the prepared tables (building them if the cached
// block does not match) and hoists the candidate-delay scalars.
func (r *Reconstructor) fusedEvalCtx(ts []float64) fusedEval {
	p := r.fused.Load()
	if !p.matches(ts) {
		p = r.buildFusedPrep(ts)
		r.fused.Store(p)
	}
	k := r.kern
	e := fusedEval{r: r, p: p, d: k.d, inv2piB: 1 / (2 * math.Pi * k.band.B)}
	e.cot1 = math.Cos(k.phi1) / k.sin1
	e.inv1 = e.inv2piB / k.sin1
	if !k.s0Zero {
		e.cot0 = math.Cos(k.phi0) / k.sin0
		e.inv0 = e.inv2piB / k.sin0
	}
	e.winScale = r.winScale
	if r.win != nil {
		e.lutCoef = r.win.coef
		e.lutInv = r.win.inv
	}
	return e
}

// at evaluates instant i of the prepared block for the current candidate.
func (e *fusedEval) at(i int) float64 {
	row := &e.p.rows[i]
	if row.cnt == 0 {
		return 0
	}
	r := e.r
	k := r.kern
	// Prompt channel: the whole tap fold is the prepared contraction against
	// the two delay-dependent cotangents.
	var acc float64
	if k.s0Zero {
		acc = (row.pc1*e.cot1 + row.ps1) * e.inv2piB
	} else {
		acc = ((row.pc0*e.cot0 + row.ps0) + (row.pc1*e.cot1 + row.ps1)) * e.inv2piB
	}
	// Delayed channel: only the REAL parts of AtBlock's phasors are ever
	// consumed here, so the per-tap state is four Chebyshev cosine
	// recurrences (cos(θ+δ) = 2 cos δ · cos θ − cos(θ−δ)) — one multiply
	// per angle per tap in place of a complex multiply — with the two
	// kernel divisions merged. The taper is the precomputed per-segment
	// cubic on the hoisted fusedEval locals (window/windowLUT.at are not
	// inlinable), and the loop is split on s0Zero so the
	// integer-positioned case never touches the (a0,b0) pair it would
	// discard. The j = 0 seeds are the same Sincos arguments the serial
	// kernel evaluates — a factored seed (cis(a·dtdStart)·cis(a·D − φ),
	// tried) decorrelates the trig rounding from the oracle's and the cost
	// fold's ~1e6 cancellation amplification turns that into ~1e-8, past
	// the 1e-9 contract. The j = −1 values follow from the
	// angle-difference identity on the Sincos components, so the second
	// seed per angle is free.
	dt1 := row.dtdStart + e.d
	sv1, cv1 := math.Sincos(k.a1*dt1 - k.phi1)
	tA1 := 2 * real(r.cjA1)
	cA1, pA1 := cv1, cv1*real(r.cjA1)+sv1*imag(r.cjA1)
	sv1, cv1 = math.Sincos(k.b1*dt1 - k.phi1)
	tB1 := 2 * real(r.cjB1)
	cB1, pB1 := cv1, cv1*real(r.cjB1)+sv1*imag(r.cjB1)
	ch1 := r.ch1[row.nLo:][:row.cnt]
	winScale, coef, lutInv := e.winScale, e.lutCoef, e.lutInv
	tStep, inv1 := r.tStep, e.inv1
	dAcc := 0.0
	if k.s0Zero {
		for j := range ch1 {
			x := dt1 * winScale
			if ax := x * x; ax < 1 {
				w := 1.0
				if coef != nil {
					p := ax * lutInv
					ii := int(p)
					if ii > lutSize-1 {
						ii = lutSize - 1
					}
					fr := p - float64(ii)
					c := coef[ii*4 : ii*4+4 : ii*4+4]
					w = ((c[3]*fr+c[2])*fr+c[1])*fr + c[0]
				}
				if w != 0 {
					var sv float64
					if math.Abs(dt1) < 1e-12 {
						sv = k.S(dt1)
					} else {
						sv = (cA1 - cB1) * inv1 / dt1
					}
					dAcc += ch1[j] * sv * w
				}
			}
			dt1 += tStep
			cA1, pA1 = tA1*cA1-pA1, cA1
			cB1, pB1 = tB1*cB1-pB1, cB1
		}
		return acc + dAcc
	}
	sv0, cv0 := math.Sincos(k.a0*dt1 - k.phi0)
	tA0 := 2 * real(r.cjA0)
	cA0, pA0 := cv0, cv0*real(r.cjA0)+sv0*imag(r.cjA0)
	sv0, cv0 = math.Sincos(k.b0*dt1 - k.phi0)
	tB0 := 2 * real(r.cjB0)
	cB0, pB0 := cv0, cv0*real(r.cjB0)+sv0*imag(r.cjB0)
	inv0 := e.inv0
	for j := range ch1 {
		x := dt1 * winScale
		if ax := x * x; ax < 1 {
			w := 1.0
			if coef != nil {
				p := ax * lutInv
				ii := int(p)
				if ii > lutSize-1 {
					ii = lutSize - 1
				}
				fr := p - float64(ii)
				c := coef[ii*4 : ii*4+4 : ii*4+4]
				w = ((c[3]*fr+c[2])*fr+c[1])*fr + c[0]
			}
			if w != 0 {
				var sv float64
				if math.Abs(dt1) < 1e-12 {
					sv = k.S(dt1)
				} else {
					num := (cA1 - cB1) * inv1
					num += (cA0 - cB0) * inv0
					sv = num / dt1
				}
				dAcc += ch1[j] * sv * w
			}
		}
		dt1 += tStep
		cA0, pA0 = tA0*cA0-pA0, cA0
		cB0, pB0 = tB0*cB0-pB0, cB0
		cA1, pA1 = tA1*cA1-pA1, cA1
		cB1, pB1 = tB1*cB1-pB1, cB1
	}
	return acc + dAcc
}

// AtBlockFused evaluates the reconstruction at every instant of the block
// through the fused reassociated kernel, writing dst[i] ~ At(ts[i])
// (len(dst) must be >= len(ts)). Values agree with At to reassociated
// rounding — the differential tests bound the induced cost error at 1e-9
// relative — but are NOT bit-identical; callers that need bit-identity to
// the per-instant path use AtBlock.
func (r *Reconstructor) AtBlockFused(ts []float64, dst []float64) {
	e := r.fusedEvalCtx(ts)
	for i := range ts {
		dst[i] = e.at(i)
	}
}

// CostFused returns the fused residual-power partial
//
//	Σ_{i in [lo,hi)} (rB(ts[i]) − rB1(ts[i]))²
//
// for one chunk of the skew.Cost objective: both reconstructions of each
// instant are produced back to back and only the squared difference is
// accumulated, so the values never round-trip through memory. The partial
// is a pure function of (captures, candidate delays, ts[lo:hi]) —
// independent of how the caller chunks [0, n) or how many workers evaluate
// the chunks — so folding fixed-size chunk partials in chunk order is
// bit-identical at any worker count. Both reconstructors must already be
// retuned to the same candidate delay.
func CostFused(rB, rB1 *Reconstructor, ts []float64, lo, hi int) float64 {
	eB := rB.fusedEvalCtx(ts)
	eB1 := rB1.fusedEvalCtx(ts)
	acc := 0.0
	for i := lo; i < hi; i++ {
		d := eB.at(i) - eB1.at(i)
		acc += d * d
	}
	return acc
}
