package pnbs

import (
	"math"
	"testing"

	"repro/internal/par"
)

// toneCapture samples a paper-band tone into the two channels.
func toneCapture(band Band, d float64, n int) (ch0, ch1 []float64) {
	tt := band.T()
	ch0 = make([]float64, n)
	ch1 = make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = math.Cos(2 * math.Pi * 1.003e9 * float64(i) * tt)
		ch1[i] = math.Cos(2 * math.Pi * 1.003e9 * (float64(i)*tt + d))
	}
	return ch0, ch1
}

func TestWindowLUTMatchesExactSeries(t *testing.T) {
	for _, beta := range []float64{2, 8, 12} {
		lut := lutFor(beta)
		den := i0EvenSeries(beta * beta)
		worst := 0.0
		// Dense off-grid sweep of y = x^2 across the support.
		for i := 0; i < 20000; i++ {
			y := (float64(i) + 0.37) / 20000
			exact := i0EvenSeries(beta*beta*(1-y)) / den
			if e := math.Abs(lut.at(y) - exact); e > worst {
				worst = e
			}
		}
		if worst > 1e-12 {
			t.Errorf("beta %g: LUT error %g exceeds 1e-12", beta, worst)
		}
	}
}

func TestWindowLUTSharedAcrossReconstructors(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	ch0, ch1 := toneCapture(band, 180e-12, 256)
	r1, err := NewReconstructor(band, 180e-12, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReconstructor(band, 210e-12, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.win == nil || r1.win != r2.win {
		t.Error("same-beta reconstructors must share one window table")
	}
}

func TestRetuneMatchesFreshReconstructor(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	ch0, ch1 := toneCapture(band, d, 300)
	retuned, err := NewReconstructor(band, 120e-12, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dHat := range []float64{180e-12, 95e-12, 260e-12, -250e-12} {
		if err := retuned.Retune(dHat); err != nil {
			t.Fatalf("retune to %g: %v", dHat, err)
		}
		fresh, err := NewReconstructor(band, dHat, 0, ch0, ch1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := fresh.ValidRange()
		for i := 0; i < 200; i++ {
			tv := lo + (hi-lo)*float64(i)/199
			a, b := retuned.At(tv), fresh.At(tv)
			if a != b {
				t.Fatalf("dHat %g, t %g: retuned %g != fresh %g", dHat, tv, a, b)
			}
		}
		if retuned.Kernel().D() != dHat {
			t.Fatalf("kernel reports D %g after retune to %g", retuned.Kernel().D(), dHat)
		}
	}
}

func TestRetuneRejectsForbiddenDelayAndKeepsState(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	ch0, ch1 := toneCapture(band, d, 256)
	r, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.ValidRange()
	tv := (lo + hi) / 2
	before := r.At(tv)
	if err := r.Retune(band.T() / float64(band.K())); err == nil {
		t.Fatal("forbidden delay accepted")
	}
	if err := r.Retune(0); err == nil {
		t.Fatal("zero delay accepted")
	}
	if got := r.At(tv); got != before {
		t.Fatalf("failed retune changed state: %g vs %g", got, before)
	}
	if r.Kernel().D() != d {
		t.Fatalf("failed retune changed D: %g", r.Kernel().D())
	}
}

func TestNegativeKaiserBetaIsRectangular(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	ch0, ch1 := toneCapture(band, d, 256)
	rect, err := NewReconstructor(band, d, 0, ch0, ch1, Options{KaiserBeta: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rect.win != nil {
		t.Fatal("negative beta must disable the taper")
	}
	// Inside the support the rectangular taper is exactly 1, outside 0.
	h := (float64(rect.opt.HalfTaps+1)) * band.T()
	for _, frac := range []float64{0, 0.3, 0.9, 0.999} {
		if w := rect.window(frac * h); w != 1 {
			t.Errorf("window(%.3f support) = %g, want 1", frac, w)
		}
	}
	if w := rect.window(1.001 * h); w != 0 {
		t.Errorf("window outside support = %g, want 0", w)
	}
	// And it must genuinely differ from the defaulted beta = 8 taper.
	kaiser, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rect.ValidRange()
	same := true
	for i := 0; i < 50; i++ {
		tv := lo + (hi-lo)*float64(i)/49
		if rect.At(tv) != kaiser.At(tv) {
			same = false
			break
		}
	}
	if same {
		t.Error("rectangular and Kaiser reconstructions are identical")
	}
}

func TestAtTimesParallelMatchesSerial(t *testing.T) {
	band := Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	ch0, ch1 := toneCapture(band, d, 300)
	r, err := NewReconstructor(band, d, 0, ch0, ch1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.ValidRange()
	ts := make([]float64, 257)
	for i := range ts {
		ts[i] = lo + (hi-lo)*float64(i)/float64(len(ts)-1)
	}
	serial := make([]float64, len(ts))
	for i, tv := range ts {
		serial[i] = r.At(tv)
	}
	for _, w := range []int{1, 4} {
		prev := par.SetWorkers(w)
		got := r.AtTimes(ts)
		par.SetWorkers(prev)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: AtTimes[%d] = %g, serial %g", w, i, got[i], serial[i])
			}
		}
	}
}
