package pnbs

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzReconstructRetune differentially tests Retune against fresh
// construction on fuzzed delay pairs: both must agree on which delays are
// feasible (Eq. 3), and on every feasible pair the retuned reconstructor
// must evaluate bit-identically to one built from scratch at the target
// delay — the contract the LMS hot loop depends on.
func FuzzReconstructRetune(f *testing.F) {
	f.Add(0.36, 0.42, int64(1))   // two nearby valid delays
	f.Add(0.36, -0.36, int64(2))  // sign flip
	f.Add(0.5, 0.0, int64(3))     // retune to zero: must be rejected
	f.Add(0.9, 0.25, int64(4))    // large step, LMS-style
	f.Add(-0.7, 0.33, int64(5))   // negative origin
	f.Add(0.123, 0.1234, int64(6))
	f.Fuzz(func(t *testing.T, d1Frac, d2Frac float64, seed int64) {
		if math.IsNaN(d1Frac) || math.IsInf(d1Frac, 0) || math.IsNaN(d2Frac) || math.IsInf(d2Frac, 0) {
			t.Skip()
		}
		band := Band{FLow: 955e6, B: 90e6}
		// Fold the fuzzed fractions into (-2, 2) half-periods: well past the
		// first forbidden-delay families on both sides.
		maxD := 2 / band.B
		d1 := math.Remainder(d1Frac, 2) * maxD / 2
		d2 := math.Remainder(d2Frac, 2) * maxD / 2

		rng := rand.New(rand.NewSource(seed))
		n := 72
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := range ch0 {
			ch0[i] = 2*rng.Float64() - 1
			ch1[i] = 2*rng.Float64() - 1
		}
		opt := Options{HalfTaps: 6}

		r, err := NewReconstructor(band, d1, 0, ch0, ch1, opt)
		if err != nil {
			// d1 infeasible: nothing to retune from.
			t.Skip()
		}
		fresh, freshErr := NewReconstructor(band, d2, 0, ch0, ch1, opt)
		retuneErr := r.Retune(d2)
		if (freshErr == nil) != (retuneErr == nil) {
			t.Fatalf("feasibility disagreement at d2=%g: fresh err %v, retune err %v",
				d2, freshErr, retuneErr)
		}
		if retuneErr != nil {
			// Failed retune must leave the reconstructor at d1.
			if got := r.Kernel().D(); got != d1 {
				t.Fatalf("failed retune moved D: %g, want %g", got, d1)
			}
			return
		}
		lo, hi := fresh.ValidRange()
		for i := 0; i < 25; i++ {
			tv := lo + (hi-lo)*float64(i)/24
			if a, b := r.At(tv), fresh.At(tv); a != b {
				t.Fatalf("d1=%g d2=%g t=%g: retuned %g != fresh %g", d1, d2, tv, a, b)
			}
		}
	})
}
