package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use, but almost every caller wants a registered instance from
// C/Registry.Counter so the value reaches snapshots.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 when collection is enabled.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n when collection is enabled.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the accumulated count.
func (c *Counter) Value() int64 { return c.v.Load() }

// reset zeroes the counter (registry use).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous level (active workers, pool size) that also
// tracks its high-water mark, so a snapshot answers both "how busy now"
// and "how busy at peak" — the occupancy question a worker pool gets asked.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by d (d may be negative) when collection is enabled,
// updating the high-water mark.
func (g *Gauge) Add(d int64) {
	if !enabled.Load() {
		return
	}
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set stores an absolute level when collection is enabled, updating the
// high-water mark.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark since the last reset.
func (g *Gauge) Max() int64 { return g.max.Load() }

func (g *Gauge) reset() {
	g.v.Store(0)
	g.max.Store(0)
}

// Histogram is a fixed-bucket distribution: bounds[i] is the inclusive
// upper edge of bucket i, and one overflow bucket catches everything
// above bounds[len-1]. Bounds are fixed at construction, so Observe is a
// branchy binary search plus two atomic adds — no allocation, no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value when collection is enabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// Binary search for the first bound >= v (hand-rolled: the sort.Search
	// closure would cost an allocation on a hot path).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Start opens a latency span feeding this histogram in seconds. The
// returned Span is a value (no allocation); call End to record. When
// collection is disabled the span is inert and End is free.
func (h *Histogram) Start() Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.n.Store(0)
	h.sum.Store(0)
}

// Span is one in-flight latency measurement. The zero Span (from a
// disabled Start) records nothing.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End records the elapsed time since Start into the histogram, in seconds.
// End on a zero Span is a no-op, so callers never need to re-check the
// enabled flag.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0).Seconds())
	}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1 µs to ~4 s in factor-4 steps — wide enough for
// everything from one plan execution to a full paper-scale BIST run.
var LatencyBuckets = ExpBuckets(1e-6, 4, 12)
