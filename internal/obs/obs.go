// Package obs is the repository's observability substrate: atomic
// counters, gauges and fixed-bucket histograms in a process-wide registry,
// plus a Span timer for stage-level latency. It exists so the questions the
// paper's evaluation asks about work — how many cost evaluations Algorithm 1
// spent, whether the plan cache is hot, whether the reconstructor pool is
// recycling — can be answered on a live run instead of re-derived offline.
//
// Design contract (the reason this package may sit inside the LMS hot
// loop):
//
//   - Disabled (the default) every instrument is a no-op behind one atomic
//     load; nothing allocates and no state changes. Enabled, an increment
//     is a single atomic add (histograms add a branch-free binary search).
//   - Metrics never feed back into computation. Enabling or disabling
//     collection cannot change a single output bit of any pipeline — the
//     golden vectors pass identically either way.
//   - Metric instances are cheap pointers interned in the registry;
//     hot paths hoist the lookup into a package-level var so the map is
//     touched once per process, not per increment.
//
// Collection is enabled explicitly with Enable (cmd/bistlab's -metrics
// flag) or for a whole process with the BIST_METRICS environment variable
// (any value but "" and "0"), mirroring par's BIST_WORKERS knob.
package obs

import (
	"os"
	"sync/atomic"
)

// enabled gates every instrument in the package. A package-global (rather
// than per-registry) flag keeps the disabled fast path to exactly one
// atomic load with no pointer chase.
var enabled atomic.Bool

func init() {
	if s := os.Getenv("BIST_METRICS"); s != "" && s != "0" {
		enabled.Store(true)
	}
}

// Enabled reports whether collection is active.
func Enabled() bool { return enabled.Load() }

// Enable turns collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns collection off. Accumulated values are kept (snapshots
// still read them); use Reset to zero them.
func Disable() { enabled.Store(false) }

// SetEnabled sets the collection state and returns the previous one, which
// makes save/restore in tests a one-liner.
func SetEnabled(on bool) bool { return enabled.Swap(on) }
