package obs

import "testing"

// The disabled benchmarks are the package's contract with the LMS hot
// loop: a disabled instrument must cost one atomic load and zero
// allocations, so leaving the instrumentation compiled into the hot path
// is free. CI runs BenchmarkObsDisabled* as a smoke check.

func BenchmarkObsDisabledCounter(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c := &Counter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsDisabledHistogram(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkObsDisabledSpan(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}

// BenchmarkWindowDisabled holds the rolling-window histogram to the same
// contract: disabled, Observe is one atomic load and must stay 0 allocs.
func BenchmarkWindowDisabled(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	w := NewWindow(LatencyBuckets, 1e9, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(1e-4)
	}
}

func BenchmarkWindowEnabled(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	w := NewWindow(LatencyBuckets, 1e9, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(1e-4)
	}
}

func BenchmarkObsEnabledCounter(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	c := &Counter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsEnabledHistogram(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkObsEnabledSpan(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}
