package obs

import "testing"

// The disabled benchmarks are the package's contract with the LMS hot
// loop: a disabled instrument must cost one atomic load and zero
// allocations, so leaving the instrumentation compiled into the hot path
// is free. CI runs BenchmarkObsDisabled* as a smoke check.

func BenchmarkObsDisabledCounter(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c := &Counter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsDisabledHistogram(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkObsDisabledSpan(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}

func BenchmarkObsEnabledCounter(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	c := &Counter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsEnabledHistogram(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkObsEnabledSpan(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}
