package trace

import (
	"sort"
	"strings"

	"repro/internal/testkit"
)

// The normalized exporter projects a Recording onto what is deterministic
// about a run: span names, nesting, attribute key/values and occurrence
// counts — with timestamps removed, identical siblings merged, and
// scheduling-dependent spans filtered out (their children re-attached to
// the nearest kept ancestor). Two runs of the same configuration produce
// byte-identical normalized output at any worker count, which is what
// makes the span *structure* of a pipeline golden-pinnable the same way
// its numbers already are.

// Node is one normalized span: Count identical siblings collapsed into a
// single entry, children recursively normalized and canonically sorted.
type Node struct {
	Name     string
	Attrs    []string
	Count    int
	Children []*Node
}

// CounterSeries summarizes one counter track: how many samples it carries
// and its first and last values (for the LMS streams: the starting
// estimate and the converged one).
type CounterSeries struct {
	Name        string
	Events      int
	First, Last float64
}

// Normalized is the canonical structural form of a recording.
type Normalized struct {
	Spans    []*Node
	Counters []CounterSeries
}

// DeterministicNames is the default normalization filter: it drops the
// par.* spans (task-to-worker attribution is scheduling-dependent) and the
// dsp.* spans and counters (plan-cache traffic depends on process history,
// not on the run), keeping everything whose structure is fixed by the
// configuration.
func DeterministicNames(name string) bool {
	return !strings.HasPrefix(name, "par.") && !strings.HasPrefix(name, "dsp.")
}

// Normalize projects the recording through keep (nil = DeterministicNames).
// Children of dropped spans are hoisted to their nearest kept ancestor, so
// filtering par.* leaves the spans that ran *inside* the pool attached to
// the span that dispatched the work.
func (rec *Recording) Normalize(keep func(name string) bool) (*Normalized, error) {
	if keep == nil {
		keep = DeterministicNames
	}
	byID := make(map[int32]*SpanData, len(rec.Spans))
	children := make(map[int32][]*SpanData, len(rec.Spans))
	for i := range rec.Spans {
		s := &rec.Spans[i]
		byID[s.ID] = s
	}
	// keptParent resolves a span's nearest ancestor that survives the
	// filter (0 = root). A parent id whose span record is missing (e.g. it
	// was still open at stop, or dropped on overflow) also falls through
	// to the root.
	var keptParent func(parent int32) int32
	keptParent = func(parent int32) int32 {
		for parent != 0 {
			p, ok := byID[parent]
			if !ok {
				return 0
			}
			if keep(p.Name) {
				return parent
			}
			parent = p.Parent
		}
		return 0
	}
	roots := []*SpanData{}
	for i := range rec.Spans {
		s := &rec.Spans[i]
		if !keep(s.Name) {
			continue
		}
		p := keptParent(s.Parent)
		if p == 0 {
			roots = append(roots, s)
		} else {
			children[p] = append(children[p], s)
		}
	}
	var build func(list []*SpanData) ([]*Node, error)
	build = func(list []*SpanData) ([]*Node, error) {
		type keyed struct {
			key  string
			node *Node
		}
		merged := map[string]*keyed{}
		order := []*keyed{}
		for _, s := range list {
			kids, err := build(children[s.ID])
			if err != nil {
				return nil, err
			}
			attrs := make([]string, 0, len(s.Attrs))
			for _, a := range s.Attrs {
				attrs = append(attrs, a.Key+"="+a.Val)
			}
			sort.Strings(attrs)
			n := &Node{Name: s.Name, Attrs: attrs, Count: 1, Children: kids}
			enc, err := testkit.MarshalCanonical(struct {
				Name     string
				Attrs    []string
				Children []*Node
			}{n.Name, n.Attrs, n.Children})
			if err != nil {
				return nil, err
			}
			k := string(enc)
			if prev, ok := merged[k]; ok {
				prev.node.Count++
				continue
			}
			kn := &keyed{key: k, node: n}
			merged[k] = kn
			order = append(order, kn)
		}
		sort.Slice(order, func(i, j int) bool { return order[i].key < order[j].key })
		out := make([]*Node, len(order))
		for i, kn := range order {
			out[i] = kn.node
		}
		return out, nil
	}
	top, err := build(roots)
	if err != nil {
		return nil, err
	}
	norm := &Normalized{Spans: top, Counters: []CounterSeries{}}
	// Counter series: samples grouped by name in emission (seq) order —
	// rec.Counters is already seq-sorted by StopRecording.
	series := map[string]*CounterSeries{}
	snames := []string{}
	for _, c := range rec.Counters {
		if !keep(c.Name) {
			continue
		}
		cs, ok := series[c.Name]
		if !ok {
			cs = &CounterSeries{Name: c.Name, First: c.Value}
			series[c.Name] = cs
			snames = append(snames, c.Name)
		}
		cs.Events++
		cs.Last = c.Value
	}
	sort.Strings(snames)
	for _, n := range snames {
		norm.Counters = append(norm.Counters, *series[n])
	}
	return norm, nil
}

// MarshalNormalized is the one-call form: normalize with the default
// deterministic filter and encode canonically. The output of two runs of
// the same configuration is byte-identical at any worker count.
func (rec *Recording) MarshalNormalized() ([]byte, error) {
	n, err := rec.Normalize(nil)
	if err != nil {
		return nil, err
	}
	return testkit.MarshalCanonical(n)
}
