package trace

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// spanShards spreads completed-span commits across independent buffers so
// concurrent workers do not serialize on one cursor. A power of two keeps
// the shard pick a mask.
const (
	spanShards    = 16
	counterShards = 4
)

// spanRecord is the flat committed form of one span.
type spanRecord struct {
	id     int32
	parent int32
	track  int32
	name   NameID
	start  int64
	dur    int64
	attrs  []Attr
}

// counterRecord is one counter-track sample. seq is a process-wide
// sequence number: within one goroutine it is monotonic, which gives
// counter series emitted serially (the LMS history streams) a total order
// even when the clock granularity collapses two samples onto one
// timestamp.
type counterRecord struct {
	name  string
	track int32
	t     int64
	seq   int64
	value float64
}

// shard is a bounded lock-free append buffer: a slot index is claimed with
// one atomic add and the record is written without further coordination.
// When the buffer is full new records are dropped (and counted) rather
// than wrapping, so no commit ever races a slower writer for a slot.
type shard[T any] struct {
	pos  atomic.Int64
	recs []T
}

func (s *shard[T]) put(rec T, dropped *atomic.Int64) {
	i := s.pos.Add(1) - 1
	if int(i) >= len(s.recs) {
		dropped.Add(1)
		return
	}
	s.recs[i] = rec
}

// collect returns the committed prefix of the shard.
func (s *shard[T]) collect() []T {
	n := s.pos.Load()
	if int(n) > len(s.recs) {
		n = int64(len(s.recs))
	}
	return s.recs[:n]
}

// recorder is one in-progress recording.
type recorder struct {
	epoch     time.Time
	nextID    atomic.Int32
	nextTrack atomic.Int32
	cseq      atomic.Int64
	dropped   atomic.Int64
	spans     [spanShards]shard[spanRecord]
	counters  [counterShards]shard[counterRecord]

	trackMu   sync.Mutex
	trackByID map[int32]string
	trackID   map[string]int32
}

// Config sizes a recording. The buffers are preallocated at StartRecording
// so commits never allocate; overflow drops (and counts) instead of
// growing.
type Config struct {
	// MaxSpans bounds the recorded span count (0 = 1<<16, about 4 MB).
	MaxSpans int
	// MaxCounters bounds the counter samples (0 = 1<<15).
	MaxCounters int
}

func (c Config) withDefaults() Config {
	if c.MaxSpans <= 0 {
		c.MaxSpans = 1 << 16
	}
	if c.MaxCounters <= 0 {
		c.MaxCounters = 1 << 15
	}
	return c
}

// StartRecording begins the process-wide recording. It errors if one is
// already active; recordings do not nest.
func StartRecording(cfg Config) error {
	c := cfg.withDefaults()
	r := &recorder{
		epoch:     time.Now(),
		trackByID: map[int32]string{0: "main"},
		trackID:   map[string]int32{"main": 0},
	}
	perSpan := (c.MaxSpans + spanShards - 1) / spanShards
	for i := range r.spans {
		r.spans[i].recs = make([]spanRecord, perSpan)
	}
	perCtr := (c.MaxCounters + counterShards - 1) / counterShards
	for i := range r.counters {
		r.counters[i].recs = make([]counterRecord, perCtr)
	}
	if !active.CompareAndSwap(nil, r) {
		return fmt.Errorf("trace: a recording is already active")
	}
	return nil
}

// StopRecording detaches the active recording and returns its contents
// (nil if none was active). Spans still open at stop — and any End racing
// the stop — are not part of the result, so callers stop only after the
// traced work has quiesced.
func StopRecording() *Recording {
	r := active.Swap(nil)
	if r == nil {
		return nil
	}
	rec := &Recording{Dropped: r.dropped.Load(), Tracks: map[int32]string{}}
	r.trackMu.Lock()
	for id, name := range r.trackByID {
		rec.Tracks[id] = name
	}
	r.trackMu.Unlock()
	for i := range r.spans {
		for _, sr := range r.spans[i].collect() {
			rec.Spans = append(rec.Spans, SpanData{
				ID:     sr.id,
				Parent: sr.parent,
				Track:  sr.track,
				Name:   nameOf(sr.name),
				Start:  sr.start,
				Dur:    sr.dur,
				Attrs:  sr.attrs,
			})
		}
	}
	for i := range r.counters {
		for _, cr := range r.counters[i].collect() {
			rec.Counters = append(rec.Counters, CounterData{
				Name:  cr.name,
				Track: cr.track,
				T:     cr.t,
				Seq:   cr.seq,
				Value: cr.value,
			})
		}
	}
	sort.Slice(rec.Spans, func(i, j int) bool {
		if rec.Spans[i].Start != rec.Spans[j].Start {
			return rec.Spans[i].Start < rec.Spans[j].Start
		}
		return rec.Spans[i].ID < rec.Spans[j].ID
	})
	sort.Slice(rec.Counters, func(i, j int) bool { return rec.Counters[i].Seq < rec.Counters[j].Seq })
	return rec
}

// commit files a completed span.
func (r *recorder) commit(sr spanRecord) {
	r.spans[uint32(sr.id)%spanShards].put(sr, &r.dropped)
}

// counter files one counter sample.
func (r *recorder) counter(cr counterRecord) {
	r.counters[uint32(cr.seq)%counterShards].put(cr, &r.dropped)
}

// uniqueTrack opens a fresh display track for a root span: "<name>#<id>".
func (r *recorder) uniqueTrack(name string, spanID int32) int32 {
	return r.namedTrack(name + "#" + strconv.Itoa(int(spanID)))
}

// namedTrack interns a display track by label, so repeated labels share a
// row.
func (r *recorder) namedTrack(label string) int32 {
	r.trackMu.Lock()
	defer r.trackMu.Unlock()
	if id, ok := r.trackID[label]; ok {
		return id
	}
	id := r.nextTrack.Add(1)
	r.trackID[label] = id
	r.trackByID[id] = label
	return id
}

// SpanData is the exported form of one completed span. Start and Dur are
// nanoseconds relative to the recording epoch.
type SpanData struct {
	ID     int32
	Parent int32
	Track  int32
	Name   string
	Start  int64
	Dur    int64
	Attrs  []Attr
}

// CounterData is the exported form of one counter sample.
type CounterData struct {
	Name  string
	Track int32
	T     int64
	Seq   int64
	Value float64
}

// Recording is a completed, detached trace: spans sorted by start time,
// counter samples in emission order, the display-track name table, and the
// number of records lost to buffer overflow.
type Recording struct {
	Spans    []SpanData
	Counters []CounterData
	Tracks   map[int32]string
	Dropped  int64

	// manifest is embedded verbatim at the head of every export (see
	// SetManifest); typed any so this package needs no dependency on
	// obs/provenance.
	manifest any
}

// SetManifest attaches a run-provenance manifest (typically an
// obs/provenance.Manifest) that every exporter embeds at the head of its
// output.
func (rec *Recording) SetManifest(m any) { rec.manifest = m }

// Manifest returns the attached provenance manifest (nil if none).
func (rec *Recording) Manifest() any { return rec.manifest }

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
