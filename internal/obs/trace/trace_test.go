package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

var (
	tnRoot  = Intern("test.root")
	tnChild = Intern("test.child")
	tnLeaf  = Intern("test.leaf")
	tnPool  = Intern("par.worker")
)

// stop drains a recording unconditionally so a failing test cannot leave
// the process-wide recorder active for later tests.
func stopAll(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { StopRecording() })
}

func TestDisabledIsInert(t *testing.T) {
	if Enabled() {
		t.Fatal("no recording started, Enabled() = true")
	}
	sp := Start(Root, tnRoot)
	if sp.Active() {
		t.Error("disabled Start returned an active span")
	}
	sp.SetAttr("k", "v")
	sp.SetInt("i", 1)
	sp.SetFloat("f", 0.5)
	if sp.Ctx() != Root {
		t.Error("disabled span ctx is not Root")
	}
	sp.End()
	Counter(Root, "test.counter", 1)
	if rec := StopRecording(); rec != nil {
		t.Error("StopRecording without StartRecording returned a recording")
	}
}

func TestSpanTreeRecorded(t *testing.T) {
	stopAll(t)
	if err := StartRecording(Config{}); err != nil {
		t.Fatal(err)
	}
	if err := StartRecording(Config{}); err == nil {
		t.Error("second StartRecording must fail")
	}
	root := Start(Root, tnRoot)
	root.SetAttr("scenario", "unit")
	child := Start(root.Ctx(), tnChild)
	child.SetInt("iter", 3)
	leaf := Start(child.Ctx(), tnLeaf)
	leaf.End()
	child.End()
	Counter(root.Ctx(), "test.counter", 1.5)
	Counter(root.Ctx(), "test.counter", 2.5)
	root.End()
	rec := StopRecording()
	if rec == nil {
		t.Fatal("no recording returned")
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(rec.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	r, c, l := byName["test.root"], byName["test.child"], byName["test.leaf"]
	if r.Parent != 0 {
		t.Errorf("root parent %d, want 0", r.Parent)
	}
	if c.Parent != r.ID || l.Parent != c.ID {
		t.Errorf("parent chain broken: root %d <- child(parent %d) <- leaf(parent %d)",
			r.ID, c.Parent, l.Parent)
	}
	if c.Track != r.Track || l.Track != r.Track {
		t.Error("children did not inherit the root track")
	}
	if rec.Tracks[r.Track] == "" || !strings.HasPrefix(rec.Tracks[r.Track], "test.root#") {
		t.Errorf("root track name %q, want test.root#<id>", rec.Tracks[r.Track])
	}
	if r.Dur < 0 || c.Dur < 0 || l.Dur < 0 {
		t.Error("negative span duration")
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{"scenario", "unit"}) {
		t.Errorf("root attrs %v", r.Attrs)
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (Attr{"iter", "3"}) {
		t.Errorf("child attrs %v", c.Attrs)
	}
	if len(rec.Counters) != 2 {
		t.Fatalf("recorded %d counter samples, want 2", len(rec.Counters))
	}
	if rec.Counters[0].Value != 1.5 || rec.Counters[1].Value != 2.5 {
		t.Errorf("counter order/values wrong: %+v", rec.Counters)
	}
	if rec.Counters[0].Track != r.Track {
		t.Error("counter did not inherit the ctx track")
	}
	if rec.Dropped != 0 {
		t.Errorf("dropped %d records on an under-capacity run", rec.Dropped)
	}
}

func TestNamedTrackShared(t *testing.T) {
	stopAll(t)
	if err := StartRecording(Config{}); err != nil {
		t.Fatal(err)
	}
	a := StartOnTrack("par.worker.00", Root, tnPool)
	b := StartOnTrack("par.worker.00", Root, tnPool)
	c := StartOnTrack("par.worker.01", Root, tnPool)
	a.End()
	b.End()
	c.End()
	rec := StopRecording()
	tracks := map[int32]bool{}
	for _, s := range rec.Spans {
		tracks[s.Track] = true
	}
	if len(tracks) != 2 {
		t.Errorf("expected 2 shared tracks, got %d", len(tracks))
	}
}

func TestCapacityOverflowDropsAndCounts(t *testing.T) {
	stopAll(t)
	if err := StartRecording(Config{MaxSpans: spanShards, MaxCounters: counterShards}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sp := Start(Root, tnLeaf)
		sp.End()
		Counter(Root, "test.counter", float64(i))
	}
	rec := StopRecording()
	if rec.Dropped == 0 {
		t.Error("overflow did not count drops")
	}
	if len(rec.Spans) > spanShards || len(rec.Counters) > counterShards {
		t.Errorf("kept %d spans / %d counters beyond capacity", len(rec.Spans), len(rec.Counters))
	}
}

func TestConcurrentSpansUnderRace(t *testing.T) {
	stopAll(t)
	if err := StartRecording(Config{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := Start(Root, tnRoot)
			for i := 0; i < 50; i++ {
				sp := Start(root.Ctx(), tnChild)
				sp.SetInt("i", int64(i))
				Counter(root.Ctx(), "test.concurrent", float64(i))
				sp.End()
			}
			root.End()
		}(g)
	}
	wg.Wait()
	rec := StopRecording()
	if got, want := len(rec.Spans), 8*50+8; got != want {
		t.Errorf("recorded %d spans, want %d", got, want)
	}
	if got, want := len(rec.Counters), 8*50; got != want {
		t.Errorf("recorded %d counters, want %d", got, want)
	}
	// Every child's parent must exist and carry the child's track.
	byID := map[int32]SpanData{}
	for _, s := range rec.Spans {
		byID[s.ID] = s
	}
	for _, s := range rec.Spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", s.ID, s.Parent)
		}
		if p.Track != s.Track {
			t.Fatalf("span %d on track %d, parent on %d", s.ID, s.Track, p.Track)
		}
	}
}

func TestNormalizeMergesFiltersAndSorts(t *testing.T) {
	stopAll(t)
	if err := StartRecording(Config{}); err != nil {
		t.Fatal(err)
	}
	root := Start(Root, tnRoot)
	// A filtered par.worker layer whose children must be hoisted to root.
	w := Start(root.Ctx(), tnPool)
	for i := 0; i < 3; i++ {
		leaf := Start(w.Ctx(), tnLeaf)
		leaf.End()
	}
	w.End()
	odd := Start(root.Ctx(), tnChild)
	odd.SetInt("iter", 1)
	odd.End()
	root.End()
	Counter(Root, "par.tasks", 3) // filtered
	Counter(Root, "test.series", 10)
	Counter(Root, "test.series", 20)
	rec := StopRecording()
	norm, err := rec.Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(norm.Spans) != 1 || norm.Spans[0].Name != "test.root" {
		t.Fatalf("normalized roots: %+v", norm.Spans)
	}
	kids := norm.Spans[0].Children
	if len(kids) != 2 {
		t.Fatalf("expected merged leaf + child nodes, got %d", len(kids))
	}
	var leafNode, childNode *Node
	for _, k := range kids {
		switch k.Name {
		case "test.leaf":
			leafNode = k
		case "test.child":
			childNode = k
		}
	}
	if leafNode == nil || leafNode.Count != 3 {
		t.Errorf("identical leaves not merged: %+v", leafNode)
	}
	if childNode == nil || childNode.Count != 1 || len(childNode.Attrs) != 1 || childNode.Attrs[0] != "iter=1" {
		t.Errorf("attributed child wrong: %+v", childNode)
	}
	if len(norm.Counters) != 1 || norm.Counters[0] != (CounterSeries{Name: "test.series", Events: 2, First: 10, Last: 20}) {
		t.Errorf("counter series: %+v", norm.Counters)
	}
}

// The normalized bytes must not depend on the order spans were committed
// in — the property that makes the tree identical at any worker count.
func TestNormalizedBytesOrderInvariant(t *testing.T) {
	capture := func(reverse bool) []byte {
		stopAll(t)
		if err := StartRecording(Config{}); err != nil {
			t.Fatal(err)
		}
		root := Start(Root, tnRoot)
		n := 4
		order := make([]int, n)
		for i := range order {
			if reverse {
				order[i] = n - 1 - i
			} else {
				order[i] = i
			}
		}
		for _, i := range order {
			sp := Start(root.Ctx(), tnChild)
			sp.SetInt("iter", int64(i))
			sp.End()
		}
		root.End()
		rec := StopRecording()
		b, err := rec.MarshalNormalized()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := capture(false), capture(true)
	if !bytes.Equal(a, b) {
		t.Errorf("normalized bytes depend on commit order:\n%s\nvs\n%s", a, b)
	}
}

func TestChromeExport(t *testing.T) {
	stopAll(t)
	if err := StartRecording(Config{}); err != nil {
		t.Fatal(err)
	}
	root := Start(Root, tnRoot)
	child := Start(root.Ctx(), tnChild)
	child.SetInt("iter", 0)
	child.End()
	Counter(root.Ctx(), "test.counter", 4.5)
	root.End()
	rec := StopRecording()
	rec.SetManifest(map[string]string{"Seed": "2014"})
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	var sawProvenance, sawSpan, sawCounter, sawThreadName bool
	for i, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "provenance" && ev.Ph == "I":
			sawProvenance = true
			if i > 1 {
				t.Errorf("provenance instant at index %d, want at the head", i)
			}
		case ev.Ph == "X" && ev.Name == "test.child":
			sawSpan = true
			if ev.Args["iter"] != "0" {
				t.Errorf("span args: %v", ev.Args)
			}
		case ev.Ph == "C" && ev.Name == "test.counter":
			sawCounter = true
			if ev.Args["value"] != 4.5 {
				t.Errorf("counter args: %v", ev.Args)
			}
		case ev.Ph == "M" && ev.Name == "thread_name":
			sawThreadName = true
		}
	}
	if !sawProvenance || !sawSpan || !sawCounter || !sawThreadName {
		t.Errorf("export missing events: provenance=%v span=%v counter=%v thread=%v",
			sawProvenance, sawSpan, sawCounter, sawThreadName)
	}
	if doc.OtherData["provenance"] == nil {
		t.Error("otherData missing the provenance manifest")
	}
}

func TestInternStable(t *testing.T) {
	a := Intern("test.intern.stable")
	b := Intern("test.intern.stable")
	if a != b {
		t.Errorf("Intern not idempotent: %d vs %d", a, b)
	}
	if nameOf(a) != "test.intern.stable" {
		t.Errorf("nameOf(%d) = %q", a, nameOf(a))
	}
}
