package trace

import "testing"

var benchName = Intern("bench.span")

// The disabled path is the contract that lets instrumentation sit inside
// the LMS hot loop: one atomic load, zero allocations, single-digit ns.
func BenchmarkTraceDisabledSpan(b *testing.B) {
	if Enabled() {
		b.Fatal("a recording is active")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(Root, benchName)
		sp.End()
	}
}

func BenchmarkTraceDisabledSpanWithAttrs(b *testing.B) {
	if Enabled() {
		b.Fatal("a recording is active")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(Root, benchName)
		sp.SetInt("iter", int64(i))
		sp.End()
	}
}

func BenchmarkTraceDisabledCounter(b *testing.B) {
	if Enabled() {
		b.Fatal("a recording is active")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Counter(Root, "bench.counter", float64(i))
	}
}

func BenchmarkTraceEnabledSpan(b *testing.B) {
	if err := StartRecording(Config{MaxSpans: 1 << 10}); err != nil {
		b.Fatal(err)
	}
	defer StopRecording()
	parent := Start(Root, benchName)
	defer parent.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Start(parent.Ctx(), benchName)
		sp.End()
	}
}
