// Package trace is the time-resolved half of the repository's
// observability layer: a hierarchical span recorder that answers *when*
// and *in what order* the pipeline did its work — where the metrics
// registry in internal/obs answers only *how much*. A recording renders as
// Chrome trace-event JSON loadable in Perfetto (BIST stage spans, one span
// per LMS iteration, D-hat/cost counter tracks, one row per par worker)
// and as a canonical normalized span tree whose bytes are independent of
// timing and worker count, so the *structure* of a run is golden-pinnable.
//
// Design contract (the reason instrumentation may sit inside the LMS hot
// loop, mirroring internal/obs):
//
//   - Disabled (the default) every call is a no-op behind a single atomic
//     pointer load; nothing allocates and no state changes. Enabled, a
//     span is one atomic id allocation at Start and one slot write into a
//     lock-free sharded buffer at End.
//   - Tracing never feeds back into computation: enabling a recording
//     cannot change a single output bit of any pipeline (asserted by test
//     in internal/core).
//   - Span names are interned once (package init in the instrumented
//     packages), so Start carries an int32, not a string.
//
// Parentage is explicit: Start takes a Ctx (from Span.Ctx of the parent)
// and a Start from the Root ctx opens a fresh display track, which is what
// keeps concurrent root spans from different goroutines on separate rows.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// NameID is an interned span name. Hot instrumentation sites hoist
// Intern("pkg.span.name") into a package-level var so Start never touches
// the intern table.
type NameID int32

// names is the process-wide intern table. Interning is expected at package
// init or on cold paths; lookups during export take the read lock once per
// recording, not per span.
var names struct {
	mu     sync.RWMutex
	byName map[string]NameID
	list   []string
}

// Intern returns the id for name, registering it on first use.
func Intern(name string) NameID {
	names.mu.Lock()
	defer names.mu.Unlock()
	if names.byName == nil {
		names.byName = make(map[string]NameID)
	}
	if id, ok := names.byName[name]; ok {
		return id
	}
	id := NameID(len(names.list))
	names.list = append(names.list, name)
	names.byName[name] = id
	return id
}

// nameOf resolves an interned id (export path only).
func nameOf(id NameID) string {
	names.mu.RLock()
	defer names.mu.RUnlock()
	if int(id) < len(names.list) {
		return names.list[id]
	}
	return "?"
}

// active is the recorder gate: nil means tracing is disabled and every
// instrument degenerates to one atomic load. There is at most one active
// recording per process (StartRecording errors on a second).
var active atomic.Pointer[recorder]

// Enabled reports whether a recording is in progress.
func Enabled() bool { return active.Load() != nil }

// Ctx names a position in the span tree: the parent span id plus the
// display track child spans inherit. The zero Ctx is Root.
type Ctx struct {
	span  int32
	track int32
}

// Root is the empty parent: a span started from Root opens its own display
// track (named after the span), which keeps concurrent top-level spans on
// separate Perfetto rows.
var Root = Ctx{}

// Attr is one key/value annotation on a span. Values are pre-rendered
// strings so the record layout stays flat.
type Attr struct {
	Key string
	Val string
}

// Span is one in-flight measurement. The zero Span (from a disabled Start)
// is inert: all methods are no-ops, so call sites never re-check Enabled.
// Use it as an addressable local (sp := trace.Start(...); defer sp.End()).
type Span struct {
	rec    *recorder
	id     int32
	parent int32
	track  int32
	name   NameID
	start  int64
	attrs  []Attr
}

// Start opens a span under parent. With parent == Root the span gets a
// fresh display track named "<name>#<id>"; otherwise it inherits the
// parent's track. Disabled, it costs one atomic load and returns the inert
// zero Span.
func Start(parent Ctx, name NameID) (s Span) {
	if active.Load() != nil {
		s = startSlow(parent, name)
	}
	return
}

// startSlow is the enabled path, split out so Start itself stays under the
// inlining budget and the disabled call collapses to the atomic load. It
// re-loads the gate (rather than taking the recorder as an argument) to keep
// Start's inline cost minimal; a recording stopped between the two loads
// yields an inert span, which is the same outcome as racing Stop anywhere
// else.
func startSlow(parent Ctx, name NameID) Span {
	r := active.Load()
	if r == nil {
		return Span{}
	}
	id := r.nextID.Add(1)
	track := parent.track
	if parent.span == 0 && parent.track == 0 {
		track = r.uniqueTrack(nameOf(name), id)
	}
	return Span{rec: r, id: id, parent: parent.span, track: track, name: name, start: r.now()}
}

// StartOnTrack opens a root-level span on a shared named display track
// (interning the label on first use), so repeated occurrences — par worker
// slots, dsp plan builds — stack on one stable row instead of each opening
// a new one.
func StartOnTrack(trackLabel string, parent Ctx, name NameID) Span {
	r := active.Load()
	if r == nil {
		return Span{}
	}
	id := r.nextID.Add(1)
	return Span{rec: r, id: id, parent: parent.span, track: r.namedTrack(trackLabel),
		name: name, start: r.now()}
}

// Active reports whether the span is recording (false for the zero Span).
func (s *Span) Active() bool { return s.rec != nil }

// Ctx returns the context child spans should start from.
func (s *Span) Ctx() Ctx {
	if s.rec == nil {
		return Root
	}
	return Ctx{span: s.id, track: s.track}
}

// SetAttr annotates the span. No-op on the zero Span.
func (s *Span) SetAttr(key, val string) {
	if s.rec != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	}
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s.rec != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Val: formatInt(v)})
	}
}

// SetFloat annotates the span with a float value (shortest round-trip
// form, so attribute bytes are deterministic).
func (s *Span) SetFloat(key string, v float64) {
	if s.rec != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Val: formatFloat(v)})
	}
}

// End completes the span and commits it to the recording. End on the zero
// Span is free; End after StopRecording is lost (the recording has been
// detached), which is why recordings stop only after the traced work has
// quiesced.
func (s *Span) End() {
	if s.rec == nil {
		return
	}
	s.endSlow()
}

func (s *Span) endSlow() {
	s.rec.commit(spanRecord{
		id:     s.id,
		parent: s.parent,
		track:  s.track,
		name:   s.name,
		start:  s.start,
		dur:    s.rec.now() - s.start,
		attrs:  s.attrs,
	})
	s.rec = nil
}

// Counter records one sample of a named counter series at the current
// instant (a Perfetto "C" track). The name is carried as a string because
// counter series are frequently synthesized per run (e.g. one D-hat track
// per LMS starting estimate); emission is gated on the recording, so the
// formatting cost exists only while tracing.
func Counter(tc Ctx, name string, v float64) {
	r := active.Load()
	if r == nil {
		return
	}
	r.counter(counterRecord{name: name, track: tc.track, t: r.now(), seq: r.cseq.Add(1), value: v})
}

// now returns nanoseconds since the recording epoch (monotonic).
func (r *recorder) now() int64 { return int64(time.Since(r.epoch)) }
