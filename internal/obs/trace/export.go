package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// The Chrome trace-event exporter renders a Recording in the JSON format
// Perfetto and chrome://tracing load natively: "X" complete events for
// spans (one thread row per display track), "C" events for counter tracks,
// and an "I" instant carrying the provenance manifest as the first event,
// so the file itself records what produced it.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const chromePid = 1

// WriteChrome renders the recording as Chrome trace-event JSON. The
// attached manifest (SetManifest) is embedded twice: as the args of the
// leading "provenance" instant event and under otherData, so both Perfetto
// and plain JSON consumers can reach it.
func (rec *Recording) WriteChrome(w io.Writer) error {
	evs := make([]chromeEvent, 0, len(rec.Spans)+len(rec.Counters)+len(rec.Tracks)+2)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "bist"},
	})
	if rec.manifest != nil {
		evs = append(evs, chromeEvent{
			Name: "provenance", Ph: "I", S: "g", Ts: 0, Pid: chromePid, Tid: 0,
			Args: map[string]any{"provenance": rec.manifest},
		})
	}
	// Thread rows: one per display track, sorted by id so the main track
	// leads and worker rows group together.
	trackIDs := make([]int32, 0, len(rec.Tracks))
	for id := range rec.Tracks {
		trackIDs = append(trackIDs, id)
	}
	sort.Slice(trackIDs, func(i, j int) bool { return trackIDs[i] < trackIDs[j] })
	for _, id := range trackIDs {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: int(id),
			Args: map[string]any{"name": rec.Tracks[id]},
		})
		evs = append(evs, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: int(id),
			Args: map[string]any{"sort_index": int(id)},
		})
	}
	for _, s := range rec.Spans {
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start) / 1e3,
			Dur: float64(s.Dur) / 1e3,
			Pid: chromePid, Tid: int(s.Track),
		}
		if len(s.Attrs) > 0 {
			args := make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Val
			}
			ev.Args = args
		}
		evs = append(evs, ev)
	}
	for _, c := range rec.Counters {
		evs = append(evs, chromeEvent{
			Name: c.Name, Ph: "C",
			Ts:  float64(c.T) / 1e3,
			Pid: chromePid, Tid: int(c.Track),
			Args: map[string]any{"value": c.Value},
		})
	}
	doc := chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"}
	if rec.manifest != nil || rec.Dropped > 0 {
		doc.OtherData = map[string]any{}
		if rec.manifest != nil {
			doc.OtherData["provenance"] = rec.manifest
		}
		if rec.Dropped > 0 {
			doc.OtherData["droppedRecords"] = rec.Dropped
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
