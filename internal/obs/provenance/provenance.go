// Package provenance builds run-provenance manifests: the small record of
// *what produced* a result file — tool, experiment, configuration hash, RNG
// seed, toolchain, parallelism, and the VCS state baked into the binary by
// the go toolchain. A manifest rides at the head of every trace export and
// is printable standalone (bistlab -manifest), so any artifact checked into
// a lab notebook can be traced back to the exact code and knobs that made
// it.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"runtime/debug"

	"repro/internal/par"
	"repro/internal/testkit"
)

// Manifest is the provenance record. All fields are plain strings/ints so
// the canonical JSON form is stable across Go versions.
type Manifest struct {
	// Tool is the producing binary (e.g. "bistlab").
	Tool string
	// Experiment names the run ("fig6", "mask", ...).
	Experiment string
	// ConfigHash is a short sha256 over the canonical JSON of the run
	// configuration (see Hash).
	ConfigHash string
	// Seed is the RNG seed the run was started with.
	Seed int64
	// GoVersion, GOOS and GOARCH describe the toolchain and target.
	GoVersion string
	GOOS      string
	GOARCH    string
	// GOMAXPROCS and Workers record the parallelism the run saw: the
	// runtime's processor cap and the par pool width (BIST_WORKERS).
	GOMAXPROCS int
	Workers    int
	// VCSRevision/VCSTime/VCSModified come from the build info stamped into
	// the binary ("" when built outside a VCS checkout, e.g. go test).
	VCSRevision string
	VCSTime     string
	VCSModified string
}

// Hash returns a short hex sha256 over the canonical JSON encoding of cfg —
// the stable fingerprint of a run configuration. Any canonically
// marshalable value works.
func Hash(cfg any) (string, error) {
	b, err := testkit.MarshalCanonical(cfg)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// Collect assembles the manifest for the current process. cfg is the run
// configuration to fingerprint (nil leaves ConfigHash empty).
func Collect(tool, experiment string, seed int64, cfg any) (Manifest, error) {
	m := Manifest{
		Tool:       tool,
		Experiment: experiment,
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(),
	}
	if cfg != nil {
		h, err := Hash(cfg)
		if err != nil {
			return Manifest{}, err
		}
		m.ConfigHash = h
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value
			}
		}
	}
	return m, nil
}

// MarshalCanonical encodes the manifest in the repository's canonical JSON
// form (sorted keys, trailing newline).
func (m Manifest) MarshalCanonical() ([]byte, error) {
	return testkit.MarshalCanonical(m)
}
