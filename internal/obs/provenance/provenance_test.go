package provenance

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"repro/internal/par"
)

func TestCollectFillsEnvironment(t *testing.T) {
	m, err := Collect("bistlab", "fig6", 2014, map[string]any{"Scale": 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "bistlab" || m.Experiment != "fig6" || m.Seed != 2014 {
		t.Errorf("identity fields wrong: %+v", m)
	}
	if m.GoVersion != runtime.Version() || m.GOOS != runtime.GOOS || m.GOARCH != runtime.GOARCH {
		t.Errorf("toolchain fields wrong: %+v", m)
	}
	if m.GOMAXPROCS != runtime.GOMAXPROCS(0) || m.Workers != par.Workers() {
		t.Errorf("parallelism fields wrong: %+v", m)
	}
	if len(m.ConfigHash) != 16 {
		t.Errorf("ConfigHash %q, want 16 hex chars", m.ConfigHash)
	}
}

func TestHashIsStableAndOrderInsensitive(t *testing.T) {
	h1, err := Hash(map[string]any{"a": 1, "b": "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash(map[string]any{"b": "x", "a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("canonical hash depends on map order: %s vs %s", h1, h2)
	}
	h3, err := Hash(map[string]any{"a": 2, "b": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Error("different configs hash identically")
	}
}

func TestCollectNilConfig(t *testing.T) {
	m, err := Collect("bistlab", "mask", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ConfigHash != "" {
		t.Errorf("nil config produced hash %q", m.ConfigHash)
	}
}

func TestMarshalCanonicalRoundTrips(t *testing.T) {
	m, err := Collect("bistlab", "fig6", 2014, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Error("canonical form missing trailing newline")
	}
	var back Manifest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip changed the manifest:\n%+v\n%+v", back, m)
	}
}
