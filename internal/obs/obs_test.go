package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/testkit"
)

// withEnabled runs the test body with collection forced on and restores
// the previous state (tests share the process-global flag).
func withEnabled(t *testing.T, on bool, body func()) {
	t.Helper()
	prev := SetEnabled(on)
	defer SetEnabled(prev)
	body()
}

func TestCounterDisabledIsNoOp(t *testing.T) {
	withEnabled(t, false, func() {
		c := &Counter{}
		c.Inc()
		c.Add(41)
		if c.Value() != 0 {
			t.Errorf("disabled counter accumulated %d", c.Value())
		}
		g := &Gauge{}
		g.Add(3)
		g.Set(7)
		if g.Value() != 0 || g.Max() != 0 {
			t.Errorf("disabled gauge moved: %d/%d", g.Value(), g.Max())
		}
		h := newHistogram([]float64{1, 2})
		h.Observe(1.5)
		sp := h.Start()
		sp.End()
		if h.Count() != 0 || h.Sum() != 0 {
			t.Errorf("disabled histogram recorded %d/%g", h.Count(), h.Sum())
		}
	})
}

func TestCounterConcurrent(t *testing.T) {
	withEnabled(t, true, func() {
		c := &Counter{}
		const gor, per = 16, 1000
		var wg sync.WaitGroup
		for g := 0; g < gor; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
		if c.Value() != gor*per {
			t.Errorf("counter %d, want %d", c.Value(), gor*per)
		}
	})
}

func TestGaugeTracksHighWater(t *testing.T) {
	withEnabled(t, true, func() {
		g := &Gauge{}
		g.Add(2)
		g.Add(3)
		g.Add(-4)
		if g.Value() != 1 {
			t.Errorf("value %d", g.Value())
		}
		if g.Max() != 5 {
			t.Errorf("max %d", g.Max())
		}
		g.Set(10)
		if g.Value() != 10 || g.Max() != 10 {
			t.Errorf("set: %d/%d", g.Value(), g.Max())
		}
	})
}

func TestGaugeConcurrentNetsToZero(t *testing.T) {
	withEnabled(t, true, func() {
		g := &Gauge{}
		const gor = 32
		var wg sync.WaitGroup
		for i := 0; i < gor; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.Add(1)
				g.Add(-1)
			}()
		}
		wg.Wait()
		if g.Value() != 0 {
			t.Errorf("gauge drifted to %d", g.Value())
		}
		if g.Max() < 1 || g.Max() > gor {
			t.Errorf("implausible high-water %d", g.Max())
		}
	})
}

func TestHistogramBucketsAndSum(t *testing.T) {
	withEnabled(t, true, func() {
		h := newHistogram([]float64{1, 10, 100})
		for _, v := range []float64{0.5, 1, 5, 50, 500, 1e9} {
			h.Observe(v)
		}
		if h.Count() != 6 {
			t.Errorf("count %d", h.Count())
		}
		want := []int64{2, 1, 1, 2} // <=1: {0.5, 1}; <=10: {5}; <=100: {50}; overflow: {500, 1e9}
		for i, w := range want {
			if got := h.counts[i].Load(); got != w {
				t.Errorf("bucket %d: %d, want %d", i, got, w)
			}
		}
		if math.Abs(h.Sum()-(0.5+1+5+50+500+1e9)) > 1e-6 {
			t.Errorf("sum %g", h.Sum())
		}
	})
}

func TestHistogramConcurrent(t *testing.T) {
	withEnabled(t, true, func() {
		h := newHistogram(ExpBuckets(1, 2, 10))
		const gor, per = 8, 2000
		var wg sync.WaitGroup
		for g := 0; g < gor; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					h.Observe(float64(g%4) + 0.5)
				}
			}()
		}
		wg.Wait()
		if h.Count() != gor*per {
			t.Errorf("count %d, want %d", h.Count(), gor*per)
		}
		var total int64
		for i := range h.counts {
			total += h.counts[i].Load()
		}
		if total != gor*per {
			t.Errorf("bucket total %d, want %d", total, gor*per)
		}
		// Sum accumulates via CAS: exact for these half-integer values.
		want := float64(per) * (0.5 + 1.5 + 2.5 + 3.5) * float64(gor) / 4
		if h.Sum() != want {
			t.Errorf("sum %g, want %g", h.Sum(), want)
		}
	})
}

func TestRegistryInternsAndResets(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		c1 := r.Counter("a.b")
		c2 := r.Counter("a.b")
		if c1 != c2 {
			t.Error("counter not interned")
		}
		c1.Inc()
		g := r.Gauge("g")
		g.Add(4)
		h := r.Histogram("h", []float64{1})
		h.Observe(0.5)
		if h2 := r.Histogram("h", []float64{99}); h2 != h {
			t.Error("histogram not interned")
		}
		r.Reset()
		if c1.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
			t.Error("reset left residue")
		}
		// Pointers stay valid after reset.
		c1.Inc()
		if r.Counter("a.b").Value() != 1 {
			t.Error("pointer invalidated by reset")
		}
	})
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 100; j++ {
					r.Counter("shared").Inc()
				}
			}()
		}
		wg.Wait()
		if got := r.Counter("shared").Value(); got != 1600 {
			t.Errorf("interleaved registration lost counts: %d", got)
		}
	})
}

func TestSnapshotAndCanonicalJSON(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Counter("z.last").Add(2)
		r.Counter("a.first").Add(1)
		r.Gauge("g").Set(3)
		r.Histogram("lat", []float64{1, 2}).Observe(1.5)
		s := r.Snapshot()
		if s.Counters["z.last"] != 2 || s.Counters["a.first"] != 1 {
			t.Errorf("counters %v", s.Counters)
		}
		if s.Gauges["g"].Value != 3 || s.Gauges["g"].Max != 3 {
			t.Errorf("gauges %v", s.Gauges)
		}
		hv := s.Histograms["lat"]
		if hv.Count != 1 || hv.Sum != 1.5 || len(hv.Counts) != 3 || hv.Counts[1] != 1 {
			t.Errorf("histogram %+v", hv)
		}
	})
}

func TestMarshalSnapshotDeterministic(t *testing.T) {
	withEnabled(t, true, func() {
		Reset()
		C("det.a").Inc()
		C("det.b").Add(2)
		H("det.h", []float64{1}).Observe(0.25)
		b1, err := MarshalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := MarshalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Error("back-to-back snapshots differ")
		}
		for _, want := range []string{`"det.a": 1`, `"det.b": 2`, `"det.h"`} {
			if !strings.Contains(string(b1), want) {
				t.Errorf("snapshot JSON missing %q:\n%s", want, b1)
			}
		}
		Reset()
	})
}

func TestExpvarFuncReturnsSnapshot(t *testing.T) {
	withEnabled(t, true, func() {
		Reset()
		C("ev.x").Inc()
		v := ExpvarFunc()()
		s, ok := v.(*Snapshot)
		if !ok {
			t.Fatalf("expvar value is %T", v)
		}
		if s.Counters["ev.x"] != 1 {
			t.Errorf("expvar snapshot %v", s.Counters)
		}
		Reset()
	})
}

func TestCounterNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Counter("a")
	r.Counter("c")
	names := r.CounterNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("names %v", names)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 3)
	want := []float64{1e-6, 4e-6, 16e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestEnableDisableRoundTrip(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if Enabled() {
		t.Error("expected disabled")
	}
	Enable()
	if !Enabled() {
		t.Error("Enable did not stick")
	}
	Disable()
	if Enabled() {
		t.Error("Disable did not stick")
	}
}

// Snapshotting while other goroutines flip the global enable switch and
// mutate metrics must be race-free and every snapshot internally sane:
// counters only grow and histograms keep their bucket shape.
func TestSnapshotUnderConcurrentEnableDisable(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	c := r.Counter("flip.hits")
	h := r.Histogram("flip.lat", ExpBuckets(1, 10, 4))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Togglers hammer the global switch.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					SetEnabled(i%2 == 0)
				}
			}
		}()
	}
	// Writers mutate through the gated paths.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(float64(i % 100))
					r.Gauge("flip.active").Add(1)
					r.Gauge("flip.active").Add(-1)
				}
			}
		}()
	}
	var last int64 = -1
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		got := s.Counters["flip.hits"]
		if got < last {
			t.Fatalf("counter went backwards: %d -> %d", last, got)
		}
		last = got
		if hv, ok := s.Histograms["flip.lat"]; ok {
			// Individual cells are read atomically; the only structural
			// invariant under concurrent writers is shape, not balance.
			if len(hv.Counts) != len(hv.Bounds)+1 {
				t.Fatalf("histogram shape: %d counts for %d bounds", len(hv.Counts), len(hv.Bounds))
			}
		}
	}
	close(stop)
	wg.Wait()
	// A final snapshot must marshal canonically regardless of where the
	// togglers left the switch.
	SetEnabled(true)
	if _, err := testkit.MarshalCanonical(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
}
