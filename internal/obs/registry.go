package obs

import (
	"sort"
	"sync"

	"repro/internal/testkit"
)

// Registry interns metrics by name. Registration (C/G/H) takes a mutex and
// is expected at package init or on cold paths only; the returned pointers
// are then free to use lock-free forever. Names are dot-separated
// lowercase paths ("skew.cost.evals", "dsp.plan.hits.4096.fwd").
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry. Most callers use the process-wide
// Default registry through the package-level C/G/H helpers.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// def is the process-wide registry every instrumented package shares.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. An existing histogram keeps its original bounds —
// callers registering the same name must agree on them.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric (values, high-water marks, bucket
// counts). Instruments stay registered and previously returned pointers
// stay valid — this is the "start of run" marker that turns absolute
// counters into per-run deltas.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// C returns the named counter from the default registry.
func C(name string) *Counter { return def.Counter(name) }

// G returns the named gauge from the default registry.
func G(name string) *Gauge { return def.Gauge(name) }

// H returns the named histogram from the default registry.
func H(name string, bounds []float64) *Histogram { return def.Histogram(name, bounds) }

// Reset zeroes every metric in the default registry.
func Reset() { def.Reset() }

// GaugeValue is the snapshot form of one gauge.
type GaugeValue struct {
	Value int64
	Max   int64
}

// HistogramValue is the snapshot form of one histogram: Counts[i] pairs
// with Bounds[i]; the final extra entry of Counts is the overflow bucket.
type HistogramValue struct {
	Count  int64
	Sum    float64
	Bounds []float64
	Counts []int64
}

// Snapshot is a consistent-enough copy of a registry: each individual
// value is read atomically; the set of metrics is captured under the
// registration lock. Field names and map ordering are stabilised by
// testkit.MarshalCanonical, making two snapshots of identical state
// byte-identical.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]GaugeValue
	Histograms map[string]HistogramValue
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeValue, len(r.gauges)),
		Histograms: make(map[string]HistogramValue, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hv
	}
	return s
}

// CounterNames returns the sorted names of every registered counter —
// handy for discovering what a run recorded.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MarshalSnapshot encodes the default registry's snapshot as canonical
// JSON (declaration-order fields, sorted map keys, shortest round-trip
// floats), so emitting it from bistlab or a test is byte-deterministic for
// deterministic metric state.
func MarshalSnapshot() ([]byte, error) {
	return testkit.MarshalCanonical(def.Snapshot())
}

// ExpvarFunc adapts the default registry to expvar's Func variable type:
// expvar.Publish("bist", expvar.Func(obs.ExpvarFunc())) exposes the
// snapshot under /debug/vars without this package importing expvar (and
// thus without every instrumented binary inheriting expvar's handler
// registration side effects).
func ExpvarFunc() func() any {
	return func() any { return def.Snapshot() }
}
