// Package eventlog is the repository's structured event log: a gated
// log/slog front-end that replaces ad-hoc fmt.Fprintf(os.Stderr, ...)
// call sites with named, attribute-carrying events, and counts every
// emission in the obs registry ("event.<name>" counters) so the
// deterministic half of the log — how many times each event fired — is
// part of the normalized telemetry snapshot while the wall-clock half
// (timestamps, attribute values like addresses and durations) stays on
// the log stream only.
//
// Disabled (no logger installed — the default) the package follows the
// obs Counter discipline: Emit is one atomic pointer load and returns.
// Hot paths that build attributes guard with On() so the attribute
// construction itself is skipped:
//
//	if eventlog.On() {
//		eventlog.Emit("fleet.cell.done", slog.String("cell", key))
//	}
//
// BenchmarkEventLogDisabled holds that pattern to 0 allocs and ~1 ns.
//
// Event names are dot-separated lowercase paths like metric names
// ("fleet.admit", "watchdog.state", "bistd.listening"); the name is the
// slog message, attributes carry the payload. Correlation attributes
// (campaign ID, shard, cell key, unit range) are plain attrs the caller
// threads through — see internal/fleet for the convention.
package eventlog

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// active is the installed destination; nil means disabled. An atomic
// pointer (not a mutex) keeps the disabled path to one load.
var active atomic.Pointer[slog.Logger]

// counters interns the per-event obs counters so Emit does not take the
// registry mutex on every emission.
var counters sync.Map // event name → *obs.Counter

// Set installs the destination logger (nil disables the package) and
// returns the previous one, making save/restore in tests a one-liner.
func Set(l *slog.Logger) *slog.Logger {
	return active.Swap(l)
}

// On reports whether a destination is installed. Guard attribute
// construction with it on hot paths.
func On() bool { return active.Load() != nil }

// Logger returns the installed destination (nil when disabled) for
// callers that want a pre-bound slog.Logger via With.
func Logger() *slog.Logger { return active.Load() }

// Emit logs one event and counts it in the obs registry. Returns false
// (and does nothing) when no destination is installed, so fallback paths
// — a panic report that must reach a human even on an unconfigured
// binary — can chain on the result.
func Emit(name string, attrs ...slog.Attr) bool {
	l := active.Load()
	if l == nil {
		return false
	}
	count(name)
	l.LogAttrs(context.Background(), slog.LevelInfo, name, attrs...)
	return true
}

// count bumps the event.<name> counter (interned on first use).
func count(name string) {
	if c, ok := counters.Load(name); ok {
		c.(*obs.Counter).Inc()
		return
	}
	c := obs.C("event." + name)
	counters.Store(name, c)
	c.Inc()
}
