package eventlog

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// install wires a JSONHandler to a buffer and restores the previous
// destination (and obs enablement) on cleanup.
func install(t *testing.T) *bytes.Buffer {
	t.Helper()
	prevObs := obs.SetEnabled(true)
	var buf bytes.Buffer
	prev := Set(slog.New(NewJSONHandler(&buf)))
	t.Cleanup(func() {
		Set(prev)
		obs.SetEnabled(prevObs)
	})
	return &buf
}

func TestEmitDisabledReturnsFalse(t *testing.T) {
	prev := Set(nil)
	t.Cleanup(func() { Set(prev) })
	if On() {
		t.Fatal("On() = true with nil destination")
	}
	if Emit("test.never") {
		t.Error("Emit returned true with nil destination")
	}
	if Logger() != nil {
		t.Error("Logger() != nil with nil destination")
	}
}

func TestEmitWritesOneJSONLine(t *testing.T) {
	buf := install(t)
	if !Emit("test.hello", slog.String("who", "world"), slog.Int("n", 3)) {
		t.Fatal("Emit returned false with destination installed")
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, line)
	}
	if m["event"] != "test.hello" || m["who"] != "world" || m["n"] != float64(3) {
		t.Errorf("decoded line = %v", m)
	}
	if _, err := time.Parse(time.RFC3339Nano, m["ts"].(string)); err != nil {
		t.Errorf("ts does not parse as RFC3339Nano: %v", err)
	}
	if _, ok := m["level"]; ok {
		t.Error("INFO line carries a level key")
	}
	// Key order is fixed: ts, level (absent here), event, then attrs.
	if !strings.HasPrefix(line, `{"ts":"`) {
		t.Errorf("line does not start with ts: %s", line)
	}
	if strings.Index(line, `"event"`) > strings.Index(line, `"who"`) {
		t.Errorf("event key after attrs: %s", line)
	}
}

func TestEmitCountsInObsRegistry(t *testing.T) {
	install(t)
	c := obs.C("event.test.counted")
	before := c.Value()
	Emit("test.counted")
	Emit("test.counted")
	if got := c.Value() - before; got != 2 {
		t.Errorf("event.test.counted delta = %d, want 2", got)
	}
}

func TestHandlerWithAttrsAndGroups(t *testing.T) {
	buf := install(t)
	l := Logger().With(slog.String("campaign", "c-1")).WithGroup("cell")
	l.LogAttrs(nil, slog.LevelInfo, "test.grouped", slog.Int("index", 4))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, buf.String())
	}
	if m["campaign"] != "c-1" {
		t.Errorf("With attr missing: %v", m)
	}
	if m["cell.index"] != float64(4) {
		t.Errorf("group not flattened to dotted key: %v", m)
	}
	// With-attrs render before per-call attrs.
	line := buf.String()
	if strings.Index(line, `"campaign"`) > strings.Index(line, `"cell.index"`) {
		t.Errorf("With attr after call attr: %s", line)
	}
}

func TestHandlerNonInfoLevelAndEscaping(t *testing.T) {
	buf := install(t)
	Logger().LogAttrs(nil, slog.LevelWarn, "test.warn",
		slog.String("msg", "quote\" and \\ and\nnewline"),
		slog.Duration("took", 1500*time.Millisecond),
		slog.Bool("ok", false),
		slog.Float64("f", 0.25))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line with escapes is not JSON: %v\n%s", err, buf.String())
	}
	if m["level"] != "WARN" {
		t.Errorf("level = %v, want WARN", m["level"])
	}
	if m["msg"] != "quote\" and \\ and\nnewline" {
		t.Errorf("escaped string round-trip failed: %q", m["msg"])
	}
	if m["took"] != "1.5s" || m["ok"] != false || m["f"] != 0.25 {
		t.Errorf("attr values = %v", m)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Errorf("raw newline leaked into output: %q", buf.String())
	}
}

func TestHandlerConcurrentLinesDoNotInterleave(t *testing.T) {
	buf := install(t)
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Emit("test.concurrent", slog.Int("g", g), slog.Int("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*per {
		t.Fatalf("got %d lines, want %d", len(lines), goroutines*per)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved/corrupt line: %v\n%s", err, line)
		}
	}
}

func TestSetReturnsPrevious(t *testing.T) {
	a := slog.New(NewJSONHandler(&bytes.Buffer{}))
	prev := Set(a)
	if got := Set(prev); got != a {
		t.Error("Set did not return the previously installed logger")
	}
}
