package eventlog

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"strconv"
	"sync"
	"time"
)

// JSONHandler is the canonical-JSON slog handler: one compact object per
// line with a fixed key order — "ts" (RFC3339Nano UTC), "level" (only
// when not INFO), "event" (the record message), then attributes in
// emission order, With-attrs before per-call attrs, groups flattened into
// dotted keys ("grp.key"). Everything but "ts" and wall-clock attribute
// values is deterministic for a deterministic workload, which is what
// lets a log post-processor strip timestamps and diff two runs.
//
// The handler is not the testkit canonical encoder (a log line is a
// stream record, not a golden artifact): keys keep emission order rather
// than sorting, and duplicate keys are the caller's responsibility.
type JSONHandler struct {
	mu  *sync.Mutex
	w   io.Writer
	pre []byte // pre-rendered With-attrs (",\"k\":v" fragments)
	grp string // dotted group prefix for subsequent attrs
}

// NewJSONHandler returns a canonical-JSON handler writing one line per
// event to w.
func NewJSONHandler(w io.Writer) *JSONHandler {
	return &JSONHandler{mu: &sync.Mutex{}, w: w}
}

// Enabled implements slog.Handler; the eventlog gate (Set/On) is the real
// switch, so every level that reaches the handler is accepted.
func (h *JSONHandler) Enabled(_ context.Context, _ slog.Level) bool { return true }

// clone shares the mutex and writer; pre/grp copy-on-write.
func (h *JSONHandler) clone() *JSONHandler {
	return &JSONHandler{mu: h.mu, w: h.w, pre: h.pre, grp: h.grp}
}

// WithAttrs pre-renders the attrs under the current group prefix.
func (h *JSONHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	c := h.clone()
	buf := make([]byte, 0, 64)
	buf = append(buf, c.pre...)
	for _, a := range attrs {
		buf = appendAttr(buf, c.grp, a)
	}
	c.pre = buf
	return c
}

// WithGroup extends the dotted prefix.
func (h *JSONHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	c := h.clone()
	c.grp = c.grp + name + "."
	return c
}

// Handle renders the record as one line. The write (one Write call) is
// serialized by the shared mutex so concurrent emitters never interleave
// mid-line.
func (h *JSONHandler) Handle(_ context.Context, r slog.Record) error {
	buf := make([]byte, 0, 160)
	buf = append(buf, `{"ts":"`...)
	buf = r.Time.UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, '"')
	if r.Level != slog.LevelInfo {
		buf = append(buf, `,"level":`...)
		buf = appendJSONString(buf, r.Level.String())
	}
	buf = append(buf, `,"event":`...)
	buf = appendJSONString(buf, r.Message)
	buf = append(buf, h.pre...)
	r.Attrs(func(a slog.Attr) bool {
		buf = appendAttr(buf, h.grp, a)
		return true
	})
	buf = append(buf, '}', '\n')

	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := h.w.Write(buf)
	return err
}

// appendAttr renders one attribute (recursing into groups) as
// `,"prefixkey":value` fragments.
func appendAttr(buf []byte, prefix string, a slog.Attr) []byte {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		sub := prefix
		if a.Key != "" {
			sub = prefix + a.Key + "."
		}
		for _, ga := range v.Group() {
			buf = appendAttr(buf, sub, ga)
		}
		return buf
	}
	if a.Key == "" {
		return buf
	}
	buf = append(buf, ',')
	buf = appendJSONString(buf, prefix+a.Key)
	buf = append(buf, ':')
	switch v.Kind() {
	case slog.KindString:
		buf = appendJSONString(buf, v.String())
	case slog.KindInt64:
		buf = strconv.AppendInt(buf, v.Int64(), 10)
	case slog.KindUint64:
		buf = strconv.AppendUint(buf, v.Uint64(), 10)
	case slog.KindBool:
		buf = strconv.AppendBool(buf, v.Bool())
	case slog.KindFloat64:
		f := v.Float64()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// JSON has no non-finite numbers; keep the line parseable.
			buf = appendJSONString(buf, strconv.FormatFloat(f, 'g', -1, 64))
		} else {
			buf = strconv.AppendFloat(buf, f, 'g', -1, 64)
		}
	case slog.KindDuration:
		buf = appendJSONString(buf, v.Duration().String())
	case slog.KindTime:
		buf = append(buf, '"')
		buf = v.Time().UTC().AppendFormat(buf, time.RFC3339Nano)
		buf = append(buf, '"')
	default:
		if b, err := json.Marshal(v.Any()); err == nil {
			buf = append(buf, b...)
		} else {
			buf = appendJSONString(buf, v.String())
		}
	}
	return buf
}

// appendJSONString appends s as a JSON string. encoding/json does the
// escaping; event names and attr keys are plain ASCII so the fast path is
// the common one.
func appendJSONString(buf []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return append(buf, `""`...)
	}
	return append(buf, b...)
}
