package eventlog

import (
	"io"
	"log/slog"
	"testing"
)

// BenchmarkEventLogDisabled holds the package's disabled-path contract:
// with no destination installed, the On() guard is one atomic pointer
// load, 0 allocs — attribute construction never happens. This is the
// pattern hot paths must use (a bare Emit with attrs would heap-escape
// the variadic slice even when disabled).
func BenchmarkEventLogDisabled(b *testing.B) {
	prev := Set(nil)
	defer Set(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if On() {
			Emit("bench.event", slog.Int("i", i))
		}
	}
}

func BenchmarkEventLogEnabled(b *testing.B) {
	prev := Set(slog.New(NewJSONHandler(io.Discard)))
	defer Set(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if On() {
			Emit("bench.event", slog.Int("i", i))
		}
	}
}
