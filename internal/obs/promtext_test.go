package obs

import (
	"strings"
	"testing"

	"repro/internal/testkit"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"par.queue.depth":       "bist_par_queue_depth",
		"dsp.plan.hits.4096":    "bist_dsp_plan_hits_4096",
		"weird-name/with=chars": "bist_weird_name_with_chars",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromExposition(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	r.Counter("t.cells").Add(7)
	r.Gauge("t.depth").Set(3)
	h := r.Histogram("t.lat", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	fams, err := testkit.ScanProm(text)
	if err != nil {
		t.Fatalf("exposition does not scan: %v\n%s", err, text)
	}
	byName := map[string]testkit.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	c, ok := byName["bist_t_cells"]
	if !ok || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 7 {
		t.Errorf("counter family = %+v", c)
	}
	g := byName["bist_t_depth"]
	if g.Type != "gauge" || len(g.Samples) != 1 || g.Samples[0].Value != 3 {
		t.Errorf("gauge family = %+v", g)
	}
	if gm := byName["bist_t_depth_max"]; gm.Type != "gauge" || gm.Samples[0].Value != 3 {
		t.Errorf("gauge max family = %+v", gm)
	}
	hf := byName["bist_t_lat"]
	if hf.Type != "histogram" {
		t.Fatalf("histogram family = %+v", hf)
	}
	// Cumulative buckets: 1, 2, 2, then +Inf = 3; count 3.
	wantBuckets := map[string]float64{"1": 1, "2": 2, "4": 2, "+Inf": 3}
	for _, s := range hf.Samples {
		if s.Name == "bist_t_lat_bucket" {
			if want, ok := wantBuckets[s.Labels["le"]]; !ok || s.Value != want {
				t.Errorf("bucket le=%s = %v, want %v", s.Labels["le"], s.Value, want)
			}
		}
		if s.Name == "bist_t_lat_count" && s.Value != 3 {
			t.Errorf("count = %v, want 3", s.Value)
		}
	}

	// Output is name-sorted and stable: two renders are byte-identical.
	var sb2 strings.Builder
	if err := r.WriteProm(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Error("two renders of identical state differ")
	}
	idx := func(s string) int { return strings.Index(text, "# TYPE "+s+" ") }
	if !(idx("bist_t_cells") < idx("bist_t_depth") && idx("bist_t_depth") < idx("bist_t_lat")) {
		t.Error("families are not name-sorted")
	}
}

func TestNormalizedTelemetry(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	r.Counter("fleet.cells.run").Add(4)
	r.Counter("event.fleet.state").Add(3)
	r.Counter("event.watchdog.state").Add(2) // ticker-driven: stripped
	r.Counter("event.fleet.never")           // zero count: omitted
	r.Counter("other.noise").Inc()           // outside prefixes
	r.Gauge("par.queue.depth").Set(9)        // value dropped, name kept
	// Histogram: bounds kept, fills dropped.
	r.Histogram("fleet.lat", []float64{1, 2}).Observe(1.5)

	nt := r.Normalized("fleet.", "par.queue.")
	if nt.Events["fleet.state"] != 3 {
		t.Errorf("Events = %v, want fleet.state:3", nt.Events)
	}
	if _, ok := nt.Events["watchdog.state"]; ok {
		t.Error("watchdog event leaked into normalized snapshot")
	}
	if _, ok := nt.Events["fleet.never"]; ok {
		t.Error("zero-count event leaked into normalized snapshot")
	}
	if len(nt.Counters) != 1 || nt.Counters[0] != "fleet.cells.run" {
		t.Errorf("Counters = %v", nt.Counters)
	}
	if len(nt.Gauges) != 1 || nt.Gauges[0] != "par.queue.depth" {
		t.Errorf("Gauges = %v", nt.Gauges)
	}
	b, ok := nt.Histograms["fleet.lat"]
	if !ok || len(b) != 2 || b[0] != 1 || b[1] != 2 {
		t.Errorf("Histograms = %v", nt.Histograms)
	}

	// Canonical form is byte-stable.
	b1, err := testkit.MarshalCanonical(nt)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := testkit.MarshalCanonical(r.Normalized("fleet.", "par.queue."))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("normalized snapshots of identical state differ")
	}
}
