package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Window is a rolling-window histogram: a fixed ring of time-bucketed
// histogram slots, each covering one slot duration, so quantile and rate
// questions ("p95 cell latency over the last minute", "units/sec right
// now") are answered over recent history instead of process lifetime.
// Observations land in the slot the wall clock selects; slots older than
// the ring are recycled in place, so memory is fixed at construction and
// Observe never allocates.
//
// The disabled-path contract matches Counter: when collection is off,
// Observe is one atomic load and returns — 0 allocs, ~1 ns, held by
// BenchmarkWindowDisabled. Enabled, an observation is the Histogram
// binary search plus three atomic adds; slot recycling takes a mutex only
// on the first observation after a slot boundary.
//
// Windows are telemetry, not goldens: which slot an observation lands in
// depends on the wall clock, so live counts, sums and quantiles are
// explicitly excluded from the byte-pinned normalized snapshot — only the
// window's shape (bounds, slot duration, slot count) is deterministic.
type Window struct {
	bounds    []float64
	slotNanos int64
	slots     []windowSlot

	// rollMu serializes slot recycling. Observations racing a roll may
	// smear into the old or new slot; acceptable for telemetry, and the
	// alternative (per-observation locking) would break the hot-path
	// contract.
	rollMu sync.Mutex

	// nowFn is the clock, swappable in tests. Defaults to time.Now-based
	// nanoseconds.
	nowFn func() int64
}

// windowSlot is one time bucket of the ring: a fixed-bound histogram plus
// the slot sequence number it currently holds.
type windowSlot struct {
	epoch  atomic.Int64 // slot sequence number (now / slotNanos); -1 = never used
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewWindow builds a rolling window with the given histogram bucket
// bounds, slot duration and slot count. The covered span is slot × slots;
// slots < 2 is raised to 2 (one live, one filling) and slot < 1ms to 1ms.
func NewWindow(bounds []float64, slot time.Duration, slots int) *Window {
	if slots < 2 {
		slots = 2
	}
	if slot < time.Millisecond {
		slot = time.Millisecond
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	w := &Window{
		bounds:    b,
		slotNanos: int64(slot),
		slots:     make([]windowSlot, slots),
		nowFn:     func() int64 { return time.Now().UnixNano() },
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
		w.slots[i].counts = make([]atomic.Int64, len(b)+1)
	}
	return w
}

// Observe records one value into the current time slot when collection is
// enabled.
func (w *Window) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	seq := w.nowFn() / w.slotNanos
	s := &w.slots[int(seq%int64(len(w.slots)))]
	if s.epoch.Load() != seq {
		w.roll(s, seq)
	}
	// Same hand-rolled binary search as Histogram.Observe.
	lo, hi := 0, len(w.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.counts[lo].Add(1)
	s.n.Add(1)
	for {
		old := s.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// roll recycles a slot for a new sequence number: zero its histogram and
// publish the new epoch. Double-checked under the mutex so concurrent
// observers reset at most once.
func (w *Window) roll(s *windowSlot, seq int64) {
	w.rollMu.Lock()
	defer w.rollMu.Unlock()
	if s.epoch.Load() == seq {
		return
	}
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.n.Store(0)
	s.sum.Store(0)
	s.epoch.Store(seq)
}

// merged folds every slot still inside the window (epoch within the last
// len(slots) sequence numbers, including the partially filled current one)
// into one cumulative view.
func (w *Window) merged() (counts []int64, n int64, sum float64) {
	counts = make([]int64, len(w.bounds)+1)
	seq := w.nowFn() / w.slotNanos
	min := seq - int64(len(w.slots)) + 1
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < min || e > seq {
			continue
		}
		for j := range s.counts {
			counts[j] += s.counts[j].Load()
		}
		n += s.n.Load()
		sum += math.Float64frombits(s.sum.Load())
	}
	return counts, n, sum
}

// Count returns the number of observations inside the rolling window.
func (w *Window) Count() int64 {
	_, n, _ := w.merged()
	return n
}

// Sum returns the total of the observations inside the rolling window.
func (w *Window) Sum() float64 {
	_, _, sum := w.merged()
	return sum
}

// Quantiles estimates the given quantiles (each in [0, 1]) over the
// rolling window in one merge pass. The estimate interpolates linearly
// inside the owning bucket (lower edge 0 for the first, the last finite
// bound for the overflow bucket — the estimator cannot see beyond its
// bounds). An empty window yields zeros.
func (w *Window) Quantiles(qs ...float64) []float64 {
	counts, n, _ := w.merged()
	out := make([]float64, len(qs))
	if n == 0 {
		return out
	}
	for qi, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		target := q * float64(n)
		var cum int64
		for i, c := range counts {
			prev := cum
			cum += c
			if float64(cum) < target || c == 0 {
				continue
			}
			lo := 0.0
			if i > 0 {
				lo = w.bounds[i-1]
			}
			hi := lo
			if i < len(w.bounds) {
				hi = w.bounds[i]
			}
			frac := (target - float64(prev)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			out[qi] = lo + (hi-lo)*frac
			break
		}
	}
	return out
}

// Span returns the total duration the window covers (slot × slots).
func (w *Window) Span() time.Duration {
	return time.Duration(w.slotNanos * int64(len(w.slots)))
}

// WindowShape is the deterministic part of a Window: everything fixed at
// construction, nothing the wall clock touches. This is what the
// normalized telemetry snapshot pins.
type WindowShape struct {
	Bounds      []float64
	SlotSeconds float64
	Slots       int
}

// Shape returns the window's construction-time shape.
func (w *Window) Shape() WindowShape {
	return WindowShape{
		Bounds:      append([]float64(nil), w.bounds...),
		SlotSeconds: float64(w.slotNanos) / 1e9,
		Slots:       len(w.slots),
	}
}

// LinearBuckets returns n evenly spaced bucket bounds: start, start+width,
// ... Complements ExpBuckets for naturally bounded quantities (yield in
// [0, 1], margins in dB).
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}
