package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/testkit"
)

// Prometheus text exposition (format 0.0.4) of the registry: every
// counter, gauge and histogram rendered as a `bist_`-prefixed metric
// family with HELP/TYPE lines derived from the interned dot-path name.
// The output is name-sorted, so two scrapes of identical metric state are
// byte-identical — the same determinism discipline MarshalSnapshot keeps
// for the canonical-JSON view.
//
// Mapping rules:
//
//   - Names: "par.queue.depth" → "bist_par_queue_depth" (dots and any
//     other non-[a-zA-Z0-9_] byte become underscores).
//   - Counters: one sample, monotonically increasing.
//   - Gauges: two families, the level and its "_max" high-water mark.
//   - Histograms: cumulative "_bucket{le="…"}" series ending at le="+Inf",
//     plus "_sum" and "_count".
//
// Registered names must stay unique across metric kinds — a counter and a
// gauge sharing one dot path would render two families with one name,
// which Prometheus rejects.

// WriteProm writes the registry's Prometheus text exposition to w.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	type family struct {
		prom string
		emit func(bw *bufio.Writer)
	}
	fams := make([]family, 0, len(counters)+2*len(gauges)+len(hists))
	for name, c := range counters {
		name, c := name, c
		prom := PromName(name)
		fams = append(fams, family{prom, func(bw *bufio.Writer) {
			head(bw, prom, name, "counter")
			bw.WriteString(prom)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(c.Value(), 10))
			bw.WriteByte('\n')
		}})
	}
	for name, g := range gauges {
		name, g := name, g
		prom := PromName(name)
		fams = append(fams,
			family{prom, func(bw *bufio.Writer) {
				head(bw, prom, name, "gauge")
				bw.WriteString(prom)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(g.Value(), 10))
				bw.WriteByte('\n')
			}},
			family{prom + "_max", func(bw *bufio.Writer) {
				head(bw, prom+"_max", name+" high-water mark", "gauge")
				bw.WriteString(prom + "_max")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(g.Max(), 10))
				bw.WriteByte('\n')
			}})
	}
	for name, h := range hists {
		name, h := name, h
		prom := PromName(name)
		fams = append(fams, family{prom, func(bw *bufio.Writer) {
			head(bw, prom, name, "histogram")
			var cum int64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				bw.WriteString(prom)
				bw.WriteString(`_bucket{le="`)
				bw.WriteString(strconv.FormatFloat(b, 'g', -1, 64))
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatInt(cum, 10))
				bw.WriteByte('\n')
			}
			cum += h.counts[len(h.bounds)].Load()
			bw.WriteString(prom)
			bw.WriteString(`_bucket{le="+Inf"} `)
			bw.WriteString(strconv.FormatInt(cum, 10))
			bw.WriteByte('\n')
			bw.WriteString(prom)
			bw.WriteString("_sum ")
			bw.WriteString(strconv.FormatFloat(h.Sum(), 'g', -1, 64))
			bw.WriteByte('\n')
			bw.WriteString(prom)
			bw.WriteString("_count ")
			bw.WriteString(strconv.FormatInt(h.Count(), 10))
			bw.WriteByte('\n')
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].prom < fams[j].prom })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.emit(bw)
	}
	return bw.Flush()
}

// WriteProm writes the default registry's Prometheus text exposition.
func WriteProm(w io.Writer) error { return def.WriteProm(w) }

// head writes the HELP/TYPE preamble of one family.
func head(bw *bufio.Writer, prom, source, kind string) {
	bw.WriteString("# HELP ")
	bw.WriteString(prom)
	bw.WriteString(" obs ")
	bw.WriteString(kind)
	bw.WriteByte(' ')
	bw.WriteString(source)
	bw.WriteByte('\n')
	bw.WriteString("# TYPE ")
	bw.WriteString(prom)
	bw.WriteByte(' ')
	bw.WriteString(kind)
	bw.WriteByte('\n')
}

// PromName maps an interned dot-path metric name to its Prometheus family
// name: the "bist_" namespace plus the name with every byte outside
// [a-zA-Z0-9_] replaced by an underscore.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("bist_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// NormalizedTelemetry is the deterministic projection of the registry the
// telemetry goldens pin: structured-event counts by name, the registered
// family names, and histogram bucket shapes — everything the wall clock
// touches (gauge levels, bucket fills, sums, rates, quantiles) dropped.
// Watchdog-driven names are excluded too: the watchdog fires on a ticker,
// so whether (and how often) it spoke is wall-clock state, not workload
// state.
type NormalizedTelemetry struct {
	// Events maps a structured-event name (the "event." counter family
	// maintained by obs/eventlog, prefix stripped) to its emission count.
	// Zero-count names are omitted so previously registered but untouched
	// event counters cannot leak between runs.
	Events map[string]int64
	// Counters and Gauges list the registered family names under the
	// requested prefixes, values dropped.
	Counters []string
	Gauges   []string
	// Histograms maps each family to its bucket bounds.
	Histograms map[string][]float64
}

// eventPrefix is the counter namespace obs/eventlog counts emissions
// under; watchdogPrefix marks ticker-driven names the normalized view
// strips.
const (
	eventPrefix    = "event."
	watchdogPrefix = "watchdog."
)

// Normalized captures the registry's NormalizedTelemetry restricted to
// families whose interned name starts with one of the prefixes. Event
// counters are matched on the name inside the "event." namespace.
func (r *Registry) Normalized(prefixes ...string) *NormalizedTelemetry {
	match := func(name string) bool {
		if strings.Contains(name, watchdogPrefix) {
			return false
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	nt := &NormalizedTelemetry{
		Events:     map[string]int64{},
		Counters:   []string{},
		Gauges:     []string{},
		Histograms: map[string][]float64{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		if ev, ok := strings.CutPrefix(name, eventPrefix); ok {
			if match(ev) && c.Value() > 0 {
				nt.Events[ev] = c.Value()
			}
			continue
		}
		if match(name) {
			nt.Counters = append(nt.Counters, name)
		}
	}
	for name := range r.gauges {
		if match(name) {
			nt.Gauges = append(nt.Gauges, name)
		}
	}
	for name, h := range r.hists {
		if match(name) {
			nt.Histograms[name] = append([]float64(nil), h.bounds...)
		}
	}
	sort.Strings(nt.Counters)
	sort.Strings(nt.Gauges)
	return nt
}

// MarshalNormalized encodes the default registry's normalized telemetry
// as canonical JSON — the byte-stable form the workers-invariance golden
// compares.
func MarshalNormalized(prefixes ...string) ([]byte, error) {
	return testkit.MarshalCanonical(def.Normalized(prefixes...))
}

// Normalized builds the default registry's normalized telemetry snapshot.
func Normalized(prefixes ...string) *NormalizedTelemetry {
	return def.Normalized(prefixes...)
}
